package perfbench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Delta is one baseline-vs-current comparison. Ratio is the normalized
// cost ratio — current cost over the cost the baseline predicts for this
// machine (baseline × calibration scale) — so 1.0 means "exactly on the
// trajectory", above 1 means slower, and a Ratio beyond the gate's
// tolerance is a regression regardless of which machine ran which report.
type Delta struct {
	Key string `json:"key"`
	// Kind is "ns_per_round" for stepper measurements, "cells_per_sec"
	// for sweep throughput (inverted into a cost before the ratio, so >1
	// is always worse).
	Kind  string  `json:"kind"`
	Old   float64 `json:"old"`
	New   float64 `json:"new"`
	Ratio float64 `json:"ratio"`
}

// DiffResult is the outcome of Compare.
type DiffResult struct {
	// Scale is the machine-speed factor: current calibration ns/round over
	// baseline calibration ns/round. Every comparison divides it out.
	Scale float64 `json:"scale"`
	// Deltas covers every key present in both reports, sorted worst-first.
	Deltas []Delta `json:"deltas"`
	// Regressions are the Deltas whose Ratio exceeded 1+maxRegress.
	Regressions []Delta `json:"regressions,omitempty"`
	// Missing are baseline keys absent from the current report — shrunk
	// coverage fails the gate exactly like a slowdown, otherwise deleting
	// a slow benchmark would "fix" it.
	Missing []string `json:"missing,omitempty"`
	// Warnings flag comparisons whose meaning is degraded without being
	// wrong — most importantly a baseline recorded on a machine with a
	// different core count, where every parallel measurement mixes machine
	// shape into the ratio the calibration anchor cannot divide out.
	// Warnings do not fail the gate, but Render prints them loudly.
	Warnings []string `json:"warnings,omitempty"`
}

// OK reports whether the current report holds the trajectory: no
// regressions and no missing coverage.
func (d *DiffResult) OK() bool { return len(d.Regressions) == 0 && len(d.Missing) == 0 }

// spectralGateFloorNs is the baseline λ₂ time below which the ratio gate is
// skipped: closed-form solves finish in microseconds, where scheduler noise
// would dwarf any real change. The solver-path comparison still applies —
// falling off the closed-form path flips Path and raises a warning (and the
// new, slow timing enters the next committed baseline, where the ratio gate
// takes over).
const spectralGateFloorNs = 1_000_000

// Compare gates cur against the committed baseline: every baseline
// measurement must exist in cur and its calibration-normalized cost must
// not exceed the baseline's by more than maxRegress (0.25 = 25% slower
// fails). Keys that are new in cur are ignored — adding coverage is free.
func Compare(base, cur *Report, maxRegress float64) (*DiffResult, error) {
	if maxRegress <= 0 {
		return nil, fmt.Errorf("perfbench: max regression %v must be positive", maxRegress)
	}
	if base.CalibrationNs <= 0 || cur.CalibrationNs <= 0 {
		return nil, fmt.Errorf("perfbench: reports need positive calibration anchors (base %v, current %v)",
			base.CalibrationNs, cur.CalibrationNs)
	}
	d := &DiffResult{Scale: cur.CalibrationNs / base.CalibrationNs}
	if base.NumCPU != 0 && cur.NumCPU != 0 && base.NumCPU != cur.NumCPU {
		d.Warnings = append(d.Warnings, fmt.Sprintf(
			"baseline ran on %d CPUs, current on %d — parallel measurements (rw>1, sweeps) compare machine shape, not code; re-baseline on matching hardware before trusting those ratios",
			base.NumCPU, cur.NumCPU))
	}
	if base.GOMAXPROCS != 0 && cur.GOMAXPROCS != 0 && base.GOMAXPROCS != cur.GOMAXPROCS {
		d.Warnings = append(d.Warnings, fmt.Sprintf(
			"baseline GOMAXPROCS=%d, current GOMAXPROCS=%d — goroutine fan-out differs between the two reports",
			base.GOMAXPROCS, cur.GOMAXPROCS))
	}

	curRounds := make(map[string]RoundResult, len(cur.Rounds))
	for _, r := range cur.Rounds {
		curRounds[r.Key()] = r
	}
	curSweeps := make(map[string]SweepResult, len(cur.Sweeps))
	for _, s := range cur.Sweeps {
		curSweeps[s.Key()] = s
	}
	curSpectra := make(map[string]SpectralResult, len(cur.Spectra))
	for _, s := range cur.Spectra {
		curSpectra[s.Key()] = s
	}

	for _, b := range base.Rounds {
		c, ok := curRounds[b.Key()]
		if !ok {
			d.Missing = append(d.Missing, b.Key())
			continue
		}
		if b.NsPerRound <= 0 {
			return nil, fmt.Errorf("perfbench: baseline %s has non-positive ns/round", b.Key())
		}
		d.Deltas = append(d.Deltas, Delta{
			Key:   b.Key(),
			Kind:  "ns_per_round",
			Old:   b.NsPerRound,
			New:   c.NsPerRound,
			Ratio: c.NsPerRound / (b.NsPerRound * d.Scale),
		})
	}
	for _, b := range base.Spectra {
		c, ok := curSpectra[b.Key()]
		if !ok {
			d.Missing = append(d.Missing, b.Key())
			continue
		}
		if c.Path != b.Path {
			d.Warnings = append(d.Warnings, fmt.Sprintf(
				"%s solved via %s, baseline used %s — the spectral dispatch changed paths", b.Key(), c.Path, b.Path))
		}
		if b.ElapsedNs < spectralGateFloorNs {
			// A closed-form solve finishes in microseconds; timing noise at
			// that scale would make the ratio gate flaky, and the real
			// protection is the path check above. Record nothing further.
			continue
		}
		d.Deltas = append(d.Deltas, Delta{
			Key:   b.Key(),
			Kind:  "lambda2_ns",
			Old:   float64(b.ElapsedNs),
			New:   float64(c.ElapsedNs),
			Ratio: float64(c.ElapsedNs) / (float64(b.ElapsedNs) * d.Scale),
		})
	}
	for _, b := range base.Sweeps {
		c, ok := curSweeps[b.Key()]
		if !ok {
			d.Missing = append(d.Missing, b.Key())
			continue
		}
		if b.CellsPerSec <= 0 || c.CellsPerSec <= 0 {
			return nil, fmt.Errorf("perfbench: sweep %s has non-positive cells/sec", b.Key())
		}
		// Throughput inverts into cost: ratio = (1/new) / (scale/old).
		d.Deltas = append(d.Deltas, Delta{
			Key:   b.Key(),
			Kind:  "cells_per_sec",
			Old:   b.CellsPerSec,
			New:   c.CellsPerSec,
			Ratio: b.CellsPerSec / (c.CellsPerSec * d.Scale),
		})
	}

	sort.Slice(d.Deltas, func(i, j int) bool { return d.Deltas[i].Ratio > d.Deltas[j].Ratio })
	for _, delta := range d.Deltas {
		if delta.Ratio > 1+maxRegress {
			d.Regressions = append(d.Regressions, delta)
		}
	}
	sort.Strings(d.Missing)
	return d, nil
}

// Render writes the human-readable diff summary.
func (d *DiffResult) Render(w io.Writer, maxRegress float64) {
	fmt.Fprintf(w, "machine scale: %.3f× the baseline machine (calibration-normalized)\n", d.Scale)
	for _, warn := range d.Warnings {
		fmt.Fprintf(w, "⚠ WARNING: %s\n", warn)
	}
	for _, delta := range d.Deltas {
		mark := "  "
		if delta.Ratio > 1+maxRegress {
			mark = "✗ "
		}
		fmt.Fprintf(w, "%s%-48s %8.3f× (%s %.0f → %.0f)\n",
			mark, delta.Key, delta.Ratio, delta.Kind, delta.Old, delta.New)
	}
	for _, key := range d.Missing {
		fmt.Fprintf(w, "✗ %-48s MISSING from current report\n", key)
	}
	switch {
	case !d.OK():
		fmt.Fprintf(w, "FAIL: %d regression(s) beyond %.0f%%, %d missing key(s)\n",
			len(d.Regressions), maxRegress*100, len(d.Missing))
	default:
		fmt.Fprintf(w, "ok: %d comparisons within %.0f%% of the trajectory\n",
			len(d.Deltas), maxRegress*100)
	}
}

// WriteFile serializes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads a report written by WriteFile.
func ReadFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("perfbench: %s: %w", path, err)
	}
	return &r, nil
}
