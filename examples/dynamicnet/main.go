// Dynamicnet: a P2P-flavoured scenario for the §5 dynamic-network model.
// A 64-node overlay keeps its node set but loses a random subset of links
// every round (churn). We run the continuous and discrete Algorithm 1
// against increasingly unreliable link layers and report the rounds needed
// next to the Theorem 7/8 bounds built from the measured per-round
// λ₂⁽ᵏ⁾/δ⁽ᵏ⁾ averages.
package main

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dynamic"
	"repro/internal/graph"
	"repro/internal/workload"
)

func main() {
	const (
		seed = 7
		eps  = 1e-4
	)
	base := graph.Hypercube(6) // 64-node overlay
	fmt.Printf("overlay: %s, links survive each round with probability p\n\n", base)

	fmt.Println("— continuous (Theorem 7) —")
	fmt.Printf("%-8s %-8s %-10s %-12s %-8s\n", "p", "rounds", "A_K", "bound", "K/bound")
	for _, p := range []float64{1.0, 0.9, 0.7, 0.5, 0.3} {
		seq := &dynamic.RandomSubgraphs{Base: base, KeepProb: p, RNG: rand.New(rand.NewSource(seed))}
		init := workload.Continuous(workload.Spike, base.N(), 1e9, nil)
		phi0 := potential(init)
		res := dynamic.RunContinuous(seq, init, eps*phi0, 200000, true)
		bound := math.NaN()
		if res.AK > 0 {
			bound = 4 * math.Log(1/eps) / res.AK
		}
		fmt.Printf("%-8.2f %-8d %-10.4f %-12.1f %-8.3f\n",
			p, res.Rounds(), res.AK, bound, float64(res.Rounds())/bound)
	}

	fmt.Println("\n— discrete (Theorem 8) —")
	fmt.Printf("%-8s %-8s %-12s %-12s\n", "p", "rounds", "Φ end", "Φ* threshold")
	for _, p := range []float64{1.0, 0.7, 0.4} {
		seq := &dynamic.RandomSubgraphs{Base: base, KeepProb: p, RNG: rand.New(rand.NewSource(seed + 1))}
		init := workload.Discrete(workload.Spike, base.N(), 1_000_000_000, nil)
		pilot := dynamic.RunDiscrete(seq, init, 0, 5000, true)
		phiStar := dynamic.Theorem8Threshold(base.N(), pilot.Stats)
		res := dynamic.RunDiscrete(seq, init, phiStar, 200000, true)
		fmt.Printf("%-8.2f %-8d %-12.4g %-12.4g\n", p, res.Rounds(), res.PhiEnd, phiStar)
	}

	fmt.Println("\nShape to observe: as p drops, per-round connectivity (λ₂⁽ᵏ⁾) and")
	fmt.Println("hence A_K shrink, and the measured rounds grow like 1/A_K — but the")
	fmt.Println("run always stays within the Theorem 7/8 budget, including rounds in")
	fmt.Println("which the overlay is disconnected (they simply contribute 0 to A_K).")
}

func potential(v []float64) float64 {
	var mean float64
	for _, x := range v {
		mean += x
	}
	mean /= float64(len(v))
	var s float64
	for _, x := range v {
		d := x - mean
		s += d * d
	}
	return s
}
