// Package perfbench is the performance-trajectory harness: it measures
// ns/round as a function of n for every topology×algorithm×mode combination
// (at each configured round-level worker count) and cells/sec for two
// pinned reference sweeps — the many-small-cells regime unit fan-out is for
// and the few-huge-cells regime round fan-out is for — and emits a
// machine-readable report (BENCH_PRn.json at the repo root) that every
// future change must beat.
//
// Two properties make the numbers comparable:
//
//   - Fixed work profiles. Each measurement times a pinned number of rounds
//     (a node-operation budget divided by n) from a freshly built stepper,
//     so every sample — on any machine, at any worker count — executes the
//     same deterministic trajectory rather than "however many rounds fit in
//     a wall-clock window".
//   - A calibration anchor. The report records the serial ns/round of one
//     fixed reference workload; Compare normalizes by the two reports'
//     anchors, so a faster or slower machine shifts every number together
//     and only genuine regressions move the ratio.
//
// The harness also re-verifies the determinism contract it depends on:
// every measurement records an FNV-64a checksum of the final load state,
// and Run fails if any two worker counts of the same configuration
// disagree — a byte-identity check built into the benchmark itself.
package perfbench

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"runtime"
	"time"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/spectral"
	"repro/internal/topoparse"
	"repro/internal/workload"
)

// Config selects what Run measures. The zero value measures the default
// grid committed as the repo's benchmark trajectory — CI and the committed
// baseline must use the same configuration, or Compare reports the
// difference as missing coverage.
type Config struct {
	// Topologies are topoparse names (default torus, hypercube).
	Topologies []string
	// Algorithms are core algorithm names (default diffusion, firstorder,
	// dimexchange, randpair).
	Algorithms []string
	// Modes are load models (default continuous, discrete); combinations
	// an algorithm does not support are skipped silently.
	Modes []string
	// Sizes are the node counts of the ns/round-vs-n curve (default 1024,
	// 4096, 16384; rigid families round up as topoparse does).
	Sizes []int
	// LargeSizes extends the curve into the million-node regime: for each
	// topology × large size the harness measures one serial continuous
	// diffusion row (a handful of rounds — see largeRoundsFor) plus a timed
	// λ₂ solve, recording which solver path (closed-form, Lanczos, …) the
	// spectral layer picked. Empty = no large-n rows; the committed baseline
	// uses {1<<17, 1<<20} via cmd/perfbench's -large-sizes default.
	LargeSizes []int
	// RoundWorkersList are the round-level worker counts each
	// configuration is measured at (default 1, 8).
	RoundWorkersList []int
	// Scale is the spike magnitude per node (default 1e6).
	Scale float64
	// Seed drives the randomized algorithms (default 1).
	Seed int64
	// RoundsBudget is the per-sample node-operation budget: a measurement
	// times budget/n rounds, clamped to [64, 4096], so samples cost
	// roughly constant wall time across sizes while the round count stays
	// a pinned, machine-independent function of n (default 2²²).
	RoundsBudget int
	// Samples is how many times each measurement repeats; the fastest
	// sample wins, discarding scheduler noise (default 3).
	Samples int
	// SkipSweeps drops the two cells/sec reference sweeps (they dominate
	// the harness's wall time; the CI gate wants them, quick local runs
	// may not).
	SkipSweeps bool
	// Log receives one progress line per measurement (nil = silent).
	Log io.Writer
}

func (c Config) withDefaults() Config {
	if len(c.Topologies) == 0 {
		c.Topologies = []string{"torus", "hypercube"}
	}
	if len(c.Algorithms) == 0 {
		c.Algorithms = []string{"diffusion", "firstorder", "dimexchange", "randpair"}
	}
	if len(c.Modes) == 0 {
		c.Modes = []string{"continuous", "discrete"}
	}
	if len(c.Sizes) == 0 {
		c.Sizes = []int{1024, 4096, 16384}
	}
	if len(c.RoundWorkersList) == 0 {
		c.RoundWorkersList = []int{1, 8}
	}
	if c.Scale <= 0 {
		c.Scale = 1e6
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.RoundsBudget <= 0 {
		c.RoundsBudget = 1 << 22
	}
	if c.Samples <= 0 {
		c.Samples = 3
	}
	return c
}

// roundsFor pins the timed round count for size n.
func (c Config) roundsFor(n int) int {
	r := c.RoundsBudget / n
	if r < 64 {
		r = 64
	}
	if r > 4096 {
		r = 4096
	}
	return r
}

// largeRoundsFor pins the timed round count for the large-n rows. The
// regular 64-round floor would cost minutes at n = 2²⁰, so the large rows
// clamp to [8, 64]: still a pinned, machine-independent function of n, just
// sized for graphs where a single round touches millions of nodes.
func (c Config) largeRoundsFor(n int) int {
	r := c.RoundsBudget / n
	if r < 8 {
		r = 8
	}
	if r > 64 {
		r = 64
	}
	return r
}

// RoundResult is one point of the ns/round-vs-n curve.
type RoundResult struct {
	Topology     string  `json:"topology"`
	Algorithm    string  `json:"algorithm"`
	Mode         string  `json:"mode"`
	N            int     `json:"n"`
	RoundWorkers int     `json:"round_workers"`
	RoundsTimed  int     `json:"rounds_timed"`
	NsPerRound   float64 `json:"ns_per_round"`
	// Checksum fingerprints the final load state (FNV-64a over the raw
	// bits); Run requires it to be identical across worker counts.
	Checksum string `json:"state_checksum"`
}

// Key identifies the measurement across reports.
func (r RoundResult) Key() string {
	return fmt.Sprintf("%s/%s/%s/n%d/rw%d", r.Topology, r.Algorithm, r.Mode, r.N, r.RoundWorkers)
}

// SpectralResult is one timed λ₂ solve from the large-n rows: how long the
// spectral layer took for the topology at size n and which solver path it
// used — "closed-form" for recognized structured families (microseconds),
// "lanczos" for the implicit CSR solver, "dense" or "inverse-power"
// otherwise. The committed baseline pins the expected path; a future change
// that silently falls off the closed-form or Lanczos path shows up here as
// a thousand-fold ElapsedNs regression rather than a quiet CI slowdown.
type SpectralResult struct {
	Topology  string  `json:"topology"`
	N         int     `json:"n"`
	Lambda2   float64 `json:"lambda2"`
	ElapsedNs int64   `json:"elapsed_ns"`
	Path      string  `json:"path"`
}

// Key identifies the spectral entry across reports.
func (s SpectralResult) Key() string {
	return fmt.Sprintf("lambda2:%s/n%d", s.Topology, s.N)
}

// SweepResult is the throughput of one pinned reference sweep.
type SweepResult struct {
	Name         string  `json:"name"`
	Units        int     `json:"units"`
	UnitWorkers  int     `json:"unit_workers"`
	RoundWorkers int     `json:"round_workers"`
	ElapsedNs    int64   `json:"elapsed_ns"`
	CellsPerSec  float64 `json:"cells_per_sec"`
}

// Key identifies the sweep entry across reports.
func (s SweepResult) Key() string {
	return fmt.Sprintf("sweep:%s/w%d/rw%d", s.Name, s.UnitWorkers, s.RoundWorkers)
}

// Report is the serialized trajectory.
type Report struct {
	Version int `json:"version"`
	// Label names the baseline (e.g. "PR6").
	Label      string `json:"label,omitempty"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	// CalibrationNs is the serial ns/round of the fixed reference workload
	// (continuous diffusion, 1024-node torus) — the machine-speed anchor
	// Compare normalizes both reports by.
	CalibrationNs float64          `json:"calibration_ns_per_round"`
	Rounds        []RoundResult    `json:"rounds"`
	Spectra       []SpectralResult `json:"spectra,omitempty"`
	Sweeps        []SweepResult    `json:"sweeps,omitempty"`
}

// Run executes the configured measurements and assembles the report.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := &Report{
		Version:    1,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}

	cal, err := calibrate(cfg)
	if err != nil {
		return nil, fmt.Errorf("perfbench: calibration: %w", err)
	}
	rep.CalibrationNs = cal
	cfg.logf("calibration: %.0f ns/round", cal)

	for _, topo := range cfg.Topologies {
		for _, size := range cfg.Sizes {
			g, err := topoparse.Build(topo, size, cfg.Seed)
			if err != nil {
				return nil, fmt.Errorf("perfbench: %w", err)
			}
			loads := workload.Continuous(workload.Spike, g.N(), cfg.Scale*float64(g.N()), nil)
			for _, algoName := range cfg.Algorithms {
				algo, err := core.ParseAlgorithm(algoName)
				if err != nil {
					return nil, fmt.Errorf("perfbench: %w", err)
				}
				for _, modeName := range cfg.Modes {
					mode, err := parseMode(modeName)
					if err != nil {
						return nil, err
					}
					if (algo == core.FirstOrder || algo == core.SecondOrder) && mode == core.Discrete {
						continue // continuous-only schemes
					}
					var want string
					for _, rw := range cfg.RoundWorkersList {
						ns, sum, err := measure(cfg, g, algo, mode, loads, rw, cfg.roundsFor(g.N()))
						if err != nil {
							return nil, err
						}
						res := RoundResult{
							Topology:     topo,
							Algorithm:    algoName,
							Mode:         modeName,
							N:            g.N(),
							RoundWorkers: rw,
							RoundsTimed:  cfg.roundsFor(g.N()),
							NsPerRound:   ns,
							Checksum:     sum,
						}
						if want == "" {
							want = sum
						} else if sum != want {
							return nil, fmt.Errorf(
								"perfbench: %s: checksum %s differs from round-workers=%d checksum %s — the byte-identity contract is broken",
								res.Key(), sum, cfg.RoundWorkersList[0], want)
						}
						rep.Rounds = append(rep.Rounds, res)
						cfg.logf("%-48s %12.0f ns/round  (%d rounds)", res.Key(), res.NsPerRound, res.RoundsTimed)
					}
				}
			}
		}
	}

	for _, topo := range cfg.Topologies {
		for _, size := range cfg.LargeSizes {
			round, spec, err := measureLarge(cfg, topo, size)
			if err != nil {
				return nil, err
			}
			rep.Rounds = append(rep.Rounds, round)
			cfg.logf("%-48s %12.0f ns/round  (%d rounds)", round.Key(), round.NsPerRound, round.RoundsTimed)
			rep.Spectra = append(rep.Spectra, spec)
			cfg.logf("%-48s %12d ns  (λ₂=%.6g, path=%s)", spec.Key(), spec.ElapsedNs, spec.Lambda2, spec.Path)
		}
	}

	if !cfg.SkipSweeps {
		sweeps, err := runSweeps(cfg)
		if err != nil {
			return nil, err
		}
		rep.Sweeps = sweeps
	}
	return rep, nil
}

// measureLarge runs one large-n row: a serial continuous diffusion
// measurement (the CSR hot loop under test, at the worker count the
// byte-identity contract anchors) and a timed λ₂ solve with the solver path
// recorded from the spectral layer's solve counters. The graph is built
// once and shared by both measurements — at n = 2²⁰ the build itself costs
// seconds and hundreds of MB, so it must stay outside the clock.
func measureLarge(cfg Config, topo string, size int) (RoundResult, SpectralResult, error) {
	g, err := topoparse.Build(topo, size, cfg.Seed)
	if err != nil {
		return RoundResult{}, SpectralResult{}, fmt.Errorf("perfbench: %w", err)
	}
	loads := workload.Continuous(workload.Spike, g.N(), cfg.Scale*float64(g.N()), nil)
	rounds := cfg.largeRoundsFor(g.N())
	ns, sum, err := measure(cfg, g, core.Diffusion, core.Continuous, loads, 1, rounds)
	if err != nil {
		return RoundResult{}, SpectralResult{}, err
	}
	round := RoundResult{
		Topology:     topo,
		Algorithm:    "diffusion",
		Mode:         "continuous",
		N:            g.N(),
		RoundWorkers: 1,
		RoundsTimed:  rounds,
		NsPerRound:   ns,
		Checksum:     sum,
	}

	before := spectral.SolveStats()
	start := time.Now()
	l2, err := spectral.Lambda2(g)
	elapsed := time.Since(start)
	if err != nil {
		return RoundResult{}, SpectralResult{}, fmt.Errorf("perfbench: λ₂(%s, n=%d): %w", topo, g.N(), err)
	}
	spec := SpectralResult{
		Topology:  topo,
		N:         g.N(),
		Lambda2:   l2,
		ElapsedNs: elapsed.Nanoseconds(),
		Path:      solvePath(before, spectral.SolveStats()),
	}
	return round, spec, nil
}

// solvePath names the solver the spectral layer used between two counter
// snapshots. A single Lambda2 call bumps exactly one counter; if several
// moved (another goroutine raced a solve in), the slowest path wins so the
// report never under-states the cost.
func solvePath(before, after spectral.SolveCounts) string {
	switch {
	case after.Dense > before.Dense:
		return "dense"
	case after.InversePower > before.InversePower:
		return "inverse-power"
	case after.Lanczos > before.Lanczos:
		return "lanczos"
	case after.ClosedForm > before.ClosedForm:
		return "closed-form"
	default:
		return "unknown"
	}
}

// SmokeResult is what LargeNSmoke measured, for logging and the CI gate.
type SmokeResult struct {
	DiffusionN       int
	DiffusionRounds  int
	DiffusionNs      float64 // ns/round
	Lambda2Topology  string
	Lambda2N         int
	Lambda2          float64
	Lambda2Ns        int64
	Lambda2Path      string
	Elapsed          time.Duration
	DenseSolvesDelta uint64
}

// LargeNSmoke is the CI large-n gate: it steps a million-node hypercube
// diffusion cell for a few rounds (the CSR hot loop at the scale the PR 7
// work targets) and solves λ₂ of the million-node de Bruijn graph — a
// topology with no closed form, so the solve must take the implicit Lanczos
// path. It fails if the dense eigensolver ran at all (materializing an n×n
// matrix at n = 2²⁰ would be an 8 TB allocation — the counter check catches
// a dispatch regression long before an OOM would), if the λ₂ solve fell off
// the Lanczos path, or if the whole check exceeded the wall-clock budget.
func LargeNSmoke(budget time.Duration, logw io.Writer) (*SmokeResult, error) {
	const smokeN = 1 << 20
	cfg := Config{Samples: 1, Log: logw}.withDefaults()
	start := time.Now()
	before := spectral.SolveStats()

	g, err := topoparse.Build("hypercube", smokeN, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("perfbench: smoke: %w", err)
	}
	loads := workload.Continuous(workload.Spike, g.N(), cfg.Scale*float64(g.N()), nil)
	rounds := cfg.largeRoundsFor(g.N())
	ns, _, err := measure(cfg, g, core.Diffusion, core.Continuous, loads, 1, rounds)
	if err != nil {
		return nil, fmt.Errorf("perfbench: smoke: %w", err)
	}
	res := &SmokeResult{DiffusionN: g.N(), DiffusionRounds: rounds, DiffusionNs: ns}
	cfg.logf("smoke: hypercube n=%d diffusion: %.0f ns/round (%d rounds)", g.N(), ns, rounds)
	g = nil // let the ~300 MB hypercube go before the next build

	db, err := topoparse.Build("debruijn", smokeN, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("perfbench: smoke: %w", err)
	}
	mid := spectral.SolveStats()
	solveStart := time.Now()
	l2, err := spectral.Lambda2(db)
	solveElapsed := time.Since(solveStart)
	if err != nil {
		return nil, fmt.Errorf("perfbench: smoke: λ₂(debruijn, n=%d): %w", db.N(), err)
	}
	after := spectral.SolveStats()
	res.Lambda2Topology = "debruijn"
	res.Lambda2N = db.N()
	res.Lambda2 = l2
	res.Lambda2Ns = solveElapsed.Nanoseconds()
	res.Lambda2Path = solvePath(mid, after)
	res.Elapsed = time.Since(start)
	res.DenseSolvesDelta = after.Dense - before.Dense
	cfg.logf("smoke: λ₂(debruijn, n=%d) = %.6g via %s in %v (total %v)",
		db.N(), l2, res.Lambda2Path, solveElapsed.Round(time.Millisecond), res.Elapsed.Round(time.Millisecond))

	if res.DenseSolvesDelta != 0 {
		return res, fmt.Errorf("perfbench: smoke: dense eigensolver ran %d time(s) at n=%d — the spectral dispatch must never materialize matrices at this scale", res.DenseSolvesDelta, smokeN)
	}
	if res.Lambda2Path != "lanczos" {
		return res, fmt.Errorf("perfbench: smoke: λ₂ solved via %q, want the implicit lanczos path", res.Lambda2Path)
	}
	if budget > 0 && res.Elapsed > budget {
		return res, fmt.Errorf("perfbench: smoke: took %v, budget %v", res.Elapsed.Round(time.Millisecond), budget)
	}
	return res, nil
}

func (c Config) logf(format string, args ...any) {
	if c.Log != nil {
		fmt.Fprintf(c.Log, format+"\n", args...)
	}
}

// calibrate measures the fixed reference workload: serial continuous
// diffusion on a 1024-node torus, 1024 rounds, spike start. Its ns/round
// anchors cross-machine comparison, so its definition must never change
// between baselines.
func calibrate(cfg Config) (float64, error) {
	g, err := topoparse.Build("torus", 1024, 1)
	if err != nil {
		return 0, err
	}
	loads := workload.Continuous(workload.Spike, g.N(), 1e6*float64(g.N()), nil)
	ns, _, err := measure(cfg, g, core.Diffusion, core.Continuous, loads, 1, 1024)
	return ns, err
}

// measure times `rounds` steps of the configuration at the given round
// worker count, best of cfg.Samples fresh runs (each sample rebuilds the
// stepper, so every sample — and every worker count — walks the same
// deterministic trajectory). One untimed warm-up step per sample lets the
// steppers allocate their scratch buffers outside the clock. Returns
// ns/round of the fastest sample and the final-state checksum.
func measure(cfg Config, g *graph.G, algo core.Algorithm, mode core.Mode, loads []float64, rw, rounds int) (float64, string, error) {
	best := time.Duration(math.MaxInt64)
	var last sim.System
	for s := 0; s < cfg.Samples; s++ {
		sys, err := core.NewSystem(core.Config{
			Graph:     g,
			Algorithm: algo,
			Mode:      mode,
			Loads:     loads,
			Seed:      cfg.Seed,
			Workers:   rw,
		})
		if err != nil {
			return 0, "", fmt.Errorf("perfbench: %w", err)
		}
		sys.Step()
		start := time.Now()
		for r := 0; r < rounds; r++ {
			sys.Step()
		}
		if el := time.Since(start); el < best {
			best = el
		}
		last = sys
	}
	return float64(best.Nanoseconds()) / float64(rounds), stateChecksum(last), nil
}

func parseMode(s string) (core.Mode, error) {
	switch s {
	case "continuous":
		return core.Continuous, nil
	case "discrete":
		return core.Discrete, nil
	default:
		return 0, fmt.Errorf("perfbench: unknown mode %q (want continuous or discrete)", s)
	}
}

// stateChecksum fingerprints a stepper's load state: FNV-64a over the raw
// float bits (continuous) or token values (discrete). Bit-level, not
// value-level — +0/−0 or differing NaN payloads would show — which is
// exactly the byte-identity contract the parallel paths promise.
func stateChecksum(sys sim.System) string {
	h := fnv.New64a()
	var buf [8]byte
	switch s := sys.(type) {
	case sim.DiscreteState:
		for _, t := range s.LoadTokens() {
			binary.LittleEndian.PutUint64(buf[:], uint64(t))
			h.Write(buf[:])
		}
	case sim.ContinuousState:
		for _, v := range s.LoadVector() {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			h.Write(buf[:])
		}
	default:
		return "unavailable"
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// runSweeps measures the two pinned reference sweeps through the real grid
// engine: many-small (144 cheap units — the regime unit-level fan-out is
// for) at pool widths 1 and 4, and few-huge (4 expensive 4096-node units
// on a fixed 128-round horizon — the regime round-level fan-out is for)
// with 4 workers on the unit level vs. 4 on the round level. The sweeps
// run once each (no best-of): they are throughput references, and their
// cells/sec is normalized by the calibration anchor like everything else.
func runSweeps(cfg Config) ([]SweepResult, error) {
	manySmall := batch.Spec{
		Topologies: []string{"cycle", "torus", "hypercube"},
		Algorithms: []string{"diffusion", "dimexchange", "randpair"},
		Modes:      []string{"continuous", "discrete"},
		Workloads:  []string{"spike", "uniform"},
		N:          64,
		Seeds:      []int64{1, 2},
	}
	fewHuge := batch.Spec{
		Topologies: []string{"torus"},
		Algorithms: []string{"diffusion"},
		Modes:      []string{"continuous"},
		Workloads:  []string{"spike"},
		N:          4096,
		Seeds:      []int64{1, 2, 3, 4},
		MaxRounds:  128,
	}
	entries := []struct {
		name  string
		spec  batch.Spec
		w, rw int
	}{
		{"many-small", manySmall, 1, 1},
		{"many-small", manySmall, 4, 1},
		{"few-huge", fewHuge, 4, 1},
		{"few-huge", fewHuge, 1, 4},
	}
	// Warm the process-wide spectral cache before the clock starts: the
	// first sweep to touch each (topology, n) pays its λ₂ eigensolve, which
	// would otherwise be billed to whichever entry happens to run first.
	for _, spec := range []batch.Spec{manySmall, fewHuge} {
		warm := spec
		warm.Seeds = []int64{1}
		warm.MaxRounds = 1
		if _, err := core.GridRun(context.Background(), warm); err != nil {
			return nil, fmt.Errorf("perfbench: sweep warm-up: %w", err)
		}
	}

	var out []SweepResult
	for _, e := range entries {
		spec := e.spec
		spec.Workers, spec.RoundWorkers = e.w, e.rw
		start := time.Now()
		rep, err := core.GridRun(context.Background(), spec)
		if err != nil {
			return nil, fmt.Errorf("perfbench: sweep %s: %w", e.name, err)
		}
		if rep.Failed() > 0 {
			return nil, fmt.Errorf("perfbench: sweep %s: %d units failed", e.name, rep.Failed())
		}
		elapsed := time.Since(start)
		res := SweepResult{
			Name:         e.name,
			Units:        len(rep.Cells),
			UnitWorkers:  e.w,
			RoundWorkers: e.rw,
			ElapsedNs:    elapsed.Nanoseconds(),
			CellsPerSec:  float64(len(rep.Cells)) / elapsed.Seconds(),
		}
		out = append(out, res)
		cfg.logf("%-48s %12.2f cells/sec (%d units in %v)", res.Key(), res.CellsPerSec, res.Units, elapsed.Round(time.Millisecond))
	}
	return out, nil
}
