package spectral

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/topoparse"
)

// registryGraphs builds every topoparse topology at a small size, so the
// closed-form-vs-dense properties sweep the whole registry rather than a
// hand-picked list that silently goes stale when a family is added.
func registryGraphs(t *testing.T, n int) map[string]*graph.G {
	t.Helper()
	out := make(map[string]*graph.G, len(topoparse.Names()))
	for _, name := range topoparse.Names() {
		g, err := topoparse.Build(name, n, 1)
		if err != nil {
			t.Fatalf("build %s(%d): %v", name, n, err)
		}
		out[name] = g
	}
	return out
}

// TestClosedFormLambda2MatchesDense is the dispatch-safety property: for
// every registry topology whose λ₂ the closed-form layer claims to know,
// the claimed value must match the dense Laplacian spectrum to 1e-9. A
// wrong formula — or a name-recognition bug matching the wrong family —
// fails here before it can poison every large-n solve.
func TestClosedFormLambda2MatchesDense(t *testing.T) {
	covered := 0
	for name, g := range registryGraphs(t, 24) {
		l2, ok := graph.KnownLambda2(g)
		if !ok {
			continue
		}
		covered++
		vals, err := LaplacianSpectrum(g)
		if err != nil {
			t.Fatalf("%s: dense spectrum: %v", name, err)
		}
		if diff := math.Abs(l2 - vals[1]); diff > 1e-9 {
			t.Errorf("%s (%s): closed-form λ₂ = %.15g, dense = %.15g (diff %.2g)", name, g.Name(), l2, vals[1], diff)
		}
	}
	// The structured families (path, cycle, grid, torus, hypercube,
	// complete, star, petersen at least) must all take the closed form —
	// fewer means the fast path quietly stopped firing.
	if covered < 8 {
		t.Fatalf("only %d registry topologies hit the closed form, want ≥ 8", covered)
	}
}

// TestClosedFormLambdaMaxMatchesDense is the same property for the top of
// the spectrum, which the closed-form γ depends on just as much as λ₂.
func TestClosedFormLambdaMaxMatchesDense(t *testing.T) {
	covered := 0
	for name, g := range registryGraphs(t, 24) {
		lmax, ok := graph.KnownLambdaMax(g)
		if !ok {
			continue
		}
		covered++
		vals, err := LaplacianSpectrum(g)
		if err != nil {
			t.Fatalf("%s: dense spectrum: %v", name, err)
		}
		if diff := math.Abs(lmax - vals[len(vals)-1]); diff > 1e-9 {
			t.Errorf("%s (%s): closed-form λ_max = %.15g, dense = %.15g (diff %.2g)", name, g.Name(), lmax, vals[len(vals)-1], diff)
		}
	}
	if covered < 8 {
		t.Fatalf("only %d registry topologies hit the λ_max closed form, want ≥ 8", covered)
	}
}

// TestGammaOfMatchesDenseEverywhere checks the dispatched γ — closed form
// where recognized, dense elsewhere — against the direct dense eigensolve
// of the materialized diffusion matrix for every registry topology.
func TestGammaOfMatchesDenseEverywhere(t *testing.T) {
	for name, g := range registryGraphs(t, 24) {
		got, err := GammaOf(g)
		if err != nil {
			t.Fatalf("%s: GammaOf: %v", name, err)
		}
		want, err := Gamma(DiffusionMatrix(g))
		if err != nil {
			t.Fatalf("%s: dense γ: %v", name, err)
		}
		if diff := math.Abs(got - want); diff > 1e-9 {
			t.Errorf("%s (%s): GammaOf = %.15g, dense γ = %.15g (diff %.2g)", name, g.Name(), got, want, diff)
		}
	}
}

// TestPaperGammaOfMatchesDenseEverywhere is the same for the paper's
// diffusion matrix with edge weights 1/(4·max(dᵢ,dⱼ)), whose closed form
// only applies when that weight is uniform — the dispatch must detect
// exactly when it is.
func TestPaperGammaOfMatchesDenseEverywhere(t *testing.T) {
	for name, g := range registryGraphs(t, 24) {
		got, err := PaperGammaOf(g)
		if err != nil {
			t.Fatalf("%s: PaperGammaOf: %v", name, err)
		}
		want, err := Gamma(PaperDiffusionMatrix(g))
		if err != nil {
			t.Fatalf("%s: dense paper γ: %v", name, err)
		}
		if diff := math.Abs(got - want); diff > 1e-9 {
			t.Errorf("%s (%s): PaperGammaOf = %.15g, dense = %.15g (diff %.2g)", name, g.Name(), got, want, diff)
		}
	}
}

// TestLanczosMatchesDenseOnUnstructuredGraphs validates the implicit solver
// on the graphs it will actually serve at scale: de Bruijn and seeded
// random-regular graphs, which have no closed form. Both ends of the
// spectrum must agree with the dense solve.
func TestLanczosMatchesDenseOnUnstructuredGraphs(t *testing.T) {
	cases := []*graph.G{
		graph.DeBruijn(5),
		graph.DeBruijn(7),
		graph.RandomRegular(50, 4, rand.New(rand.NewSource(1))),
		graph.RandomRegular(120, 4, rand.New(rand.NewSource(2))),
	}
	for _, g := range cases {
		vals, err := LaplacianSpectrum(g)
		if err != nil {
			t.Fatalf("%s: dense spectrum: %v", g.Name(), err)
		}
		l2, lmax, ok, err := LaplacianExtremal(g, 1)
		if err != nil {
			t.Fatalf("%s: Lanczos: %v", g.Name(), err)
		}
		if !ok {
			t.Fatalf("%s: Lanczos did not converge", g.Name())
		}
		if diff := math.Abs(l2 - vals[1]); diff > 1e-8 {
			t.Errorf("%s: Lanczos λ₂ = %.15g, dense = %.15g (diff %.2g)", g.Name(), l2, vals[1], diff)
		}
		if diff := math.Abs(lmax - vals[len(vals)-1]); diff > 1e-8 {
			t.Errorf("%s: Lanczos λ_max = %.15g, dense = %.15g (diff %.2g)", g.Name(), lmax, vals[len(vals)-1], diff)
		}
	}
}

// TestSolveCountersTrackDispatch pins the path each graph class takes:
// recognized families take the closed form at any size, unrecognized small
// graphs take the dense solver, and unrecognized graphs beyond denseCutoff
// take Lanczos — with the counters recording each.
func TestSolveCountersTrackDispatch(t *testing.T) {
	ResetSolveCounts()
	if _, err := Lambda2(graph.Hypercube(12)); err != nil { // n=4096 > denseCutoff, still closed form
		t.Fatal(err)
	}
	if s := SolveStats(); s.ClosedForm != 1 || s.Dense != 0 || s.Lanczos != 0 {
		t.Fatalf("hypercube(12): counters %+v, want exactly one closed-form solve", s)
	}

	ResetSolveCounts()
	if _, err := Lambda2(graph.DeBruijn(5)); err != nil { // n=32 ≤ denseCutoff
		t.Fatal(err)
	}
	if s := SolveStats(); s.Dense != 1 || s.ClosedForm != 0 {
		t.Fatalf("debruijn(5): counters %+v, want exactly one dense solve", s)
	}

	ResetSolveCounts()
	if _, err := Lambda2(graph.DeBruijn(10)); err != nil { // n=1024 > denseCutoff, no closed form
		t.Fatal(err)
	}
	if s := SolveStats(); s.Dense != 0 || s.ClosedForm != 0 || s.Lanczos+s.InversePower != 1 {
		t.Fatalf("debruijn(10): counters %+v, want one iterative solve and no dense", s)
	}
}
