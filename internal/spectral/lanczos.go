package spectral

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/matrix"
)

// Implicit Lanczos: extremal eigenvalues of a symmetric operator that is
// never materialized. The operator is a CSR matvec over the graph — O(m)
// per application and O(n) memory per basis vector — which is what lets the
// spectral quantities behind the paper's bounds (λ₂, λ_max, γ, γ_P) scale
// to million-node graphs where the dense O(n²)-memory, O(n³)-time pipeline
// cannot even allocate its input.
//
// The solver runs Lanczos with full reorthogonalization (the basis is kept
// numerically orthogonal, so no ghost eigenvalues) on the operator
// restricted to the complement of the constant vector — the Laplacian
// kernel, and the stationary eigenvector of every diffusion matrix — which
// is deflated out of the start vector and re-projected out of every new
// Krylov vector. Convergence is residual-gated: for a Ritz pair (θ, V·s)
// of the tridiagonal projection, ‖A·y − θ·y‖ = |β_k·s_k|, so the loop
// monitors that quantity for both extremal Ritz values and stops when both
// fall under tol·scale, rather than running a fixed step count.

// Operator applies a symmetric linear map: dst ← A·x. Implementations must
// not retain dst or x.
type Operator func(dst, x matrix.Vector)

// LaplacianOperator returns the implicit Laplacian of g as a CSR matvec:
// (Lx)ᵢ = deg(i)·xᵢ − Σ_{j∼i} xⱼ.
func LaplacianOperator(g *graph.G) Operator {
	off, tgt := g.CSR()
	return func(dst, x matrix.Vector) {
		for i := range dst {
			row := tgt[off[i]:off[i+1]]
			s := float64(len(row)) * x[i]
			for _, j := range row {
				s -= x[j]
			}
			dst[i] = s
		}
	}
}

// UniformDiffusionOperator returns Cybenko's diffusion matrix
// M = I − α·L with α = 1/(δ+1) as an implicit CSR matvec.
func UniformDiffusionOperator(g *graph.G) Operator {
	alpha := 1 / float64(g.MaxDegree()+1)
	off, tgt := g.CSR()
	return func(dst, x matrix.Vector) {
		for i := range dst {
			xi := x[i]
			s := xi
			for _, j := range tgt[off[i]:off[i+1]] {
				s += alpha * (x[j] - xi)
			}
			dst[i] = s
		}
	}
}

// PaperDiffusionOperator returns the paper's diffusion matrix — transfer
// rule m_ij = 1/(4·max(dᵢ,dⱼ)) — as an implicit CSR matvec.
func PaperDiffusionOperator(g *graph.G) Operator {
	off, tgt := g.CSR()
	return func(dst, x matrix.Vector) {
		for i := range dst {
			xi := x[i]
			row := tgt[off[i]:off[i+1]]
			di := len(row)
			s := xi
			for _, j := range row {
				d := di
				if dj := off[j+1] - off[j]; dj > d {
					d = dj
				}
				s += (x[j] - xi) / (4 * float64(d))
			}
			dst[i] = s
		}
	}
}

// lanczosMaxSteps caps the Krylov dimension (and with it the memory bound:
// maxSteps basis vectors of n float64s). The million-node de Bruijn graph —
// the hardest case the large-n gate exercises, with its clustered lower
// spectrum — meets the residual gate around step 190; the cap leaves
// headroom over that. Graphs whose extremal spectrum has not converged by
// then — tiny-gap families like barbells — fall back to the CG-based
// inverse-power path, which runs in O(n) memory.
const lanczosMaxSteps = 256

// lanczosTol is the residual gate, relative to the operator's spectral
// radius estimate: both extremal Ritz pairs must reach
// ‖A·y − θ·y‖ ≤ lanczosTol·max(1, |θ|_max) before the loop stops early.
// For a converged Ritz pair the eigenvalue error is O(residual²/gap), so a
// 1e-8 residual already puts the eigenvalue near machine precision; a
// tighter gate would only buy Krylov steps that cost O(k·n) each in
// reorthogonalization.
const lanczosTol = 1e-8

// ExtremalEigs computes the smallest and largest eigenvalues of the
// symmetric operator op on ℝⁿ restricted to the orthogonal complement of
// deflate (pass nil to run on the full space). It is the shared engine
// behind the large-graph λ₂/λ_max/γ paths. ok reports whether the residual
// gate was met; when false, min and max carry the best available Ritz
// estimates and the caller decides whether to fall back.
func ExtremalEigs(n int, op Operator, deflate matrix.Vector, seed int64) (min, max float64, ok bool, err error) {
	if n < 1 {
		return 0, 0, false, fmt.Errorf("spectral: ExtremalEigs needs n ≥ 1, got %d", n)
	}
	steps := lanczosMaxSteps
	if deflate != nil && steps > n-1 {
		steps = n - 1
	}
	if deflate == nil && steps > n {
		steps = n
	}
	if steps < 1 {
		return 0, 0, false, fmt.Errorf("spectral: deflated space is empty for n=%d", n)
	}

	// Deterministic pseudo-random start, deflated and normalized.
	v := make(matrix.Vector, n)
	s := uint64(seed)*2862933555777941757 + 3037000493
	for i := range v {
		s = s*6364136223846793005 + 1442695040888963407
		v[i] = float64(int64(s>>11))/float64(1<<52) - 0.5
	}
	if deflate != nil {
		v.ProjectOut(deflate)
	}
	if v.Normalize() == 0 {
		return 0, 0, false, fmt.Errorf("spectral: degenerate Lanczos start")
	}

	basis := make([]matrix.Vector, 0, steps)
	alpha := make([]float64, 0, steps)
	beta := make([]float64, 0, steps)
	w := make(matrix.Vector, n)

	ritz := func() (float64, float64, float64, float64, error) {
		// Diagonalize the current tridiagonal projection and read off the
		// extremal Ritz values with their residual bounds |β_k·s_k| (s the
		// eigenvector of T, k its last row).
		m := len(alpha)
		t := Tridiagonal{D: append([]float64(nil), alpha...), E: make([]float64, m)}
		for k := 0; k+1 < m; k++ {
			t.E[k+1] = beta[k]
		}
		z := matrix.Identity(m)
		if err := QLImplicit(t, z); err != nil {
			return 0, 0, 0, 0, err
		}
		bLast := 0.0
		if len(beta) >= m && m > 0 {
			bLast = beta[m-1]
		}
		lo, hi := 0, 0
		for c := 1; c < m; c++ {
			if t.D[c] < t.D[lo] {
				lo = c
			}
			if t.D[c] > t.D[hi] {
				hi = c
			}
		}
		resLo := math.Abs(bLast * z.At(m-1, lo))
		resHi := math.Abs(bLast * z.At(m-1, hi))
		return t.D[lo], t.D[hi], resLo, resHi, nil
	}

	var lo, hi, resLo, resHi float64
	for k := 0; k < steps; k++ {
		basis = append(basis, v.Clone())
		op(w, v)
		a := w.Dot(v)
		alpha = append(alpha, a)
		w.AddScaled(-a, v)
		if k > 0 {
			w.AddScaled(-beta[k-1], basis[k-1])
		}
		// Full reorthogonalization against the deflated direction and the
		// whole basis keeps the Krylov space numerically orthogonal.
		if deflate != nil {
			w.ProjectOut(deflate)
		}
		for _, b := range basis {
			w.AddScaled(-w.Dot(b), b)
		}
		bNorm := w.Norm2()
		if bNorm < 1e-13 {
			// Krylov space exhausted: the Ritz values are exact eigenvalues.
			var rerr error
			lo, hi, _, _, rerr = ritz()
			if rerr != nil {
				return 0, 0, false, rerr
			}
			return lo, hi, true, nil
		}
		beta = append(beta, bNorm)
		copy(v, w)
		v.Scale(1 / bNorm)

		// Residual gate: check convergence of both extremal Ritz pairs.
		// The tridiagonal solve is O(k²) — cheap next to the O(m) matvec
		// until k grows, so check every few steps past a warm-up.
		if k >= 8 && (k%4 == 3 || k == steps-1) {
			var rerr error
			lo, hi, resLo, resHi, rerr = ritz()
			if rerr != nil {
				return 0, 0, false, rerr
			}
			scale := math.Max(1, math.Max(math.Abs(lo), math.Abs(hi)))
			if resLo <= lanczosTol*scale && resHi <= lanczosTol*scale {
				return lo, hi, true, nil
			}
		}
	}
	return lo, hi, false, nil
}

// LaplacianExtremal computes (λ₂, λ_max) of the Laplacian of g via implicit
// Lanczos in the complement of the all-ones kernel. g must be connected.
// ok reports whether the residual gate converged.
func LaplacianExtremal(g *graph.G, seed int64) (lambda2, lambdaMax float64, ok bool, err error) {
	n := g.N()
	if n < 2 {
		return 0, 0, false, fmt.Errorf("spectral: λ₂ undefined for n=%d", n)
	}
	if !g.IsConnected() {
		return 0, 0, false, fmt.Errorf("spectral: graph %s is disconnected (λ₂ = 0)", g.Name())
	}
	ones := make(matrix.Vector, n).Fill(1)
	lo, hi, ok, err := ExtremalEigs(n, LaplacianOperator(g), ones, seed)
	if err != nil {
		return 0, 0, false, err
	}
	if lo < 0 && lo > -1e-9 {
		lo = 0
	}
	return lo, hi, ok, nil
}

// GammaLanczos computes γ — the second-largest eigenvalue magnitude — of an
// implicit diffusion matrix whose stationary eigenvector is the constant
// vector: Lanczos in the 1⊥ complement returns the extremal remaining
// eigenvalues (θ_min, θ_max), and γ = max(|θ_min|, |θ_max|).
func GammaLanczos(g *graph.G, op Operator, seed int64) (float64, bool, error) {
	n := g.N()
	if n < 2 {
		return 0, false, fmt.Errorf("spectral: γ undefined for n=%d", n)
	}
	ones := make(matrix.Vector, n).Fill(1)
	lo, hi, ok, err := ExtremalEigs(n, op, ones, seed)
	if err != nil {
		return 0, false, err
	}
	gamma := math.Abs(hi)
	if a := math.Abs(lo); a > gamma {
		gamma = a
	}
	return gamma, ok, nil
}
