package parallel

import (
	"sync/atomic"
	"testing"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		n := 100
		seen := make([]int32, n)
		For(n, workers, func(i int) { atomic.AddInt32(&seen[i], 1) })
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEmpty(t *testing.T) {
	called := false
	For(0, 4, func(int) { called = true })
	if called {
		t.Fatal("body must not run for n=0")
	}
	For(-3, 4, func(int) { called = true })
	if called {
		t.Fatal("body must not run for negative n")
	}
}

func TestForBlocksCoversRangeOnce(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		n := 57
		seen := make([]int32, n)
		ForBlocks(n, workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&seen[i], 1)
			}
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: index %d covered %d times", workers, i, c)
			}
		}
	}
}

func TestPoolRunsAllTasks(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var count int32
	for i := 0; i < 100; i++ {
		p.Submit(func() { atomic.AddInt32(&count, 1) })
	}
	p.Wait()
	if count != 100 {
		t.Fatalf("ran %d tasks, want 100", count)
	}
}

func TestPoolReuseAfterWait(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var count int32
	p.Submit(func() { atomic.AddInt32(&count, 1) })
	p.Wait()
	p.Submit(func() { atomic.AddInt32(&count, 1) })
	p.Wait()
	if count != 2 {
		t.Fatalf("count %d", count)
	}
}

func TestShardedRNGDeterminism(t *testing.T) {
	a := NewShardedRNG(42, 4)
	b := NewShardedRNG(42, 4)
	for s := 0; s < 4; s++ {
		for k := 0; k < 10; k++ {
			if a.Shard(s).Int63() != b.Shard(s).Int63() {
				t.Fatalf("shard %d diverged", s)
			}
		}
	}
}

func TestShardedRNGIndependence(t *testing.T) {
	r := NewShardedRNG(42, 2)
	x, y := r.Shard(0).Int63(), r.Shard(1).Int63()
	if x == y {
		t.Fatal("shards produced identical first draw (suspicious)")
	}
}

func TestShardedRNGWrapsIndex(t *testing.T) {
	r := NewShardedRNG(1, 3)
	if r.Shard(3) != r.Shard(0) {
		t.Fatal("shard index must wrap")
	}
	if r.Shards() != 3 {
		t.Fatal("shard count")
	}
}

func TestShardedRNGMinimumOneShard(t *testing.T) {
	r := NewShardedRNG(1, 0)
	if r.Shards() != 1 {
		t.Fatal("must default to one shard")
	}
}

func TestDeriveSeedDistinct(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 100; i++ {
		s := DeriveSeed(7, i)
		if seen[s] {
			t.Fatalf("duplicate derived seed at %d", i)
		}
		seen[s] = true
	}
	if DeriveSeed(7, 0) != DeriveSeed(7, 0) {
		t.Fatal("derivation must be deterministic")
	}
}
