package batch

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/topoparse"
	"repro/internal/workload"
)

// ForEach runs body(i, rng) for every i in [0, n) across at most workers
// goroutines (GOMAXPROCS when ≤ 0), handing indices out dynamically so
// wildly uneven unit costs cannot idle the pool. Each index gets its own
// deterministic RNG stream derived from seed, so results are identical for
// any worker count. A body that panics is captured as that index's error; a
// context cancellation marks every not-yet-started index with ctx.Err().
// Either way the remaining units keep the pool draining — one bad unit
// never wedges the run. The returned slice has one entry per index (nil on
// success).
func ForEach(ctx context.Context, n, workers int, seed int64, body func(i int, rng *rand.Rand) error) []error {
	return forEach(ctx, n, workers, func(i int) error {
		return body(i, rand.New(rand.NewSource(parallel.DeriveSeed(seed, i))))
	})
}

// forEach is ForEach without the per-index RNG, for callers (the grid
// runner) that derive their own streams and should not pay for an unused
// generator per unit.
func forEach(ctx context.Context, n, workers int, body func(i int) error) []error {
	errs := make([]error, n)
	parallel.ForDynamic(n, workers, func(i int) {
		if ctx != nil && ctx.Err() != nil {
			errs[i] = ctx.Err()
			return
		}
		defer func() {
			if r := recover(); r != nil {
				errs[i] = fmt.Errorf("batch: unit %d panicked: %v", i, r)
			}
		}()
		errs[i] = body(i)
	})
	return errs
}

// Outcome is what a RunFunc reports for one completed unit.
type Outcome struct {
	// Rounds executed and whether the convergence target was reached.
	Rounds    int  `json:"rounds"`
	Converged bool `json:"converged"`
	// PhiStart and PhiEnd bracket the potential trajectory.
	PhiStart float64 `json:"phi_start"`
	PhiEnd   float64 `json:"phi_end"`
	// Bound is the paper's round bound for this configuration (0 when no
	// theorem applies) and BoundName the theorem behind it.
	Bound     float64 `json:"bound,omitempty"`
	BoundName string  `json:"bound_name,omitempty"`
	// Scenario metrics, populated by non-static scenario runs only (all
	// zero — and omitted from journals — for static units, keeping
	// scenario-free journal bytes identical to the pre-scenario engine):
	// PeakPhi is the largest potential observed over the run (peak
	// backlog), SteadyRMS the mean RMS discrepancy over the final quarter
	// of rounds (steady state under ongoing arrivals), and RebalanceRounds
	// how many rounds after the last load injection the potential needed
	// to fall back under the target (0 when it never did — see Converged).
	PeakPhi         float64 `json:"peak_phi,omitempty"`
	SteadyRMS       float64 `json:"steady_rms,omitempty"`
	RebalanceRounds int     `json:"rebalance_rounds,omitempty"`
}

// RunFunc executes one run unit on graph g from the given initial loads.
// algoSeed drives the unit's randomized algorithm components; it is derived
// from the unit key, so implementations must use it (not global state) to
// stay deterministic under parallel scheduling.
type RunFunc func(u Unit, g *graph.G, loads []float64, algoSeed int64) (Outcome, error)

// Run expands spec and executes every unit through run on the worker pool.
// The only overall errors are spec-level (bad grid, unbuildable topology);
// per-unit failures and panics land in the matching cell's Err field so the
// rest of the sweep still completes.
func Run(spec Spec, run RunFunc) (*Report, error) {
	return RunContext(context.Background(), spec, run)
}

// RunContext is Run with cancellation: units not yet started when ctx fires
// record ctx.Err() in their cells, the already-running ones finish normally,
// and the partial report is returned together with ctx.Err().
func RunContext(ctx context.Context, spec Spec, run RunFunc) (*Report, error) {
	return RunSink(ctx, spec, run, nil)
}

// RunSink is RunContext with a streaming sink: every finished cell is also
// delivered to sink in expansion order, each the moment it and all its
// predecessors completed (see Sink). sink may be nil. The report is returned
// even when ctx fires or the sink errors, alongside the corresponding error,
// so callers always have the partial results the journal also recorded.
func RunSink(ctx context.Context, spec Spec, run RunFunc, sink Sink) (*Report, error) {
	return runSink(ctx, spec, run, sink, nil, true)
}

// RunStream is RunSink without the in-process Report: cells go to sink only,
// so the run's memory footprint is independent of the unit count (the
// sequencer's bounded lookahead window is all that is ever buffered). Pair it
// with an AggSink — which folds aggregates incrementally — to render a
// summary of a grid too large to hold cell-by-cell in RAM. sink is required.
func RunStream(ctx context.Context, spec Spec, run RunFunc, sink Sink) error {
	_, err := runSink(ctx, spec, run, sink, nil, false)
	return err
}

// ResumeStream is Resume without the in-process Report — the streaming
// counterpart for resumed sweeps. (The replay index itself holds one key and
// outcome per journaled unit; the cells never materialize.)
func ResumeStream(ctx context.Context, spec Spec, run RunFunc, journal *Journal, sink Sink) error {
	if sink == nil {
		return fmt.Errorf("batch: ResumeStream needs a sink")
	}
	if journal == nil {
		return RunStream(ctx, spec, run, sink)
	}
	if err := journal.CheckSpec(spec); err != nil {
		return err
	}
	_, err := runSink(ctx, spec, run, sink, journal.replay(), false)
	return err
}

// runSink is the engine body shared by fresh runs and resumes: replay maps
// unit Keys to journaled outcomes that are adopted instead of re-run. When
// collect is false no cells are retained and the returned report is nil —
// the streaming path for grids whose cells must not accumulate in memory.
func runSink(ctx context.Context, spec Spec, run RunFunc, sink Sink, replay map[string]Outcome, collect bool) (*Report, error) {
	spec = spec.withDefaults()
	units, err := Expand(spec)
	if err != nil {
		return nil, err
	}
	if !collect && sink == nil {
		return nil, fmt.Errorf("batch: streaming run needs a sink")
	}
	// A sharded spec runs (and reports, and journals) only its own slice of
	// the expansion; the slice preserves expansion order, so the sequencer
	// still delivers a deterministic stream and the journal's indices are
	// monotonic — what lets MergeJournals interleave shard journals back
	// into global expansion order.
	units = spec.ownedUnits(units)
	graphs, err := BuildGraphs(spec)
	if err != nil {
		return nil, err
	}
	if sw, ok := sink.(SpecWriter); ok {
		if err := sw.Spec(spec); err != nil {
			return nil, err
		}
	}

	// A failing sink (disk full under the journal) cancels the sweep: with
	// nothing durable being recorded, computing the remaining units at full
	// cost would be pure waste. In-flight units finish; the rest record the
	// cancellation.
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	start := time.Now()
	var cells []Cell
	if collect {
		cells = make([]Cell, len(units))
	}
	// The unit pool width comes from the resolved hybrid split, so a
	// round-parallel sweep (RoundWorkers auto, few huge cells) narrows the
	// pool instead of stacking both levels of fan-out.
	unitWorkers, _ := spec.WorkerSplit()
	var seq *sequencer
	if sink != nil {
		seq = newSequencer(sink, cancel, sinkLookahead(unitWorkers))
	}
	parallel.ForDynamic(len(units), unitWorkers, func(i int) {
		if seq != nil {
			w0 := time.Now()
			seq.acquire(i)
			sinkWait.Observe(time.Since(w0).Seconds())
		}
		c := execUnit(ctx, spec, units[i], graphs[units[i].Topology], run, replay)
		if collect {
			cells[i] = c
		}
		if seq != nil {
			seq.deliver(i, c)
		}
	})

	var rep *Report
	if collect {
		rep = &Report{
			Spec:    spec,
			Cells:   cells,
			Elapsed: time.Since(start),
		}
		rep.aggregate()
	}
	if seq != nil && seq.err != nil {
		return rep, seq.err
	}
	if ctx.Err() != nil {
		return rep, ctx.Err()
	}
	return rep, nil
}

// sinkLookahead sizes the sequencer's window: wide enough that a full pool
// never throttles on ordinary cost variation, narrow enough that one
// pathologically slow unit cannot leave an unbounded stretch of completed
// cells buffered in memory instead of journaled.
func sinkLookahead(workers int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return 4*workers + 16
}

// builtGraphs memoizes topology construction per (name, n): construction is
// deterministic (the seed derives from the name alone), graphs are
// immutable, and the engine's instance-sharing invariant only gets stronger
// when validation, repeated sweeps and the run itself all see the same
// instance — so the second build a validate-then-run CLI would otherwise
// pay disappears, and so do duplicate eigensolves downstream (same instance
// → same speccache fingerprint, trivially).
var builtGraphs sync.Map // "name|n" → *graph.G

// BuildGraphs builds each distinct topology of spec exactly as the engine
// will run it: with name-derived construction seeds, so randomized families
// (rgg, smallworld, random-regular) are reproducible regardless of pool
// scheduling and every unit of a topology sees the same instance — the same
// one across repeated calls in a process, via memoization. Exposed so
// callers can validate a spec's topologies are buildable before committing
// to side effects (truncating a journal file) without paying for the
// construction twice.
func BuildGraphs(spec Spec) (map[string]*graph.G, error) {
	spec = spec.withDefaults()
	names, err := normalize("topology", spec.Topologies)
	if err != nil {
		return nil, err
	}
	graphs := make(map[string]*graph.G)
	for _, name := range names {
		key := fmt.Sprintf("%s|%d", name, spec.N)
		if g, ok := builtGraphs.Load(key); ok {
			graphs[name] = g.(*graph.G)
			continue
		}
		g, err := topoparse.Build(name, spec.N, topologySeed(name))
		if err != nil {
			return nil, fmt.Errorf("batch: %w", err)
		}
		// Concurrent builders race benignly: construction is deterministic,
		// so whichever instance lands in the map is the one everyone shares
		// from then on.
		actual, _ := builtGraphs.LoadOrStore(key, g)
		graphs[name] = actual.(*graph.G)
	}
	return graphs, nil
}

// execUnit produces unit u's cell: a replayed outcome when the journal has
// one, a fresh run otherwise. Panics and per-unit errors are captured in the
// cell so one bad unit never wedges the sweep.
func execUnit(ctx context.Context, spec Spec, u Unit, g *graph.G, run RunFunc, replay map[string]Outcome) (c Cell) {
	c.Unit = u
	if out, ok := replay[u.Key()]; ok {
		c.Outcome = out
		c.finish(g.N())
		unitsReplayed.Inc()
		return c
	}
	if ctx != nil && ctx.Err() != nil {
		c.Err = ctx.Err().Error()
		return c
	}
	defer func() {
		if r := recover(); r != nil {
			c = Cell{Unit: u, Err: fmt.Sprintf("batch: unit %d panicked: %v", u.Index, r)}
			unitsFailed.Inc()
		}
	}()
	// Both streams hang off the unit key, not the grid position, so a
	// cell's numbers survive the grid growing around it.
	base := u.seedBase()
	loads := workload.Continuous(u.Workload, g.N(),
		spec.Scale, rand.New(rand.NewSource(parallel.DeriveSeed(base, 0))))
	algoSeed := parallel.DeriveSeed(base, 1)

	unitStart := time.Now()
	out, err := run(u, g, loads, algoSeed)
	c.Outcome = out
	c.Wall = time.Since(unitStart)
	unitWall.Observe(c.Wall.Seconds())
	if err != nil {
		c.Err = err.Error()
		unitsFailed.Inc()
		return c
	}
	c.finish(g.N())
	unitsDone.Inc()
	return c
}

// topologySeed derives the deterministic construction seed for a randomized
// topology family from the topology name alone — never from the sweep's
// seed list — so the instance behind a unit Key is stable no matter how the
// grid grows around it (the Key-as-cache-identity invariant).
func topologySeed(name string) int64 {
	h := int64(0)
	for _, c := range name {
		h = h*131 + int64(c)
	}
	return parallel.DeriveSeed(h, 0)
}

// boundRatio is rounds/bound, or 0 when no bound applies (kept NaN-free so
// the report marshals to JSON).
func boundRatio(rounds int, bound float64) float64 {
	if bound <= 0 || math.IsNaN(bound) {
		return 0
	}
	return float64(rounds) / bound
}
