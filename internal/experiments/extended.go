package experiments

import (
	"math"
	"math/rand"

	"repro/internal/async"
	"repro/internal/diffusion"
	"repro/internal/dimexchange"
	"repro/internal/flow"
	"repro/internal/matrix"
	"repro/internal/randpair"
	"repro/internal/sim"
	"repro/internal/speccache"
	"repro/internal/trace"
	"repro/internal/workload"
)

func init() {
	register("E15", E15FlowOptimality)
	register("E16", E16CommunicationCost)
	register("A4", A4OPSComparison)
	register("A5", A5SyncVsAsync)
}

// E15FlowOptimality verifies the [7] flow theorem on the paper's scheme:
// the cumulative per-edge flow routed by the continuous Algorithm 1
// converges to the ℓ₂-minimal balancing flow. Reports ‖realized‖₂,
// ‖optimal‖₂ and their relative deviation per topology.
func E15FlowOptimality(o Options) *trace.Table {
	t := trace.NewTable("E15 — Algorithm 1 routes the ℓ₂-minimal balancing flow ([7])",
		"graph", "‖realized‖₂", "‖optimal‖₂", "rel. deviation", "max edge (realized)", "max edge (optimal)")
	horizon := 50000
	if o.Quick {
		horizon = 5000
	}
	suite := fixedSuite(o.Quick)
	rows := make([]row, len(suite))
	o.sweep(len(rows), func(i int, _ *rand.Rand) {
		g := suite[i]
		l := matrix.Vector(workload.Continuous(workload.Spike, g.N(), 1e6, nil))
		opt, err := speccache.OptimalFlow(g, l)
		if err != nil {
			return
		}
		acc := flow.NewAccumulator(g)
		cur := l.Clone()
		for round := 0; round < horizon; round++ {
			flows := diffusion.RoundFlowsContinuous(g, cur)
			if len(flows) == 0 {
				break
			}
			for _, fl := range flows {
				_ = acc.Record(fl.Edge.U, fl.Edge.V, fl.Amount)
				cur[fl.Edge.U] -= fl.Amount
				cur[fl.Edge.V] += fl.Amount
			}
		}
		diff, err := acc.Flow.Sub(opt)
		if err != nil {
			return
		}
		rel := diff.L2() / (1 + opt.L2())
		rows[i] = row{g.Name(), acc.Flow.L2(), opt.L2(), rel, acc.Flow.MaxEdge(), opt.MaxEdge()}
	})
	emit(t, rows)
	t.Note("rel. deviation ≈ 0 on every row confirms Algorithm 1 realizes the optimal flow in the limit — an end-to-end check of stepper + Laplacian solver together.")
	return t
}

// E16CommunicationCost compares the communication bill of the schemes on
// identical instances: total load moved across edges (Σ|flow| aggregated
// over rounds), edge activations used, and rounds, all measured at the same
// convergence target. Diffusion wins rounds; the flow/activation columns
// show what it pays (or does not) for that.
func E16CommunicationCost(o Options) *trace.Table {
	t := trace.NewTable("E16 — communication cost to reach 1e-4·Φ⁰ (spike start)",
		"graph", "scheme", "rounds", "edge activations", "total load moved", "moved/optimal-L1")
	const eps = 1e-4
	horizon := 200000
	if o.Quick {
		horizon = 20000
	}
	suite := fixedSuite(o.Quick)
	// The optimal-flow L1 depends only on the topology (same spike start for
	// every scheme): the speccache runs one Laplacian solve per graph —
	// shared with E15's per-topology solve, which uses the same spike load —
	// and the three scheme cells of each topology hit it.
	schemes := []string{"diffusion", "dimexchange", "randpair"}
	rows := make([]row, len(suite)*len(schemes))
	o.sweep(len(rows), func(ci int, rng *rand.Rand) {
		g, scheme := suite[ci/len(schemes)], schemes[ci%len(schemes)]
		l := matrix.Vector(workload.Continuous(workload.Spike, g.N(), 1e6, nil))
		phi0 := potentialOf(l)
		target := eps * phi0
		optL1 := math.NaN()
		if opt, err := speccache.OptimalFlow(g, l); err == nil {
			optL1 = opt.L1()
		}

		var moved float64
		activations := 0
		rounds := 0
		switch scheme {
		case "diffusion":
			cur := l.Clone()
			for rounds = 0; rounds < horizon && potentialOf(cur) > target; rounds++ {
				for _, fl := range diffusion.RoundFlowsContinuous(g, cur) {
					moved += math.Abs(fl.Amount)
					activations++
					cur[fl.Edge.U] -= fl.Amount
					cur[fl.Edge.V] += fl.Amount
				}
			}
		case "dimexchange":
			st := dimexchange.NewContinuous(g, l, rng)
			for rounds = 0; rounds < horizon && st.Potential() > target; rounds++ {
				before := st.Load.Vector().Clone()
				st.Step()
				for _, e := range st.LastMatching {
					d := math.Abs(before[e.U]-before[e.V]) / 2
					if d > 0 {
						moved += d
						activations++
					}
				}
			}
		case "randpair":
			// Not edge-constrained: moved/optimal is reported for scale only.
			st := randpair.NewContinuous(l, rng)
			for rounds = 0; rounds < horizon && st.Potential() > target; rounds++ {
				before := st.Load.Vector().Clone()
				st.Step()
				var roundMoved float64
				for i := range before {
					roundMoved += math.Abs(st.Load.At(i) - before[i])
				}
				moved += roundMoved / 2 // each unit leaves one node and arrives at another
				activations += len(st.LastLinks)
			}
		}
		rows[ci] = row{g.Name(), scheme, rounds, activations, moved, moved / optL1}
	})
	emit(t, rows)
	t.Note("moved/optimal-L1 near 1 means the scheme wastes no transport; > 1 measures load sent back and forth. Random partners moves load off-topology, so its ratio is for scale only.")
	return t
}

// A4OPSComparison positions the OPS scheme of [7] against Algorithm 1 and
// the first-order scheme: rounds to 1e-9·Φ⁰ (OPS terminates exactly after
// m rounds; the iterative schemes approach asymptotically).
func A4OPSComparison(o Options) *trace.Table {
	t := trace.NewTable("A4 — ablation: OPS [7] vs iterative schemes (rounds to 1e-9·Φ⁰)",
		"graph", "OPS rounds (=m)", "OPS Φ end", "algorithm 1", "first order")
	const eps = 1e-9
	horizon := 1000000
	if o.Quick {
		horizon = 100000
	}
	suite := fixedSuite(o.Quick)
	rows := make([]row, len(suite))
	o.sweep(len(rows), func(i int, _ *rand.Rand) {
		g := suite[i]
		init := workload.Continuous(workload.Spike, g.N(), 1e6, nil)
		ops, err := diffusion.NewOPS(g, init)
		if err != nil {
			return
		}
		for !ops.Done() {
			ops.Step()
		}
		a1 := sim.RoundsToFraction(diffusion.NewContinuous(g, init), eps, horizon)
		fo := sim.RoundsToFraction(diffusion.NewFirstOrder(g, init), eps, horizon)
		rows[i] = row{g.Name(), ops.Rounds(), ops.Potential(), a1, fo}
	})
	emit(t, rows)
	t.Note("OPS is exact after m = #distinct nonzero Laplacian eigenvalues rounds in exact arithmetic; factors are applied in Leja-stabilized order, but for large m with extreme λ_max/λ₂ (the path) a small relative residual (~1e-6·Φ⁰) survives in floating point — the known reason [7] recommend OPS only for modest m. The local schemes need no spectral knowledge at all.")
	return t
}

// A5SyncVsAsync compares Algorithm 1 against the asynchronous edge-at-a-time
// balancer of [5] at equal edge-activation budgets (one synchronous round =
// m async ticks): rounds-equivalent to reach 1e-4·Φ⁰.
func A5SyncVsAsync(o Options) *trace.Table {
	t := trace.NewTable("A5 — ablation: synchronous Algorithm 1 vs asynchronous pairwise balancing (equal activation budgets)",
		"graph", "sync rounds", "async uniform (round-equivs)", "async roundrobin", "async/sync")
	const eps = 1e-4
	horizon := 200000
	if o.Quick {
		horizon = 20000
	}
	suite := fixedSuite(o.Quick)
	rows := make([]row, len(suite))
	o.sweep(len(rows), func(i int, rng *rand.Rand) {
		g := suite[i]
		init := workload.Continuous(workload.Spike, g.N(), 1e6, nil)
		sync := sim.RoundsToFraction(diffusion.NewContinuous(g, init), eps, horizon)
		asyncU := sim.RoundsToFraction(
			async.NewContinuous(g, init, async.UniformRandom, rand.New(rand.NewSource(rng.Int63()))), eps, horizon)
		asyncR := sim.RoundsToFraction(
			async.NewContinuous(g, init, async.RoundRobin, nil), eps, horizon)
		rows[i] = row{g.Name(), sync, asyncU, asyncR, float64(asyncU) / float64(sync)}
	})
	emit(t, rows)
	t.Note("async balances each activated pair exactly (vs Algorithm 1's conservative 1/4 factor), so at equal budgets it is usually ahead — the cost is losing the synchronous-round structure the paper's bounds are stated in.")
	return t
}
