package randpair

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/workload"
)

// The parallel Step path replays the serial loop's exact floating-point
// operation chain: transfers are computed from the round-start vector and
// each node accumulates its incident transfers in global link order, so
// the results must match the serial in-place loop bit for bit — including
// the heavier-endpoint sign convention and zero-magnitude transfers.

func TestContinuousParallelMatchesSerial(t *testing.T) {
	for _, n := range []int{2, 3, 17, 64, 101} {
		for _, w := range []int{2, 3, 7, 16} {
			init := workload.Continuous(workload.Spike, n, 1e6*float64(n), nil)
			serial := NewContinuous(init, rand.New(rand.NewSource(9)))
			par := NewContinuous(init, rand.New(rand.NewSource(9)))
			par.Workers = w
			for r := 0; r < 60; r++ {
				serial.Step()
				par.Step()
				sv, pv := serial.Load.Vector(), par.Load.Vector()
				for i := range sv {
					if math.Float64bits(sv[i]) != math.Float64bits(pv[i]) {
						t.Fatalf("n=%d workers=%d round %d node %d: %v != %v", n, w, r, i, pv[i], sv[i])
					}
				}
			}
		}
	}
}

func TestDiscreteParallelMatchesSerial(t *testing.T) {
	for _, n := range []int{2, 3, 17, 64, 101} {
		for _, w := range []int{2, 3, 7, 16} {
			init := workload.Discrete(workload.Spike, n, int64(n)*1_000_000, nil)
			serial := NewDiscrete(init, rand.New(rand.NewSource(9)))
			par := NewDiscrete(init, rand.New(rand.NewSource(9)))
			par.Workers = w
			for r := 0; r < 60; r++ {
				serial.Step()
				par.Step()
				st, pt := serial.Load.Tokens(), par.Load.Tokens()
				for i := range st {
					if st[i] != pt[i] {
						t.Fatalf("n=%d workers=%d round %d node %d: %d != %d", n, w, r, i, pt[i], st[i])
					}
				}
			}
		}
	}
}
