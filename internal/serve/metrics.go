package serve

import "repro/internal/obs"

// Daemon metrics on the process-wide registry, served at /metrics/prom
// next to the JSON /metrics document (whose shape is unchanged — scrapers
// of either surface see the same counters). lbserved runs one Server per
// process, so process-wide series are the server's series; a test binary
// hosting several Servers sees their sums, which is fine for smoke
// assertions.
var (
	mRounds = obs.Default().Counter("lbserved_rounds_total",
		"Balancing rounds committed.")
	mArrivals = obs.Default().Counter("lbserved_arrivals_total",
		"Arrival events injected (replay + HTTP).")
	mLoadInjected = obs.Default().Gauge("lbserved_load_injected",
		"Cumulative load injected into the session.")
	mPhi = obs.Default().Gauge("lbserved_phi",
		"Potential after the last committed round.")
	// Per-node queue depths, observed once per node per round — the
	// streaming histogram behind tail-quantile questions the JSON
	// snapshot's sorted percentiles can't answer over time. Buckets span
	// 1 .. ~2.6e5 load units.
	mBacklog = obs.Default().Histogram("lbserved_backlog_depth",
		"Per-node queue depth, observed each round.", obs.ExpBuckets(1, 2, 18))
)

// backlogObserveMaxN caps the per-round histogram walk: beyond this the
// O(n)-per-round observation would start competing with the round itself,
// so million-node daemons keep the JSON snapshot percentiles only.
const backlogObserveMaxN = 16384

// observeRound folds one committed round into the registry.
func observeRound(phi float64, arrivals int, injected float64, loads []float64) {
	mRounds.Inc()
	mArrivals.Add(uint64(arrivals))
	mLoadInjected.Add(injected)
	mPhi.Set(phi)
	if len(loads) <= backlogObserveMaxN {
		for _, v := range loads {
			mBacklog.Observe(v)
		}
	}
}
