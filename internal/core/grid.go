package core

import (
	"context"
	"fmt"

	"repro/internal/batch"
	"repro/internal/graph"
	"repro/internal/obs"
)

// GridOption configures one GridRun invocation.
type GridOption func(*gridOptions)

type gridOptions struct {
	sink       batch.Sink
	journal    *batch.Journal
	shard, of  int
	sharded    bool
	streamOnly bool
	tracer     *obs.Tracer
}

// GridSink streams every finished cell to sink in expansion order as the
// sweep progresses (typically a batch.JSONLSink journal, which makes long
// sweeps crash-resumable, or a batch.AggSink — fan out with
// batch.MultiSink for both).
func GridSink(sink batch.Sink) GridOption {
	return func(o *gridOptions) { o.sink = sink }
}

// GridResume replays units journaled with a clean outcome by Key instead
// of re-running them; missing and failed units execute normally. The
// merged report (and the stream written to the sink) is byte-identical to
// an uninterrupted run of the same spec — see batch.Resume, including its
// refusal of journals recorded under different run parameters. A nil
// journal is a fresh start.
func GridResume(journal *batch.Journal) GridOption {
	return func(o *gridOptions) { o.journal = journal }
}

// GridShard runs shard `shard` of `of` of the sweep: the slice of the
// expansion whose unit indices are ≡ shard (mod of), so the `of` shard
// processes together cover every unit exactly once. Each shard journals to
// its own sink; batch.MergeJournals (or lbbench -merge) reassembles the
// per-shard journals into one report byte-identical to a single-process
// sweep.
func GridShard(shard, of int) GridOption {
	return func(o *gridOptions) { o.shard, o.of, o.sharded = shard, of, true }
}

// GridStreamOnly skips materializing the in-process report — cells exist
// only in the sink's stream, so memory stays independent of the unit
// count. Requires GridSink; GridRun returns a nil report.
func GridStreamOnly() GridOption {
	return func(o *gridOptions) { o.streamOnly = true }
}

// GridTrace records the sweep's execution as hierarchical spans on tr: a
// root sweep span, one span per executed unit (replayed units emit
// nothing — they do no work) and synthetic per-phase child spans from the
// session's phase timings. The trace is written out-of-band — it never
// touches the sink's stream or the report, whose bytes stay identical to
// an untraced run. A nil tr is the no-op default.
func GridTrace(tr *obs.Tracer) GridOption {
	return func(o *gridOptions) { o.tracer = tr }
}

// GridRun expands the declarative sweep spec into independent run units
// and executes every (topology × algorithm × mode × workload × scenario ×
// seed) combination through Balance on the batch engine's worker pool.
// Per-unit RNG streams are derived from each unit's identity, so the
// aggregated report is identical for any Spec.Workers value — one
// invocation with Workers = GOMAXPROCS reproduces a whole paper figure's
// grid at full hardware speed. Per-(topology, n) spectral quantities
// (λ₂, γ) are memoized in the shared speccache, so they are computed once
// per process, not once per unit.
//
// Algorithm/mode combinations Balance rejects (e.g. firstorder × discrete)
// surface as per-cell errors in the report, not as an overall failure.
// Units not yet started when ctx fires record the context error in their
// cells, and the partial report is returned together with ctx.Err().
//
// Options compose the sweep's plumbing: GridSink streams cells, GridResume
// skips journaled work, GridShard takes one slice of a multi-process
// sweep, GridStreamOnly drops the in-process report. This is the sole
// sweep entry point — the pre-PR-8 BalanceGrid* wrappers are gone; each
// was a one-line composition of the options above.
func GridRun(ctx context.Context, spec batch.Spec, opts ...GridOption) (*batch.Report, error) {
	var o gridOptions
	for _, opt := range opts {
		opt(&o)
	}
	if o.sharded {
		sharded, err := spec.Shard(o.shard, o.of)
		if err != nil {
			return nil, err
		}
		spec = sharded
	}
	if err := validateGridSpec(spec); err != nil {
		return nil, err
	}
	run := balanceRunFunc(spec, o.tracer)
	var sweepStart int64
	if o.tracer.Enabled() {
		o.tracer.ThreadName(0, "sweep")
		sweepStart = o.tracer.Now()
	}
	var rep *batch.Report
	var err error
	if o.streamOnly {
		err = batch.ResumeStream(ctx, spec, run, o.journal, o.sink)
	} else {
		rep, err = batch.Resume(ctx, spec, run, o.journal, o.sink)
	}
	if o.tracer.Enabled() {
		o.tracer.Complete("sweep", "sweep", 0, sweepStart, map[string]any{
			"topologies": spec.Topologies, "algorithms": spec.Algorithms,
			"n": spec.N, "seeds": len(spec.Seeds),
		})
		_ = o.tracer.Flush()
	}
	return rep, err
}

// ValidateGridSpec rejects every spec GridRun would reject, without
// running any unit: dimension validation (empty/duplicate entries,
// duplicate seeds), algorithm names, and topology buildability at spec.N.
// The topology check constructs each graph (and discards it — the sweep
// builds its own), so call this only when an early failure protects a side
// effect, in particular before truncating a journal file that a failed
// sweep could not repopulate.
func ValidateGridSpec(spec batch.Spec) error {
	if err := validateGridSpec(spec); err != nil {
		return err
	}
	_, err := batch.BuildGraphs(spec)
	return err
}

// validateGridSpec rejects bad specs up front: a typo'd algorithm or an
// empty/duplicated dimension should fail the sweep, not silently error
// every cell.
func validateGridSpec(spec batch.Spec) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	for _, name := range spec.Algorithms {
		if _, err := ParseAlgorithm(name); err != nil {
			return err
		}
	}
	return nil
}

// balanceRunFunc adapts Balance to the engine's RunFunc. The round-level
// worker width is resolved from the spec's hybrid split once, up front —
// every unit's stepper fans its node loops that wide (results are
// byte-identical for any width, so this is purely a scheduling choice).
// With a non-nil tracer each executed unit emits a complete span (on a
// leased tid, so concurrent units render as separate rows) with synthetic
// child spans for the session phases; with the nil default the Config
// carries a nil Phases and the unit runs with zero telemetry cost.
func balanceRunFunc(spec batch.Spec, tracer *obs.Tracer) batch.RunFunc {
	_, roundWorkers := spec.WorkerSplit()
	return func(u batch.Unit, g *graph.G, loads []float64, algoSeed int64) (batch.Outcome, error) {
		alg, err := ParseAlgorithm(u.Algorithm)
		if err != nil {
			return batch.Outcome{}, err
		}
		mode := Continuous
		if u.Mode == "discrete" {
			mode = Discrete
		}
		var phases *obs.Phases
		var tid, unitStart int64
		if tracer.Enabled() {
			phases = &obs.Phases{}
			tid = tracer.AcquireTID()
			unitStart = tracer.Now()
		}
		res, err := Balance(Config{
			Graph:        g,
			Algorithm:    alg,
			Mode:         mode,
			Loads:        loads,
			Epsilon:      spec.Epsilon,
			MaxRounds:    spec.MaxRounds,
			Seed:         nonZeroSeed(algoSeed),
			Workers:      roundWorkers,
			Scenario:     u.ScenarioSpec,
			ScenarioSeed: nonZeroSeed(u.ScenarioSeed()),
			Phases:       phases,
		})
		if tracer.Enabled() {
			args := map[string]any{
				"unit": u.Index, "n": g.N(), "seed": u.Seed,
				"rounds": res.Rounds,
			}
			tracer.Complete(u.Key(), "unit", tid, unitStart, args)
			phases.EmitSpans(tracer, tid, unitStart)
			tracer.ReleaseTID(tid)
		}
		if err != nil {
			return batch.Outcome{}, fmt.Errorf("%s: %w", u.Key(), err)
		}
		return batch.Outcome{
			Rounds:          res.Rounds,
			Converged:       res.Converged,
			PhiStart:        res.PhiStart,
			PhiEnd:          res.PhiEnd,
			Bound:           res.Bound,
			BoundName:       res.BoundName,
			PeakPhi:         res.PeakPhi,
			SteadyRMS:       res.SteadyRMS,
			RebalanceRounds: res.RebalanceRounds,
		}, nil
	}
}

// nonZeroSeed keeps a derived seed out of Balance's "0 means default"
// convention.
func nonZeroSeed(s int64) int64 {
	if s == 0 {
		return 1
	}
	return s
}
