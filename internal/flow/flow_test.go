package flow

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/diffusion"
	"repro/internal/graph"
	"repro/internal/matrix"
	"repro/internal/workload"
)

func TestOptimalIsBalancing(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, g := range []*graph.G{graph.Cycle(10), graph.Torus(4, 4), graph.Hypercube(4), graph.Star(9)} {
		l := matrix.Vector(workload.Continuous(workload.Uniform, g.N(), 100, rng))
		f, err := Optimal(g, l)
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		if !IsBalancing(f, l, 1e-7) {
			t.Fatalf("%s: optimal flow does not balance", g.Name())
		}
	}
}

func TestOptimalPathTwoNodes(t *testing.T) {
	// Two nodes, loads {10, 0}: the only balancing flow routes 5 across.
	g := graph.Path(2)
	f, err := Optimal(g, matrix.Vector{10, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Values[0]-5) > 1e-9 {
		t.Fatalf("flow = %v, want 5", f.Values[0])
	}
}

func TestOptimalCycleSymmetricSpike(t *testing.T) {
	// Spike on a cycle: by symmetry the two directions around the ring
	// carry equal flow at the two edges incident to the spike.
	g := graph.Cycle(6)
	l := matrix.Vector{60, 0, 0, 0, 0, 0}
	f, err := Optimal(g, l)
	if err != nil {
		t.Fatal(err)
	}
	// Edges (0,1) and (0,5) must carry equal magnitude out of node 0.
	var out01, out05 float64
	for k, e := range g.Edges() {
		if e.U == 0 && e.V == 1 {
			out01 = f.Values[k]
		}
		if e.U == 0 && e.V == 5 {
			out05 = f.Values[k]
		}
	}
	if math.Abs(out01-out05) > 1e-9 {
		t.Fatalf("asymmetric ring flow: %v vs %v", out01, out05)
	}
}

func TestOptimalMinimalAmongBalancing(t *testing.T) {
	// Optimality: perturbing the optimal flow by any circulation must not
	// reduce ‖f‖₂. Use the cycle's fundamental circulation.
	g := graph.Cycle(8)
	rng := rand.New(rand.NewSource(2))
	l := matrix.Vector(workload.Continuous(workload.Uniform, g.N(), 50, rng))
	f, err := Optimal(g, l)
	if err != nil {
		t.Fatal(err)
	}
	base := f.L2()
	for _, epsVal := range []float64{0.5, -0.5, 2, -2} {
		perturbed := NewEdgeFlow(g)
		copy(perturbed.Values, f.Values)
		// A circulation on the cycle: +ε around the ring. Edge (i, i+1) is
		// oriented U→V with U < V except the wrap edge (0, n−1), which is
		// canonical (0, n−1) but points "backwards" along the ring.
		for k, e := range g.Edges() {
			if e.U == 0 && e.V == g.N()-1 {
				perturbed.Values[k] -= epsVal
			} else {
				perturbed.Values[k] += epsVal
			}
		}
		if !IsBalancing(perturbed, l, 1e-7) {
			t.Fatal("circulation must preserve divergence")
		}
		if perturbed.L2() < base-1e-9 {
			t.Fatalf("found a smaller balancing flow: %v < %v", perturbed.L2(), base)
		}
	}
}

func TestDivergenceZeroFlow(t *testing.T) {
	g := graph.Torus(3, 3)
	f := NewEdgeFlow(g)
	for _, d := range f.Divergence() {
		if d != 0 {
			t.Fatal("zero flow must have zero divergence")
		}
	}
}

func TestNormsAndSub(t *testing.T) {
	g := graph.Path(3) // edges (0,1), (1,2)
	f := NewEdgeFlow(g)
	f.Add(0, 3)
	f.Add(1, -4)
	if f.L1() != 7 || f.MaxEdge() != 4 {
		t.Fatalf("L1=%v MaxEdge=%v", f.L1(), f.MaxEdge())
	}
	if math.Abs(f.L2()-5) > 1e-12 {
		t.Fatalf("L2=%v", f.L2())
	}
	d, err := f.Sub(f)
	if err != nil {
		t.Fatal(err)
	}
	if d.L2() != 0 {
		t.Fatal("f − f must be zero")
	}
}

func TestSubDifferentGraphs(t *testing.T) {
	if _, err := NewEdgeFlow(graph.Path(3)).Sub(NewEdgeFlow(graph.Path(3))); err == nil {
		t.Fatal("different graph instances must be rejected")
	}
}

func TestAccumulatorRecordsDirections(t *testing.T) {
	g := graph.Path(3)
	a := NewAccumulator(g)
	if err := a.Record(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := a.Record(1, 0, 0.5); err != nil { // reverse direction
		t.Fatal(err)
	}
	if math.Abs(a.Flow.Values[0]-1.5) > 1e-12 {
		t.Fatalf("net flow %v, want 1.5", a.Flow.Values[0])
	}
	if err := a.Record(0, 2, 1); err == nil {
		t.Fatal("non-edge must be rejected")
	}
}

// The [7] theorem as an integration test: the continuous Algorithm 1's
// cumulative flow converges to the ℓ₂-minimal balancing flow.
func TestDiffusionRoutesOptimalFlow(t *testing.T) {
	for _, g := range []*graph.G{graph.Cycle(12), graph.Torus(4, 4), graph.Hypercube(4)} {
		l := matrix.Vector(workload.Continuous(workload.Spike, g.N(), 1e6, nil))
		opt, err := Optimal(g, l)
		if err != nil {
			t.Fatal(err)
		}
		acc := NewAccumulator(g)
		cur := l.Clone()
		for round := 0; round < 20000; round++ {
			flows := diffusion.RoundFlowsContinuous(g, cur)
			if len(flows) == 0 {
				break
			}
			for _, fl := range flows {
				if err := acc.Record(fl.Edge.U, fl.Edge.V, fl.Amount); err != nil {
					t.Fatal(err)
				}
				cur[fl.Edge.U] -= fl.Amount
				cur[fl.Edge.V] += fl.Amount
			}
			// Stop once essentially balanced.
			if maxDev(cur) < 1e-9 {
				break
			}
		}
		diff, err := acc.Flow.Sub(opt)
		if err != nil {
			t.Fatal(err)
		}
		if rel := diff.L2() / (1 + opt.L2()); rel > 1e-6 {
			t.Fatalf("%s: realized flow deviates from optimal by %v (rel)", g.Name(), rel)
		}
	}
}

// Property: Optimal's divergence identity holds on random connected graphs.
func TestOptimalDivergenceProperty(t *testing.T) {
	f := func(seed uint8) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		n := 4 + r.Intn(12)
		g := graph.ErdosRenyi(n, 0.6, r)
		if !g.IsConnected() {
			return true
		}
		l := matrix.Vector(workload.Continuous(workload.Uniform, n, 100, r))
		fl, err := Optimal(g, l)
		if err != nil {
			return false
		}
		return IsBalancing(fl, l, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func maxDev(v matrix.Vector) float64 {
	mean := v.Mean()
	var m float64
	for _, x := range v {
		if d := math.Abs(x - mean); d > m {
			m = d
		}
	}
	return m
}
