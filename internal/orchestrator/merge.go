package orchestrator

import (
	"context"
	"fmt"
	"io"

	"repro/internal/batch"
	"repro/internal/core"
)

// MergeReport reassembles the plan's shard journals into the final report
// and renders it to stdout in the given format ("table", "csv" or "json") —
// the automatic last step of a supervised sweep, and the same output a
// single-process run of the plan's spec would print, byte for byte.
func (p *Plan) MergeReport(ctx context.Context, format string, streamAgg bool, stdout, stderr io.Writer) (failedUnits int, err error) {
	return p.MergeReportFrom(ctx, p.JournalPaths(), format, streamAgg, stdout, stderr)
}

// MergeReportFrom is MergeReport over an explicit journal set — the form
// the supervisor uses after a sweep with steals, where the journals are the
// planned shards plus whatever sub-range journals the steals minted.
// Because sub-range journals carry the same global unit indices the victim
// would have written, the merge is indistinguishable from an uninterrupted
// run.
//
// The classic path replays the merged journal through the resume engine, so
// any units the journals somehow miss re-run in-process rather than leaving
// holes. With streamAgg the journals fold straight into the incremental
// aggregator (nothing re-runs, no cell materializes) and a missing shard is
// an error instead.
//
// failedUnits counts journaled cells carrying errors — the caller's exit
// code distinguishes a complete-but-imperfect figure (some units failed)
// from a clean one exactly as a single-process sweep does.
func (p *Plan) MergeReportFrom(ctx context.Context, paths []string, format string, streamAgg bool, stdout, stderr io.Writer) (failedUnits int, err error) {
	if streamAgg {
		return p.mergeAggregates(paths, format, stdout, stderr)
	}
	journal, stats, err := batch.ReadMergedJournals(paths...)
	if err != nil {
		return 0, err
	}
	if stats.Dropped > 0 {
		fmt.Fprintf(stderr, "orchestrator: merge: dropped %d corrupt/truncated line(s); those units re-run\n", stats.Dropped)
	}
	report, runErr := core.GridRun(ctx, p.Spec, core.GridResume(journal))
	if report == nil {
		return 0, runErr
	}
	if err := report.Render(format, stdout); err != nil {
		return report.Failed(), fmt.Errorf("orchestrator: rendering merged report: %w", err)
	}
	if runErr != nil {
		return report.Failed(), runErr
	}
	return report.Failed(), nil
}

// mergeAggregates is the streaming-only render: fold the journals into an
// AggSink and print the aggregate report.
func (p *Plan) mergeAggregates(paths []string, format string, stdout, stderr io.Writer) (int, error) {
	agg := batch.NewAggSink()
	stats, err := batch.MergeJournals(agg, paths...)
	if err != nil {
		return 0, err
	}
	rep := agg.Report()
	if err := rep.Render(format, stdout); err != nil {
		return rep.Failed, fmt.Errorf("orchestrator: rendering merged aggregates: %w", err)
	}
	if stats.Dropped > 0 {
		fmt.Fprintf(stderr, "orchestrator: merge: dropped %d corrupt/truncated line(s)\n", stats.Dropped)
	}
	if rep.Missing() > 0 {
		if shards := agg.MissingShards(); len(shards) > 0 {
			fmt.Fprintf(stderr, "orchestrator: shard(s) %v never merged in\n", shards)
		}
		return rep.Failed, fmt.Errorf("orchestrator: merge is incomplete: %d of %d units missing", rep.Missing(), rep.ExpectedUnits)
	}
	return rep.Failed, nil
}
