package core

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"strconv"
	"testing"

	"repro/internal/batch"
	"repro/internal/graph"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// roundWorkerCounts are the worker counts every stepper must be
// byte-identical across: serial, even, odd-and-larger-than-most-chunks,
// and whatever this machine has. LB_TEST_ROUND_WORKERS appends an extra
// count, so CI can stress a specific width (e.g. 8) under -race without a
// code change.
func roundWorkerCounts(t *testing.T) []int {
	counts := []int{1, 2, 7, runtime.NumCPU()}
	if s := os.Getenv("LB_TEST_ROUND_WORKERS"); s != "" {
		w, err := strconv.Atoi(s)
		if err != nil || w < 1 {
			t.Fatalf("bad LB_TEST_ROUND_WORKERS=%q: want a positive worker count", s)
		}
		counts = append(counts, w)
	}
	return counts
}

// algorithmModes enumerates every supported algorithm×mode combination —
// the full stepper surface the byte-identity contract covers.
func algorithmModes() []struct {
	Algo Algorithm
	Mode Mode
} {
	var out []struct {
		Algo Algorithm
		Mode Mode
	}
	for _, a := range []Algorithm{Diffusion, DimensionExchange, RandomPartners, FirstOrder, SecondOrder, RoundRobinExchange} {
		for _, m := range []Mode{Continuous, Discrete} {
			if (a == FirstOrder || a == SecondOrder) && m == Discrete {
				continue
			}
			out = append(out, struct {
				Algo Algorithm
				Mode Mode
			}{a, m})
		}
	}
	return out
}

// loadBits fingerprints the stepper's live load state at bit level.
func loadBits(t *testing.T, sys sim.System, mode Mode) []uint64 {
	t.Helper()
	if mode == Discrete {
		tok := sys.(sim.DiscreteState).LoadTokens()
		out := make([]uint64, len(tok))
		for i, x := range tok {
			out[i] = uint64(x)
		}
		return out
	}
	v := sys.(sim.ContinuousState).LoadVector()
	out := make([]uint64, len(v))
	for i, x := range v {
		out[i] = math.Float64bits(x)
	}
	return out
}

// TestRoundWorkersByteIdentity is the core property of the hybrid
// parallelism design: for every algorithm×mode, stepping the system under
// any round-level worker count produces bit-identical load state to the
// serial run, round by round. Not "close" — identical: the parallel paths
// must execute the same floating-point operations in the same order.
func TestRoundWorkersByteIdentity(t *testing.T) {
	g := graph.Torus(8, 8)
	counts := roundWorkerCounts(t)
	const rounds = 50
	for _, am := range algorithmModes() {
		t.Run(fmt.Sprintf("%s-%s", am.Algo, modeName(am.Mode)), func(t *testing.T) {
			var ref [][]uint64 // per-round bits of the serial run
			for _, w := range counts {
				sys, err := NewSystem(Config{
					Graph:     g,
					Algorithm: am.Algo,
					Mode:      am.Mode,
					Loads:     SpikeLoads(g.N(), 1e6*float64(g.N())),
					Seed:      7,
					Workers:   w,
				})
				if err != nil {
					t.Fatal(err)
				}
				var trace [][]uint64
				for r := 0; r < rounds; r++ {
					sys.Step()
					bits := loadBits(t, sys, am.Mode)
					trace = append(trace, append([]uint64(nil), bits...))
				}
				if ref == nil {
					ref = trace
					continue
				}
				for r := range ref {
					for i := range ref[r] {
						if ref[r][i] != trace[r][i] {
							t.Fatalf("workers=%d: round %d node %d: load bits %016x != serial %016x",
								w, r, i, trace[r][i], ref[r][i])
						}
					}
				}
			}
		})
	}
}

// TestRoundWorkersScenarioByteIdentity extends the contract to dynamic
// scenarios: mid-run graph swaps (edge churn rebuilds the stepper on a
// fresh subgraph most rounds) and adversarial arrivals must also be
// invariant under the round worker count — the swap path rebuilds steppers
// through the same Workers-threading constructor path as the first build.
func TestRoundWorkersScenarioByteIdentity(t *testing.T) {
	g := graph.Hypercube(5)
	scenarios := []string{"edge-churn:0.3", "adversarial-respike:4:0.5", "periodic-failures:3:2"}
	for _, scn := range scenarios {
		spec, err := scenario.Parse(scn)
		if err != nil {
			t.Fatal(err)
		}
		for _, am := range algorithmModes() {
			t.Run(fmt.Sprintf("%s/%s-%s", scn, am.Algo, modeName(am.Mode)), func(t *testing.T) {
				var ref Result
				var have bool
				for _, w := range roundWorkerCounts(t) {
					res, err := Balance(Config{
						Graph:     g,
						Algorithm: am.Algo,
						Mode:      am.Mode,
						Loads:     SpikeLoads(g.N(), 1e6*float64(g.N())),
						Epsilon:   1e-3,
						MaxRounds: 60,
						Seed:      3,
						Workers:   w,
						Scenario:  spec,
					})
					if err != nil {
						t.Fatal(err)
					}
					if !have {
						ref, have = res, true
						continue
					}
					if len(res.Trace) != len(ref.Trace) {
						t.Fatalf("workers=%d: trace length %d != serial %d", w, len(res.Trace), len(ref.Trace))
					}
					for r := range ref.Trace {
						if math.Float64bits(res.Trace[r]) != math.Float64bits(ref.Trace[r]) {
							t.Fatalf("workers=%d: round %d: Φ bits differ from serial (%.17g != %.17g)",
								w, r, res.Trace[r], ref.Trace[r])
						}
					}
					if res.Rounds != ref.Rounds || res.Converged != ref.Converged {
						t.Fatalf("workers=%d: outcome (%d rounds, converged=%v) != serial (%d, %v)",
							w, res.Rounds, res.Converged, ref.Rounds, ref.Converged)
					}
				}
			})
		}
	}
}

// TestGridReportRoundWorkersByteIdentity mirrors the engine's unit-level
// w1-vs-w8 determinism check one level down: an entire grid sweep —
// including dynamic-scenario units — serializes to byte-identical JSON
// whether the steppers inside ran serial or fanned out over 7 round
// workers (and regardless of how the two levels are combined).
func TestGridReportRoundWorkersByteIdentity(t *testing.T) {
	spec := batch.Spec{
		Topologies: []string{"cycle", "torus", "hypercube"},
		Algorithms: []string{"diffusion", "dimexchange", "randpair", "roundrobin"},
		Modes:      []string{"continuous", "discrete"},
		Workloads:  []string{"spike"},
		Scenarios:  []string{"static", "edge-churn:0.2"},
		N:          32,
		Seeds:      []int64{1, 2},
		Epsilon:    1e-2,
		MaxRounds:  80,
	}
	var ref []byte
	for _, combo := range []struct{ w, rw int }{{1, 1}, {1, 7}, {2, 3}} {
		spec.Workers, spec.RoundWorkers = combo.w, combo.rw
		rep, err := GridRun(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Failed() > 0 {
			t.Fatalf("workers=%v: %d units failed", combo, rep.Failed())
		}
		data, err := json.Marshal(rep.Cells)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = data
			continue
		}
		if string(data) != string(ref) {
			t.Fatalf("workers=%+v: grid report differs from the serial sweep", combo)
		}
	}
}

func modeName(m Mode) string {
	if m == Discrete {
		return "discrete"
	}
	return "continuous"
}
