// Package stats provides the small statistical toolkit the experiment
// harness needs: summary statistics, quantiles, normal-approximation
// confidence intervals, histograms, and least-squares fits used to estimate
// empirical convergence rates from potential traces.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the usual moments of a sample.
type Summary struct {
	N              int
	Mean, Variance float64 // unbiased (n−1) variance
	Min, Max       float64
}

// Summarize computes a Summary of xs. An empty sample yields zeros with
// Min = +Inf, Max = −Inf.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	if s.N == 0 {
		return s
	}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Variance = ss / float64(s.N-1)
	}
	return s
}

// Stddev returns the sample standard deviation.
func (s Summary) Stddev() float64 { return math.Sqrt(s.Variance) }

// StderrMean returns the standard error of the mean.
func (s Summary) StderrMean() float64 {
	if s.N == 0 {
		return 0
	}
	return s.Stddev() / math.Sqrt(float64(s.N))
}

// CI95 returns a normal-approximation 95% confidence interval for the mean.
func (s Summary) CI95() (lo, hi float64) {
	h := 1.96 * s.StderrMean()
	return s.Mean - h, s.Mean + h
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g", s.N, s.Mean, s.Stddev(), s.Min, s.Max)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. Panics on an empty sample.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: quantile of empty sample")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile q=%v out of [0,1]", q))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 0.5 quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// LinearFit fits y ≈ a + b·x by ordinary least squares and returns the
// intercept a, slope b, and the coefficient of determination R².
// Fitting log Φ(t) against t recovers the empirical per-round decay rate
// that the theorems bound. Requires len(x) == len(y) ≥ 2.
func LinearFit(x, y []float64) (a, b, r2 float64) {
	n := len(x)
	if n != len(y) || n < 2 {
		panic("stats: LinearFit needs two equal-length samples of size >= 2")
	}
	var sx, sy float64
	for i := 0; i < n; i++ {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var sxx, sxy, syy float64
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return my, 0, 0
	}
	b = sxy / sxx
	a = my - b*mx
	if syy == 0 {
		return a, b, 1
	}
	r2 = (sxy * sxy) / (sxx * syy)
	return a, b, r2
}

// GeometricDecayRate estimates the per-step multiplicative decay factor of
// a positive series (e.g. the potential trace Φ⁰, Φ¹, …) by an OLS fit of
// log values; the returned rate r satisfies series[t] ≈ series[0]·rᵗ.
// Entries ≤ 0 terminate the usable prefix. Returns 1 if fewer than two
// usable points exist.
func GeometricDecayRate(series []float64) float64 {
	xs := make([]float64, 0, len(series))
	ys := make([]float64, 0, len(series))
	for t, v := range series {
		if v <= 0 {
			break
		}
		xs = append(xs, float64(t))
		ys = append(ys, math.Log(v))
	}
	if len(xs) < 2 {
		return 1
	}
	_, slope, _ := LinearFit(xs, ys)
	return math.Exp(slope)
}

// Histogram counts xs into nbins equal-width bins spanning [min, max].
type Histogram struct {
	Min, Max float64
	Counts   []int
}

// NewHistogram builds a histogram of xs with nbins bins. Empty samples and
// constant samples produce a single bin containing everything.
func NewHistogram(xs []float64, nbins int) Histogram {
	if nbins < 1 {
		nbins = 1
	}
	s := Summarize(xs)
	h := Histogram{Min: s.Min, Max: s.Max, Counts: make([]int, nbins)}
	if s.N == 0 {
		return h
	}
	width := (s.Max - s.Min) / float64(nbins)
	for _, x := range xs {
		var b int
		if width > 0 {
			b = int((x - s.Min) / width)
			if b >= nbins {
				b = nbins - 1
			}
		}
		h.Counts[b]++
	}
	return h
}

// Mode returns the index of the fullest bin.
func (h Histogram) Mode() int {
	best, bestC := 0, -1
	for i, c := range h.Counts {
		if c > bestC {
			best, bestC = i, c
		}
	}
	return best
}
