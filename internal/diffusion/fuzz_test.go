package diffusion

import (
	"math"
	"testing"

	"repro/internal/graph"
)

// FuzzEdgeWeightInvariants fuzzes the Algorithm 1 transfer rule: the
// weight is symmetric in its load arguments, nonnegative, and never
// exceeds a quarter of the load difference (the laziness that makes
// Lemma 1 work).
func FuzzEdgeWeightInvariants(f *testing.F) {
	f.Add(10.0, 2.0)
	f.Add(0.0, 0.0)
	f.Add(1e9, -1e9)
	f.Fuzz(func(t *testing.T, li, lj float64) {
		if math.IsNaN(li) || math.IsNaN(lj) || math.Abs(li) > 1e15 || math.Abs(lj) > 1e15 {
			t.Skip()
		}
		g := graph.Star(6) // degrees 5 and 1: max(dᵢ,dⱼ) = 5 on every edge
		w := EdgeWeight(g, 0, 1, li, lj)
		if w != EdgeWeight(g, 0, 1, lj, li) {
			t.Fatal("weight must be symmetric in loads")
		}
		if w < 0 {
			t.Fatalf("negative weight %v", w)
		}
		if diff := math.Abs(li - lj); w > diff/4+1e-12*diff {
			t.Fatalf("weight %v exceeds diff/4 = %v", w, diff/4)
		}
	})
}

// FuzzDiscreteRoundConserves fuzzes token conservation of one discrete
// Algorithm 1 round on a fixed small torus with arbitrary token placement.
func FuzzDiscreteRoundConserves(f *testing.F) {
	f.Add(int64(1000), int64(0), int64(7), int64(500))
	f.Add(int64(0), int64(0), int64(0), int64(0))
	f.Add(int64(1)<<40, int64(3), int64(9), int64(1)<<39)
	f.Fuzz(func(t *testing.T, a, b, c, d int64) {
		for _, v := range []int64{a, b, c, d} {
			if v < 0 || v > int64(1)<<45 {
				t.Skip()
			}
		}
		g := graph.Torus(3, 3)
		tokens := []int64{a, b, c, d, a % 97, b % 89, c % 83, d % 79, (a + b) % 71}
		st := NewDiscrete(g, tokens)
		var before int64
		for _, v := range tokens {
			before += v
		}
		for k := 0; k < 5; k++ {
			st.Step()
		}
		if st.Load.Total() != before {
			t.Fatalf("tokens not conserved: %d → %d", before, st.Load.Total())
		}
		for node, v := range st.Load.Tokens() {
			if v < 0 {
				t.Fatalf("node %d negative: %d", node, v)
			}
		}
	})
}
