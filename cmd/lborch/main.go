// Command lborch is the standalone shard orchestrator: one command that
// plans an m-way shard split of a sweep grid, launches m lbbench shard
// attempts on a pluggable backend (local subprocesses by default, ssh hosts
// with -launcher ssh -hosts, a Slurm queue with -launcher slurm), tails
// their journals for shard-aware live progress, restarts dead shards from
// their own journals (capped retries, loudly reported), optionally steals
// work from stragglers (-steal-after), and merges the finished journals
// into a final report byte-identical to a single-process sweep:
//
//	lborch -m 3 -out sweep/ -topos cycle,torus -n 256 -seeds 1,2,3
//	lborch -m 8 -out sweep/ -launcher ssh -hosts node1,node2 \
//	       -steal-after 2m -topos torus -n 4096 -seeds 1,2,3
//
// It is a thin wrapper over internal/orchestrator — the same machinery
// lbbench -spawn uses — for operators who keep the orchestrator and the
// benchmark binary separate (e.g. the orchestrator on a head node, lbbench
// on PATH). -emit-matrix {github|slurm|shell} serializes the plan instead
// of running it, so the exact local split is what CI and clusters execute:
//
//	lborch -m 16 -emit-matrix slurm -topos torus -n 4096 -seeds 1,2,3
//
// The lbbench binary is located via -lbbench, next to lborch itself, or on
// PATH, in that order (remote backends run -remote-cmd, default lbbench on
// the remote PATH). Exit codes match lbbench: 0 success; 1 failed units or
// failed shards; 2 usage errors; 3 interrupted (re-run to resume); 5 bad
// shard count.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"

	"repro/internal/cliflags"
	"repro/internal/core"
	"repro/internal/orchestrator"
	"repro/internal/signals"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		m          = flag.Int("m", 0, "shard count: how many lbbench shard attempts to launch (required)")
		out        = flag.String("out", "sweep", "directory for the per-shard journals and stderr logs")
		emitMatrix = flag.String("emit-matrix", "", "print the shard plan as a CI/cluster fan-out (github, slurm, shell) instead of running it")
		lbbench    = flag.String("lbbench", "", "path to the lbbench binary (default: next to lborch, then $PATH)")
		grid       = cliflags.RegisterGrid(flag.CommandLine)
		output     = cliflags.RegisterOutput(flag.CommandLine)
		launch     = cliflags.RegisterLaunch(flag.CommandLine)
		obsFlags   = cliflags.RegisterObs(flag.CommandLine)
	)
	flag.Parse()

	if *m <= 0 {
		fmt.Fprintln(os.Stderr, "lborch: -m is required: how many shard attempts to launch")
		return 5
	}
	if err := output.CheckFormat(); err != nil {
		fmt.Fprintf(os.Stderr, "lborch: %v\n", err)
		return 2
	}
	spec, err := grid.Spec()
	if err != nil {
		fmt.Fprintf(os.Stderr, "lborch: %v\n", err)
		return 2
	}
	launchers, err := launch.Launchers()
	if err != nil {
		fmt.Fprintf(os.Stderr, "lborch: %v\n", err)
		return 2
	}
	plan, err := orchestrator.NewPlan(spec, *m, *out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lborch: %v\n", err)
		return 2
	}
	plan.Format = output.Format
	if err := core.ValidateGridSpec(plan.Spec); err != nil {
		fmt.Fprintf(os.Stderr, "lborch: %v\n", err)
		return 2
	}

	if *emitMatrix != "" {
		if err := plan.Emit(*emitMatrix, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "lborch: %v\n", err)
			return 2
		}
		return 0
	}

	bin, err := findLbbench(*lbbench)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lborch: %v\n", err)
		return 2
	}

	tracer, stopObs, err := obsFlags.Start(func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "lborch: "+format+"\n", args...)
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "lborch: %v\n", err)
		return 2
	}

	ctx, stop := signals.Graceful(context.Background())
	defer stop()
	sup := &orchestrator.Supervisor{
		Plan:      plan,
		Command:   []string{bin},
		Launchers: launchers,
		Policy:    launch.Policy(),
		Log:       os.Stderr,
		Tracer:    tracer,
	}
	code := sup.RunAndReport(ctx, output.StreamAgg, os.Stdout)
	if err := stopObs(); err != nil {
		fmt.Fprintf(os.Stderr, "lborch: %v\n", err)
	}
	if code == 3 {
		fmt.Fprintln(os.Stderr, "lborch: interrupted — re-run the same command to resume every shard")
	}
	return code
}

// findLbbench resolves the shard binary: an explicit -lbbench path, the
// lbbench next to lborch itself (the `go build ./...` layout), then $PATH.
func findLbbench(explicit string) (string, error) {
	if explicit != "" {
		if _, err := os.Stat(explicit); err != nil {
			return "", fmt.Errorf("lbbench binary %s: %w", explicit, err)
		}
		return explicit, nil
	}
	if self, err := os.Executable(); err == nil {
		sibling := filepath.Join(filepath.Dir(self), "lbbench")
		if _, err := os.Stat(sibling); err == nil {
			return sibling, nil
		}
	}
	if path, err := exec.LookPath("lbbench"); err == nil {
		return path, nil
	}
	return "", fmt.Errorf("cannot find lbbench (tried -lbbench, next to lborch, $PATH) — build it with `go build -o DIR ./cmd/lbbench`")
}
