package spectral

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/matrix"
)

// Lambda2InversePower computes λ₂ of the Laplacian of g by inverse power
// iteration restricted to the orthogonal complement of the all-ones kernel:
// repeatedly solve L·x = v (a consistent singular system, solved by
// conjugate gradients in the 1⊥ subspace) and read λ₂ off the Rayleigh
// quotient. Convergence of the eigenvalue is geometric with ratio
// (λ₂/λ')², λ' the smallest eigenvalue strictly above λ₂ — independent of
// n, which is what makes this the method of choice for large graphs with
// tiny spectral gaps (cycles, paths, barbells) where plain Lanczos on the
// shifted operator stalls.
func Lambda2InversePower(g *graph.G, seed int64) (float64, error) {
	n := g.N()
	if n < 2 {
		return 0, fmt.Errorf("spectral: λ₂ undefined for n=%d", n)
	}
	if !g.IsConnected() {
		return 0, fmt.Errorf("spectral: graph %s is disconnected (λ₂ = 0)", g.Name())
	}

	ones := make(matrix.Vector, n).Fill(1)
	v := make(matrix.Vector, n)
	s := uint64(seed)*6364136223846793005 + 1442695040888963407
	for i := range v {
		s = s*6364136223846793005 + 1442695040888963407
		v[i] = float64(int64(s>>11))/float64(1<<52) - 0.5
	}
	v.ProjectOut(ones)
	if v.Normalize() == 0 {
		return 0, fmt.Errorf("spectral: degenerate start vector")
	}

	lx := make(matrix.Vector, n)
	const maxOuter = 200
	prev := 0.0
	for outer := 0; outer < maxOuter; outer++ {
		x, err := cgSolveLaplacian(g, v, ones)
		if err != nil {
			return 0, err
		}
		x.ProjectOut(ones)
		if x.Normalize() == 0 {
			return 0, fmt.Errorf("spectral: inverse iteration collapsed")
		}
		LaplacianApply(g, lx, x)
		rq := x.Dot(lx)
		if outer > 2 && absf(rq-prev) <= 1e-11*(1+rq) {
			return rq, nil
		}
		prev = rq
		copy(v, x)
	}
	return prev, nil
}

// SolveLaplacian solves the consistent singular system L·x = b for the
// Laplacian of a connected graph g, returning the solution orthogonal to
// the all-ones kernel. b is projected onto 1⊥ first (the system is only
// solvable there). Besides the eigensolvers, this is the computational
// heart of the optimal-balancing-flow comparison (internal/flow): the
// ℓ₂-minimal flow with divergence d is the gradient of the solution of
// L·x = d.
func SolveLaplacian(g *graph.G, b matrix.Vector) (matrix.Vector, error) {
	if len(b) != g.N() {
		return nil, fmt.Errorf("spectral: SolveLaplacian length %d for n=%d", len(b), g.N())
	}
	if !g.IsConnected() {
		return nil, fmt.Errorf("spectral: SolveLaplacian requires a connected graph")
	}
	ones := make(matrix.Vector, g.N()).Fill(1)
	rhs := b.Clone()
	rhs.ProjectOut(ones)
	x, err := cgSolveLaplacian(g, rhs, ones)
	if err != nil {
		return nil, err
	}
	x.ProjectOut(ones)
	return x, nil
}

// cgSolveLaplacian solves L·x = b for the Laplacian of g by conjugate
// gradients, where b must be orthogonal to the all-ones kernel (the system
// is then consistent). Iterates are re-projected onto 1⊥ periodically to
// suppress kernel drift from rounding.
func cgSolveLaplacian(g *graph.G, b, ones matrix.Vector) (matrix.Vector, error) {
	n := g.N()
	x := make(matrix.Vector, n)
	r := b.Clone()
	r.ProjectOut(ones)
	p := r.Clone()
	ap := make(matrix.Vector, n)
	rr := r.Dot(r)
	bNorm := b.Norm2()
	if bNorm == 0 {
		return x, nil
	}
	tol := 1e-13 * bNorm
	maxIter := 40 * n // generous: CG needs ~√κ·ln(1/tol) iterations
	if maxIter < 1000 {
		maxIter = 1000
	}
	for iter := 0; iter < maxIter; iter++ {
		if rr == 0 || r.Norm2() <= tol {
			return x, nil
		}
		LaplacianApply(g, ap, p)
		pap := p.Dot(ap)
		if pap <= 0 {
			// p has drifted into the kernel; re-project and restart descent.
			p = r.Clone()
			p.ProjectOut(ones)
			continue
		}
		alpha := rr / pap
		x.AddScaled(alpha, p)
		r.AddScaled(-alpha, ap)
		if iter%50 == 49 {
			r.ProjectOut(ones)
			x.ProjectOut(ones)
		}
		rrNew := r.Dot(r)
		beta := rrNew / rr
		rr = rrNew
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
	}
	if r.Norm2() <= 1e-8*bNorm {
		return x, nil // loose but usable; eigenvalue readout tolerates it
	}
	return nil, fmt.Errorf("spectral: CG did not converge on %s (residual %.3g)", g.Name(), r.Norm2()/bNorm)
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
