// Package topoparse turns command-line topology descriptions into graphs.
// It is shared by cmd/lbsim, cmd/graphinfo and the examples so that every
// binary accepts the same names, and it is unit-tested here once instead of
// per-binary.
//
// Accepted forms (n is the requested approximate node count; families with
// rigid sizes round up):
//
//	path cycle|ring grid|mesh torus hypercube debruijn complete star tree
//	random-regular petersen barbell lollipop
package topoparse

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/graph"
)

// Names lists the accepted topology names in display order.
func Names() []string {
	return []string{
		"path", "cycle", "grid", "torus", "torus3d", "hypercube", "debruijn",
		"ccc", "butterfly", "complete", "star", "tree", "random-regular",
		"petersen", "barbell", "lollipop", "smallworld", "rgg",
	}
}

// Descriptions returns each accepted name and a one-line description, in
// display order — the -list surface.
func Descriptions() [][2]string {
	return [][2]string{
		{"path", "path (line) graph"},
		{"cycle", "ring of n nodes"},
		{"grid", "2-D mesh (no wraparound), side ⌈√n⌉"},
		{"torus", "2-D torus (wraparound grid)"},
		{"torus3d", "3-D torus"},
		{"hypercube", "d-dimensional hypercube, n rounded to 2^d"},
		{"debruijn", "binary de Bruijn graph"},
		{"ccc", "cube-connected cycles"},
		{"butterfly", "wrapped butterfly network"},
		{"complete", "complete graph (clique)"},
		{"star", "one hub, n−1 leaves"},
		{"tree", "complete binary tree"},
		{"random-regular", "random 4-regular graph (seeded)"},
		{"petersen", "the Petersen graph (n fixed at 10)"},
		{"barbell", "two cliques joined by one edge"},
		{"lollipop", "clique with a path tail"},
		{"smallworld", "Watts–Strogatz small world (seeded)"},
		{"rgg", "random geometric graph above the connectivity radius (seeded)"},
	}
}

// Build constructs the named topology at (approximately) n nodes. Families
// indexed by a side/dimension round n up to the next valid size. seed feeds
// the randomized families only.
func Build(name string, n int, seed int64) (*graph.G, error) {
	if n < 1 {
		return nil, fmt.Errorf("topoparse: n must be positive, got %d", n)
	}
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "path", "line":
		return graph.Path(n), nil
	case "cycle", "ring":
		if n < 3 {
			return nil, fmt.Errorf("topoparse: cycle needs n ≥ 3, got %d", n)
		}
		return graph.Cycle(n), nil
	case "grid", "mesh":
		side := 1
		for side*side < n {
			side++
		}
		return graph.Grid(side, side), nil
	case "torus":
		side := 3
		for side*side < n {
			side++
		}
		return graph.Torus(side, side), nil
	case "hypercube":
		d := 0
		for 1<<uint(d) < n {
			d++
		}
		return graph.Hypercube(d), nil
	case "debruijn":
		d := 1
		for 1<<uint(d) < n {
			d++
		}
		return graph.DeBruijn(d), nil
	case "complete", "clique":
		return graph.Complete(n), nil
	case "star":
		if n < 2 {
			return nil, fmt.Errorf("topoparse: star needs n ≥ 2, got %d", n)
		}
		return graph.Star(n), nil
	case "tree", "bintree":
		levels := 1
		for (1<<uint(levels))-1 < n {
			levels++
		}
		return graph.BinaryTree(levels), nil
	case "random-regular", "regular":
		d := 4
		if d >= n {
			return nil, fmt.Errorf("topoparse: random-regular needs n > 4, got %d", n)
		}
		if n*d%2 != 0 {
			n++
		}
		return graph.RandomRegular(n, d, rand.New(rand.NewSource(seed))), nil
	case "petersen":
		return graph.Petersen(), nil
	case "torus3d":
		side := 3
		for side*side*side < n {
			side++
		}
		return graph.Torus3D(side, side, side), nil
	case "ccc":
		d := 3
		for d*(1<<uint(d)) < n {
			d++
		}
		return graph.CubeConnectedCycles(d), nil
	case "butterfly":
		d := 3
		for d*(1<<uint(d)) < n {
			d++
		}
		return graph.Butterfly(d), nil
	case "smallworld":
		if n < 5 {
			return nil, fmt.Errorf("topoparse: smallworld needs n ≥ 5, got %d", n)
		}
		return graph.SmallWorld(n, 2, 0.1, rand.New(rand.NewSource(seed))), nil
	case "rgg":
		if n < 2 {
			return nil, fmt.Errorf("topoparse: rgg needs n ≥ 2, got %d", n)
		}
		r := 2 * graph.ConnectivityRadius(n)
		return graph.RandomGeometric(n, r, rand.New(rand.NewSource(seed))), nil
	case "barbell":
		k := n / 2
		if k < 2 {
			return nil, fmt.Errorf("topoparse: barbell needs n ≥ 4, got %d", n)
		}
		return graph.Barbell(k), nil
	case "lollipop":
		k := n * 2 / 3
		if k < 2 || n-k < 1 {
			return nil, fmt.Errorf("topoparse: lollipop needs n ≥ 4, got %d", n)
		}
		return graph.Lollipop(k, n-k), nil
	default:
		return nil, fmt.Errorf("topoparse: unknown topology %q (accepted: %s)", name, strings.Join(Names(), " "))
	}
}
