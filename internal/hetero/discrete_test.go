package hetero

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/workload"
)

func TestDiscreteConservesTokens(t *testing.T) {
	g := graph.Torus(4, 4)
	rng := rand.New(rand.NewSource(1))
	init := workload.Discrete(workload.Spike, g.N(), 1_000_000, nil)
	speeds := make([]float64, g.N())
	for i := range speeds {
		speeds[i] = 0.5 + 3*rng.Float64()
	}
	h, err := NewDiscrete(g, init, speeds)
	if err != nil {
		t.Fatal(err)
	}
	before := h.Load.Total()
	for k := 0; k < 500; k++ {
		h.Step()
	}
	if h.Load.Total() != before {
		t.Fatalf("tokens not conserved: %d → %d", before, h.Load.Total())
	}
}

func TestDiscreteApproachesProportionalShare(t *testing.T) {
	g := graph.Hypercube(4)
	speeds := make([]float64, g.N())
	for i := range speeds {
		if i%2 == 0 {
			speeds[i] = 3
		} else {
			speeds[i] = 1
		}
	}
	init := workload.Discrete(workload.Spike, g.N(), 1_600_000, nil)
	h, err := NewDiscrete(g, init, speeds)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 20000 && !h.FixedPoint(); k++ {
		h.Step()
	}
	if !h.FixedPoint() {
		t.Fatal("no fixed point reached")
	}
	// At the fixed point, normalized loads should sit close to ω: each
	// stalled edge has |ℓᵢ/cᵢ − ℓⱼ/cⱼ| < 4·max d/min c, so path-summing
	// gives a diameter-scaled deviation bound.
	omega := h.Omega()
	maxDev := 0.0
	for i, c := range h.Speeds {
		if d := math.Abs(float64(h.Load.At(i))/c - omega); d > maxDev {
			maxDev = d
		}
	}
	bound := float64(graph.Diameter(g)) * 4 * float64(g.MaxDegree())
	if maxDev > bound {
		t.Fatalf("normalized deviation %v above diameter bound %v", maxDev, bound)
	}
	// The fast nodes must carry clearly more than the slow ones.
	if h.Load.At(0) < 2*h.Load.At(1) {
		t.Fatalf("fast node %d vs slow node %d — proportionality lost", h.Load.At(0), h.Load.At(1))
	}
}

func TestDiscreteUnitSpeedsMatchAlgorithm1Residual(t *testing.T) {
	// Unit speeds: the transfer rule coincides with discrete Algorithm 1.
	g := graph.Cycle(12)
	init := workload.Discrete(workload.Spike, g.N(), 120_000, nil)
	h, err := NewDiscrete(g, init, UniformSpeeds(g.N()))
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 20000 && !h.FixedPoint(); k++ {
		h.Step()
	}
	// The homogeneous Φ_c equals Φ at unit speeds.
	if h.Potential() != h.Load.Potential() {
		t.Fatalf("unit-speed Φ_c %v != Φ %v", h.Potential(), h.Load.Potential())
	}
}

func TestDiscreteValidation(t *testing.T) {
	g := graph.Cycle(4)
	if _, err := NewDiscrete(g, []int64{1}, UniformSpeeds(4)); err == nil {
		t.Fatal("length mismatch must error")
	}
	if _, err := NewDiscrete(g, []int64{1, 1, 1, 1}, []float64{1, 1, 0, 1}); err == nil {
		t.Fatal("zero speed must error")
	}
}

// Property: conservation and nonnegative potentials across random
// instances.
func TestDiscreteConservationProperty(t *testing.T) {
	f := func(seed uint8) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		n := 4 + r.Intn(12)
		g := graph.ErdosRenyi(n, 0.5, r)
		init := workload.Discrete(workload.Uniform, n, int64(1000+r.Intn(100000)), r)
		speeds := make([]float64, n)
		for i := range speeds {
			speeds[i] = 0.5 + 2*r.Float64()
		}
		h, err := NewDiscrete(g, init, speeds)
		if err != nil {
			return false
		}
		before := h.Load.Total()
		for k := 0; k < 8; k++ {
			h.Step()
			if h.Potential() < 0 {
				return false
			}
		}
		return h.Load.Total() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
