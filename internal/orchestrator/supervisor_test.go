package orchestrator

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/batch"
)

// stubCommand writes a /bin/sh script the supervisor can spawn in place of
// lbbench and returns the argv prefix for it. The script sees the exact
// shard flags a real child would.
func stubCommand(t *testing.T, script string) []string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "stub.sh")
	if err := os.WriteFile(path, []byte("#!/bin/sh\n"+script), 0o755); err != nil {
		t.Fatal(err)
	}
	return []string{"/bin/sh", path}
}

// lastArg extracts the journal path (always the final shard flag) inside
// the stub scripts.
const lastArg = `j=""; for a in "$@"; do j="$a"; done`

// TestSupervisorRestartsDeadShardWithResume is the supervision contract: a
// child that dies is relaunched against its own journal, and the relaunch
// carries -resume (the journal exists by then). The stub dies on its first
// attempt — after creating the journal, like a real shard killed mid-run —
// and succeeds only when it sees -resume among its flags.
func TestSupervisorRestartsDeadShardWithResume(t *testing.T) {
	dir := t.TempDir()
	p, err := NewPlan(testSpec(), 2, dir)
	if err != nil {
		t.Fatal(err)
	}
	var log bytes.Buffer
	s := &Supervisor{
		Plan: p,
		Command: stubCommand(t, lastArg+`
case "$*" in
  *-resume*) echo '{"spec":{}}' > "$j"; exit 0 ;;
  *) : > "$j"; echo "simulated crash" >&2; exit 7 ;;
esac`),
		// Negative retries = the default cap of 3.
		Policy: Policy{MaxRetries: -1, Interval: 10 * time.Millisecond},
		Log:    &log,
	}
	if err := s.Run(context.Background()); err != nil {
		t.Fatalf("Run: %v\nlog:\n%s", err, log.String())
	}
	out := log.String()
	if !strings.Contains(out, "restarting with -resume (attempt 1/3)") {
		t.Fatalf("restart not reported:\n%s", out)
	}
	// Both shards needed exactly one restart; the stderr files hold the
	// crash output across attempts.
	for _, sh := range p.Shards {
		b, err := os.ReadFile(sh.Journal + ".stderr")
		if err != nil || !strings.Contains(string(b), "simulated crash") {
			t.Fatalf("shard %d stderr log missing crash output: %v %q", sh.Index, err, b)
		}
	}
}

// TestSupervisorRetriesAreCapped: a shard that keeps dying fails the run
// loudly after MaxRetries restarts instead of looping forever.
func TestSupervisorRetriesAreCapped(t *testing.T) {
	p, err := NewPlan(testSpec(), 1, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var log bytes.Buffer
	s := &Supervisor{
		Plan:    p,
		Command: stubCommand(t, "exit 9"),
		Policy:  Policy{MaxRetries: 2, Interval: 10 * time.Millisecond},
		Log:     &log,
	}
	err = s.Run(context.Background())
	if err == nil {
		t.Fatalf("Run succeeded despite permanent failure\nlog:\n%s", log.String())
	}
	if !strings.Contains(err.Error(), "task s0 failed after 2 restart(s)") {
		t.Fatalf("error does not name the task and retry count: %v", err)
	}
	if !strings.Contains(log.String(), "FAILED permanently") {
		t.Fatalf("permanent failure not reported loudly:\n%s", log.String())
	}

	// MaxRetries 0 fails fast: the first death is already permanent.
	s.Policy.MaxRetries = 0
	err = s.Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "after 0 restart(s)") {
		t.Fatalf("MaxRetries=0 did not fail on the first death: %v", err)
	}
}

// TestSupervisorFirstAttemptResumesExistingJournal: re-running a spawn
// whose orchestrator died resumes the existing journals instead of tripping
// over them (the shard's -out open is O_EXCL).
func TestSupervisorFirstAttemptResumesExistingJournal(t *testing.T) {
	dir := t.TempDir()
	p, err := NewPlan(testSpec(), 1, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p.Shards[0].Journal, []byte("{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := &Supervisor{
		Plan: p,
		// Succeed only when told to resume; a fresh -out against the
		// existing journal would be the O_EXCL failure this test guards
		// against. The journal it leaves behind must be complete — the
		// supervisor judges tasks by what they journaled, not exit codes.
		Command: stubCommand(t, lastArg+`
case "$*" in *-resume*) echo '{"spec":{}}' > "$j"; exit 0 ;; *) exit 3 ;; esac`),
		Log:    &bytes.Buffer{},
		Policy: Policy{Interval: 10 * time.Millisecond},
	}
	if err := s.Run(context.Background()); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestSupervisorCancellation: cancelling the context interrupts the
// children and surfaces the context error without burning retries.
func TestSupervisorCancellation(t *testing.T) {
	p, err := NewPlan(testSpec(), 2, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var log bytes.Buffer
	s := &Supervisor{
		Plan:    p,
		Command: stubCommand(t, "exec sleep 30"),
		Log:     &log,
		Policy:  Policy{Interval: 10 * time.Millisecond},
	}
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx) }()
	time.Sleep(100 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("Run returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
	if !strings.Contains(log.String(), "journals are resumable") {
		t.Fatalf("interruption not reported:\n%s", log.String())
	}
}

// trackerOf builds a tracker holding the plan's initial task list, the way
// the supervisor does at startup.
func trackerOf(t *testing.T, p *Plan, t0 time.Time) *tracker {
	t.Helper()
	tr := newTracker(p.TotalUnits(), t0)
	for _, pt := range p.Tasks() {
		tr.add(pt.Label, pt.Units, t0)
	}
	return tr
}

// TestTrackerStallDetection drives the pure tracker: a running task whose
// journal stops moving is flagged once per episode, and movement rearms it.
// (Done and stolen tasks never reach checkStall — the supervisor only polls
// running ones.)
func TestTrackerStallDetection(t *testing.T) {
	p, err := NewPlan(testSpec(), 2, "d")
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Unix(1000, 0)
	tr := trackerOf(t, p, t0)
	threshold := 30 * time.Second

	// Task 1 writes, task 0 never does.
	tr.observe(1, scanOf(3), t0.Add(10*time.Second))
	for i := 0; i < 2; i++ {
		if tr.checkStall(i, t0.Add(20*time.Second), threshold) {
			t.Fatalf("task %d stall flagged too early", i)
		}
	}
	if !tr.checkStall(0, t0.Add(31*time.Second), threshold) {
		t.Fatal("task 0 quiet past the threshold was not flagged")
	}
	if tr.checkStall(1, t0.Add(31*time.Second), threshold) {
		t.Fatal("task 1 flagged only 21s after its last write")
	}
	// Task 0's episode is reported once; task 1 (quiet since t0+10s) now
	// crosses the threshold itself.
	if tr.checkStall(0, t0.Add(40*time.Second), threshold) {
		t.Fatal("task 0's stall episode was reported twice")
	}
	if !tr.checkStall(1, t0.Add(40*time.Second), threshold) {
		t.Fatal("task 1 quiet past the threshold was not flagged")
	}
	// Movement rearms: task 0 finally writes, goes quiet again, and is
	// flagged a second time; task 1's episode stays reported.
	tr.observe(0, scanOf(1), t0.Add(45*time.Second))
	if !tr.checkStall(0, t0.Add(80*time.Second), threshold) {
		t.Fatal("task 0 not re-flagged after movement rearmed its episode")
	}
	if tr.checkStall(1, t0.Add(80*time.Second), threshold) {
		t.Fatal("task 1's old episode re-reported")
	}
	// idleFor feeds the steal trigger: task 1 has sat since t0+10s.
	if got := tr.idleFor(1, t0.Add(80*time.Second)); got != 70*time.Second {
		t.Fatalf("idleFor = %v, want 70s", got)
	}
	// touch rearms the idle clock without claiming progress.
	tr.touch(1, t0.Add(80*time.Second))
	if got := tr.idleFor(1, t0.Add(85*time.Second)); got != 5*time.Second {
		t.Fatalf("idleFor after touch = %v, want 5s", got)
	}
}

// TestTrackerETA: the extrapolation is remaining units at the observed
// per-unit rate.
func TestTrackerETA(t *testing.T) {
	p, err := NewPlan(testSpec(), 2, "d") // 8 units
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Unix(1000, 0)
	tr := trackerOf(t, p, t0)
	if tr.eta(t0.Add(time.Minute)) != 0 {
		t.Fatal("ETA before any progress should be unknown (0)")
	}
	// 2 units in 10s → 6 remaining at 5s/unit = 30s.
	tr.observe(0, scanOf(2), t0.Add(10*time.Second))
	if got := tr.eta(t0.Add(10 * time.Second)); got != 30*time.Second {
		t.Fatalf("eta = %v, want 30s", got)
	}
	line := tr.render(t0.Add(10 * time.Second))
	for _, want := range []string{"s0 2/", "2/8 units (25%)", "eta 30s"} {
		if !strings.Contains(line, want) {
			t.Fatalf("render %q missing %q", line, want)
		}
	}
}

// TestTrackerSteals: retiring a victim freezes its denominator at what it
// actually journaled, the global total never moves, and the render reports
// the stolen state and the steal count.
func TestTrackerSteals(t *testing.T) {
	p, err := NewPlan(testSpec(), 2, "d") // 8 units, 4 per shard
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Unix(1000, 0)
	tr := trackerOf(t, p, t0)
	tr.observe(0, scanOf(1), t0.Add(10*time.Second))
	tr.markStolen(0)
	thief := tr.add("s0.1", 3, t0.Add(11*time.Second))
	tr.observe(thief, scanOf(3), t0.Add(20*time.Second))
	tr.setPhase(thief, phaseDone)
	line := tr.render(t0.Add(20 * time.Second))
	for _, want := range []string{"s0 1/1 stolen", "s0.1 3/3 ok", "4/8 units (50%)", "steals 1"} {
		if !strings.Contains(line, want) {
			t.Fatalf("render %q missing %q", line, want)
		}
	}
}

// scanOf fakes a journal scan with n complete cells.
func scanOf(n int) (p batch.JournalProgress) {
	p.Cells = n
	p.LastIndex = n - 1
	return p
}

// TestTrackerSummary: the post-mortem line carries every task's cumulative
// restart and carve counts, including thief tasks added mid-run.
func TestTrackerSummary(t *testing.T) {
	p, err := NewPlan(testSpec(), 2, "d")
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Unix(1000, 0)
	tr := trackerOf(t, p, t0)
	tr.addRestart(1)
	tr.addRestart(1)
	tr.recordCarve(0, 2)
	tr.markStolen(0)
	tr.add("s0.1", 3, t0)
	got := tr.summary()
	want := "task summary: s0 restarts=0 stolen=2, s1 restarts=2 stolen=0, s0.1 restarts=0 stolen=0"
	if got != want {
		t.Fatalf("summary = %q, want %q", got, want)
	}
}
