package experiments

import (
	"math/rand"

	"repro/internal/hetero"
	"repro/internal/markov"
	"repro/internal/spectral"
	"repro/internal/trace"
	"repro/internal/workload"
)

func init() {
	register("A6", A6Heterogeneous)
	register("A7", A7PsiExact)
}

// A6Heterogeneous exercises the heterogeneous extension of [9]: Algorithm 1
// generalized to speed-proportional balance. Sweeps the speed skew on each
// topology and reports rounds until the per-speed relative deviation falls
// below 1e-6, showing how heterogeneity stretches convergence relative to
// the uniform-speed baseline (skew 1).
func A6Heterogeneous(o Options) *trace.Table {
	t := trace.NewTable("A6 — heterogeneous diffusion [9]: rounds to 1e-6 relative deviation vs speed skew",
		"graph", "speed skew", "rounds", "slowdown vs uniform")
	rng := rand.New(rand.NewSource(o.seed()))
	skews := []float64{1, 2, 8, 32}
	if o.Quick {
		skews = []float64{1, 8}
	}
	horizon := 200000
	if o.Quick {
		horizon = 20000
	}
	for _, g := range fixedSuite(o.Quick) {
		baseRounds := -1
		for _, skew := range skews {
			speeds := make([]float64, g.N())
			for i := range speeds {
				// Half the nodes fast (speed = skew), half slow (speed 1),
				// randomly assigned so slow/fast regions are not aligned
				// with topology structure.
				if rng.Intn(2) == 0 {
					speeds[i] = skew
				} else {
					speeds[i] = 1
				}
			}
			init := workload.Continuous(workload.Spike, g.N(), 1e6, nil)
			h, err := hetero.NewContinuous(g, init, speeds)
			if err != nil {
				continue
			}
			rounds := horizon + 1
			for r := 0; r <= horizon; r++ {
				if h.MaxRelativeDeviation() <= 1e-6 {
					rounds = r
					break
				}
				h.Step()
			}
			if skew == 1 {
				baseRounds = rounds
			}
			slowdown := 0.0
			if baseRounds > 0 {
				slowdown = float64(rounds) / float64(baseRounds)
			}
			t.AddRowf(g.Name(), skew, rounds, slowdown)
		}
	}
	t.Note("skew 1 is the homogeneous baseline (identical to Algorithm 1); rising skew narrows the effective conductance between slow and fast regions and stretches convergence accordingly.")
	return t
}

// A7PsiExact computes the exact (finite-horizon) local divergence Ψ(M) of
// [16] from the diffusion-matrix powers — the quantity E13 samples from one
// trajectory — and compares it against the δ·log n/µ bound shape across the
// topology suite.
func A7PsiExact(o Options) *trace.Table {
	t := trace.NewTable("A7 — exact local divergence Ψ(M) of [16] vs bound shape",
		"graph", "µ = 1−γ", "horizon", "Ψ(M)", "δ·ln(n)/µ", "Ψ/shape")
	for _, g := range fixedSuite(o.Quick) {
		m := spectral.PaperDiffusionMatrix(g)
		mu, err := spectral.EigenGap(m)
		if err != nil || mu <= 0 {
			continue
		}
		horizon := int(20/mu) + 50
		if max := 20000; horizon > max {
			horizon = max
		}
		psi := markov.PsiMatrix(g, m, horizon)
		shape := markov.PsiBoundShape(g, mu)
		t.AddRowf(g.Name(), mu, horizon, psi, shape, psi/shape)
	}
	t.Note("[16] prove Ψ(M) = O(δ·log n/µ); Ψ/shape staying within a moderate constant across the suite reproduces that theorem's content.")
	return t
}
