package spectral

import (
	"math"
	"testing"

	"repro/internal/matrix"
)

// QLImplicit is normally reached through Householder; these tests drive it
// directly on genuinely tridiagonal matrices with known spectra.

func TestQLImplicitKnownTridiagonal(t *testing.T) {
	// The n×n tridiagonal with diagonal 2 and off-diagonal −1 (the path
	// Laplacian plus identity corrections is close, but this matrix is the
	// Dirichlet Laplacian) has eigenvalues 2 − 2cos(kπ/(n+1)), k = 1..n.
	n := 12
	d := make([]float64, n)
	e := make([]float64, n)
	for i := range d {
		d[i] = 2
	}
	for i := 1; i < n; i++ {
		e[i] = -1
	}
	tri := Tridiagonal{D: d, E: e}
	if err := QLImplicit(tri, nil); err != nil {
		t.Fatal(err)
	}
	got := append([]float64(nil), tri.D...)
	sortInPlace(got)
	for k := 1; k <= n; k++ {
		want := 2 - 2*math.Cos(float64(k)*math.Pi/float64(n+1))
		if math.Abs(got[k-1]-want) > 1e-10 {
			t.Fatalf("eigenvalue %d: got %v want %v", k, got[k-1], want)
		}
	}
}

func TestQLImplicitDiagonalInput(t *testing.T) {
	tri := Tridiagonal{D: []float64{5, -2, 7}, E: make([]float64, 3)}
	if err := QLImplicit(tri, nil); err != nil {
		t.Fatal(err)
	}
	got := append([]float64(nil), tri.D...)
	sortInPlace(got)
	want := []float64{-2, 5, 7}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestQLImplicitEmptyInput(t *testing.T) {
	if err := QLImplicit(Tridiagonal{}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQLImplicitWithVectors(t *testing.T) {
	// 2×2 tridiagonal [[1,2],[2,1]]: eigenvalues −1 and 3.
	tri := Tridiagonal{D: []float64{1, 1}, E: []float64{0, 2}}
	z := matrix.Identity(2)
	if err := QLImplicit(tri, z); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 2; k++ {
		lam := tri.D[k]
		// Check A·v = λ·v with A = [[1,2],[2,1]].
		v0, v1 := z.At(0, k), z.At(1, k)
		if math.Abs((1*v0+2*v1)-lam*v0) > 1e-10 || math.Abs((2*v0+1*v1)-lam*v1) > 1e-10 {
			t.Fatalf("eigenpair %d wrong: λ=%v v=(%v,%v)", k, lam, v0, v1)
		}
	}
}

func sortInPlace(v []float64) {
	for i := 1; i < len(v); i++ {
		x := v[i]
		j := i - 1
		for j >= 0 && v[j] > x {
			v[j+1] = v[j]
			j--
		}
		v[j+1] = x
	}
}
