package core

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/batch"
	"repro/internal/graph"
	"repro/internal/scenario"
)

// TestSessionMatchesBalanceStatic: driving a Session by hand — Open, then
// Step/Commit to the horizon or the target — must reproduce Balance's
// Result exactly (same trace bits, same bound, same bookkeeping) on the
// full algorithm × mode matrix. Balance is itself a Session driver now, but
// this test drives the *public* stepwise API independently, so a future
// regression in either path fails here.
func TestSessionMatchesBalanceStatic(t *testing.T) {
	g := graph.Torus(4, 4)
	for _, am := range algorithmModes() {
		t.Run(am.Algo.String()+"-"+modeName(am.Mode), func(t *testing.T) {
			cfg := Config{
				Graph:     g,
				Algorithm: am.Algo,
				Mode:      am.Mode,
				Loads:     SpikeLoads(g.N(), 1e6),
				Epsilon:   1e-4,
				MaxRounds: 512,
				Seed:      7,
			}
			want, err := Balance(cfg)
			if err != nil {
				t.Fatal(err)
			}
			s, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for s.Phi() > s.Target() && s.Rounds() < s.Horizon() {
				if err := s.Step(); err != nil {
					t.Fatal(err)
				}
				if _, err := s.Commit(); err != nil {
					t.Fatal(err)
				}
			}
			got := s.Close()
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("session drive diverges from Balance:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

// TestSessionMatchesBalanceScenario: replicating the scenario round loop
// through the public Session API — SwapGraph, Step, Inject(Arrivals),
// Commit — must match Balance's scenario path trace-for-trace, across
// arrival-bearing, adversarial and churn scenarios in both modes.
func TestSessionMatchesBalanceScenario(t *testing.T) {
	g := graph.Torus(4, 4)
	for _, tc := range []struct {
		scenario string
		algo     Algorithm
		mode     Mode
	}{
		{"poisson-arrivals", Diffusion, Continuous},
		{"adversarial-respike:8:0.5", Diffusion, Discrete},
		{"bursty:8:0.25", RandomPartners, Discrete},
		{"edge-churn:0.2", DimensionExchange, Continuous},
		{"hotspot-drift", RoundRobinExchange, Discrete},
	} {
		t.Run(tc.scenario, func(t *testing.T) {
			sp, err := scenario.Parse(tc.scenario)
			if err != nil {
				t.Fatal(err)
			}
			cfg := Config{
				Graph:     g,
				Algorithm: tc.algo,
				Mode:      tc.mode,
				Loads:     SpikeLoads(g.N(), 1e6),
				Epsilon:   1e-4,
				MaxRounds: 64,
				Seed:      7,
				Scenario:  sp,
			}
			want, err := Balance(cfg)
			if err != nil {
				t.Fatal(err)
			}

			s, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			var ref float64
			for _, v := range cfg.Loads {
				ref += v
			}
			// ScenarioSeed defaults to Seed, like Balance.
			inst, err := sp.New(cfg.Graph, ref, rand.New(rand.NewSource(cfg.Seed)))
			if err != nil {
				t.Fatal(err)
			}
			for k := 0; k < s.Horizon(); k++ {
				if err := s.SwapGraph(inst.Graph(k)); err != nil {
					t.Fatal(err)
				}
				if err := s.Step(); err != nil {
					t.Fatal(err)
				}
				if _, err := s.Inject(inst.Arrivals(k, s.Loads())); err != nil {
					t.Fatal(err)
				}
				phi, err := s.Commit()
				if err != nil {
					t.Fatal(err)
				}
				if inst.ArrivalFree() && phi <= s.Target() {
					break
				}
			}
			got := s.Close()
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("session scenario drive diverges from Balance:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

// TestSessionProtocolErrors: the state machine must reject out-of-order
// calls instead of silently corrupting the op chain.
func TestSessionProtocolErrors(t *testing.T) {
	g := graph.Cycle(8)
	cfg := Config{Graph: g, Loads: SpikeLoads(8, 100)}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Commit(); err == nil {
		t.Error("Commit before Step accepted")
	}
	if _, err := s.Inject(nil); err == nil {
		t.Error("Inject outside a round accepted")
	}
	if err := s.Step(); err != nil {
		t.Fatal(err)
	}
	if err := s.Step(); err == nil {
		t.Error("second Step without Commit accepted")
	}
	if err := s.SwapGraph(graph.Cycle(8)); err == nil {
		t.Error("SwapGraph mid-round accepted")
	}
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := s.Step(); err == nil {
		t.Error("Step after Close accepted")
	}
	if _, err := s.Commit(); err == nil {
		t.Error("Commit after Close accepted")
	}
}

// TestValidateMatchesEntrypoints: Config.Validate must reject exactly what
// Balance and NewSystem reject — one gate, identical everywhere.
func TestValidateMatchesEntrypoints(t *testing.T) {
	g := graph.Cycle(4)
	bad := []Config{
		{},
		{Graph: g, Loads: []float64{1}},
		{Graph: g, Loads: []float64{1, 2, 3, 4}, Epsilon: 2},
		{Graph: g, Loads: []float64{1, -2, 3, 4}},
		{Graph: g, Loads: []float64{1, 2, 3, 4}, Algorithm: FirstOrder, Mode: Discrete},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted", i)
		}
		if _, err := Balance(cfg); err == nil {
			t.Errorf("case %d: Balance accepted", i)
		}
		if _, err := NewSystem(cfg); err == nil {
			t.Errorf("case %d: NewSystem accepted", i)
		}
		if _, err := Open(cfg); err == nil {
			t.Errorf("case %d: Open accepted", i)
		}
	}
	good := Config{Graph: g, Loads: []float64{4, 0, 0, 0}}
	if err := good.Validate(); err != nil {
		t.Fatalf("Validate rejected a good config: %v", err)
	}
}

// stripWall zeroes the wall-clock field — the one intentionally
// nondeterministic cell member (excluded from every emitter for the same
// reason) — so DeepEqual checks the deterministic payload.
func stripWall(cells []batch.Cell) []batch.Cell {
	out := append([]batch.Cell(nil), cells...)
	for i := range out {
		out[i].Wall = 0
	}
	return out
}

// TestTraceScenarioGridByteIdentity: a trace:<file> scenario must ride the
// grid like any other dimension — byte-identical reports for any worker
// count, alongside static cells.
func TestTraceScenarioGridByteIdentity(t *testing.T) {
	path := t.TempDir() + "/arrivals.jsonl"
	tw, err := scenario.CreateTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []scenario.Event{
		{Round: 0, Node: 3, Amount: 5000},
		{Round: 0, Node: 11, Amount: 125.5},
		{Round: 7, Node: 0, Amount: 9000},
		{Round: 20, Node: 15, Amount: 640},
	} {
		if err := tw.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}

	spec := batch.Spec{
		Topologies: []string{"torus", "cycle"},
		Algorithms: []string{"diffusion", "randpair"},
		Modes:      []string{"continuous", "discrete"},
		Workloads:  []string{"spike"},
		Scenarios:  []string{"static", "trace:" + path},
		N:          16,
		Seeds:      []int64{1, 2},
		MaxRounds:  48,
	}
	run := func(workers int) *batch.Report {
		s := spec
		s.Workers = workers
		rep, err := GridRun(context.Background(), s)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if rep.Failed() > 0 {
			t.Fatalf("workers=%d: %d cells failed", workers, rep.Failed())
		}
		return rep
	}
	w1, w4 := run(1), run(4)
	if !reflect.DeepEqual(stripWall(w1.Cells), stripWall(w4.Cells)) {
		t.Fatal("trace-scenario grid differs between 1 and 4 workers")
	}
}

// TestGridRunWindowedShard: a sharded spec narrowed to a unit window — the
// supervisor's stolen sub-shard — runs exactly the window's slice of the
// shard through the real balancer, and its cells match the same units from
// an unrestricted run.
func TestGridRunWindowedShard(t *testing.T) {
	spec := batch.Spec{
		Topologies: []string{"cycle"},
		Algorithms: []string{"diffusion"},
		Modes:      []string{"continuous"},
		Workloads:  []string{"spike"},
		N:          16,
		Seeds:      []int64{1, 2, 3},
	}
	full, err := GridRun(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	shard, err := spec.Shard(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	windowed, err := shard.Range(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := GridRun(context.Background(), windowed)
	if err != nil {
		t.Fatal(err)
	}
	var want []batch.Cell
	for _, c := range full.Cells {
		if windowed.Owns(c.Index) {
			want = append(want, c)
		}
	}
	if len(got.Cells) != windowed.OwnedUnitCount() {
		t.Fatalf("windowed shard ran %d cells, owns %d", len(got.Cells), windowed.OwnedUnitCount())
	}
	if !reflect.DeepEqual(stripWall(got.Cells), stripWall(want)) {
		t.Fatal("windowed shard cells diverge from the unrestricted run's slice")
	}
}
