// Command graphinfo prints the spectral report for a topology: the
// quantities every bound in the paper is expressed in (λ₂, δ), the
// diffusion-matrix eigenvalue γ, Cheeger bounds on the edge expansion, and
// — for small graphs — the exact edge expansion and full Laplacian
// spectrum.
//
// Usage:
//
//	graphinfo -topo hypercube -n 64
//	graphinfo -topo torus -n 36 -spectrum
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/diffusion"
	"repro/internal/graph"
	"repro/internal/spectral"
	"repro/internal/topoparse"
)

func main() {
	var (
		topo     = flag.String("topo", "torus", "path|cycle|torus|grid|hypercube|debruijn|complete|star|tree|petersen|barbell")
		n        = flag.Int("n", 64, "approximate node count")
		spectrum = flag.Bool("spectrum", false, "print the full Laplacian spectrum (dense solve)")
	)
	flag.Parse()

	g, err := topoparse.Build(*topo, *n, 1)
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphinfo:", err)
		os.Exit(1)
	}
	rep, err := spectral.Analyze(g)
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphinfo:", err)
		os.Exit(1)
	}

	fmt.Printf("graph        : %s\n", g)
	fmt.Printf("connected    : %v\n", g.IsConnected())
	fmt.Printf("diameter     : %d\n", graph.Diameter(g))
	fmt.Printf("λ₂           : %.8g (%s)\n", rep.Lambda2, rep.Method)
	if cf, ok := graph.KnownLambda2(g); ok {
		fmt.Printf("λ₂ closed    : %.8g (Δ = %.2g)\n", cf, math.Abs(cf-rep.Lambda2))
	}
	if !math.IsNaN(rep.LambdaMax) {
		fmt.Printf("λ_max        : %.8g\n", rep.LambdaMax)
	}
	if !math.IsNaN(rep.Gamma) {
		fmt.Printf("γ (α=1/(δ+1)): %.8g  (eigen gap µ = %.6g)\n", rep.Gamma, 1-rep.Gamma)
	}
	fmt.Printf("expansion    : Cheeger bounds [%.6g, %.6g]\n", rep.ExpansionLo, rep.ExpansionHi)
	if g.N() <= graph.MaxExactExpansionN {
		fmt.Printf("expansion ex.: %.6g\n", graph.EdgeExpansion(g))
	}
	if rep.Lambda2 > 0 {
		fmt.Printf("Theorem 4    : T(ε=1e-4) = %.1f rounds\n", diffusion.ContinuousBound(g, rep.Lambda2, 1e-4))
		fmt.Printf("Theorem 6    : residual threshold Φ* = %.6g\n", diffusion.DiscreteThreshold(g, rep.Lambda2))
	}
	if *spectrum {
		vals, err := spectral.LaplacianSpectrum(g)
		if err != nil {
			fmt.Fprintln(os.Stderr, "graphinfo: spectrum:", err)
			os.Exit(1)
		}
		fmt.Println("spectrum     :")
		for i, v := range vals {
			fmt.Printf("  λ_%-3d = %.8g\n", i+1, v)
		}
	}
}
