package perfbench

import (
	"strings"
	"testing"
)

func baseReport() *Report {
	return &Report{
		Version:       1,
		CalibrationNs: 1000,
		Rounds: []RoundResult{
			{Topology: "torus", Algorithm: "diffusion", Mode: "continuous", N: 1024, RoundWorkers: 1, NsPerRound: 5000},
			{Topology: "torus", Algorithm: "randpair", Mode: "discrete", N: 4096, RoundWorkers: 8, NsPerRound: 20000},
		},
		Sweeps: []SweepResult{
			{Name: "many-small", UnitWorkers: 4, RoundWorkers: 1, CellsPerSec: 50},
		},
	}
}

func TestCompareIdentical(t *testing.T) {
	res, err := Compare(baseReport(), baseReport(), 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("identical reports flagged: %+v", res)
	}
	if res.Scale != 1 {
		t.Fatalf("scale = %v, want 1", res.Scale)
	}
	if len(res.Deltas) != 3 {
		t.Fatalf("got %d deltas, want 3", len(res.Deltas))
	}
}

func TestCompareFlagsRegression(t *testing.T) {
	cur := baseReport()
	cur.Rounds[0].NsPerRound *= 2 // 100% slower
	res, err := Compare(baseReport(), cur, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() || len(res.Regressions) != 1 {
		t.Fatalf("2× slowdown not flagged: %+v", res)
	}
	if res.Regressions[0].Key != cur.Rounds[0].Key() {
		t.Fatalf("flagged %s, want %s", res.Regressions[0].Key, cur.Rounds[0].Key())
	}
}

func TestCompareFlagsThroughputDrop(t *testing.T) {
	cur := baseReport()
	cur.Sweeps[0].CellsPerSec /= 2 // half the throughput
	res, err := Compare(baseReport(), cur, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() || len(res.Regressions) != 1 || res.Regressions[0].Kind != "cells_per_sec" {
		t.Fatalf("throughput drop not flagged: %+v", res)
	}
}

// TestCompareNormalizesMachineSpeed: a uniformly 2× slower machine (the
// calibration anchor doubled along with every measurement) is not a
// regression — only movement relative to the anchor is.
func TestCompareNormalizesMachineSpeed(t *testing.T) {
	cur := baseReport()
	cur.CalibrationNs *= 2
	for i := range cur.Rounds {
		cur.Rounds[i].NsPerRound *= 2
	}
	for i := range cur.Sweeps {
		cur.Sweeps[i].CellsPerSec /= 2
	}
	res, err := Compare(baseReport(), cur, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("uniform 2× slowdown (slower machine) flagged as regression: %+v", res)
	}
	// And a real regression still shows through the machine scaling.
	cur.Rounds[1].NsPerRound *= 2
	if res, err = Compare(baseReport(), cur, 0.25); err != nil || len(res.Regressions) != 1 {
		t.Fatalf("regression hidden by machine scaling: %+v (err %v)", res, err)
	}
}

func TestCompareMissingCoverageFails(t *testing.T) {
	cur := baseReport()
	cur.Rounds = cur.Rounds[:1]
	cur.Sweeps = nil
	res, err := Compare(baseReport(), cur, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() || len(res.Missing) != 2 {
		t.Fatalf("shrunk coverage not flagged: %+v", res)
	}
}

func TestCompareExtraCoverageIsFree(t *testing.T) {
	cur := baseReport()
	cur.Rounds = append(cur.Rounds, RoundResult{
		Topology: "hypercube", Algorithm: "diffusion", Mode: "continuous",
		N: 1024, RoundWorkers: 1, NsPerRound: 123456,
	})
	res, err := Compare(baseReport(), cur, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() || len(res.Deltas) != 3 {
		t.Fatalf("added coverage penalized: %+v", res)
	}
}

func TestCompareRejectsBadAnchors(t *testing.T) {
	cur := baseReport()
	cur.CalibrationNs = 0
	if _, err := Compare(baseReport(), cur, 0.25); err == nil {
		t.Fatal("zero calibration anchor accepted")
	}
	if _, err := Compare(baseReport(), baseReport(), 0); err == nil {
		t.Fatal("zero tolerance accepted")
	}
}

// TestRunSmoke drives the real harness on a tiny grid: checks the report
// shape, the built-in checksum identity across worker counts, and that the
// result round-trips through Compare cleanly against itself.
func TestRunSmoke(t *testing.T) {
	rep, err := Run(Config{
		Topologies:       []string{"torus"},
		Algorithms:       []string{"diffusion", "dimexchange"},
		Modes:            []string{"continuous", "discrete"},
		Sizes:            []int{64},
		RoundWorkersList: []int{1, 3},
		RoundsBudget:     1, // clamps to 64 rounds per sample
		Samples:          1,
		SkipSweeps:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CalibrationNs <= 0 {
		t.Fatalf("calibration anchor %v", rep.CalibrationNs)
	}
	if len(rep.Rounds) != 8 { // 2 algos × 2 modes × 2 worker counts
		t.Fatalf("got %d round measurements, want 8", len(rep.Rounds))
	}
	for _, r := range rep.Rounds {
		if r.NsPerRound <= 0 || r.RoundsTimed != 64 {
			t.Fatalf("bad measurement %+v", r)
		}
		if r.Checksum == "" || r.Checksum == "unavailable" || !strings.ContainsAny(r.Checksum, "0123456789abcdef") {
			t.Fatalf("bad checksum in %+v", r)
		}
	}
	res, err := Compare(rep, rep, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("report does not match itself: %+v", res)
	}
}
