package markov

import (
	"repro/internal/graph"
	"repro/internal/matrix"
)

// PsiMatrix computes the local divergence Ψ(M) of a diffusion matrix in the
// sense of Rabani, Sinclair and Wanka [16], truncated at a finite horizon:
//
//	Ψ_T(M) = max_i Σ_{t<T} Σ_{(j,k)∈E} |(Mᵗ)_{ji} − (Mᵗ)_{ki}|,
//
// the worst-case (over the node i where a unit of load starts) accumulated
// across-edge imbalance of the idealized chain. [16] prove
// Ψ(M) = O(δ·log n/µ); the series converges because the edge differences
// decay like γᵗ, so a horizon of a few multiples of 1/µ·log n captures it.
//
// Cost is O(T·n·m) time with O(n²) memory (the full matrix power is
// iterated column-wise); intended for the dense experiment sizes.
func PsiMatrix(g *graph.G, m *matrix.Dense, horizon int) float64 {
	n := g.N()
	if m.Rows() != n || m.Cols() != n {
		panic("markov: PsiMatrix dimension mismatch")
	}
	edges := g.Edges()
	worst := 0.0
	col := make(matrix.Vector, n)
	next := make(matrix.Vector, n)
	for i := 0; i < n; i++ {
		// col = Mᵗ·eᵢ, iterated over t. (M is symmetric, so columns of Mᵗ
		// are Mᵗ·eᵢ.)
		for k := range col {
			col[k] = 0
		}
		col[i] = 1
		var acc float64
		for t := 0; t < horizon; t++ {
			for _, e := range edges {
				d := col[e.U] - col[e.V]
				if d < 0 {
					d = -d
				}
				acc += d
			}
			m.MulVecTo(next, col)
			col, next = next, col
		}
		if acc > worst {
			worst = acc
		}
	}
	return worst
}
