package core

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/diffusion"
	"repro/internal/dimexchange"
	"repro/internal/randpair"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/speccache"
)

// runScenario drives one balancing run under a non-static scenario: each
// round it asks the scenario instance for the active graph (rebuilding the
// stepper — with the current loads and a persistent algorithm RNG — only
// when the graph actually changes), advances the stepper one synchronous
// round, injects the scenario's arrivals straight into the stepper's live
// load state, and records the potential. Arrival-bearing scenarios run
// their full horizon (there is no convergence round to stop at while load
// keeps landing); arrival-free ones (pure topology churn) stop early once
// Φ reaches the target, exactly like a static run.
//
// All randomness is split into two streams — cfg.Seed for the algorithm,
// cfg.ScenarioSeed for the scenario — and every draw happens at a fixed
// point of the sequential round loop, so identical seeds reproduce
// identical trajectories regardless of worker counts or shard splits.
func runScenario(cfg Config, res *Result) error {
	scnSeed := cfg.ScenarioSeed
	if scnSeed == 0 {
		scnSeed = cfg.Seed
	}
	var ref float64
	for _, v := range cfg.Loads {
		ref += v
	}
	inst, err := cfg.Scenario.New(cfg.Graph, ref, rand.New(rand.NewSource(scnSeed)))
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}

	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = scenario.DefaultHorizon
	}

	algoRNG := rand.New(rand.NewSource(cfg.Seed))
	g := cfg.Graph
	// The base graph's spectra go through the shared cache (it recurs
	// across every unit of its topology); churned per-round graphs use a
	// cache that dies with the run, so one-shot subgraphs never pollute —
	// or spill to disk from — the process-wide cache.
	runSpectra := speccache.New()
	sys, err := buildSystemOn(cfg, g, cfg.Loads, algoRNG, speccache.Shared())
	if err != nil {
		return err
	}

	phi := sys.Potential()
	target := cfg.Epsilon * phi
	res.PhiStart = phi
	res.PeakPhi = phi
	res.Trace = make([]float64, 1, maxRounds+1)
	res.Trace[0] = phi

	n := cfg.Graph.N()
	lastEvent := 0   // round index of the most recent load injection
	rebalanced := -1 // first round with Φ ≤ target since lastEvent
	if phi <= target {
		rebalanced = 0
	}
	for t := 1; t <= maxRounds; t++ {
		k := t - 1 // scenarios number rounds from 0
		if ng := inst.Graph(k); ng != g {
			g = ng
			spectra := runSpectra
			if g == cfg.Graph {
				spectra = speccache.Shared()
			}
			sys, err = buildSystemOn(cfg, g, currentLoads(sys, cfg.Mode), algoRNG, spectra)
			if err != nil {
				return err
			}
		}
		sys.Step()
		injected, err := inject(sys, cfg.Mode, inst.Arrivals(k, currentLoads(sys, cfg.Mode)))
		if err != nil {
			return err
		}
		phi = sys.Potential()
		res.Trace = append(res.Trace, phi)
		res.Rounds = t
		if phi > res.PeakPhi {
			res.PeakPhi = phi
		}
		switch {
		case injected > 0:
			lastEvent, rebalanced = t, -1
		case rebalanced < 0 && phi <= target:
			rebalanced = t
		}
		if inst.ArrivalFree() && phi <= target {
			break
		}
	}

	res.PhiEnd = phi
	res.Converged = phi <= target
	if rebalanced >= 0 {
		res.RebalanceRounds = rebalanced - lastEvent
	}
	// Steady state: mean RMS discrepancy over the final quarter of the
	// observed trajectory (at least one round).
	q := len(res.Trace) / 4
	if q < 1 {
		q = 1
	}
	var sum float64
	for _, p := range res.Trace[len(res.Trace)-q:] {
		sum += math.Sqrt(p / float64(n))
	}
	res.SteadyRMS = sum / float64(q)
	return nil
}

// currentLoads returns the stepper's live load state as a float vector:
// the continuous vector itself (no copy — callers treat it as read-only),
// or a float view of the token counts. Token counts of any realistic
// magnitude are exact in float64, so the view round-trips losslessly into
// the next stepper build.
func currentLoads(sys sim.System, mode Mode) []float64 {
	if mode == Discrete {
		tok := mustDiscrete(sys).LoadTokens()
		out := make([]float64, len(tok))
		for i, x := range tok {
			out[i] = float64(x)
		}
		return out
	}
	return mustContinuous(sys).LoadVector()
}

// inject lands the arrivals in the stepper's live load state, returning
// the total injected (discrete amounts round to whole tokens).
func inject(sys sim.System, mode Mode, arrivals []scenario.Arrival) (float64, error) {
	if len(arrivals) == 0 {
		return 0, nil
	}
	var total float64
	if mode == Discrete {
		tok := mustDiscrete(sys).LoadTokens()
		for _, a := range arrivals {
			amt := int64(math.Round(a.Amount))
			if amt <= 0 || a.Node < 0 || a.Node >= len(tok) {
				continue
			}
			tok[a.Node] += amt
			total += float64(amt)
		}
		return total, nil
	}
	v := mustContinuous(sys).LoadVector()
	for _, a := range arrivals {
		if a.Amount <= 0 || a.Node < 0 || a.Node >= len(v) {
			continue
		}
		v[a.Node] += a.Amount
		total += a.Amount
	}
	return total, nil
}

// mustContinuous and mustDiscrete assert the stepper exposes the matching
// state hook. Every algorithm core builds implements them; a panic here
// means a new stepper was added without its sim.ContinuousState or
// sim.DiscreteState method.
func mustContinuous(sys sim.System) sim.ContinuousState {
	cs, ok := sys.(sim.ContinuousState)
	if !ok {
		panic(fmt.Sprintf("core: stepper %T has no LoadVector hook", sys))
	}
	return cs
}

func mustDiscrete(sys sim.System) sim.DiscreteState {
	ds, ok := sys.(sim.DiscreteState)
	if !ok {
		panic(fmt.Sprintf("core: stepper %T has no LoadTokens hook", sys))
	}
	return ds
}

// Compile-time checks: every stepper buildSystemOn can return must expose
// its state hook, so forgetting the method on a new algorithm fails the
// build, not a sweep.
var (
	_ sim.ContinuousState = (*diffusion.Continuous)(nil)
	_ sim.ContinuousState = (*diffusion.FirstOrder)(nil)
	_ sim.ContinuousState = (*diffusion.SecondOrder)(nil)
	_ sim.ContinuousState = (*dimexchange.Continuous)(nil)
	_ sim.ContinuousState = (*dimexchange.RoundRobin)(nil)
	_ sim.ContinuousState = (*randpair.Continuous)(nil)
	_ sim.DiscreteState   = (*diffusion.Discrete)(nil)
	_ sim.DiscreteState   = (*dimexchange.Discrete)(nil)
	_ sim.DiscreteState   = (*dimexchange.RoundRobinDiscrete)(nil)
	_ sim.DiscreteState   = (*randpair.Discrete)(nil)
)
