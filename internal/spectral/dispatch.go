package spectral

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/graph"
)

// Solve-path accounting. Every λ₂/λ_max/γ/γ_P computation records which
// solver actually ran, so callers (speccache stats, the large-n smoke gate
// in CI) can assert that the dense O(n³) pipeline is never invoked on
// million-node graphs.

// SolveCounts is a snapshot of how many spectral solves each path served
// since process start (or the last ResetSolveCounts).
type SolveCounts struct {
	ClosedForm   uint64 // analytic formula from internal/graph/spectra.go
	Dense        uint64 // Householder + implicit QL on the materialized matrix
	Lanczos      uint64 // implicit CSR Lanczos, residual gate met
	InversePower uint64 // CG-based inverse power (Lanczos fallback)
}

var (
	solveClosedForm   atomic.Uint64
	solveDense        atomic.Uint64
	solveLanczos      atomic.Uint64
	solveInversePower atomic.Uint64
)

// SolveStats returns the current solve-path counters.
func SolveStats() SolveCounts {
	return SolveCounts{
		ClosedForm:   solveClosedForm.Load(),
		Dense:        solveDense.Load(),
		Lanczos:      solveLanczos.Load(),
		InversePower: solveInversePower.Load(),
	}
}

// ResetSolveCounts zeroes the solve-path counters; intended for tests and
// smoke gates that assert on the delta of a single computation.
func ResetSolveCounts() {
	solveClosedForm.Store(0)
	solveDense.Store(0)
	solveLanczos.Store(0)
	solveInversePower.Store(0)
}

// gammaFromLaplacian evaluates γ of a diffusion matrix of the exact form
// M = I − c·L from the extremal nonzero Laplacian eigenvalues: in the
// complement of the stationary all-ones vector the eigenvalues of M are
// 1 − c·λ for λ over the nonzero Laplacian spectrum, so the second-largest
// magnitude is max(|1 − c·λ₂|, |1 − c·λ_max|).
func gammaFromLaplacian(c, lambda2, lambdaMax float64) float64 {
	g := math.Abs(1 - c*lambda2)
	if a := math.Abs(1 - c*lambdaMax); a > g {
		g = a
	}
	return g
}

// LambdaMaxOf returns the largest Laplacian eigenvalue of g, routed the
// same way as Lambda2: closed form, then dense below the cutoff, then
// implicit Lanczos. The top of the spectrum converges fast under Lanczos,
// so the unconverged Ritz estimate is still returned (it approaches λ_max
// from below) rather than failing.
func LambdaMaxOf(g *graph.G) (float64, error) {
	n := g.N()
	if n < 1 {
		return 0, fmt.Errorf("spectral: λ_max undefined for the empty graph")
	}
	if lm, ok := graph.KnownLambdaMax(g); ok {
		solveClosedForm.Add(1)
		return lm, nil
	}
	if n <= denseCutoff {
		solveDense.Add(1)
		vals, err := EigenvaluesSym(g.Laplacian())
		if err != nil {
			return 0, err
		}
		return vals[n-1], nil
	}
	_, hi, _, err := ExtremalEigs(n, LaplacianOperator(g), nil, 1)
	if err != nil {
		return 0, err
	}
	solveLanczos.Add(1)
	return hi, nil
}

// GammaOf returns γ — the second-largest eigenvalue magnitude — of
// Cybenko's uniform diffusion matrix M = I − L/(δ+1) for g, without
// materializing M for large graphs. Routing: closed form where the
// Laplacian extremes are known analytically (M = I − αL exactly, for every
// graph), dense below the cutoff, implicit Lanczos above it, and on
// non-convergence the exact M = I − αL identity with λ₂ from the CG-based
// inverse-power path.
func GammaOf(g *graph.G) (float64, error) {
	n := g.N()
	if n < 2 {
		return 0, fmt.Errorf("spectral: γ undefined for n=%d", n)
	}
	alpha := 1 / float64(g.MaxDegree()+1)
	if l2, ok := graph.KnownLambda2(g); ok {
		if lm, ok2 := graph.KnownLambdaMax(g); ok2 {
			solveClosedForm.Add(1)
			return gammaFromLaplacian(alpha, l2, lm), nil
		}
	}
	if n <= denseCutoff {
		solveDense.Add(1)
		return Gamma(DiffusionMatrix(g))
	}
	gm, ok, err := GammaLanczos(g, UniformDiffusionOperator(g), 1)
	if err != nil {
		return 0, err
	}
	if ok {
		solveLanczos.Add(1)
		return gm, nil
	}
	// Tiny-gap graph: the 1 − αλ₂ end of M's spectrum did not settle. λ₂
	// itself is still reachable by inverse power in O(n) memory, and the
	// |1 − αλ_max| end is bounded strictly below 1 for α = 1/(δ+1), so the
	// identity value dominates; keep the Ritz estimate as a floor.
	solveInversePower.Add(1)
	l2, err := Lambda2InversePower(g, 1)
	if err != nil {
		return 0, err
	}
	if hi := math.Abs(1 - alpha*l2); hi > gm {
		gm = hi
	}
	return gm, nil
}

// PaperGammaOf returns γ_P, the second-largest eigenvalue magnitude of the
// paper's diffusion matrix (transfer rule 1/(4·max(dᵢ,dⱼ))). Routing:
// closed form for families whose edge weight is a uniform c (then
// M_P = I − cL exactly), dense below the cutoff, implicit Lanczos above it.
// On non-convergence the best Ritz estimate is returned: γ_P only feeds
// reporting bounds, and the hard cases are exactly the tiny-gap families
// where γ_P ≈ 1 − c·λ₂ is already pinned by the λ₂ fallback path.
func PaperGammaOf(g *graph.G) (float64, error) {
	n := g.N()
	if n < 2 {
		return 0, fmt.Errorf("spectral: γ_P undefined for n=%d", n)
	}
	if c, ok := graph.KnownPaperEdgeScale(g); ok {
		l2, ok2 := graph.KnownLambda2(g)
		lm, ok3 := graph.KnownLambdaMax(g)
		if ok2 && ok3 {
			solveClosedForm.Add(1)
			return gammaFromLaplacian(c, l2, lm), nil
		}
	}
	if n <= denseCutoff {
		solveDense.Add(1)
		return Gamma(PaperDiffusionMatrix(g))
	}
	gm, _, err := GammaLanczos(g, PaperDiffusionOperator(g), 1)
	if err != nil {
		return 0, err
	}
	solveLanczos.Add(1)
	return gm, nil
}
