// Command lbbench regenerates the paper-reproduction experiment tables.
//
// Usage:
//
//	lbbench -exp all            # run every experiment (E1–E14, A1–A3)
//	lbbench -exp E3,E4          # run selected experiments
//	lbbench -exp E9 -seed 7     # change the seed
//	lbbench -list               # list experiment ids
//	lbbench -quick              # shrunk sweeps (CI-sized)
//	lbbench -csv                # CSV instead of aligned tables
//
// Each experiment prints one table pairing the measured quantity with the
// paper's bound; see DESIGN.md §5 for the experiment ↔ theorem mapping and
// EXPERIMENTS.md for a recorded reference run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		seed  = flag.Int64("seed", 1, "seed for randomized components")
		quick = flag.Bool("quick", false, "shrink sweeps for a fast run")
		csv   = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		list  = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	var ids []string
	if *exp == "all" {
		ids = experiments.IDs()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			if _, ok := experiments.Lookup(id); !ok {
				fmt.Fprintf(os.Stderr, "lbbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "lbbench: no experiments selected")
		os.Exit(2)
	}

	opts := experiments.Options{Seed: *seed, Quick: *quick}
	for _, id := range ids {
		runner, _ := experiments.Lookup(id)
		start := time.Now()
		table := runner(opts)
		elapsed := time.Since(start)
		var err error
		if *csv {
			err = table.RenderCSV(os.Stdout)
		} else {
			err = table.Render(os.Stdout)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "lbbench: rendering %s: %v\n", id, err)
			os.Exit(1)
		}
		if !*csv {
			fmt.Printf("[%s completed in %v]\n\n", id, elapsed.Round(time.Millisecond))
		}
	}
}
