package core

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"repro/internal/batch"
	"repro/internal/graph"
	"repro/internal/scenario"
)

func mustScenario(t *testing.T, s string) scenario.Spec {
	t.Helper()
	sp, err := scenario.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// TestBalanceScenarioDeterministic: identical configs reproduce identical
// trajectories, and changing only the scenario seed changes them (for a
// randomized scenario).
func TestBalanceScenarioDeterministic(t *testing.T) {
	g := graph.Torus(4, 4)
	cfg := Config{
		Graph:        g,
		Algorithm:    Diffusion,
		Loads:        SpikeLoads(g.N(), 1e6),
		Epsilon:      1e-3,
		MaxRounds:    64,
		Scenario:     mustScenario(t, "poisson-arrivals:0.05"),
		ScenarioSeed: 7,
	}
	r1, err := Balance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Balance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Trace, r2.Trace) {
		t.Fatal("identical configs produced different trajectories")
	}
	cfg.ScenarioSeed = 8
	r3, err := Balance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(r1.Trace, r3.Trace) {
		t.Fatal("different scenario seeds produced identical trajectories")
	}
	if r1.Rounds != 64 {
		t.Fatalf("arrival scenario stopped at %d rounds, want the full 64-round horizon", r1.Rounds)
	}
	if r1.PeakPhi < r1.PhiStart {
		t.Fatalf("PeakPhi %g below PhiStart %g", r1.PeakPhi, r1.PhiStart)
	}
	if r1.SteadyRMS <= 0 {
		t.Fatal("SteadyRMS not tracked")
	}
	if r1.Bound != 0 || r1.BoundName != "" {
		t.Fatalf("scenario run reported a one-shot theorem bound (%v %q)", r1.Bound, r1.BoundName)
	}
}

// TestBalanceScenarioRespikeRaisesBacklog: the adversarial respike must
// push the potential back up after the initial spike has been balanced
// away — peak backlog beyond round one's, and a rebalance time recorded
// once the system recovers from the last injection.
func TestBalanceScenarioRespikeRaisesBacklog(t *testing.T) {
	g := graph.Hypercube(4)
	res, err := Balance(Config{
		Graph:     g,
		Algorithm: Diffusion,
		Loads:     SpikeLoads(g.N(), 1e6),
		Epsilon:   1e-2,
		MaxRounds: 256,
		Scenario:  mustScenario(t, "adversarial-respike:16:0.5"),
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// After round 16's respike the potential must exceed its pre-respike
	// value: the trace is not monotone the way a static diffusion run is.
	if res.Trace[16] <= res.Trace[15] {
		t.Fatalf("respike at round 16 did not raise Φ (%g → %g)", res.Trace[15], res.Trace[16])
	}
	if res.Converged && res.RebalanceRounds <= 0 {
		t.Fatalf("converged run recorded no rebalance time (rounds=%d)", res.RebalanceRounds)
	}
}

// TestBalanceScenarioChurnStopsEarly: an arrival-free churn scenario stops
// at the balance target like a static run, on a changing graph.
func TestBalanceScenarioChurnStopsEarly(t *testing.T) {
	g := graph.Torus(4, 4)
	res, err := Balance(Config{
		Graph:     g,
		Algorithm: Diffusion,
		Loads:     SpikeLoads(g.N(), 1e6),
		Epsilon:   1e-2,
		MaxRounds: 4096,
		Scenario:  mustScenario(t, "edge-churn:0.2"),
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("edge-churn run never converged (Φ %g → %g in %d rounds)", res.PhiStart, res.PhiEnd, res.Rounds)
	}
	if res.Rounds >= 4096 {
		t.Fatal("arrival-free scenario ran to the horizon instead of stopping at the target")
	}
}

// TestBalanceScenarioDiscreteConservesPlusInjections: in token mode, the
// final total equals the initial total plus exactly what the scenario
// injected — the round loop neither loses nor invents tokens.
func TestBalanceScenarioDiscreteConservesPlusInjections(t *testing.T) {
	g := graph.Cycle(16)
	loads := SpikeLoads(g.N(), 64000)
	res, err := Balance(Config{
		Graph:     g,
		Algorithm: Diffusion,
		Mode:      Discrete,
		Loads:     loads,
		Epsilon:   1e-3,
		MaxRounds: 32,
		Scenario:  mustScenario(t, "bursty:8:0.25"),
		Seed:      5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 32 rounds with a burst every 8 → 4 bursts of 0.25·64000 = 16000.
	// Discrete potential is tracked around the (growing) average; instead
	// of reimplementing the loop, assert via the trace that each burst
	// round jumps the potential.
	for _, r := range []int{8, 16, 24, 32} {
		if res.Trace[r] <= res.Trace[r-1] {
			t.Fatalf("burst at round %d did not raise Φ (%g → %g)", r, res.Trace[r-1], res.Trace[r])
		}
	}
}

// TestGridScenarioWorkerIndependence: the determinism contract
// extended to the scenario dimension — a grid with static, adversarial and
// stochastic-arrival scenarios renders byte-identically for any worker
// count.
func TestGridScenarioWorkerIndependence(t *testing.T) {
	spec := batch.Spec{
		Topologies: []string{"cycle", "torus"},
		Algorithms: []string{"diffusion", "randpair"},
		Modes:      []string{"continuous", "discrete"},
		Workloads:  []string{"spike"},
		Scenarios:  []string{"static", "adversarial-respike", "poisson-arrivals", "edge-churn"},
		Seeds:      []int64{1, 2},
		N:          16,
		MaxRounds:  48,
		Epsilon:    1e-3,
	}
	var first []byte
	for _, workers := range []int{1, 8} {
		spec.Workers = workers
		rep, err := GridRun(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rep.RenderCSV(&buf); err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = buf.Bytes()
		} else if !bytes.Equal(first, buf.Bytes()) {
			t.Fatalf("workers=%d scenario grid differs from workers=1", workers)
		}
	}
}

// TestBalanceStaticScenarioIsByteIdenticalToNoScenario: the zero-value
// scenario must not change a static run in any way.
func TestBalanceStaticScenarioIsByteIdenticalToNoScenario(t *testing.T) {
	g := graph.Torus(4, 4)
	base := Config{
		Graph:     g,
		Algorithm: DimensionExchange,
		Loads:     SpikeLoads(g.N(), 1e6),
		Epsilon:   1e-3,
		Seed:      9,
	}
	withScenario := base
	withScenario.Scenario = mustScenario(t, "static")
	withScenario.ScenarioSeed = 1234 // must be ignored entirely
	r1, err := Balance(base)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Balance(withScenario)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("explicit static scenario changed the run:\n%+v\nvs\n%+v", r2, r1)
	}
}
