// Package graph provides the immutable undirected graphs on which the load
// balancing algorithms run, together with the standard topology families the
// diffusion literature evaluates on (path, cycle, torus, hypercube,
// de Bruijn, expanders, …), their Laplacian/adjacency matrices, and
// structural measures (degree, expansion, connectivity).
//
// Graphs are simple (no self loops, no multi-edges) and immutable once
// built; every algorithm in this repository treats the topology as
// read-only, which is what makes the goroutine-parallel round executor in
// internal/sim safe without locks.
package graph

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"slices"
	"sort"
	"sync"

	"repro/internal/matrix"
)

// Edge is an undirected edge between two node indices with U < V.
type Edge struct {
	U, V int
}

// Canonical returns the edge with endpoints ordered so that U < V.
func (e Edge) Canonical() Edge {
	if e.U > e.V {
		return Edge{U: e.V, V: e.U}
	}
	return e
}

// Other returns the endpoint of e that is not x. Panics if x is not an
// endpoint.
func (e Edge) Other(x int) int {
	switch x {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("graph: node %d not on edge %v", x, e))
}

// G is an immutable simple undirected graph with nodes 0..n−1.
//
// Besides the per-node neighbour slices, every graph carries a flat CSR
// (compressed sparse row) view of its adjacency — a single offsets array and
// a single targets array — built once in Finish. The CSR view is the layout
// the per-round stepper hot loops scan: one contiguous stream instead of n
// pointer-chased slices, which is what keeps a million-node round
// cache-friendly. The neighbour slices are row views into the same targets
// array, so the two representations share one backing allocation. See CSR
// for the layout contract.
type G struct {
	name  string
	n     int
	adj   [][]int // sorted neighbour lists (views into csrTgt)
	edges []Edge  // canonical, sorted lexicographically
	deg   []int

	csrOff []int // len n+1; node i's neighbours at csrTgt[csrOff[i]:csrOff[i+1]]
	csrTgt []int // len 2m; ascending within each node's range

	fpOnce sync.Once
	fp     uint64
}

// Builder accumulates edges and produces an immutable G. Self loops and
// out-of-range endpoints are rejected at Finish time; duplicate AddEdge
// calls for the same undirected edge collapse to one edge.
//
// Edges are kept as packed (u,v) keys in an append-only slice and
// sort+deduplicated once in Finish — O(m log m) with one allocation, rather
// than the hash-map-per-edge cost that dominated million-edge builds.
type Builder struct {
	name   string
	n      int
	packed []uint64 // canonical edges as U<<32|V
	err    error
}

// NewBuilder starts a builder for a graph with n nodes.
func NewBuilder(name string, n int) *Builder {
	b := &Builder{name: name, n: n}
	if n < 0 {
		b.err = errors.New("graph: negative node count")
	}
	return b
}

// AddEdge records the undirected edge {u, v}. Errors (out-of-range
// endpoints, self loops) are sticky and reported by Finish.
func (b *Builder) AddEdge(u, v int) {
	if b.err != nil {
		return
	}
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		b.err = fmt.Errorf("graph: edge (%d,%d) out of range n=%d", u, v, b.n)
		return
	}
	if u == v {
		b.err = fmt.Errorf("graph: self loop at node %d", u)
		return
	}
	if u > v {
		u, v = v, u
	}
	b.packed = append(b.packed, uint64(u)<<32|uint64(v))
}

// Finish validates and freezes the graph.
func (b *Builder) Finish() (*G, error) {
	if b.err != nil {
		return nil, b.err
	}
	slices.Sort(b.packed)
	b.packed = slices.Compact(b.packed)
	m := len(b.packed)
	g := &G{name: b.name, n: b.n, deg: make([]int, b.n)}
	g.edges = make([]Edge, m)
	for k, p := range b.packed {
		u, v := int(p>>32), int(uint32(p))
		g.edges[k] = Edge{U: u, V: v}
		g.deg[u]++
		g.deg[v]++
	}

	// CSR offsets by prefix sum, then a single placement pass. Iterating the
	// sorted edge list places each node's smaller neighbours (from edges
	// where it is V, ascending by U) before its larger ones (from its own U
	// block, ascending by V), so every row comes out ascending without a
	// per-node sort.
	g.csrOff = make([]int, b.n+1)
	total := 0
	for i, d := range g.deg {
		g.csrOff[i] = total
		total += d
	}
	g.csrOff[b.n] = total
	g.csrTgt = make([]int, total)
	cursor := make([]int, b.n)
	copy(cursor, g.csrOff[:b.n])
	for _, e := range g.edges {
		g.csrTgt[cursor[e.U]] = e.V
		cursor[e.U]++
		g.csrTgt[cursor[e.V]] = e.U
		cursor[e.V]++
	}

	// The neighbour slices are capped row views into the CSR targets, so the
	// slice API shares the one backing allocation instead of copying it.
	g.adj = make([][]int, b.n)
	for i := 0; i < b.n; i++ {
		g.adj[i] = g.csrTgt[g.csrOff[i]:g.csrOff[i+1]:g.csrOff[i+1]]
	}
	return g, nil
}

// MustFinish is Finish that panics on error; used by the topology
// constructors whose edge sets are correct by construction.
func (b *Builder) MustFinish() *G {
	g, err := b.Finish()
	if err != nil {
		panic(err)
	}
	return g
}

// Name returns the human-readable topology name, e.g. "torus(8x8)".
func (g *G) Name() string { return g.name }

// N returns the number of nodes.
func (g *G) N() int { return g.n }

// M returns the number of edges.
func (g *G) M() int { return len(g.edges) }

// Edges returns the canonical edge list. Callers must not mutate it.
func (g *G) Edges() []Edge { return g.edges }

// Neighbors returns the sorted neighbour list of node i. Callers must not
// mutate it.
func (g *G) Neighbors(i int) []int { return g.adj[i] }

// CSR returns the flat compressed-sparse-row adjacency view: node i's
// neighbours are targets[offsets[i]:offsets[i+1]], ascending, and
// offsets[i+1]−offsets[i] equals Degree(i). Both slices are shared with the
// graph and must not be mutated.
//
// Layout contract (steppers depend on every clause):
//   - offsets has length N()+1 with offsets[0] = 0 and offsets[N()] = 2·M();
//   - each row lists the same neighbours, in the same ascending order, as
//     Neighbors(i) — a loop converted from Neighbors to CSR therefore
//     replays the exact serial IEEE operation chain and stays bit-identical;
//   - Neighbors(i) is a capped view of targets[offsets[i]:offsets[i+1]], so
//     the two representations alias one backing array.
func (g *G) CSR() (offsets, targets []int) { return g.csrOff, g.csrTgt }

// Degree returns the degree of node i.
func (g *G) Degree(i int) int { return g.deg[i] }

// MaxDegree returns δ = maxᵢ deg(i); 0 for the empty graph.
func (g *G) MaxDegree() int {
	max := 0
	for _, d := range g.deg {
		if d > max {
			max = d
		}
	}
	return max
}

// MinDegree returns minᵢ deg(i); 0 for the empty graph.
func (g *G) MinDegree() int {
	if g.n == 0 {
		return 0
	}
	min := g.deg[0]
	for _, d := range g.deg[1:] {
		if d < min {
			min = d
		}
	}
	return min
}

// Fingerprint returns a stable 64-bit structural hash of the graph: its
// name, node count and full edge set. Two graphs with the same fingerprint
// are interchangeable for caching purposes — internal/speccache keys its
// memoized spectral quantities (λ₂, γ, optimal flows) on it, so randomized
// families with colliding names but different edge sets never share an
// entry. Computed lazily, exactly once, and safe for concurrent use (G is
// immutable after Finish).
func (g *G) Fingerprint() uint64 {
	g.fpOnce.Do(func() {
		h := fnv.New64a()
		h.Write([]byte(g.name))
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(g.n))
		h.Write(buf[:])
		for _, e := range g.edges {
			binary.LittleEndian.PutUint32(buf[:4], uint32(e.U))
			binary.LittleEndian.PutUint32(buf[4:], uint32(e.V))
			h.Write(buf[:])
		}
		g.fp = h.Sum64()
	})
	return g.fp
}

// HasEdge reports whether {u, v} is an edge.
func (g *G) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n || u == v {
		return false
	}
	a := g.adj[u]
	k := sort.SearchInts(a, v)
	return k < len(a) && a[k] == v
}

// IsConnected reports whether the graph is connected. The empty graph and
// the single node are connected by convention.
func (g *G) IsConnected() bool {
	if g.n <= 1 {
		return true
	}
	seen := make([]bool, g.n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.adj[u] {
			if !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, v)
			}
		}
	}
	return count == g.n
}

// IsRegular reports whether every node has the same degree, and that degree.
func (g *G) IsRegular() (int, bool) {
	if g.n == 0 {
		return 0, true
	}
	d := g.deg[0]
	for _, x := range g.deg[1:] {
		if x != d {
			return 0, false
		}
	}
	return d, true
}

// Adjacency returns the n×n adjacency matrix A.
func (g *G) Adjacency() *matrix.Dense {
	a := matrix.NewDense(g.n, g.n)
	for _, e := range g.edges {
		a.Set(e.U, e.V, 1)
		a.Set(e.V, e.U, 1)
	}
	return a
}

// Laplacian returns the n×n Laplacian L = D − A, where D is the diagonal
// degree matrix. L is symmetric positive semidefinite; its second-smallest
// eigenvalue λ₂ (the algebraic connectivity) drives every convergence bound
// in the paper.
func (g *G) Laplacian() *matrix.Dense {
	l := matrix.NewDense(g.n, g.n)
	for i, d := range g.deg {
		l.Set(i, i, float64(d))
	}
	for _, e := range g.edges {
		l.Set(e.U, e.V, -1)
		l.Set(e.V, e.U, -1)
	}
	return l
}

// Subgraph returns the graph on the same node set containing only the edges
// for which keep returns true. Used by the dynamic-network generators.
func (g *G) Subgraph(name string, keep func(Edge) bool) *G {
	b := NewBuilder(name, g.n)
	for _, e := range g.edges {
		if keep(e) {
			b.AddEdge(e.U, e.V)
		}
	}
	return b.MustFinish()
}

// String implements fmt.Stringer.
func (g *G) String() string {
	return fmt.Sprintf("%s{n=%d m=%d δ=%d}", g.name, g.n, g.M(), g.MaxDegree())
}
