package graph

import (
	"math"
)

// EdgeExpansion computes the exact edge expansion
//
//	α = min over ∅⊂S⊂V of |E(S, S̄)| / min(|S|, |S̄|)
//
// by enumerating all 2^(n−1)−1 proper cuts. It is exponential in n and
// guarded to n ≤ MaxExactExpansionN; larger graphs should use
// ExpansionBounds, which brackets α via Cheeger's inequality.
func EdgeExpansion(g *G) float64 {
	n := g.N()
	if n > MaxExactExpansionN {
		panic("graph: EdgeExpansion limited to small graphs; use ExpansionBounds")
	}
	if n < 2 {
		return 0
	}
	best := math.Inf(1)
	// Fix node 0 on the S̄ side to halve the enumeration: every proper cut
	// is represented by the subset mask over nodes 1..n−1 that forms S.
	total := 1 << uint(n-1)
	for mask := 1; mask < total; mask++ {
		inS := func(v int) bool { return v > 0 && mask&(1<<uint(v-1)) != 0 }
		size := 0
		for v := 1; v < n; v++ {
			if inS(v) {
				size++
			}
		}
		cut := 0
		for _, e := range g.Edges() {
			if inS(e.U) != inS(e.V) {
				cut++
			}
		}
		denom := size
		if n-size < denom {
			denom = n - size
		}
		if denom == 0 {
			continue
		}
		if r := float64(cut) / float64(denom); r < best {
			best = r
		}
	}
	return best
}

// MaxExactExpansionN bounds the graph size accepted by EdgeExpansion
// (2^(n−1) cut enumeration).
const MaxExactExpansionN = 22

// ExpansionBounds returns lower and upper bounds on the edge expansion α
// derived from the algebraic connectivity λ₂ via the discrete Cheeger
// inequality for the (unnormalized) Laplacian:
//
//	λ₂/2 ≤ h(G) ≤ sqrt(2·δ·λ₂),
//
// where h is the conductance-style edge expansion with volume replaced by
// set size (the variant used in [12] and this paper). λ₂ must be supplied
// by the caller (see internal/spectral).
func ExpansionBounds(g *G, lambda2 float64) (lo, hi float64) {
	delta := float64(g.MaxDegree())
	lo = lambda2 / 2
	hi = math.Sqrt(2 * delta * lambda2)
	return lo, hi
}

// CutSize returns |E(S, S̄)| for the node subset S given as a membership
// slice of length n.
func CutSize(g *G, inS []bool) int {
	if len(inS) != g.N() {
		panic("graph: CutSize membership length mismatch")
	}
	cut := 0
	for _, e := range g.Edges() {
		if inS[e.U] != inS[e.V] {
			cut++
		}
	}
	return cut
}

// Diameter returns the graph diameter (longest shortest path) via BFS from
// every node, or −1 if the graph is disconnected or empty.
func Diameter(g *G) int {
	n := g.N()
	if n == 0 {
		return -1
	}
	maxDist := 0
	dist := make([]int, n)
	queue := make([]int, 0, n)
	for s := 0; s < n; s++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[s] = 0
		queue = queue[:0]
		queue = append(queue, s)
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, v := range g.Neighbors(u) {
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					queue = append(queue, v)
				}
			}
		}
		for _, d := range dist {
			if d < 0 {
				return -1
			}
			if d > maxDist {
				maxDist = d
			}
		}
	}
	return maxDist
}
