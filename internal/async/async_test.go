package async

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/workload"
)

func TestContinuousTickAverages(t *testing.T) {
	g := graph.Path(2)
	c := NewContinuous(g, []float64{10, 0}, RoundRobin, nil)
	c.Tick()
	if c.Load.At(0) != 5 || c.Load.At(1) != 5 {
		t.Fatalf("after tick: %v %v", c.Load.At(0), c.Load.At(1))
	}
	if c.Ticks() != 1 {
		t.Fatal("tick count")
	}
}

func TestContinuousPotentialMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.Torus(4, 4)
	c := NewContinuous(g, workload.Continuous(workload.Uniform, g.N(), 100, rng), UniformRandom, rng)
	prev := c.Potential()
	for k := 0; k < 1000; k++ {
		c.Tick()
		cur := c.Potential()
		if cur > prev+1e-9*(1+prev) {
			t.Fatalf("Φ rose at tick %d", k)
		}
		prev = cur
	}
}

func TestContinuousConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.Hypercube(4)
	c := NewContinuous(g, workload.Continuous(workload.Exponential, g.N(), 10, rng), UniformRandom, rng)
	before := c.Load.Total()
	for k := 0; k < 50; k++ {
		c.Step()
	}
	if math.Abs(c.Load.Total()-before) > 1e-8*(1+math.Abs(before)) {
		t.Fatal("async continuous must conserve")
	}
}

func TestContinuousConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.Cycle(16)
	c := NewContinuous(g, workload.Continuous(workload.Spike, g.N(), 1e6, nil), UniformRandom, rng)
	phi0 := c.Potential()
	for k := 0; k < 500; k++ {
		c.Step()
	}
	if c.Potential() > 1e-6*phi0 {
		t.Fatalf("Φ %v after 500 round-budgets", c.Potential())
	}
}

func TestRoundRobinDeterministic(t *testing.T) {
	g := graph.Torus(3, 3)
	init := workload.Continuous(workload.Spike, g.N(), 900, nil)
	a := NewContinuous(g, init, RoundRobin, nil)
	b := NewContinuous(g, init, RoundRobin, nil)
	for k := 0; k < 5; k++ {
		a.Step()
		b.Step()
	}
	if !a.Load.Vector().ApproxEqual(b.Load.Vector(), 0) {
		t.Fatal("round robin must be deterministic")
	}
}

func TestDiscreteConservesAndStaysNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := graph.Star(9)
	d := NewDiscrete(g, workload.Discrete(workload.Spike, g.N(), 12345, nil), UniformRandom, rng)
	before := d.Load.Total()
	for k := 0; k < 100; k++ {
		d.Step()
		for node, v := range d.Load.Tokens() {
			if v < 0 {
				t.Fatalf("node %d negative", node)
			}
		}
	}
	if d.Load.Total() != before {
		t.Fatal("tokens not conserved")
	}
}

func TestDiscreteReachesDiameterDiscrepancy(t *testing.T) {
	// Fixed points of the pairwise ⌊diff/2⌋ rule have all adjacent
	// differences ≤ 1 (the paper's line example), so the global
	// discrepancy can legitimately stall at up to the graph diameter.
	g := graph.Cycle(8)
	bound := int64(graph.Diameter(g))
	d := NewDiscrete(g, workload.Discrete(workload.Spike, g.N(), 8000, nil), RoundRobin, nil)
	// Run round-robin sweeps until a full sweep moves nothing (true fixed
	// point); must happen quickly.
	for k := 0; k < 2000; k++ {
		before := d.Load.Clone()
		d.Step()
		same := true
		for i := 0; i < g.N(); i++ {
			if before.At(i) != d.Load.At(i) {
				same = false
				break
			}
		}
		if same {
			break
		}
	}
	if k := d.Load.Discrepancy(); k > bound {
		t.Fatalf("discrepancy %d above diameter bound %d", k, bound)
	}
	// And adjacent differences must be ≤ 1 at the fixed point.
	for _, e := range g.Edges() {
		diff := d.Load.At(e.U) - d.Load.At(e.V)
		if diff < -1 || diff > 1 {
			t.Fatalf("edge %v difference %d at fixed point", e, diff)
		}
	}
}

func TestEmptyGraphTicksAreNoops(t *testing.T) {
	g := graph.NewBuilder("iso", 3).MustFinish()
	c := NewContinuous(g, []float64{1, 2, 3}, UniformRandom, rand.New(rand.NewSource(1)))
	c.Tick()
	c.Step()
	if c.Load.At(0) != 1 {
		t.Fatal("no edges, no movement")
	}
}

func TestScheduleString(t *testing.T) {
	if UniformRandom.String() != "uniform" || RoundRobin.String() != "roundrobin" {
		t.Fatal("schedule names")
	}
}

// Property: a tick on (u,v) zeroes their difference (continuous) and halves
// it rounding down (discrete).
func TestTickPairBalanceProperty(t *testing.T) {
	f := func(seed uint8) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		g := graph.Complete(4 + r.Intn(6))
		c := NewContinuous(g, workload.Continuous(workload.Uniform, g.N(), 100, r), RoundRobin, nil)
		before := c.Load.Total()
		c.Tick()
		e := g.Edges()[0]
		if math.Abs(c.Load.At(e.U)-c.Load.At(e.V)) > 1e-9 {
			return false
		}
		return math.Abs(c.Load.Total()-before) < 1e-9*(1+math.Abs(before))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
