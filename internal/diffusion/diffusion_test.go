package diffusion

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/load"
	"repro/internal/spectral"
	"repro/internal/workload"
)

func TestEdgeWeightRule(t *testing.T) {
	g := graph.Star(5) // centre degree 4, leaves degree 1
	// Edge (0,1): max degree 4, diff 8 → 8/(4·4) = 0.5.
	if got := EdgeWeight(g, 0, 1, 10, 2); math.Abs(got-0.5) > 1e-15 {
		t.Fatalf("weight = %v, want 0.5", got)
	}
	// Symmetric in load order.
	if EdgeWeight(g, 0, 1, 2, 10) != EdgeWeight(g, 0, 1, 10, 2) {
		t.Fatal("weight must be symmetric in loads")
	}
}

func TestContinuousStepConserves(t *testing.T) {
	g := graph.Cycle(8)
	init := workload.Continuous(workload.Uniform, 8, 100, rand.New(rand.NewSource(1)))
	st := NewContinuous(g, init)
	before := st.Load.Total()
	for i := 0; i < 50; i++ {
		st.Step()
	}
	if math.Abs(st.Load.Total()-before) > 1e-8*math.Abs(before) {
		t.Fatalf("total drifted: %v → %v", before, st.Load.Total())
	}
}

func TestContinuousPotentialMonotone(t *testing.T) {
	g := graph.Torus(4, 4)
	init := workload.Continuous(workload.Spike, 16, 1000, nil)
	st := NewContinuous(g, init)
	prev := st.Potential()
	for i := 0; i < 100; i++ {
		st.Step()
		cur := st.Potential()
		if cur > prev+1e-9*(1+prev) {
			t.Fatalf("round %d: Φ rose %v → %v", i, prev, cur)
		}
		prev = cur
	}
}

func TestContinuousMatchesPaperDiffusionMatrix(t *testing.T) {
	// One Algorithm 1 round must equal applying the paper's diffusion
	// matrix, since the rule is symmetric per edge.
	g := graph.Petersen()
	rng := rand.New(rand.NewSource(2))
	init := workload.Continuous(workload.Uniform, g.N(), 50, rng)
	st := NewContinuous(g, init)
	st.Step()

	m := spectral.PaperDiffusionMatrix(g)
	ms := NewMatrixStepper(m, init)
	ms.Step()
	if !st.Load.Vector().ApproxEqual(ms.Load.Vector(), 1e-10) {
		t.Fatal("sparse step disagrees with matrix step")
	}
}

func TestContinuousParallelMatchesSerial(t *testing.T) {
	g := graph.Torus(6, 6)
	rng := rand.New(rand.NewSource(3))
	init := workload.Continuous(workload.Uniform, g.N(), 100, rng)
	serial := NewContinuous(g, init)
	par := NewContinuous(g, init)
	par.Workers = 8
	for i := 0; i < 20; i++ {
		serial.Step()
		par.Step()
	}
	if !serial.Load.Vector().ApproxEqual(par.Load.Vector(), 0) {
		t.Fatal("parallel executor must be bitwise identical to serial")
	}
}

func TestTheorem4BoundHolds(t *testing.T) {
	// Continuous Algorithm 1 must reach εΦ⁰ within T = 4δ·ln(1/ε)/λ₂.
	const eps = 1e-3
	for _, g := range []*graph.G{
		graph.Cycle(16),
		graph.Torus(4, 4),
		graph.Hypercube(4),
		graph.Complete(12),
		graph.Path(12),
		graph.Star(12),
	} {
		lambda2 := spectral.MustLambda2(g)
		bound := int(math.Ceil(ContinuousBound(g, lambda2, eps)))
		init := workload.Continuous(workload.Spike, g.N(), 1e6, nil)
		st := NewContinuous(g, init)
		phi0 := st.Potential()
		rounds := 0
		for ; rounds <= bound && st.Potential() > eps*phi0; rounds++ {
			st.Step()
		}
		if st.Potential() > eps*phi0 {
			t.Fatalf("%s: Φ after %d (bound) rounds is %v > εΦ⁰ = %v",
				g.Name(), bound, st.Potential(), eps*phi0)
		}
	}
}

func TestDiscreteStepConservesTokens(t *testing.T) {
	g := graph.Torus(4, 4)
	rng := rand.New(rand.NewSource(4))
	init := workload.Discrete(workload.Uniform, g.N(), 100000, rng)
	st := NewDiscrete(g, init)
	before := st.Load.Total()
	for i := 0; i < 100; i++ {
		st.Step()
	}
	if st.Load.Total() != before {
		t.Fatalf("tokens not conserved: %d → %d", before, st.Load.Total())
	}
}

func TestDiscreteNoNegativeLoads(t *testing.T) {
	g := graph.Star(10)
	init := workload.Discrete(workload.Spike, g.N(), 1000, nil)
	st := NewDiscrete(g, init)
	for i := 0; i < 200; i++ {
		st.Step()
		for node, v := range st.Load.Tokens() {
			if v < 0 {
				t.Fatalf("round %d: node %d went negative: %d", i, node, v)
			}
		}
	}
}

func TestDiscreteParallelMatchesSerial(t *testing.T) {
	g := graph.Hypercube(5)
	rng := rand.New(rand.NewSource(5))
	init := workload.Discrete(workload.PowerLaw, g.N(), 500000, rng)
	serial := NewDiscrete(g, init)
	par := NewDiscrete(g, init)
	par.Workers = 4
	for i := 0; i < 30; i++ {
		serial.Step()
		par.Step()
	}
	for i, v := range serial.Load.Tokens() {
		if par.Load.Tokens()[i] != v {
			t.Fatal("parallel discrete executor must match serial exactly")
		}
	}
}

func TestTheorem6DiscreteReachesThreshold(t *testing.T) {
	// Discrete Algorithm 1 must push Φ below 64δ³n/λ₂ within the Theorem 6
	// bound (we allow the bound exactly; the theorem is an upper bound).
	for _, g := range []*graph.G{
		graph.Cycle(16),
		graph.Torus(4, 4),
		graph.Hypercube(4),
	} {
		lambda2 := spectral.MustLambda2(g)
		init := workload.Discrete(workload.Spike, g.N(), 10_000_000, nil)
		st := NewDiscrete(g, init)
		phi0 := st.Potential()
		thr := DiscreteThreshold(g, lambda2)
		bound := int(math.Ceil(DiscreteBound(g, lambda2, phi0)))
		rounds := 0
		for ; rounds <= bound && st.Potential() > thr; rounds++ {
			st.Step()
		}
		if st.Potential() > thr {
			t.Fatalf("%s: Φ=%v still above threshold %v after bound %d rounds",
				g.Name(), st.Potential(), thr, bound)
		}
	}
}

func TestDiscreteLineRampIsStable(t *testing.T) {
	// The paper's introductory example: on the path with ℓᵢ = i, no pair
	// differs by enough to move a token, so the state is a fixed point.
	n := 10
	g := graph.Path(n)
	init := make([]int64, n)
	for i := range init {
		init[i] = int64(i)
	}
	st := NewDiscrete(g, init)
	st.Step()
	for i, v := range st.Load.Tokens() {
		if v != int64(i) {
			t.Fatalf("ramp moved: node %d = %d", i, v)
		}
	}
}

func TestBoundsHelpers(t *testing.T) {
	g := graph.Cycle(8)
	l2 := spectral.MustLambda2(g)
	if b := ContinuousBound(g, l2, 0.5); b <= 0 {
		t.Fatalf("continuous bound %v", b)
	}
	if thr := DiscreteThreshold(g, l2); thr <= 0 {
		t.Fatalf("threshold %v", thr)
	}
	// Below-threshold start needs 0 rounds.
	if b := DiscreteBound(g, l2, 1); b != 0 {
		t.Fatalf("below-threshold bound %v, want 0", b)
	}
}

func TestRoundFlowsContinuousAntisymmetry(t *testing.T) {
	g := graph.Torus(3, 3)
	rng := rand.New(rand.NewSource(6))
	l := workload.Continuous(workload.Uniform, g.N(), 10, rng)
	flows := RoundFlowsContinuous(g, l)
	for _, f := range flows {
		// Flow direction must go from heavier to lighter.
		hi, lo := f.Edge.U, f.Edge.V
		amt := f.Amount
		if amt < 0 {
			hi, lo = lo, hi
			amt = -amt
		}
		if l[hi] < l[lo] {
			t.Fatalf("flow runs uphill on edge %v", f.Edge)
		}
		if amt <= 0 {
			t.Fatal("zero flows must be omitted")
		}
	}
}

func TestRoundFlowsDiscreteFloor(t *testing.T) {
	g := graph.Path(2)
	flows := RoundFlowsDiscrete(g, []int64{10, 0})
	// w = 10/(4·1) = 2.5 → 2 tokens.
	if len(flows) != 1 || flows[0].Amount != 2 {
		t.Fatalf("flows = %+v", flows)
	}
	// Sub-threshold difference moves nothing.
	if got := RoundFlowsDiscrete(g, []int64{3, 0}); len(got) != 0 {
		t.Fatalf("expected no flow, got %+v", got)
	}
}

func TestNewSteppersValidateLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewContinuous(graph.Cycle(4), []float64{1})
}

// Property: one continuous round never increases Φ, for random graphs and
// random loads (Lemma 2 as a property test).
func TestContinuousDropProperty(t *testing.T) {
	f := func(seed uint8) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		n := 4 + r.Intn(16)
		g := graph.ErdosRenyi(n, 0.5, r)
		init := workload.Continuous(workload.Uniform, n, 100, r)
		st := NewContinuous(g, init)
		phi0 := st.Potential()
		st.Step()
		return st.Potential() <= phi0+1e-9*(1+phi0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: the continuous round drop satisfies the Lemma 2 lower bound
// (1/4δ)·Σ(ℓᵢ−ℓⱼ)².
func TestLemma2LowerBoundProperty(t *testing.T) {
	f := func(seed uint8) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		n := 4 + r.Intn(12)
		g := graph.ErdosRenyi(n, 0.6, r)
		if g.MaxDegree() == 0 {
			return true
		}
		init := workload.Continuous(workload.Uniform, n, 50, r)
		st := NewContinuous(g, init)
		l := load.NewContinuous(init)
		var rhs float64
		for _, e := range g.Edges() {
			d := l.At(e.U) - l.At(e.V)
			rhs += d * d
		}
		rhs /= 4 * float64(g.MaxDegree())
		phi0 := st.Potential()
		st.Step()
		drop := phi0 - st.Potential()
		return drop >= rhs-1e-9*(1+rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: discrete rounds conserve tokens on random graphs.
func TestDiscreteConservationProperty(t *testing.T) {
	f := func(seed uint8) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		n := 3 + r.Intn(20)
		g := graph.ErdosRenyi(n, 0.4, r)
		init := workload.Discrete(workload.Uniform, n, int64(1000+r.Intn(100000)), r)
		st := NewDiscrete(g, init)
		before := st.Load.Total()
		for k := 0; k < 5; k++ {
			st.Step()
		}
		return st.Load.Total() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
