package matrix

import (
	"fmt"
	"math"
	"sort"
)

// Vector is a dense float64 vector. It is a named slice type so that the
// numeric helpers read naturally at call sites (x.Dot(y), x.Norm2(), …).
type Vector []float64

// NewVector allocates a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns a copy of x.
func (x Vector) Clone() Vector {
	out := make(Vector, len(x))
	copy(out, x)
	return out
}

// Dot returns ⟨x, y⟩. Panics if lengths differ.
func (x Vector) Dot(y Vector) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("matrix: dot length mismatch %d vs %d", len(x), len(y)))
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm ‖x‖₂.
func (x Vector) Norm2() float64 {
	// Two-pass scaling keeps the computation stable for very large loads.
	var maxAbs float64
	for _, v := range x {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		r := v / maxAbs
		s += r * r
	}
	return maxAbs * math.Sqrt(s)
}

// Norm1 returns Σ|xᵢ|.
func (x Vector) Norm1() float64 {
	var s float64
	for _, v := range x {
		s += math.Abs(v)
	}
	return s
}

// NormInf returns max|xᵢ|.
func (x Vector) NormInf() float64 {
	var s float64
	for _, v := range x {
		if a := math.Abs(v); a > s {
			s = a
		}
	}
	return s
}

// Sum returns Σxᵢ.
func (x Vector) Sum() float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// Mean returns the average entry; 0 for the empty vector.
func (x Vector) Mean() float64 {
	if len(x) == 0 {
		return 0
	}
	return x.Sum() / float64(len(x))
}

// Min returns the smallest entry; +Inf for the empty vector.
func (x Vector) Min() float64 {
	m := math.Inf(1)
	for _, v := range x {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest entry; −Inf for the empty vector.
func (x Vector) Max() float64 {
	m := math.Inf(-1)
	for _, v := range x {
		if v > m {
			m = v
		}
	}
	return m
}

// Scale multiplies every entry by s in place and returns x.
func (x Vector) Scale(s float64) Vector {
	for i := range x {
		x[i] *= s
	}
	return x
}

// AddScaled performs x ← x + s·y in place and returns x.
func (x Vector) AddScaled(s float64, y Vector) Vector {
	if len(x) != len(y) {
		panic("matrix: AddScaled length mismatch")
	}
	for i := range x {
		x[i] += s * y[i]
	}
	return x
}

// Sub returns x − y as a new vector.
func (x Vector) Sub(y Vector) Vector {
	if len(x) != len(y) {
		panic("matrix: Sub length mismatch")
	}
	out := make(Vector, len(x))
	for i := range x {
		out[i] = x[i] - y[i]
	}
	return out
}

// Normalize scales x to unit Euclidean norm in place and returns the
// original norm. A zero vector is left untouched and 0 is returned.
func (x Vector) Normalize() float64 {
	n := x.Norm2()
	if n == 0 {
		return 0
	}
	x.Scale(1 / n)
	return n
}

// ProjectOut removes the component of x along the (not necessarily unit)
// direction u, in place: x ← x − (⟨x,u⟩/⟨u,u⟩)·u.
func (x Vector) ProjectOut(u Vector) {
	uu := u.Dot(u)
	if uu == 0 {
		return
	}
	x.AddScaled(-x.Dot(u)/uu, u)
}

// Sorted returns an ascending copy of x.
func (x Vector) Sorted() Vector {
	out := x.Clone()
	sort.Float64s(out)
	return out
}

// Fill sets every entry to v and returns x.
func (x Vector) Fill(v float64) Vector {
	for i := range x {
		x[i] = v
	}
	return x
}

// ApproxEqual reports whether x and y agree entrywise within tol.
func (x Vector) ApproxEqual(y Vector, tol float64) bool {
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if math.Abs(x[i]-y[i]) > tol {
			return false
		}
	}
	return true
}
