// Package dynamic implements the dynamic-network model of §5 (after
// Elsässer, Monien and Schamberger [10]): the node set is fixed but the
// edge set may change every round, described by a sequence of graphs
// (G_k)_{k≥0}; every node knows its active edges in the current round.
//
// The package provides graph-sequence generators (random subgraphs of a
// base topology, periodic edge failures, alternating topologies, random
// matchings viewed as degenerate graphs) and steppers that run Algorithm 1
// — continuous and discrete — against a sequence, tracking the per-round
// λ₂⁽ᵏ⁾/δ⁽ᵏ⁾ statistics that Theorems 7 and 8 are stated in.
package dynamic

import (
	"fmt"
	"math/rand"

	"repro/internal/diffusion"
	"repro/internal/graph"
	"repro/internal/load"
	"repro/internal/speccache"
)

// Sequence yields the active graph of each round. Implementations must be
// deterministic given their RNG so runs are reproducible.
type Sequence interface {
	// Next returns the graph active in round k (0-based). The node count
	// must be the same for every k.
	Next(k int) *graph.G
	// N returns the (fixed) node count.
	N() int
}

// Static adapts a fixed graph to the Sequence interface.
type Static struct{ G *graph.G }

// Next returns the underlying fixed graph for every round.
func (s Static) Next(int) *graph.G { return s.G }

// N returns the node count.
func (s Static) N() int { return s.G.N() }

// RandomSubgraphs yields, each round, a random subgraph of Base in which
// every edge survives independently with probability KeepProb. When
// RequireConnected is set, rounds draw until the subgraph is connected
// (suitable only for generous KeepProb; the draw is capped and falls back
// to the base graph).
type RandomSubgraphs struct {
	Base             *graph.G
	KeepProb         float64
	RequireConnected bool
	RNG              *rand.Rand
}

// Next draws round k's subgraph.
func (r *RandomSubgraphs) Next(k int) *graph.G {
	const maxDraws = 50
	for attempt := 0; attempt < maxDraws; attempt++ {
		name := fmt.Sprintf("%s@r%d", r.Base.Name(), k)
		sub := r.Base.Subgraph(name, func(graph.Edge) bool { return r.RNG.Float64() < r.KeepProb })
		if !r.RequireConnected || sub.IsConnected() {
			return sub
		}
	}
	return r.Base
}

// N returns the node count.
func (r *RandomSubgraphs) N() int { return r.Base.N() }

// Alternating cycles deterministically through a fixed list of graphs on
// the same node set — e.g. torus rounds interleaved with sparse cycle
// rounds, the "topology flapping" scenario.
type Alternating struct{ Graphs []*graph.G }

// NewAlternating validates that all graphs share a node count.
func NewAlternating(gs ...*graph.G) (*Alternating, error) {
	if len(gs) == 0 {
		return nil, fmt.Errorf("dynamic: Alternating needs at least one graph")
	}
	n := gs[0].N()
	for _, g := range gs[1:] {
		if g.N() != n {
			return nil, fmt.Errorf("dynamic: node count mismatch %d vs %d", g.N(), n)
		}
	}
	return &Alternating{Graphs: gs}, nil
}

// Next returns the round-k graph.
func (a *Alternating) Next(k int) *graph.G { return a.Graphs[k%len(a.Graphs)] }

// N returns the node count.
func (a *Alternating) N() int { return a.Graphs[0].N() }

// EdgeFailures keeps the base topology but disables a fresh uniformly
// random set of FailCount edges every round — the "flaky links" scenario.
type EdgeFailures struct {
	Base      *graph.G
	FailCount int
	RNG       *rand.Rand
}

// Next draws round k's graph with FailCount edges removed.
func (f *EdgeFailures) Next(k int) *graph.G {
	edges := f.Base.Edges()
	m := len(edges)
	fail := make(map[int]bool, f.FailCount)
	for len(fail) < f.FailCount && len(fail) < m {
		fail[f.RNG.Intn(m)] = true
	}
	idx := 0
	name := fmt.Sprintf("%s-fail%d@r%d", f.Base.Name(), f.FailCount, k)
	return f.Base.Subgraph(name, func(graph.Edge) bool {
		keep := !fail[idx]
		idx++
		return keep
	})
}

// N returns the node count.
func (f *EdgeFailures) N() int { return f.Base.N() }

// RoundStat records the spectral state of one round of a dynamic run.
type RoundStat struct {
	Round   int
	Lambda2 float64
	Delta   int
	Phi     float64 // potential after the round
}

// Result is the outcome of a dynamic run.
type Result struct {
	Stats []RoundStat
	// AK is the Theorem 7 average A_K = (1/K)·Σ λ₂⁽ᵏ⁾/δ⁽ᵏ⁾ over the rounds
	// actually executed (disconnected rounds contribute 0).
	AK float64
	// PhiStart and PhiEnd bracket the run.
	PhiStart, PhiEnd float64
}

// Rounds returns the number of executed rounds.
func (r Result) Rounds() int { return len(r.Stats) }

// RunContinuous runs the continuous Algorithm 1 against seq until the
// potential falls to target or maxRounds elapse. Spectral stats are
// computed per round (λ₂ of each round's graph), which is the dominant cost
// for large graphs — callers that only need the trajectory can pass
// withSpectra=false to skip it. λ₂ goes through a per-run speccache, so
// sequences that revisit graphs (alternating topologies, periodic failure
// patterns) pay for each distinct round graph once — while sequences that
// build a fresh graph every round only grow a cache that dies with the
// run, not the process-wide one.
func RunContinuous(seq Sequence, initial []float64, target float64, maxRounds int, withSpectra bool) Result {
	cache := speccache.New()
	cur := load.NewContinuous(initial)
	res := Result{PhiStart: cur.Potential()}
	phi := res.PhiStart
	var sumRatio float64
	for k := 0; k < maxRounds && phi > target; k++ {
		g := seq.Next(k)
		st := diffusion.NewContinuous(g, cur.Vector())
		st.Step()
		copy(cur.Vector(), st.Load.Vector())
		phi = cur.Potential()
		stat := RoundStat{Round: k, Delta: g.MaxDegree(), Phi: phi}
		if withSpectra {
			if l2, err := cache.Lambda2(g); err == nil {
				stat.Lambda2 = l2
				if stat.Delta > 0 {
					sumRatio += l2 / float64(stat.Delta)
				}
			}
		}
		res.Stats = append(res.Stats, stat)
	}
	if n := len(res.Stats); n > 0 && withSpectra {
		res.AK = sumRatio / float64(n)
	}
	res.PhiEnd = phi
	return res
}

// RunDiscrete is RunContinuous for the discrete Algorithm 1. The run stops
// when Φ ≤ target (callers pass the Theorem 8 threshold Φ*) or maxRounds.
func RunDiscrete(seq Sequence, initial []int64, target float64, maxRounds int, withSpectra bool) Result {
	cache := speccache.New()
	cur := load.NewDiscrete(initial)
	res := Result{PhiStart: cur.Potential()}
	phi := res.PhiStart
	var sumRatio float64
	for k := 0; k < maxRounds && phi > target; k++ {
		g := seq.Next(k)
		st := diffusion.NewDiscrete(g, cur.Tokens())
		st.Step()
		copy(cur.Tokens(), st.Load.Tokens())
		phi = cur.Potential()
		stat := RoundStat{Round: k, Delta: g.MaxDegree(), Phi: phi}
		if withSpectra {
			if l2, err := cache.Lambda2(g); err == nil {
				stat.Lambda2 = l2
				if stat.Delta > 0 {
					sumRatio += l2 / float64(stat.Delta)
				}
			}
		}
		res.Stats = append(res.Stats, stat)
	}
	if n := len(res.Stats); n > 0 && withSpectra {
		res.AK = sumRatio / float64(n)
	}
	res.PhiEnd = phi
	return res
}

// Theorem8Threshold computes Φ* = 64·n·max_k(δ⁽ᵏ⁾)³/λ₂⁽ᵏ⁾ over the rounds
// recorded in stats. Rounds with λ₂ = 0 (disconnected) are skipped, as the
// paper's bound is vacuous for them.
func Theorem8Threshold(n int, stats []RoundStat) float64 {
	var worst float64
	for _, s := range stats {
		if s.Lambda2 <= 0 {
			continue
		}
		d := float64(s.Delta)
		if v := d * d * d / s.Lambda2; v > worst {
			worst = v
		}
	}
	return 64 * float64(n) * worst
}
