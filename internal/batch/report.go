package batch

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/trace"
)

// Cell is one unit's recorded outcome.
type Cell struct {
	Unit
	Outcome
	// BoundRatio is Rounds/Bound (0 when no theorem bound applies).
	BoundRatio float64 `json:"bound_ratio,omitempty"`
	// RMSDiscrepancy is the final per-node root-mean-square deviation from
	// the balanced average, √(Φᵉⁿᵈ/n).
	RMSDiscrepancy float64 `json:"rms_discrepancy"`
	// Wall is the unit's execution time. It is excluded from the CSV/JSON
	// emitters so aggregated output is byte-identical across worker counts.
	Wall time.Duration `json:"-"`
	// Err is non-empty when the unit failed, panicked or was cancelled.
	Err string `json:"error,omitempty"`
}

// finish derives the per-cell statistics that depend only on the outcome.
func (c *Cell) finish(n int) {
	c.BoundRatio = boundRatio(c.Rounds, c.Bound)
	if n > 0 && c.PhiEnd >= 0 {
		c.RMSDiscrepancy = math.Sqrt(c.PhiEnd / float64(n))
	}
}

// Aggregate summarizes one grid cell (topology × algorithm × mode ×
// workload × scenario) across its seeds.
type Aggregate struct {
	Topology  string `json:"topology"`
	Algorithm string `json:"algorithm"`
	Mode      string `json:"mode"`
	Workload  string `json:"workload"`
	// Scenario is the cell's scenario in the legacy encoding ("" = static,
	// omitted from JSON — scenario-free reports keep their old shape).
	Scenario string `json:"scenario,omitempty"`
	// Runs and Converged count the cell's units and how many reached their
	// target; Failed counts errored/cancelled units (excluded from means).
	Runs      int `json:"runs"`
	Converged int `json:"converged"`
	Failed    int `json:"failed,omitempty"`
	// MeanRounds and SDRounds summarize the round counts across seeds.
	MeanRounds float64 `json:"mean_rounds"`
	SDRounds   float64 `json:"sd_rounds"`
	// MeanBoundRatio is the mean rounds/bound over units with a bound
	// (0 when none of the cell's units has one).
	MeanBoundRatio float64 `json:"mean_bound_ratio,omitempty"`
	// MeanRMS is the mean final RMS discrepancy.
	MeanRMS float64 `json:"mean_rms_discrepancy"`

	// bounded counts the units contributing to MeanBoundRatio (a unit only
	// has a bound when a theorem applies to its Φ⁰, which varies per seed).
	bounded int
}

// Report is the engine's single output: every cell plus the per-grid-cell
// aggregation, in deterministic expansion order.
type Report struct {
	Spec       Spec        `json:"spec"`
	Cells      []Cell      `json:"cells"`
	Aggregates []Aggregate `json:"aggregates"`
	// Elapsed is the sweep's wall time (excluded from the deterministic
	// emitters, reported by the CLI separately).
	Elapsed time.Duration `json:"-"`
}

// Failed counts units that errored, panicked or were cancelled.
func (r *Report) Failed() int {
	n := 0
	for _, c := range r.Cells {
		if c.Err != "" {
			n++
		}
	}
	return n
}

// fold accumulates one cell into the aggregate's running sums. Until
// finalize runs, the Mean*/SD* fields hold plain sums (of rounds, squared
// rounds, bound ratios, RMS values) — the same incremental representation
// AggSink maintains cell by cell, so the streaming path and the
// materialized Report share one arithmetic sequence and produce bit-equal
// statistics.
func (a *Aggregate) fold(c Cell) {
	a.Runs++
	if c.Err != "" {
		a.Failed++
		return
	}
	if c.Converged {
		a.Converged++
	}
	// Streaming mean/variance would be scheduling-sensitive only if the
	// cell order were; it is not — cells arrive in expansion order.
	a.MeanRounds += float64(c.Rounds)
	a.SDRounds += float64(c.Rounds) * float64(c.Rounds)
	if c.Bound > 0 {
		a.MeanBoundRatio += c.BoundRatio
		a.bounded++
	}
	a.MeanRMS += c.RMSDiscrepancy
}

// finalize converts the running sums into the published statistics.
func (a *Aggregate) finalize() {
	ok := a.Runs - a.Failed
	if ok == 0 {
		a.MeanRounds, a.SDRounds, a.MeanBoundRatio, a.MeanRMS = 0, 0, 0, 0
		return
	}
	n := float64(ok)
	sum, sumSq := a.MeanRounds, a.SDRounds
	a.MeanRounds = sum / n
	variance := sumSq/n - a.MeanRounds*a.MeanRounds
	if variance < 0 {
		variance = 0
	}
	a.SDRounds = math.Sqrt(variance)
	if a.bounded > 0 {
		a.MeanBoundRatio /= float64(a.bounded)
	}
	a.MeanRMS /= n
}

// aggregate groups cells by CellKey in first-seen (expansion) order.
func (r *Report) aggregate() {
	index := map[string]int{}
	for _, c := range r.Cells {
		key := c.CellKey()
		i, ok := index[key]
		if !ok {
			i = len(r.Aggregates)
			index[key] = i
			r.Aggregates = append(r.Aggregates, Aggregate{
				Topology:  c.Topology,
				Algorithm: c.Algorithm,
				Mode:      c.Mode,
				Workload:  c.WorkloadName,
				Scenario:  c.Scenario,
			})
		}
		r.Aggregates[i].fold(c)
	}
	for i := range r.Aggregates {
		r.Aggregates[i].finalize()
	}
}

// scenarioDisplay renders a stored scenario string for humans: the legacy
// empty encoding spelled out as "static".
func scenarioDisplay(s string) string {
	if s == "" {
		return "static"
	}
	return s
}

// Table renders every cell as a trace.Table, including wall times (the
// human-facing view; use RenderCSV/RenderJSON for deterministic output).
func (r *Report) Table() *trace.Table {
	t := trace.NewTable(fmt.Sprintf("batch grid — %d units", len(r.Cells)),
		"topology", "algorithm", "mode", "workload", "scenario", "seed",
		"rounds", "converged", "bound", "rounds/bound", "rms disc.", "wall", "error")
	for _, c := range r.Cells {
		bound, ratio := "-", "-"
		if c.Bound > 0 {
			bound = fmt.Sprintf("%.4g", c.Bound)
			ratio = fmt.Sprintf("%.4g", c.BoundRatio)
		}
		t.AddRow(c.Topology, c.Algorithm, c.Mode, c.WorkloadName,
			scenarioDisplay(c.Scenario),
			fmt.Sprintf("%d", c.Seed), fmt.Sprintf("%d", c.Rounds),
			fmt.Sprintf("%v", c.Converged), bound, ratio,
			fmt.Sprintf("%.4g", c.RMSDiscrepancy),
			c.Wall.Round(time.Microsecond).String(), c.Err)
	}
	return t
}

// AggregateTable renders the per-grid-cell summary across seeds.
func (r *Report) AggregateTable() *trace.Table {
	t := trace.NewTable("batch grid — aggregates across seeds",
		"topology", "algorithm", "mode", "workload", "scenario",
		"runs", "converged", "failed", "rounds (mean±sd)", "mean rounds/bound", "mean rms disc.")
	for _, a := range r.Aggregates {
		ratio := "-"
		if a.MeanBoundRatio > 0 {
			ratio = fmt.Sprintf("%.4g", a.MeanBoundRatio)
		}
		t.AddRow(a.Topology, a.Algorithm, a.Mode, a.Workload,
			scenarioDisplay(a.Scenario),
			fmt.Sprintf("%d", a.Runs), fmt.Sprintf("%d", a.Converged),
			fmt.Sprintf("%d", a.Failed),
			fmt.Sprintf("%.4g±%.3g", a.MeanRounds, a.SDRounds), ratio,
			fmt.Sprintf("%.4g", a.MeanRMS))
	}
	return t
}

// RenderCSV writes the per-cell grid followed by a blank line and the
// aggregate block. The output is byte-identical for any worker count.
func (r *Report) RenderCSV(w io.Writer) error {
	cells := trace.NewTable("", "topology", "algorithm", "mode", "workload", "scenario", "seed",
		"rounds", "converged", "phi_start", "phi_end", "bound", "bound_name", "bound_ratio", "rms_discrepancy",
		"peak_phi", "steady_rms", "rebalance_rounds", "error")
	for _, c := range r.Cells {
		cells.AddRow(c.Topology, c.Algorithm, c.Mode, c.WorkloadName,
			scenarioDisplay(c.Scenario),
			fmt.Sprintf("%d", c.Seed), fmt.Sprintf("%d", c.Rounds),
			fmt.Sprintf("%v", c.Converged),
			fmt.Sprintf("%.8g", c.PhiStart), fmt.Sprintf("%.8g", c.PhiEnd),
			fmt.Sprintf("%.8g", c.Bound), c.BoundName,
			fmt.Sprintf("%.8g", c.BoundRatio), fmt.Sprintf("%.8g", c.RMSDiscrepancy),
			fmt.Sprintf("%.8g", c.PeakPhi), fmt.Sprintf("%.8g", c.SteadyRMS),
			fmt.Sprintf("%d", c.RebalanceRounds), c.Err)
	}
	if err := cells.RenderCSV(w); err != nil {
		return err
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}
	aggs := trace.NewTable("", "topology", "algorithm", "mode", "workload", "scenario",
		"runs", "converged", "failed", "mean_rounds", "sd_rounds", "mean_bound_ratio", "mean_rms_discrepancy")
	for _, a := range r.Aggregates {
		aggs.AddRow(a.Topology, a.Algorithm, a.Mode, a.Workload,
			scenarioDisplay(a.Scenario),
			fmt.Sprintf("%d", a.Runs), fmt.Sprintf("%d", a.Converged), fmt.Sprintf("%d", a.Failed),
			fmt.Sprintf("%.8g", a.MeanRounds), fmt.Sprintf("%.8g", a.SDRounds),
			fmt.Sprintf("%.8g", a.MeanBoundRatio), fmt.Sprintf("%.8g", a.MeanRMS))
	}
	return aggs.RenderCSV(w)
}

// RenderJSON writes the report as indented JSON. Wall times and worker
// counts are excluded, so the bytes are identical for any worker count.
func (r *Report) RenderJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Render writes the report in the named format: "table" (the human view —
// per-cell table plus the aggregate table), "csv" or "json" (both
// deterministic). This is the one format dispatch every consumer (the CLI's
// grid path, the orchestrator's merge) shares, which is what keeps
// "orchestrated output is byte-identical to single-process output" a
// property of one code path instead of several kept in lockstep.
func (r *Report) Render(format string, w io.Writer) error {
	switch format {
	case "table":
		if err := r.Table().Render(w); err != nil {
			return err
		}
		return r.AggregateTable().Render(w)
	case "csv":
		return r.RenderCSV(w)
	case "json":
		return r.RenderJSON(w)
	}
	return fmt.Errorf("batch: unknown format %q (want table, csv or json)", format)
}
