package dimexchange

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/workload"
)

func TestRandomMatchingIsMatching(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, g := range []*graph.G{graph.Cycle(10), graph.Torus(4, 4), graph.Complete(9), graph.Star(7)} {
		for trial := 0; trial < 50; trial++ {
			m := RandomMatching(g, rng)
			if !IsMatching(g, m) {
				t.Fatalf("%s: invalid matching %v", g.Name(), m)
			}
		}
	}
}

func TestRandomMatchingCoversEdgesEventually(t *testing.T) {
	// Over many rounds, every edge of a small cycle should appear.
	rng := rand.New(rand.NewSource(2))
	g := graph.Cycle(6)
	seen := map[graph.Edge]bool{}
	for trial := 0; trial < 2000; trial++ {
		for _, e := range RandomMatching(g, rng) {
			seen[e.Canonical()] = true
		}
	}
	if len(seen) != g.M() {
		t.Fatalf("only %d/%d edges ever matched", len(seen), g.M())
	}
}

func TestMatchingInclusionProbabilityLowerBound(t *testing.T) {
	// [12]-style guarantee: each edge is in the matching with probability
	// ≥ c/δ for a constant c. On the cycle (δ=2) mutual proposals happen
	// with probability 1/4, minus blocking; empirically ≳ 0.2.
	rng := rand.New(rand.NewSource(3))
	g := graph.Cycle(20)
	const trials = 5000
	target := g.Edges()[0]
	hits := 0
	for k := 0; k < trials; k++ {
		for _, e := range RandomMatching(g, rng) {
			if e.Canonical() == target {
				hits++
				break
			}
		}
	}
	p := float64(hits) / trials
	if p < 1.0/(8*float64(g.MaxDegree())) {
		t.Fatalf("edge inclusion probability %v below 1/8δ", p)
	}
}

func TestContinuousConservesAndConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := graph.Hypercube(4)
	init := workload.Continuous(workload.Spike, g.N(), 1000, nil)
	st := NewContinuous(g, init, rng)
	before := st.Load.Total()
	phi0 := st.Potential()
	for i := 0; i < 400; i++ {
		st.Step()
	}
	if math.Abs(st.Load.Total()-before) > 1e-8*(1+before) {
		t.Fatal("continuous dimension exchange must conserve")
	}
	if st.Potential() > phi0/1000 {
		t.Fatalf("barely converged: Φ %v → %v", phi0, st.Potential())
	}
}

func TestContinuousStepNeverIncreasesPotential(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.Torus(4, 4)
	init := workload.Continuous(workload.Uniform, g.N(), 100, rng)
	st := NewContinuous(g, init, rng)
	prev := st.Potential()
	for i := 0; i < 200; i++ {
		st.Step()
		cur := st.Potential()
		if cur > prev+1e-9*(1+prev) {
			t.Fatalf("Φ rose at round %d", i)
		}
		prev = cur
	}
}

func TestDiscreteConserves(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := graph.Cycle(12)
	init := workload.Discrete(workload.PowerLaw, g.N(), 100000, rng)
	st := NewDiscrete(g, init, rng)
	before := st.Load.Total()
	for i := 0; i < 300; i++ {
		st.Step()
	}
	if st.Load.Total() != before {
		t.Fatal("discrete dimension exchange must conserve tokens")
	}
}

func TestDiscreteReachesSmallDiscrepancy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := graph.Complete(16)
	init := workload.Discrete(workload.Spike, g.N(), 160000, nil)
	st := NewDiscrete(g, init, rng)
	// Mutual-proposal matchings on K_n are sparse (≈1/δ² per edge and
	// round), so give the run a generous horizon; the fixed point has all
	// pairwise differences ≤ 1, i.e. global discrepancy ≤ 1.
	for i := 0; i < 5000 && st.Load.Discrepancy() > 1; i++ {
		st.Step()
	}
	if k := st.Load.Discrepancy(); k > 1 {
		t.Fatalf("discrepancy %d after 5000 rounds on K16", k)
	}
}

func TestDiscreteNoNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := graph.Star(9)
	init := workload.Discrete(workload.Spike, g.N(), 999, nil)
	st := NewDiscrete(g, init, rng)
	for i := 0; i < 200; i++ {
		st.Step()
		for node, v := range st.Load.Tokens() {
			if v < 0 {
				t.Fatalf("node %d negative: %d", node, v)
			}
		}
	}
}

func TestIsMatchingRejects(t *testing.T) {
	g := graph.Cycle(6)
	if IsMatching(g, []graph.Edge{{U: 0, V: 3}}) {
		t.Fatal("non-edge accepted")
	}
	if IsMatching(g, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}}) {
		t.Fatal("overlapping endpoints accepted")
	}
	if !IsMatching(g, nil) {
		t.Fatal("empty matching must be valid")
	}
}

func TestSteppersValidateLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewContinuous(graph.Cycle(4), []float64{1}, rand.New(rand.NewSource(1)))
}

// Property: matched pairs end exactly balanced (continuous case).
func TestMatchedPairsBalanceProperty(t *testing.T) {
	f := func(seed uint8) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		n := 4 + 2*r.Intn(8)
		g := graph.Complete(n)
		init := workload.Continuous(workload.Uniform, n, 100, r)
		st := NewContinuous(g, init, r)
		st.Step()
		for _, e := range st.LastMatching {
			if math.Abs(st.Load.At(e.U)-st.Load.At(e.V)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
