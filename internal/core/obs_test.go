package core

import (
	"bytes"
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/batch"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/workload"
)

// TestGridTracedByteIdentical: tracing is strictly out-of-band — a sharded
// sweep run with a live tracer must produce journals and a report
// byte-identical to the untraced run, while the trace itself carries one
// sweep span and one span per unit.
func TestGridTracedByteIdentical(t *testing.T) {
	spec := batch.Spec{
		Topologies: []string{"cycle", "star"},
		Algorithms: []string{"diffusion", "dimexchange"},
		Modes:      []string{"continuous"},
		Workloads:  []string{"spike"},
		Seeds:      []int64{1, 2},
		N:          16,
	}
	dir := t.TempDir()

	run := func(name string, tr *obs.Tracer) (journal, report []byte) {
		path := filepath.Join(dir, name+".jsonl")
		sink, err := batch.CreateJSONL(path)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := GridRun(context.Background(), spec, GridSink(sink), GridTrace(tr))
		if err != nil {
			t.Fatal(err)
		}
		if err := sink.Close(); err != nil {
			t.Fatal(err)
		}
		journal, err = os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		if err := rep.RenderCSV(&out); err != nil {
			t.Fatal(err)
		}
		if err := rep.RenderJSON(&out); err != nil {
			t.Fatal(err)
		}
		return journal, out.Bytes()
	}

	plainJournal, plainReport := run("plain", nil)

	var traceBuf bytes.Buffer
	tr := obs.NewTracer(&traceBuf)
	tracedJournal, tracedReport := run("traced", tr)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(plainJournal, tracedJournal) {
		t.Error("journal bytes differ between traced and untraced runs")
	}
	if !bytes.Equal(plainReport, tracedReport) {
		t.Error("report bytes differ between traced and untraced runs")
	}

	events, err := obs.ReadEvents(&traceBuf)
	if err != nil {
		t.Fatal(err)
	}
	var sweeps, units int
	for _, e := range events {
		switch e.Cat {
		case "sweep":
			sweeps++
		case "unit":
			units++
		}
	}
	wantUnits := len(spec.Topologies) * len(spec.Algorithms) * len(spec.Seeds)
	if sweeps != 1 {
		t.Errorf("trace has %d sweep spans, want 1", sweeps)
	}
	if units != wantUnits {
		t.Errorf("trace has %d unit spans, want %d", units, wantUnits)
	}
}

// TestGridResumeSkipsUnitSpans: replayed units never re-run, so they must
// not fabricate unit spans — the trace shows the work of this process only.
func TestGridResumeSkipsUnitSpans(t *testing.T) {
	spec := batch.Spec{
		Topologies: []string{"cycle"},
		Algorithms: []string{"diffusion"},
		Modes:      []string{"continuous"},
		Workloads:  []string{"spike"},
		Seeds:      []int64{1, 2},
		N:          16,
	}
	path := filepath.Join(t.TempDir(), "full.jsonl")
	sink, err := batch.CreateJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := GridRun(context.Background(), spec, GridSink(sink)); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	journal, err := batch.ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}

	var traceBuf bytes.Buffer
	tr := obs.NewTracer(&traceBuf)
	if _, err := GridRun(context.Background(), spec, GridResume(journal), GridTrace(tr)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadEvents(&traceBuf)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if e.Cat == "unit" {
			t.Fatalf("fully-resumed sweep emitted unit span %q", e.Name)
		}
	}
}

// TestSessionHotLoopZeroAllocs is the gate behind "telemetry off is free":
// with no Phases attached, the serial Step+Commit round loop must not
// allocate. A regression here means instrumentation leaked into the hot
// path (e.g. a time.Time escaping, or an unconditional map for span args).
func TestSessionHotLoopZeroAllocs(t *testing.T) {
	g := graph.Torus(4, 4)
	cfg := Config{
		Graph:     g,
		Algorithm: Diffusion,
		Mode:      Continuous,
		Loads:     workload.Continuous(workload.Spike, g.N(), 1e6, rand.New(rand.NewSource(1))),
		Epsilon:   1e-9, // never converges within the measured rounds
		Workers:   1,
	}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// 100 runs keeps the Φ trace inside its initial capacity, so the only
	// allocations measured are the round loop's own.
	avg := testing.AllocsPerRun(100, func() {
		if err := s.Step(); err != nil {
			panic(err)
		}
		if _, err := s.Commit(); err != nil {
			panic(err)
		}
	})
	if avg != 0 {
		t.Fatalf("untraced Step+Commit allocates %v times per round, want 0", avg)
	}
}

// TestSessionPhasesAccounting: with Phases attached the same loop fills
// per-phase wall time that sums over the phases actually exercised.
func TestSessionPhasesAccounting(t *testing.T) {
	g := graph.Torus(4, 4)
	var ph obs.Phases
	cfg := Config{
		Graph:     g,
		Algorithm: Diffusion,
		Mode:      Continuous,
		Loads:     workload.Continuous(workload.Spike, g.N(), 1e6, rand.New(rand.NewSource(1))),
		Epsilon:   1e-9,
		Workers:   1,
		Phases:    &ph,
	}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const rounds = 8
	for i := 0; i < rounds; i++ {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if got := ph.Count(obs.PhaseStep); got != rounds {
		t.Fatalf("step phase count %d, want %d", got, rounds)
	}
	if got := ph.Count(obs.PhaseCommit); got != rounds {
		t.Fatalf("commit phase count %d, want %d", got, rounds)
	}
	if ph.Count(obs.PhaseSpectra) == 0 {
		t.Fatal("Open did not record the spectra solve phase")
	}
	if ph.Total() <= 0 {
		t.Fatal("phase accounting recorded no wall time")
	}
}
