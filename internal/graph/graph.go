// Package graph provides the immutable undirected graphs on which the load
// balancing algorithms run, together with the standard topology families the
// diffusion literature evaluates on (path, cycle, torus, hypercube,
// de Bruijn, expanders, …), their Laplacian/adjacency matrices, and
// structural measures (degree, expansion, connectivity).
//
// Graphs are simple (no self loops, no multi-edges) and immutable once
// built; every algorithm in this repository treats the topology as
// read-only, which is what makes the goroutine-parallel round executor in
// internal/sim safe without locks.
package graph

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"repro/internal/matrix"
)

// Edge is an undirected edge between two node indices with U < V.
type Edge struct {
	U, V int
}

// Canonical returns the edge with endpoints ordered so that U < V.
func (e Edge) Canonical() Edge {
	if e.U > e.V {
		return Edge{U: e.V, V: e.U}
	}
	return e
}

// Other returns the endpoint of e that is not x. Panics if x is not an
// endpoint.
func (e Edge) Other(x int) int {
	switch x {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("graph: node %d not on edge %v", x, e))
}

// G is an immutable simple undirected graph with nodes 0..n−1.
type G struct {
	name  string
	n     int
	adj   [][]int // sorted neighbour lists
	edges []Edge  // canonical, sorted lexicographically
	deg   []int

	fpOnce sync.Once
	fp     uint64
}

// Builder accumulates edges and produces an immutable G. Duplicate edges and
// self loops are rejected at Finish time.
type Builder struct {
	name  string
	n     int
	edges map[Edge]struct{}
	err   error
}

// NewBuilder starts a builder for a graph with n nodes.
func NewBuilder(name string, n int) *Builder {
	b := &Builder{name: name, n: n, edges: make(map[Edge]struct{})}
	if n < 0 {
		b.err = errors.New("graph: negative node count")
	}
	return b
}

// AddEdge records the undirected edge {u, v}. Errors (out-of-range
// endpoints, self loops) are sticky and reported by Finish.
func (b *Builder) AddEdge(u, v int) {
	if b.err != nil {
		return
	}
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		b.err = fmt.Errorf("graph: edge (%d,%d) out of range n=%d", u, v, b.n)
		return
	}
	if u == v {
		b.err = fmt.Errorf("graph: self loop at node %d", u)
		return
	}
	b.edges[Edge{U: u, V: v}.Canonical()] = struct{}{}
}

// Finish validates and freezes the graph.
func (b *Builder) Finish() (*G, error) {
	if b.err != nil {
		return nil, b.err
	}
	g := &G{name: b.name, n: b.n, adj: make([][]int, b.n), deg: make([]int, b.n)}
	g.edges = make([]Edge, 0, len(b.edges))
	for e := range b.edges {
		g.edges = append(g.edges, e)
	}
	sort.Slice(g.edges, func(i, j int) bool {
		if g.edges[i].U != g.edges[j].U {
			return g.edges[i].U < g.edges[j].U
		}
		return g.edges[i].V < g.edges[j].V
	})
	for _, e := range g.edges {
		g.adj[e.U] = append(g.adj[e.U], e.V)
		g.adj[e.V] = append(g.adj[e.V], e.U)
	}
	for i := range g.adj {
		sort.Ints(g.adj[i])
		g.deg[i] = len(g.adj[i])
	}
	return g, nil
}

// MustFinish is Finish that panics on error; used by the topology
// constructors whose edge sets are correct by construction.
func (b *Builder) MustFinish() *G {
	g, err := b.Finish()
	if err != nil {
		panic(err)
	}
	return g
}

// Name returns the human-readable topology name, e.g. "torus(8x8)".
func (g *G) Name() string { return g.name }

// N returns the number of nodes.
func (g *G) N() int { return g.n }

// M returns the number of edges.
func (g *G) M() int { return len(g.edges) }

// Edges returns the canonical edge list. Callers must not mutate it.
func (g *G) Edges() []Edge { return g.edges }

// Neighbors returns the sorted neighbour list of node i. Callers must not
// mutate it.
func (g *G) Neighbors(i int) []int { return g.adj[i] }

// Degree returns the degree of node i.
func (g *G) Degree(i int) int { return g.deg[i] }

// MaxDegree returns δ = maxᵢ deg(i); 0 for the empty graph.
func (g *G) MaxDegree() int {
	max := 0
	for _, d := range g.deg {
		if d > max {
			max = d
		}
	}
	return max
}

// MinDegree returns minᵢ deg(i); 0 for the empty graph.
func (g *G) MinDegree() int {
	if g.n == 0 {
		return 0
	}
	min := g.deg[0]
	for _, d := range g.deg[1:] {
		if d < min {
			min = d
		}
	}
	return min
}

// Fingerprint returns a stable 64-bit structural hash of the graph: its
// name, node count and full edge set. Two graphs with the same fingerprint
// are interchangeable for caching purposes — internal/speccache keys its
// memoized spectral quantities (λ₂, γ, optimal flows) on it, so randomized
// families with colliding names but different edge sets never share an
// entry. Computed lazily, exactly once, and safe for concurrent use (G is
// immutable after Finish).
func (g *G) Fingerprint() uint64 {
	g.fpOnce.Do(func() {
		h := fnv.New64a()
		h.Write([]byte(g.name))
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(g.n))
		h.Write(buf[:])
		for _, e := range g.edges {
			binary.LittleEndian.PutUint32(buf[:4], uint32(e.U))
			binary.LittleEndian.PutUint32(buf[4:], uint32(e.V))
			h.Write(buf[:])
		}
		g.fp = h.Sum64()
	})
	return g.fp
}

// HasEdge reports whether {u, v} is an edge.
func (g *G) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n || u == v {
		return false
	}
	a := g.adj[u]
	k := sort.SearchInts(a, v)
	return k < len(a) && a[k] == v
}

// IsConnected reports whether the graph is connected. The empty graph and
// the single node are connected by convention.
func (g *G) IsConnected() bool {
	if g.n <= 1 {
		return true
	}
	seen := make([]bool, g.n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.adj[u] {
			if !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, v)
			}
		}
	}
	return count == g.n
}

// IsRegular reports whether every node has the same degree, and that degree.
func (g *G) IsRegular() (int, bool) {
	if g.n == 0 {
		return 0, true
	}
	d := g.deg[0]
	for _, x := range g.deg[1:] {
		if x != d {
			return 0, false
		}
	}
	return d, true
}

// Adjacency returns the n×n adjacency matrix A.
func (g *G) Adjacency() *matrix.Dense {
	a := matrix.NewDense(g.n, g.n)
	for _, e := range g.edges {
		a.Set(e.U, e.V, 1)
		a.Set(e.V, e.U, 1)
	}
	return a
}

// Laplacian returns the n×n Laplacian L = D − A, where D is the diagonal
// degree matrix. L is symmetric positive semidefinite; its second-smallest
// eigenvalue λ₂ (the algebraic connectivity) drives every convergence bound
// in the paper.
func (g *G) Laplacian() *matrix.Dense {
	l := matrix.NewDense(g.n, g.n)
	for i, d := range g.deg {
		l.Set(i, i, float64(d))
	}
	for _, e := range g.edges {
		l.Set(e.U, e.V, -1)
		l.Set(e.V, e.U, -1)
	}
	return l
}

// Subgraph returns the graph on the same node set containing only the edges
// for which keep returns true. Used by the dynamic-network generators.
func (g *G) Subgraph(name string, keep func(Edge) bool) *G {
	b := NewBuilder(name, g.n)
	for _, e := range g.edges {
		if keep(e) {
			b.AddEdge(e.U, e.V)
		}
	}
	return b.MustFinish()
}

// String implements fmt.Stringer.
func (g *G) String() string {
	return fmt.Sprintf("%s{n=%d m=%d δ=%d}", g.name, g.n, g.M(), g.MaxDegree())
}
