package dimexchange

import (
	"repro/internal/graph"
	"repro/internal/load"
	"repro/internal/parallel"
)

// classPartners precomputes, per color class, each node's mate (−1 when the
// class leaves it unmatched). The schedule is fixed for the stepper's
// lifetime, so the parallel path pays for the arrays once, not per round.
func classPartners(n int, classes [][]graph.Edge) [][]int {
	out := make([][]int, len(classes))
	for k, class := range classes {
		out[k] = matchingPartners(nil, n, class)
	}
	return out
}

// RoundRobin is the deterministic dimension-exchange balancer the paper's
// introduction attributes to [3]: balancing partners are fixed in a
// predetermined cyclic order. We realize the schedule with a proper edge
// coloring — each color class is a matching, and round t activates class
// t mod k, so every edge balances exactly once per k rounds.
//
// On the hypercube with its natural dimension coloring this is the classic
// all-dimension exchange: a continuous run balances *perfectly* after one
// full sweep of the d dimensions, which the tests assert.
type RoundRobin struct {
	G       *graph.G
	Load    *load.Continuous
	Classes [][]graph.Edge
	// Workers > 1 fans the pair-averaging loop over goroutines; results
	// are bit-identical for any value.
	Workers int

	round    int
	partners [][]int
	next     []float64
}

// NewRoundRobin builds the schedule from a greedy edge coloring of g.
func NewRoundRobin(g *graph.G, initial []float64) *RoundRobin {
	if len(initial) != g.N() {
		panic("dimexchange: initial load length mismatch")
	}
	colors, num := graph.EdgeColoring(g)
	return &RoundRobin{
		G:       g,
		Load:    load.NewContinuous(initial),
		Classes: graph.ColorClasses(g, colors, num),
	}
}

// NewRoundRobinWithClasses uses a caller-provided matching schedule (e.g.
// graph.HypercubeDimensionClasses for the perfect hypercube sweep).
func NewRoundRobinWithClasses(g *graph.G, initial []float64, classes [][]graph.Edge) *RoundRobin {
	if len(initial) != g.N() {
		panic("dimexchange: initial load length mismatch")
	}
	return &RoundRobin{G: g, Load: load.NewContinuous(initial), Classes: classes}
}

// Sweep returns the number of rounds per full schedule cycle.
func (r *RoundRobin) Sweep() int { return len(r.Classes) }

// Step activates the next matching in the cycle; matched pairs average.
func (r *RoundRobin) Step() {
	if len(r.Classes) == 0 {
		return
	}
	k := r.round % len(r.Classes)
	class := r.Classes[k]
	r.round++
	v := r.Load.Vector()
	w := parallel.StepperWorkers(r.Workers)
	if w == 1 {
		for _, e := range class {
			avg := (v[e.U] + v[e.V]) / 2
			v[e.U], v[e.V] = avg, avg
		}
		return
	}
	n := r.G.N()
	if r.partners == nil {
		r.partners = classPartners(n, r.Classes)
	}
	partner := r.partners[k]
	if len(r.next) < n {
		r.next = make([]float64, n)
	}
	parallel.For(n, w, func(i int) {
		if j := partner[i]; j >= 0 {
			r.next[i] = (v[i] + v[j]) / 2
		} else {
			r.next[i] = v[i]
		}
	})
	copy(v, r.next[:n])
}

// Potential returns Φ of the current distribution.
func (r *RoundRobin) Potential() float64 { return r.Load.Potential() }

// LoadVector returns the live load vector (implements sim.ContinuousState).
func (r *RoundRobin) LoadVector() []float64 { return r.Load.Vector() }

// RoundRobinDiscrete is the token version: matched pairs move ⌊diff/2⌋.
type RoundRobinDiscrete struct {
	G       *graph.G
	Load    *load.Discrete
	Classes [][]graph.Edge
	// Workers > 1 fans the pair-balancing loop over goroutines; results
	// are identical for any value.
	Workers int

	round    int
	partners [][]int
	next     []int64
}

// NewRoundRobinDiscrete builds the discrete schedule from a greedy edge
// coloring.
func NewRoundRobinDiscrete(g *graph.G, initial []int64) *RoundRobinDiscrete {
	if len(initial) != g.N() {
		panic("dimexchange: initial token length mismatch")
	}
	colors, num := graph.EdgeColoring(g)
	return &RoundRobinDiscrete{
		G:       g,
		Load:    load.NewDiscrete(initial),
		Classes: graph.ColorClasses(g, colors, num),
	}
}

// Step activates the next matching in the cycle.
func (r *RoundRobinDiscrete) Step() {
	if len(r.Classes) == 0 {
		return
	}
	k := r.round % len(r.Classes)
	class := r.Classes[k]
	r.round++
	v := r.Load.Tokens()
	w := parallel.StepperWorkers(r.Workers)
	if w == 1 {
		for _, e := range class {
			hi, lo := e.U, e.V
			if v[hi] < v[lo] {
				hi, lo = lo, hi
			}
			t := (v[hi] - v[lo]) / 2
			v[hi] -= t
			v[lo] += t
		}
		return
	}
	n := r.G.N()
	if r.partners == nil {
		r.partners = classPartners(n, r.Classes)
	}
	partner := r.partners[k]
	if len(r.next) < n {
		r.next = make([]int64, n)
	}
	parallel.For(n, w, func(i int) {
		li := v[i]
		if j := partner[i]; j >= 0 {
			if lj := v[j]; li > lj {
				li -= (li - lj) / 2
			} else if lj > li {
				li += (lj - li) / 2
			}
		}
		r.next[i] = li
	})
	copy(v, r.next[:n])
}

// Potential returns Φ of the current distribution.
func (r *RoundRobinDiscrete) Potential() float64 { return r.Load.Potential() }

// LoadTokens returns the live token counts (implements sim.DiscreteState).
func (r *RoundRobinDiscrete) LoadTokens() []int64 { return r.Load.Tokens() }
