package randpair

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/workload"
)

func TestRoundLinksShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 100
	links := RoundLinks(n, rng)
	if len(links) > n {
		t.Fatalf("%d links from %d nodes", len(links), n)
	}
	for _, l := range links {
		if l.From == l.To {
			t.Fatal("self link survived")
		}
		if l.From < 0 || l.From >= n || l.To < 0 || l.To >= n {
			t.Fatal("link out of range")
		}
	}
}

func TestDegreesCountBothEndpoints(t *testing.T) {
	links := []Link{{0, 1}, {2, 1}}
	d := Degrees(3, links)
	if d[0] != 1 || d[1] != 2 || d[2] != 1 {
		t.Fatalf("degrees %v", d)
	}
}

func TestLemma9ProbabilityExceedsHalf(t *testing.T) {
	// Lemma 9: Pr[max(dᵢ,dⱼ) ≤ 5 | (i,j) ∈ E] > 0.5. Empirically the
	// probability is far higher (≈0.97); test the paper's bound strictly.
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{16, 64, 256, 1024} {
		p, _ := PartnerDegreeProbe(n, 200, rng)
		if p <= 0.5 {
			t.Fatalf("n=%d: Pr[max degree ≤ 5 | link] = %v ≤ 0.5", n, p)
		}
	}
}

func TestContinuousConserves(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	init := workload.Continuous(workload.Uniform, 64, 100, rng)
	st := NewContinuous(init, rng)
	before := st.Load.Total()
	for i := 0; i < 100; i++ {
		st.Step()
	}
	if math.Abs(st.Load.Total()-before) > 1e-7*(1+math.Abs(before)) {
		t.Fatalf("total drifted: %v → %v", before, st.Load.Total())
	}
}

func TestContinuousLemma11ExpectedDrop(t *testing.T) {
	// Lemma 11: E[Φᵗ⁺¹] ≤ (19/20)Φᵗ. Average the one-round drop factor
	// over many independent rounds from the same start.
	rng := rand.New(rand.NewSource(4))
	n := 128
	init := workload.Continuous(workload.Spike, n, float64(n)*100, nil)
	const trials = 300
	var sum float64
	for k := 0; k < trials; k++ {
		st := NewContinuous(init, rng)
		phi0 := st.Potential()
		st.Step()
		sum += st.Potential() / phi0
	}
	mean := sum / trials
	if mean > ContinuousDropBound {
		t.Fatalf("mean drop factor %v exceeds 19/20", mean)
	}
}

func TestContinuousConvergesLogarithmically(t *testing.T) {
	// Theorem 12 shape: Φ should hit a tiny fraction of Φ⁰ within O(log Φ⁰)
	// rounds; 400 rounds is far beyond the expected ~40 for this instance.
	rng := rand.New(rand.NewSource(5))
	init := workload.Continuous(workload.Spike, 256, 1e6, nil)
	st := NewContinuous(init, rng)
	phi0 := st.Potential()
	rounds := 0
	for ; rounds < 400 && st.Potential() > 1e-6*phi0; rounds++ {
		st.Step()
	}
	if st.Potential() > 1e-6*phi0 {
		t.Fatalf("did not reach 1e-6·Φ⁰ in %d rounds", rounds)
	}
}

func TestDiscreteConserves(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	init := workload.Discrete(workload.PowerLaw, 100, 1_000_000, rng)
	st := NewDiscrete(init, rng)
	before := st.Load.Total()
	for i := 0; i < 200; i++ {
		st.Step()
	}
	if st.Load.Total() != before {
		t.Fatal("tokens not conserved")
	}
}

func TestDiscreteNoNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	init := workload.Discrete(workload.Spike, 50, 12345, nil)
	st := NewDiscrete(init, rng)
	for i := 0; i < 300; i++ {
		st.Step()
		for node, v := range st.Load.Tokens() {
			if v < 0 {
				t.Fatalf("node %d negative at round %d", node, i)
			}
		}
	}
}

func TestDiscreteLemma13DropAboveThreshold(t *testing.T) {
	// Lemma 13: above Φ = 3200n the expected drop factor is ≤ 39/40.
	rng := rand.New(rand.NewSource(8))
	n := 64
	// Spike with Φ⁰ ≈ total²·(1−1/n) >> 3200n.
	init := workload.Discrete(workload.Spike, n, int64(n)*10000, nil)
	const trials = 200
	var sum float64
	count := 0
	for k := 0; k < trials; k++ {
		st := NewDiscrete(init, rng)
		phi0 := st.Potential()
		if phi0 < DiscreteThreshold(n) {
			t.Fatalf("test instance too small: Φ⁰ = %v", phi0)
		}
		st.Step()
		sum += st.Potential() / phi0
		count++
	}
	mean := sum / float64(count)
	if mean > DiscreteDropBound {
		t.Fatalf("mean drop factor %v exceeds 39/40", mean)
	}
}

func TestDiscreteTheorem14ReachesThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 128
	init := workload.Discrete(workload.Spike, n, int64(n)*100000, nil)
	st := NewDiscrete(init, rng)
	thr := DiscreteThreshold(n)
	phi0 := st.Potential()
	// Theorem 14 bound with c = 1: T = 240·ln(Φ⁰/3200n).
	bound := int(math.Ceil(240 * math.Log(phi0/thr)))
	rounds := 0
	for ; rounds <= bound && st.Potential() > thr; rounds++ {
		st.Step()
	}
	if st.Potential() > thr {
		t.Fatalf("Φ=%v above threshold %v after %d rounds", st.Potential(), thr, rounds)
	}
}

func TestThresholdValue(t *testing.T) {
	if DiscreteThreshold(10) != 32000 {
		t.Fatalf("threshold = %v", DiscreteThreshold(10))
	}
}

// Property: a continuous step never moves the minimum below its old value
// minus what it could receive… simplified: totals conserved and no NaN.
func TestContinuousStepSanityProperty(t *testing.T) {
	f := func(seed uint8) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		n := 4 + r.Intn(60)
		init := workload.Continuous(workload.Uniform, n, 100, r)
		st := NewContinuous(init, r)
		before := st.Load.Total()
		st.Step()
		if math.Abs(st.Load.Total()-before) > 1e-7*(1+math.Abs(before)) {
			return false
		}
		for i := 0; i < n; i++ {
			if math.IsNaN(st.Load.At(i)) || st.Load.At(i) < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: degrees always sum to 2·|links|.
func TestDegreeSumProperty(t *testing.T) {
	f := func(seed uint8) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		n := 2 + r.Intn(100)
		links := RoundLinks(n, r)
		d := Degrees(n, links)
		sum := 0
		for _, x := range d {
			sum += x
		}
		return sum == 2*len(links)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
