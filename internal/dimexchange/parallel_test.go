package dimexchange

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/workload"
)

// The parallel Step paths must reproduce the serial ones bit for bit: a
// matching touches every node at most once, so fanning the partner-array
// averaging over goroutines performs exactly the same IEEE operations per
// node as the serial in-place loop — any discrepancy is a bug, not noise.

func spikeFloats(n int) []float64 {
	return workload.Continuous(workload.Spike, n, 1e6*float64(n), nil)
}

func spikeTokens(n int) []int64 {
	return workload.Discrete(workload.Spike, n, int64(n)*1_000_000, nil)
}

func TestContinuousParallelMatchesSerial(t *testing.T) {
	for _, g := range []*graph.G{graph.Cycle(17), graph.Torus(5, 6), graph.Hypercube(5)} {
		for _, w := range []int{2, 3, 7, 16} {
			serial := NewContinuous(g, spikeFloats(g.N()), rand.New(rand.NewSource(5)))
			par := NewContinuous(g, spikeFloats(g.N()), rand.New(rand.NewSource(5)))
			par.Workers = w
			for r := 0; r < 40; r++ {
				serial.Step()
				par.Step()
				for i := range serial.Load.Vector() {
					if math.Float64bits(serial.Load.Vector()[i]) != math.Float64bits(par.Load.Vector()[i]) {
						t.Fatalf("%s workers=%d round %d node %d: %v != %v",
							g.Name(), w, r, i, par.Load.Vector()[i], serial.Load.Vector()[i])
					}
				}
			}
		}
	}
}

func TestDiscreteParallelMatchesSerial(t *testing.T) {
	for _, g := range []*graph.G{graph.Cycle(17), graph.Torus(5, 6), graph.Hypercube(5)} {
		for _, w := range []int{2, 3, 7, 16} {
			serial := NewDiscrete(g, spikeTokens(g.N()), rand.New(rand.NewSource(5)))
			par := NewDiscrete(g, spikeTokens(g.N()), rand.New(rand.NewSource(5)))
			par.Workers = w
			for r := 0; r < 40; r++ {
				serial.Step()
				par.Step()
				for i := range serial.Load.Tokens() {
					if serial.Load.Tokens()[i] != par.Load.Tokens()[i] {
						t.Fatalf("%s workers=%d round %d node %d: %d != %d",
							g.Name(), w, r, i, par.Load.Tokens()[i], serial.Load.Tokens()[i])
					}
				}
			}
		}
	}
}

func TestRoundRobinParallelMatchesSerial(t *testing.T) {
	for _, g := range []*graph.G{graph.Cycle(12), graph.Torus(4, 5), graph.Hypercube(4)} {
		for _, w := range []int{2, 7} {
			serial := NewRoundRobin(g, spikeFloats(g.N()))
			par := NewRoundRobin(g, spikeFloats(g.N()))
			par.Workers = w
			for r := 0; r < 3*len(serial.Classes); r++ {
				serial.Step()
				par.Step()
				for i := range serial.Load.Vector() {
					if math.Float64bits(serial.Load.Vector()[i]) != math.Float64bits(par.Load.Vector()[i]) {
						t.Fatalf("%s workers=%d round %d node %d: %v != %v",
							g.Name(), w, r, i, par.Load.Vector()[i], serial.Load.Vector()[i])
					}
				}
			}
		}
	}
}

func TestRoundRobinDiscreteParallelMatchesSerial(t *testing.T) {
	for _, g := range []*graph.G{graph.Cycle(12), graph.Torus(4, 5), graph.Hypercube(4)} {
		for _, w := range []int{2, 7} {
			serial := NewRoundRobinDiscrete(g, spikeTokens(g.N()))
			par := NewRoundRobinDiscrete(g, spikeTokens(g.N()))
			par.Workers = w
			for r := 0; r < 3*len(serial.Classes); r++ {
				serial.Step()
				par.Step()
				for i := range serial.Load.Tokens() {
					if serial.Load.Tokens()[i] != par.Load.Tokens()[i] {
						t.Fatalf("%s workers=%d round %d node %d: %d != %d",
							g.Name(), w, r, i, par.Load.Tokens()[i], serial.Load.Tokens()[i])
					}
				}
			}
		}
	}
}
