package core

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/diffusion"
	"repro/internal/dimexchange"
	"repro/internal/randpair"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// runScenario drives an open session under its non-static scenario: each
// round it asks the scenario instance for the active graph (SwapGraph
// rebuilds the stepper — with the current loads and the session's
// persistent algorithm RNG — only when the graph actually changes),
// advances the stepper one synchronous round, injects the scenario's
// arrivals straight into the stepper's live load state, and commits the
// potential. Arrival-bearing scenarios run their full horizon (there is no
// convergence round to stop at while load keeps landing); arrival-free
// ones (pure topology churn) stop early once Φ reaches the target, exactly
// like a static run.
//
// All randomness is split into two streams — cfg.Seed for the algorithm,
// cfg.ScenarioSeed for the scenario — and every draw happens at a fixed
// point of the sequential round loop, so identical seeds reproduce
// identical trajectories regardless of worker counts or shard splits.
func runScenario(s *Session) (Result, error) {
	cfg := s.Config()
	var ref float64
	for _, v := range cfg.Loads {
		ref += v
	}
	inst, err := cfg.Scenario.New(cfg.Graph, ref, rand.New(rand.NewSource(cfg.ScenarioSeed)))
	if err != nil {
		return Result{}, fmt.Errorf("core: %w", err)
	}

	horizon := s.Horizon()
	for t := 1; t <= horizon; t++ {
		k := t - 1 // scenarios number rounds from 0
		if err := s.SwapGraph(inst.Graph(k)); err != nil {
			return Result{}, err
		}
		if err := s.Step(); err != nil {
			return Result{}, err
		}
		if _, err := s.Inject(inst.Arrivals(k, s.Loads())); err != nil {
			return Result{}, err
		}
		phi, err := s.Commit()
		if err != nil {
			return Result{}, err
		}
		if inst.ArrivalFree() && phi <= s.Target() {
			break
		}
	}
	return s.Close(), nil
}

// currentLoads returns the stepper's live load state as a float vector:
// the continuous vector itself (no copy — callers treat it as read-only),
// or a float view of the token counts. Token counts of any realistic
// magnitude are exact in float64, so the view round-trips losslessly into
// the next stepper build.
func currentLoads(sys sim.System, mode Mode) []float64 {
	if mode == Discrete {
		tok := mustDiscrete(sys).LoadTokens()
		out := make([]float64, len(tok))
		for i, x := range tok {
			out[i] = float64(x)
		}
		return out
	}
	return mustContinuous(sys).LoadVector()
}

// inject lands the arrivals in the stepper's live load state, returning
// the total injected (discrete amounts round to whole tokens).
func inject(sys sim.System, mode Mode, arrivals []scenario.Arrival) (float64, error) {
	if len(arrivals) == 0 {
		return 0, nil
	}
	var total float64
	if mode == Discrete {
		tok := mustDiscrete(sys).LoadTokens()
		for _, a := range arrivals {
			amt := int64(math.Round(a.Amount))
			if amt <= 0 || a.Node < 0 || a.Node >= len(tok) {
				continue
			}
			tok[a.Node] += amt
			total += float64(amt)
		}
		return total, nil
	}
	v := mustContinuous(sys).LoadVector()
	for _, a := range arrivals {
		if a.Amount <= 0 || a.Node < 0 || a.Node >= len(v) {
			continue
		}
		v[a.Node] += a.Amount
		total += a.Amount
	}
	return total, nil
}

// mustContinuous and mustDiscrete assert the stepper exposes the matching
// state hook. Every algorithm core builds implements them; a panic here
// means a new stepper was added without its sim.ContinuousState or
// sim.DiscreteState method.
func mustContinuous(sys sim.System) sim.ContinuousState {
	cs, ok := sys.(sim.ContinuousState)
	if !ok {
		panic(fmt.Sprintf("core: stepper %T has no LoadVector hook", sys))
	}
	return cs
}

func mustDiscrete(sys sim.System) sim.DiscreteState {
	ds, ok := sys.(sim.DiscreteState)
	if !ok {
		panic(fmt.Sprintf("core: stepper %T has no LoadTokens hook", sys))
	}
	return ds
}

// Compile-time checks: every stepper buildSystemOn can return must expose
// its state hook, so forgetting the method on a new algorithm fails the
// build, not a sweep.
var (
	_ sim.ContinuousState = (*diffusion.Continuous)(nil)
	_ sim.ContinuousState = (*diffusion.FirstOrder)(nil)
	_ sim.ContinuousState = (*diffusion.SecondOrder)(nil)
	_ sim.ContinuousState = (*dimexchange.Continuous)(nil)
	_ sim.ContinuousState = (*dimexchange.RoundRobin)(nil)
	_ sim.ContinuousState = (*randpair.Continuous)(nil)
	_ sim.DiscreteState   = (*diffusion.Discrete)(nil)
	_ sim.DiscreteState   = (*dimexchange.Discrete)(nil)
	_ sim.DiscreteState   = (*dimexchange.RoundRobinDiscrete)(nil)
	_ sim.DiscreteState   = (*randpair.Discrete)(nil)
)
