package dimexchange

import (
	"repro/internal/graph"
	"repro/internal/load"
)

// RoundRobin is the deterministic dimension-exchange balancer the paper's
// introduction attributes to [3]: balancing partners are fixed in a
// predetermined cyclic order. We realize the schedule with a proper edge
// coloring — each color class is a matching, and round t activates class
// t mod k, so every edge balances exactly once per k rounds.
//
// On the hypercube with its natural dimension coloring this is the classic
// all-dimension exchange: a continuous run balances *perfectly* after one
// full sweep of the d dimensions, which the tests assert.
type RoundRobin struct {
	G       *graph.G
	Load    *load.Continuous
	Classes [][]graph.Edge

	round int
}

// NewRoundRobin builds the schedule from a greedy edge coloring of g.
func NewRoundRobin(g *graph.G, initial []float64) *RoundRobin {
	if len(initial) != g.N() {
		panic("dimexchange: initial load length mismatch")
	}
	colors, num := graph.EdgeColoring(g)
	return &RoundRobin{
		G:       g,
		Load:    load.NewContinuous(initial),
		Classes: graph.ColorClasses(g, colors, num),
	}
}

// NewRoundRobinWithClasses uses a caller-provided matching schedule (e.g.
// graph.HypercubeDimensionClasses for the perfect hypercube sweep).
func NewRoundRobinWithClasses(g *graph.G, initial []float64, classes [][]graph.Edge) *RoundRobin {
	if len(initial) != g.N() {
		panic("dimexchange: initial load length mismatch")
	}
	return &RoundRobin{G: g, Load: load.NewContinuous(initial), Classes: classes}
}

// Sweep returns the number of rounds per full schedule cycle.
func (r *RoundRobin) Sweep() int { return len(r.Classes) }

// Step activates the next matching in the cycle; matched pairs average.
func (r *RoundRobin) Step() {
	if len(r.Classes) == 0 {
		return
	}
	class := r.Classes[r.round%len(r.Classes)]
	r.round++
	v := r.Load.Vector()
	for _, e := range class {
		avg := (v[e.U] + v[e.V]) / 2
		v[e.U], v[e.V] = avg, avg
	}
}

// Potential returns Φ of the current distribution.
func (r *RoundRobin) Potential() float64 { return r.Load.Potential() }

// LoadVector returns the live load vector (implements sim.ContinuousState).
func (r *RoundRobin) LoadVector() []float64 { return r.Load.Vector() }

// RoundRobinDiscrete is the token version: matched pairs move ⌊diff/2⌋.
type RoundRobinDiscrete struct {
	G       *graph.G
	Load    *load.Discrete
	Classes [][]graph.Edge

	round int
}

// NewRoundRobinDiscrete builds the discrete schedule from a greedy edge
// coloring.
func NewRoundRobinDiscrete(g *graph.G, initial []int64) *RoundRobinDiscrete {
	if len(initial) != g.N() {
		panic("dimexchange: initial token length mismatch")
	}
	colors, num := graph.EdgeColoring(g)
	return &RoundRobinDiscrete{
		G:       g,
		Load:    load.NewDiscrete(initial),
		Classes: graph.ColorClasses(g, colors, num),
	}
}

// Step activates the next matching in the cycle.
func (r *RoundRobinDiscrete) Step() {
	if len(r.Classes) == 0 {
		return
	}
	class := r.Classes[r.round%len(r.Classes)]
	r.round++
	v := r.Load.Tokens()
	for _, e := range class {
		hi, lo := e.U, e.V
		if v[hi] < v[lo] {
			hi, lo = lo, hi
		}
		t := (v[hi] - v[lo]) / 2
		v[hi] -= t
		v[lo] += t
	}
}

// Potential returns Φ of the current distribution.
func (r *RoundRobinDiscrete) Potential() float64 { return r.Load.Potential() }

// LoadTokens returns the live token counts (implements sim.DiscreteState).
func (r *RoundRobinDiscrete) LoadTokens() []int64 { return r.Load.Tokens() }
