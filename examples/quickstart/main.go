// Quickstart: balance a load spike on an 8×8 torus with the paper's
// Algorithm 1 and compare the measured convergence against Theorem 4.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/graph"
)

func main() {
	g := graph.Torus(8, 8)

	res, err := core.Balance(core.Config{
		Graph:     g,
		Algorithm: core.Diffusion,              // the paper's Algorithm 1
		Mode:      core.Continuous,             // §4.1: divisible load
		Loads:     core.SpikeLoads(g.N(), 1e6), // all load on node 0
		Epsilon:   1e-4,                        // stop at Φ ≤ 1e-4·Φ⁰
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("balanced %s in %d rounds\n", g, res.Rounds)
	fmt.Printf("potential: %.4g → %.4g\n", res.PhiStart, res.PhiEnd)
	fmt.Printf("%s bound: %.0f rounds (measured/bound = %.2f)\n",
		res.BoundName, res.Bound, float64(res.Rounds)/res.Bound)
}
