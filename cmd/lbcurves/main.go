// Command lbcurves emits the convergence curves Φ(t) of several schemes on
// one instance as CSV — the "figure generator" counterpart of lbbench's
// tables. Feed the output to any plotting tool.
//
// Usage:
//
//	lbcurves -topo torus -n 64 -rounds 300 > curves.csv
//	lbcurves -topo cycle -n 64 -algs diffusion,secondorder -log
//
// Columns: x (round), then one column per algorithm.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/topoparse"
	"repro/internal/trace"
)

func main() {
	var (
		topo   = flag.String("topo", "torus", "topology family (see cmd/lbsim)")
		n      = flag.Int("n", 64, "approximate node count")
		algs   = flag.String("algs", "diffusion,dimexchange,randpair,firstorder,secondorder", "comma-separated algorithms")
		rounds = flag.Int("rounds", 300, "rounds to record")
		total  = flag.Float64("total", 1e6, "spike load on node 0")
		seed   = flag.Int64("seed", 1, "seed for randomized algorithms")
		logY   = flag.Bool("log", false, "emit log10(Φ) instead of Φ")
	)
	flag.Parse()

	g, err := topoparse.Build(*topo, *n, *seed)
	if err != nil {
		fatal(err)
	}

	var series []*trace.Series
	for _, name := range strings.Split(*algs, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		alg, err := core.ParseAlgorithm(name)
		if err != nil {
			fatal(err)
		}
		res, err := core.Balance(core.Config{
			Graph:     g,
			Algorithm: alg,
			Loads:     core.SpikeLoads(g.N(), *total),
			Epsilon:   1e-300, // never stop on ε; the round cap drives the run
			Seed:      *seed,
			MaxRounds: *rounds,
		})
		if err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		s := &trace.Series{Name: name}
		for t, phi := range res.Trace {
			y := phi
			if *logY {
				if phi <= 0 {
					break
				}
				y = math.Log10(phi)
			}
			s.Append(float64(t), y)
		}
		series = append(series, s)
	}
	if len(series) == 0 {
		fatal(fmt.Errorf("no algorithms selected"))
	}
	if err := trace.RenderSeries(os.Stdout, series...); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lbcurves:", err)
	os.Exit(1)
}
