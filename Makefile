# Local targets mirror .github/workflows/ci.yml exactly: `make ci` runs the
# same build, vet, gofmt, race-test and benchmark-smoke steps the workflow
# does, so a green `make ci` means a green PR.

GO ?= go

.PHONY: build test vet fmt fmt-check bench grid-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

grid-smoke:
	$(GO) run ./cmd/lbbench -grid -n 32 -seeds 1,2 -parallel 1 -format csv > /tmp/lbbench-w1.csv
	$(GO) run ./cmd/lbbench -grid -n 32 -seeds 1,2 -parallel 8 -format csv > /tmp/lbbench-w8.csv
	cmp /tmp/lbbench-w1.csv /tmp/lbbench-w8.csv

ci: build vet fmt-check test bench grid-smoke
