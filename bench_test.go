// Package repro's root benchmark suite: one testing.B target per experiment
// in DESIGN.md §5 (each regenerates its table in quick mode), plus
// micro-benchmarks of the primitives that dominate the harness' runtime
// (round steppers, eigensolvers, sequentialization).
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Regenerate one paper table at full size instead:
//
//	go run ./cmd/lbbench -exp E3
package repro

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/diffusion"
	"repro/internal/dimexchange"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/randpair"
	"repro/internal/sequential"
	"repro/internal/spectral"
	"repro/internal/workload"
)

// benchExperiment runs one experiment table per iteration in quick mode.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	runner, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb := runner(experiments.Options{Seed: int64(i + 1), Quick: true})
		if len(tb.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

func BenchmarkE1SequentialDrop(b *testing.B)          { benchExperiment(b, "E1") }
func BenchmarkE2ConcurrencyGap(b *testing.B)          { benchExperiment(b, "E2") }
func BenchmarkE3ContinuousConvergence(b *testing.B)   { benchExperiment(b, "E3") }
func BenchmarkE4DiscreteConvergence(b *testing.B)     { benchExperiment(b, "E4") }
func BenchmarkE5DynamicContinuous(b *testing.B)       { benchExperiment(b, "E5") }
func BenchmarkE6DynamicDiscrete(b *testing.B)         { benchExperiment(b, "E6") }
func BenchmarkE7PartnerDegree(b *testing.B)           { benchExperiment(b, "E7") }
func BenchmarkE8PotentialIdentity(b *testing.B)       { benchExperiment(b, "E8") }
func BenchmarkE9RandomPartners(b *testing.B)          { benchExperiment(b, "E9") }
func BenchmarkE10RandomPartnersDiscrete(b *testing.B) { benchExperiment(b, "E10") }
func BenchmarkE11VsDimensionExchange(b *testing.B)    { benchExperiment(b, "E11") }
func BenchmarkE12VsFirstSecondOrder(b *testing.B)     { benchExperiment(b, "E12") }
func BenchmarkE13LocalDivergence(b *testing.B)        { benchExperiment(b, "E13") }
func BenchmarkE14BallsBins(b *testing.B)              { benchExperiment(b, "E14") }
func BenchmarkE15FlowOptimality(b *testing.B)         { benchExperiment(b, "E15") }
func BenchmarkE16CommunicationCost(b *testing.B)      { benchExperiment(b, "E16") }
func BenchmarkE17ResidualScaling(b *testing.B)        { benchExperiment(b, "E17") }
func BenchmarkE18ContractionRate(b *testing.B)        { benchExperiment(b, "E18") }
func BenchmarkE19Interconnects(b *testing.B)          { benchExperiment(b, "E19") }
func BenchmarkA1DiffusionFactor(b *testing.B)         { benchExperiment(b, "A1") }
func BenchmarkA2ActivationOrder(b *testing.B)         { benchExperiment(b, "A2") }
func BenchmarkA3Rounding(b *testing.B)                { benchExperiment(b, "A3") }
func BenchmarkA4OPSComparison(b *testing.B)           { benchExperiment(b, "A4") }
func BenchmarkA5SyncVsAsync(b *testing.B)             { benchExperiment(b, "A5") }
func BenchmarkA6Heterogeneous(b *testing.B)           { benchExperiment(b, "A6") }
func BenchmarkA7PsiExact(b *testing.B)                { benchExperiment(b, "A7") }
func BenchmarkA8MatchingSchedule(b *testing.B)        { benchExperiment(b, "A8") }

// --- batch grid engine ---

// benchGrid measures one full sweep of the batch engine at the given pool
// width; the serial/parallel pair quantifies the engine's speedup.
func benchGrid(b *testing.B, workers int) {
	b.Helper()
	spec := batch.Spec{
		Topologies: []string{"cycle", "torus", "hypercube"},
		Algorithms: []string{"diffusion", "dimexchange", "randpair"},
		Modes:      []string{"continuous", "discrete"},
		Workloads:  []string{"spike", "uniform"},
		Seeds:      []int64{1, 2},
		N:          32,
		Workers:    workers,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := core.GridRun(context.Background(), spec)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Failed() > 0 {
			b.Fatalf("%d grid units failed", rep.Failed())
		}
	}
}

func BenchmarkBalanceGridSerial(b *testing.B)   { benchGrid(b, 1) }
func BenchmarkBalanceGridParallel(b *testing.B) { benchGrid(b, 0) }

// --- primitive micro-benchmarks ---

func benchGraph() *graph.G { return graph.Torus(32, 32) } // 1024 nodes, 2048 edges

func BenchmarkDiffusionStepContinuous(b *testing.B) {
	g := benchGraph()
	init := workload.Continuous(workload.Spike, g.N(), 1e9, nil)
	st := diffusion.NewContinuous(g, init)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Step()
	}
}

func BenchmarkDiffusionStepContinuousParallel(b *testing.B) {
	g := benchGraph()
	init := workload.Continuous(workload.Spike, g.N(), 1e9, nil)
	st := diffusion.NewContinuous(g, init)
	st.Workers = 8
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Step()
	}
}

func BenchmarkDiffusionStepDiscrete(b *testing.B) {
	g := benchGraph()
	init := workload.Discrete(workload.Spike, g.N(), 1_000_000_000, nil)
	st := diffusion.NewDiscrete(g, init)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Step()
	}
}

func BenchmarkDimExchangeStep(b *testing.B) {
	g := benchGraph()
	rng := rand.New(rand.NewSource(1))
	init := workload.Continuous(workload.Spike, g.N(), 1e9, nil)
	st := dimexchange.NewContinuous(g, init, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Step()
	}
}

func BenchmarkRandPairStep(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	init := workload.Continuous(workload.Spike, 1024, 1e9, nil)
	st := randpair.NewContinuous(init, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Step()
	}
}

func BenchmarkSequentializeRound(b *testing.B) {
	g := benchGraph()
	rng := rand.New(rand.NewSource(1))
	l := workload.Continuous(workload.Uniform, g.N(), 1e6, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sequential.Sequentialize(g, l, sequential.IncreasingWeight, rng)
	}
}

func BenchmarkLambda2Dense(b *testing.B) {
	g := graph.Torus(12, 12) // 144 nodes: dense Householder+QL path
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spectral.LaplacianSpectrum(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLambda2InversePower(b *testing.B) {
	g := graph.Torus(32, 32) // 1024 nodes: CG inverse-power path
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spectral.Lambda2InversePower(g, int64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRandomMatching(b *testing.B) {
	g := benchGraph()
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dimexchange.RandomMatching(g, rng)
	}
}
