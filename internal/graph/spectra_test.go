package graph

import (
	"math"
	"testing"
)

func TestPathLambda2SmallCases(t *testing.T) {
	// path(2) is a single edge: Laplacian [[1,-1],[-1,1]], λ₂ = 2.
	if got := PathLambda2(2); math.Abs(got-2) > 1e-12 {
		t.Fatalf("path(2) λ₂ = %v", got)
	}
	if PathLambda2(1) != 0 {
		t.Fatal("path(1) λ₂ must be 0")
	}
}

func TestCycleLambda2Monotone(t *testing.T) {
	// λ₂ decreases as the cycle grows.
	prev := math.Inf(1)
	for n := 3; n < 40; n++ {
		v := CycleLambda2(n)
		if v >= prev {
			t.Fatalf("cycle λ₂ not decreasing at n=%d: %v >= %v", n, v, prev)
		}
		prev = v
	}
}

func TestSpectraConventions(t *testing.T) {
	if CompleteLambda2(7) != 7 {
		t.Fatal("K7 λ₂ must be 7")
	}
	if StarLambda2(10) != 1 {
		t.Fatal("star λ₂ must be 1")
	}
	if StarLambda2(2) != 2 {
		t.Fatal("star(2) = K2, λ₂ = 2")
	}
	if HypercubeLambda2(5) != 2 {
		t.Fatal("hypercube λ₂ must be 2")
	}
	if CompleteBipartiteLambda2(5, 3) != 3 {
		t.Fatal("K(5,3) λ₂ must be 3")
	}
	if PetersenLambda2() != 2 {
		t.Fatal("petersen λ₂ must be 2")
	}
}

func TestTorusAndGridLambda2UseLongerSide(t *testing.T) {
	if TorusLambda2(3, 9) != CycleLambda2(9) {
		t.Fatal("torus λ₂ must come from the longer cycle")
	}
	if GridLambda2(8, 3) != PathLambda2(8) {
		t.Fatal("grid λ₂ must come from the longer path")
	}
}

func TestSpectrumLengthsAndOrder(t *testing.T) {
	for _, n := range []int{2, 5, 9} {
		s := PathSpectrum(n)
		if len(s) != n {
			t.Fatalf("path spectrum length %d", len(s))
		}
		if s[0] != 0 {
			t.Fatal("smallest Laplacian eigenvalue must be 0")
		}
		for i := 1; i < n; i++ {
			if s[i] < s[i-1] {
				t.Fatal("path spectrum not ascending")
			}
		}
	}
	cs := CycleSpectrum(8)
	if cs[0] != 0 {
		t.Fatal("cycle spectrum must start at 0")
	}
	for i := 1; i < len(cs); i++ {
		if cs[i] < cs[i-1] {
			t.Fatal("cycle spectrum not ascending")
		}
	}
	hs := HypercubeSpectrum(3)
	if len(hs) != 8 {
		t.Fatalf("Q3 spectrum length %d", len(hs))
	}
	want := []float64{0, 2, 2, 2, 4, 4, 4, 6}
	for i := range want {
		if hs[i] != want[i] {
			t.Fatalf("Q3 spectrum %v, want %v", hs, want)
		}
	}
}

func TestKnownLambda2Matching(t *testing.T) {
	cases := []struct {
		g    *G
		want float64
	}{
		{Path(12), PathLambda2(12)},
		{Cycle(9), CycleLambda2(9)},
		{Complete(4), 4},
		{Star(8), 1},
		{Hypercube(3), 2},
		{Torus(4, 6), TorusLambda2(4, 6)},
		{Grid(5, 5), GridLambda2(5, 5)},
		{CompleteBipartite(2, 7), 2},
		{Petersen(), 2},
	}
	for _, c := range cases {
		got, ok := KnownLambda2(c.g)
		if !ok {
			t.Fatalf("%s: no closed form found", c.g.Name())
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("%s: %v want %v", c.g.Name(), got, c.want)
		}
	}
}

func TestKnownLambda2Unknown(t *testing.T) {
	if _, ok := KnownLambda2(Barbell(3)); ok {
		t.Fatal("barbell must have no closed form")
	}
	if _, ok := KnownLambda2(BinaryTree(3)); ok {
		t.Fatal("binary tree must have no closed form")
	}
}

func TestSscanfStrictRejectsTrailing(t *testing.T) {
	var a int
	if _, err := sscanfStrict("path(8)x", "path(%d)", &a); err == nil {
		t.Fatal("trailing content must be rejected")
	}
	if _, err := sscanfStrict("path(8)", "path(%d)", &a); err != nil || a != 8 {
		t.Fatalf("exact match failed: %v a=%d", err, a)
	}
}
