package orchestrator

import "time"

// Policy is the supervisor's restart/steal policy — one value the CLIs and
// tests configure identically instead of loose parameters scattered over
// the Supervisor.
type Policy struct {
	// MaxRetries caps how many times one task is restarted after dying: 0
	// means never restart (fail fast on the first death), negative selects
	// the default of 3. The cap is per task: one flaky shard cannot consume
	// the whole budget of a healthy sweep, and a stolen sub-shard gets a
	// fresh budget of its own.
	MaxRetries int
	// Interval is the journal poll period (default 1s).
	Interval time.Duration
	// StallAfter is how long a running task's journal may sit unchanged
	// before a stall warning (default 60s). Warnings are per stall episode,
	// not per poll.
	StallAfter time.Duration
	// StealAfter enables work stealing: a running task whose journal has
	// not moved for this long is declared dead weight — the supervisor
	// kills it, carves its unstarted unit range into sub-shards and
	// reassigns them to idle launchers. Zero (the default) disables
	// stealing, which keeps the local supervise path behavior-identical to
	// the pre-Launcher orchestrator.
	StealAfter time.Duration
	// FetchInterval throttles Launcher.FetchJournal during the poll loop
	// (default 5s): remote backends pay a round trip per fetch, so journals
	// are pulled home at this cadence while the local tail scan still runs
	// every Interval. Task exits always fetch immediately.
	FetchInterval time.Duration
}

// withDefaults resolves the documented defaults without mutating p.
func (p Policy) withDefaults() Policy {
	if p.MaxRetries < 0 {
		p.MaxRetries = 3
	}
	if p.Interval <= 0 {
		p.Interval = time.Second
	}
	if p.StallAfter <= 0 {
		p.StallAfter = 60 * time.Second
	}
	if p.FetchInterval <= 0 {
		p.FetchInterval = 5 * time.Second
	}
	return p
}
