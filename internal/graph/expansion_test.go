package graph

import (
	"math"
	"testing"
)

func TestEdgeExpansionCompleteGraph(t *testing.T) {
	// K_n: a cut with |S| = k has k(n−k) edges; minimizer is k = ⌊n/2⌋,
	// giving α = ⌈n/2⌉.
	g := Complete(6)
	got := EdgeExpansion(g)
	if math.Abs(got-3) > 1e-12 {
		t.Fatalf("α(K6) = %v, want 3", got)
	}
}

func TestEdgeExpansionCycle(t *testing.T) {
	// Cycle: best cut is an arc of n/2 nodes with 2 cut edges: α = 2/⌊n/2⌋.
	g := Cycle(8)
	got := EdgeExpansion(g)
	if math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("α(C8) = %v, want 0.5", got)
	}
}

func TestEdgeExpansionPath(t *testing.T) {
	// Path: cutting the middle edge gives 1/⌊n/2⌋.
	g := Path(6)
	got := EdgeExpansion(g)
	if math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("α(P6) = %v, want 1/3", got)
	}
}

func TestEdgeExpansionBarbellBridge(t *testing.T) {
	// Barbell: the bridge cut separates the cliques, α = 1/k.
	g := Barbell(4)
	got := EdgeExpansion(g)
	if math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("α(barbell(4)) = %v, want 0.25", got)
	}
}

func TestEdgeExpansionDisconnected(t *testing.T) {
	b := NewBuilder("disc", 4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	if got := EdgeExpansion(b.MustFinish()); got != 0 {
		t.Fatalf("disconnected α = %v, want 0", got)
	}
}

func TestEdgeExpansionGuards(t *testing.T) {
	if EdgeExpansion(NewBuilder("one", 1).MustFinish()) != 0 {
		t.Fatal("n<2 expansion must be 0")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for oversized graph")
		}
	}()
	EdgeExpansion(Cycle(MaxExactExpansionN + 1))
}

func TestExpansionBoundsBracketExact(t *testing.T) {
	// Cheeger: λ₂/2 ≤ α ≤ sqrt(2δλ₂) for the size-based expansion variant,
	// verified against the exact enumeration on small graphs.
	cases := []struct {
		g       *G
		lambda2 float64
	}{
		{Cycle(8), CycleLambda2(8)},
		{Path(7), PathLambda2(7)},
		{Complete(6), 6},
		{Petersen(), 2},
		{Hypercube(3), 2},
	}
	for _, c := range cases {
		exact := EdgeExpansion(c.g)
		lo, hi := ExpansionBounds(c.g, c.lambda2)
		if exact < lo-1e-9 || exact > hi+1e-9 {
			t.Fatalf("%s: α=%v outside Cheeger [%v, %v]", c.g.Name(), exact, lo, hi)
		}
	}
}

func TestCutSize(t *testing.T) {
	g := Cycle(6)
	inS := []bool{true, true, true, false, false, false}
	if got := CutSize(g, inS); got != 2 {
		t.Fatalf("cut size %d, want 2", got)
	}
}

func TestCutSizeLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CutSize(Cycle(4), []bool{true})
}
