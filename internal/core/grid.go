package core

import (
	"context"
	"fmt"

	"repro/internal/batch"
	"repro/internal/graph"
)

// BalanceGrid expands the declarative sweep spec into independent run units
// and executes every (topology × algorithm × mode × workload × seed)
// combination through Balance on the batch engine's worker pool. Per-unit
// RNG streams are derived from each unit's identity, so the aggregated
// report is identical for any Spec.Workers value — one invocation with
// Workers = GOMAXPROCS reproduces a whole paper figure's grid at full
// hardware speed.
//
// Algorithm/mode combinations Balance rejects (e.g. firstorder × discrete)
// surface as per-cell errors in the report, not as an overall failure.
func BalanceGrid(spec batch.Spec) (*batch.Report, error) {
	return BalanceGridContext(context.Background(), spec)
}

// BalanceGridContext is BalanceGrid with cancellation: units not yet
// started when ctx fires record the context error in their cells and the
// report still returns.
func BalanceGridContext(ctx context.Context, spec batch.Spec) (*batch.Report, error) {
	// Validate the algorithm names up front: a typo should fail the sweep,
	// not silently error every cell.
	for _, name := range spec.Algorithms {
		if _, err := ParseAlgorithm(name); err != nil {
			return nil, err
		}
	}
	return batch.RunContext(ctx, spec, func(u batch.Unit, g *graph.G, loads []float64, algoSeed int64) (batch.Outcome, error) {
		alg, err := ParseAlgorithm(u.Algorithm)
		if err != nil {
			return batch.Outcome{}, err
		}
		mode := Continuous
		if u.Mode == "discrete" {
			mode = Discrete
		}
		res, err := Balance(Config{
			Graph:     g,
			Algorithm: alg,
			Mode:      mode,
			Loads:     loads,
			Epsilon:   spec.Epsilon,
			MaxRounds: spec.MaxRounds,
			Seed:      nonZeroSeed(algoSeed),
		})
		if err != nil {
			return batch.Outcome{}, fmt.Errorf("%s: %w", u.Key(), err)
		}
		return batch.Outcome{
			Rounds:    res.Rounds,
			Converged: res.Converged,
			PhiStart:  res.PhiStart,
			PhiEnd:    res.PhiEnd,
			Bound:     res.Bound,
			BoundName: res.BoundName,
		}, nil
	})
}

// nonZeroSeed keeps a derived seed out of Balance's "0 means default"
// convention.
func nonZeroSeed(s int64) int64 {
	if s == 0 {
		return 1
	}
	return s
}
