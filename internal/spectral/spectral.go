package spectral

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/matrix"
)

// denseCutoff is the largest n for which Lambda2 uses the O(n³) dense
// pipeline; beyond it the Lanczos path is both faster and accurate enough.
const denseCutoff = 400

// Lambda2 returns λ₂, the second-smallest eigenvalue of the Laplacian of g
// (its algebraic connectivity). Small graphs go through the dense
// Householder+QL solver; large graphs through projected Lanczos. The graph
// must have at least 2 nodes and be connected (otherwise λ₂ = 0 and the
// convergence bounds of the paper are vacuous).
func Lambda2(g *graph.G) (float64, error) {
	n := g.N()
	if n < 2 {
		return 0, fmt.Errorf("spectral: λ₂ undefined for n=%d", n)
	}
	if !g.IsConnected() {
		return 0, nil
	}
	if n <= denseCutoff {
		vals, err := EigenvaluesSym(g.Laplacian())
		if err != nil {
			return 0, err
		}
		return vals[1], nil
	}
	return Lambda2InversePower(g, 1)
}

// MustLambda2 is Lambda2 that panics on error; for use with graphs known to
// be valid by construction.
func MustLambda2(g *graph.G) float64 {
	v, err := Lambda2(g)
	if err != nil {
		panic(err)
	}
	return v
}

// LaplacianSpectrum returns all Laplacian eigenvalues of g, ascending.
// Dense-only; intended for test fixtures and small harness sweeps.
func LaplacianSpectrum(g *graph.G) ([]float64, error) {
	return EigenvaluesSym(g.Laplacian())
}

// DiffusionMatrix builds Cybenko's diffusion matrix M for g with the
// uniform diffusion factor α = 1/(δ+1):
//
//	m_ij = α for edges (i,j),   m_ii = 1 − α·deg(i).
//
// M is symmetric, doubly stochastic, and L∞-contractive; the continuous
// first-order scheme is exactly Lᵗ⁺¹ = M·Lᵗ.
func DiffusionMatrix(g *graph.G) *matrix.Dense {
	alpha := 1 / float64(g.MaxDegree()+1)
	return WeightedDiffusionMatrix(g, func(i, j int) float64 { return alpha })
}

// PaperDiffusionMatrix builds the diffusion matrix matching Algorithm 1's
// transfer rule: m_ij = 1/(4·max(dᵢ, dⱼ)). In the continuous case one round
// of Algorithm 1 applied to load vector L is exactly this matrix applied to
// L, since flows in both directions of an edge agree in magnitude.
func PaperDiffusionMatrix(g *graph.G) *matrix.Dense {
	return WeightedDiffusionMatrix(g, func(i, j int) float64 {
		di, dj := g.Degree(i), g.Degree(j)
		if dj > di {
			di = dj
		}
		return 1 / (4 * float64(di))
	})
}

// WeightedDiffusionMatrix builds M from a per-edge diffusion factor
// alpha(i, j), which must be symmetric in its arguments. Diagonal entries
// are set to 1 − Σ_j alpha(i, j).
func WeightedDiffusionMatrix(g *graph.G, alpha func(i, j int) float64) *matrix.Dense {
	n := g.N()
	m := matrix.NewDense(n, n)
	for i := 0; i < n; i++ {
		var off float64
		for _, j := range g.Neighbors(i) {
			a := alpha(i, j)
			m.Set(i, j, a)
			off += a
		}
		m.Set(i, i, 1-off)
	}
	return m
}

// Gamma returns γ = max_{µᵢ ≠ µₙ} |µᵢ|, the second-largest eigenvalue
// magnitude of the diffusion matrix m (whose largest eigenvalue is 1 with
// the all-ones eigenvector). The convergence rate of the first-order scheme
// is ‖e(t)‖₂ ≤ γᵗ‖e(0)‖₂.
func Gamma(m *matrix.Dense) (float64, error) {
	vals, err := EigenvaluesSym(m)
	if err != nil {
		return 0, err
	}
	n := len(vals)
	if n < 2 {
		return 0, fmt.Errorf("spectral: γ undefined for n=%d", n)
	}
	// vals ascending; largest is vals[n−1] ≈ 1. γ = max(|vals[0]|, vals[n−2]).
	g := vals[n-2]
	if a := math.Abs(vals[0]); a > g {
		g = a
	}
	return g, nil
}

// EigenGap returns µ = 1 − γ for the diffusion matrix m.
func EigenGap(m *matrix.Dense) (float64, error) {
	g, err := Gamma(m)
	if err != nil {
		return 0, err
	}
	return 1 - g, nil
}

// Report bundles the spectral quantities the experiment harness prints for
// a topology.
type Report struct {
	Name        string
	N, M, Delta int
	Lambda2     float64 // algebraic connectivity
	LambdaMax   float64 // largest Laplacian eigenvalue (dense path only; NaN otherwise)
	Gamma       float64 // 2nd-largest |eigenvalue| of the uniform diffusion matrix (dense only; NaN otherwise)
	ExpansionLo float64 // Cheeger lower bound λ₂/2
	ExpansionHi float64 // Cheeger upper bound sqrt(2δλ₂)
	Exact       bool    // λ₂ from dense solve (true) or Lanczos (false)
}

// Analyze computes a Report for g.
func Analyze(g *graph.G) (Report, error) {
	r := Report{Name: g.Name(), N: g.N(), M: g.M(), Delta: g.MaxDegree()}
	l2, err := Lambda2(g)
	if err != nil {
		return r, err
	}
	r.Lambda2 = l2
	r.ExpansionLo, r.ExpansionHi = graph.ExpansionBounds(g, l2)
	r.LambdaMax, r.Gamma = math.NaN(), math.NaN()
	if g.N() <= denseCutoff {
		r.Exact = true
		vals, err := LaplacianSpectrum(g)
		if err != nil {
			return r, err
		}
		r.LambdaMax = vals[len(vals)-1]
		gm, err := Gamma(DiffusionMatrix(g))
		if err != nil {
			return r, err
		}
		r.Gamma = gm
	}
	return r, nil
}
