// Package orchestrator turns the sharding primitives (Spec.Shard, JSONL
// shard journals, MergeJournals) into an actual multi-process system: it
// plans a shard split for a grid spec, spawns and supervises the m local
// shard subprocesses (restarting dead ones against their own journals),
// tails the journals for shard-aware live progress, and merges the finished
// journals into a final report byte-identical to a single-process sweep.
// The same plan serializes as a GitHub Actions matrix, a Slurm job array or
// a plain shell fan-out, so the exact split the orchestrator runs locally
// is what CI and clusters run remotely.
package orchestrator

import (
	"fmt"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/batch"
)

// Shard is one planned slice of the sweep: which units it owns and where it
// journals them.
type Shard struct {
	// Index/Count name the slice (units with expansion index ≡ Index mod
	// Count).
	Index, Count int
	// Journal is the shard's JSONL journal path, under the plan's Dir.
	Journal string
	// Units is how many units the shard owns — the denominator of its
	// progress display. Zero for empty shards (m > unit count), which
	// journal a lone header and merge cleanly.
	Units int
}

// Plan is a fully-resolved multi-process sweep: the grid, the m-way shard
// split, and the journal layout. The supervisor executes it locally; the
// emitters serialize it for CI and clusters.
type Plan struct {
	// Spec is the unsharded grid spec, defaults applied. Shard specs derive
	// from it.
	Spec batch.Spec
	// Dir is the output directory holding the per-shard journals (and the
	// supervisor's per-shard stderr logs).
	Dir string
	// Format is the final report's render format ("table", "csv", "json").
	// It never reaches the shard children (their stdout is discarded; the
	// journal is the product) — only the merge step the emitted scripts end
	// with. Empty means the CLI default.
	Format string
	// Shards are the m planned shards, in index order.
	Shards []Shard
}

// NewPlan validates spec, splits it m ways and lays the journals out under
// dir (which is not created here — the supervisor and the CLI do that when
// they actually spawn). The spec must expand: planning a grid that cannot
// run is the same error running it would be, surfaced before any process
// exists.
func NewPlan(spec batch.Spec, m int, dir string) (*Plan, error) {
	if m <= 0 {
		return nil, fmt.Errorf("orchestrator: shard count %d must be positive", m)
	}
	if spec.ShardCount > 0 {
		return nil, fmt.Errorf("orchestrator: spec is already sharded (%d/%d) — plan from the unsharded grid", spec.ShardIndex, spec.ShardCount)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	p := &Plan{Spec: spec.WithDefaults(), Dir: dir}
	for i := 0; i < m; i++ {
		sharded, err := p.Spec.Shard(i, m)
		if err != nil {
			return nil, err
		}
		p.Shards = append(p.Shards, Shard{
			Index:   i,
			Count:   m,
			Journal: filepath.Join(dir, fmt.Sprintf("shard-%d.jsonl", i)),
			Units:   sharded.OwnedUnitCount(),
		})
	}
	return p, nil
}

// TotalUnits is the full expansion size across all shards.
func (p *Plan) TotalUnits() int { return p.Spec.UnitCount() }

// GridArgs are the lbbench flags that reproduce p.Spec in grid mode —
// exactly the flags a shard subprocess (or a CI matrix entry) needs in
// front of its -shard/-out pair. Floats round-trip through 'g' formatting,
// so the child parses back bit-equal values.
func (p *Plan) GridArgs() []string {
	s := p.Spec
	args := []string{
		"-grid",
		"-topos", strings.Join(s.Topologies, ","),
		"-algos", strings.Join(s.Algorithms, ","),
		"-modes", strings.Join(s.Modes, ","),
		"-loads", strings.Join(s.Workloads, ","),
		"-scenarios", strings.Join(s.Scenarios, ","),
		"-n", strconv.Itoa(s.N),
		"-seeds", joinSeeds(s.Seeds),
		"-scale", strconv.FormatFloat(s.Scale, 'g', -1, 64),
		"-eps", strconv.FormatFloat(s.Epsilon, 'g', -1, 64),
	}
	if s.MaxRounds > 0 {
		args = append(args, "-rounds", strconv.Itoa(s.MaxRounds))
	}
	if s.Workers > 0 {
		args = append(args, "-parallel", strconv.Itoa(s.Workers))
	}
	// Round workers are a pure scheduling knob (results are byte-identical
	// for any value), but the children should run the split the plan was
	// made with; "auto" re-tunes per child against its own shard's shape.
	switch {
	case s.RoundWorkers < 0:
		args = append(args, "-round-workers", "auto")
	case s.RoundWorkers > 1:
		args = append(args, "-round-workers", strconv.Itoa(s.RoundWorkers))
	}
	return args
}

// ShardArgs are the flags for one shard's fresh run: the grid, its slice,
// its journal. When resume is true the shard restarts against its own
// journal (the supervisor's retry path, and the orchestrator's own
// restart-after-crash path).
func (p *Plan) ShardArgs(i int, resume bool) []string {
	sh := p.Shards[i]
	args := append(p.GridArgs(), "-shard", fmt.Sprintf("%d/%d", sh.Index, sh.Count))
	if resume {
		args = append(args, "-resume", sh.Journal)
	}
	return append(args, "-out", sh.Journal)
}

// Tasks builds the initial task list the supervisor schedules: one
// whole-shard task per planned shard, labeled s0..s{m-1}. Steals append to
// this list at run time; it is the starting point, not the final shape.
func (p *Plan) Tasks() []*Task {
	tasks := make([]*Task, len(p.Shards))
	for i, sh := range p.Shards {
		tasks[i] = &Task{
			Shard:   sh,
			Journal: sh.Journal,
			Units:   sh.Units,
			Label:   fmt.Sprintf("s%d", sh.Index),
		}
	}
	return tasks
}

// TaskArgs are the lbbench flags for one attempt of t: the grid, the
// shard slice, the unit window when the task is a stolen sub-range, its
// provenance tag, and its journal. A whole-shard task without origin
// produces exactly the classic ShardArgs flag list, so the local launcher
// path spawns byte-identical command lines to the pre-Launcher supervisor.
func (p *Plan) TaskArgs(t *Task, resume bool) []string {
	args := append(p.GridArgs(), "-shard", fmt.Sprintf("%d/%d", t.Shard.Index, t.Shard.Count))
	if t.Lo > 0 || t.Hi > 0 {
		if t.Hi > 0 {
			args = append(args, "-units", fmt.Sprintf("%d:%d", t.Lo, t.Hi))
		} else {
			args = append(args, "-units", fmt.Sprintf("%d:", t.Lo))
		}
	}
	if t.Origin != "" {
		args = append(args, "-origin", t.Origin)
	}
	if resume {
		args = append(args, "-resume", t.Journal)
	}
	return append(args, "-out", t.Journal)
}

// JournalPaths lists the per-shard journals in shard order — the argument
// to MergeJournals once every shard is done.
func (p *Plan) JournalPaths() []string {
	paths := make([]string, len(p.Shards))
	for i, sh := range p.Shards {
		paths[i] = sh.Journal
	}
	return paths
}

func joinSeeds(seeds []int64) string {
	parts := make([]string, len(seeds))
	for i, s := range seeds {
		parts[i] = strconv.FormatInt(s, 10)
	}
	return strings.Join(parts, ",")
}
