package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "Requests.")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Idempotent registration returns the same instance.
	if again := r.Counter("reqs_total", "Requests."); again != c {
		t.Fatal("re-registration returned a different counter")
	}

	g := r.Gauge("depth", "Depth.")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestCounterLabels(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("steals_total", "Steals.", L("backend", "a"))
	b := r.Counter("steals_total", "Steals.", L("backend", "b"))
	if a == b {
		t.Fatal("distinct label sets shared a counter")
	}
	a.Inc()
	a.Inc()
	b.Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE steals_total counter",
		`steals_total{backend="a"} 2`,
		`steals_total{backend="b"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got := h.Sum(); got != 5.605 {
		t.Fatalf("sum = %v, want 5.605", got)
	}
	if q := h.Quantile(0.5); q != 0.1 {
		t.Fatalf("p50 = %v, want 0.1 (bucket bound)", q)
	}
	if q := h.Quantile(0.99); q != 1 {
		t.Fatalf("p99 = %v, want 1 (clamped to last bound)", q)
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.01"} 1`,
		`lat_seconds_bucket{le="0.1"} 3`,
		`lat_seconds_bucket{le="1"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		"lat_seconds_sum 5.605",
		"lat_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestCollectFuncs(t *testing.T) {
	r := NewRegistry()
	n := 7.0
	r.CounterFunc("solves_total", "Solves.", func() float64 { return n }, L("path", "dense"))
	r.GaugeFunc("temp", "Temp.", func() float64 { return 36.6 })
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `solves_total{path="dense"} 7`) {
		t.Errorf("missing counter func value:\n%s", out)
	}
	if !strings.Contains(out, "temp 36.6") {
		t.Errorf("missing gauge func value:\n%s", out)
	}
}

func TestConcurrentHotPath(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n_total", "N.")
	h := r.Histogram("v", "V.", ExpBuckets(1, 2, 8))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i % 100))
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("hist count = %d, want 8000", h.Count())
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(0.001, 10, 4)
	want := []float64{0.001, 0.01, 0.1, 1}
	for i := range want {
		if b[i] < want[i]*0.999 || b[i] > want[i]*1.001 {
			t.Fatalf("bucket[%d] = %v, want ~%v", i, b[i], want[i])
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("m_total", "M.", L("k", `a"b\c`)).Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `m_total{k="a\"b\\c"} 1`) {
		t.Errorf("label not escaped:\n%s", sb.String())
	}
}

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", "B.")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_hist", "B.", ExpBuckets(0.001, 2, 16))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i&1023) / 100)
	}
}
