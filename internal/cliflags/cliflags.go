// Package cliflags centralizes the flag surfaces the lb* CLIs share —
// the sweep grid's dimensions and run parameters (lbbench, lborch), the
// report output knobs, the orchestrator's launcher/policy flags (lbbench
// -spawn, lborch), and the parsers behind them (seed lists, -round-workers,
// -shard i/m, -units lo:hi). One registration point means a new shared flag
// — -launcher, -hosts, -steal-after — appears on every CLI at once, with
// one help string and one parser, instead of drifting copies.
package cliflags

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// SplitList splits a comma-separated flag value, dropping empty entries.
func SplitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

// ParseSeeds parses a comma-separated -seeds list.
func ParseSeeds(s string) ([]int64, error) {
	var out []int64
	for _, v := range SplitList(s) {
		x, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q: %v", v, err)
		}
		out = append(out, x)
	}
	return out, nil
}

// ParseRoundWorkers parses a -round-workers value: a non-negative worker
// count, or "auto" (encoded as −1) for the batch auto-tuner's split.
func ParseRoundWorkers(s string) (int, error) {
	if strings.EqualFold(strings.TrimSpace(s), "auto") {
		return -1, nil
	}
	w, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil || w < 0 {
		return 0, fmt.Errorf("bad -round-workers %q (want a non-negative count, or 'auto')", s)
	}
	return w, nil
}

// ErrShardRange marks a -shard value that parsed but names an impossible
// slice (count ≤ 0, index outside [0, m)) — the CLIs map it to their
// out-of-range exit code, where a malformed string is plain usage.
var ErrShardRange = errors.New("shard out of range")

// ParseShard parses a -shard i/m value ("" means unsharded).
func ParseShard(s string) (i, m int, err error) {
	if s == "" {
		return 0, 0, nil
	}
	parts := strings.SplitN(s, "/", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("bad -shard %q (want i/m, e.g. 0/3)", s)
	}
	i, err1 := strconv.Atoi(strings.TrimSpace(parts[0]))
	m, err2 := strconv.Atoi(strings.TrimSpace(parts[1]))
	if err1 != nil || err2 != nil {
		return 0, 0, fmt.Errorf("bad -shard %q (want i/m, e.g. 0/3)", s)
	}
	if m <= 0 {
		return 0, 0, fmt.Errorf("bad -shard %q: %w: count must be positive", s, ErrShardRange)
	}
	if i < 0 || i >= m {
		return 0, 0, fmt.Errorf("bad -shard %q: %w: index must be in [0, %d)", s, ErrShardRange, m)
	}
	return i, m, nil
}

// ParseUnits parses a -units lo:hi window ("" means unrestricted): a
// half-open expansion-index range, "lo:" for the unbounded tail — the form
// the work-stealing supervisor hands its stolen sub-shards.
func ParseUnits(s string) (lo, hi int, err error) {
	if s == "" {
		return 0, 0, nil
	}
	los, his, ok := strings.Cut(s, ":")
	if !ok {
		return 0, 0, fmt.Errorf("bad -units %q (want lo:hi, or lo: for an unbounded tail)", s)
	}
	lo, err = strconv.Atoi(strings.TrimSpace(los))
	if err != nil || lo < 0 {
		return 0, 0, fmt.Errorf("bad -units %q: start must be a non-negative index", s)
	}
	if his = strings.TrimSpace(his); his != "" {
		hi, err = strconv.Atoi(his)
		if err != nil || hi <= lo {
			return 0, 0, fmt.Errorf("bad -units %q: end must be an index past the start (or omitted for unbounded)", s)
		}
	}
	return lo, hi, nil
}
