package spectral

import (
	"errors"
	"math"
	"sort"

	"repro/internal/matrix"
)

// ErrNoConvergence is returned when an iterative eigenroutine exceeds its
// iteration budget. With symmetric input this indicates a bug or pathological
// rounding, not a property of the matrix.
var ErrNoConvergence = errors.New("spectral: eigenvalue iteration did not converge")

// maxQLIterationsPerEigenvalue bounds the implicit-shift QL sweeps per
// eigenvalue; 30 is the classical EISPACK budget and is never reached on
// well-formed symmetric input.
const maxQLIterationsPerEigenvalue = 30

// QLImplicit diagonalizes a symmetric tridiagonal matrix in place using the
// QL algorithm with implicit shifts. On return t.D holds the eigenvalues
// (unsorted). If z is non-nil it must be the orthogonal matrix accumulated
// by Householder (or the identity for a genuinely tridiagonal input); its
// columns are rotated into the corresponding eigenvectors.
func QLImplicit(t Tridiagonal, z *matrix.Dense) error {
	n := len(t.D)
	if n == 0 {
		return nil
	}
	d, e := t.D, t.E
	// Shift the subdiagonal up by one (tql2 convention) so e[l] couples
	// rows l and l+1 during the sweep.
	for i := 1; i < n; i++ {
		e[i-1] = e[i]
	}
	e[n-1] = 0

	// Overall matrix scale for the negligibility test: without it, a
	// subdiagonal sitting next to two (near-)zero diagonal entries — as in
	// highly degenerate spectra like K_n's diffusion matrix — never tests
	// as negligible and the sweep spins.
	var anorm float64
	for i := 0; i < n; i++ {
		if s := math.Abs(d[i]) + math.Abs(e[i]); s > anorm {
			anorm = s
		}
	}
	const eps = 2.220446049250313e-16 // 2⁻⁵²

	for l := 0; l < n; l++ {
		for iter := 0; ; iter++ {
			// Find the first negligible subdiagonal at or after l.
			m := l
			for ; m < n-1; m++ {
				dd := math.Abs(d[m]) + math.Abs(d[m+1])
				if math.Abs(e[m]) <= eps*dd || math.Abs(e[m]) <= eps*anorm {
					break
				}
			}
			if m == l {
				break // d[l] converged
			}
			if iter == maxQLIterationsPerEigenvalue {
				return ErrNoConvergence
			}
			// Implicit shift from the trailing 2×2.
			g := (d[l+1] - d[l]) / (2 * e[l])
			r := math.Hypot(g, 1)
			g = d[m] - d[l] + e[l]/(g+math.Copysign(r, g))
			s, c := 1.0, 1.0
			p := 0.0
			for i := m - 1; i >= l; i-- {
				f := s * e[i]
				b := c * e[i]
				r = math.Hypot(f, g)
				e[i+1] = r
				if r == 0 {
					d[i+1] -= p
					e[m] = 0
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2*c*b
				p = s * r
				d[i+1] = g + p
				g = c*r - b
				if z != nil {
					for k := 0; k < z.Rows(); k++ {
						f := z.At(k, i+1)
						z.Set(k, i+1, s*z.At(k, i)+c*f)
						z.Set(k, i, c*z.At(k, i)-s*f)
					}
				}
			}
			if r == 0 && m-1 >= l {
				continue
			}
			d[l] -= p
			e[l] = g
			e[m] = 0
		}
	}
	return nil
}

// EigenSym computes all eigenvalues (ascending) of the symmetric matrix a,
// and the matching eigenvectors as the columns of the returned matrix when
// wantVectors is set. The input is not modified.
func EigenSym(a *matrix.Dense, wantVectors bool) ([]float64, *matrix.Dense, error) {
	n := a.Rows()
	if a.Cols() != n {
		panic("spectral: EigenSym requires a square matrix")
	}
	if !a.IsSymmetric(symTol(a)) {
		return nil, nil, errors.New("spectral: EigenSym requires a symmetric matrix")
	}
	t, z := Householder(a, wantVectors)
	if err := QLImplicit(t, z); err != nil {
		return nil, nil, err
	}
	vals := t.D
	if !wantVectors {
		sort.Float64s(vals)
		return vals, nil, nil
	}
	// Sort eigenpairs ascending by value.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return vals[idx[i]] < vals[idx[j]] })
	sortedVals := make([]float64, n)
	vecs := matrix.NewDense(n, n)
	for newCol, oldCol := range idx {
		sortedVals[newCol] = vals[oldCol]
		for r := 0; r < n; r++ {
			vecs.Set(r, newCol, z.At(r, oldCol))
		}
	}
	return sortedVals, vecs, nil
}

// EigenvaluesSym is EigenSym without eigenvectors.
func EigenvaluesSym(a *matrix.Dense) ([]float64, error) {
	vals, _, err := EigenSym(a, false)
	return vals, err
}

// symTol picks a symmetry tolerance proportional to the matrix magnitude.
func symTol(a *matrix.Dense) float64 {
	return 1e-12 * (1 + a.MaxAbs())
}
