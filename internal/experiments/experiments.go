// Package experiments implements the reproduction harness: one function per
// experiment row of DESIGN.md §5, each regenerating the series that
// validates a theorem or lemma of the paper (or a comparison the paper
// makes against prior work). Every experiment returns a trace.Table whose
// rows pair the measured quantity with the paper's bound, so "who wins, by
// roughly what factor" can be read off directly; EXPERIMENTS.md records a
// reference run.
//
// All experiments are deterministic given Options.Seed. Options.Quick
// shrinks sweeps for use inside testing.B benchmarks.
package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/batch"
	"repro/internal/trace"
)

// Options configures an experiment run.
type Options struct {
	// Seed drives every randomized component (default 1).
	Seed int64
	// Quick shrinks parameter sweeps (fewer sizes, fewer repetitions) so a
	// run finishes in benchmark-friendly time.
	Quick bool
	// Workers is the batch-engine pool width used to fan an experiment's
	// parameter sweep out across goroutines (≤ 0 selects GOMAXPROCS).
	// Results are identical for any value: every sweep cell draws from its
	// own RNG stream derived from Seed and the cell index.
	Workers int
	// RoundWorkers is the round-level worker count handed to the steppers
	// an experiment drives directly (≤ 0 means serial rounds). Like
	// Workers it is a pure scheduling knob: tables are byte-identical for
	// any value.
	RoundWorkers int
	// ShardIndex/ShardCount restrict every sweep to the cells this process
	// owns, under the batch engine's assignment rule (cell i runs iff
	// i % ShardCount == ShardIndex). Foreign cells never run and their rows
	// are omitted, so m processes running the same experiment with shards
	// 0..m-1 emit disjoint row subsets that together form the full table —
	// the experiment-harness face of sharded sweeps. ShardCount ≤ 1 means
	// unsharded. Cell RNG streams derive from the cell index alone, so a
	// cell's row is bit-identical whether computed sharded or not.
	ShardIndex, ShardCount int
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// sweep fans body(i, rng) over every cell index in [0, n) through the batch
// engine's worker pool. Each cell gets an independent deterministic RNG
// stream, so tables no longer depend on a shared generator's visit order —
// or on Workers. Callers collect per-cell row values inside body and emit
// them in index order afterwards; a cell panic is re-raised here once the
// rest of the sweep has drained.
func (o Options) sweep(n int, body func(i int, rng *rand.Rand)) {
	errs := batch.ForEach(context.Background(), n, o.Workers, o.seed(), func(i int, rng *rand.Rand) error {
		if !batch.ShardOwns(i, o.ShardIndex, o.ShardCount) {
			return nil // another shard's cell: its process computes the row
		}
		body(i, rng)
		return nil
	})
	for _, err := range errs {
		if err != nil {
			panic(err)
		}
	}
}

// row holds one table row's values until the sweep finishes; nil rows
// (cells that declined to report) are skipped by emit.
type row []interface{}

// emit appends the collected rows to t in deterministic cell order.
func emit(t *trace.Table, rows []row) {
	for _, r := range rows {
		if r != nil {
			t.AddRowf(r...)
		}
	}
}

// Runner is the signature shared by all experiments.
type Runner func(Options) *trace.Table

// registry maps experiment ids (e.g. "E3", "A1") to runners; populated by
// init functions in the per-area files.
var registry = map[string]Runner{}

func register(id string, r Runner) {
	if _, dup := registry[id]; dup {
		panic(fmt.Sprintf("experiments: duplicate id %s", id))
	}
	registry[id] = r
}

// Lookup returns the runner for an experiment id.
func Lookup(id string) (Runner, bool) {
	r, ok := registry[id]
	return r, ok
}

// IDs returns all registered experiment ids, sorted with E* before A*.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		// E-experiments before A-ablations, then numeric order.
		pi, pj := out[i][0], out[j][0]
		if pi != pj {
			return pi == 'E'
		}
		var ni, nj int
		fmt.Sscanf(out[i][1:], "%d", &ni)
		fmt.Sscanf(out[j][1:], "%d", &nj)
		return ni < nj
	})
	return out
}
