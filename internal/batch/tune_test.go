package batch

import "testing"

func TestTuneWorkers(t *testing.T) {
	cases := []struct {
		name                 string
		units, n, procs      int
		wantUnits, wantRound int
	}{
		// Enough units to fill the machine: all cores go to the unit level,
		// steppers stay serial.
		{"unit-bound", 100, 1 << 16, 8, 8, 1},
		{"exactly-filled", 8, 1 << 16, 8, 8, 1},
		// Fewer units than cores and big graphs: leftover cores fan out
		// inside the steppers.
		{"round-spill", 2, 1 << 16, 8, 2, 4},
		{"uneven-spill", 3, 1 << 16, 8, 3, 2},
		{"single-unit", 1, 1 << 16, 8, 1, 8},
		// Small graphs never get round workers — goroutine overhead beats
		// the loop body below RoundParallelMinN nodes.
		{"too-small", 2, 64, 8, 2, 1},
		{"small-boundary", 2, RoundParallelMinN - 1, 8, 2, 1},
		{"at-boundary", 2, RoundParallelMinN, 8, 2, 4},
		// Degenerate inputs clamp instead of exploding.
		{"no-procs", 4, 1 << 16, 0, 1, 1},
		{"no-units", 0, 1 << 16, 4, 1, 4},
	}
	for _, c := range cases {
		gotU, gotR := TuneWorkers(c.units, c.n, c.procs)
		if gotU != c.wantUnits || gotR != c.wantRound {
			t.Errorf("%s: TuneWorkers(%d, %d, %d) = (%d, %d), want (%d, %d)",
				c.name, c.units, c.n, c.procs, gotU, gotR, c.wantUnits, c.wantRound)
		}
	}
}

func TestTuneWorkersNeverOversubscribes(t *testing.T) {
	for units := 1; units <= 20; units++ {
		for procs := 1; procs <= 16; procs++ {
			for _, n := range []int{64, RoundParallelMinN, 1 << 20} {
				u, r := TuneWorkers(units, n, procs)
				if u < 1 || r < 1 {
					t.Fatalf("TuneWorkers(%d, %d, %d) = (%d, %d): degenerate", units, n, procs, u, r)
				}
				if u*r > procs && !(u == 1 && r == 1) {
					t.Fatalf("TuneWorkers(%d, %d, %d) = (%d, %d): %d workers claim %d cores",
						units, n, procs, u, r, u*r, procs)
				}
			}
		}
	}
}

func TestWorkerSplitExplicitRoundWorkers(t *testing.T) {
	spec := Spec{
		Topologies: []string{"torus"},
		Algorithms: []string{"diffusion"},
		Modes:      []string{"continuous"},
		Workloads:  []string{"spike"},
		N:          64,
		Seeds:      []int64{1},
		Workers:    3,
	}

	// Default (RoundWorkers 0): steppers stay serial, pool width honored.
	u, r := spec.WorkerSplit()
	if u != 3 || r != 1 {
		t.Fatalf("default split = (%d, %d), want (3, 1)", u, r)
	}

	// Pinned: both knobs pass through untouched.
	spec.RoundWorkers = 5
	if u, r = spec.WorkerSplit(); u != 3 || r != 5 {
		t.Fatalf("pinned split = (%d, %d), want (3, 5)", u, r)
	}
}

func TestWorkerSplitAutoTunes(t *testing.T) {
	spec := Spec{
		Topologies:   []string{"torus"},
		Algorithms:   []string{"diffusion"},
		Modes:        []string{"continuous"},
		Workloads:    []string{"spike"},
		N:            64,
		Seeds:        []int64{1, 2, 3},
		RoundWorkers: -1,
	}
	// Small n: auto must refuse round fan-out whatever the unit count.
	u, r := spec.WorkerSplit()
	if r != 1 {
		t.Fatalf("auto split on n=64 gave %d round workers, want 1", r)
	}
	if u < 1 {
		t.Fatalf("auto split gave %d unit workers", u)
	}
}
