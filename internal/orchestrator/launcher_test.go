package orchestrator

import (
	"bytes"
	"context"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/batch"
	"repro/internal/core"
)

// TestTaskArgsWholeShardMatchesShardArgs: a whole-shard task without origin
// must spawn the exact command line the pre-Launcher supervisor did — that
// equality is what keeps plain local supervision byte-identical across the
// Launcher refactor.
func TestTaskArgsWholeShardMatchesShardArgs(t *testing.T) {
	p, err := NewPlan(testSpec(), 2, "d")
	if err != nil {
		t.Fatal(err)
	}
	for _, resume := range []bool{false, true} {
		for i, task := range p.Tasks() {
			got := p.TaskArgs(task, resume)
			want := p.ShardArgs(i, resume)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("TaskArgs(s%d, resume=%v) = %v, want ShardArgs %v", i, resume, got, want)
			}
		}
	}
}

// TestTaskArgsWindowAndOrigin: stolen sub-shards carry their unit window and
// provenance on the command line — bounded windows as -units lo:hi, the
// unbounded tail as -units lo:.
func TestTaskArgsWindowAndOrigin(t *testing.T) {
	p, err := NewPlan(testSpec(), 2, "d")
	if err != nil {
		t.Fatal(err)
	}
	task := &Task{
		Shard:   p.Shards[0],
		Lo:      2,
		Hi:      6,
		Journal: filepath.Join("d", "shard-0-steal-1.jsonl"),
		Label:   "s0.1",
		Origin:  "steal:s0",
	}
	args := strings.Join(p.TaskArgs(task, false), " ")
	for _, want := range []string{"-shard 0/2", "-units 2:6", "-origin steal:s0"} {
		if !strings.Contains(args, want) {
			t.Fatalf("args %q missing %q", args, want)
		}
	}
	task.Hi = 0 // the shape every steal's last sub-shard has
	if args := strings.Join(p.TaskArgs(task, false), " "); !strings.Contains(args, "-units 2: ") {
		t.Fatalf("unbounded tail args %q missing '-units 2:'", args)
	}
}

// fakeLauncher runs attempts in-process: each one executes its task's exact
// shard/window slice through the real engine, journaling exactly as a
// spawned lbbench would. Tasks matched by stall write their first owned unit
// and then hang until killed — a deterministic straggler for the steal path.
type fakeLauncher struct {
	spec  batch.Spec
	stall func(t *Task) bool
}

type fakeHandle struct {
	cancel context.CancelFunc
	done   chan error
}

func (l *fakeLauncher) Name() string { return "fake" }
func (l *fakeLauncher) Slots() int   { return 0 }

func (l *fakeLauncher) Launch(ctx context.Context, t *Task, args []string) (Handle, error) {
	ctx, cancel := context.WithCancel(ctx)
	h := &fakeHandle{cancel: cancel, done: make(chan error, 1)}
	go func() { h.done <- l.attempt(ctx, t) }()
	return h, nil
}

func (l *fakeLauncher) attempt(ctx context.Context, t *Task) error {
	spec, err := l.spec.Shard(t.Shard.Index, t.Shard.Count)
	if err != nil {
		return err
	}
	lo, hi := t.Lo, t.Hi
	stall := l.stall != nil && l.stall(t)
	if stall {
		hi = t.Shard.Index + 1 // exactly the shard's first owned unit
	}
	if lo > 0 || hi > 0 {
		if spec, err = spec.Range(lo, hi); err != nil {
			return err
		}
	}
	sink, err := batch.CreateJSONL(t.Journal)
	if err != nil {
		return err
	}
	sink.Origin = t.Origin
	if _, err := core.GridRun(ctx, spec, core.GridSink(sink)); err != nil {
		sink.Close()
		return err
	}
	if err := sink.Close(); err != nil {
		return err
	}
	if stall {
		<-ctx.Done()
		return ctx.Err()
	}
	return nil
}

func (l *fakeLauncher) Signal(h Handle, sig os.Signal) error {
	h.(*fakeHandle).cancel()
	return nil
}

func (l *fakeLauncher) Wait(h Handle) error        { return <-h.(*fakeHandle).done }
func (l *fakeLauncher) FetchJournal(t *Task) error { return nil }

// TestSupervisorStealsFromStalledTask is the elastic contract end to end in
// process: shard 0 journals one unit and wedges, the supervisor kills it,
// carves its unstarted range into stolen sub-shards with provenance, and the
// merged report over victim + thieves + healthy shards is byte-identical to
// an uninterrupted single-process sweep.
func TestSupervisorStealsFromStalledTask(t *testing.T) {
	spec := testSpec()
	p, err := NewPlan(spec, 2, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var log bytes.Buffer
	s := &Supervisor{
		Plan:      p,
		Launchers: []Launcher{&fakeLauncher{spec: p.Spec, stall: func(t *Task) bool { return t.Label == "s0" }}},
		Policy: Policy{
			MaxRetries: 0,
			Interval:   5 * time.Millisecond,
			StealAfter: 50 * time.Millisecond,
		},
		Log: &log,
	}
	if err := s.Run(context.Background()); err != nil {
		t.Fatalf("Run: %v\nlog:\n%s", err, log.String())
	}
	out := log.String()
	if !strings.Contains(out, "killing it to steal its remaining units") {
		t.Fatalf("steal trigger not reported:\n%s", out)
	}
	if !strings.Contains(out, "reassigned to") || !strings.Contains(out, "stolen sub-shard(s)") {
		t.Fatalf("carve not reported:\n%s", out)
	}
	if !strings.Contains(out, "steals 1") {
		t.Fatalf("steal count missing from the final render:\n%s", out)
	}

	// The journal set is victim + thieves + the healthy shard; the thieves
	// carry provenance in their headers.
	var thieves []string
	for _, path := range s.finalJournals {
		if strings.Contains(filepath.Base(path), "-steal-") {
			thieves = append(thieves, path)
		}
	}
	if len(thieves) == 0 {
		t.Fatalf("no stolen journals in the final set %v", s.finalJournals)
	}
	for _, path := range thieves {
		pr, err := batch.ScanJournalProgressFile(path)
		if err != nil || len(pr.Origins) == 0 || pr.Origins[0] != "steal:s0" {
			t.Fatalf("stolen journal %s origin = %v (err %v), want steal:s0", path, pr.Origins, err)
		}
	}

	// Acceptance: the merge over the stolen journal set renders the same
	// bytes a single-process sweep does.
	full, err := core.GridRun(context.Background(), p.Spec)
	if err != nil {
		t.Fatal(err)
	}
	var want, got bytes.Buffer
	if err := full.RenderCSV(&want); err != nil {
		t.Fatal(err)
	}
	failed, err := p.MergeReportFrom(context.Background(), s.finalJournals, "csv", false, &got, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if failed != 0 {
		t.Fatalf("%d failed units", failed)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("stolen merge differs from single-process sweep:\n--- merged\n%s\n--- full\n%s", got.String(), want.String())
	}
}

// sshStub fakes the ssh client: argv is (host, command) and the stub simply
// runs the command in a local shell — the launcher cannot tell the
// difference, so the full remote protocol (pid files, kill-by-pid, cat
// fetches) is exercised without a network.
func sshStub(t *testing.T) []string {
	t.Helper()
	return stubCommand(t, `shift
exec /bin/sh -c "$1"`)
}

// TestSSHLauncherLaunchWaitFetch: a launch runs the remote command (which
// records its pid and execs the payload), Wait sees its exit, and
// FetchJournal mirrors the remote journal bytes home atomically.
func TestSSHLauncherLaunchWaitFetch(t *testing.T) {
	dir := t.TempDir()
	// The payload stands in for lbbench: write a complete journal at the
	// -out path (its last argument).
	payload := stubCommand(t, lastArg+`
printf '{"spec":{}}\n' > "$j"`)
	l := &SSHLauncher{
		Host:   "fakehost",
		SSH:    sshStub(t),
		Remote: strings.Join(payload, " "),
	}
	if l.Slots() != 1 {
		t.Fatalf("ssh Slots() = %d, want the conservative default 1", l.Slots())
	}
	task := &Task{Journal: filepath.Join(dir, "shard-0.jsonl"), Label: "s0"}
	h, err := l.Launch(context.Background(), task, []string{"-out", task.Journal})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Wait(h); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if _, err := os.Stat(task.Journal + ".pid"); err != nil {
		t.Fatalf("remote pid file not recorded: %v", err)
	}
	want, err := os.ReadFile(task.Journal)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.FetchJournal(task); err != nil {
		t.Fatalf("FetchJournal: %v", err)
	}
	got, err := os.ReadFile(task.Journal)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("fetched journal differs: %q vs %q (err %v)", got, want, err)
	}
	// A journal the remote side has not created yet leaves the local copy
	// alone instead of truncating it.
	missing := &Task{Journal: filepath.Join(dir, "never-started.jsonl"), Label: "s9"}
	if err := l.FetchJournal(missing); err != nil {
		t.Fatalf("FetchJournal(missing): %v", err)
	}
	if _, err := os.Stat(missing.Journal); !os.IsNotExist(err) {
		t.Fatal("fetch of a missing remote journal created a local file")
	}
}

// TestSSHLauncherRemoteDir: with RemoteDir set, the attempt journals (and
// records its pid) under the relocated remote path — the -out operand is
// rewritten — and FetchJournal mirrors those bytes home to the plan's local
// path. This is what keeps ssh-to-localhost (or any shared-filesystem host)
// from fetching a journal over the very file the attempt is appending to.
func TestSSHLauncherRemoteDir(t *testing.T) {
	local := t.TempDir()
	remote := filepath.Join(t.TempDir(), "relocated")
	payload := stubCommand(t, lastArg+`
printf '{"spec":{}}\n' > "$j"`)
	l := &SSHLauncher{
		Host:      "fakehost",
		SSH:       sshStub(t),
		Remote:    strings.Join(payload, " "),
		RemoteDir: remote,
	}
	task := &Task{Journal: filepath.Join(local, "shard-0.jsonl"), Label: "s0"}
	h, err := l.Launch(context.Background(), task, []string{"-out", task.Journal})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Wait(h); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	rj := filepath.Join(remote, "shard-0.jsonl")
	want, err := os.ReadFile(rj)
	if err != nil {
		t.Fatalf("attempt did not journal under RemoteDir: %v", err)
	}
	if _, err := os.Stat(rj + ".pid"); err != nil {
		t.Fatalf("pid file not relocated: %v", err)
	}
	if _, err := os.Stat(task.Journal); !os.IsNotExist(err) {
		t.Fatal("attempt wrote the local journal path directly")
	}
	if err := l.FetchJournal(task); err != nil {
		t.Fatalf("FetchJournal: %v", err)
	}
	got, err := os.ReadFile(task.Journal)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("fetched journal differs: %q vs %q (err %v)", got, want, err)
	}
}

// TestSSHLauncherSignalKillsByRemotePid: the steal path's SIGKILL reaches
// the remote process through the pid file, not the ssh client.
func TestSSHLauncherSignalKillsByRemotePid(t *testing.T) {
	dir := t.TempDir()
	l := &SSHLauncher{Host: "fakehost", SSH: sshStub(t), Remote: "exec sleep 30"}
	task := &Task{Journal: filepath.Join(dir, "shard-0.jsonl"), Label: "s0"}
	h, err := l.Launch(context.Background(), task, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The pid file lands just before the payload execs; wait for it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(task.Journal + ".pid"); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("pid file never appeared")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := l.Signal(h, syscall.SIGKILL); err != nil {
		t.Fatalf("Signal: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- l.Wait(h) }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Wait returned nil for a killed attempt")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Wait did not return after the remote kill")
	}
}

// TestSlurmLauncher drives the submit/poll/cancel protocol against stub
// sbatch/squeue/scancel: the job id round-trips from --parsable output to
// scancel, Wait returns when the job leaves the queue, and non-kill signals
// go through scancel -s.
func TestSlurmLauncher(t *testing.T) {
	dir := t.TempDir()
	record := func(name, extra string) []string {
		return stubCommand(t, `printf '%s\n' "$*" > `+shellQuote(filepath.Join(dir, name))+`
`+extra)
	}
	l := &SlurmLauncher{
		Sbatch: record("sbatch.args", `echo "42;cluster"`),
		// First poll: still in the queue. Later polls: gone.
		Squeue: record("squeue.args", `marker=`+shellQuote(filepath.Join(dir, "polled"))+`
if [ ! -f "$marker" ]; then touch "$marker"; echo "42 lb-s0 RUNNING"; fi`),
		Scancel: record("scancel.args", ""),
		Remote:  "lbbench",
		Poll:    10 * time.Millisecond,
	}
	task := &Task{Journal: filepath.Join(dir, "shard-0.jsonl"), Label: "s0"}
	h, err := l.Launch(context.Background(), task, []string{"-shard", "0/2", "-out", task.Journal})
	if err != nil {
		t.Fatal(err)
	}
	sbatch, err := os.ReadFile(filepath.Join(dir, "sbatch.args"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"--job-name lb-s0", "--error " + task.Journal + ".stderr", "lbbench -shard 0/2"} {
		if !strings.Contains(string(sbatch), want) {
			t.Fatalf("sbatch args %q missing %q", sbatch, want)
		}
	}
	if err := l.Signal(h, syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	if b, _ := os.ReadFile(filepath.Join(dir, "scancel.args")); strings.TrimSpace(string(b)) != "-s 2 42" {
		t.Fatalf("scancel args %q, want '-s 2 42'", b)
	}
	if err := l.Signal(h, syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	if b, _ := os.ReadFile(filepath.Join(dir, "scancel.args")); strings.TrimSpace(string(b)) != "42" {
		t.Fatalf("plain-kill scancel args %q, want '42'", b)
	}
	done := make(chan error, 1)
	go func() { done <- l.Wait(h) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Wait: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Wait did not return after the job left the queue")
	}
}
