package core

import (
	"context"
	"fmt"

	"repro/internal/batch"
	"repro/internal/graph"
)

// BalanceGrid expands the declarative sweep spec into independent run units
// and executes every (topology × algorithm × mode × workload × scenario ×
// seed) combination through Balance on the batch engine's worker pool. Per-unit
// RNG streams are derived from each unit's identity, so the aggregated
// report is identical for any Spec.Workers value — one invocation with
// Workers = GOMAXPROCS reproduces a whole paper figure's grid at full
// hardware speed. Per-(topology, n) spectral quantities (λ₂, γ) are
// memoized in the shared speccache, so they are computed once per process,
// not once per unit.
//
// Algorithm/mode combinations Balance rejects (e.g. firstorder × discrete)
// surface as per-cell errors in the report, not as an overall failure.
func BalanceGrid(spec batch.Spec) (*batch.Report, error) {
	return BalanceGridContext(context.Background(), spec)
}

// BalanceGridContext is BalanceGrid with cancellation: units not yet
// started when ctx fires record the context error in their cells, and the
// partial report is returned together with ctx.Err().
func BalanceGridContext(ctx context.Context, spec batch.Spec) (*batch.Report, error) {
	return BalanceGridSink(ctx, spec, nil)
}

// BalanceGridSink is BalanceGridContext with a streaming sink: every
// finished cell is also delivered to sink in expansion order as the sweep
// progresses (typically a batch.JSONLSink journal, which makes long sweeps
// crash-resumable). sink may be nil.
func BalanceGridSink(ctx context.Context, spec batch.Spec, sink batch.Sink) (*batch.Report, error) {
	if err := validateGridSpec(spec); err != nil {
		return nil, err
	}
	return batch.RunSink(ctx, spec, balanceRunFunc(spec), sink)
}

// BalanceGridResume re-runs spec against a partial JSONL journal: units
// journaled with a clean outcome are replayed by Key without re-running;
// missing and failed units execute normally. The merged report (and the
// stream written to sink) is byte-identical to an uninterrupted run of the
// same spec — see batch.Resume, including its refusal of journals recorded
// under different run parameters. A nil journal degrades to
// BalanceGridSink.
func BalanceGridResume(ctx context.Context, spec batch.Spec, journal *batch.Journal, sink batch.Sink) (*batch.Report, error) {
	if err := validateGridSpec(spec); err != nil {
		return nil, err
	}
	return batch.Resume(ctx, spec, balanceRunFunc(spec), journal, sink)
}

// BalanceGridSharded runs shard `shard` of `of` of the sweep: the slice of
// the expansion whose unit indices are ≡ shard (mod of), so the `of` shard
// processes together cover every unit exactly once. Each shard journals to
// its own sink; batch.MergeJournals (or lbbench -merge) reassembles the
// per-shard journals into one report byte-identical to a single-process
// sweep. journal may carry the shard's own partial journal to resume a
// shard that died partway; nil starts fresh.
func BalanceGridSharded(ctx context.Context, spec batch.Spec, shard, of int, journal *batch.Journal, sink batch.Sink) (*batch.Report, error) {
	sharded, err := spec.Shard(shard, of)
	if err != nil {
		return nil, err
	}
	return BalanceGridResume(ctx, sharded, journal, sink)
}

// BalanceGridStream is the streaming-only sweep: cells are delivered to
// sink (typically a batch.AggSink, alone or fanned out with a journal via
// batch.MultiSink) and never materialized in an in-process report, so
// memory stays independent of the unit count. journal resumes a partial
// sweep exactly as BalanceGridResume would; nil starts fresh. Combine with
// a sharded spec to stream one shard of a multi-process sweep.
func BalanceGridStream(ctx context.Context, spec batch.Spec, journal *batch.Journal, sink batch.Sink) error {
	if err := validateGridSpec(spec); err != nil {
		return err
	}
	return batch.ResumeStream(ctx, spec, balanceRunFunc(spec), journal, sink)
}

// ValidateGridSpec rejects every spec BalanceGrid would reject, without
// running any unit: dimension validation (empty/duplicate entries,
// duplicate seeds), algorithm names, and topology buildability at spec.N.
// The topology check constructs each graph (and discards it — the sweep
// builds its own), so call this only when an early failure protects a side
// effect, in particular before truncating a journal file that a failed
// sweep could not repopulate.
func ValidateGridSpec(spec batch.Spec) error {
	if err := validateGridSpec(spec); err != nil {
		return err
	}
	_, err := batch.BuildGraphs(spec)
	return err
}

// validateGridSpec rejects bad specs up front: a typo'd algorithm or an
// empty/duplicated dimension should fail the sweep, not silently error
// every cell.
func validateGridSpec(spec batch.Spec) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	for _, name := range spec.Algorithms {
		if _, err := ParseAlgorithm(name); err != nil {
			return err
		}
	}
	return nil
}

// balanceRunFunc adapts Balance to the engine's RunFunc. The round-level
// worker width is resolved from the spec's hybrid split once, up front —
// every unit's stepper fans its node loops that wide (results are
// byte-identical for any width, so this is purely a scheduling choice).
func balanceRunFunc(spec batch.Spec) batch.RunFunc {
	_, roundWorkers := spec.WorkerSplit()
	return func(u batch.Unit, g *graph.G, loads []float64, algoSeed int64) (batch.Outcome, error) {
		alg, err := ParseAlgorithm(u.Algorithm)
		if err != nil {
			return batch.Outcome{}, err
		}
		mode := Continuous
		if u.Mode == "discrete" {
			mode = Discrete
		}
		res, err := Balance(Config{
			Graph:        g,
			Algorithm:    alg,
			Mode:         mode,
			Loads:        loads,
			Epsilon:      spec.Epsilon,
			MaxRounds:    spec.MaxRounds,
			Seed:         nonZeroSeed(algoSeed),
			Workers:      roundWorkers,
			Scenario:     u.ScenarioSpec,
			ScenarioSeed: nonZeroSeed(u.ScenarioSeed()),
		})
		if err != nil {
			return batch.Outcome{}, fmt.Errorf("%s: %w", u.Key(), err)
		}
		return batch.Outcome{
			Rounds:          res.Rounds,
			Converged:       res.Converged,
			PhiStart:        res.PhiStart,
			PhiEnd:          res.PhiEnd,
			Bound:           res.Bound,
			BoundName:       res.BoundName,
			PeakPhi:         res.PeakPhi,
			SteadyRMS:       res.SteadyRMS,
			RebalanceRounds: res.RebalanceRounds,
		}, nil
	}
}

// nonZeroSeed keeps a derived seed out of Balance's "0 means default"
// convention.
func nonZeroSeed(s int64) int64 {
	if s == 0 {
		return 1
	}
	return s
}
