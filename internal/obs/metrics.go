package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one constant name=value pair attached to a metric at
// registration. Labels distinguish series within a family (the same metric
// name) — e.g. speccache_computes_total{quantity="lambda2"} vs {"gamma"}.
type Label struct {
	Key, Value string
}

// L is shorthand for building a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing integer metric with an atomic hot
// path. The zero value is usable but unregistered; get registered instances
// from Registry.Counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored — counters only go up).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 metric that can go up and down (atomic via the bit
// pattern).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add folds a delta in with a CAS loop.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram: cumulative-style exposition over
// explicit upper bounds, an implicit +Inf bucket, and an exact sum/count.
// Observe is a binary search plus two atomic adds (three with the CAS'd
// float sum) — cheap enough to run per round in a live daemon.
type Histogram struct {
	bounds  []float64 // sorted upper bounds, +Inf excluded
	counts  []atomic.Uint64
	inf     atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bucket whose bound is ≥ v (buckets are cumulative upper bounds).
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.bounds) {
		h.counts[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (q in [0,1]) from the bucket counts:
// the upper bound of the first bucket whose cumulative count reaches
// q·total. Samples past the last bound report the last bound (the histogram
// cannot see further). Returns 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		if cum >= rank {
			return b
		}
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// ExpBuckets returns n exponentially growing upper bounds start,
// start·factor, start·factor², … — the standard shape for latency and
// backlog histograms whose samples span orders of magnitude.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets wants start > 0, factor > 1, n ≥ 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// metricKind is the Prometheus TYPE of one family.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// series is one registered metric instance: a label set plus its value
// source (exactly one of the pointers, or the collect func, is set).
type series struct {
	labels  []Label
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	// collect, when set, is sampled at scrape time — the bridge for
	// subsystems that keep their own counters (spectral solve paths) but
	// still expose them through the unified registry.
	collect func() float64
}

// family groups every series sharing one metric name (and therefore one
// TYPE and HELP line).
type family struct {
	name   string
	help   string
	kind   metricKind
	series []*series
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. Registration is idempotent per (name, labels): asking
// for an already-registered series returns the existing instance, so
// package-level metric vars and per-call registration both work.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// getFamily finds or creates the named family, enforcing one kind per name.
func (r *Registry) getFamily(name, help string, kind metricKind) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind}
		r.families[name] = f
		r.order = append(r.order, name)
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %s re-registered as %s (was %s)", name, kind, f.kind))
	}
	return f
}

// find returns the family's series with exactly these labels, or nil.
func (f *family) find(labels []Label) *series {
	for _, s := range f.series {
		if labelsEqual(s.labels, labels) {
			return s
		}
	}
	return nil
}

func labelsEqual(a, b []Label) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Counter returns the registered counter for (name, labels), creating it on
// first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, kindCounter)
	if s := f.find(labels); s != nil {
		return s.counter
	}
	s := &series{labels: labels, counter: &Counter{}}
	f.series = append(f.series, s)
	return s.counter
}

// Gauge returns the registered gauge for (name, labels), creating it on
// first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, kindGauge)
	if s := f.find(labels); s != nil {
		return s.gauge
	}
	s := &series{labels: labels, gauge: &Gauge{}}
	f.series = append(f.series, s)
	return s.gauge
}

// Histogram returns the registered histogram for (name, labels) with the
// given upper bounds, creating it on first use (the bounds of an existing
// series are kept).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, kindHistogram)
	if s := f.find(labels); s != nil {
		return s.hist
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	s := &series{labels: labels, hist: &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b))}}
	f.series = append(f.series, s)
	return s.hist
}

// CounterFunc registers a counter series whose value is sampled by fn at
// scrape time — for subsystems that already keep their own monotonic
// counters. Re-registering the same (name, labels) replaces fn.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.registerFunc(name, help, kindCounter, fn, labels)
}

// GaugeFunc is CounterFunc for gauges (e.g. runtime.NumGoroutine at scrape).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.registerFunc(name, help, kindGauge, fn, labels)
}

func (r *Registry) registerFunc(name, help string, kind metricKind, fn func() float64, labels []Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, kind)
	if s := f.find(labels); s != nil {
		s.collect = fn
		return
	}
	f.series = append(f.series, &series{labels: labels, collect: fn})
}

// WritePrometheus renders every registered family in Prometheus text
// exposition format (version 0.0.4): HELP and TYPE once per family, one
// line per series (histograms expand to _bucket/_sum/_count), families in
// registration order, series in label order within a family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()

	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		r.mu.Lock()
		ss := append([]*series(nil), f.series...)
		r.mu.Unlock()
		sort.Slice(ss, func(i, j int) bool { return labelString(ss[i].labels) < labelString(ss[j].labels) })
		for _, s := range ss {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, s *series) error {
	ls := labelString(s.labels)
	switch {
	case s.hist != nil:
		var cum uint64
		for i, b := range s.hist.bounds {
			cum += s.hist.counts[i].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelStringWith(s.labels, "le", formatFloat(b)), cum); err != nil {
				return err
			}
		}
		cum += s.hist.inf.Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelStringWith(s.labels, "le", "+Inf"), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, ls, formatFloat(s.hist.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, ls, s.hist.Count())
		return err
	case s.collect != nil:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, ls, formatFloat(s.collect()))
		return err
	case s.counter != nil:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, ls, s.counter.Value())
		return err
	case s.gauge != nil:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, ls, formatFloat(s.gauge.Value()))
		return err
	}
	return nil
}

// labelString renders {k="v",...} ("" when empty).
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, escapeLabel(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

// labelStringWith is labelString with one extra pair appended (the
// histogram "le" bound).
func labelStringWith(labels []Label, key, value string) string {
	all := make([]Label, 0, len(labels)+1)
	all = append(all, labels...)
	all = append(all, Label{Key: key, Value: value})
	return labelString(all)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	// %q already escapes backslash, quote and newline the way the
	// exposition format wants; the value goes through labelString's %q.
	return s
}

// formatFloat renders a float the way Prometheus parsers expect: shortest
// round-trip representation, integers without an exponent.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
