package scenario

import (
	"bytes"
	"math"
	"os"
	"reflect"
	"strings"
	"testing"

	"repro/internal/graph"
)

// TestTraceRoundTripBytes: write → read → rewrite must reproduce the file
// byte-for-byte. This is the invariant CI's serve-smoke leans on when it
// cmp's a re-recorded trace against the committed one.
func TestTraceRoundTripBytes(t *testing.T) {
	events := []Event{
		{Round: 0, Node: 3, Amount: 5000},
		{Round: 0, Node: 11, Amount: 125.5},
		{Round: 2, Node: 0, Amount: 0.125},
		{Round: 7, Node: 15, Amount: 9e6},
	}
	var first bytes.Buffer
	tw := NewTraceWriter(&first)
	for _, e := range events {
		if err := tw.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	if tw.Count() != len(events) {
		t.Fatalf("Count = %d, want %d", tw.Count(), len(events))
	}

	got, err := ReadTrace(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, events) {
		t.Fatalf("read back %+v, want %+v", got, events)
	}

	var second bytes.Buffer
	tw2 := NewTraceWriter(&second)
	for _, e := range got {
		if err := tw2.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw2.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("rewrite is not byte-identical:\n first %q\nsecond %q", first.String(), second.String())
	}
}

// TestTraceFileRoundTrip: the file-owning paths (CreateTrace / ReadTraceFile)
// agree with the stream paths.
func TestTraceFileRoundTrip(t *testing.T) {
	path := t.TempDir() + "/trace.jsonl"
	events := []Event{
		{Round: 0, Node: 1, Amount: 10},
		{Round: 3, Node: 2, Amount: 20},
	}
	tw, err := CreateTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if err := tw.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, events) {
		t.Fatalf("ReadTraceFile = %+v, want %+v", got, events)
	}
}

// TestReadTraceRejects: malformed streams fail loudly with line numbers
// instead of replaying a silently different workload.
func TestReadTraceRejects(t *testing.T) {
	for _, tc := range []struct {
		name, in string
	}{
		{"garbage", "not json\n"},
		{"negative round", `{"k":-1,"node":0,"amt":1}` + "\n"},
		{"negative node", `{"k":0,"node":-2,"amt":1}` + "\n"},
		{"zero amount", `{"k":0,"node":0,"amt":0}` + "\n"},
		{"negative amount", `{"k":0,"node":0,"amt":-5}` + "\n"},
		{"nan amount", `{"k":0,"node":0,"amt":"x"}` + "\n"},
		{"round order", `{"k":3,"node":0,"amt":1}` + "\n" + `{"k":1,"node":0,"amt":1}` + "\n"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadTrace(strings.NewReader(tc.in)); err == nil {
				t.Fatalf("accepted %q", tc.in)
			}
		})
	}

	// Blank lines are fine.
	got, err := ReadTrace(strings.NewReader("\n" + `{"k":0,"node":0,"amt":1}` + "\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("got %d events, want 1", len(got))
	}
}

// TestTraceWriterRejects: the writer enforces the reader's contract, so a
// recorded trace is always replayable.
func TestTraceWriterRejects(t *testing.T) {
	tw := NewTraceWriter(&bytes.Buffer{})
	for _, e := range []Event{
		{Round: -1, Node: 0, Amount: 1},
		{Round: 0, Node: -1, Amount: 1},
		{Round: 0, Node: 0, Amount: 0},
		{Round: 0, Node: 0, Amount: math.Inf(1)},
		{Round: 0, Node: 0, Amount: math.NaN()},
	} {
		if err := tw.Append(e); err == nil {
			t.Errorf("accepted invalid event %+v", e)
		}
	}
	if err := tw.Append(Event{Round: 5, Node: 0, Amount: 1}); err != nil {
		t.Fatal(err)
	}
	if err := tw.Append(Event{Round: 4, Node: 0, Amount: 1}); err == nil {
		t.Error("accepted decreasing round")
	}
	if err := tw.Append(Event{Round: 5, Node: 1, Amount: 1}); err != nil {
		t.Errorf("rejected same-round event: %v", err)
	}
}

// TestTraceInstanceReplay: a trace:<file> scenario instance injects exactly
// the recorded events at the recorded rounds, nothing else, and is stable
// across re-instantiation (no hidden RNG).
func TestTraceInstanceReplay(t *testing.T) {
	path := t.TempDir() + "/trace.jsonl"
	if err := os.WriteFile(path, []byte(
		`{"k":0,"node":1,"amt":100}`+"\n"+
			`{"k":0,"node":3,"amt":50}`+"\n"+
			`{"k":2,"node":0,"amt":7}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	sp, err := Parse("trace:" + path)
	if err != nil {
		t.Fatal(err)
	}
	if sp.String() != "trace:"+path {
		t.Fatalf("String() = %q", sp.String())
	}
	g := graph.Cycle(4)
	inst, err := sp.New(g, 1000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if inst.ArrivalFree() {
		t.Fatal("trace instance claims to be arrival-free")
	}
	loads := make([]float64, 4)
	wantRounds := map[int][]Arrival{
		0: {{Node: 1, Amount: 100}, {Node: 3, Amount: 50}},
		2: {{Node: 0, Amount: 7}},
	}
	for k := 0; k < 5; k++ {
		if inst.Graph(k) != g {
			t.Fatalf("round %d: trace scenario mutated the graph", k)
		}
		got := inst.Arrivals(k, loads)
		if !reflect.DeepEqual(got, wantRounds[k]) {
			t.Fatalf("round %d arrivals = %+v, want %+v", k, got, wantRounds[k])
		}
	}

	// Out-of-range node: loud error at instantiation, not a silent panic
	// mid-run.
	small := graph.Cycle(3)
	if _, err := sp.New(small, 1000, nil); err == nil {
		t.Fatal("accepted a trace targeting nodes the graph does not have")
	}
}
