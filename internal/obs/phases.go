package obs

import "time"

// Phase identifies one timed section of a core.Session's life.
type Phase int

const (
	PhaseSpectra   Phase = iota // spectral solve during Open / SwapGraph
	PhaseStep                   // one balancing round's matching + transfer
	PhaseInject                 // mid-round scenario injection
	PhaseCommit                 // potential evaluation + trace append
	PhaseGraphSwap              // topology swap between rounds
	numPhases
)

// String returns the phase name used in span names and trace args.
func (p Phase) String() string {
	switch p {
	case PhaseSpectra:
		return "spectra"
	case PhaseStep:
		return "step"
	case PhaseInject:
		return "inject"
	case PhaseCommit:
		return "commit"
	case PhaseGraphSwap:
		return "graph-swap"
	}
	return "unknown"
}

// Phases accumulates per-phase wall time for one session. It is owned by a
// single unit's goroutine (the batch engine runs each cell on one worker),
// so the adds are plain, not atomic. The nil *Phases is a valid no-op
// receiver, and call sites gate their time.Now() pairs behind Enabled() so
// a disabled run pays nothing.
type Phases struct {
	ns    [numPhases]int64
	count [numPhases]int64
}

// Enabled reports whether timings are being collected; callers skip the
// clock reads entirely when false.
func (p *Phases) Enabled() bool { return p != nil }

// Observe adds one timed occurrence of phase.
func (p *Phases) Observe(phase Phase, d time.Duration) {
	if p == nil {
		return
	}
	p.ns[phase] += int64(d)
	p.count[phase]++
}

// Duration returns the accumulated wall time in phase.
func (p *Phases) Duration(phase Phase) time.Duration {
	if p == nil {
		return 0
	}
	return time.Duration(p.ns[phase])
}

// Count returns how many times phase was observed.
func (p *Phases) Count(phase Phase) int64 {
	if p == nil {
		return 0
	}
	return p.count[phase]
}

// Total returns the sum over all phases.
func (p *Phases) Total() time.Duration {
	if p == nil {
		return 0
	}
	var t int64
	for i := Phase(0); i < numPhases; i++ {
		t += p.ns[i]
	}
	return time.Duration(t)
}

// EmitSpans tiles one synthetic child span per non-empty phase inside the
// parent unit span on tid, starting at start (µs on the tracer clock). The
// durations are real measurements; the offsets are synthetic — phases
// interleave across rounds, so the trace shows each phase's total as one
// contiguous block rather than thousands of per-round slivers.
func (p *Phases) EmitSpans(t *Tracer, tid, start int64) {
	if p == nil || t == nil {
		return
	}
	at := start
	for i := Phase(0); i < numPhases; i++ {
		if p.ns[i] == 0 {
			continue
		}
		dur := p.ns[i] / 1000 // ns → µs
		t.CompleteAt(i.String(), "phase", tid, at, dur, map[string]any{"count": p.count[i]})
		if dur < 1 {
			dur = 1
		}
		at += dur
	}
}
