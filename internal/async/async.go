// Package async implements an asynchronous, edge-at-a-time balancer in the
// spirit of Cortés et al. [5], which the paper cites as the asynchronous
// counterpart of its model: at every tick one edge is activated (drawn
// uniformly, or round-robin) and its endpoints balance pairwise — to the
// exact average in the continuous case, moving ⌊diff/2⌋ tokens in the
// discrete case.
//
// The asynchronous process is the degenerate end of the paper's
// sequentialization spectrum — zero concurrency — so comparing it against
// Algorithm 1 at equal *edge-activation budgets* (one synchronous round of
// Algorithm 1 activates all m edges; m async ticks activate m random ones)
// quantifies from the other side what the paper's proof technique bounds:
// how much performance concurrency costs or buys. The A5 ablation runs that
// comparison.
package async

import (
	"math/rand"

	"repro/internal/graph"
	"repro/internal/load"
)

// Schedule selects how the next edge is chosen.
type Schedule int

const (
	// UniformRandom draws each tick's edge uniformly at random.
	UniformRandom Schedule = iota
	// RoundRobin cycles deterministically through the edge list.
	RoundRobin
)

// String implements fmt.Stringer.
func (s Schedule) String() string {
	if s == RoundRobin {
		return "roundrobin"
	}
	return "uniform"
}

// Continuous is the asynchronous continuous balancer.
type Continuous struct {
	G        *graph.G
	Load     *load.Continuous
	Schedule Schedule
	RNG      *rand.Rand

	tick int
}

// NewContinuous creates a balancer over a copy of the initial loads.
func NewContinuous(g *graph.G, initial []float64, sched Schedule, rng *rand.Rand) *Continuous {
	if len(initial) != g.N() {
		panic("async: initial load length mismatch")
	}
	return &Continuous{G: g, Load: load.NewContinuous(initial), Schedule: sched, RNG: rng}
}

// Tick activates one edge: its endpoints average their load exactly.
func (c *Continuous) Tick() {
	m := c.G.M()
	if m == 0 {
		return
	}
	var e graph.Edge
	if c.Schedule == RoundRobin {
		e = c.G.Edges()[c.tick%m]
	} else {
		e = c.G.Edges()[c.RNG.Intn(m)]
	}
	c.tick++
	v := c.Load.Vector()
	avg := (v[e.U] + v[e.V]) / 2
	v[e.U], v[e.V] = avg, avg
}

// Step runs m ticks — the edge-activation budget of one synchronous
// Algorithm 1 round — so the type satisfies sim.System with a comparable
// notion of "round".
func (c *Continuous) Step() {
	for k := 0; k < c.G.M(); k++ {
		c.Tick()
	}
}

// Potential returns Φ of the current distribution.
func (c *Continuous) Potential() float64 { return c.Load.Potential() }

// Ticks returns the number of edge activations so far.
func (c *Continuous) Ticks() int { return c.tick }

// Discrete is the asynchronous discrete balancer (⌊diff/2⌋ tokens per
// activation, the [5] / [12] pairwise rule).
type Discrete struct {
	G        *graph.G
	Load     *load.Discrete
	Schedule Schedule
	RNG      *rand.Rand

	tick int
}

// NewDiscrete creates a balancer over a copy of the initial tokens.
func NewDiscrete(g *graph.G, initial []int64, sched Schedule, rng *rand.Rand) *Discrete {
	if len(initial) != g.N() {
		panic("async: initial token length mismatch")
	}
	return &Discrete{G: g, Load: load.NewDiscrete(initial), Schedule: sched, RNG: rng}
}

// Tick activates one edge and moves ⌊|ℓᵢ−ℓⱼ|/2⌋ tokens downhill.
func (d *Discrete) Tick() {
	m := d.G.M()
	if m == 0 {
		return
	}
	var e graph.Edge
	if d.Schedule == RoundRobin {
		e = d.G.Edges()[d.tick%m]
	} else {
		e = d.G.Edges()[d.RNG.Intn(m)]
	}
	d.tick++
	v := d.Load.Tokens()
	hi, lo := e.U, e.V
	if v[hi] < v[lo] {
		hi, lo = lo, hi
	}
	t := (v[hi] - v[lo]) / 2
	v[hi] -= t
	v[lo] += t
}

// Step runs m ticks (one synchronous-round budget).
func (d *Discrete) Step() {
	for k := 0; k < d.G.M(); k++ {
		d.Tick()
	}
}

// Potential returns Φ of the current distribution.
func (d *Discrete) Potential() float64 { return d.Load.Potential() }

// Ticks returns the number of edge activations so far.
func (d *Discrete) Ticks() int { return d.tick }
