// Command lbbench regenerates the paper-reproduction experiment tables and
// runs declarative sweep grids through the parallel batch engine.
//
// Experiment mode (one table per experiment of DESIGN.md §5):
//
//	lbbench -exp all            # run every experiment (E1–E19, A1–A8)
//	lbbench -exp E3,E4          # run selected experiments
//	lbbench -exp E9 -seed 7     # change the seed
//	lbbench -list               # list experiments, topologies, algorithms,
//	                            # modes, workloads and scenarios
//	lbbench -quick              # shrunk sweeps (CI-sized)
//	lbbench -csv                # CSV instead of aligned tables
//	lbbench -parallel 8         # fan each experiment's sweep over 8 workers
//
// Grid mode (one invocation reproduces a whole paper figure's sweep):
//
//	lbbench -grid -topos cycle,torus,hypercube \
//	        -algos diffusion,dimexchange,randpair \
//	        -modes continuous,discrete -loads spike,uniform \
//	        -n 64 -seeds 1,2,3 -parallel 8 -format csv
//
// The grid expands to topologies × algorithms × modes × workloads ×
// scenarios × seeds run units, executes them across -parallel workers with
// per-unit deterministic RNG streams, and emits one aggregated report
// (table, csv or json). -round-workers {n|auto} additionally fans each
// unit's rounds over n goroutines inside the stepper (node-level
// parallelism — the lever for few huge cells, where unit fan-out cannot
// help); auto splits GOMAXPROCS between the two levels from the grid
// shape. Output is identical for any -parallel or -round-workers value.
//
// Scenario sweeps (time-varying arrivals, adversarial spikes, topology
// churn as a grid dimension):
//
//	lbbench -grid -topos torus,hypercube \
//	        -scenarios static,adversarial-respike,poisson-arrivals:0.05 \
//	        -n 64 -seeds 1,2,3 -rounds 128 -format csv
//
// Each non-static scenario injects its arrival process (and/or swaps the
// active graph) between rounds of every unit, runs a fixed horizon
// (-rounds, default 512) and reports peak backlog, steady-state
// discrepancy and time-to-rebalance alongside the usual columns.
// Scenarios take ':'-separated parameters (e.g. bursty:32:0.5); -list
// names them all. Scenario grids shard, journal, resume, stream-aggregate,
// spawn and merge exactly like any other grid dimension.
//
// Streaming and resuming (grids too large for memory, or runs that may be
// interrupted):
//
//	lbbench -grid ... -out cells.jsonl              # journal cells as they finish
//	lbbench -grid ... -resume cells.jsonl -out cells.jsonl
//
// -out streams each finished cell as one JSON line, in deterministic
// expansion order, flushed per cell — an interrupted run (Ctrl-C, SIGTERM,
// even SIGKILL) leaves a valid journal: every line already written is
// intact, and at most a small sequencing window of completed-but-unwritten
// cells (plus one torn final line under a hard kill) is lost and simply
// re-runs. -resume replays the journal's clean cells by unit key, re-runs
// only the missing or failed ones, and emits a report byte-identical to an
// uninterrupted run. -cache-stats reports the shared spectral cache's hit
// counts.
//
// Sharded sweeps (grids too large for one process or one machine):
//
//	lbbench -grid ... -shard 0/3 -out s0.jsonl    # three processes,
//	lbbench -grid ... -shard 1/3 -out s1.jsonl    # each owning every
//	lbbench -grid ... -shard 2/3 -out s2.jsonl    # third unit
//	lbbench -grid ... -merge s0.jsonl,s1.jsonl,s2.jsonl -format csv
//
// -shard i/m runs only the units whose expansion index is ≡ i (mod m), so
// the m shards are disjoint and exhaustive; a dead shard resumes with its
// own journal (-shard 2/3 -resume s2.jsonl -out s2.jsonl). -merge validates
// the per-shard journals (same grid, no overlapping units) and reassembles
// them into a report byte-identical to a single-process sweep, re-running
// any units still missing. -shard also applies to experiment mode: each
// shard process emits its owned subset of every experiment's rows.
//
// -stream-agg switches to streaming-only aggregation: per-grid-cell
// aggregates and per-dimension marginals are folded incrementally as cells
// arrive (from the live sweep, or from -merge'd journals without re-running
// anything), so memory stays independent of the unit count — no per-cell
// table is materialized or printed. Set LB_SPECCACHE_DIR to let concurrent
// shard processes share eigensolves through a disk spectral-cache spill.
//
// Orchestrated sweeps (one command plans, spawns, supervises and merges):
//
//	lbbench -grid ... -spawn 3 -out sweep/             # the whole pipeline
//	lbbench -grid ... -spawn 3 -emit-matrix github     # serialize the plan
//
// -spawn m plans the m-way shard split, spawns m shard subprocesses of this
// binary (sharing LB_SPECCACHE_DIR, journaling under the -out directory),
// tails the journals for shard-aware live progress on stderr (units
// done/total per shard, ETA, stall warnings), restarts any shard that dies
// with -resume against its own journal (capped retries, loudly reported),
// and on completion merges the journals and renders the report to stdout —
// byte-identical to the single-process sweep. Interrupting the orchestrator
// interrupts the children gracefully; re-running the same command resumes
// every shard. -parallel applies per child. -emit-matrix {github|slurm|
// shell} prints the planned split as a GitHub Actions matrix include-list,
// a Slurm job-array script or a plain shell fan-out instead of running it,
// so the exact local split is what CI and clusters execute. cmd/lborch is
// the standalone wrapper around the same machinery.
//
// Exit codes: 0 success; 1 failed units or rendering; 2 usage/spec errors;
// 3 interrupted or journal-close failure (resumable); 4 contradictory flag
// combinations (e.g. -spawn with -shard, -resume without -out); 5 shard or
// spawn counts out of range.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/batch"
	"repro/internal/cliflags"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/orchestrator"
	"repro/internal/scenario"
	"repro/internal/signals"
	"repro/internal/speccache"
	"repro/internal/topoparse"
	"repro/internal/workload"
)

// Exit codes. Distinct classes let scripts (and the CI smokes) tell a
// resumable interruption from a typo and a typo from a half-failed figure.
const (
	exitFailedUnits = 1 // sweep completed but the figure has holes (or rendering failed)
	exitUsage       = 2 // malformed flags, invalid spec, unreadable journals
	exitInterrupted = 3 // interrupted or journal close failed — journals are resumable
	exitConflict    = 4 // contradictory flag combination, refused before touching any journal
	exitBadCount    = 5 // shard/spawn counts out of range
)

func main() {
	var (
		exp   = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		seed  = flag.Int64("seed", 1, "seed for randomized components (experiment mode)")
		quick = flag.Bool("quick", false, "shrink sweeps for a fast run")
		csv   = flag.Bool("csv", false, "emit CSV instead of aligned tables (experiment mode)")
		list  = flag.Bool("list", false, "list registered experiments, topologies, algorithms, modes, workloads and scenarios, then exit")

		grid    = flag.Bool("grid", false, "run a declarative sweep grid instead of the experiment tables")
		gridDef = cliflags.RegisterGrid(flag.CommandLine)
		output  = cliflags.RegisterOutput(flag.CommandLine)

		out        = flag.String("out", "", "grid: stream finished cells to this JSONL journal (a directory with -spawn; resumable with -resume)")
		resume     = flag.String("resume", "", "grid: replay completed cells from this JSONL journal, re-run only the rest (requires -out)")
		shard      = flag.String("shard", "", "run only shard i of m, format i/m (grid sweeps and experiment sweeps)")
		units      = flag.String("units", "", "grid: restrict the run to the half-open unit window lo:hi of the expansion ('lo:' for the unbounded tail) — composes with -shard; how the work-stealing supervisor assigns stolen sub-ranges")
		origin     = flag.String("origin", "", "grid: record this provenance string in the -out journal's header (the supervisor tags stolen sub-range journals)")
		merge      = flag.String("merge", "", "grid: comma-separated per-shard JSONL journals to merge into one report (instead of -resume)")
		cacheStats = flag.Bool("cache-stats", false, "print shared spectral-cache statistics to stderr on exit")

		spawn      = flag.Int("spawn", 0, "grid: orchestrate the sweep as this many shard attempts (plan, launch, supervise, merge; journals under the -out directory)")
		emitMatrix = flag.String("emit-matrix", "", "grid: with -spawn m, print the shard plan as a CI/cluster fan-out (github, slurm, shell) instead of running it")
		launch     = cliflags.RegisterLaunch(flag.CommandLine)

		obsFlags  = cliflags.RegisterObs(flag.CommandLine)
		profFlags = cliflags.RegisterProfile(flag.CommandLine)
	)
	flag.Parse()

	if *list {
		printRegistries()
		return
	}
	// Contradictory flag combinations and nonsense counts are refused here,
	// with their own exit codes, before any journal file could be created or
	// truncated — a typo'd orchestration must never cost a partial journal.
	if msg, code := checkFlagCombos(*grid, *spawn, *emitMatrix, *shard, *resume, *out, *merge, *units, *origin, launch); code != 0 {
		fmt.Fprintf(os.Stderr, "lbbench: %s\n", msg)
		os.Exit(code)
	}
	shardI, shardM, err := cliflags.ParseShard(*shard)
	if err != nil {
		code := exitUsage
		if errors.Is(err, cliflags.ErrShardRange) {
			code = exitBadCount
		}
		fmt.Fprintf(os.Stderr, "lbbench: %v\n", err)
		os.Exit(code)
	}
	unitLo, unitHi, err := cliflags.ParseUnits(*units)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lbbench: %v\n", err)
		os.Exit(exitUsage)
	}
	rw, err := cliflags.ParseRoundWorkers(gridDef.RoundWorkers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lbbench: %v\n", err)
		os.Exit(exitUsage)
	}
	// Telemetry and profiling wrap the whole run. All of it is out-of-band —
	// spans and profiles never touch stdout or a journal, so traced and
	// untraced runs emit byte-identical reports.
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "lbbench: "+format+"\n", args...)
	}
	tracer, stopObs, err := obsFlags.Start(logf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lbbench: %v\n", err)
		os.Exit(exitUsage)
	}
	stopProf, err := profFlags.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "lbbench: %v\n", err)
		os.Exit(exitUsage)
	}
	gf := gridFlags{
		grid:   gridDef,
		format: output.Format, out: *out, resume: *resume,
		shardI: shardI, shardM: shardM,
		unitLo: unitLo, unitHi: unitHi, origin: *origin,
		merge:     *merge,
		streamAgg: output.StreamAgg, gridSet: *grid,
		tracer: tracer,
	}
	var code int
	switch {
	case *spawn > 0:
		code = runSpawn(gf, *spawn, *emitMatrix, launch)
	case *grid || *merge != "":
		code = runGrid(gf)
	default:
		if rw < 0 {
			fmt.Fprintln(os.Stderr, "lbbench: -round-workers auto needs a grid shape to tune from — pass a number in experiment mode")
			os.Exit(exitUsage)
		}
		code = runExperiments(*exp, *seed, *quick, *csv, gridDef.Parallel, rw, shardI, shardM)
	}
	if err := stopProf(); err != nil {
		fmt.Fprintf(os.Stderr, "lbbench: %v\n", err)
	}
	if err := stopObs(); err != nil {
		fmt.Fprintf(os.Stderr, "lbbench: %v\n", err)
	}
	if *cacheStats {
		st := speccache.Shared().Stats()
		fmt.Fprintf(os.Stderr, "lbbench: speccache: %s\n", st)
		fmt.Fprintf(os.Stderr, "lbbench: solve paths: closed-form %d, dense %d, lanczos %d, inverse-power (CG) %d\n",
			st.Solves.ClosedForm, st.Solves.Dense, st.Solves.Lanczos, st.Solves.InversePower)
	}
	os.Exit(code)
}

// checkFlagCombos rejects contradictory flag combinations (exitConflict)
// and out-of-range counts (exitBadCount) up front. Returns code 0 when the
// combination is coherent.
func checkFlagCombos(grid bool, spawn int, emitMatrix, shard, resume, out, merge, units, origin string, launch *cliflags.Launch) (string, int) {
	switch {
	case spawn < 0:
		return fmt.Sprintf("-spawn %d: shard count must be positive", spawn), exitBadCount
	case spawn > 0 && !grid:
		return "-spawn orchestrates grid sweeps — pass -grid with the sweep's flags", exitConflict
	case spawn > 0 && shard != "":
		return "-spawn and -shard conflict: the orchestrator owns the shard split (its children get -shard)", exitConflict
	case spawn > 0 && units != "":
		return "-spawn and -units conflict: the orchestrator owns the unit windows (its stolen sub-shards get -units)", exitConflict
	case spawn > 0 && resume != "":
		return "-spawn and -resume conflict: the orchestrator resumes each shard from its own journal automatically", exitConflict
	case spawn > 0 && merge != "":
		return "-spawn and -merge conflict: the orchestrator merges its shard journals automatically", exitConflict
	case spawn > 0 && emitMatrix == "" && out == "":
		return "-spawn needs -out DIR: the directory holding the per-shard journals", exitConflict
	case emitMatrix != "" && spawn <= 0:
		return "-emit-matrix needs -spawn m to size the shard split", exitConflict
	case emitMatrix != "" && emitMatrix != "github" && emitMatrix != "slurm" && emitMatrix != "shell":
		return fmt.Sprintf("unknown -emit-matrix %q (want %s)", emitMatrix, orchestrator.EmitFormats), exitUsage
	case units != "" && !grid:
		return "-units windows grid sweeps — pass -grid with the sweep's flags", exitConflict
	case origin != "" && out == "":
		return "-origin annotates the -out journal's header — pass -out", exitConflict
	case (launch.Launcher != "" && launch.Launcher != "local" || launch.Hosts != "" || launch.RemoteDir != "" || launch.StealAfter > 0) && spawn <= 0:
		return "-launcher/-hosts/-remote-dir/-steal-after configure the orchestrator — pass -spawn m (or use lborch)", exitConflict
	case resume != "" && out == "":
		return "-resume without -out: re-running units nothing journals loses them on the next crash — pass -out (typically the same path, to resume in place), or use -merge for a pure render", exitConflict
	case merge != "" && resume != "":
		return "-merge and -resume are mutually exclusive (a merge already replays every journal)", exitConflict
	}
	return "", 0
}

// runSpawn is the orchestrated path: plan the m-way split, then either
// serialize it (-emit-matrix) or launch, supervise, steal, merge and
// render.
func runSpawn(f gridFlags, m int, emitMatrix string, launch *cliflags.Launch) int {
	spec, err := f.grid.Spec()
	if err != nil {
		fmt.Fprintf(os.Stderr, "lbbench: %v\n", err)
		return exitUsage
	}
	switch f.format {
	case "table", "csv", "json":
	default:
		fmt.Fprintf(os.Stderr, "lbbench: unknown -format %q (want table, csv or json)\n", f.format)
		return exitUsage
	}
	launchers, err := launch.Launchers()
	if err != nil {
		fmt.Fprintf(os.Stderr, "lbbench: %v\n", err)
		return exitUsage
	}
	plan, err := orchestrator.NewPlan(spec, m, f.out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lbbench: %v\n", err)
		return exitUsage
	}
	plan.Format = f.format
	// The topologies must build before m processes each discover the same
	// typo independently.
	if err := core.ValidateGridSpec(plan.Spec); err != nil {
		fmt.Fprintf(os.Stderr, "lbbench: %v\n", err)
		return exitUsage
	}

	if emitMatrix != "" {
		if err := plan.Emit(emitMatrix, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "lbbench: %v\n", err)
			return exitUsage
		}
		return 0
	}

	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "lbbench: cannot locate own binary to spawn shards: %v\n", err)
		return exitUsage
	}
	ctx, stop := signals.Graceful(context.Background())
	defer stop()
	sup := &orchestrator.Supervisor{
		Plan:      plan,
		Command:   []string{self},
		Launchers: launchers,
		Policy:    launch.Policy(),
		Log:       os.Stderr,
		Tracer:    f.tracer,
	}
	code := sup.RunAndReport(ctx, f.streamAgg, os.Stdout)
	if code == exitInterrupted {
		fmt.Fprintf(os.Stderr, "lbbench: interrupted — re-run the same -spawn command to resume every shard\n")
	}
	return code
}

// runExperiments is the classic per-experiment table mode.
func runExperiments(exp string, seed int64, quick, csv bool, workers, roundWorkers, shardI, shardM int) int {
	var ids []string
	if exp == "all" {
		ids = experiments.IDs()
	} else {
		for _, id := range strings.Split(exp, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			if _, ok := experiments.Lookup(id); !ok {
				fmt.Fprintf(os.Stderr, "lbbench: unknown experiment %q (use -list)\n", id)
				return 2
			}
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "lbbench: no experiments selected")
		return 2
	}

	opts := experiments.Options{
		Seed: seed, Quick: quick, Workers: workers, RoundWorkers: roundWorkers,
		ShardIndex: shardI, ShardCount: shardM,
	}
	for _, id := range ids {
		runner, _ := experiments.Lookup(id)
		start := time.Now()
		table := runner(opts)
		elapsed := time.Since(start)
		var err error
		if csv {
			err = table.RenderCSV(os.Stdout)
		} else {
			err = table.Render(os.Stdout)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "lbbench: rendering %s: %v\n", id, err)
			return 1
		}
		if !csv {
			fmt.Printf("[%s completed in %v]\n\n", id, elapsed.Round(time.Millisecond))
		}
	}
	return 0
}

// printRegistries is the -list surface: every registered experiment,
// topology, algorithm, mode, workload and scenario with a one-line
// description, so discovering a sweep dimension never requires reading
// source.
func printRegistries() {
	fmt.Println("experiments (-exp):")
	for _, id := range experiments.IDs() {
		fmt.Printf("  %s\n", id)
	}
	section := func(title string, entries [][2]string) {
		fmt.Printf("\n%s:\n", title)
		width := 0
		for _, e := range entries {
			if len(e[0]) > width {
				width = len(e[0])
			}
		}
		for _, e := range entries {
			fmt.Printf("  %-*s  %s\n", width, e[0], e[1])
		}
	}
	section("topologies (-topos)", topoparse.Descriptions())
	section("algorithms (-algos)", core.AlgorithmDescriptions())
	section("modes (-modes)", core.ModeDescriptions())
	section("workloads (-loads)", workload.Descriptions())
	section("scenarios (-scenarios)", scenario.Descriptions())
}

// gridFlags bundles the grid-mode flag values.
type gridFlags struct {
	// grid is the shared dimension/run-parameter flag group (cliflags);
	// grid.Spec() assembles the batch spec.
	grid                       *cliflags.Grid
	format, out, resume, merge string
	shardI, shardM             int
	// unitLo/unitHi are the parsed -units window (both zero when absent;
	// unitHi zero for an unbounded tail).
	unitLo, unitHi int
	// origin is the -origin provenance string for the -out journal header.
	origin    string
	streamAgg bool
	// tracer records the sweep's spans when -trace-out is set (nil = off).
	tracer *obs.Tracer
	// gridSet records whether -grid was given explicitly (a bare -merge
	// renders from the journals' own headers, without trusting the grid
	// flags' defaults).
	gridSet bool
}

// runGrid expands and executes one declarative sweep through the batch
// engine — restricted to its -shard slice, streaming cells to the -out
// journal, replaying the -resume journal or the -merge'd shard journals —
// and emits the aggregated report (classic, or streaming-only aggregates
// with -stream-agg).
func runGrid(f gridFlags) int {
	spec, err := f.grid.Spec()
	if err != nil {
		fmt.Fprintf(os.Stderr, "lbbench: %v\n", err)
		return 2
	}
	if f.shardM > 0 {
		spec, err = spec.Shard(f.shardI, f.shardM)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lbbench: %v\n", err)
			return 2
		}
	}
	if f.unitLo > 0 || f.unitHi > 0 {
		spec, err = spec.Range(f.unitLo, f.unitHi)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lbbench: %v\n", err)
			return 2
		}
	}
	// A typo'd -format must not cost a full sweep: reject it before running,
	// not when rendering.
	switch f.format {
	case "table", "csv", "json":
	default:
		fmt.Fprintf(os.Stderr, "lbbench: unknown -format %q (want table, csv or json)\n", f.format)
		return 2
	}
	// -merge with -resume was refused up front (checkFlagCombos).
	mergePaths := cliflags.SplitList(f.merge)

	// -merge -stream-agg is the pure render path: fold the shard journals'
	// cells straight into the incremental aggregator and print the summary.
	// Nothing runs, no cell materializes — memory is one buffered cell per
	// journal plus the aggregates themselves.
	if f.streamAgg && len(mergePaths) > 0 {
		return renderMergedAggregates(spec, mergePaths, f)
	}

	// The -resume/-merge journals are read fully before -out is opened, so
	// resuming in place (-resume X -out X) reads the partial journal and
	// then rewrites it complete.
	var journal *batch.Journal
	switch {
	case len(mergePaths) > 0:
		j, stats, err := batch.ReadMergedJournals(mergePaths...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lbbench: %v\n", err)
			return 2
		}
		if stats.Dropped > 0 {
			fmt.Fprintf(os.Stderr, "lbbench: merge: dropped %d corrupt/truncated line(s); those units will re-run\n", stats.Dropped)
		}
		switch {
		case !f.gridSet:
			// A bare -merge sweeps the journals' own grid. The flag spec is
			// all defaults here; silently resuming *that* grid would emit a
			// figure the user never swept, so derive the spec from the
			// headers (already validated mutually consistent by the merge)
			// instead.
			if len(j.Specs) == 0 {
				fmt.Fprintln(os.Stderr, "lbbench: merged journals carry no spec headers — pass -grid with the sweep's flags to name the grid")
				return 2
			}
			hdr := j.Specs[0]
			// Shard and window fields describe the journal's slice, not the
			// merged whole — a steal journal's header names a sub-range.
			hdr.ShardIndex, hdr.ShardCount = 0, 0
			hdr.UnitLo, hdr.UnitHi = 0, 0
			hdr.Workers = f.grid.Parallel
			hdr.RoundWorkers, _ = cliflags.ParseRoundWorkers(f.grid.RoundWorkers)
			if f.shardM > 0 {
				if hdr, err = hdr.Shard(f.shardI, f.shardM); err != nil {
					fmt.Fprintf(os.Stderr, "lbbench: %v\n", err)
					return 2
				}
			}
			spec = hdr
		case len(j.Specs) > 0:
			// Explicit -grid flags must name the journals' grid exactly —
			// dimensions and seeds included, not just run parameters, since
			// a same-parameter different-dimension resume would silently
			// drop every journal cell outside the flag grid.
			if err := batch.SameGrid(spec, j.Specs[0]); err != nil {
				fmt.Fprintf(os.Stderr, "lbbench: merge: journals do not match the -grid flags: %v\n", err)
				return 2
			}
		}
		journal = j
	case f.resume != "":
		j, err := batch.ReadJournalFile(f.resume)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lbbench: %v\n", err)
			return 2
		}
		if j.Dropped > 0 {
			fmt.Fprintf(os.Stderr, "lbbench: journal %s: dropped %d corrupt/truncated line(s); those units will re-run\n", f.resume, j.Dropped)
		}
		// Refuse a parameter mismatch now, while the partial journal is
		// still the only copy — -out may truncate it next.
		if err := j.CheckSpec(spec); err != nil {
			fmt.Fprintf(os.Stderr, "lbbench: %v\n", err)
			return 2
		}
		journal = j
	}

	// When journal files are at stake, fail on anything the engine would
	// reject — bad dimensions, unknown algorithms, unbuildable topologies —
	// before touching them: -out truncates next, and a partial journal must
	// survive a typo'd resume invocation. (Without journal flags the engine
	// reports the same errors itself, so the topologies are not built twice
	// for nothing.) Runs after the merge/resume reads so a header-derived
	// spec is validated too.
	if f.out != "" || f.resume != "" || len(mergePaths) > 0 || f.streamAgg {
		if err := core.ValidateGridSpec(spec); err != nil {
			fmt.Fprintf(os.Stderr, "lbbench: %v\n", err)
			return 2
		}
	}

	var js *batch.JSONLSink
	if f.out != "" {
		var err error
		if samePath(f.out, f.resume) || containsPath(mergePaths, f.out) {
			// Resume-in-place: the partial journal was fully read above, so
			// truncating and rewriting it complete is the point.
			js, err = batch.ReplaceJSONL(f.out)
		} else {
			// Fresh journal: O_EXCL, so two shard processes accidentally
			// pointed at the same path fail loudly instead of interleaving.
			js, err = batch.CreateJSONL(f.out)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "lbbench: %v\n", err)
			return 2
		}
		// Provenance lands in the journal's spec header (omitted when empty,
		// keeping un-tagged journals byte-identical to older ones).
		js.Origin = f.origin
		// Error paths below exit non-zero anyway; the success paths close
		// explicitly so a failed fsync can fail the run.
		defer js.Close()
	}

	// SIGINT/SIGTERM cancel the sweep instead of killing the process:
	// in-flight units finish, every remaining cell is journaled with its
	// cancellation error, and the journal closes cleanly for -resume. The
	// first signal consumes the graceful path — once it fires, default
	// disposition is restored so a second Ctrl-C terminates immediately
	// instead of being swallowed while the sweep drains.
	ctx, stop := signals.Graceful(context.Background())
	defer stop()

	if f.streamAgg {
		return runGridStream(ctx, spec, journal, js, f)
	}

	var sink batch.Sink
	if js != nil {
		sink = js
	}
	report, runErr := core.GridRun(ctx, spec, core.GridResume(journal), core.GridSink(sink), core.GridTrace(f.tracer))
	if report == nil {
		fmt.Fprintf(os.Stderr, "lbbench: %v\n", runErr)
		return 2
	}

	if err := report.Render(f.format, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "lbbench: rendering grid report: %v\n", err)
		return 1
	}
	// Wall time goes to stderr so stdout stays deterministic across worker
	// counts (and across runs).
	fmt.Fprintf(os.Stderr, "lbbench: %d units (%d failed) in %v\n",
		len(report.Cells), report.Failed(), report.Elapsed.Round(time.Millisecond))
	if runErr != nil {
		if errors.Is(runErr, context.Canceled) && f.out != "" {
			fmt.Fprintf(os.Stderr, "lbbench: interrupted — resume with: lbbench -grid ... -resume %s -out %s\n", f.out, f.out)
		} else {
			fmt.Fprintf(os.Stderr, "lbbench: %v\n", runErr)
		}
		return 3
	}
	if code := closeJournal(js, f.out); code != 0 {
		return code
	}
	// Any failed unit means the emitted figure has holes: scripts checking
	// the exit status must not mistake a partial sweep for a complete one.
	if report.Failed() > 0 {
		return 1
	}
	return 0
}

// closeJournal closes the -out journal on the success paths, surfacing the
// fsync-and-close error in the exit code: a shard whose final lines never
// reached the platter must not report success for the merger to trust.
// (nil when there is no journal; the deferred double Close is a no-op whose
// error is deliberately discarded.)
func closeJournal(js *batch.JSONLSink, path string) int {
	if js == nil {
		return 0
	}
	if err := js.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "lbbench: journal %s: %v — journal may be torn; re-run or resume before merging\n", path, err)
		return 3
	}
	return 0
}

// runGridStream executes the sweep through the streaming engine path: cells
// flow to the journal sink and the incremental aggregator only, never into
// an in-process report.
func runGridStream(ctx context.Context, spec batch.Spec, journal *batch.Journal, js *batch.JSONLSink, f gridFlags) int {
	agg := batch.NewAggSink()
	var sink batch.Sink = agg
	if js != nil {
		sink = batch.MultiSink{js, agg}
	}
	_, runErr := core.GridRun(ctx, spec, core.GridStreamOnly(), core.GridResume(journal), core.GridSink(sink), core.GridTrace(f.tracer))
	rep := agg.Report()
	if code := renderAggReport(rep, f.format); code != 0 {
		return code
	}
	fmt.Fprintf(os.Stderr, "lbbench: %d units (%d failed) folded, streaming\n", rep.Units, rep.Failed)
	if runErr != nil {
		if errors.Is(runErr, context.Canceled) && f.out != "" {
			fmt.Fprintf(os.Stderr, "lbbench: interrupted — resume with: lbbench -grid ... -resume %s -out %s\n", f.out, f.out)
		} else {
			fmt.Fprintf(os.Stderr, "lbbench: %v\n", runErr)
		}
		return 3
	}
	if code := closeJournal(js, f.out); code != 0 {
		return code
	}
	if rep.Failed > 0 {
		return 1
	}
	return 0
}

// renderMergedAggregates is the -merge -stream-agg path: validate and fold
// the shard journals into the aggregator and render, re-running nothing.
func renderMergedAggregates(spec batch.Spec, paths []string, f gridFlags) int {
	agg := batch.NewAggSink()
	stats, err := batch.MergeJournals(agg, paths...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lbbench: %v\n", err)
		return 2
	}
	rep := agg.Report()
	// With -grid given explicitly the flags must name the journals' grid —
	// dimensions and seeds included, not just run parameters. A bare -merge
	// trusts the headers (headerless journals have nothing to check).
	if f.gridSet && len(rep.Spec.Topologies) > 0 {
		if err := batch.SameGrid(spec, rep.Spec); err != nil {
			fmt.Fprintf(os.Stderr, "lbbench: merge: journals do not match the -grid flags: %v\n", err)
			return 2
		}
	}
	if code := renderAggReport(rep, f.format); code != 0 {
		return code
	}
	if stats.Dropped > 0 {
		fmt.Fprintf(os.Stderr, "lbbench: merge: dropped %d corrupt/truncated line(s)\n", stats.Dropped)
	}
	fmt.Fprintf(os.Stderr, "lbbench: merged %d journals: %d units (%d failed, %d missing)\n",
		stats.Journals, rep.Units, rep.Failed, rep.Missing())
	if rep.Missing() > 0 {
		if shards := agg.MissingShards(); len(shards) > 0 {
			fmt.Fprintf(os.Stderr, "lbbench: shard(s) %v never merged in\n", shards)
		}
		fmt.Fprintf(os.Stderr, "lbbench: merge is incomplete — resume the missing shard(s), or run -merge without -stream-agg to re-run the gaps\n")
		return 1
	}
	if rep.Failed > 0 {
		return 1
	}
	return 0
}

// renderAggReport prints a streaming aggregate report in the chosen format.
func renderAggReport(rep *batch.AggReport, format string) int {
	if err := rep.Render(format, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "lbbench: rendering aggregate report: %v\n", err)
		return 1
	}
	return 0
}

// samePath reports whether a and b name the same file, so resume-in-place
// is recognized however the paths are spelled (`./x.jsonl` vs `x.jsonl`,
// absolute vs relative, through symlinks). Misclassifying here would send a
// legitimate resume to the O_EXCL open, which refuses the existing journal
// — the partial journal's only copy must never be the thing the error
// message tells the user to delete. When both paths exist the inodes
// decide; otherwise absolute-path comparison.
func samePath(a, b string) bool {
	if a == "" || b == "" {
		return false
	}
	if ia, err := os.Stat(a); err == nil {
		if ib, err := os.Stat(b); err == nil {
			return os.SameFile(ia, ib)
		}
	}
	aa, err1 := filepath.Abs(a)
	bb, err2 := filepath.Abs(b)
	if err1 != nil || err2 != nil {
		return filepath.Clean(a) == filepath.Clean(b)
	}
	return aa == bb
}

// containsPath reports whether list has an entry naming the same file as s.
func containsPath(list []string, s string) bool {
	for _, v := range list {
		if samePath(v, s) {
			return true
		}
	}
	return false
}
