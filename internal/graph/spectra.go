package graph

import (
	"math"
)

// Closed-form Laplacian spectra for the standard topology families. These
// serve two purposes: they are the ground truth against which the numeric
// eigensolvers in internal/spectral are tested, and they let the experiment
// harness evaluate the paper's bounds exactly on large instances without an
// O(n³) eigendecomposition.

// PathLambda2 returns λ₂ of the path on n nodes: 2(1 − cos(π/n)).
// Laplacian eigenvalues of the path are 2(1 − cos(kπ/n)), k = 0..n−1.
func PathLambda2(n int) float64 {
	if n < 2 {
		return 0
	}
	return 2 * (1 - math.Cos(math.Pi/float64(n)))
}

// CycleLambda2 returns λ₂ of the cycle on n nodes: 2(1 − cos(2π/n)).
// Laplacian eigenvalues of the cycle are 2(1 − cos(2kπ/n)), k = 0..n−1.
func CycleLambda2(n int) float64 {
	if n < 3 {
		return 0
	}
	return 2 * (1 - math.Cos(2*math.Pi/float64(n)))
}

// CompleteLambda2 returns λ₂ of K_n, which is n (with multiplicity n−1).
func CompleteLambda2(n int) float64 {
	if n < 2 {
		return 0
	}
	return float64(n)
}

// StarLambda2 returns λ₂ of the star K_{1,n−1}, which is 1 for n ≥ 3
// (spectrum {0, 1^(n−2), n}).
func StarLambda2(n int) float64 {
	switch {
	case n < 2:
		return 0
	case n == 2:
		return 2
	default:
		return 1
	}
}

// HypercubeLambda2 returns λ₂ of the d-dimensional hypercube, which is 2
// (Laplacian spectrum {2k·(d choose k multiplicity)}, k = 0..d).
func HypercubeLambda2(d int) float64 {
	if d < 1 {
		return 0
	}
	return 2
}

// TorusLambda2 returns λ₂ of the rows×cols torus. The torus is the
// Cartesian product of two cycles, so its Laplacian spectrum is the sumset
// of the two cycle spectra; the smallest nonzero value is
// 2(1 − cos(2π/max(rows, cols))).
func TorusLambda2(rows, cols int) float64 {
	m := rows
	if cols > m {
		m = cols
	}
	return CycleLambda2(m)
}

// GridLambda2 returns λ₂ of the rows×cols mesh (Cartesian product of two
// paths): 2(1 − cos(π/max(rows, cols))).
func GridLambda2(rows, cols int) float64 {
	m := rows
	if cols > m {
		m = cols
	}
	return PathLambda2(m)
}

// CompleteBipartiteLambda2 returns λ₂ of K_{a,b} with a ≤ b, which is
// min(a, b) (spectrum {0, a^(b−1), b^(a−1), a+b}).
func CompleteBipartiteLambda2(a, b int) float64 {
	if a > b {
		a, b = b, a
	}
	if a < 1 {
		return 0
	}
	return float64(a)
}

// PetersenLambda2 returns λ₂ of the Petersen graph: 2.
func PetersenLambda2() float64 { return 2 }

// PathSpectrum returns all n Laplacian eigenvalues of the path, ascending.
func PathSpectrum(n int) []float64 {
	out := make([]float64, n)
	for k := 0; k < n; k++ {
		out[k] = 2 * (1 - math.Cos(float64(k)*math.Pi/float64(n)))
	}
	return out
}

// CycleSpectrum returns all n Laplacian eigenvalues of the cycle, ascending.
func CycleSpectrum(n int) []float64 {
	vals := make([]float64, n)
	for k := 0; k < n; k++ {
		vals[k] = 2 * (1 - math.Cos(2*math.Pi*float64(k)/float64(n)))
	}
	// Values come out unsorted (cos is not monotone over the index range).
	sortFloat64s(vals)
	return vals
}

// HypercubeSpectrum returns all 2^d Laplacian eigenvalues of the hypercube,
// ascending: eigenvalue 2k with multiplicity C(d, k).
func HypercubeSpectrum(d int) []float64 {
	n := 1 << uint(d)
	out := make([]float64, 0, n)
	choose := 1
	for k := 0; k <= d; k++ {
		for c := 0; c < choose; c++ {
			out = append(out, float64(2*k))
		}
		choose = choose * (d - k) / (k + 1)
	}
	return out
}

// PathLambdaMax returns the largest Laplacian eigenvalue of the path:
// 2(1 + cos(π/n)), the k = n−1 entry of the path spectrum.
func PathLambdaMax(n int) float64 {
	if n < 2 {
		return 0
	}
	return 2 * (1 + math.Cos(math.Pi/float64(n)))
}

// CycleLambdaMax returns the largest Laplacian eigenvalue of the cycle: 4
// for even n (the alternating eigenvector), 2(1 + cos(π/n)) for odd n.
func CycleLambdaMax(n int) float64 {
	if n < 3 {
		return 0
	}
	if n%2 == 0 {
		return 4
	}
	return 2 * (1 + math.Cos(math.Pi/float64(n)))
}

// CompleteLambdaMax returns the largest Laplacian eigenvalue of K_n: n.
func CompleteLambdaMax(n int) float64 { return CompleteLambda2(n) }

// StarLambdaMax returns the largest Laplacian eigenvalue of K_{1,n−1}: n
// (spectrum {0, 1^(n−2), n}).
func StarLambdaMax(n int) float64 {
	if n < 2 {
		return 0
	}
	return float64(n)
}

// HypercubeLambdaMax returns the largest Laplacian eigenvalue of the
// d-dimensional hypercube: 2d.
func HypercubeLambdaMax(d int) float64 {
	if d < 1 {
		return 0
	}
	return float64(2 * d)
}

// TorusLambdaMax returns the largest Laplacian eigenvalue of the rows×cols
// torus: the Cartesian-product sumset peaks at the sum of the two cycle
// maxima.
func TorusLambdaMax(rows, cols int) float64 {
	return CycleLambdaMax(rows) + CycleLambdaMax(cols)
}

// GridLambdaMax returns the largest Laplacian eigenvalue of the rows×cols
// mesh: the sum of the two path maxima.
func GridLambdaMax(rows, cols int) float64 {
	return PathLambdaMax(rows) + PathLambdaMax(cols)
}

// CompleteBipartiteLambdaMax returns the largest Laplacian eigenvalue of
// K_{a,b}: a+b.
func CompleteBipartiteLambdaMax(a, b int) float64 {
	if a < 1 || b < 1 {
		return 0
	}
	return float64(a + b)
}

// PetersenLambdaMax returns the largest Laplacian eigenvalue of the Petersen
// graph: 5 (spectrum {0, 2⁵, 5⁴}).
func PetersenLambdaMax() float64 { return 5 }

// family identifies one closed-form topology family instance parsed from a
// graph's name and verified against its actual node and edge counts.
type family struct {
	kind string // "path", "cycle", "complete", "star", "hypercube", "torus", "grid", "K", "petersen"
	a, b int
}

// knownFamily parses g's name against the constructor naming scheme and
// cross-checks the node and edge counts the named family implies. The
// structural check is what makes name-based dispatch safe: a churned
// subgraph, or any hand-built graph wearing a registry name, has a
// different edge count and falls through to the numeric solvers.
func knownFamily(g *G) (family, bool) {
	var a, b int
	var f family
	var wantN, wantM int
	switch {
	case scan1(g.Name(), "path(%d)", &a) && a >= 1:
		f, wantN, wantM = family{kind: "path", a: a}, a, a-1
	case scan1(g.Name(), "cycle(%d)", &a) && a >= 3:
		f, wantN, wantM = family{kind: "cycle", a: a}, a, a
	case scan1(g.Name(), "complete(%d)", &a) && a >= 1:
		f, wantN, wantM = family{kind: "complete", a: a}, a, a*(a-1)/2
	case scan1(g.Name(), "star(%d)", &a) && a >= 1:
		f, wantN, wantM = family{kind: "star", a: a}, a, a-1
	case scan1(g.Name(), "hypercube(%d)", &a) && a >= 0 && a <= 30:
		f, wantN, wantM = family{kind: "hypercube", a: a}, 1<<uint(a), a*(1<<uint(a))/2
	case scan2(g.Name(), "torus(%dx%d)", &a, &b) && a >= 3 && b >= 3:
		f, wantN, wantM = family{kind: "torus", a: a, b: b}, a*b, 2*a*b
	case scan2(g.Name(), "grid(%dx%d)", &a, &b) && a >= 1 && b >= 1:
		f, wantN, wantM = family{kind: "grid", a: a, b: b}, a*b, a*(b-1)+b*(a-1)
	case scan2(g.Name(), "K(%d,%d)", &a, &b) && a >= 1 && b >= 1:
		f, wantN, wantM = family{kind: "K", a: a, b: b}, a+b, a*b
	case g.Name() == "petersen":
		f, wantN, wantM = family{kind: "petersen"}, 10, 15
	default:
		return family{}, false
	}
	if g.N() != wantN || g.M() != wantM {
		return family{}, false
	}
	return f, true
}

// KnownLambda2 returns the closed-form λ₂ for graphs produced by the
// constructors in this package, matching on Name() and verifying the node
// and edge counts. ok is false for families without a closed form (random
// graphs, trees, barbells, …) and for graphs whose structure does not match
// their name.
func KnownLambda2(g *G) (lambda2 float64, ok bool) {
	f, ok := knownFamily(g)
	if !ok {
		return 0, false
	}
	switch f.kind {
	case "path":
		return PathLambda2(f.a), true
	case "cycle":
		return CycleLambda2(f.a), true
	case "complete":
		return CompleteLambda2(f.a), true
	case "star":
		return StarLambda2(f.a), true
	case "hypercube":
		return HypercubeLambda2(f.a), true
	case "torus":
		return TorusLambda2(f.a, f.b), true
	case "grid":
		return GridLambda2(f.a, f.b), true
	case "K":
		return CompleteBipartiteLambda2(f.a, f.b), true
	case "petersen":
		return PetersenLambda2(), true
	}
	return 0, false
}

// KnownLambdaMax returns the closed-form largest Laplacian eigenvalue for
// the same families KnownLambda2 covers. Together the two let the spectral
// layer evaluate γ of the uniform diffusion matrix M = I − L/(δ+1) without
// any decomposition: γ = max(|1 − αλ₂|, |1 − αλ_max|).
func KnownLambdaMax(g *G) (lambdaMax float64, ok bool) {
	f, ok := knownFamily(g)
	if !ok {
		return 0, false
	}
	switch f.kind {
	case "path":
		return PathLambdaMax(f.a), true
	case "cycle":
		return CycleLambdaMax(f.a), true
	case "complete":
		return CompleteLambdaMax(f.a), true
	case "star":
		return StarLambdaMax(f.a), true
	case "hypercube":
		return HypercubeLambdaMax(f.a), true
	case "torus":
		return TorusLambdaMax(f.a, f.b), true
	case "grid":
		return GridLambdaMax(f.a, f.b), true
	case "K":
		return CompleteBipartiteLambdaMax(f.a, f.b), true
	case "petersen":
		return PetersenLambdaMax(), true
	}
	return 0, false
}

// KnownPaperEdgeScale returns c when the paper's diffusion matrix of g is
// exactly M_P = I − c·L — that is, when 1/(4·max(dᵢ,dⱼ)) takes the same
// value c on every edge. That holds for every regular family and for the
// irregular families whose edges all see the same maximum endpoint degree
// (path, star, complete bipartite); it fails for the mesh, whose corner,
// border and interior edges mix scales. With λ₂ and λ_max known, γ_P =
// max(|1 − cλ₂|, |1 − cλ_max|) in closed form.
func KnownPaperEdgeScale(g *G) (c float64, ok bool) {
	f, ok := knownFamily(g)
	if !ok || g.M() == 0 {
		return 0, false
	}
	switch f.kind {
	case "path":
		if f.a == 2 {
			return 1.0 / 4, true
		}
		return 1.0 / 8, true
	case "cycle":
		return 1.0 / 8, true
	case "complete":
		return 1 / (4 * float64(f.a-1)), true
	case "star":
		return 1 / (4 * float64(f.a-1)), true
	case "hypercube":
		return 1 / (4 * float64(f.a)), true
	case "torus":
		return 1.0 / 16, true
	case "K":
		m := f.a
		if f.b > m {
			m = f.b
		}
		return 1 / (4 * float64(m)), true
	case "petersen":
		return 1.0 / 12, true
	}
	return 0, false
}

func sortFloat64s(v []float64) {
	// insertion sort is fine here; spectra helpers are not hot paths and the
	// stdlib sort would pull in an interface allocation per call site.
	for i := 1; i < len(v); i++ {
		x := v[i]
		j := i - 1
		for j >= 0 && v[j] > x {
			v[j+1] = v[j]
			j--
		}
		v[j+1] = x
	}
}

func scan1(s, format string, a *int) bool {
	var got int
	n, err := sscanfStrict(s, format, &got)
	if err != nil || n != 1 {
		return false
	}
	*a = got
	return true
}

func scan2(s, format string, a, b *int) bool {
	var g1, g2 int
	n, err := sscanfStrict(s, format, &g1, &g2)
	if err != nil || n != 2 {
		return false
	}
	*a, *b = g1, g2
	return true
}
