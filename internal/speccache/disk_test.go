package speccache_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/speccache"
	"repro/internal/spectral"
)

// TestDiskSpillSharesAcrossCaches: a second cache (standing in for a second
// shard process) pointed at the same directory must load the first cache's
// eigensolves from disk instead of recomputing, bit-exactly.
func TestDiskSpillSharesAcrossCaches(t *testing.T) {
	dir := t.TempDir()
	g := graph.Torus(6, 6)

	c1 := speccache.New()
	if err := c1.SetDiskDir(dir); err != nil {
		t.Fatal(err)
	}
	want := c1.MustLambda2(g)
	if _, err := c1.Gamma(g); err != nil {
		t.Fatal(err)
	}
	if s := c1.Stats().Lambda2; s.Computes != 1 || s.DiskHits != 0 {
		t.Fatalf("first process stats %+v, want 1 compute", s)
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("no spill files written: %v (%d entries)", err, len(entries))
	}

	c2 := speccache.New()
	if err := c2.SetDiskDir(dir); err != nil {
		t.Fatal(err)
	}
	if got := c2.MustLambda2(g); got != want {
		t.Fatalf("disk-loaded λ₂ %v differs from computed %v", got, want)
	}
	// Both quantities spilled by c1 — including γ, merged into the same
	// fingerprint file — load without a single eigensolve.
	if _, err := c2.Gamma(g); err != nil {
		t.Fatal(err)
	}
	if s := c2.Stats().Lambda2; s.Computes != 0 || s.DiskHits != 1 {
		t.Fatalf("second process λ₂ stats %+v, want a pure disk hit", s)
	}
	if s := c2.Stats().Gamma; s.Computes != 0 || s.DiskHits != 1 {
		t.Fatalf("second process γ stats %+v, want a pure disk hit", s)
	}
	// Values loaded from disk must round-trip bit-exactly (the spill is
	// JSON, and float64s survive Go's JSON encoding exactly).
	if direct := spectral.MustLambda2(g); want != direct || c2.MustLambda2(g) != direct {
		t.Fatal("spilled value is not bit-equal to a direct eigensolve")
	}

	if s := c2.Stats().String(); !strings.Contains(s, "disk") {
		t.Fatalf("stats line hides the disk hits: %q", s)
	}
}

// TestDiskSpillPaperEigenGapRoundTrips: µ_P = 1 − γ_P is a first-class
// spilled quantity (it used to fall outside diskKey's switch and silently
// never hit disk) — a second cache on the same directory must load it
// bit-exactly without recomputing either it or the γ_P it derives from.
func TestDiskSpillPaperEigenGapRoundTrips(t *testing.T) {
	dir := t.TempDir()
	g := graph.Torus(6, 6)

	c1 := speccache.New()
	if err := c1.SetDiskDir(dir); err != nil {
		t.Fatal(err)
	}
	want, err := c1.PaperEigenGap(g)
	if err != nil {
		t.Fatal(err)
	}
	if s := c1.Stats().PaperGap; s.Computes != 1 {
		t.Fatalf("first process µ_P stats %+v, want 1 compute", s)
	}

	c2 := speccache.New()
	if err := c2.SetDiskDir(dir); err != nil {
		t.Fatal(err)
	}
	got, err := c2.PaperEigenGap(g)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("disk-loaded µ_P %v differs from computed %v", got, want)
	}
	if s := c2.Stats().PaperGap; s.Computes != 0 || s.DiskHits != 1 {
		t.Fatalf("second process µ_P stats %+v, want a pure disk hit", s)
	}
	// The derived gap must load without dragging γ_P through a recompute.
	if s := c2.Stats().PaperGamma; s.Computes != 0 {
		t.Fatalf("µ_P disk hit still recomputed γ_P: %+v", s)
	}
}

// TestDiskSpillCorruptEntryRecomputes: torn or garbage spill files must
// degrade to a recompute, never to an error or a wrong value.
func TestDiskSpillCorruptEntryRecomputes(t *testing.T) {
	dir := t.TempDir()
	g := graph.Cycle(20)

	seed := speccache.New()
	if err := seed.SetDiskDir(dir); err != nil {
		t.Fatal(err)
	}
	want := seed.MustLambda2(g)
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("expected exactly one spill file, got %d (%v)", len(entries), err)
	}
	path := filepath.Join(dir, entries[0].Name())
	if err := os.WriteFile(path, []byte(`{"lambda2": tor`), 0o644); err != nil {
		t.Fatal(err)
	}

	c := speccache.New()
	if err := c.SetDiskDir(dir); err != nil {
		t.Fatal(err)
	}
	if got := c.MustLambda2(g); got != want {
		t.Fatalf("recomputed λ₂ %v differs from original %v", got, want)
	}
	if s := c.Stats().Lambda2; s.Computes != 1 || s.DiskHits != 0 {
		t.Fatalf("corrupt entry was counted as a disk hit: %+v", s)
	}
	// The recompute healed the entry on disk for the next process.
	c3 := speccache.New()
	if err := c3.SetDiskDir(dir); err != nil {
		t.Fatal(err)
	}
	c3.MustLambda2(g)
	if s := c3.Stats().Lambda2; s.DiskHits != 1 {
		t.Fatalf("healed entry not served from disk: %+v", s)
	}
}

// TestDiskSpillDisabledByDefault: a cache without SetDiskDir must never
// touch the filesystem.
func TestDiskSpillDisabledByDefault(t *testing.T) {
	c := speccache.New()
	c.MustLambda2(graph.Cycle(12))
	if s := c.Stats().Lambda2; s.DiskHits != 0 || s.Computes != 1 {
		t.Fatalf("memory-only cache produced disk traffic: %+v", s)
	}
}
