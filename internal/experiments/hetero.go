package experiments

import (
	"math/rand"

	"repro/internal/hetero"
	"repro/internal/markov"
	"repro/internal/spectral"
	"repro/internal/trace"
	"repro/internal/workload"
)

func init() {
	register("A6", A6Heterogeneous)
	register("A7", A7PsiExact)
}

// A6Heterogeneous exercises the heterogeneous extension of [9]: Algorithm 1
// generalized to speed-proportional balance. Sweeps the speed skew on each
// topology and reports rounds until the per-speed relative deviation falls
// below 1e-6, showing how heterogeneity stretches convergence relative to
// the uniform-speed baseline (skew 1).
func A6Heterogeneous(o Options) *trace.Table {
	t := trace.NewTable("A6 — heterogeneous diffusion [9]: rounds to 1e-6 relative deviation vs speed skew",
		"graph", "speed skew", "rounds", "slowdown vs uniform")
	skews := []float64{1, 2, 8, 32}
	if o.Quick {
		skews = []float64{1, 8}
	}
	horizon := 200000
	if o.Quick {
		horizon = 20000
	}
	suite := fixedSuite(o.Quick)
	allRounds := make([]int, len(suite)*len(skews))
	o.sweep(len(allRounds), func(ci int, rng *rand.Rand) {
		g, skew := suite[ci/len(skews)], skews[ci%len(skews)]
		allRounds[ci] = -1
		speeds := make([]float64, g.N())
		for i := range speeds {
			// Half the nodes fast (speed = skew), half slow (speed 1),
			// randomly assigned so slow/fast regions are not aligned
			// with topology structure.
			if rng.Intn(2) == 0 {
				speeds[i] = skew
			} else {
				speeds[i] = 1
			}
		}
		init := workload.Continuous(workload.Spike, g.N(), 1e6, nil)
		h, err := hetero.NewContinuous(g, init, speeds)
		if err != nil {
			return
		}
		rounds := horizon + 1
		for r := 0; r <= horizon; r++ {
			if h.MaxRelativeDeviation() <= 1e-6 {
				rounds = r
				break
			}
			h.Step()
		}
		allRounds[ci] = rounds
	})
	// The slowdown column is relative to each graph's skew-1 baseline, so it
	// is a post-pass over the collected cells (skews[0] is always 1).
	for ci, rounds := range allRounds {
		if rounds < 0 {
			continue
		}
		g := suite[ci/len(skews)]
		baseRounds := allRounds[(ci/len(skews))*len(skews)]
		slowdown := 0.0
		if baseRounds > 0 {
			slowdown = float64(rounds) / float64(baseRounds)
		}
		t.AddRowf(g.Name(), skews[ci%len(skews)], rounds, slowdown)
	}
	t.Note("skew 1 is the homogeneous baseline (identical to Algorithm 1); rising skew narrows the effective conductance between slow and fast regions and stretches convergence accordingly.")
	return t
}

// A7PsiExact computes the exact (finite-horizon) local divergence Ψ(M) of
// [16] from the diffusion-matrix powers — the quantity E13 samples from one
// trajectory — and compares it against the δ·log n/µ bound shape across the
// topology suite.
func A7PsiExact(o Options) *trace.Table {
	t := trace.NewTable("A7 — exact local divergence Ψ(M) of [16] vs bound shape",
		"graph", "µ = 1−γ", "horizon", "Ψ(M)", "δ·ln(n)/µ", "Ψ/shape")
	suite := fixedSuite(o.Quick)
	rows := make([]row, len(suite))
	o.sweep(len(rows), func(i int, _ *rand.Rand) {
		g := suite[i]
		m := spectral.PaperDiffusionMatrix(g)
		mu, err := spectral.EigenGap(m)
		if err != nil || mu <= 0 {
			return
		}
		horizon := int(20/mu) + 50
		if max := 20000; horizon > max {
			horizon = max
		}
		psi := markov.PsiMatrix(g, m, horizon)
		shape := markov.PsiBoundShape(g, mu)
		rows[i] = row{g.Name(), mu, horizon, psi, shape, psi / shape}
	})
	emit(t, rows)
	t.Note("[16] prove Ψ(M) = O(δ·log n/µ); Ψ/shape staying within a moderate constant across the suite reproduces that theorem's content.")
	return t
}
