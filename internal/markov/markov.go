// Package markov implements the idealized-Markov-chain view of discrete
// load balancing from Rabani, Sinclair and Wanka [16], which the paper's
// related-work section positions itself against.
//
// The idealized chain evolves the continuous vector xᵗ⁺¹ = M·xᵗ for the
// scheme's diffusion matrix M, while the actual discrete system moves only
// integral tokens. [16] quantify the deviation of the two trajectories by
// the *local divergence* Ψ: the sum over time and over edges of the load
// differences the rounding introduces, and prove Ψ(M) = O(δ·log n/µ) where
// µ = 1 − γ is the eigenvalue gap. This package runs the two systems in
// lockstep and measures the realized divergence and the trajectory gap
// ‖discrete − idealized‖∞, which the E13 experiment reports.
package markov

import (
	"math"

	"repro/internal/diffusion"
	"repro/internal/graph"
	"repro/internal/load"
	"repro/internal/matrix"
)

// CoupledRun is the outcome of running the discrete system against its
// idealized chain for T rounds from the same start.
type CoupledRun struct {
	Rounds int
	// LocalDivergence is Σ_t Σ_{(i,j)∈E} |Δᵗᵢ − Δᵗⱼ| where Δᵗ is the
	// per-node deviation (discrete − idealized) after round t: the realized
	// analogue of [16]'s Ψ.
	LocalDivergence float64
	// MaxDeviation is max over rounds of ‖discrete − idealized‖∞.
	MaxDeviation float64
	// FinalDeviation is ‖discrete − idealized‖∞ after the last round.
	FinalDeviation float64
	// IdealPhi and DiscretePhi are the final potentials of both systems.
	IdealPhi, DiscretePhi float64
}

// Couple runs the discrete Algorithm 1 and the idealized continuous chain
// (same transfer rule, fractional flows) in lockstep for T rounds on g.
func Couple(g *graph.G, initial []int64, T int) CoupledRun {
	disc := diffusion.NewDiscrete(g, initial)
	init := make([]float64, len(initial))
	for i, v := range initial {
		init[i] = float64(v)
	}
	ideal := diffusion.NewContinuous(g, init)

	out := CoupledRun{Rounds: T}
	dev := make(matrix.Vector, g.N())
	for t := 0; t < T; t++ {
		disc.Step()
		ideal.Step()
		dv := disc.Load.Tokens()
		iv := ideal.Load.Vector()
		for i := range dev {
			dev[i] = float64(dv[i]) - iv[i]
		}
		var roundDiv float64
		for _, e := range g.Edges() {
			roundDiv += math.Abs(dev[e.U] - dev[e.V])
		}
		out.LocalDivergence += roundDiv
		if inf := dev.NormInf(); inf > out.MaxDeviation {
			out.MaxDeviation = inf
		}
	}
	out.FinalDeviation = dev.NormInf()
	out.IdealPhi = ideal.Potential()
	out.DiscretePhi = disc.Potential()
	return out
}

// RSWRoundBound returns the [16] idealized-chain round count
// r = (2/µ)·ln(K·n²/x) sufficient to reduce an initial discrepancy K to x,
// for eigenvalue gap µ = 1 − γ.
func RSWRoundBound(mu float64, K float64, n int, x float64) float64 {
	if mu <= 0 || K <= 0 || x <= 0 {
		return math.Inf(1)
	}
	return 2 / mu * math.Log(K*float64(n)*float64(n)/x)
}

// PsiBoundShape returns the [16] divergence-bound shape δ·ln(n)/µ that E13
// compares the measured Ψ against (the theorem hides a constant; the
// experiment reports the ratio, which should stay bounded as n grows).
func PsiBoundShape(g *graph.G, mu float64) float64 {
	if mu <= 0 {
		return math.Inf(1)
	}
	return float64(g.MaxDegree()) * math.Log(float64(g.N())) / mu
}

// IdealizedDiscrepancyAfter runs the idealized chain for T rounds and
// returns the final discrepancy; a cheap helper for bound checks.
func IdealizedDiscrepancyAfter(g *graph.G, initial []float64, T int) float64 {
	st := diffusion.NewContinuous(g, initial)
	for t := 0; t < T; t++ {
		st.Step()
	}
	return load.NewContinuous(st.Load.Vector()).Discrepancy()
}
