// Package sim is the round-based simulation driver shared by the examples,
// the experiment harness and the integration tests. It runs any stepper —
// every algorithm package exposes the same tiny System surface — until a
// stopping condition fires, recording the potential trajectory and derived
// convergence metrics.
//
// The synchronous-round model of the paper maps directly onto this driver:
// one Step call is one parallel round; the driver never interleaves rounds.
package sim

import (
	"fmt"
	"math"
)

// System is the stepper interface implemented by every balancing algorithm
// in this repository (diffusion.Continuous, diffusion.Discrete,
// dimexchange.*, randpair.*, diffusion.FirstOrder, …).
type System interface {
	// Step advances the system one synchronous round.
	Step()
	// Potential returns Φ of the current load distribution.
	Potential() float64
}

// ContinuousState is implemented by continuous-mode steppers whose load
// vector can be read — and mutated in place — between rounds. It is the
// scenario engine's injection hook: a round loop reads the vector to aim
// (e.g. at the most-loaded node) and adds arrivals directly to it, without
// knowing the concrete algorithm type or rebuilding the stepper.
type ContinuousState interface {
	// LoadVector returns the live per-node load vector (not a copy).
	LoadVector() []float64
}

// DiscreteState is ContinuousState for token-mode steppers.
type DiscreteState interface {
	// LoadTokens returns the live per-node token counts (not a copy).
	LoadTokens() []int64
}

// StopFunc inspects the state after each round and returns true to halt.
// round is 1-based (the number of completed rounds), phi the potential
// after that round.
type StopFunc func(round int, phi float64) bool

// UntilPotential stops once Φ ≤ target.
func UntilPotential(target float64) StopFunc {
	return func(_ int, phi float64) bool { return phi <= target }
}

// UntilFraction stops once Φ ≤ frac·Φ⁰; phi0 must be the starting
// potential.
func UntilFraction(phi0, frac float64) StopFunc {
	target := phi0 * frac
	return func(_ int, phi float64) bool { return phi <= target }
}

// Never runs to the round limit.
func Never() StopFunc { return func(int, float64) bool { return false } }

// Result is the trajectory record of one run.
type Result struct {
	// Rounds is the number of rounds executed.
	Rounds int
	// Phi holds Φ after round t at index t (index 0 is the starting Φ), so
	// len(Phi) == Rounds+1.
	Phi []float64
	// Converged reports whether the stop condition fired (false means the
	// round limit was hit first).
	Converged bool
}

// PhiStart returns the initial potential.
func (r Result) PhiStart() float64 { return r.Phi[0] }

// PhiEnd returns the final potential.
func (r Result) PhiEnd() float64 { return r.Phi[len(r.Phi)-1] }

// DropFactors returns the per-round ratios Φᵗ⁺¹/Φᵗ (skipping rounds with
// Φᵗ = 0); the experiments compare their mean against the paper's
// contraction constants.
func (r Result) DropFactors() []float64 {
	out := make([]float64, 0, r.Rounds)
	for t := 0; t+1 < len(r.Phi); t++ {
		if r.Phi[t] > 0 {
			out = append(out, r.Phi[t+1]/r.Phi[t])
		}
	}
	return out
}

// String implements fmt.Stringer.
func (r Result) String() string {
	return fmt.Sprintf("Result{rounds=%d Φ: %.4g → %.4g converged=%v}", r.Rounds, r.PhiStart(), r.PhiEnd(), r.Converged)
}

// Run drives sys until stop fires or maxRounds elapse, recording Φ after
// every round. maxRounds must be ≥ 0.
func Run(sys System, maxRounds int, stop StopFunc) Result {
	if maxRounds < 0 {
		panic("sim: negative maxRounds")
	}
	res := Result{Phi: make([]float64, 1, maxRounds+1)}
	res.Phi[0] = sys.Potential()
	if stop != nil && stop(0, res.Phi[0]) {
		res.Converged = true
		return res
	}
	for t := 1; t <= maxRounds; t++ {
		sys.Step()
		phi := sys.Potential()
		res.Phi = append(res.Phi, phi)
		res.Rounds = t
		if stop != nil && stop(t, phi) {
			res.Converged = true
			break
		}
	}
	return res
}

// RoundsToFraction runs sys until Φ ≤ frac·Φ⁰ and returns the round count,
// or maxRounds+1 if the target was not reached (sentinel convention used by
// the comparison experiments: "did not converge within budget").
func RoundsToFraction(sys System, frac float64, maxRounds int) int {
	phi0 := sys.Potential()
	if phi0 == 0 {
		return 0
	}
	res := Run(sys, maxRounds, UntilFraction(phi0, frac))
	if !res.Converged {
		return maxRounds + 1
	}
	return res.Rounds
}

// MeanDropFactor runs sys for exactly rounds rounds and returns the
// geometric-mean per-round contraction factor (Φᵀ/Φ⁰)^(1/T); NaN when the
// potential hits zero or the start is already balanced.
func MeanDropFactor(sys System, rounds int) float64 {
	phi0 := sys.Potential()
	if phi0 <= 0 {
		return math.NaN()
	}
	res := Run(sys, rounds, Never())
	phiT := res.PhiEnd()
	if phiT <= 0 {
		return math.NaN()
	}
	return math.Pow(phiT/phi0, 1/float64(rounds))
}
