// Package ballsbins provides the balls-into-bins measurements behind the
// §6 discussion of Algorithm 2: when every one of n nodes picks a uniform
// partner, the partner-selection process is exactly n balls thrown into n
// bins, so the most-picked node has Θ(log n / log log n) incoming picks
// with high probability [1]. That is why Algorithm 2's analysis cannot go
// through the maximum degree and needs the per-link Lemma 9 instead.
package ballsbins

import (
	"math"
	"math/rand"
)

// Throw throws balls uniformly into bins and returns the bin occupancy.
func Throw(balls, bins int, rng *rand.Rand) []int {
	occ := make([]int, bins)
	for b := 0; b < balls; b++ {
		occ[rng.Intn(bins)]++
	}
	return occ
}

// MaxLoad returns the fullest bin's occupancy after throwing balls into
// bins uniformly at random.
func MaxLoad(balls, bins int, rng *rand.Rand) int {
	occ := Throw(balls, bins, rng)
	max := 0
	for _, c := range occ {
		if c > max {
			max = c
		}
	}
	return max
}

// ExpectedMaxLoadApprox returns the classical asymptotic approximation of
// the maximum load for n balls in n bins: ln n / ln ln n (leading term).
// Defined for n ≥ 3 (ln ln n > 0); the experiments only use it there.
func ExpectedMaxLoadApprox(n int) float64 {
	if n < 3 {
		return 1
	}
	return math.Log(float64(n)) / math.Log(math.Log(float64(n)))
}

// MaxLoadStats runs trials of n-balls-into-n-bins and returns the sample of
// maximum loads; the E14 experiment summarizes it against
// ExpectedMaxLoadApprox.
func MaxLoadStats(n, trials int, rng *rand.Rand) []float64 {
	out := make([]float64, trials)
	for t := range out {
		out[t] = float64(MaxLoad(n, n, rng))
	}
	return out
}

// CollisionProbability estimates, by Monte-Carlo, the probability that a
// fixed bin receives more than k balls when n balls are thrown into n bins
// — the quantity Lemma 9 bounds by (e/k)^k via the binomial tail.
func CollisionProbability(n, k, trials int, rng *rand.Rand) float64 {
	over := 0
	for t := 0; t < trials; t++ {
		// Only bin 0's count matters; sample it directly as Binomial(n, 1/n).
		c := 0
		for b := 0; b < n; b++ {
			if rng.Float64() < 1/float64(n) {
				c++
			}
		}
		if c > k {
			over++
		}
	}
	return float64(over) / float64(trials)
}

// BinomialTailBound returns the Lemma 9-style union bound
// C(n,k)·p^k ≤ (e·n·p/k)^k on Pr[Binomial(n, p) ≥ k].
func BinomialTailBound(n int, p float64, k int) float64 {
	return math.Pow(math.E*float64(n)*p/float64(k), float64(k))
}
