package batch

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// Sink consumes finished cells one at a time. The engine feeds every sink
// through a sequencing layer that reorders completion-ordered results into
// expansion order, so a sink sees exactly the stream a Workers=1 run would
// produce — deterministic for any worker count — while each cell is still
// delivered the moment it (and all its predecessors) finished, not at the
// end of the sweep.
//
// Sink methods are never called concurrently. The engine does not call
// Close: the sink's creator owns its lifetime (a CLI closes its journal file
// after rendering, a test after asserting).
type Sink interface {
	// Cell receives one finished cell (successful, failed or cancelled —
	// failed cells carry their identity and a non-empty Err).
	Cell(c Cell) error
	// Close flushes and releases the sink.
	Close() error
}

// SpecWriter is an optional Sink extension: sinks that record provenance
// receive the fully-defaulted spec once, before any cell. JSONLSink uses it
// to stamp the journal with the parameters its outcomes were produced
// under, which is what lets Resume refuse a journal recorded for a
// different n/scale/ε (outcomes from different parameters are not
// comparable and would silently corrupt a merged figure).
type SpecWriter interface {
	Spec(spec Spec) error
}

// MemorySink collects cells in memory — the classic all-in-RAM Report path
// expressed as a sink, for callers composing it with streaming sinks via
// MultiSink.
type MemorySink struct {
	cells []Cell
}

// NewMemorySink returns an empty in-memory sink.
func NewMemorySink() *MemorySink { return &MemorySink{} }

// Cell appends c.
func (m *MemorySink) Cell(c Cell) error {
	m.cells = append(m.cells, c)
	return nil
}

// Close is a no-op.
func (m *MemorySink) Close() error { return nil }

// Cells returns the collected cells in delivery (= expansion) order. The
// caller must not mutate the slice while the sweep is still running.
func (m *MemorySink) Cells() []Cell { return m.cells }

// Report builds the aggregated report over the collected cells.
func (m *MemorySink) Report(spec Spec) *Report {
	rep := &Report{Spec: spec.withDefaults(), Cells: m.cells}
	rep.aggregate()
	return rep
}

// JSONLSink streams each finished cell as one JSON line. Every line is
// emitted with a single Write call, so an interrupted sweep leaves a valid
// journal of complete lines (plus at most one torn final line, which
// ReadJournal tolerates); nothing is buffered in user space between cells.
// The journal is the input to Resume.
type JSONLSink struct {
	w      io.Writer
	closer io.Closer
	// Origin, when non-empty, is recorded in the journal's spec header as
	// provenance — which launcher/host/attempt produced this journal. It is
	// ignored by every identity check (resume, merge, progress), exists
	// purely for humans and supervisors reading the file back, and is
	// omitted entirely when unset, so unannotated journals keep their exact
	// legacy bytes.
	Origin string
}

// NewJSONLSink streams cells to w. Close does not close w.
func NewJSONLSink(w io.Writer) *JSONLSink { return &JSONLSink{w: w} }

// CreateJSONL creates the journal file at path and streams cells to it.
// Close closes the file.
//
// The open is O_EXCL: a journal that already exists is refused instead of
// truncated. Two shard processes accidentally pointed at the same journal
// path would otherwise interleave their lines into a file no reader could
// validate — the second opener now fails loudly before writing a byte. A
// journal that should legitimately be rewritten is either resumed in place
// (ReplaceJSONL, after its cells have been read back) or removed first.
func CreateJSONL(path string) (*JSONLSink, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		if os.IsExist(err) {
			return nil, fmt.Errorf(
				"batch: journal %s already exists — resume it (it may hold another shard's, or a previous run's, cells) or remove it first", path)
		}
		return nil, fmt.Errorf("batch: journal: %w", err)
	}
	return &JSONLSink{w: f, closer: f}, nil
}

// ReplaceJSONL truncates and rewrites the journal at path — the
// resume-in-place open, for callers that have already read the partial
// journal back and are about to re-journal every cell (replayed and fresh)
// through the new sink. Everything CreateJSONL's O_EXCL protects against is
// deliberate here.
func ReplaceJSONL(path string) (*JSONLSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("batch: journal: %w", err)
	}
	return &JSONLSink{w: f, closer: f}, nil
}

// specHeader is the journal's first line: the spec the cells were produced
// under, plus optional provenance. Cells never carry a "spec" key, so the
// reader can tell the two line shapes apart without a format version.
type specHeader struct {
	Spec *Spec `json:"spec"`
	// Origin records which executor produced the journal (e.g.
	// "local:s1:attempt2", "ssh:host1:s3-steal-1"). Absent when unset;
	// readers that predate it ignore unknown keys, so annotated journals
	// stay backward-readable.
	Origin string `json:"origin,omitempty"`
}

// Spec writes the journal header line (implements SpecWriter). An
// all-static scenario dimension is serialized as absent — the legacy
// header form — so scenario-free journals stay byte-identical across
// engine versions and golden-journal comparisons keep holding.
func (s *JSONLSink) Spec(spec Spec) error {
	spec = spec.headerCanonical()
	b, err := json.Marshal(specHeader{Spec: &spec, Origin: s.Origin})
	if err != nil {
		return fmt.Errorf("batch: journal: marshal spec: %w", err)
	}
	b = append(b, '\n')
	if _, err := s.w.Write(b); err != nil {
		return fmt.Errorf("batch: journal: %w", err)
	}
	return nil
}

// Cell writes c as one JSON line.
func (s *JSONLSink) Cell(c Cell) error {
	b, err := json.Marshal(c)
	if err != nil {
		return fmt.Errorf("batch: journal: marshal %s: %w", c.Key(), err)
	}
	b = append(b, '\n')
	if _, err := s.w.Write(b); err != nil {
		return fmt.Errorf("batch: journal: %w", err)
	}
	return nil
}

// Close fsyncs the journal (when the writer supports it) and closes the
// underlying file when the sink owns one. The sync is what makes a cleanly
// exiting shard's journal durable: without it, the final lines could still
// sit in the OS page cache when the process exits, and a machine crash
// before writeback would hand the merger a torn tail even though the shard
// reported success.
func (s *JSONLSink) Close() error {
	if f, ok := s.w.(interface{ Sync() error }); ok {
		if err := f.Sync(); err != nil {
			return fmt.Errorf("batch: journal: sync: %w", err)
		}
	}
	if s.closer == nil {
		return nil
	}
	return s.closer.Close()
}

// MultiSink fans every cell out to each sink in order. A failing sink does
// not stop delivery to the others; the first error is reported.
type MultiSink []Sink

// Spec forwards the spec to every member implementing SpecWriter.
func (m MultiSink) Spec(spec Spec) error {
	var first error
	for _, s := range m {
		if sw, ok := s.(SpecWriter); ok {
			if err := sw.Spec(spec); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// Cell delivers c to every sink.
func (m MultiSink) Cell(c Cell) error {
	var first error
	for _, s := range m {
		if err := s.Cell(c); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close closes every sink.
func (m MultiSink) Close() error {
	var first error
	for _, s := range m {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// sequencer is the ordering layer between the worker pool and a sink: units
// finish in scheduling order, but the sink must observe expansion order for
// its output to be deterministic across worker counts. Workers hand each
// finished cell to deliver, which buffers it until every lower-index cell
// has been passed on.
//
// Dynamic index hand-out puts no bound of its own on how far workers can
// run ahead of one slow unit, so the sequencer enforces one: acquire blocks
// a worker whose index is more than lookahead cells past the oldest
// undelivered unit. That caps both the pending buffer and the journal's lag
// behind the computation frontier — after a hard kill, at most
// lookahead+workers completed cells can be missing from the journal (they
// simply re-run on resume).
type sequencer struct {
	mu        sync.Mutex
	ready     sync.Cond // broadcast whenever next advances
	sink      Sink      // nil → pure reordering no-op
	next      int
	pending   map[int]Cell
	err       error  // first sink error; delivery stops feeding the sink after it
	abort     func() // cancels the sweep when the sink fails
	lookahead int    // max distance a worker may run ahead of next (≤ 0 = unbounded)
}

func newSequencer(sink Sink, abort func(), lookahead int) *sequencer {
	q := &sequencer{sink: sink, pending: make(map[int]Cell), abort: abort, lookahead: lookahead}
	q.ready.L = &q.mu
	return q
}

// acquire blocks until index i is within the lookahead window. The worker
// holding the oldest undelivered index never blocks (i == next there), so
// the window always makes progress.
func (q *sequencer) acquire(i int) {
	if q.lookahead <= 0 {
		return
	}
	q.mu.Lock()
	for i >= q.next+q.lookahead {
		q.ready.Wait()
	}
	q.mu.Unlock()
}

// deliver registers cell i and flushes the contiguous run starting at next.
func (q *sequencer) deliver(i int, c Cell) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.pending[i] = c
	advanced := false
	for {
		ready, ok := q.pending[q.next]
		if !ok {
			break
		}
		delete(q.pending, q.next)
		q.next++
		advanced = true
		if q.sink == nil || q.err != nil {
			continue
		}
		if err := q.sink.Cell(ready); err != nil {
			q.err = err
			if q.abort != nil {
				q.abort()
			}
		}
	}
	if advanced {
		q.ready.Broadcast()
	}
}
