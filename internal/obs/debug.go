package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
)

// RegisterDebug mounts the telemetry endpoints on mux: Prometheus text
// exposition of reg at /metrics/prom, and the pprof handler family under
// /debug/pprof/. The pprof routes are mounted explicitly rather than via
// net/http/pprof's DefaultServeMux side effect, so daemons with their own
// mux (lbserved) get them without exposing DefaultServeMux.
func RegisterDebug(mux *http.ServeMux, reg *Registry) {
	mux.HandleFunc("/metrics/prom", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// RegisterRuntime registers process-level gauges (goroutines, heap bytes)
// sampled at scrape time.
func RegisterRuntime(reg *Registry) {
	reg.GaugeFunc("go_goroutines", "Number of goroutines.", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	reg.GaugeFunc("go_heap_alloc_bytes", "Bytes of allocated heap objects.", func() float64 {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return float64(m.HeapAlloc)
	})
}

// ServeDebug starts the -telemetry debug listener on addr, serving
// /metrics/prom and /debug/pprof/* in a background goroutine. It returns
// the bound address (useful with ":0") and a shutdown func. The server is
// best-effort diagnostics: serve errors after a successful bind are
// dropped.
func ServeDebug(addr string, reg *Registry) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	mux := http.NewServeMux()
	RegisterDebug(mux, reg)
	RegisterRuntime(reg)
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() { _ = srv.Close() }, nil
}
