package batch

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/trace"
)

// AggSink folds the sweep's statistics incrementally as cells arrive: the
// per-grid-cell Aggregates (bound ratios, RMS discrepancy, convergence
// counts across seeds) plus per-dimension marginals (the same statistics
// collapsed onto each topology, algorithm, mode, workload and seed value).
// No cell is ever retained, so a report can render straight from a journal
// stream — or from a live sweep via RunStream — with memory proportional to
// the number of distinct grid cells and dimension values, independent of
// the unit (seed × cell) count.
//
// The folding arithmetic is Aggregate.fold/finalize — the exact sequence
// Report.aggregate applies to materialized cells — and cells always reach a
// sink in expansion order (the engine's sequencer guarantees it for live
// sweeps, MergeJournals' index-ordered merge for shard journals), so
// AggSink's aggregates are bit-identical to a MemorySink-derived Report's
// for any worker count and any shard split.
type AggSink struct {
	spec       *Spec
	shardsSeen map[[2]int]bool
	expected   int
	units      int
	failed     int

	index map[string]int // CellKey → position in aggs, first-seen order
	aggs  []Aggregate
	mdex  map[string]int // dimension\x00value → position in margs
	margs []marginalAcc
}

// marginalAcc is one in-progress marginal: the running sums of Aggregate,
// tagged with the dimension rank and value the cells were collapsed onto.
type marginalAcc struct {
	dim   int
	value string
	seen  int // insertion order, for a stable sort within a dimension
	agg   Aggregate
}

// marginalDims names the collapsed dimensions in report order.
var marginalDims = [...]string{"topology", "algorithm", "mode", "workload", "scenario", "seed"}

// NewAggSink returns an empty incremental aggregator.
func NewAggSink() *AggSink {
	return &AggSink{
		shardsSeen: make(map[[2]int]bool),
		index:      make(map[string]int),
		mdex:       make(map[string]int),
	}
}

// Spec records the run parameters (implements SpecWriter). The first spec
// fixes the grid; every later one — shard journals carry one header each —
// must describe the same grid or the fold would silently mix incomparable
// outcomes. The completeness target is the grid's full expansion: folding a
// single shard (or a merge missing one) reports the unfolded remainder as
// missing, because the figure the aggregates describe is the whole grid.
func (s *AggSink) Spec(spec Spec) error {
	spec = spec.withDefaults()
	if s.spec == nil {
		first := spec
		s.spec = &first
		s.expected = spec.UnitCount()
	} else if err := SameGrid(*s.spec, spec); err != nil {
		return err
	}
	s.shardsSeen[[2]int{spec.ShardIndex, spec.ShardCount}] = true
	return nil
}

// MissingShards lists the shard indexes the seen headers' shard count
// declares but no folded journal covered — the "you merged 2 of 3 shards"
// diagnostic. Empty when unsharded, complete, or when headers disagree on
// the shard count (no single split to be complete against).
func (s *AggSink) MissingShards() []int {
	m := 0
	for id := range s.shardsSeen {
		switch {
		case id[1] == 0:
			return nil // an unsharded journal covers the whole grid itself
		case m == 0:
			m = id[1]
		case id[1] != m:
			return nil
		}
	}
	var missing []int
	for i := 0; i < m; i++ {
		if !s.shardsSeen[[2]int{i, m}] {
			missing = append(missing, i)
		}
	}
	return missing
}

// Cell folds one finished cell into the aggregates and marginals.
func (s *AggSink) Cell(c Cell) error {
	s.units++
	if c.Err != "" {
		s.failed++
	}
	key := c.CellKey()
	i, ok := s.index[key]
	if !ok {
		i = len(s.aggs)
		s.index[key] = i
		s.aggs = append(s.aggs, Aggregate{
			Topology:  c.Topology,
			Algorithm: c.Algorithm,
			Mode:      c.Mode,
			Workload:  c.WorkloadName,
			Scenario:  c.Scenario,
		})
	}
	s.aggs[i].fold(c)

	for dim, value := range [...]string{
		c.Topology, c.Algorithm, c.Mode, c.WorkloadName,
		scenarioDisplay(c.Scenario), fmt.Sprintf("s%d", c.Seed),
	} {
		s.marginal(dim, value).fold(c)
	}
	return nil
}

// marginal returns the accumulator for one (dimension, value), creating it
// in first-seen order.
func (s *AggSink) marginal(dim int, value string) *Aggregate {
	key := marginalDims[dim] + "\x00" + value
	i, ok := s.mdex[key]
	if !ok {
		i = len(s.margs)
		s.mdex[key] = i
		s.margs = append(s.margs, marginalAcc{dim: dim, value: value, seen: i})
	}
	return &s.margs[i].agg
}

// Close is a no-op: the accumulated report stays readable after the sweep.
func (s *AggSink) Close() error { return nil }

// Marginal is one row of a per-dimension summary: every cell of the sweep
// that carries the given dimension value, collapsed into the same statistics
// an Aggregate holds.
type Marginal struct {
	Dimension string `json:"dimension"`
	Value     string `json:"value"`
	Runs      int    `json:"runs"`
	Converged int    `json:"converged"`
	Failed    int    `json:"failed,omitempty"`

	MeanRounds     float64 `json:"mean_rounds"`
	SDRounds       float64 `json:"sd_rounds"`
	MeanBoundRatio float64 `json:"mean_bound_ratio,omitempty"`
	MeanRMS        float64 `json:"mean_rms_discrepancy"`
}

// AggReport is the streaming-only report: grid-cell aggregates and
// per-dimension marginals, but no cells — the rendering counterpart of
// Report for sweeps whose cells only ever lived in a journal.
type AggReport struct {
	Spec Spec `json:"spec"`
	// Units counts the cells folded in; ExpectedUnits is the grid's full
	// expansion size per the spec headers (0 when no header was seen), so
	// Units < ExpectedUnits flags a merge that is missing a shard or part of
	// one — or a single-shard stream, whose aggregates only cover its slice.
	// Failed counts folded cells that carried errors.
	Units         int `json:"units"`
	ExpectedUnits int `json:"expected_units,omitempty"`
	Failed        int `json:"failed,omitempty"`

	Aggregates []Aggregate `json:"aggregates"`
	Marginals  []Marginal  `json:"marginals"`
}

// Report finalizes a snapshot of the folded statistics. The sink keeps
// accumulating; Report can be called again after more cells.
func (s *AggSink) Report() *AggReport {
	r := &AggReport{
		Units:         s.units,
		ExpectedUnits: s.expected,
		Failed:        s.failed,
		Aggregates:    append([]Aggregate(nil), s.aggs...),
	}
	if s.spec != nil {
		r.Spec = *s.spec
		// A report folded over several shards describes the union, not the
		// first journal's slice.
		if len(s.shardsSeen) > 1 {
			r.Spec.ShardIndex, r.Spec.ShardCount = 0, 0
		}
	}
	for i := range r.Aggregates {
		r.Aggregates[i].finalize()
	}
	margs := append([]marginalAcc(nil), s.margs...)
	sort.SliceStable(margs, func(i, j int) bool {
		if margs[i].dim != margs[j].dim {
			return margs[i].dim < margs[j].dim
		}
		return margs[i].seen < margs[j].seen
	})
	r.Marginals = make([]Marginal, len(margs))
	for i, m := range margs {
		m.agg.finalize()
		r.Marginals[i] = Marginal{
			Dimension:      marginalDims[m.dim],
			Value:          m.value,
			Runs:           m.agg.Runs,
			Converged:      m.agg.Converged,
			Failed:         m.agg.Failed,
			MeanRounds:     m.agg.MeanRounds,
			SDRounds:       m.agg.SDRounds,
			MeanBoundRatio: m.agg.MeanBoundRatio,
			MeanRMS:        m.agg.MeanRMS,
		}
	}
	return r
}

// Missing is how many expected units have not been folded (0 when complete
// or when no spec header announced a target).
func (r *AggReport) Missing() int {
	if r.ExpectedUnits > r.Units {
		return r.ExpectedUnits - r.Units
	}
	return 0
}

// Table renders the grid-cell aggregates (same columns as
// Report.AggregateTable).
func (r *AggReport) Table() *trace.Table {
	t := trace.NewTable(fmt.Sprintf("streaming aggregates — %d units", r.Units),
		"topology", "algorithm", "mode", "workload", "scenario",
		"runs", "converged", "failed", "rounds (mean±sd)", "mean rounds/bound", "mean rms disc.")
	for _, a := range r.Aggregates {
		ratio := "-"
		if a.MeanBoundRatio > 0 {
			ratio = fmt.Sprintf("%.4g", a.MeanBoundRatio)
		}
		t.AddRow(a.Topology, a.Algorithm, a.Mode, a.Workload,
			scenarioDisplay(a.Scenario),
			fmt.Sprintf("%d", a.Runs), fmt.Sprintf("%d", a.Converged),
			fmt.Sprintf("%d", a.Failed),
			fmt.Sprintf("%.4g±%.3g", a.MeanRounds, a.SDRounds), ratio,
			fmt.Sprintf("%.4g", a.MeanRMS))
	}
	return t
}

// MarginalTable renders the per-dimension marginals.
func (r *AggReport) MarginalTable() *trace.Table {
	t := trace.NewTable("per-dimension marginals",
		"dimension", "value", "runs", "converged", "failed",
		"rounds (mean±sd)", "mean rounds/bound", "mean rms disc.")
	for _, m := range r.Marginals {
		ratio := "-"
		if m.MeanBoundRatio > 0 {
			ratio = fmt.Sprintf("%.4g", m.MeanBoundRatio)
		}
		t.AddRow(m.Dimension, m.Value,
			fmt.Sprintf("%d", m.Runs), fmt.Sprintf("%d", m.Converged),
			fmt.Sprintf("%d", m.Failed),
			fmt.Sprintf("%.4g±%.3g", m.MeanRounds, m.SDRounds), ratio,
			fmt.Sprintf("%.4g", m.MeanRMS))
	}
	return t
}

// RenderCSV writes the aggregate block (identical to the aggregate block of
// Report.RenderCSV) followed by a blank line and the marginal block. Bytes
// are identical for any worker count and any shard split.
func (r *AggReport) RenderCSV(w io.Writer) error {
	aggs := trace.NewTable("", "topology", "algorithm", "mode", "workload", "scenario",
		"runs", "converged", "failed", "mean_rounds", "sd_rounds", "mean_bound_ratio", "mean_rms_discrepancy")
	for _, a := range r.Aggregates {
		aggs.AddRow(a.Topology, a.Algorithm, a.Mode, a.Workload,
			scenarioDisplay(a.Scenario),
			fmt.Sprintf("%d", a.Runs), fmt.Sprintf("%d", a.Converged), fmt.Sprintf("%d", a.Failed),
			fmt.Sprintf("%.8g", a.MeanRounds), fmt.Sprintf("%.8g", a.SDRounds),
			fmt.Sprintf("%.8g", a.MeanBoundRatio), fmt.Sprintf("%.8g", a.MeanRMS))
	}
	if err := aggs.RenderCSV(w); err != nil {
		return err
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}
	margs := trace.NewTable("", "dimension", "value",
		"runs", "converged", "failed", "mean_rounds", "sd_rounds", "mean_bound_ratio", "mean_rms_discrepancy")
	for _, m := range r.Marginals {
		margs.AddRow(m.Dimension, m.Value,
			fmt.Sprintf("%d", m.Runs), fmt.Sprintf("%d", m.Converged), fmt.Sprintf("%d", m.Failed),
			fmt.Sprintf("%.8g", m.MeanRounds), fmt.Sprintf("%.8g", m.SDRounds),
			fmt.Sprintf("%.8g", m.MeanBoundRatio), fmt.Sprintf("%.8g", m.MeanRMS))
	}
	return margs.RenderCSV(w)
}

// RenderJSON writes the report as indented JSON (worker counts and wall
// times never enter, so the bytes are deterministic).
func (r *AggReport) RenderJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Render writes the report in the named format: "table" (aggregates plus
// marginals), "csv" or "json" — the single dispatch shared by the CLI's
// stream-agg paths and the orchestrator's merge, mirroring Report.Render.
func (r *AggReport) Render(format string, w io.Writer) error {
	switch format {
	case "table":
		if err := r.Table().Render(w); err != nil {
			return err
		}
		return r.MarginalTable().Render(w)
	case "csv":
		return r.RenderCSV(w)
	case "json":
		return r.RenderJSON(w)
	}
	return fmt.Errorf("batch: unknown format %q (want table, csv or json)", format)
}
