package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVectorDot(t *testing.T) {
	x := Vector{1, 2, 3}
	y := Vector{4, -5, 6}
	if got := x.Dot(y); got != 12 {
		t.Fatalf("dot = %v, want 12", got)
	}
}

func TestVectorDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Vector{1}.Dot(Vector{1, 2})
}

func TestNorms(t *testing.T) {
	x := Vector{3, -4}
	if got := x.Norm2(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Norm2 = %v", got)
	}
	if got := x.Norm1(); got != 7 {
		t.Fatalf("Norm1 = %v", got)
	}
	if got := x.NormInf(); got != 4 {
		t.Fatalf("NormInf = %v", got)
	}
}

func TestNorm2Stability(t *testing.T) {
	// A naive sum of squares overflows; the scaled implementation must not.
	x := Vector{1e200, 1e200}
	want := 1e200 * math.Sqrt2
	if got := x.Norm2(); math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("Norm2 = %v, want %v", got, want)
	}
	if got := (Vector{0, 0}).Norm2(); got != 0 {
		t.Fatalf("Norm2 of zero = %v", got)
	}
}

func TestSumMeanMinMax(t *testing.T) {
	x := Vector{2, -1, 5}
	if x.Sum() != 6 {
		t.Fatalf("Sum = %v", x.Sum())
	}
	if x.Mean() != 2 {
		t.Fatalf("Mean = %v", x.Mean())
	}
	if x.Min() != -1 || x.Max() != 5 {
		t.Fatalf("Min/Max = %v/%v", x.Min(), x.Max())
	}
	var empty Vector
	if empty.Mean() != 0 {
		t.Fatal("empty mean should be 0")
	}
	if !math.IsInf(empty.Min(), 1) || !math.IsInf(empty.Max(), -1) {
		t.Fatal("empty min/max conventions violated")
	}
}

func TestScaleAddScaledSub(t *testing.T) {
	x := Vector{1, 2}
	x.Scale(3)
	if x[0] != 3 || x[1] != 6 {
		t.Fatalf("Scale: %v", x)
	}
	x.AddScaled(2, Vector{1, 1})
	if x[0] != 5 || x[1] != 8 {
		t.Fatalf("AddScaled: %v", x)
	}
	d := x.Sub(Vector{5, 8})
	if d[0] != 0 || d[1] != 0 {
		t.Fatalf("Sub: %v", d)
	}
}

func TestNormalize(t *testing.T) {
	x := Vector{3, 4}
	n := x.Normalize()
	if math.Abs(n-5) > 1e-12 {
		t.Fatalf("returned norm %v", n)
	}
	if math.Abs(x.Norm2()-1) > 1e-12 {
		t.Fatalf("not unit after Normalize: %v", x.Norm2())
	}
	z := Vector{0, 0}
	if z.Normalize() != 0 {
		t.Fatal("zero vector normalize should return 0")
	}
}

func TestProjectOut(t *testing.T) {
	x := Vector{1, 2, 3}
	ones := Vector{1, 1, 1}
	x.ProjectOut(ones)
	if math.Abs(x.Dot(ones)) > 1e-12 {
		t.Fatalf("residual not orthogonal: %v", x.Dot(ones))
	}
	// Projecting out the zero vector is a no-op.
	y := Vector{1, 2}
	y.ProjectOut(Vector{0, 0})
	if y[0] != 1 || y[1] != 2 {
		t.Fatal("ProjectOut(0) must be a no-op")
	}
}

func TestSortedAndClone(t *testing.T) {
	x := Vector{3, 1, 2}
	s := x.Sorted()
	if s[0] != 1 || s[1] != 2 || s[2] != 3 {
		t.Fatalf("Sorted: %v", s)
	}
	if x[0] != 3 {
		t.Fatal("Sorted must not mutate receiver")
	}
	c := x.Clone()
	c[0] = 99
	if x[0] != 3 {
		t.Fatal("Clone must copy")
	}
}

func TestFillAndApproxEqual(t *testing.T) {
	x := NewVector(3).Fill(7)
	if x[2] != 7 {
		t.Fatalf("Fill: %v", x)
	}
	if !x.ApproxEqual(Vector{7, 7, 7 + 1e-12}, 1e-9) {
		t.Fatal("ApproxEqual should tolerate 1e-12")
	}
	if x.ApproxEqual(Vector{7, 7}, 1) {
		t.Fatal("length mismatch must not be equal")
	}
}

// Property: Cauchy-Schwarz |⟨x,y⟩| ≤ ‖x‖‖y‖.
func TestCauchySchwarzProperty(t *testing.T) {
	f := func(seed uint8) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		n := 1 + r.Intn(16)
		x, y := randomVector(r, n), randomVector(r, n)
		return math.Abs(x.Dot(y)) <= x.Norm2()*y.Norm2()*(1+1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: triangle inequality for Norm2 on x+y.
func TestTriangleInequalityProperty(t *testing.T) {
	f := func(seed uint8) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		n := 1 + r.Intn(16)
		x, y := randomVector(r, n), randomVector(r, n)
		sum := x.Clone().AddScaled(1, y)
		return sum.Norm2() <= x.Norm2()+y.Norm2()+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: ProjectOut leaves a vector orthogonal to the direction.
func TestProjectOutOrthogonalProperty(t *testing.T) {
	f := func(seed uint8) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		n := 2 + r.Intn(10)
		x, u := randomVector(r, n), randomVector(r, n)
		if u.Norm2() == 0 {
			return true
		}
		x.ProjectOut(u)
		return math.Abs(x.Dot(u)) < 1e-9*(1+u.Norm2())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
