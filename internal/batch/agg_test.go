package batch_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"testing"

	"repro/internal/batch"
	"repro/internal/graph"
)

// messyRun is fakeRun with failures and unbounded cells mixed in, so the
// aggregation paths that treat Failed and bounded counts specially are
// actually exercised.
func messyRun(u batch.Unit, g *graph.G, loads []float64, algoSeed int64) (batch.Outcome, error) {
	if u.Index%11 == 3 {
		return batch.Outcome{}, errors.New("synthetic unit failure")
	}
	out, err := fakeRun(u, g, loads, algoSeed)
	if u.Index%5 == 0 {
		out.Bound, out.BoundName = 0, "" // no theorem applies
		out.Converged = false
	}
	return out, err
}

// TestAggSinkMatchesReportAggregates is the equivalence satellite: the
// incrementally folded aggregates must be bit-identical to the ones the
// materialized Report derives from a MemorySink's cells — for any worker
// count, including sweeps with failed and unbounded cells.
func TestAggSinkMatchesReportAggregates(t *testing.T) {
	for _, workers := range []int{1, 4, 8} {
		spec := okSpec()
		spec.Workers = workers
		mem := batch.NewMemorySink()
		agg := batch.NewAggSink()
		rep, err := batch.RunSink(context.Background(), spec, messyRun, batch.MultiSink{mem, agg})
		if err != nil {
			t.Fatal(err)
		}
		fromCells, err := json.Marshal(mem.Report(spec).Aggregates)
		if err != nil {
			t.Fatal(err)
		}
		streamed := agg.Report()
		fromStream, err := json.Marshal(streamed.Aggregates)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(fromCells, fromStream) {
			t.Fatalf("workers=%d: streamed aggregates differ from MemorySink-derived ones:\n%s\nvs\n%s",
				workers, fromStream, fromCells)
		}
		if streamed.Units != len(rep.Cells) || streamed.Failed != rep.Failed() {
			t.Fatalf("workers=%d: counts off: units %d/%d failed %d/%d",
				workers, streamed.Units, len(rep.Cells), streamed.Failed, rep.Failed())
		}
		if streamed.ExpectedUnits != len(rep.Cells) || streamed.Missing() != 0 {
			t.Fatalf("workers=%d: expected %d missing %d for a complete sweep",
				workers, streamed.ExpectedUnits, streamed.Missing())
		}
	}
}

// TestAggSinkMarginals checks the per-dimension collapse: each topology's
// marginal covers exactly the units carrying that topology, and every
// dimension is present in declaration order.
func TestAggSinkMarginals(t *testing.T) {
	spec := okSpec()
	agg := batch.NewAggSink()
	if _, err := batch.RunSink(context.Background(), spec, fakeRun, agg); err != nil {
		t.Fatal(err)
	}
	rep := agg.Report()
	total := rep.Units
	perDim := map[string]int{}
	rank := map[string]int{"topology": 0, "algorithm": 1, "mode": 2, "workload": 3, "scenario": 4, "seed": 5}
	last := 0
	for _, m := range rep.Marginals {
		r, ok := rank[m.Dimension]
		if !ok {
			t.Fatalf("unknown marginal dimension %q", m.Dimension)
		}
		if r < last {
			t.Fatalf("marginals out of dimension order at %s/%s", m.Dimension, m.Value)
		}
		last = r
		perDim[m.Dimension] += m.Runs
		if m.Runs == 0 {
			t.Fatalf("empty marginal %s=%s", m.Dimension, m.Value)
		}
	}
	for dim, runs := range perDim {
		if runs != total {
			t.Fatalf("%s marginals cover %d units, want %d", dim, runs, total)
		}
	}
	// Spot-check one marginal's size: units per topology.
	want := total / len(spec.Topologies)
	for _, m := range rep.Marginals {
		if m.Dimension == "topology" && m.Runs != want {
			t.Fatalf("topology %s marginal has %d runs, want %d", m.Value, m.Runs, want)
		}
	}
}

// TestRunStreamMatchesRunSink: the streaming engine path (no in-process
// report) must deliver exactly the stream RunSink delivers, so the rendered
// aggregate bytes agree for any worker count.
func TestRunStreamMatchesRunSink(t *testing.T) {
	render := func(streaming bool, workers int) []byte {
		spec := okSpec()
		spec.Workers = workers
		agg := batch.NewAggSink()
		if streaming {
			if err := batch.RunStream(context.Background(), spec, messyRun, agg); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := batch.RunSink(context.Background(), spec, messyRun, agg); err != nil {
				t.Fatal(err)
			}
		}
		var b bytes.Buffer
		if err := agg.Report().RenderCSV(&b); err != nil {
			t.Fatal(err)
		}
		if err := agg.Report().RenderJSON(&b); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	ref := render(false, 1)
	for _, workers := range []int{1, 8} {
		if got := render(true, workers); !bytes.Equal(got, ref) {
			t.Fatalf("workers=%d: RunStream aggregate output differs from RunSink's", workers)
		}
	}
	if err := batch.RunStream(context.Background(), okSpec(), fakeRun, nil); err == nil {
		t.Fatal("RunStream accepted a nil sink — the results would vanish")
	}
}

// TestMergedStreamAggregationByteIdentical is the acceptance criterion at
// package level: folding m shard journals through MergeJournals renders the
// same bytes as aggregating the uninterrupted single-process sweep, without
// the cells ever materializing.
func TestMergedStreamAggregationByteIdentical(t *testing.T) {
	spec := okSpec()
	direct := batch.NewAggSink()
	if err := batch.RunStream(context.Background(), spec, fakeRun, direct); err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := direct.Report().RenderCSV(&want); err != nil {
		t.Fatal(err)
	}
	if err := direct.Report().RenderJSON(&want); err != nil {
		t.Fatal(err)
	}

	for _, m := range []int{3, 100} {
		paths := writeShardJournals(t, spec, m)
		merged := batch.NewAggSink()
		stats, err := batch.MergeJournals(merged, paths...)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if stats.Cells != direct.Report().Units {
			t.Fatalf("m=%d: merged %d cells, want %d", m, stats.Cells, direct.Report().Units)
		}
		var got bytes.Buffer
		if err := merged.Report().RenderCSV(&got); err != nil {
			t.Fatal(err)
		}
		if err := merged.Report().RenderJSON(&got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatalf("m=%d: merged aggregate render differs from single-process render", m)
		}
		if missing := merged.MissingShards(); len(missing) != 0 {
			t.Fatalf("m=%d: complete merge reports missing shards %v", m, missing)
		}
	}
}

// TestAggSinkDetectsMissingShards: merging 2 of 3 shards must flag both the
// missing unit count and the absent shard index, even though each folded
// journal is individually complete.
func TestAggSinkDetectsMissingShards(t *testing.T) {
	spec := okSpec()
	paths := writeShardJournals(t, spec, 3)
	agg := batch.NewAggSink()
	if _, err := batch.MergeJournals(agg, paths[0], paths[2]); err != nil {
		t.Fatal(err)
	}
	rep := agg.Report()
	if rep.Missing() == 0 {
		t.Fatal("merge missing a whole shard reports complete")
	}
	missing := agg.MissingShards()
	if len(missing) != 1 || missing[0] != 1 {
		t.Fatalf("MissingShards() = %v, want [1]", missing)
	}
	// The partial report still carries a shard-spanning spec: not the first
	// journal's slice.
	if rep.Spec.ShardCount != 0 {
		t.Fatalf("multi-shard report kept a single shard's identity: %d/%d", rep.Spec.ShardIndex, rep.Spec.ShardCount)
	}
}
