// Package dimexchange implements the dimension-exchange baseline of Ghosh
// and Muthukrishnan [12]: in every round a random matching of the network
// is generated, and each matched pair balances by exchanging half of its
// load difference (continuous) or ⌊·/2⌋ tokens (discrete).
//
// The paper's §3 claims Algorithm 1 converges a constant factor faster than
// this baseline because diffusion balances over all edges concurrently
// while a matching activates each edge with probability only Θ(1/δ). The
// E11 experiment measures exactly that comparison.
//
// The random matching is generated with the standard distributed protocol
// from [12]: every node proposes to a uniformly random neighbour; an edge
// joins the matching when the proposal is mutual in a round of invitations
// and both endpoints are still free. That realizes Pr[e ∈ M] ≥ c/δ for a
// constant c, which is all the analysis needs.
package dimexchange

import (
	"math/rand"

	"repro/internal/graph"
	"repro/internal/load"
	"repro/internal/parallel"
)

// matchingPartners fills partner with each node's mate in matching m (−1 for
// unmatched nodes), growing the scratch slice as needed. A matching touches
// every node at most once, so a node-parallel apply over the partner array
// performs exactly the serial loop's one averaging operation per matched
// node — bit-identical for any worker count.
func matchingPartners(partner []int, n int, m []graph.Edge) []int {
	if cap(partner) < n {
		partner = make([]int, n)
	}
	partner = partner[:n]
	for i := range partner {
		partner[i] = -1
	}
	for _, e := range m {
		partner[e.U], partner[e.V] = e.V, e.U
	}
	return partner
}

// RandomMatching draws a random matching of g. The procedure follows [12]:
// each free node picks one incident edge uniformly at random (a proposal);
// an edge enters the matching if both endpoints proposed it. One proposal
// round per balancing round keeps the per-edge inclusion probability at
// least 1/(4δ) for edges between degree-≤δ endpoints, matching the 1/8δ
// style bound used in the analysis.
func RandomMatching(g *graph.G, rng *rand.Rand) []graph.Edge {
	n := g.N()
	proposal := make([]int, n)
	// CSR rows replay the Neighbors order exactly, so the rng.Intn draw
	// sequence — and with it every sampled matching — is unchanged.
	off, tgt := g.CSR()
	for i := 0; i < n; i++ {
		deg := off[i+1] - off[i]
		if deg == 0 {
			proposal[i] = -1
			continue
		}
		proposal[i] = tgt[off[i]+rng.Intn(deg)]
	}
	matched := make([]bool, n)
	var m []graph.Edge
	for i := 0; i < n; i++ {
		j := proposal[i]
		if j < 0 || j < i { // handle each pair once, from the smaller index
			continue
		}
		if proposal[j] == i && !matched[i] && !matched[j] {
			matched[i], matched[j] = true, true
			m = append(m, graph.Edge{U: i, V: j})
		}
	}
	return m
}

// Continuous is the continuous dimension-exchange stepper.
type Continuous struct {
	G    *graph.G
	Load *load.Continuous
	RNG  *rand.Rand
	// Workers > 1 fans the pair-averaging loop over goroutines; results
	// are bit-identical for any value (the matching touches each node at
	// most once).
	Workers int

	// LastMatching is the matching used by the most recent Step; exposed
	// for the tests that validate the matching distribution.
	LastMatching []graph.Edge

	partner []int
	next    []float64
}

// NewContinuous creates a stepper over a copy of the initial loads.
func NewContinuous(g *graph.G, initial []float64, rng *rand.Rand) *Continuous {
	if len(initial) != g.N() {
		panic("dimexchange: initial load length mismatch")
	}
	return &Continuous{G: g, Load: load.NewContinuous(initial), RNG: rng}
}

// Step draws a random matching and balances each matched pair to the exact
// average of the two loads.
func (c *Continuous) Step() {
	m := RandomMatching(c.G, c.RNG)
	c.LastMatching = m
	v := c.Load.Vector()
	w := parallel.StepperWorkers(c.Workers)
	if w == 1 {
		for _, e := range m {
			avg := (v[e.U] + v[e.V]) / 2
			v[e.U], v[e.V] = avg, avg
		}
		return
	}
	n := c.G.N()
	c.partner = matchingPartners(c.partner, n, m)
	if len(c.next) < n {
		c.next = make([]float64, n)
	}
	parallel.For(n, w, func(i int) {
		if j := c.partner[i]; j >= 0 {
			c.next[i] = (v[i] + v[j]) / 2
		} else {
			c.next[i] = v[i]
		}
	})
	copy(v, c.next[:n])
}

// Potential returns Φ of the current distribution.
func (c *Continuous) Potential() float64 { return c.Load.Potential() }

// LoadVector returns the live load vector (implements sim.ContinuousState).
func (c *Continuous) LoadVector() []float64 { return c.Load.Vector() }

// Discrete is the discrete dimension-exchange stepper: matched pairs move
// ⌊|ℓᵢ−ℓⱼ|/2⌋ tokens from the heavier to the lighter endpoint.
type Discrete struct {
	G    *graph.G
	Load *load.Discrete
	RNG  *rand.Rand
	// Workers > 1 fans the pair-balancing loop over goroutines; results
	// are identical for any value.
	Workers int

	LastMatching []graph.Edge

	partner []int
	next    []int64
}

// NewDiscrete creates a stepper over a copy of the initial token counts.
func NewDiscrete(g *graph.G, initial []int64, rng *rand.Rand) *Discrete {
	if len(initial) != g.N() {
		panic("dimexchange: initial token length mismatch")
	}
	return &Discrete{G: g, Load: load.NewDiscrete(initial), RNG: rng}
}

// Step draws a random matching and balances each matched pair.
func (d *Discrete) Step() {
	m := RandomMatching(d.G, d.RNG)
	d.LastMatching = m
	v := d.Load.Tokens()
	w := parallel.StepperWorkers(d.Workers)
	if w == 1 {
		for _, e := range m {
			hi, lo := e.U, e.V
			if v[hi] < v[lo] {
				hi, lo = lo, hi
			}
			t := (v[hi] - v[lo]) / 2
			v[hi] -= t
			v[lo] += t
		}
		return
	}
	n := d.G.N()
	d.partner = matchingPartners(d.partner, n, m)
	if len(d.next) < n {
		d.next = make([]int64, n)
	}
	parallel.For(n, w, func(i int) {
		li := v[i]
		if j := d.partner[i]; j >= 0 {
			if lj := v[j]; li > lj {
				li -= (li - lj) / 2
			} else if lj > li {
				li += (lj - li) / 2
			}
		}
		d.next[i] = li
	})
	copy(v, d.next[:n])
}

// Potential returns Φ of the current distribution.
func (d *Discrete) Potential() float64 { return d.Load.Potential() }

// LoadTokens returns the live token counts (implements sim.DiscreteState).
func (d *Discrete) LoadTokens() []int64 { return d.Load.Tokens() }

// IsMatching reports whether the edge set m is a matching of g (edges of g,
// pairwise disjoint endpoints). Exposed for tests and assertions.
func IsMatching(g *graph.G, m []graph.Edge) bool {
	used := make(map[int]bool, 2*len(m))
	for _, e := range m {
		if !g.HasEdge(e.U, e.V) {
			return false
		}
		if used[e.U] || used[e.V] {
			return false
		}
		used[e.U], used[e.V] = true, true
	}
	return true
}
