# Local targets mirror .github/workflows/ci.yml exactly: `make ci` runs the
# same build, vet, gofmt, race-test and benchmark-smoke steps the workflow
# does, so a green `make ci` means a green PR.

GO ?= go

.PHONY: build test vet fmt fmt-check bench grid-smoke resume-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

grid-smoke:
	$(GO) run ./cmd/lbbench -grid -n 32 -seeds 1,2 -parallel 1 -format csv > /tmp/lbbench-w1.csv
	$(GO) run ./cmd/lbbench -grid -n 32 -seeds 1,2 -parallel 8 -format csv > /tmp/lbbench-w8.csv
	cmp /tmp/lbbench-w1.csv /tmp/lbbench-w8.csv

RESUME_ARGS = -grid -topos cycle,torus,hypercube,star,complete,path \
	-algos diffusion,dimexchange,randpair -modes continuous,discrete \
	-loads spike,uniform -n 192 -seeds 1,2,3 -eps 1e-5 -parallel 4 -format csv

resume-smoke:
	$(GO) build -o /tmp/lbbench ./cmd/lbbench
	rm -f /tmp/lbbench-cells.jsonl
	/tmp/lbbench $(RESUME_ARGS) > /tmp/lbbench-full.csv
	/tmp/lbbench $(RESUME_ARGS) -out /tmp/lbbench-cells.jsonl > /dev/null & \
	pid=$$!; \
	for i in $$(seq 1 600); do \
		{ [ -f /tmp/lbbench-cells.jsonl ] && [ "$$(wc -l < /tmp/lbbench-cells.jsonl)" -ge 80 ]; } && break; \
		kill -0 $$pid 2>/dev/null || break; \
		sleep 0.1; \
	done; \
	kill -INT $$pid 2>/dev/null; wait $$pid || true
	/tmp/lbbench $(RESUME_ARGS) -resume /tmp/lbbench-cells.jsonl -out /tmp/lbbench-cells.jsonl > /tmp/lbbench-resumed.csv
	cmp /tmp/lbbench-full.csv /tmp/lbbench-resumed.csv

ci: build vet fmt-check test bench grid-smoke resume-smoke
