package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestNilTracerNoops(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	// None of these may panic.
	tr.Complete("x", "c", 0, tr.Now(), nil)
	tr.CompleteAt("x", "c", 0, 0, 1, nil)
	tr.Instant("x", "c", 0, nil)
	tr.ThreadName(1, "t")
	if id := tr.AcquireTID(); id != 0 {
		t.Fatalf("nil AcquireTID = %d, want 0", id)
	}
	tr.ReleaseTID(0)
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var p *Phases
	if p.Enabled() {
		t.Fatal("nil phases reports enabled")
	}
	p.Observe(PhaseStep, time.Second)
	p.EmitSpans(tr, 0, 0)
	if p.Total() != 0 || p.Count(PhaseStep) != 0 {
		t.Fatal("nil phases accumulated")
	}
}

func TestTracerEmitAndRead(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.ThreadName(0, "sweep")
	start := tr.Now()
	time.Sleep(2 * time.Millisecond)
	tr.Complete("unit/0", "unit", 0, start, map[string]any{"seed": 1})
	tr.Instant("steal", "orchestrator", 0, nil)
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}

	events, err := ReadEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3", len(events))
	}
	if events[0].Ph != "M" || events[1].Ph != "X" || events[2].Ph != "i" {
		t.Fatalf("phases = %s %s %s", events[0].Ph, events[1].Ph, events[2].Ph)
	}
	if events[1].Dur < 1000 {
		t.Fatalf("span dur = %dµs, want ≥ 2ms-ish", events[1].Dur)
	}
	if events[1].Args["seed"] != float64(1) {
		t.Fatalf("args = %v", events[1].Args)
	}
}

func TestTIDPool(t *testing.T) {
	tr := NewTracer(&bytes.Buffer{})
	a := tr.AcquireTID()
	b := tr.AcquireTID()
	if a == b || a == 0 || b == 0 {
		t.Fatalf("leased tids %d, %d", a, b)
	}
	tr.ReleaseTID(a)
	if c := tr.AcquireTID(); c != a {
		t.Fatalf("pool did not reuse released tid: got %d, want %d", c, a)
	}
}

func TestPhasesAccumulate(t *testing.T) {
	p := &Phases{}
	p.Observe(PhaseStep, 3*time.Millisecond)
	p.Observe(PhaseStep, 2*time.Millisecond)
	p.Observe(PhaseCommit, time.Millisecond)
	if got := p.Duration(PhaseStep); got != 5*time.Millisecond {
		t.Fatalf("step = %v", got)
	}
	if p.Count(PhaseStep) != 2 || p.Count(PhaseCommit) != 1 {
		t.Fatalf("counts = %d, %d", p.Count(PhaseStep), p.Count(PhaseCommit))
	}
	if p.Total() != 6*time.Millisecond {
		t.Fatalf("total = %v", p.Total())
	}

	var buf bytes.Buffer
	tr := NewTracer(&buf)
	p.EmitSpans(tr, 3, 100)
	tr.Flush()
	events, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("got %d phase spans, want 2", len(events))
	}
	if events[0].Name != "step" || events[0].Ts != 100 || events[0].Dur != 5000 {
		t.Fatalf("step span = %+v", events[0])
	}
	if events[1].Name != "commit" || events[1].Ts != 100+5000 {
		t.Fatalf("commit span = %+v", events[1])
	}
}

func TestExportChrome(t *testing.T) {
	dir := t.TempDir()
	eventsPath := filepath.Join(dir, "trace.events.jsonl")
	tracePath := filepath.Join(dir, "trace.json")

	tr, err := CreateTracer(eventsPath)
	if err != nil {
		t.Fatal(err)
	}
	tr.ThreadName(0, "root")
	s := tr.Now()
	tr.Complete("sweep", "sweep", 0, s, nil)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	if err := ExportChromeFile(eventsPath, tracePath); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []Event `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace.json is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("traceEvents = %d, want 2", len(doc.TraceEvents))
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "" || ev.Name == "" {
			t.Fatalf("event missing required fields: %+v", ev)
		}
	}
	if !strings.HasPrefix(string(raw), `{"traceEvents":[`) {
		t.Fatalf("unexpected framing: %.40s", raw)
	}
}

func TestTracerStickyError(t *testing.T) {
	tr := NewTracer(failWriter{})
	tr.Instant("x", "c", 0, nil)
	tr.Flush()
	if tr.Err() == nil {
		t.Fatal("expected sticky error")
	}
	// Further emits must not panic.
	tr.Instant("y", "c", 0, nil)
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, os.ErrClosed }
