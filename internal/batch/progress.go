package batch

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
)

// JournalProgress summarizes how far a shard journal has gotten, without
// retaining a single cell — the orchestrator's view of a running (or dead)
// shard. It is safe to take while the writing process is still appending:
// the scan reads to EOF, and whatever the writer had not finished flushing
// yet simply shows up as a torn tail that the next scan resolves.
type JournalProgress struct {
	// Specs are the spec headers encountered, in order (one per shard
	// journal; several for concatenated files). A header-only journal — an
	// empty shard, or a shard killed before its first cell — has Specs but
	// zero Cells.
	Specs []Spec
	// Origins are the provenance strings recorded alongside the headers,
	// parallel to Specs ("" for headers written without one).
	Origins []string
	// Cells counts the complete, decodable cell lines; Failed how many of
	// them carry an error (failed or cancelled units).
	Cells  int
	Failed int
	// LastIndex is the highest unit expansion index seen (-1 when no cell
	// has been journaled yet). Engine-written journals are in expansion
	// order, so this is also the journal's final cell.
	LastIndex int
	// Torn reports an unparseable final line with no trailing newline — the
	// signature of a write in progress (or cut short by a kill). A torn tail
	// is not corruption: the scanner stops counting there and the next scan,
	// or the resume path, picks it up.
	Torn bool
	// Dropped counts complete-but-undecodable lines (real corruption). Like
	// ReadJournal, the scan stops at the first one; everything after it is
	// unaccounted for.
	Dropped int
}

// Done reports whether progress covers every unit its own headers promise:
// the shard's owned unit count when the journal is sharded, the full
// expansion otherwise. False when no header has been seen (nothing to be
// complete against).
func (p JournalProgress) Done() bool {
	if len(p.Specs) == 0 {
		return false
	}
	return p.Cells >= p.Specs[0].OwnedUnitCount()
}

// ScanJournalProgress reads a JSONL journal and tallies its progress. Unlike
// ReadJournal it keeps nothing per cell, so tailing a million-unit journal
// every second costs one sequential read and O(1) memory. I/O failures are
// the only errors; torn tails and corrupt lines are reported in the result.
func ScanJournalProgress(r io.Reader) (JournalProgress, error) {
	p := JournalProgress{LastIndex: -1}
	br := bufio.NewReader(r)
	for {
		line, readErr := br.ReadBytes('\n')
		if t := bytes.TrimSpace(line); len(t) > 0 {
			header, c, perr := parseJournalLine(t)
			switch {
			case perr != nil:
				// An unparseable tail with no newline is a write caught
				// mid-flight, not corruption — report Torn and stop. A
				// complete line that does not decode is corruption; count it
				// and stop exactly where ReadJournal would.
				if readErr == io.EOF && !bytes.HasSuffix(line, []byte("\n")) {
					p.Torn = true
					return p, nil
				}
				p.Dropped++
				p.Dropped += countLines(br)
				return p, nil
			case header != nil:
				p.Specs = append(p.Specs, *header.Spec)
				p.Origins = append(p.Origins, header.Origin)
			default:
				p.Cells++
				if c.Err != "" {
					p.Failed++
				}
				if c.Index > p.LastIndex {
					p.LastIndex = c.Index
				}
			}
		}
		if readErr == io.EOF {
			return p, nil
		}
		if readErr != nil {
			return p, fmt.Errorf("batch: journal: %w", readErr)
		}
	}
}

// ScanJournalProgressFile is ScanJournalProgress over the file at path. A
// journal that does not exist yet — a shard that has not started, or was
// killed before creating it — is zero progress, not an error.
func ScanJournalProgressFile(path string) (JournalProgress, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return JournalProgress{LastIndex: -1}, nil
	}
	if err != nil {
		return JournalProgress{}, fmt.Errorf("batch: journal: %w", err)
	}
	defer f.Close()
	return ScanJournalProgress(f)
}

// JournalTailer tallies a journal that is being appended to, incrementally:
// each Scan folds only the bytes added since the last one, so polling a
// growing multi-gigabyte journal every second costs O(new data), not
// O(file) — the supervisor's progress loop stays cheap for the sweep's
// whole lifetime. It is a live-progress view, not the authoritative read
// (that is ReadJournal/Resume): a complete-but-undecodable line is counted
// into Dropped and skipped rather than ending the scan, and an unconsumed
// tail with no newline is left for the next Scan to resolve (reported
// Torn). A file that shrinks between scans — a ReplaceJSONL resume
// rewriting it — resets the tally and re-reads from the start.
type JournalTailer struct {
	path   string
	offset int64 // first byte not yet folded (start of the pending tail)
	p      JournalProgress
}

// NewJournalTailer tails the journal at path (which need not exist yet).
func NewJournalTailer(path string) *JournalTailer {
	return &JournalTailer{path: path, p: JournalProgress{LastIndex: -1}}
}

// Scan folds any bytes appended since the previous Scan and returns the
// running tally. I/O failures are the only errors; a missing file is zero
// progress.
func (t *JournalTailer) Scan() (JournalProgress, error) {
	f, err := os.Open(t.path)
	if os.IsNotExist(err) {
		t.offset, t.p = 0, JournalProgress{LastIndex: -1}
		return t.p, nil
	}
	if err != nil {
		return t.p, fmt.Errorf("batch: journal: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return t.p, fmt.Errorf("batch: journal: %w", err)
	}
	if st.Size() < t.offset {
		t.offset, t.p = 0, JournalProgress{LastIndex: -1}
	}
	if st.Size() == t.offset {
		return t.p, nil
	}
	if _, err := f.Seek(t.offset, io.SeekStart); err != nil {
		return t.p, fmt.Errorf("batch: journal: %w", err)
	}
	br := bufio.NewReader(f)
	for {
		line, readErr := br.ReadBytes('\n')
		if !bytes.HasSuffix(line, []byte("\n")) {
			// The in-flight (or kill-torn) tail: leave it unconsumed so the
			// next Scan rereads it once the writer finishes the line.
			t.p.Torn = len(bytes.TrimSpace(line)) > 0
			if readErr == io.EOF {
				return t.p, nil
			}
			return t.p, fmt.Errorf("batch: journal: %w", readErr)
		}
		t.offset += int64(len(line))
		t.p.Torn = false
		if trimmed := bytes.TrimSpace(line); len(trimmed) > 0 {
			header, c, perr := parseJournalLine(trimmed)
			switch {
			case perr != nil:
				t.p.Dropped++
			case header != nil:
				t.p.Specs = append(t.p.Specs, *header.Spec)
				t.p.Origins = append(t.p.Origins, header.Origin)
			default:
				t.p.Cells++
				if c.Err != "" {
					t.p.Failed++
				}
				if c.Index > t.p.LastIndex {
					t.p.LastIndex = c.Index
				}
			}
		}
		if readErr != nil {
			if readErr == io.EOF {
				return t.p, nil
			}
			return t.p, fmt.Errorf("batch: journal: %w", readErr)
		}
	}
}
