package graph

import (
	"fmt"
	"math/rand"
)

// Path returns the path (line) graph on n nodes: 0−1−2−…−(n−1).
// The paper's introduction uses the line with load ℓᵢ = i as the canonical
// example of a discrete instance that no local rule can balance further.
func Path(n int) *G {
	b := NewBuilder(fmt.Sprintf("path(%d)", n), n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.MustFinish()
}

// Cycle returns the cycle (ring) on n nodes. Requires n ≥ 3.
func Cycle(n int) *G {
	if n < 3 {
		panic("graph: cycle needs n >= 3")
	}
	b := NewBuilder(fmt.Sprintf("cycle(%d)", n), n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
	}
	return b.MustFinish()
}

// Complete returns the complete graph K_n.
func Complete(n int) *G {
	b := NewBuilder(fmt.Sprintf("complete(%d)", n), n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(i, j)
		}
	}
	return b.MustFinish()
}

// Star returns the star K_{1,n−1} with node 0 as the centre.
func Star(n int) *G {
	b := NewBuilder(fmt.Sprintf("star(%d)", n), n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, i)
	}
	return b.MustFinish()
}

// CompleteBipartite returns K_{a,b} with parts {0..a−1} and {a..a+b−1}.
func CompleteBipartite(a, b int) *G {
	bld := NewBuilder(fmt.Sprintf("K(%d,%d)", a, b), a+b)
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			bld.AddEdge(i, a+j)
		}
	}
	return bld.MustFinish()
}

// Grid returns the rows×cols 2-D mesh (no wraparound).
func Grid(rows, cols int) *G {
	b := NewBuilder(fmt.Sprintf("grid(%dx%d)", rows, cols), rows*cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.MustFinish()
}

// Torus returns the rows×cols 2-D torus (mesh with wraparound). Both
// dimensions must be ≥ 3 so the graph stays simple.
func Torus(rows, cols int) *G {
	if rows < 3 || cols < 3 {
		panic("graph: torus needs both dimensions >= 3")
	}
	b := NewBuilder(fmt.Sprintf("torus(%dx%d)", rows, cols), rows*cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			b.AddEdge(id(r, c), id(r, (c+1)%cols))
			b.AddEdge(id(r, c), id((r+1)%rows, c))
		}
	}
	return b.MustFinish()
}

// Hypercube returns the d-dimensional hypercube on 2^d nodes. Nodes are
// adjacent iff their indices differ in exactly one bit.
func Hypercube(d int) *G {
	if d < 0 || d > 24 {
		panic("graph: hypercube dimension out of range")
	}
	n := 1 << uint(d)
	b := NewBuilder(fmt.Sprintf("hypercube(%d)", d), n)
	for u := 0; u < n; u++ {
		for bit := 0; bit < d; bit++ {
			v := u ^ (1 << uint(bit))
			if u < v {
				b.AddEdge(u, v)
			}
		}
	}
	return b.MustFinish()
}

// DeBruijn returns the undirected de Bruijn graph on 2^d nodes: node u is
// connected to (2u mod n) and (2u+1 mod n), ignoring orientation and
// dropping the self loops that arise at 0 and n−1. This is the standard
// constant-degree test topology in [16].
func DeBruijn(d int) *G {
	if d < 1 || d > 24 {
		panic("graph: de Bruijn dimension out of range")
	}
	n := 1 << uint(d)
	b := NewBuilder(fmt.Sprintf("debruijn(%d)", d), n)
	for u := 0; u < n; u++ {
		for _, v := range []int{(2 * u) % n, (2*u + 1) % n} {
			if u != v {
				b.AddEdge(u, v)
			}
		}
	}
	return b.MustFinish()
}

// BinaryTree returns the complete binary tree with the given number of
// levels (a tree with 2^levels − 1 nodes, node 0 the root, children of i at
// 2i+1 and 2i+2).
func BinaryTree(levels int) *G {
	if levels < 1 || levels > 24 {
		panic("graph: binary tree levels out of range")
	}
	n := (1 << uint(levels)) - 1
	b := NewBuilder(fmt.Sprintf("bintree(%d)", levels), n)
	for i := 0; i < n; i++ {
		if l := 2*i + 1; l < n {
			b.AddEdge(i, l)
		}
		if r := 2*i + 2; r < n {
			b.AddEdge(i, r)
		}
	}
	return b.MustFinish()
}

// Petersen returns the Petersen graph (n=10, 3-regular), a small
// vertex-transitive graph with known spectrum {3, 1⁵, −2⁴}; Laplacian
// spectrum {0, 2⁵, 5⁴}, so λ₂ = 2. Useful as an exact test fixture.
func Petersen() *G {
	b := NewBuilder("petersen", 10)
	for i := 0; i < 5; i++ {
		b.AddEdge(i, (i+1)%5)     // outer pentagon
		b.AddEdge(5+i, 5+(i+2)%5) // inner pentagram
		b.AddEdge(i, 5+i)         // spokes
	}
	return b.MustFinish()
}

// Barbell returns two K_k cliques joined by a single bridge edge. Its λ₂ is
// tiny (Θ(1/k²) scale), making it a worst case for diffusion; used in the
// convergence experiments to exercise the slow end of the λ₂ spectrum.
func Barbell(k int) *G {
	if k < 2 {
		panic("graph: barbell needs k >= 2")
	}
	b := NewBuilder(fmt.Sprintf("barbell(%d)", k), 2*k)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			b.AddEdge(i, j)
			b.AddEdge(k+i, k+j)
		}
	}
	b.AddEdge(k-1, k)
	return b.MustFinish()
}

// Lollipop returns a K_k clique with a path of plen extra nodes attached.
func Lollipop(k, plen int) *G {
	if k < 2 || plen < 1 {
		panic("graph: lollipop needs k >= 2, plen >= 1")
	}
	b := NewBuilder(fmt.Sprintf("lollipop(%d,%d)", k, plen), k+plen)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			b.AddEdge(i, j)
		}
	}
	for i := 0; i < plen; i++ {
		b.AddEdge(k+i-1, k+i)
	}
	return b.MustFinish()
}

// RandomRegular returns a random d-regular simple graph on n nodes via the
// pairing (configuration) model with restarts. n·d must be even and d < n.
// The returned graph is a good expander with high probability, which makes
// it the stand-in for the "degree-d expander" topologies of [16].
func RandomRegular(n, d int, rng *rand.Rand) *G {
	if d < 1 || d >= n || n*d%2 != 0 {
		panic(fmt.Sprintf("graph: invalid random regular parameters n=%d d=%d", n, d))
	}
	for attempt := 0; ; attempt++ {
		if attempt > 1000 {
			panic("graph: random regular pairing failed to produce a simple graph")
		}
		// Half-edge list: node i appears d times.
		stubs := make([]int, 0, n*d)
		for i := 0; i < n; i++ {
			for k := 0; k < d; k++ {
				stubs = append(stubs, i)
			}
		}
		rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		ok := true
		seen := make(map[Edge]struct{}, n*d/2)
		for i := 0; i < len(stubs); i += 2 {
			u, v := stubs[i], stubs[i+1]
			if u == v {
				ok = false
				break
			}
			e := Edge{U: u, V: v}.Canonical()
			if _, dup := seen[e]; dup {
				ok = false
				break
			}
			seen[e] = struct{}{}
		}
		if !ok {
			continue
		}
		b := NewBuilder(fmt.Sprintf("random-regular(%d,%d)", n, d), n)
		for e := range seen {
			b.AddEdge(e.U, e.V)
		}
		g := b.MustFinish()
		if g.IsConnected() {
			return g
		}
	}
}

// ErdosRenyi returns G(n, p): each of the n(n−1)/2 possible edges is present
// independently with probability p.
func ErdosRenyi(n int, p float64, rng *rand.Rand) *G {
	b := NewBuilder(fmt.Sprintf("gnp(%d,%.3f)", n, p), n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				b.AddEdge(i, j)
			}
		}
	}
	return b.MustFinish()
}

// StandardSuite returns the fixed-topology families the experiment harness
// sweeps over, at a size close to n (exact for path/cycle, rounded for
// torus/hypercube). Randomized families are excluded; they are seeded
// separately by the harness.
func StandardSuite(n int) []*G {
	side := 3
	for side*side < n {
		side++
	}
	d := 1
	for 1<<uint(d) < n {
		d++
	}
	return []*G{
		Path(n),
		Cycle(n),
		Torus(side, side),
		Hypercube(d),
		DeBruijn(d),
		Complete(n),
	}
}
