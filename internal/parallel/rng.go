package parallel

import (
	"math/rand"
)

// ShardedRNG provides one independent deterministic random stream per shard
// (typically per worker goroutine or per node). Streams are derived from a
// single seed by SplitMix64 expansion, so the whole simulation is
// reproducible from one integer regardless of goroutine interleaving, and
// no locking is needed as long as each shard is used by one goroutine at a
// time.
type ShardedRNG struct {
	streams []*rand.Rand
}

// NewShardedRNG creates shards independent streams derived from seed.
func NewShardedRNG(seed int64, shards int) *ShardedRNG {
	if shards < 1 {
		shards = 1
	}
	s := &ShardedRNG{streams: make([]*rand.Rand, shards)}
	x := uint64(seed)
	for i := range s.streams {
		x = splitmix64(&x)
		s.streams[i] = rand.New(rand.NewSource(int64(x)))
	}
	return s
}

// Shard returns the RNG for shard i (mod the shard count).
func (s *ShardedRNG) Shard(i int) *rand.Rand {
	return s.streams[i%len(s.streams)]
}

// Shards returns the number of independent streams.
func (s *ShardedRNG) Shards() int { return len(s.streams) }

// splitmix64 advances the state and returns the next output of the
// SplitMix64 generator; the standard way to expand one seed into many.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// DeriveSeed deterministically derives the i-th child seed from a parent
// seed; used where a full ShardedRNG is overkill (e.g. seeding one
// experiment repetition).
func DeriveSeed(parent int64, i int) int64 {
	x := uint64(parent) ^ (uint64(i)+1)*0x9e3779b97f4a7c15
	return int64(splitmix64(&x))
}
