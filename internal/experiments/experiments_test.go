package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	// DESIGN.md promises E1–E14 and A1–A3 (E8/E14 live in random.go).
	want := []string{
		"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10",
		"E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19", "A1", "A2", "A3", "A4", "A5", "A6", "A7", "A8",
	}
	for _, id := range want {
		if _, ok := Lookup(id); !ok {
			t.Fatalf("experiment %s not registered", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Fatalf("registry has %d entries, want %d: %v", len(IDs()), len(want), IDs())
	}
}

func TestIDsOrdering(t *testing.T) {
	ids := IDs()
	// All E's first, numerically ordered, then A's.
	sawA := false
	prevNum := 0
	for _, id := range ids {
		if id[0] == 'A' {
			sawA = true
			continue
		}
		if sawA {
			t.Fatalf("E after A in %v", ids)
		}
		n, err := strconv.Atoi(id[1:])
		if err != nil {
			t.Fatal(err)
		}
		if n <= prevNum {
			t.Fatalf("ids not ascending: %v", ids)
		}
		prevNum = n
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, ok := Lookup("E99"); ok {
		t.Fatal("unknown id must not resolve")
	}
}

// Every experiment must run in quick mode and produce at least one row.
func TestAllExperimentsQuick(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			r, _ := Lookup(id)
			tb := r(Options{Seed: 42, Quick: true})
			if tb == nil || len(tb.Rows) == 0 {
				t.Fatalf("%s produced no rows", id)
			}
			if tb.Title == "" || len(tb.Header) == 0 {
				t.Fatalf("%s table missing title/header", id)
			}
		})
	}
}

// Theorem-bound experiments must show measured ≤ bound in their ratio
// column. Checks the quick-mode rows of E3 (Theorem 4) and E4 (Theorem 6).
func TestBoundsRespectedQuick(t *testing.T) {
	cases := []struct {
		id       string
		ratioCol string
	}{
		{"E3", "rounds/bound"},
		{"E4", "rounds/bound"},
		{"E5", "K/bound"},
		{"E9", "rounds/bound"},
		{"E10", "rounds/bound"},
		{"E19", "T4 ratio"},
		{"E19", "T6 ratio"},
	}
	for _, c := range cases {
		r, ok := Lookup(c.id)
		if !ok {
			t.Fatalf("%s missing", c.id)
		}
		tb := r(Options{Seed: 7, Quick: true})
		col := -1
		for i, h := range tb.Header {
			if h == c.ratioCol {
				col = i
			}
		}
		if col < 0 {
			t.Fatalf("%s: no column %q in %v", c.id, c.ratioCol, tb.Header)
		}
		for _, row := range tb.Rows {
			cell := row[col]
			if cell == "" || cell == "NaN" {
				continue
			}
			v, err := strconv.ParseFloat(strings.TrimSpace(cell), 64)
			if err != nil {
				t.Fatalf("%s: unparseable ratio %q", c.id, cell)
			}
			if v > 1.0 {
				t.Fatalf("%s: measured exceeds bound (ratio %v) in row %v", c.id, v, row)
			}
		}
	}
}

// E7's Lemma 9 probability must exceed 0.5 in every row.
func TestLemma9RowsQuick(t *testing.T) {
	r, _ := Lookup("E7")
	tb := r(Options{Seed: 11, Quick: true})
	col := -1
	for i, h := range tb.Header {
		if strings.HasPrefix(h, "Pr[") {
			col = i
		}
	}
	if col < 0 {
		t.Fatalf("no probability column in %v", tb.Header)
	}
	for _, row := range tb.Rows {
		v, err := strconv.ParseFloat(row[col], 64)
		if err != nil {
			t.Fatalf("unparseable %q", row[col])
		}
		if v <= 0.5 {
			t.Fatalf("Lemma 9 violated: %v in row %v", v, row)
		}
	}
}

// A2 must show zero violations for the increasing order and nonzero
// activations overall.
func TestA2IncreasingOrderCleanQuick(t *testing.T) {
	r, _ := Lookup("A2")
	tb := r(Options{Seed: 13, Quick: true})
	var orderCol, violCol int = -1, -1
	for i, h := range tb.Header {
		switch h {
		case "order":
			orderCol = i
		case "violations":
			violCol = i
		}
	}
	if orderCol < 0 || violCol < 0 {
		t.Fatalf("columns missing in %v", tb.Header)
	}
	for _, row := range tb.Rows {
		if row[orderCol] == "increasing" && row[violCol] != "0" {
			t.Fatalf("increasing order shows violations: %v", row)
		}
	}
}

// TestShardedExperimentRowsPartitionTheTable: m shard processes running the
// same experiment must emit disjoint row subsets whose union — in order —
// is exactly the unsharded table, with every owned row bit-identical (cell
// RNG streams derive from the cell index, not from which process ran it).
func TestShardedExperimentRowsPartitionTheTable(t *testing.T) {
	r, ok := Lookup("E1")
	if !ok {
		t.Fatal("E1 missing")
	}
	full := r(Options{Seed: 42, Quick: true})

	const m = 3
	var gathered [][]string
	for i := 0; i < m; i++ {
		part := r(Options{Seed: 42, Quick: true, ShardIndex: i, ShardCount: m})
		if len(part.Rows) >= len(full.Rows) {
			t.Fatalf("shard %d emitted %d rows — no restriction applied", i, len(part.Rows))
		}
		gathered = append(gathered, part.Rows...)
	}
	if len(gathered) != len(full.Rows) {
		t.Fatalf("shards emitted %d rows total, want %d", len(gathered), len(full.Rows))
	}
	// Each full row must appear exactly once across shards, byte-identical.
	seen := map[string]int{}
	for _, row := range gathered {
		seen[strings.Join(row, "|")]++
	}
	for _, row := range full.Rows {
		key := strings.Join(row, "|")
		if seen[key] != 1 {
			t.Fatalf("row %q appears %d times across shards, want exactly once", key, seen[key])
		}
	}
}
