package experiments

import (
	"math/rand"

	"repro/internal/dimexchange"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

func init() {
	register("A8", A8MatchingSchedule)
}

// A8MatchingSchedule compares the two dimension-exchange variants the
// paper's introduction distinguishes: random matchings per round ([12])
// versus a fixed round-robin partner order ([3]), realized via a greedy
// edge coloring (and the exact dimension schedule on the hypercube).
// Reports rounds to 1e-4·Φ⁰ for both, plus the coloring size that sets the
// deterministic sweep length.
func A8MatchingSchedule(o Options) *trace.Table {
	t := trace.NewTable("A8 — matching schedules: round-robin coloring [3] vs random matchings [12] (rounds to 1e-4·Φ⁰)",
		"graph", "colors (sweep)", "roundrobin", "random (mean±sd)", "random/roundrobin")
	const eps = 1e-4
	reps := 10
	horizon := 500000
	if o.Quick {
		reps = 3
		horizon = 50000
	}
	suite := fixedSuite(o.Quick)
	rows := make([]row, len(suite))
	o.sweep(len(rows), func(i int, rng *rand.Rand) {
		g := suite[i]
		init := workload.Continuous(workload.Spike, g.N(), 1e8, nil)

		rr := dimexchange.NewRoundRobin(g, init)
		rrRounds := sim.RoundsToFraction(rr, eps, horizon)

		var rnd []float64
		for k := 0; k < reps; k++ {
			st := dimexchange.NewContinuous(g, init, rand.New(rand.NewSource(rng.Int63())))
			rnd = append(rnd, float64(sim.RoundsToFraction(st, eps, horizon)))
		}
		s := stats.Summarize(rnd)
		rows[i] = row{g.Name(), rr.Sweep(), rrRounds, formatMeanSD(s), s.Mean / float64(rrRounds)}
	})
	emit(t, rows)
	// Hypercube with the exact dimension schedule: one sweep suffices.
	d := 6
	if o.Quick {
		d = 4
	}
	g := graph.Hypercube(d)
	init := workload.Continuous(workload.Spike, g.N(), 1e8, nil)
	exact := dimexchange.NewRoundRobinWithClasses(g, init, graph.HypercubeDimensionClasses(d))
	t.AddRowf(g.Name()+" (dim sched)", exact.Sweep(), sim.RoundsToFraction(exact, eps, horizon), "-", "-")
	t.Note("round-robin activates every edge once per sweep while a random matching hits each edge with probability ~1/δ² per round, so the deterministic schedule usually wins by a δ-dependent factor; the exact hypercube dimension schedule balances completely in one d-round sweep ([3]). The star is the counterexample: a fixed leaf order hands each leaf a stale centre average once per 63-round sweep, while random matchings revisit the centre in fresh states — scheduling order matters when one node carries all the flow.")
	return t
}
