package speccache_test

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/matrix"
	"repro/internal/speccache"
	"repro/internal/spectral"
	"repro/internal/workload"
)

// TestLambda2ComputedExactlyOnceUnderConcurrency hammers one key from many
// goroutines: every caller must see the same value and the eigensolve must
// run exactly once.
func TestLambda2ComputedExactlyOnceUnderConcurrency(t *testing.T) {
	c := speccache.New()
	g := graph.Torus(8, 8)
	want := spectral.MustLambda2(g)

	const callers = 32
	got := make([]float64, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = c.MustLambda2(g)
		}(i)
	}
	wg.Wait()
	for i, v := range got {
		if v != want {
			t.Fatalf("caller %d got %v, want %v", i, v, want)
		}
	}
	s := c.Stats().Lambda2
	if s.Computes != 1 {
		t.Fatalf("λ₂ computed %d times, want exactly 1", s.Computes)
	}
	if s.Hits != callers-1 {
		t.Fatalf("hits = %d, want %d", s.Hits, callers-1)
	}
}

// TestValuesMatchSpectralExactly: the cache must be a pure memoization —
// cached values bit-equal to direct spectral calls.
func TestValuesMatchSpectralExactly(t *testing.T) {
	c := speccache.New()
	for _, g := range []*graph.G{graph.Cycle(24), graph.Hypercube(4), graph.Star(16)} {
		if got, want := c.MustLambda2(g), spectral.MustLambda2(g); got != want {
			t.Fatalf("%s: λ₂ %v != %v", g.Name(), got, want)
		}
		gm, err := c.Gamma(g)
		if err != nil {
			t.Fatal(err)
		}
		want, err := spectral.GammaOf(g)
		if err != nil {
			t.Fatal(err)
		}
		if gm != want {
			t.Fatalf("%s: γ %v != %v", g.Name(), gm, want)
		}
		gp, err := c.PaperGamma(g)
		if err != nil {
			t.Fatal(err)
		}
		mu, err := c.PaperEigenGap(g)
		if err != nil {
			t.Fatal(err)
		}
		if mu != 1-gp {
			t.Fatalf("%s: eigengap %v != 1-γ_P %v", g.Name(), mu, 1-gp)
		}
	}
}

// TestSameNameDifferentEdgesDoNotCollide: the fingerprint key must separate
// graphs that share a name but not a structure (randomized families).
func TestSameNameDifferentEdgesDoNotCollide(t *testing.T) {
	c := speccache.New()
	b1 := graph.NewBuilder("twin", 4)
	b1.AddEdge(0, 1)
	b1.AddEdge(1, 2)
	b1.AddEdge(2, 3)
	b1.AddEdge(3, 0) // cycle: λ₂ = 2
	cycle := b1.MustFinish()

	b2 := graph.NewBuilder("twin", 4)
	b2.AddEdge(0, 1)
	b2.AddEdge(0, 2)
	b2.AddEdge(0, 3) // star: λ₂ = 1
	star := b2.MustFinish()

	l1, l2 := c.MustLambda2(cycle), c.MustLambda2(star)
	if math.Abs(l1-2) > 1e-9 || math.Abs(l2-1) > 1e-9 {
		t.Fatalf("same-name graphs shared a cache entry: got %v and %v", l1, l2)
	}
	if s := c.Stats().Lambda2; s.Computes != 2 {
		t.Fatalf("computed %d λ₂ values, want 2 distinct entries", s.Computes)
	}
}

// TestOptimalFlowMemoizedAndCloneSafe: repeated lookups compute once, and
// mutating a returned flow must not poison the cache.
func TestOptimalFlowMemoizedAndCloneSafe(t *testing.T) {
	c := speccache.New()
	g := graph.Cycle(16)
	l := matrix.Vector(workload.Continuous(workload.Spike, g.N(), 1e6, nil))

	f1, err := c.OptimalFlow(g, l)
	if err != nil {
		t.Fatal(err)
	}
	want, err := flow.Optimal(g, l)
	if err != nil {
		t.Fatal(err)
	}
	if f1.L2() != want.L2() || f1.L1() != want.L1() {
		t.Fatalf("cached flow differs from direct computation")
	}

	f1.Values[0] = 1e18 // vandalize the returned copy
	f2, err := c.OptimalFlow(g, l)
	if err != nil {
		t.Fatal(err)
	}
	if f2.Values[0] == 1e18 {
		t.Fatal("mutating a returned flow corrupted the cache")
	}
	if s := c.Stats().OptimalFlow; s.Computes != 1 || s.Hits != 1 {
		t.Fatalf("flow stats = %+v, want 1 compute + 1 hit", s)
	}

	// A different load vector is a different entry.
	l2 := matrix.Vector(workload.Continuous(workload.Uniform, g.N(), 1e6, rand.New(rand.NewSource(1))))
	if _, err := c.OptimalFlow(g, l2); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats().OptimalFlow; s.Computes != 2 {
		t.Fatalf("distinct loads reused one entry: %+v", s)
	}
}

// TestResetClearsEverything: after Reset the next lookup recomputes.
func TestResetClearsEverything(t *testing.T) {
	c := speccache.New()
	g := graph.Cycle(12)
	c.MustLambda2(g)
	c.Reset()
	if s := c.Stats().Lambda2; s.Computes != 0 || s.Hits != 0 {
		t.Fatalf("stats survived Reset: %+v", s)
	}
	c.MustLambda2(g)
	if s := c.Stats().Lambda2; s.Computes != 1 {
		t.Fatalf("post-Reset lookup did not recompute: %+v", s)
	}
}

// TestStatsString renders without panicking and mentions every quantity.
func TestStatsString(t *testing.T) {
	c := speccache.New()
	c.MustLambda2(graph.Cycle(8))
	s := c.Stats().String()
	for _, want := range []string{"λ₂", "γ", "optflow"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Stats().String() = %q missing %q", s, want)
		}
	}
}
