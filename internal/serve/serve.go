// Package serve keeps a balancer hot: a long-lived core.Session advanced
// round-by-round on a wall-clock cadence, fed by live HTTP arrivals
// (POST /arrive) and/or a recorded trace replayed at a controllable
// speed-up, observable through GET /metrics and /healthz, and drained
// gracefully on shutdown. Every arrival the server injects can be recorded
// through a scenario.TraceWriter, so a served workload becomes a
// first-class trace:<file> scenario that re-runs byte-identically through
// the batch grid — the bridge between "production" traffic and the
// paper's reproducible experiments.
//
// Concurrency model: one goroutine (Run's round loop) owns the session;
// HTTP handlers only append to the pending arrival queue and read
// metrics, both under a single mutex held for O(1) or O(n)-copy work —
// never across a balancing round's floating-point chain. Arrivals are
// injected mid-round (after the round's transfers, before the potential
// is observed), exactly where the scenario engine injects, which is what
// makes recorded traces replay exactly.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/scenario"
)

// Options configures a Server.
type Options struct {
	// Config is the balancer instance: graph, algorithm, mode, initial
	// loads, epsilon, seed, round workers. Validated by core.Open.
	Config core.Config
	// Addr is the listen address (e.g. ":8080"; ":0" picks a free port,
	// see Server.URL).
	Addr string
	// Interval paces the round loop: one balancing round per Interval.
	// Zero or negative free-runs (as fast as the hardware allows).
	Interval time.Duration
	// Replay holds a recorded arrival trace to inject round-for-round
	// (events at round k land during round k+1, like every scenario).
	// Replay ends when the events run out; the server keeps balancing.
	Replay []scenario.Event
	// Record, when set, receives every injected arrival as a trace event.
	// Run flushes it on shutdown; the caller owns Close.
	Record *scenario.TraceWriter
	// DrainTimeout bounds the graceful drain (default 30s); DrainMaxRounds
	// bounds its rounds (default 4096). Drain stops early once Φ falls
	// under the drain target (ε·peak, or the session target if higher).
	DrainTimeout   time.Duration
	DrainMaxRounds int
	// Logf, when set, receives one-line progress logs.
	Logf func(format string, args ...any)
}

// Server is a live balancing session behind an HTTP surface. Create with
// New, then either call Run (round loop + HTTP server + graceful drain)
// or drive rounds manually with StepRound against Handler (tests do).
type Server struct {
	opts Options

	mu       sync.Mutex
	sess     *core.Session
	pending  []scenario.Arrival
	draining bool
	cursor   int // next Replay event to inject

	arrivalsTotal int64
	loadInjected  float64
	roundTimes    []time.Time // ring buffer of recent round completions
	timesNext     int
	start         time.Time

	addr net.Addr // set once Run is listening
}

// Backlog summarizes the per-node queue depths.
type Backlog struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
}

// Metrics is the GET /metrics document.
type Metrics struct {
	Round           int     `json:"round"`
	Phi             float64 `json:"phi"`
	PhiStart        float64 `json:"phi_start"`
	PeakPhi         float64 `json:"peak_phi"`
	Target          float64 `json:"target"`
	Converged       bool    `json:"converged"`
	RebalanceRounds int     `json:"rebalance_rounds"`
	SteadyRMS       float64 `json:"steady_rms"`
	RoundsPerSec    float64 `json:"rounds_per_sec"`
	ArrivalsTotal   int64   `json:"arrivals_total"`
	LoadInjected    float64 `json:"load_injected"`
	Pending         int     `json:"pending"`
	ReplayPending   int     `json:"replay_pending"`
	Draining        bool    `json:"draining"`
	UptimeSec       float64 `json:"uptime_sec"`
	Backlog         Backlog `json:"backlog"`
	// Nodes is the full per-node queue depth vector, included while the
	// graph is small enough to serve inline (n ≤ 1024).
	Nodes []float64 `json:"nodes,omitempty"`
}

// New opens the session and validates the replay trace against it.
func New(opts Options) (*Server, error) {
	sess, err := core.Open(opts.Config)
	if err != nil {
		return nil, err
	}
	n := opts.Config.Graph.N()
	for _, e := range opts.Replay {
		if e.Node >= n {
			return nil, fmt.Errorf("serve: replay event at round %d targets node %d but the graph has %d nodes", e.Round, e.Node, n)
		}
	}
	if opts.DrainTimeout <= 0 {
		opts.DrainTimeout = 30 * time.Second
	}
	if opts.DrainMaxRounds <= 0 {
		opts.DrainMaxRounds = 4096
	}
	return &Server{
		opts:       opts,
		sess:       sess,
		roundTimes: make([]time.Time, 0, 128),
		start:      time.Now(),
	}, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// StepRound advances the session one balancing round: replay events due
// this round and all queued HTTP arrivals are injected mid-round (and
// recorded, when recording), then the round commits. Returns the new Φ.
func (s *Server) StepRound() (float64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	k := s.sess.Rounds() // this round's scenario index
	var arrivals []scenario.Arrival
	if !s.draining {
		for s.cursor < len(s.opts.Replay) && s.opts.Replay[s.cursor].Round <= k {
			if e := s.opts.Replay[s.cursor]; e.Round == k {
				arrivals = append(arrivals, scenario.Arrival{Node: e.Node, Amount: e.Amount})
			}
			s.cursor++
		}
	}
	arrivals = append(arrivals, s.pending...)
	s.pending = s.pending[:0]

	if err := s.sess.Step(); err != nil {
		return 0, err
	}
	total, err := s.sess.Inject(arrivals)
	if err != nil {
		return 0, err
	}
	phi, err := s.sess.Commit()
	if err != nil {
		return 0, err
	}

	if s.opts.Record != nil {
		for _, a := range arrivals {
			if err := s.opts.Record.Append(scenario.Event{Round: k, Node: a.Node, Amount: a.Amount}); err != nil {
				return 0, fmt.Errorf("serve: recording: %w", err)
			}
		}
	}
	s.arrivalsTotal += int64(len(arrivals))
	s.loadInjected += total
	observeRound(phi, len(arrivals), total, s.sess.Loads())
	if len(s.roundTimes) < cap(s.roundTimes) {
		s.roundTimes = append(s.roundTimes, time.Now())
	} else {
		s.roundTimes[s.timesNext] = time.Now()
	}
	s.timesNext = (s.timesNext + 1) % cap(s.roundTimes)
	return phi, nil
}

// Metrics returns the current metrics document.
func (s *Server) Metrics() Metrics {
	s.mu.Lock()
	sm := s.sess.Metrics()
	loads := s.sess.Snapshot()
	m := Metrics{
		Round:           sm.Rounds,
		Phi:             sm.Phi,
		PhiStart:        sm.PhiStart,
		PeakPhi:         sm.PeakPhi,
		Target:          sm.Target,
		Converged:       sm.Converged,
		RebalanceRounds: sm.RebalanceRounds,
		SteadyRMS:       sm.SteadyRMS,
		RoundsPerSec:    s.roundsPerSecLocked(),
		ArrivalsTotal:   s.arrivalsTotal,
		LoadInjected:    s.loadInjected,
		Pending:         len(s.pending),
		ReplayPending:   len(s.opts.Replay) - s.cursor,
		Draining:        s.draining,
		UptimeSec:       time.Since(s.start).Seconds(),
	}
	s.mu.Unlock()

	// The O(n log n) percentile work happens outside the lock, on the
	// snapshot copy.
	m.Backlog = backlog(loads)
	if len(loads) <= 1024 {
		m.Nodes = loads
	}
	return m
}

// roundsPerSecLocked estimates the recent round rate from the completion
// ring buffer.
func (s *Server) roundsPerSecLocked() float64 {
	k := len(s.roundTimes)
	if k < 2 {
		return 0
	}
	// Oldest entry: the next slot to be overwritten once the ring is
	// full, index 0 before that.
	oldest := 0
	if k == cap(s.roundTimes) {
		oldest = s.timesNext
	}
	newest := (s.timesNext + cap(s.roundTimes) - 1) % cap(s.roundTimes)
	if k < cap(s.roundTimes) {
		newest = k - 1
	}
	span := s.roundTimes[newest].Sub(s.roundTimes[oldest]).Seconds()
	if span <= 0 {
		return 0
	}
	return float64(k-1) / span
}

// backlog computes the queue-depth summary of one load snapshot.
func backlog(loads []float64) Backlog {
	if len(loads) == 0 {
		return Backlog{}
	}
	sorted := make([]float64, len(loads))
	copy(sorted, loads)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	pick := func(q float64) float64 {
		idx := int(math.Ceil(q*float64(len(sorted)))) - 1
		if idx < 0 {
			idx = 0
		}
		return sorted[idx]
	}
	return Backlog{
		Mean: sum / float64(len(sorted)),
		P50:  pick(0.50),
		P90:  pick(0.90),
		P99:  pick(0.99),
		Max:  sorted[len(sorted)-1],
	}
}

// arriveRequest is one POST /arrive item.
type arriveRequest struct {
	Node   int     `json:"node"`
	Amount float64 `json:"amt"`
}

// Handler returns the HTTP surface: POST /arrive, GET /metrics (the JSON
// document, shape unchanged since PR 8), GET /metrics/prom (Prometheus
// text exposition of the process registry), GET /healthz, and the pprof
// family under /debug/pprof/ — the standard observability trio on the one
// daemon port.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/arrive", s.handleArrive)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Metrics())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		round, draining := s.sess.Rounds(), s.draining
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, map[string]any{"ok": true, "round": round, "draining": draining})
	})
	obs.RegisterDebug(mux, obs.Default())
	return mux
}

// handleArrive queues arrivals for the next round. The body is one JSON
// object {"node":i,"amt":x} or an array of them; amounts must be positive
// and finite, nodes in range. During drain ingest is refused with 503.
func (s *Server) handleArrive(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "POST only"})
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	var raw json.RawMessage
	if err := dec.Decode(&raw); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("bad JSON: %v", err)})
		return
	}
	var reqs []arriveRequest
	if len(raw) > 0 && raw[0] == '[' {
		if err := json.Unmarshal(raw, &reqs); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("bad JSON array: %v", err)})
			return
		}
	} else {
		var one arriveRequest
		if err := json.Unmarshal(raw, &one); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("bad JSON object: %v", err)})
			return
		}
		reqs = []arriveRequest{one}
	}
	n := s.opts.Config.Graph.N()
	for _, a := range reqs {
		if a.Node < 0 || a.Node >= n {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("node %d out of range [0,%d)", a.Node, n)})
			return
		}
		if !(a.Amount > 0) || math.IsInf(a.Amount, 0) {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("amount %v must be positive and finite", a.Amount)})
			return
		}
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "draining"})
		return
	}
	for _, a := range reqs {
		s.pending = append(s.pending, scenario.Arrival{Node: a.Node, Amount: a.Amount})
	}
	round := s.sess.Rounds()
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, map[string]any{"queued": len(reqs), "round": round})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// URL returns the server's base URL once Run is listening ("" before).
func (s *Server) URL() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.addr == nil {
		return ""
	}
	return "http://" + s.addr.String()
}

// Run serves HTTP and paces the round loop until ctx is cancelled, then
// drains: ingest stops (503), the loop free-runs until Φ reaches the drain
// target (ε·peak, or the session target if higher) or the drain budget is
// spent, the recorder is flushed, and the HTTP server shuts down. Returns
// nil on a clean drain — the daemon's graceful SIGTERM exit.
func (s *Server) Run(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.opts.Addr)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	s.mu.Lock()
	s.addr = ln.Addr()
	s.mu.Unlock()
	hs := &http.Server{Handler: s.Handler()}
	httpErr := make(chan error, 1)
	go func() {
		if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			httpErr <- err
		}
	}()
	s.logf("listening on http://%s (interval %v, replay %d events)", ln.Addr(), s.opts.Interval, len(s.opts.Replay))

	var tickC <-chan time.Time
	if s.opts.Interval > 0 {
		tick := time.NewTicker(s.opts.Interval)
		defer tick.Stop()
		tickC = tick.C
	}

	runErr := func() error {
		for {
			select {
			case <-ctx.Done():
				return nil
			case err := <-httpErr:
				return err
			default:
			}
			if tickC != nil {
				select {
				case <-ctx.Done():
					return nil
				case err := <-httpErr:
					return err
				case <-tickC:
				}
			}
			if _, err := s.StepRound(); err != nil {
				return err
			}
		}
	}()

	if runErr == nil {
		runErr = s.drain()
	}
	if s.opts.Record != nil {
		if err := s.opts.Record.Flush(); err != nil && runErr == nil {
			runErr = fmt.Errorf("serve: flushing recording: %w", err)
		}
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil && runErr == nil {
		runErr = err
	}
	return runErr
}

// drain free-runs rounds with ingest stopped until Φ reaches the drain
// target or the drain budget (rounds or wall clock) is spent. Arrivals
// queued before the drain began are still injected — they were accepted.
func (s *Server) drain() error {
	s.mu.Lock()
	s.draining = true
	eps := s.sess.Config().Epsilon
	target := eps * s.sess.Metrics().PeakPhi
	if t := s.sess.Target(); t > target {
		target = t
	}
	phi := s.sess.Phi()
	s.mu.Unlock()

	s.logf("draining: Φ %.6g → target %.6g (≤ %d rounds, ≤ %v)",
		phi, target, s.opts.DrainMaxRounds, s.opts.DrainTimeout)
	deadline := time.Now().Add(s.opts.DrainTimeout)
	rounds := 0
	for phi > target && rounds < s.opts.DrainMaxRounds && time.Now().Before(deadline) {
		var err error
		if phi, err = s.StepRound(); err != nil {
			return err
		}
		rounds++
	}
	s.logf("drained: Φ %.6g after %d drain rounds", phi, rounds)
	return nil
}

// Close seals the session and returns the run's Result (the same report a
// batch run of the whole ingested workload would produce).
func (s *Server) Close() core.Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sess.Close()
}
