package spectral

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/matrix"
)

// denseCutoff is the largest n for which Lambda2 uses the O(n³) dense
// pipeline; beyond it the Lanczos path is both faster and accurate enough.
const denseCutoff = 400

// Lambda2 returns λ₂, the second-smallest eigenvalue of the Laplacian of g
// (its algebraic connectivity). Routing, cheapest first: the closed-form
// table in internal/graph/spectra.go for recognized topology families, the
// dense Householder+QL solver below the cutoff, implicit CSR Lanczos above
// it, and the CG-based inverse-power path when the Lanczos residual gate
// does not converge (tiny-gap families). The graph must have at least 2
// nodes and be connected (otherwise λ₂ = 0 and the convergence bounds of
// the paper are vacuous).
func Lambda2(g *graph.G) (float64, error) {
	n := g.N()
	if n < 2 {
		return 0, fmt.Errorf("spectral: λ₂ undefined for n=%d", n)
	}
	if !g.IsConnected() {
		return 0, nil
	}
	if l2, ok := graph.KnownLambda2(g); ok {
		solveClosedForm.Add(1)
		return l2, nil
	}
	if n <= denseCutoff {
		solveDense.Add(1)
		vals, err := EigenvaluesSym(g.Laplacian())
		if err != nil {
			return 0, err
		}
		return vals[1], nil
	}
	if l2, _, ok, err := LaplacianExtremal(g, 1); err == nil && ok {
		solveLanczos.Add(1)
		return l2, nil
	}
	solveInversePower.Add(1)
	return Lambda2InversePower(g, 1)
}

// MustLambda2 is Lambda2 that panics on error; for use with graphs known to
// be valid by construction.
func MustLambda2(g *graph.G) float64 {
	v, err := Lambda2(g)
	if err != nil {
		panic(err)
	}
	return v
}

// LaplacianSpectrum returns all Laplacian eigenvalues of g, ascending.
// Dense-only; intended for test fixtures and small harness sweeps.
func LaplacianSpectrum(g *graph.G) ([]float64, error) {
	return EigenvaluesSym(g.Laplacian())
}

// DiffusionMatrix builds Cybenko's diffusion matrix M for g with the
// uniform diffusion factor α = 1/(δ+1):
//
//	m_ij = α for edges (i,j),   m_ii = 1 − α·deg(i).
//
// M is symmetric, doubly stochastic, and L∞-contractive; the continuous
// first-order scheme is exactly Lᵗ⁺¹ = M·Lᵗ.
func DiffusionMatrix(g *graph.G) *matrix.Dense {
	alpha := 1 / float64(g.MaxDegree()+1)
	return WeightedDiffusionMatrix(g, func(i, j int) float64 { return alpha })
}

// PaperDiffusionMatrix builds the diffusion matrix matching Algorithm 1's
// transfer rule: m_ij = 1/(4·max(dᵢ, dⱼ)). In the continuous case one round
// of Algorithm 1 applied to load vector L is exactly this matrix applied to
// L, since flows in both directions of an edge agree in magnitude.
func PaperDiffusionMatrix(g *graph.G) *matrix.Dense {
	return WeightedDiffusionMatrix(g, func(i, j int) float64 {
		di, dj := g.Degree(i), g.Degree(j)
		if dj > di {
			di = dj
		}
		return 1 / (4 * float64(di))
	})
}

// WeightedDiffusionMatrix builds M from a per-edge diffusion factor
// alpha(i, j), which must be symmetric in its arguments. Diagonal entries
// are set to 1 − Σ_j alpha(i, j).
func WeightedDiffusionMatrix(g *graph.G, alpha func(i, j int) float64) *matrix.Dense {
	n := g.N()
	m := matrix.NewDense(n, n)
	for i := 0; i < n; i++ {
		var off float64
		for _, j := range g.Neighbors(i) {
			a := alpha(i, j)
			m.Set(i, j, a)
			off += a
		}
		m.Set(i, i, 1-off)
	}
	return m
}

// Gamma returns γ = max_{µᵢ ≠ µₙ} |µᵢ|, the second-largest eigenvalue
// magnitude of the diffusion matrix m (whose largest eigenvalue is 1 with
// the all-ones eigenvector). The convergence rate of the first-order scheme
// is ‖e(t)‖₂ ≤ γᵗ‖e(0)‖₂.
func Gamma(m *matrix.Dense) (float64, error) {
	vals, err := EigenvaluesSym(m)
	if err != nil {
		return 0, err
	}
	n := len(vals)
	if n < 2 {
		return 0, fmt.Errorf("spectral: γ undefined for n=%d", n)
	}
	// vals ascending; largest is vals[n−1] ≈ 1. γ = max(|vals[0]|, vals[n−2]).
	g := vals[n-2]
	if a := math.Abs(vals[0]); a > g {
		g = a
	}
	return g, nil
}

// EigenGap returns µ = 1 − γ for the diffusion matrix m.
func EigenGap(m *matrix.Dense) (float64, error) {
	g, err := Gamma(m)
	if err != nil {
		return 0, err
	}
	return 1 - g, nil
}

// Report bundles the spectral quantities the experiment harness prints for
// a topology.
type Report struct {
	Name        string
	N, M, Delta int
	Lambda2     float64 // algebraic connectivity
	LambdaMax   float64 // largest Laplacian eigenvalue
	Gamma       float64 // 2nd-largest |eigenvalue| of the uniform diffusion matrix (NaN for n < 2)
	ExpansionLo float64 // Cheeger lower bound λ₂/2
	ExpansionHi float64 // Cheeger upper bound sqrt(2δλ₂)
	Exact       bool    // λ₂ from a closed form or dense solve (true) or an iterative path (false)
	Method      string  // which dispatch path produced λ₂ (see SolveStats)
}

// Analyze computes a Report for g. All quantities are filled at every size
// now that λ_max and γ route through the closed-form and implicit-Lanczos
// paths; Exact records whether λ₂ came from an exact solver and Method
// names the dispatch path that actually ran.
func Analyze(g *graph.G) (Report, error) {
	r := Report{Name: g.Name(), N: g.N(), M: g.M(), Delta: g.MaxDegree()}
	before := SolveStats()
	l2, err := Lambda2(g)
	if err != nil {
		return r, err
	}
	switch after := SolveStats(); {
	case after.ClosedForm > before.ClosedForm:
		r.Method = "closed form"
	case after.Dense > before.Dense:
		r.Method = "dense Householder+QL"
	case after.Lanczos > before.Lanczos:
		r.Method = "implicit Lanczos"
	case after.InversePower > before.InversePower:
		r.Method = "inverse-power CG"
	default:
		r.Method = "cached"
	}
	r.Lambda2 = l2
	r.ExpansionLo, r.ExpansionHi = graph.ExpansionBounds(g, l2)
	_, r.Exact = graph.KnownLambda2(g)
	r.Exact = r.Exact || g.N() <= denseCutoff
	r.LambdaMax, r.Gamma = math.NaN(), math.NaN()
	lm, err := LambdaMaxOf(g)
	if err != nil {
		return r, err
	}
	r.LambdaMax = lm
	if g.N() >= 2 {
		gm, err := GammaOf(g)
		if err != nil {
			return r, err
		}
		r.Gamma = gm
	}
	return r, nil
}
