// Package diffusion implements the paper's primary contribution surface:
// Algorithm 1 ("diff-balancing"), the synchronous diffusion load balancer in
// which every node concurrently compares its load with every neighbour and
// sends (ℓᵢ − ℓⱼ)/(4·max(dᵢ, dⱼ)) to each lighter neighbour j — in the
// continuous model (fractional load, §4.1) and the discrete model
// (indivisible tokens, floor of the same quantity, §4.2).
//
// The package also implements the classical comparators the paper discusses:
// Cybenko's first-order scheme Lᵗ⁺¹ = M·Lᵗ with uniform diffusion factor
// α = 1/(δ+1) [3], and the second-order scheme of Muthukrishnan, Ghosh and
// Schultz [15] with momentum parameter β.
//
// All steppers are deterministic; one round reads the round-start load
// vector and applies all edge flows computed from it, exactly matching the
// paper's synchronous model. Because each node's next load is a function of
// the round-start vector only, rounds are data-parallel and the steppers
// accept a worker count (see internal/parallel).
package diffusion

import (
	"math"

	"repro/internal/graph"
	"repro/internal/load"
	"repro/internal/matrix"
	"repro/internal/parallel"
)

// Flow records the net transfer across one edge in one round; Amount > 0
// moves load from Edge.U to Edge.V, Amount < 0 the other way.
type Flow struct {
	Edge   graph.Edge
	Amount float64
}

// EdgeWeight returns the magnitude of the Algorithm 1 transfer across edge
// (i, j) for round-start loads li, lj:
//
//	w_ij = |ℓᵢ − ℓⱼ| / (4·max(dᵢ, dⱼ)).
//
// This is the weight the sequentialized analysis sorts edges by.
func EdgeWeight(g *graph.G, i, j int, li, lj float64) float64 {
	di, dj := g.Degree(i), g.Degree(j)
	if dj > di {
		di = dj
	}
	return math.Abs(li-lj) / (4 * float64(di))
}

// RoundFlowsContinuous computes the per-edge flows Algorithm 1 sends in one
// round from the given load vector, without applying them.
func RoundFlowsContinuous(g *graph.G, l matrix.Vector) []Flow {
	flows := make([]Flow, 0, g.M())
	for _, e := range g.Edges() {
		w := EdgeWeight(g, e.U, e.V, l[e.U], l[e.V])
		if w == 0 {
			continue
		}
		amt := w
		if l[e.U] < l[e.V] {
			amt = -w
		}
		flows = append(flows, Flow{Edge: e, Amount: amt})
	}
	return flows
}

// RoundFlowsDiscrete computes the integer per-edge flows of the discrete
// Algorithm 1: ⌊|ℓᵢ−ℓⱼ|/(4·max(dᵢ,dⱼ))⌋ tokens from the heavier endpoint.
func RoundFlowsDiscrete(g *graph.G, tokens []int64) []Flow {
	flows := make([]Flow, 0, g.M())
	for _, e := range g.Edges() {
		li, lj := float64(tokens[e.U]), float64(tokens[e.V])
		w := math.Floor(EdgeWeight(g, e.U, e.V, li, lj))
		if w == 0 {
			continue
		}
		amt := w
		if li < lj {
			amt = -w
		}
		flows = append(flows, Flow{Edge: e, Amount: amt})
	}
	return flows
}

// Continuous is the stateful continuous Algorithm 1 stepper on a fixed
// graph. Workers > 1 enables the goroutine-parallel round executor.
type Continuous struct {
	G       *graph.G
	Load    *load.Continuous
	Workers int

	next matrix.Vector // scratch for the round-start/next double buffer
	body func(i int)   // the round body, built once (see Step)
}

// NewContinuous creates a stepper over a copy of the initial loads.
func NewContinuous(g *graph.G, initial []float64) *Continuous {
	if len(initial) != g.N() {
		panic("diffusion: initial load length mismatch")
	}
	return &Continuous{G: g, Load: load.NewContinuous(initial)}
}

// Step advances one synchronous round of Algorithm 1.
//
// Node i's next load depends only on the round-start vector:
//
//	ℓᵢ′ = ℓᵢ − Σ_{j∼i: ℓᵢ>ℓⱼ} w_ij + Σ_{j∼i: ℓⱼ>ℓᵢ} w_ij,
//
// so each node is computed independently — this is the concurrency the
// paper's proof technique is about, and it is also what makes the parallel
// executor safe without synchronization beyond the round barrier.
func (c *Continuous) Step() {
	g, cur := c.G, c.Load.Vector()
	n := g.N()
	if c.body == nil {
		c.next = make(matrix.Vector, n)
		// The round body scans the CSR rows — one contiguous index stream —
		// instead of pointer-chasing per-node slices. Neighbour order and the
		// floating-point operation chain are identical to the slice form (the
		// CSR contract in graph.CSR), so checksums match bit-for-bit. The
		// closure is built once: the graph, the CSR arrays and the load
		// vector's backing storage are all fixed for the stepper's lifetime,
		// and a per-Step closure would put one heap allocation in the round
		// hot loop.
		off, tgt := g.CSR()
		next := c.next
		c.body = func(i int) {
			li := cur[i]
			acc := li
			// Reslicing the row once keeps the inner loop free of repeated
			// offset loads and target bounds checks.
			row := tgt[off[i]:off[i+1]]
			di := len(row)
			for _, j := range row {
				lj := cur[j]
				if li == lj {
					continue
				}
				d := di
				if dj := int(off[j+1] - off[j]); dj > d {
					d = dj
				}
				w := math.Abs(li-lj) / (4 * float64(d))
				if li > lj {
					acc -= w
				} else {
					acc += w
				}
			}
			next[i] = acc
		}
	}
	parallel.For(n, parallel.StepperWorkers(c.Workers), c.body)
	copy(cur, c.next)
}

// Potential returns Φ of the current distribution.
func (c *Continuous) Potential() float64 { return c.Load.Potential() }

// LoadVector returns the live load vector (implements sim.ContinuousState,
// the scenario engine's between-round injection hook).
func (c *Continuous) LoadVector() []float64 { return c.Load.Vector() }

// Discrete is the stateful discrete Algorithm 1 stepper.
type Discrete struct {
	G       *graph.G
	Load    *load.Discrete
	Workers int

	next []int64
	body func(i int) // the round body, built once (see Step)
}

// NewDiscrete creates a stepper over a copy of the initial token counts.
func NewDiscrete(g *graph.G, initial []int64) *Discrete {
	if len(initial) != g.N() {
		panic("diffusion: initial token length mismatch")
	}
	return &Discrete{G: g, Load: load.NewDiscrete(initial)}
}

// Step advances one synchronous round of the discrete Algorithm 1, moving
// ⌊(ℓᵢ−ℓⱼ)/(4·max(dᵢ,dⱼ))⌋ tokens across each unbalanced edge. Both
// endpoints compute the same flow from the same round-start counts, so the
// node-parallel formulation remains exact.
func (d *Discrete) Step() {
	g, cur := d.G, d.Load.Tokens()
	n := g.N()
	if d.body == nil {
		d.next = make([]int64, n)
		// Built once for the stepper's lifetime, like Continuous.Step — a
		// per-Step closure would be one heap allocation per round.
		off, tgt := g.CSR()
		next := d.next
		d.body = func(i int) {
			li := cur[i]
			acc := li
			row := tgt[off[i]:off[i+1]]
			di := len(row)
			for _, j := range row {
				lj := cur[j]
				if li == lj {
					continue
				}
				d := di
				if dj := int(off[j+1] - off[j]); dj > d {
					d = dj
				}
				w := int64(math.Abs(float64(li)-float64(lj)) / (4 * float64(d)))
				if li > lj {
					acc -= w
				} else {
					acc += w
				}
			}
			next[i] = acc
		}
	}
	parallel.For(n, parallel.StepperWorkers(d.Workers), d.body)
	copy(cur, d.next)
}

// Potential returns Φ of the current distribution.
func (d *Discrete) Potential() float64 { return d.Load.Potential() }

// LoadTokens returns the live token counts (implements sim.DiscreteState,
// the scenario engine's between-round injection hook).
func (d *Discrete) LoadTokens() []int64 { return d.Load.Tokens() }

// DiscreteThreshold returns the paper's Theorem 6 residual threshold
// 64·δ³·n/λ₂ below which the discrete analysis stops guaranteeing progress.
func DiscreteThreshold(g *graph.G, lambda2 float64) float64 {
	delta := float64(g.MaxDegree())
	return 64 * delta * delta * delta * float64(g.N()) / lambda2
}

// ContinuousBound returns the Theorem 4 round bound T = 4δ·ln(1/ε)/λ₂ for
// reducing the potential to ε·Φ(L⁰).
func ContinuousBound(g *graph.G, lambda2, eps float64) float64 {
	return 4 * float64(g.MaxDegree()) * math.Log(1/eps) / lambda2
}

// DiscreteBound returns the Theorem 6 round bound
// T = 8δ·ln(λ₂Φ⁰/(64δ³n))/λ₂ for reaching the DiscreteThreshold.
func DiscreteBound(g *graph.G, lambda2, phi0 float64) float64 {
	thr := DiscreteThreshold(g, lambda2)
	if phi0 <= thr {
		return 0
	}
	return 8 * float64(g.MaxDegree()) * math.Log(phi0/thr) / lambda2
}
