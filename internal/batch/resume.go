package batch

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
)

// Journal is a parsed JSONL journal: the spec headers and the cells
// recovered before the first undecodable line.
type Journal struct {
	// Specs are the specs the journal's outcomes were produced under, one
	// per header line in order — several when shard journals were
	// concatenated, empty for headerless journals. Resume uses them to
	// refuse journals whose run parameters don't match the resuming spec.
	Specs []Spec
	// Origins are the provenance strings recorded alongside the headers,
	// parallel to Specs ("" for headers written without one).
	Origins []string
	// Cells are the recovered cells, in journal order.
	Cells []Cell
	// Dropped counts the non-empty lines discarded as corrupt/truncated.
	Dropped int
}

// ReadJournal parses a JSONL journal written by JSONLSink: a spec header
// followed by one Cell per line. A sweep killed mid-write can leave a torn
// final line, and a corrupt byte invalidates everything after it (there is
// no resynchronization point inside a line) — so parsing stops at the first
// undecodable line and the remainder is discarded into Dropped; Resume
// simply re-runs the units those lines would have covered, which is the
// safe direction. err reports I/O failures only.
func ReadJournal(r io.Reader) (*Journal, error) {
	j := &Journal{}
	br := bufio.NewReader(r)
	for {
		line, readErr := br.ReadBytes('\n')
		if t := bytes.TrimSpace(line); len(t) > 0 {
			// Headers are recognized anywhere, not just on line one:
			// concatenated shard journals carry one per shard, and every one
			// of them must reach CheckSpec (a mid-file header misread as a
			// Cell would both bypass the parameter check and inject a
			// phantom zero-value cell).
			header, c, perr := parseJournalLine(t)
			switch {
			case perr != nil:
				j.Dropped++
				j.Dropped += countLines(br)
				return j, nil
			case header != nil:
				j.Specs = append(j.Specs, *header.Spec)
				j.Origins = append(j.Origins, header.Origin)
			default:
				j.Cells = append(j.Cells, c)
			}
		}
		if readErr == io.EOF {
			return j, nil
		}
		if readErr != nil {
			return j, fmt.Errorf("batch: journal: %w", readErr)
		}
	}
}

// countLines drains r and counts its remaining non-empty lines.
func countLines(br *bufio.Reader) int {
	n := 0
	for {
		line, err := br.ReadBytes('\n')
		if len(bytes.TrimSpace(line)) > 0 {
			n++
		}
		if err != nil {
			return n
		}
	}
}

// CheckSpec verifies every run-parameter header recorded in the journal
// matches spec. A unit Key names only the grid coordinates (topology,
// algorithm, mode, workload, seed), so outcomes recorded under a different
// n, scale, ε or round cap would replay cleanly by Key while silently
// corrupting the merged figure — exactly the mistake this check turns into
// an error, including for a single mismatched shard inside a concatenated
// journal. Headerless journals (truncated before the header, or written by
// hand) pass on trust. Resume runs the check itself; CLIs also call it
// before truncating the output journal, while the partial one is still the
// only copy.
func (j *Journal) CheckSpec(spec Spec) error {
	want := spec.withDefaults()
	for _, js := range j.Specs {
		if js.N != want.N || js.Scale != want.Scale || js.Epsilon != want.Epsilon || js.MaxRounds != want.MaxRounds {
			return fmt.Errorf(
				"batch: resume: journal was recorded with n=%d scale=%g epsilon=%g max_rounds=%d, "+
					"but this sweep uses n=%d scale=%g epsilon=%g max_rounds=%d — "+
					"outcomes are not comparable; match the parameters or start fresh without the journal",
				js.N, js.Scale, js.Epsilon, js.MaxRounds,
				want.N, want.Scale, want.Epsilon, want.MaxRounds)
		}
	}
	return nil
}

// ReadJournalFile is ReadJournal over the file at path.
func ReadJournalFile(path string) (*Journal, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("batch: journal: %w", err)
	}
	defer f.Close()
	return ReadJournal(f)
}

// Resume re-runs spec against a partial journal: units whose Key appears in
// journal.Cells with an empty Err adopt the journaled outcome without
// re-running; missing, failed and cancelled units are re-enqueued on the
// pool. The merged report — and the stream delivered to sink, typically a
// fresh journal replacing the partial one — is byte-identical to an
// uninterrupted run of the same spec, for any worker count: replayed
// outcomes round-trip exactly through JSON, derived statistics are
// recomputed from them, and re-run units draw the same Key-derived RNG
// streams they would have drawn the first time.
//
// A unit Key names only the grid coordinates (topology, algorithm, mode,
// workload, seed), not the run parameters, so when the journal carries a
// spec header Resume refuses to merge outcomes produced under a different
// n, scale, ε or round cap — that mismatch would silently corrupt the
// figure. Headerless journals are replayed on trust.
//
// Journal cells whose Key is not in spec's expansion are ignored, so a
// journal can be replayed against a grown grid; keys duplicated by repeated
// resumes resolve to the last occurrence. A nil journal degrades to a
// fresh RunSink.
func Resume(ctx context.Context, spec Spec, run RunFunc, journal *Journal, sink Sink) (*Report, error) {
	if journal == nil {
		return runSink(ctx, spec, run, sink, nil, true)
	}
	if err := journal.CheckSpec(spec); err != nil {
		return nil, err
	}
	return runSink(ctx, spec, run, sink, journal.replay(), true)
}

// replay indexes the journal's clean outcomes by unit Key; keys duplicated
// by repeated resumes resolve to the last occurrence.
func (j *Journal) replay() map[string]Outcome {
	replay := make(map[string]Outcome, len(j.Cells))
	for _, c := range j.Cells {
		if c.Err != "" {
			continue
		}
		replay[c.Key()] = c.Outcome
	}
	return replay
}
