package batch

import "runtime"

// RoundParallelMinN is the node count below which the auto-tuner refuses to
// spend cores on round-level fan-out: under it a round's node loop is tens
// of microseconds and the per-round goroutine barrier costs more than it
// buys, so the cores are worth more as unit-level pool width.
const RoundParallelMinN = 4096

// TuneWorkers splits procs cores between the engine's unit-level pool and
// the steppers' round-level workers for a sweep of `units` cells of `n`
// nodes each. The policy follows the two regimes the hybrid design is for:
// many small cells saturate the machine at the unit level (rounds stay
// serial), while few huge cells — fewer units than cores, big enough n —
// hand the spare cores to the rounds. Both returned widths are ≥ 1 and
// their product never exceeds max(procs, units).
func TuneWorkers(units, n, procs int) (unitWorkers, roundWorkers int) {
	if procs < 1 {
		procs = 1
	}
	if units < 1 {
		units = 1
	}
	if units >= procs || n < RoundParallelMinN {
		if units < procs {
			return units, 1
		}
		return procs, 1
	}
	roundWorkers = procs / units
	if roundWorkers < 1 {
		roundWorkers = 1
	}
	return units, roundWorkers
}

// WorkerSplit resolves the spec's effective (unit-level, round-level)
// worker widths — the single place both the engine's pool and the run
// body's stepper configuration read, so the two levels never claim the
// machine twice. RoundWorkers ≥ 0 is explicit (0 means serial rounds);
// RoundWorkers < 0 engages TuneWorkers on the spec's own shard-owned unit
// count and node size, with an explicit Workers width taking precedence
// over the tuner's unit split.
func (s Spec) WorkerSplit() (unitWorkers, roundWorkers int) {
	s = s.withDefaults()
	procs := runtime.GOMAXPROCS(0)
	if s.RoundWorkers >= 0 {
		unitWorkers = s.Workers
		if unitWorkers <= 0 {
			unitWorkers = procs
		}
		roundWorkers = s.RoundWorkers
		if roundWorkers < 1 {
			roundWorkers = 1
		}
		return unitWorkers, roundWorkers
	}
	unitWorkers, roundWorkers = TuneWorkers(s.OwnedUnitCount(), s.N, procs)
	if s.Workers > 0 {
		unitWorkers = s.Workers
		roundWorkers = procs / unitWorkers
		if roundWorkers < 1 || s.N < RoundParallelMinN {
			roundWorkers = 1
		}
	}
	return unitWorkers, roundWorkers
}
