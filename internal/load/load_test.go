package load

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
)

func TestContinuousBasics(t *testing.T) {
	c := NewContinuous([]float64{1, 2, 3})
	if c.N() != 3 || c.Total() != 6 || c.Average() != 2 {
		t.Fatalf("basics: %v", c)
	}
	if got := c.Potential(); math.Abs(got-2) > 1e-12 {
		t.Fatalf("Φ = %v, want 2", got)
	}
	if c.Discrepancy() != 2 {
		t.Fatalf("K = %v", c.Discrepancy())
	}
}

func TestContinuousMoveConserves(t *testing.T) {
	c := NewContinuous([]float64{5, 0})
	c.Move(0, 1, 2.5)
	if c.At(0) != 2.5 || c.At(1) != 2.5 {
		t.Fatalf("after move: %v %v", c.At(0), c.At(1))
	}
	if c.Total() != 5 {
		t.Fatal("move must conserve total")
	}
	if c.Potential() != 0 {
		t.Fatal("balanced state must have Φ=0")
	}
}

func TestContinuousCloneIsolation(t *testing.T) {
	c := NewContinuous([]float64{1, 2})
	d := c.Clone()
	d.Set(0, 99)
	if c.At(0) != 1 {
		t.Fatal("clone must not alias")
	}
}

func TestNewContinuousCopiesInput(t *testing.T) {
	src := []float64{1, 2}
	c := NewContinuous(src)
	src[0] = 99
	if c.At(0) != 1 {
		t.Fatal("constructor must copy")
	}
}

func TestErrorVectorAndNorm(t *testing.T) {
	c := NewContinuous([]float64{0, 4})
	e := c.ErrorVector()
	if e[0] != -2 || e[1] != 2 {
		t.Fatalf("error vector %v", e)
	}
	if math.Abs(c.ErrorNorm2()-math.Sqrt(8)) > 1e-12 {
		t.Fatalf("‖e‖₂ = %v", c.ErrorNorm2())
	}
}

func TestDiscreteBasics(t *testing.T) {
	d := NewDiscrete([]int64{4, 0, 2})
	if d.N() != 3 || d.Total() != 6 {
		t.Fatalf("basics: %v", d)
	}
	if d.Average() != 2 {
		t.Fatalf("avg = %v", d.Average())
	}
	if d.Discrepancy() != 4 {
		t.Fatalf("K = %v", d.Discrepancy())
	}
	if got := d.Potential(); math.Abs(got-8) > 1e-12 {
		t.Fatalf("Φ = %v, want 8", got)
	}
}

func TestDiscreteMoveAndConvert(t *testing.T) {
	d := NewDiscrete([]int64{10, 0})
	d.Move(0, 1, 5)
	if d.At(0) != 5 || d.At(1) != 5 {
		t.Fatal("move wrong")
	}
	c := d.ToContinuous()
	if c.At(0) != 5 || c.Total() != 10 {
		t.Fatal("conversion wrong")
	}
}

func TestZeroConstructors(t *testing.T) {
	if Zero(4).Potential() != 0 {
		t.Fatal("zero continuous must be balanced")
	}
	if ZeroDiscrete(4).Total() != 0 {
		t.Fatal("zero discrete total")
	}
}

func TestEmptyDistributions(t *testing.T) {
	c := NewContinuous(nil)
	if c.Potential() != 0 || c.Discrepancy() != 0 {
		t.Fatal("empty continuous conventions")
	}
	d := NewDiscrete(nil)
	if d.Potential() != 0 || d.Discrepancy() != 0 || d.Average() != 0 {
		t.Fatal("empty discrete conventions")
	}
}

func TestPotentialAroundCompensated(t *testing.T) {
	// Large offset with small deviations: naive accumulation in float32
	// territory would lose the deviations; compensated must not.
	x := make(matrix.Vector, 1000)
	for i := range x {
		x[i] = 1e9
	}
	x[0] = 1e9 + 1
	x[1] = 1e9 - 1
	got := PotentialAround(x, x.Mean())
	if math.Abs(got-2) > 1e-6 {
		t.Fatalf("Φ = %v, want ≈2", got)
	}
}

// Lemma 10 of the paper: ΣᵢΣⱼ(ℓᵢ−ℓⱼ)² = 2n·Φ(L), with the O(n²) double
// sum as oracle against the O(n) implementation.
func TestLemma10IdentityProperty(t *testing.T) {
	f := func(seed uint8) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		n := 1 + r.Intn(40)
		x := make(matrix.Vector, n)
		for i := range x {
			x[i] = r.Float64() * 100
		}
		fast := PairwiseSquaredSum(x)
		var slow float64
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				d := x[i] - x[j]
				slow += d * d
			}
		}
		phi := PotentialAround(x, x.Mean())
		lhsOK := math.Abs(fast-slow) <= 1e-6*(1+slow)
		identityOK := math.Abs(slow-2*float64(n)*phi) <= 1e-6*(1+slow)
		return lhsOK && identityOK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Φ is invariant under permutations and shifts the way it should
// be: adding a constant to every load leaves Φ unchanged.
func TestPotentialShiftInvarianceProperty(t *testing.T) {
	f := func(seed uint8, shiftRaw int8) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		n := 1 + r.Intn(30)
		shift := float64(shiftRaw)
		x := make([]float64, n)
		for i := range x {
			x[i] = r.Float64() * 50
		}
		c1 := NewContinuous(x)
		for i := range x {
			x[i] += shift
		}
		c2 := NewContinuous(x)
		return math.Abs(c1.Potential()-c2.Potential()) < 1e-7*(1+c1.Potential())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: moving load from a heavier to a lighter node by no more than
// the difference never increases Φ (the microscopic fact behind Lemma 1).
func TestMoveTowardsBalanceDecreasesPotentialProperty(t *testing.T) {
	f := func(seed uint8) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		n := 2 + r.Intn(20)
		x := make([]float64, n)
		for i := range x {
			x[i] = r.Float64() * 10
		}
		c := NewContinuous(x)
		before := c.Potential()
		i, j := r.Intn(n), r.Intn(n)
		if i == j {
			return true
		}
		if c.At(i) < c.At(j) {
			i, j = j, i
		}
		amount := (c.At(i) - c.At(j)) * r.Float64()
		c.Move(i, j, amount)
		return c.Potential() <= before+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStringers(t *testing.T) {
	if s := NewContinuous([]float64{1}).String(); s == "" {
		t.Fatal("empty continuous String")
	}
	if s := NewDiscrete([]int64{1}).String(); s == "" {
		t.Fatal("empty discrete String")
	}
}
