// Package batch is the parallel batch-experiment engine: it takes a
// declarative grid specification (topologies × algorithms × modes ×
// workloads × scenarios × seeds), expands it into independent run units, fans the units
// out over internal/parallel's worker pool with per-unit deterministic RNG
// streams, and aggregates the outcomes into a single report with per-cell
// convergence statistics (rounds vs. the theorem bound, final discrepancy,
// wall time).
//
// The engine is sink-driven: finished cells can additionally be streamed,
// one at a time and in deterministic expansion order (a sequencing layer
// reorders out-of-order completions for any worker count), to a Sink —
// MemorySink for the classic in-RAM report, JSONLSink for a
// one-line-per-cell journal on disk, MultiSink to fan out. JSONL journals
// are the unit of crash recovery: Resume replays a journal's completed
// unit Keys and re-enqueues only the missing or failed cells, merging old
// and new into a report byte-identical to an uninterrupted run.
//
// Sweeps shard across processes: Spec.Shard(i, m) restricts a run to the
// units whose expansion index is ≡ i (mod m) — disjoint and exhaustive by
// construction — and MergeJournals k-way-merges the m per-shard journals
// back into the exact global expansion order, failing loudly on overlap or
// grid mismatch. For grids whose cells must never materialize (the classic
// Report is O(units) memory), RunStream + AggSink fold per-cell statistics
// incrementally — bit-identical to the Report's aggregates — straight from
// the live stream or from merged journals.
//
// The package is deliberately algorithm-agnostic: a RunFunc executes one
// unit, so the engine never imports internal/core (which wires it up as
// core.GridRun) and any harness — the experiments suite, the CLIs, the
// root benchmarks — can reuse the same expansion, pooling, streaming and
// aggregation machinery with its own run body.
package batch

import (
	"fmt"
	"hash/fnv"
	"strings"

	"repro/internal/parallel"
	"repro/internal/scenario"
	"repro/internal/workload"
)

// Spec declares a sweep grid. Every combination of one entry per dimension
// becomes one run unit; the expansion is exhaustive and duplicate-free
// (duplicate entries within a dimension are rejected).
type Spec struct {
	// Topologies are topoparse names ("cycle", "torus", "hypercube", …).
	Topologies []string `json:"topologies"`
	// N is the approximate node count per topology (default 64; families
	// with rigid sizes round up exactly as topoparse does).
	N int `json:"n"`
	// Algorithms are core algorithm names ("diffusion", "dimexchange",
	// "randpair", "firstorder", "secondorder", "roundrobin").
	Algorithms []string `json:"algorithms"`
	// Modes are load models: "continuous", "discrete".
	Modes []string `json:"modes"`
	// Workloads are workload kind names ("spike", "uniform", …).
	Workloads []string `json:"workloads"`
	// Scenarios are scenario descriptions ("static", "poisson-arrivals:0.05",
	// "adversarial-respike", "edge-churn:0.2", …) — the time-varying
	// dimension: each unit's run injects that scenario's arrivals and
	// topology churn between rounds. Default {"static"}, which reproduces
	// the pre-scenario engine exactly (same unit keys, same RNG streams,
	// same journal bytes).
	Scenarios []string `json:"scenarios,omitempty"`
	// Seeds are the per-repetition seeds (default {1}). Each seed is one run
	// unit per cell; the report aggregates across seeds.
	Seeds []int64 `json:"seeds"`
	// Scale is the total (spike) or per-node (i.i.d.) load magnitude
	// (default 1e6).
	Scale float64 `json:"scale"`
	// Epsilon is the convergence target Φ ≤ ε·Φ⁰ (default 1e-3).
	Epsilon float64 `json:"epsilon"`
	// MaxRounds caps each run (0 lets the runner pick its theorem-derived
	// default).
	MaxRounds int `json:"max_rounds,omitempty"`
	// ShardIndex/ShardCount restrict a run to one deterministic slice of the
	// expansion: unit u belongs to shard i of m iff u.Index % m == i, so the
	// m shards are disjoint and exhaustive by construction. ShardCount ≤ 1
	// means unsharded. Set them through Shard; they are recorded in journal
	// headers so a merger can tell which slice each journal covers.
	ShardIndex int `json:"shard_index,omitempty"`
	ShardCount int `json:"shard_count,omitempty"`
	// UnitLo/UnitHi further restrict ownership to the half-open expansion
	// window [UnitLo, UnitHi) — the work-stealing supervisor's carve: a
	// stolen sub-shard keeps the victim's ShardIndex/ShardCount and narrows
	// the window to the units the victim never journaled. UnitHi == 0 means
	// unbounded. Both zero (the default) is the whole expansion, so legacy
	// specs and journal headers are unchanged. Set them through Range; they
	// are recorded in journal headers like the shard fields.
	UnitLo int `json:"unit_lo,omitempty"`
	UnitHi int `json:"unit_hi,omitempty"`
	// Workers sets the unit-level pool width (≤ 0 selects GOMAXPROCS). It
	// affects scheduling only: results are identical for any value.
	Workers int `json:"-"`
	// RoundWorkers is the round-level worker count inside every unit's
	// stepper: 0 (the default) runs rounds serially, > 0 pins that many
	// workers per unit, < 0 asks the auto-tuner to split GOMAXPROCS
	// between unit-level and round-level fan-out from the grid shape (see
	// WorkerSplit). Like Workers it affects scheduling only — results are
	// byte-identical for any value — so it is excluded from journal
	// headers and grid-identity checks.
	RoundWorkers int `json:"-"`
}

// Shard returns a copy of s restricted to shard i of m. The assignment
// partitions by expansion index (round-robin), so the m shard specs together
// cover every unit exactly once — run each in its own process with its own
// journal, then MergeJournals the results. Shards may be empty when m
// exceeds the unit count; an empty shard runs nothing and journals only its
// header, which merges cleanly.
func (s Spec) Shard(i, m int) (Spec, error) {
	if m <= 0 {
		return Spec{}, fmt.Errorf("batch: shard count %d must be positive", m)
	}
	if i < 0 || i >= m {
		return Spec{}, fmt.Errorf("batch: shard index %d out of range [0, %d)", i, m)
	}
	s.ShardIndex, s.ShardCount = i, m
	return s, nil
}

// ShardOwns reports whether expansion index idx belongs to shard i of m —
// the single assignment rule shared by the engine's unit filter and every
// other harness (the experiments suite) that fans work out by index.
func ShardOwns(idx, i, m int) bool {
	if m <= 1 {
		return true
	}
	return idx%m == i
}

// Range returns a copy of s restricted to expansion indices in the
// half-open window [lo, hi); hi == 0 leaves the upper end unbounded. The
// window composes with the shard fields: a ranged shard owns the indices
// that pass both filters. This is how a supervisor reassigns a dead
// shard's unstarted tail — the sub-shard keeps the victim's identity and
// narrows the window, so the resulting journals stay disjoint and merge
// back into exact global order.
func (s Spec) Range(lo, hi int) (Spec, error) {
	if lo < 0 {
		return Spec{}, fmt.Errorf("batch: negative unit range start %d", lo)
	}
	if hi != 0 && hi <= lo {
		return Spec{}, fmt.Errorf("batch: empty unit range [%d, %d)", lo, hi)
	}
	s.UnitLo, s.UnitHi = lo, hi
	return s, nil
}

// Owns reports whether this spec's shard-and-window assignment owns
// expansion index idx — the one ownership rule behind ownedUnits,
// OwnedUnitCount and the supervisor's steal arithmetic.
func (s Spec) Owns(idx int) bool {
	if idx < s.UnitLo || (s.UnitHi > 0 && idx >= s.UnitHi) {
		return false
	}
	return ShardOwns(idx, s.ShardIndex, s.ShardCount)
}

// WithDefaults returns s with the documented defaults filled in — the spec
// the engine will actually run. Exposed for orchestrators that must
// reproduce the effective grid outside the engine (shard CLI flags, journal
// layouts, CI matrix entries).
func (s Spec) WithDefaults() Spec { return s.withDefaults() }

// withDefaults fills the documented defaults without mutating the receiver.
func (s Spec) withDefaults() Spec {
	if s.N <= 0 {
		s.N = 64
	}
	if len(s.Seeds) == 0 {
		s.Seeds = []int64{1}
	}
	if len(s.Scenarios) == 0 {
		s.Scenarios = []string{"static"}
	}
	if s.Scale <= 0 {
		s.Scale = 1e6
	}
	if s.Epsilon <= 0 {
		s.Epsilon = 1e-3
	}
	return s
}

// Unit is one expanded run: a single (topology, algorithm, mode, workload,
// scenario, seed) combination at a fixed position in the grid.
type Unit struct {
	// Index is the unit's position in expansion order.
	Index int `json:"index"`
	// Topology, Algorithm and Mode are the normalized spec names.
	Topology  string `json:"topology"`
	Algorithm string `json:"algorithm"`
	Mode      string `json:"mode"`
	// Workload is the parsed initial-distribution kind.
	Workload workload.Kind `json:"-"`
	// WorkloadName is Workload.String(), kept for emitters.
	WorkloadName string `json:"workload"`
	// Scenario is the canonical scenario string, with one exception: the
	// static scenario is stored as "" (and omitted from JSON), so unit
	// keys, seed streams and journal bytes of scenario-free sweeps are
	// byte-identical to those of the pre-scenario engine — old journals
	// replay and merge without translation.
	Scenario string `json:"scenario,omitempty"`
	// ScenarioSpec is the parsed scenario (zero value for static).
	ScenarioSpec scenario.Spec `json:"-"`
	// Seed is the unit's repetition seed from Spec.Seeds.
	Seed int64 `json:"seed"`
}

// Key is the unit's stable identity string. RNG streams are derived from it
// (not from Index), so a unit's result does not change when other
// dimensions are added to the grid around it. Static units keep the
// five-segment legacy form; a non-static scenario appends one segment.
func (u Unit) Key() string {
	k := fmt.Sprintf("%s/%s/%s/%s/s%d", u.Topology, u.Algorithm, u.Mode, u.WorkloadName, u.Seed)
	if u.Scenario != "" {
		k += "/" + u.Scenario
	}
	return k
}

// CellKey is the unit's identity without the seed — the aggregation key.
func (u Unit) CellKey() string {
	k := fmt.Sprintf("%s/%s/%s/%s", u.Topology, u.Algorithm, u.Mode, u.WorkloadName)
	if u.Scenario != "" {
		k += "/" + u.Scenario
	}
	return k
}

// ScenarioName is the display form of the unit's scenario: "static" for
// the legacy empty encoding, the canonical string otherwise.
func (u Unit) ScenarioName() string {
	if u.Scenario == "" {
		return "static"
	}
	return u.Scenario
}

// ScenarioSeed is the unit's scenario RNG root — stream 2 of the unit's
// key-derived seed sequence (0 is the workload draw, 1 the algorithm), so
// a scenario's randomness never perturbs the other streams and is
// identical for any worker count or shard split.
func (u Unit) ScenarioSeed() int64 {
	return parallel.DeriveSeed(u.seedBase(), 2)
}

// seedBase hashes the unit key into the root of its private seed sequence.
func (u Unit) seedBase() int64 {
	h := fnv.New64a()
	h.Write([]byte(u.Key()))
	return int64(h.Sum64())
}

// Validate checks spec without running anything: every dimension must be
// non-empty and duplicate-free after normalization, modes and workloads must
// parse, and the seed list must not repeat — the same up-front rejection
// Expand applies, exposed so CLIs can fail fast (before truncating a journal
// file) instead of expanding to a zero-unit or duplicated sweep.
func (s Spec) Validate() error {
	_, err := Expand(s)
	return err
}

// Expand validates spec and produces the exhaustive, duplicate-free unit
// list in deterministic nested order (topology, algorithm, mode, workload,
// scenario, seed — the last dimension varying fastest).
func Expand(spec Spec) ([]Unit, error) {
	spec = spec.withDefaults()
	if err := spec.validShard(); err != nil {
		return nil, err
	}
	topos, err := normalize("topology", spec.Topologies)
	if err != nil {
		return nil, err
	}
	algos, err := normalize("algorithm", spec.Algorithms)
	if err != nil {
		return nil, err
	}
	modes, err := normalize("mode", spec.Modes)
	if err != nil {
		return nil, err
	}
	wlNames, err := normalize("workload", spec.Workloads)
	if err != nil {
		return nil, err
	}
	kinds := make([]workload.Kind, len(wlNames))
	for i, name := range wlNames {
		k, err := workload.ParseKind(name)
		if err != nil {
			return nil, fmt.Errorf("batch: %w", err)
		}
		kinds[i] = k
	}
	scnNames, scnSpecs, err := parseScenarios(spec.Scenarios)
	if err != nil {
		return nil, err
	}
	for _, m := range modes {
		if m != "continuous" && m != "discrete" {
			return nil, fmt.Errorf("batch: unknown mode %q (want continuous or discrete)", m)
		}
	}
	seen := map[int64]bool{}
	for _, s := range spec.Seeds {
		if seen[s] {
			return nil, fmt.Errorf("batch: duplicate seed %d", s)
		}
		seen[s] = true
	}

	units := make([]Unit, 0, len(topos)*len(algos)*len(modes)*len(kinds)*len(scnNames)*len(spec.Seeds))
	for _, topo := range topos {
		for _, alg := range algos {
			for _, mode := range modes {
				for wi, kind := range kinds {
					for si, scn := range scnNames {
						for _, seed := range spec.Seeds {
							units = append(units, Unit{
								Index:        len(units),
								Topology:     topo,
								Algorithm:    alg,
								Mode:         mode,
								Workload:     kind,
								WorkloadName: wlNames[wi],
								Scenario:     scn,
								ScenarioSpec: scnSpecs[si],
								Seed:         seed,
							})
						}
					}
				}
			}
		}
	}
	if len(units) == 0 {
		return nil, fmt.Errorf("batch: empty grid (every dimension needs at least one entry)")
	}
	return units, nil
}

// parseScenarios normalizes and parses the scenario dimension. Entries are
// canonicalized (defaults applied) before the duplicate check, so
// "bursty" and "bursty:16:0.25" cannot silently expand to two copies of
// one process; the static scenario canonicalizes to "" (the legacy
// journal-compatible encoding — see Unit.Scenario).
func parseScenarios(in []string) ([]string, []scenario.Spec, error) {
	raw, err := normalizeCase("scenario", in, false)
	if err != nil {
		return nil, nil, err
	}
	names := make([]string, len(raw))
	specs := make([]scenario.Spec, len(raw))
	seen := map[string]bool{}
	for i, r := range raw {
		sp, err := scenario.Parse(r)
		if err != nil {
			return nil, nil, fmt.Errorf("batch: %w", err)
		}
		canon := sp.String()
		if seen[canon] {
			return nil, nil, fmt.Errorf("batch: duplicate scenario entry %q (canonical form %q)", r, canon)
		}
		seen[canon] = true
		specs[i] = sp
		if !sp.IsStatic() {
			names[i] = canon
		}
	}
	return names, specs, nil
}

// CanonicalScenarios returns the spec's scenario dimension in display
// canonical form ("static" spelled out) — what SameGrid compares and the
// emitters serialize, stable across spellings of the same process.
func (s Spec) CanonicalScenarios() ([]string, error) {
	names, _, err := parseScenarios(s.withDefaults().Scenarios)
	if err != nil {
		return nil, err
	}
	for i, n := range names {
		if n == "" {
			names[i] = "static"
		}
	}
	return names, nil
}

// headerCanonical returns s with an all-static scenario dimension elided —
// the legacy serialization, so journals of scenario-free sweeps (defaulted
// or spelled "static" explicitly) carry headers byte-identical to the
// pre-scenario engine's. Lists the parser rejects pass through untouched;
// expansion reports the real error.
func (s Spec) headerCanonical() Spec {
	if len(s.Scenarios) == 0 {
		return s
	}
	names, _, err := parseScenarios(s.Scenarios)
	if err != nil {
		return s
	}
	for _, n := range names {
		if n != "" {
			return s
		}
	}
	s.Scenarios = nil
	return s
}

// validShard rejects shard fields set inconsistently (bypassing Shard).
func (s Spec) validShard() error {
	switch {
	case s.ShardCount < 0:
		return fmt.Errorf("batch: negative shard count %d", s.ShardCount)
	case s.ShardCount == 0 && s.ShardIndex != 0:
		return fmt.Errorf("batch: shard index %d without a shard count", s.ShardIndex)
	case s.ShardCount > 0 && (s.ShardIndex < 0 || s.ShardIndex >= s.ShardCount):
		return fmt.Errorf("batch: shard index %d out of range [0, %d)", s.ShardIndex, s.ShardCount)
	case s.UnitLo < 0:
		return fmt.Errorf("batch: negative unit range start %d", s.UnitLo)
	case s.UnitHi < 0:
		return fmt.Errorf("batch: negative unit range end %d", s.UnitHi)
	case s.UnitHi > 0 && s.UnitHi <= s.UnitLo:
		return fmt.Errorf("batch: empty unit range [%d, %d)", s.UnitLo, s.UnitHi)
	}
	return nil
}

// UnitCount is the size of the full expansion (every dimension length
// multiplied out), computable without building the units. Orchestrators use
// it to size a shard split before spawning anything.
func (s Spec) UnitCount() int {
	s = s.withDefaults()
	return len(s.Topologies) * len(s.Algorithms) * len(s.Modes) * len(s.Workloads) * len(s.Scenarios) * len(s.Seeds)
}

// OwnedUnitCount is how many of the expansion's units this spec's
// shard-and-window assignment owns (the full count when unsharded and
// unwindowed) — the denominator of a shard's progress display.
func (s Spec) OwnedUnitCount() int {
	total := s.UnitCount()
	lo, hi := s.UnitLo, s.UnitHi
	if hi == 0 || hi > total {
		hi = total
	}
	if lo >= hi {
		return 0
	}
	if s.ShardCount <= 1 {
		return hi - lo
	}
	// Count of idx in [0, x) with idx % m == i.
	upTo := func(x int) int {
		if x <= s.ShardIndex {
			return 0
		}
		return (x-s.ShardIndex-1)/s.ShardCount + 1
	}
	return upTo(hi) - upTo(lo)
}

// ownedUnits filters units down to the receiver's shard and window.
// Unrestricted specs keep the slice as-is.
func (s Spec) ownedUnits(units []Unit) []Unit {
	if s.ShardCount <= 1 && s.UnitLo == 0 && s.UnitHi == 0 {
		return units
	}
	mine := make([]Unit, 0, s.OwnedUnitCount())
	for _, u := range units {
		if s.Owns(u.Index) {
			mine = append(mine, u)
		}
	}
	return mine
}

// normalize lowercases and trims a dimension's entries and rejects empties
// and duplicates, so the expansion is duplicate-free by construction.
func normalize(dim string, in []string) ([]string, error) {
	return normalizeCase(dim, in, true)
}

// normalizeCase is normalize with the lowercasing optional: the scenario
// dimension preserves case because trace:<file> entries carry filesystem
// paths (scenario.Parse lowercases the non-path kinds itself, so the
// canonical-form duplicate check is unaffected).
func normalizeCase(dim string, in []string, lower bool) ([]string, error) {
	if len(in) == 0 {
		return nil, fmt.Errorf("batch: spec has no %s entries", dim)
	}
	out := make([]string, 0, len(in))
	seen := map[string]bool{}
	for _, s := range in {
		s = strings.TrimSpace(s)
		if lower {
			s = strings.ToLower(s)
		}
		if s == "" {
			return nil, fmt.Errorf("batch: empty %s entry", dim)
		}
		if seen[s] {
			return nil, fmt.Errorf("batch: duplicate %s entry %q", dim, s)
		}
		seen[s] = true
		out = append(out, s)
	}
	return out, nil
}
