package orchestrator

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"time"
)

// SlurmLauncher submits attempts to a Slurm queue, one job per attempt —
// the live counterpart of the `-emit-matrix slurm` job-array plan: same
// per-shard lbbench command line, but submitted and polled by the
// supervisor, so stalls and steals work on a cluster too. It assumes the
// cluster shares the plan's output directory (the standard Slurm setup), so
// journals appear in place and FetchJournal is a no-op.
type SlurmLauncher struct {
	// Sbatch/Squeue/Scancel are the control argv prefixes; empty means
	// {"sbatch", "--parsable"}, {"squeue", "-h", "-j"}, {"scancel"}.
	// Tests substitute stubs here.
	Sbatch, Squeue, Scancel []string
	// Remote is the lbbench invocation inside the job; empty means
	// "lbbench".
	Remote string
	// Width caps jobs in flight; <= 0 means unbounded — the queue is the
	// scheduler's problem.
	Width int
	// Poll is the squeue cadence Wait watches the job at; <= 0 means 10s.
	Poll time.Duration
}

func (l *SlurmLauncher) sbatch() []string {
	if len(l.Sbatch) > 0 {
		return l.Sbatch
	}
	return []string{"sbatch", "--parsable"}
}

func (l *SlurmLauncher) squeue() []string {
	if len(l.Squeue) > 0 {
		return l.Squeue
	}
	return []string{"squeue", "-h", "-j"}
}

func (l *SlurmLauncher) scancel() []string {
	if len(l.Scancel) > 0 {
		return l.Scancel
	}
	return []string{"scancel"}
}

func (l *SlurmLauncher) remote() string {
	if l.Remote != "" {
		return l.Remote
	}
	return "lbbench"
}

func (l *SlurmLauncher) poll() time.Duration {
	if l.Poll > 0 {
		return l.Poll
	}
	return 10 * time.Second
}

// Name implements Launcher.
func (l *SlurmLauncher) Name() string { return "slurm" }

// Slots implements Launcher.
func (l *SlurmLauncher) Slots() int { return l.Width }

// slurmHandle is the submitted job, identified by the id sbatch printed.
type slurmHandle struct {
	id  string
	ctx context.Context
}

// Launch implements Launcher: sbatch --wrap with the shard's lbbench
// command, stderr routed to the task's .stderr on the shared filesystem.
func (l *SlurmLauncher) Launch(ctx context.Context, t *Task, args []string) (Handle, error) {
	wrap := l.remote() + " " + shellJoin(args)
	argv := append(append([]string(nil), l.sbatch()...),
		"--job-name", "lb-"+t.Label,
		"--output", "/dev/null",
		"--error", stderrPath(t),
		"--wrap", wrap)
	out, err := exec.CommandContext(ctx, argv[0], argv[1:]...).Output()
	if err != nil {
		return nil, fmt.Errorf("orchestrator: sbatch: %w", err)
	}
	// --parsable prints "jobid" or "jobid;cluster".
	id, _, _ := strings.Cut(strings.TrimSpace(string(out)), ";")
	if id == "" {
		return nil, fmt.Errorf("orchestrator: sbatch printed no job id")
	}
	return &slurmHandle{id: id, ctx: ctx}, nil
}

// Signal implements Launcher: scancel, with -s for anything but a plain
// kill. Slurm delivers the signal inside the job, so the steal path's
// SIGKILL reaches even a stopped step.
func (l *SlurmLauncher) Signal(h Handle, sig os.Signal) error {
	sh := h.(*slurmHandle)
	num, ok := sig.(syscall.Signal)
	if !ok {
		return fmt.Errorf("orchestrator: slurm launcher cannot deliver %v", sig)
	}
	argv := append([]string(nil), l.scancel()...)
	if num != syscall.SIGKILL {
		argv = append(argv, "-s", fmt.Sprint(int(num)))
	}
	argv = append(argv, sh.id)
	if out, err := exec.Command(argv[0], argv[1:]...).CombinedOutput(); err != nil {
		return fmt.Errorf("orchestrator: scancel %s: %v: %s", sh.id, err, out)
	}
	return nil
}

// Wait implements Launcher: poll squeue until the job leaves the queue.
// Slurm does not expose the exit status this way, and it does not need to —
// the supervisor judges every attempt by its journal, so a job that died
// mid-sweep shows up as an incomplete journal and is retried like any other
// death.
func (l *SlurmLauncher) Wait(h Handle) error {
	sh := h.(*slurmHandle)
	tick := time.NewTicker(l.poll())
	defer tick.Stop()
	for {
		select {
		case <-sh.ctx.Done():
			return sh.ctx.Err()
		case <-tick.C:
		}
		argv := append(append([]string(nil), l.squeue()...), sh.id)
		out, err := exec.Command(argv[0], argv[1:]...).Output()
		// squeue errors on unknown (completed, aged-out) jobs on some
		// versions and prints nothing on others; both mean "gone".
		if err != nil || strings.TrimSpace(string(out)) == "" {
			return nil
		}
	}
}

// FetchJournal implements Launcher: the shared filesystem already has the
// journal in place.
func (l *SlurmLauncher) FetchJournal(t *Task) error { return nil }
