package experiments

import (
	"math"
	"math/rand"

	"repro/internal/dynamic"
	"repro/internal/graph"
	"repro/internal/trace"
	"repro/internal/workload"
)

func init() {
	register("E5", E5DynamicContinuous)
	register("E6", E6DynamicDiscrete)
}

// dynScenario names one dynamic-network scenario of §5 and builds it on
// demand: each sweep cell calls build() for its own private Sequence (they
// hold mutable RNG state), so nothing is shared across pool goroutines and
// only the scenarios actually run get constructed.
type dynScenario struct {
	name  string
	build func() dynamic.Sequence
}

// dynamicScenarios lists the graph-sequence sweep of §5: random subgraphs
// of a base topology at several survival probabilities, periodic edge
// failures, and alternating topologies. The constructors are deterministic
// given seed.
func dynamicScenarios(seed int64, quick bool) []dynScenario {
	side := 6
	if quick {
		side = 4
	}
	mk := func(i int) *rand.Rand { return rand.New(rand.NewSource(seed + int64(i))) }
	out := []dynScenario{
		{"static torus", func() dynamic.Sequence { return dynamic.Static{G: graph.Torus(side, side)} }},
		{"subgraph p=0.9", func() dynamic.Sequence {
			return &dynamic.RandomSubgraphs{Base: graph.Torus(side, side), KeepProb: 0.9, RNG: mk(1)}
		}},
		{"subgraph p=0.6", func() dynamic.Sequence {
			return &dynamic.RandomSubgraphs{Base: graph.Torus(side, side), KeepProb: 0.6, RNG: mk(2)}
		}},
		{"fail 8 edges", func() dynamic.Sequence {
			return &dynamic.EdgeFailures{Base: graph.Torus(side, side), FailCount: 8, RNG: mk(3)}
		}},
		{"torus/cycle alt", func() dynamic.Sequence {
			base := graph.Torus(side, side)
			alt, err := dynamic.NewAlternating(graph.Torus(side, side), graph.Cycle(base.N()))
			if err != nil {
				panic(err)
			}
			return alt
		}},
	}
	if quick {
		out = out[:3]
	}
	return out
}

// E5DynamicContinuous validates Theorem 7: the continuous Algorithm 1 on a
// dynamic sequence reaches ε·Φ⁰ within O(ln(1/ε)/A_K) rounds, where
// A_K = avg λ₂⁽ᵏ⁾/δ⁽ᵏ⁾ over the executed rounds. Since the theorem comes
// from the Theorem 4 machinery, the constant is 4.
func E5DynamicContinuous(o Options) *trace.Table {
	t := trace.NewTable("E5 — Theorem 7: continuous diffusion on dynamic networks",
		"sequence", "ε", "rounds K", "A_K", "bound 4·ln(1/ε)/A_K", "K/bound")
	const eps = 1e-4
	maxRounds := 50000
	if o.Quick {
		maxRounds = 5000
	}
	scenarios := dynamicScenarios(o.seed(), o.Quick)
	rows := make([]row, len(scenarios))
	o.sweep(len(rows), func(i int, _ *rand.Rand) {
		sc := scenarios[i]
		seq := sc.build()
		n := seq.N()
		init := workload.Continuous(workload.Spike, n, 1e9, nil)
		phi0 := potentialOf(init)
		res := dynamic.RunContinuous(seq, init, eps*phi0, maxRounds, true)
		bound := math.NaN()
		ratio := math.NaN()
		if res.AK > 0 {
			bound = 4 * math.Log(1/eps) / res.AK
			ratio = float64(res.Rounds()) / bound
		}
		rows[i] = row{sc.name, eps, res.Rounds(), res.AK, bound, ratio}
	})
	emit(t, rows)
	t.Note("Theorem 7 holds when K/bound ≤ 1; disconnected rounds lower A_K and are charged to the bound automatically.")
	return t
}

// E6DynamicDiscrete validates Theorem 8: the discrete Algorithm 1 on a
// dynamic sequence reaches Φ* = 64n·max(δ³/λ₂) within O(ln(Φ⁰/Φ*)/A_K).
func E6DynamicDiscrete(o Options) *trace.Table {
	t := trace.NewTable("E6 — Theorem 8: discrete diffusion on dynamic networks",
		"sequence", "Φ⁰", "Φ*", "rounds K", "A_K", "bound 8·ln(Φ⁰/Φ*)/A_K", "K/bound")
	maxRounds := 50000
	if o.Quick {
		maxRounds = 5000
	}
	scenarios := dynamicScenarios(o.seed()+100, o.Quick)
	rows := make([]row, len(scenarios))
	o.sweep(len(rows), func(i int, _ *rand.Rand) {
		sc := scenarios[i]
		seq := sc.build()
		n := seq.N()
		init := workload.Discrete(workload.Spike, n, 1_000_000_000, nil)
		// Pilot run records spectra so Φ* can be formed, then the main run
		// stops at Φ*. The pilot consumes the first build; the main run gets
		// an identically-seeded fresh build, so both see the same sequence
		// realization. The per-round λ₂/δ distribution is stationary, so a
		// few hundred pilot rounds pin down the max(δ³/λ₂) term.
		pilotRounds := 500
		if maxRounds < pilotRounds {
			pilotRounds = maxRounds
		}
		pilot := dynamic.RunDiscrete(seq, init, 0, pilotRounds, true)
		phiStar := dynamic.Theorem8Threshold(n, pilot.Stats)
		res := dynamic.RunDiscrete(sc.build(), init, phiStar, maxRounds, true)
		bound := math.NaN()
		ratio := math.NaN()
		if res.AK > 0 && res.PhiStart > phiStar {
			bound = 8 * math.Log(res.PhiStart/phiStar) / res.AK
			ratio = float64(res.Rounds()) / bound
		}
		rows[i] = row{sc.name, res.PhiStart, phiStar, res.Rounds(), res.AK, bound, ratio}
	})
	emit(t, rows)
	t.Note("Theorem 8 holds when K/bound ≤ 1. Φ* uses the per-round spectra of a pilot run over the same sequence.")
	return t
}

// potentialOf computes Φ of a float slice without constructing a load.
func potentialOf(v []float64) float64 {
	var mean float64
	for _, x := range v {
		mean += x
	}
	mean /= float64(len(v))
	var s float64
	for _, x := range v {
		d := x - mean
		s += d * d
	}
	return s
}
