package scenario

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
)

// Event is one recorded arrival: Amount units of load landing on Node at
// the end of round Round. Rounds number from 0, exactly like the k the
// round loop passes to Instance.Arrivals, so an event recorded while
// committing round k+1 of a live session replays at the same point of a
// grid run.
//
// The wire form is one JSON object per line (JSONL), no header:
//
//	{"k":0,"node":5,"amt":12500}
//	{"k":0,"node":9,"amt":3.5}
//	{"k":4,"node":0,"amt":800}
//
// Events are ordered by round; amounts are absolute load units (discrete
// runs round them to whole tokens at injection, like every arrival).
// TraceWriter emits the canonical encoding — json.Marshal of this struct —
// so read → rewrite round-trips byte-identically, which is what lets CI
// cmp a re-recorded trace against the committed one.
type Event struct {
	Round  int     `json:"k"`
	Node   int     `json:"node"`
	Amount float64 `json:"amt"`
}

// check rejects events no run could have produced.
func (e Event) check() error {
	if e.Round < 0 {
		return fmt.Errorf("round %d must be ≥ 0", e.Round)
	}
	if e.Node < 0 {
		return fmt.Errorf("node %d must be ≥ 0", e.Node)
	}
	if !(e.Amount > 0) || math.IsInf(e.Amount, 0) {
		return fmt.Errorf("amount %v must be positive and finite", e.Amount)
	}
	return nil
}

// ReadTraceFile loads a JSONL arrival trace from disk.
func ReadTraceFile(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	events, err := ReadTrace(f)
	if err != nil {
		return nil, fmt.Errorf("trace %s: %w", path, err)
	}
	return events, nil
}

// ReadTrace parses a JSONL arrival-event stream, validating each event and
// the round ordering. Blank lines are skipped; anything else malformed is
// an error with its line number — a truncated or hand-edited trace should
// fail loudly, not replay a silently different workload.
func ReadTrace(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var events []Event
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(raw, &e); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		if err := e.check(); err != nil {
			return nil, fmt.Errorf("line %d: %v", line, err)
		}
		if len(events) > 0 && e.Round < events[len(events)-1].Round {
			return nil, fmt.Errorf("line %d: round %d after round %d (events must be in round order)", line, e.Round, events[len(events)-1].Round)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return events, nil
}

// TraceWriter streams arrival events as canonical JSONL, enforcing the
// same validity and round ordering ReadTrace demands — whatever it writes
// is a valid trace:<file> scenario. Not safe for concurrent use.
type TraceWriter struct {
	w     *bufio.Writer
	c     io.Closer
	last  int
	count int
}

// NewTraceWriter writes events to w; the caller owns w's lifecycle (Flush
// before discarding the writer).
func NewTraceWriter(w io.Writer) *TraceWriter {
	return &TraceWriter{w: bufio.NewWriter(w), last: -1}
}

// CreateTrace creates (or truncates) path and returns a writer that owns
// the file: Close flushes and closes it.
func CreateTrace(path string) (*TraceWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	tw := NewTraceWriter(f)
	tw.c = f
	return tw, nil
}

// Append records one event.
func (tw *TraceWriter) Append(e Event) error {
	if err := e.check(); err != nil {
		return fmt.Errorf("trace: %v", err)
	}
	if e.Round < tw.last {
		return fmt.Errorf("trace: event round %d after round %d (rounds must not decrease)", e.Round, tw.last)
	}
	b, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if _, err := tw.w.Write(b); err != nil {
		return err
	}
	if err := tw.w.WriteByte('\n'); err != nil {
		return err
	}
	tw.last = e.Round
	tw.count++
	return nil
}

// Count returns the number of events written.
func (tw *TraceWriter) Count() int { return tw.count }

// Flush pushes buffered events to the underlying writer.
func (tw *TraceWriter) Flush() error { return tw.w.Flush() }

// Close flushes and, when the writer owns its file (CreateTrace), closes
// it.
func (tw *TraceWriter) Close() error {
	if err := tw.w.Flush(); err != nil {
		if tw.c != nil {
			tw.c.Close()
		}
		return err
	}
	if tw.c != nil {
		return tw.c.Close()
	}
	return nil
}
