package topoparse

import (
	"strings"
	"testing"
)

func TestBuildAllNames(t *testing.T) {
	for _, name := range Names() {
		g, err := Build(name, 24, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.N() < 10 { // petersen is the smallest fixed family
			t.Fatalf("%s: suspiciously small n=%d", name, g.N())
		}
		if !g.IsConnected() {
			t.Fatalf("%s: disconnected", name)
		}
	}
}

func TestBuildRoundsUp(t *testing.T) {
	g, err := Build("hypercube", 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 32 {
		t.Fatalf("hypercube(20) rounded to n=%d, want 32", g.N())
	}
	g, err = Build("torus", 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 16 {
		t.Fatalf("torus(10) rounded to n=%d, want 16", g.N())
	}
}

func TestBuildAliases(t *testing.T) {
	for _, pair := range [][2]string{{"ring", "cycle"}, {"mesh", "grid"}, {"clique", "complete"}, {"line", "path"}} {
		a, err := Build(pair[0], 16, 1)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Build(pair[1], 16, 1)
		if err != nil {
			t.Fatal(err)
		}
		if a.N() != b.N() || a.M() != b.M() {
			t.Fatalf("alias %s != %s", pair[0], pair[1])
		}
	}
}

func TestBuildCaseInsensitive(t *testing.T) {
	if _, err := Build("  TORUS ", 16, 1); err != nil {
		t.Fatal(err)
	}
}

func TestBuildErrors(t *testing.T) {
	cases := []struct {
		name string
		n    int
	}{
		{"nope", 10},
		{"cycle", 2},
		{"star", 1},
		{"path", 0},
		{"random-regular", 3},
		{"barbell", 3},
		{"lollipop", 2},
	}
	for _, c := range cases {
		if _, err := Build(c.name, c.n, 1); err == nil {
			t.Fatalf("Build(%q, %d): expected error", c.name, c.n)
		}
	}
}

func TestBuildRandomRegularDeterministic(t *testing.T) {
	a, err := Build("random-regular", 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build("random-regular", 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.M() != b.M() {
		t.Fatal("same seed must reproduce the same graph")
	}
	for _, e := range a.Edges() {
		if !b.HasEdge(e.U, e.V) {
			t.Fatal("same seed must reproduce the same edges")
		}
	}
}

func TestErrorMentionsAcceptedNames(t *testing.T) {
	_, err := Build("bogus", 10, 1)
	if err == nil || !strings.Contains(err.Error(), "torus") {
		t.Fatalf("error should list accepted names: %v", err)
	}
}

// TestDescriptionsCoverEveryName: the -list surface must describe every
// accepted topology, under exactly its canonical name — adding a family to
// Names/Build without a Descriptions row fails here, not by silently
// vanishing from lbbench -list.
func TestDescriptionsCoverEveryName(t *testing.T) {
	desc := map[string]bool{}
	for _, d := range Descriptions() {
		desc[d[0]] = true
	}
	for _, name := range Names() {
		if !desc[name] {
			t.Errorf("no description for topology %q", name)
		}
	}
	if len(Descriptions()) != len(Names()) {
		t.Errorf("%d descriptions for %d names", len(Descriptions()), len(Names()))
	}
}
