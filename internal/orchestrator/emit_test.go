package orchestrator

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

func TestEmitGitHubMatrix(t *testing.T) {
	p, err := NewPlan(testSpec(), 3, "out")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.EmitGitHub(&buf); err != nil {
		t.Fatal(err)
	}
	// Single line, so a setup job can pipe it into $GITHUB_OUTPUT verbatim.
	if got := strings.Count(buf.String(), "\n"); got != 1 {
		t.Fatalf("emitted %d newlines, want exactly 1:\n%s", got, buf.String())
	}
	var m struct {
		Include []struct {
			Index   int    `json:"index"`
			Count   int    `json:"count"`
			Shard   string `json:"shard"`
			Journal string `json:"journal"`
			Units   int    `json:"units"`
			Args    string `json:"args"`
		} `json:"include"`
	}
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("matrix is not JSON: %v", err)
	}
	if len(m.Include) != 3 {
		t.Fatalf("%d matrix entries, want 3", len(m.Include))
	}
	for i, e := range m.Include {
		if e.Index != i || e.Count != 3 || e.Shard != fmt.Sprintf("%d/3", i) {
			t.Fatalf("entry %d mislabeled: %+v", i, e)
		}
		if !strings.Contains(e.Args, "-shard "+e.Shard) || !strings.Contains(e.Args, "-out "+e.Journal) {
			t.Fatalf("entry %d args incomplete: %q", i, e.Args)
		}
		if !strings.HasPrefix(e.Args, "-grid ") {
			t.Fatalf("entry %d args missing -grid: %q", i, e.Args)
		}
	}
}

func TestEmitSlurmArray(t *testing.T) {
	p, err := NewPlan(testSpec(), 4, "sweep")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.EmitSlurm(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{
		"#SBATCH --array=0-3",
		`-shard "$i/4"`,
		`sweep/shard-$i.jsonl`,
		"-merge sweep/shard-0.jsonl,sweep/shard-1.jsonl,sweep/shard-2.jsonl,sweep/shard-3.jsonl",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("slurm script missing %q:\n%s", want, s)
		}
	}
}

func TestEmitShellFanout(t *testing.T) {
	p, err := NewPlan(testSpec(), 2, "sweep")
	if err != nil {
		t.Fatal(err)
	}
	p.Format = "csv"
	var buf bytes.Buffer
	if err := p.EmitShell(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{
		"#!/bin/sh",
		`-shard 0/2 -out sweep/shard-0.jsonl >/dev/null & pid0=$!`,
		`-shard 1/2 -out sweep/shard-1.jsonl >/dev/null & pid1=$!`,
		`wait "$pid0"`,
		"-resume sweep/shard-0.jsonl", // failure hint resumes, not restarts
		// The merge step carries the render format, so the script's output
		// matches what the local orchestrator would print.
		"-format csv -merge sweep/shard-0.jsonl,sweep/shard-1.jsonl",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("shell script missing %q:\n%s", want, s)
		}
	}
}

func TestEmitUnknownFormat(t *testing.T) {
	p, err := NewPlan(testSpec(), 2, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Emit("nomad", &bytes.Buffer{}); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestShellQuote(t *testing.T) {
	cases := map[string]string{
		"plain":        "plain",
		"a,b,c":        "a,b,c",
		"has space":    "'has space'",
		"d'quote":      `'d'\''quote'`,
		"$HOME/sweeps": "'$HOME/sweeps'",
	}
	for in, want := range cases {
		if got := shellQuote(in); got != want {
			t.Fatalf("shellQuote(%q) = %q, want %q", in, got, want)
		}
	}
}
