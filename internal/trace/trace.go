// Package trace records experiment series and renders them as aligned text
// tables or CSV. The experiment harness (cmd/lbbench) uses it to print the
// "rows the paper reports" — one Table per experiment, one Row per
// parameter combination.
package trace

import (
	"fmt"
	"io"
	"strings"
)

// Table is a named grid of rows with a fixed header.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// NewTable creates a table with the given title and column names.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row; cells beyond the header width are rejected.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.Header) {
		panic(fmt.Sprintf("trace: row has %d cells, header has %d", len(cells), len(t.Header)))
	}
	row := make([]string, len(t.Header))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// AddRowf appends a row of formatted values; each value is rendered with
// %v, floats with %.4g.
func (t *Table) AddRowf(values ...interface{}) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			cells[i] = fmt.Sprintf("%.4g", x)
		case float32:
			cells[i] = fmt.Sprintf("%.4g", x)
		default:
			cells[i] = fmt.Sprintf("%v", x)
		}
	}
	t.AddRow(cells...)
}

// Note attaches a free-text footnote printed under the table.
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderCSV writes the table as RFC-4180-ish CSV (quote cells containing
// commas or quotes).
func (t *Table) RenderCSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Series is a named sequence of (x, y) points, e.g. a potential trace.
type Series struct {
	Name string
	X, Y []float64
}

// Append adds a point.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// RenderSeries writes one or more series as a wide CSV with a shared x
// column (rows are truncated to the shortest series).
func RenderSeries(w io.Writer, series ...*Series) error {
	if len(series) == 0 {
		return nil
	}
	minLen := series[0].Len()
	for _, s := range series[1:] {
		if s.Len() < minLen {
			minLen = s.Len()
		}
	}
	var b strings.Builder
	b.WriteString("x")
	for _, s := range series {
		b.WriteByte(',')
		b.WriteString(s.Name)
	}
	b.WriteByte('\n')
	for i := 0; i < minLen; i++ {
		fmt.Fprintf(&b, "%g", series[0].X[i])
		for _, s := range series {
			fmt.Fprintf(&b, ",%g", s.Y[i])
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}
