package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Fatalf("summary: %+v", s)
	}
	if math.Abs(s.Variance-32.0/7) > 1e-12 {
		t.Fatalf("variance %v", s.Variance)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max: %+v", s)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || !math.IsInf(s.Min, 1) || !math.IsInf(s.Max, -1) {
		t.Fatalf("empty summary: %+v", s)
	}
	if s.StderrMean() != 0 {
		t.Fatal("empty stderr")
	}
}

func TestSummarizeSingleton(t *testing.T) {
	s := Summarize([]float64{3})
	if s.Mean != 3 || s.Variance != 0 {
		t.Fatalf("singleton: %+v", s)
	}
}

func TestCI95Contains(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	lo, hi := s.CI95()
	if lo > s.Mean || hi < s.Mean {
		t.Fatalf("CI [%v, %v] excludes mean %v", lo, hi, s.Mean)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 4 {
		t.Fatal("extremes wrong")
	}
	if got := Median(xs); got != 2.5 {
		t.Fatalf("median %v", got)
	}
	if got := Quantile([]float64{5}, 0.7); got != 5 {
		t.Fatalf("singleton quantile %v", got)
	}
}

func TestQuantilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Quantile(nil, 0.5)
}

func TestQuantileRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Quantile([]float64{1}, 1.5)
}

func TestLinearFitExact(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{1, 3, 5, 7} // y = 1 + 2x
	a, b, r2 := LinearFit(x, y)
	if math.Abs(a-1) > 1e-12 || math.Abs(b-2) > 1e-12 {
		t.Fatalf("fit a=%v b=%v", a, b)
	}
	if math.Abs(r2-1) > 1e-12 {
		t.Fatalf("R² = %v", r2)
	}
}

func TestLinearFitConstantX(t *testing.T) {
	a, b, r2 := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3})
	if b != 0 || a != 2 || r2 != 0 {
		t.Fatalf("degenerate fit a=%v b=%v r2=%v", a, b, r2)
	}
}

func TestLinearFitConstantY(t *testing.T) {
	_, b, r2 := LinearFit([]float64{1, 2, 3}, []float64{5, 5, 5})
	if b != 0 || r2 != 1 {
		t.Fatalf("flat fit b=%v r2=%v", b, r2)
	}
}

func TestGeometricDecayRateExact(t *testing.T) {
	series := []float64{100, 50, 25, 12.5}
	if got := GeometricDecayRate(series); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("rate %v, want 0.5", got)
	}
}

func TestGeometricDecayRateStopsAtZero(t *testing.T) {
	series := []float64{100, 10, 0, 5}
	got := GeometricDecayRate(series)
	if math.Abs(got-0.1) > 1e-9 {
		t.Fatalf("rate %v, want 0.1 (prefix only)", got)
	}
}

func TestGeometricDecayRateDegenerate(t *testing.T) {
	if GeometricDecayRate([]float64{5}) != 1 {
		t.Fatal("single point must yield 1")
	}
	if GeometricDecayRate(nil) != 1 {
		t.Fatal("empty must yield 1")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 10 {
		t.Fatalf("histogram total %d", total)
	}
	if h.Counts[0] != 2 || h.Counts[4] != 2 {
		t.Fatalf("bins %v", h.Counts)
	}
}

func TestHistogramConstantSample(t *testing.T) {
	h := NewHistogram([]float64{3, 3, 3}, 4)
	if h.Counts[0] != 3 {
		t.Fatalf("constant sample bins %v", h.Counts)
	}
	if h.Mode() != 0 {
		t.Fatal("mode must be bin 0")
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(nil, 3)
	for _, c := range h.Counts {
		if c != 0 {
			t.Fatal("empty histogram must be all-zero")
		}
	}
}

// Property: mean is within [min, max] and variance nonnegative.
func TestSummaryInvariantsProperty(t *testing.T) {
	f := func(seed uint8) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		n := 1 + r.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 10
		}
		s := Summarize(xs)
		return s.Mean >= s.Min-1e-12 && s.Mean <= s.Max+1e-12 && s.Variance >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantiles are monotone in q.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(seed uint8) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		n := 1 + r.Intn(30)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64() * 100
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
