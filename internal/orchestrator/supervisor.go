package orchestrator

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"
	"syscall"
	"time"

	"repro/internal/batch"
)

// Supervisor executes a Plan locally: one subprocess per shard, all sharing
// the inherited environment (point LB_SPECCACHE_DIR at a directory first
// and the children share eigensolves), supervised until every shard's
// journal is complete. A shard that dies — crash, OOM kill, SIGKILL — is
// restarted with -resume against its own journal, up to MaxRetries times,
// with every restart reported loudly; the journals make restarts cheap
// (only the dead shard's missing units re-run). While shards run, the
// supervisor tails their journals and renders shard-aware progress to Log.
type Supervisor struct {
	Plan *Plan
	// Command is the argv prefix spawning one shard when the shard's flags
	// are appended — typically the lbbench binary. Required.
	Command []string
	// MaxRetries caps how many times one shard is restarted after dying: 0
	// means never restart (fail fast on the first death), negative selects
	// the default of 3. The cap is per shard: one flaky shard cannot
	// consume the whole budget of a healthy sweep. The CLIs pass their
	// -retries flag (default 3) through verbatim, so -retries 0 really
	// disables restarts.
	MaxRetries int
	// Log receives progress lines and supervision events (default
	// os.Stderr). Child stderr goes to per-shard files under Plan.Dir, so
	// Log stays readable.
	Log io.Writer
	// Interval is the journal poll period (default 1s).
	Interval time.Duration
	// StallAfter is how long a running shard's journal may sit unchanged
	// before a stall warning (default 60s). Warnings are per stall episode,
	// not per poll.
	StallAfter time.Duration
}

// Run spawns, supervises and waits for every shard. It returns nil when all
// shards exited successfully (their journals are then complete and ready to
// merge), the context error when cancelled (children are interrupted
// gracefully so their journals stay resumable — re-running the same spawn
// resumes them), and otherwise an error naming every shard that exhausted
// its retries.
func (s *Supervisor) Run(ctx context.Context) error {
	if len(s.Command) == 0 {
		return fmt.Errorf("orchestrator: no command to spawn shards with")
	}
	log := s.Log
	if log == nil {
		log = os.Stderr
	}
	interval := s.Interval
	if interval <= 0 {
		interval = time.Second
	}
	stallAfter := s.StallAfter
	if stallAfter <= 0 {
		stallAfter = 60 * time.Second
	}
	retries := s.MaxRetries
	if retries < 0 {
		retries = 3
	}
	if s.Plan.Dir != "" {
		if err := os.MkdirAll(s.Plan.Dir, 0o755); err != nil {
			return fmt.Errorf("orchestrator: %w", err)
		}
	}

	tr := newTracker(s.Plan, time.Now())
	// One incremental tailer per shard journal: each poll reads only the
	// bytes appended since the last one, so the progress loop stays O(new
	// cells) per tick no matter how large the journals grow.
	tailers := make([]*batch.JournalTailer, len(s.Plan.Shards))
	for i, sh := range s.Plan.Shards {
		tailers[i] = batch.NewJournalTailer(sh.Journal)
	}
	var mu sync.Mutex // guards tr, tailers and log
	logf := func(format string, args ...any) {
		fmt.Fprintf(log, "orchestrator: "+format+"\n", args...)
	}

	fmt.Fprintf(log, "orchestrator: %d shards x %d units, journals under %s\n",
		len(s.Plan.Shards), s.Plan.TotalUnits(), s.Plan.Dir)

	errs := make([]error, len(s.Plan.Shards))
	var wg sync.WaitGroup
	for i := range s.Plan.Shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = s.runShard(ctx, i, retries, &mu, tr, logf)
		}(i)
	}

	// The progress loop owns the display: every tick it rescans each shard
	// journal (cheap — one sequential read, no cells retained), folds the
	// counts, and prints one line. It also fires the stall detector.
	pollCtx, stopPoll := context.WithCancel(ctx)
	loopDone := make(chan struct{})
	go func() {
		defer close(loopDone)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		last := ""
		for {
			select {
			case <-pollCtx.Done():
				return
			case <-ticker.C:
			}
			mu.Lock()
			now := time.Now()
			for j := range s.Plan.Shards {
				if p, err := tailers[j].Scan(); err == nil {
					tr.observe(j, p, now)
				}
			}
			for _, j := range tr.stalled(now, stallAfter) {
				logf("shard %d/%d looks stalled: journal %s unchanged for %s",
					s.Plan.Shards[j].Index, s.Plan.Shards[j].Count, s.Plan.Shards[j].Journal, stallAfter)
			}
			if line := tr.render(now); line != last {
				last = line
				fmt.Fprintf(log, "orchestrator: %s\n", line)
			}
			mu.Unlock()
		}
	}()

	wg.Wait()
	stopPoll()
	<-loopDone
	err := errors.Join(errs...)

	// Final scan + line so the last render reflects the finished journals
	// even when the ticker never fired between the last cell and exit.
	mu.Lock()
	now := time.Now()
	for j := range s.Plan.Shards {
		if p, scanErr := tailers[j].Scan(); scanErr == nil {
			tr.observe(j, p, now)
		}
	}
	fmt.Fprintf(log, "orchestrator: %s\n", tr.render(now))
	mu.Unlock()

	if ctx.Err() != nil {
		logf("interrupted — journals are resumable; re-run the same spawn to resume")
		return ctx.Err()
	}
	return err
}

// RunAndReport is the whole local pipeline behind `lbbench -spawn` and
// `lborch`: supervise the plan's shards, then — when every journal is in —
// merge and render the final report (the plan's Format) to stdout. The
// return value is a process exit code, the same contract both CLIs
// document: 0 success; 1 failed shards or failed units (the figure has
// holes); 2 merge/render failure; 3 interrupted, with every journal left
// resumable by re-running the same command.
func (s *Supervisor) RunAndReport(ctx context.Context, streamAgg bool, stdout io.Writer) int {
	log := s.Log
	if log == nil {
		log = os.Stderr
	}
	if err := s.Run(ctx); err != nil {
		if ctx.Err() != nil {
			return 3
		}
		fmt.Fprintf(log, "orchestrator: %v\n", err)
		return 1
	}
	format := s.Plan.Format
	if format == "" {
		format = "table"
	}
	// A fresh context: the signal context may fire during the (local,
	// cheap) gap re-run without invalidating the already-supervised work.
	failed, err := s.Plan.MergeReport(context.Background(), format, streamAgg, stdout, log)
	if err != nil {
		fmt.Fprintf(log, "orchestrator: %v\n", err)
		return 2
	}
	if failed > 0 {
		fmt.Fprintf(log, "orchestrator: %d unit(s) failed — the figure has holes\n", failed)
		return 1
	}
	return 0
}

// runShard runs one shard to completion, restarting it against its own
// journal when it dies. The first attempt resumes too when the journal
// already exists (the orchestrator itself was killed and re-run).
func (s *Supervisor) runShard(ctx context.Context, i, retries int, mu *sync.Mutex, tr *tracker, logf func(string, ...any)) error {
	sh := s.Plan.Shards[i]
	for attempt := 0; ; attempt++ {
		if ctx.Err() != nil {
			mu.Lock()
			tr.setPhase(i, phaseFailed)
			mu.Unlock()
			return ctx.Err()
		}
		resume := journalExists(sh.Journal)
		args := append(s.Command[1:len(s.Command):len(s.Command)], s.Plan.ShardArgs(i, resume)...)
		err := s.spawnOnce(ctx, sh, args)
		if err == nil {
			mu.Lock()
			tr.setPhase(i, phaseDone)
			mu.Unlock()
			return nil
		}
		if ctx.Err() != nil {
			mu.Lock()
			tr.setPhase(i, phaseFailed)
			logf("shard %d/%d interrupted", sh.Index, sh.Count)
			mu.Unlock()
			return ctx.Err()
		}
		p, _ := batch.ScanJournalProgressFile(sh.Journal)
		// A non-zero exit with a COMPLETE journal is not a crash: the child
		// ran every unit and some failed (lbbench exits 1 for a figure with
		// holes). Restarting would re-run the same deterministic failures;
		// instead hand the journal to the merge, which reports the failed
		// units exactly as a single-process sweep would.
		if p.Done() {
			mu.Lock()
			tr.setPhase(i, phaseDone)
			logf("shard %d/%d exited non-zero (%v) but its journal is complete (%d unit(s) failed) — not restarting; the merge will report them",
				sh.Index, sh.Count, err, p.Failed)
			mu.Unlock()
			return nil
		}
		if attempt >= retries {
			mu.Lock()
			tr.setPhase(i, phaseFailed)
			logf("shard %d/%d FAILED permanently after %d restart(s): %v — journal %s holds %d/%d units; see %s",
				sh.Index, sh.Count, attempt, err, sh.Journal, p.Cells, sh.Units, s.stderrPath(sh))
			mu.Unlock()
			return fmt.Errorf("orchestrator: shard %d/%d failed after %d restart(s): %w", sh.Index, sh.Count, attempt, err)
		}
		mu.Lock()
		tr.addRestart(i)
		logf("shard %d/%d died (%v) with %d/%d units journaled — restarting with -resume (attempt %d/%d)",
			sh.Index, sh.Count, err, p.Cells, sh.Units, attempt+1, retries)
		mu.Unlock()
	}
}

// spawnOnce runs one shard attempt: stdout is discarded (the shard's report
// is meaningless mid-sweep; the merge renders the real one), stderr appends
// to the shard's log file under Dir. Cancellation interrupts the child with
// SIGINT — the graceful path that journals the cancellation and fsyncs —
// and escalates to SIGKILL only if the child ignores it past WaitDelay.
func (s *Supervisor) spawnOnce(ctx context.Context, sh Shard, args []string) error {
	cmd := exec.CommandContext(ctx, s.Command[0], args...)
	// nil stdout/devnull, file stderr: no pipes, so Wait returns the moment
	// the child is reaped instead of lingering on descriptors a grandchild
	// might hold.
	cmd.Stdout = nil
	cmd.Cancel = func() error { return cmd.Process.Signal(syscall.SIGINT) }
	cmd.WaitDelay = 30 * time.Second
	stderr, err := os.OpenFile(s.stderrPath(sh), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("orchestrator: %w", err)
	}
	defer stderr.Close()
	cmd.Stderr = stderr
	return cmd.Run()
}

// stderrPath is where shard sh's stderr accumulates across attempts.
func (s *Supervisor) stderrPath(sh Shard) string {
	return sh.Journal + ".stderr"
}

func journalExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}
