// Command lbsim runs one load-balancing instance and prints its trajectory.
//
// Usage:
//
//	lbsim -topo torus -n 64 -alg diffusion -mode continuous \
//	      -workload spike -total 1e6 -eps 1e-4 -seed 1
//
// Topologies: path, cycle, torus (square), hypercube (n rounded to 2^d),
// debruijn, complete, star, tree, random-regular, petersen.
// Algorithms: diffusion (Algorithm 1), dimexchange ([12]), randpair
// (Algorithm 2), firstorder ([3]), secondorder ([15]).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/core"
	"repro/internal/topoparse"
	"repro/internal/workload"
)

func main() {
	var (
		topo    = flag.String("topo", "torus", "topology family")
		n       = flag.Int("n", 64, "approximate node count")
		algName = flag.String("alg", "diffusion", "algorithm: diffusion|dimexchange|randpair|firstorder|secondorder|roundrobin")
		mode    = flag.String("mode", "continuous", "continuous|discrete")
		wl      = flag.String("workload", "spike", "spike|uniform|bimodal|exponential|powerlaw|ramp|flat")
		total   = flag.Float64("total", 1e6, "total load")
		eps     = flag.Float64("eps", 1e-4, "stop when Φ ≤ ε·Φ⁰ (or the discrete threshold)")
		seed    = flag.Int64("seed", 1, "random seed")
		workers = flag.Int("workers", 1, "parallel round executor workers (diffusion)")
		every   = flag.Int("every", 0, "print Φ every k rounds (0: summary only)")
	)
	flag.Parse()

	g, err := topoparse.Build(*topo, *n, *seed)
	if err != nil {
		fatal(err)
	}
	kind, err := parseWorkload(*wl)
	if err != nil {
		fatal(err)
	}
	alg, err := core.ParseAlgorithm(*algName)
	if err != nil {
		fatal(err)
	}
	m := core.Continuous
	if *mode == "discrete" {
		m = core.Discrete
	} else if *mode != "continuous" {
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}

	rng := rand.New(rand.NewSource(*seed))
	loads := workload.Continuous(kind, g.N(), *total, rng)
	if kind == workload.Spike {
		loads = core.SpikeLoads(g.N(), *total)
	}

	res, err := core.Balance(core.Config{
		Graph:     g,
		Algorithm: alg,
		Mode:      m,
		Loads:     loads,
		Epsilon:   *eps,
		Seed:      *seed,
		Workers:   *workers,
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("topology   : %s\n", g)
	fmt.Printf("algorithm  : %s (%s)\n", res.Algorithm, res.Mode)
	fmt.Printf("workload   : %s, total %.4g\n", kind, *total)
	if res.Lambda2 > 0 {
		fmt.Printf("spectra    : λ₂ = %.6g, δ = %d\n", res.Lambda2, res.Delta)
	}
	fmt.Printf("Φ          : %.6g → %.6g (ε target %.4g)\n", res.PhiStart, res.PhiEnd, *eps)
	fmt.Printf("rounds     : %d (converged: %v)\n", res.Rounds, res.Converged)
	if res.Bound > 0 {
		fmt.Printf("paper bound: %.1f rounds (%s) — measured/bound = %.3f\n",
			res.Bound, res.BoundName, float64(res.Rounds)/res.Bound)
	}
	if *every > 0 {
		fmt.Println("\nround,phi")
		for t, phi := range res.Trace {
			if t%*every == 0 || t == len(res.Trace)-1 {
				fmt.Printf("%d,%.6g\n", t, phi)
			}
		}
	}
}

func parseWorkload(s string) (workload.Kind, error) {
	for _, k := range workload.AllKinds() {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown workload %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lbsim:", err)
	os.Exit(1)
}
