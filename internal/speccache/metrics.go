package speccache

import (
	"repro/internal/obs"
	"repro/internal/spectral"
)

// The shared process-wide cache — and only it — is exposed on the metrics
// registry. Per-run caches (a Session's churned-subgraph spectra) are
// transient by design and would leak series if each registered itself; their
// traffic is invisible to /metrics/prom, exactly like it is invisible to
// the disk spill.
func init() {
	reg := obs.Default()
	promName := map[quantity]string{
		qLambda2:    "lambda2",
		qGamma:      "gamma",
		qPaperGamma: "paper_gamma",
		qPaperGap:   "paper_gap",
		qFlow:       "optflow",
	}
	for q := quantity(0); q < numQuantities; q++ {
		q := q
		l := obs.L("quantity", promName[q])
		reg.CounterFunc("speccache_lookups_total",
			"Spectral cache lookups against the shared cache.",
			func() float64 { return float64(shared.lookups[q].Load()) }, l)
		reg.CounterFunc("speccache_computes_total",
			"Cache misses that ran a fresh solve.",
			func() float64 { return float64(shared.computes[q].Load()) }, l)
		reg.CounterFunc("speccache_disk_hits_total",
			"Cache misses served from the cross-process disk spill.",
			func() float64 { return float64(shared.diskHits[q].Load()) }, l)
	}
	solvePath := func(get func(spectral.SolveCounts) uint64) func() float64 {
		return func() float64 { return float64(get(spectral.SolveStats())) }
	}
	for _, p := range []struct {
		name string
		get  func(spectral.SolveCounts) uint64
	}{
		{"closed-form", func(s spectral.SolveCounts) uint64 { return s.ClosedForm }},
		{"dense", func(s spectral.SolveCounts) uint64 { return s.Dense }},
		{"lanczos", func(s spectral.SolveCounts) uint64 { return s.Lanczos }},
		{"invpower", func(s spectral.SolveCounts) uint64 { return s.InversePower }},
	} {
		reg.CounterFunc("spectral_solves_total",
			"Eigensolves by solver path, process-wide.",
			solvePath(p.get), obs.L("path", p.name))
	}
}
