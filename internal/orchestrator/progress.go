package orchestrator

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/batch"
)

// taskPhase is a task's lifecycle as the progress display sees it.
type taskPhase int

const (
	phaseRunning taskPhase = iota
	phaseDone
	phaseFailed
	phaseStolen // killed as a straggler; its remaining units reassigned
)

// trackedTask is the tracker's view of one task: the latest journal scan
// plus when it last moved.
type trackedTask struct {
	label      string
	units      int
	progress   batch.JournalProgress
	phase      taskPhase
	restarts   int
	carved     int // sub-shards stolen out of this task
	lastChange time.Time
	stallSeen  bool // a stall warning was already printed for this episode
}

// tracker folds periodic journal scans into task-aware progress: units
// done/total per task, an overall ETA from the observed completion rate
// (the streaming fold over everything journaled so far), and stall
// detection for tasks whose journals stop growing while their process is
// supposedly alive. The task list is dynamic — every steal appends the
// stolen sub-shards — but the denominator is the plan's fixed unit total,
// so the global percentage never moves backwards when work is reassigned.
// It is the supervisor's bookkeeping, split out pure so the
// torn-tail/stall/ETA/steal arithmetic is testable without spawning
// anything.
type tracker struct {
	total  int
	start  time.Time
	tasks  []trackedTask
	steals int
}

func newTracker(totalUnits int, now time.Time) *tracker {
	return &tracker{total: totalUnits, start: now}
}

// add registers a task (a planned shard at startup, a stolen sub-shard at
// steal time) and returns its tracker index.
func (t *tracker) add(label string, units int, now time.Time) int {
	t.tasks = append(t.tasks, trackedTask{label: label, units: units, lastChange: now})
	return len(t.tasks) - 1
}

// observe folds task i's latest journal scan. Progress is measured in
// complete cells; a torn tail or a header landing also counts as movement
// (the task is alive and writing, just mid-line).
func (t *tracker) observe(i int, p batch.JournalProgress, now time.Time) {
	s := &t.tasks[i]
	moved := p.Cells != s.progress.Cells ||
		len(p.Specs) != len(s.progress.Specs) ||
		p.Torn != s.progress.Torn
	s.progress = p
	if moved {
		s.lastChange = now
		s.stallSeen = false
	}
}

// setPhase records a lifecycle transition (process exited, restarted,
// exhausted its retries).
func (t *tracker) setPhase(i int, ph taskPhase) { t.tasks[i].phase = ph }

func (t *tracker) addRestart(i int) { t.tasks[i].restarts++ }

// markStolen retires task i as a steal victim: whatever it journaled stays
// counted, its denominator shrinks to exactly that (the rest now belongs to
// the stolen sub-shards), and the global steal counter ticks.
func (t *tracker) markStolen(i int) {
	s := &t.tasks[i]
	s.phase = phaseStolen
	s.units = s.progress.Cells
	t.steals++
}

// recordCarve notes that k sub-shards were minted out of task i — the
// per-task cumulative steal count the final summary reports.
func (t *tracker) recordCarve(i, k int) { t.tasks[i].carved += k }

// idleFor is how long task i's journal has sat unchanged — the steal
// trigger's input.
func (t *tracker) idleFor(i int, now time.Time) time.Duration {
	return now.Sub(t.tasks[i].lastChange)
}

// touch rearms task i's idle clock without claiming progress — used when a
// steal attempt could not kill the victim, so the next poll does not
// immediately retry.
func (t *tracker) touch(i int, now time.Time) { t.tasks[i].lastChange = now }

// checkStall reports whether task i just crossed the stall threshold — the
// never-writes / wedged-child signal. Each stall episode is reported once;
// new movement rearms it.
func (t *tracker) checkStall(i int, now time.Time, threshold time.Duration) bool {
	s := &t.tasks[i]
	if !s.stallSeen && now.Sub(s.lastChange) >= threshold {
		s.stallSeen = true
		return true
	}
	return false
}

// done counts cells journaled across all tasks. Steal windows are disjoint
// (a thief starts past the last cell its victim journaled), so the sum
// never double-counts a unit.
func (t *tracker) done() int {
	n := 0
	for i := range t.tasks {
		n += t.tasks[i].progress.Cells
	}
	return n
}

// eta extrapolates the remaining wall time from the completion rate
// observed so far (zero until the first cell lands; zero again when
// everything is done).
func (t *tracker) eta(now time.Time) time.Duration {
	done := t.done()
	elapsed := now.Sub(t.start)
	if done <= 0 || elapsed <= 0 || done >= t.total {
		return 0
	}
	perUnit := elapsed / time.Duration(done)
	return time.Duration(t.total-done) * perUnit
}

// render is the one-line progress display: per-task done/total with
// restart and state markers, the global fold, the steal count, and the ETA.
func (t *tracker) render(now time.Time) string {
	var b strings.Builder
	for i := range t.tasks {
		s := &t.tasks[i]
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%s %d/%d", s.label, s.progress.Cells, s.units)
		if s.restarts > 0 {
			fmt.Fprintf(&b, " (r%d)", s.restarts)
		}
		switch s.phase {
		case phaseFailed:
			b.WriteString(" FAILED")
		case phaseDone:
			b.WriteString(" ok")
		case phaseStolen:
			b.WriteString(" stolen")
		}
	}
	done := t.done()
	pct := 0
	if t.total > 0 {
		pct = 100 * done / t.total
	}
	fmt.Fprintf(&b, " | %d/%d units (%d%%)", done, t.total, pct)
	if t.steals > 0 {
		fmt.Fprintf(&b, " steals %d", t.steals)
	}
	if eta := t.eta(now); eta > 0 {
		fmt.Fprintf(&b, " eta %s", eta.Round(time.Second))
	}
	return b.String()
}

// summary is the post-mortem line printed once after the supervise loop:
// every task with its cumulative restart and steal counts, so "which shard
// was restarted, which was carved, and how often" is answered by the log
// itself instead of by grepping journal origin headers.
func (t *tracker) summary() string {
	var b strings.Builder
	b.WriteString("task summary:")
	for i := range t.tasks {
		s := &t.tasks[i]
		fmt.Fprintf(&b, " %s restarts=%d stolen=%d", s.label, s.restarts, s.carved)
		if i < len(t.tasks)-1 {
			b.WriteByte(',')
		}
	}
	return b.String()
}
