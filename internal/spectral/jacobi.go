package spectral

import (
	"math"
	"sort"

	"repro/internal/matrix"
)

// JacobiEigen computes all eigenvalues (ascending) of the symmetric matrix
// a using the cyclic Jacobi rotation method. It is slower than the
// Householder+QL path but numerically very robust and completely
// independent of it, so the test suite uses the two as mutual checks.
// The input is not modified.
func JacobiEigen(a *matrix.Dense) ([]float64, error) {
	n := a.Rows()
	if a.Cols() != n {
		panic("spectral: JacobiEigen requires a square matrix")
	}
	if !a.IsSymmetric(symTol(a)) {
		return nil, errSymmetry
	}
	m := a.Clone()
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(m)
		if off < 1e-11*(1+m.MaxAbs()) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := m.At(p, q)
				if apq == 0 {
					continue
				}
				app, aqq := m.At(p, p), m.At(q, q)
				// Rotation angle: tan(2θ) = 2apq / (app − aqq).
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				applyJacobiRotation(m, p, q, c, s)
			}
		}
	}
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = m.At(i, i)
	}
	sort.Float64s(vals)
	return vals, nil
}

// applyJacobiRotation applies the symmetric similarity transform
// m ← JᵀmJ for the Givens rotation J in the (p, q) plane.
func applyJacobiRotation(m *matrix.Dense, p, q int, c, s float64) {
	n := m.Rows()
	for k := 0; k < n; k++ {
		if k == p || k == q {
			continue
		}
		mkp, mkq := m.At(k, p), m.At(k, q)
		m.Set(k, p, c*mkp-s*mkq)
		m.Set(p, k, m.At(k, p))
		m.Set(k, q, s*mkp+c*mkq)
		m.Set(q, k, m.At(k, q))
	}
	app, aqq, apq := m.At(p, p), m.At(q, q), m.At(p, q)
	m.Set(p, p, c*c*app-2*s*c*apq+s*s*aqq)
	m.Set(q, q, s*s*app+2*s*c*apq+c*c*aqq)
	m.Set(p, q, 0)
	m.Set(q, p, 0)
}

func offDiagNorm(m *matrix.Dense) float64 {
	n := m.Rows()
	var s float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := m.At(i, j)
			s += 2 * v * v
		}
	}
	return math.Sqrt(s)
}

var errSymmetry = errNotSymmetric{}

type errNotSymmetric struct{}

func (errNotSymmetric) Error() string { return "spectral: matrix is not symmetric" }
