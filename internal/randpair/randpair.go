// Package randpair implements Algorithm 2 of the paper (§6): load balancing
// with randomly chosen balancing partners.
//
// In every round, each node independently picks a partner uniformly at
// random from all n nodes, creating the link multigraph E; then, for every
// link (i, j) with ℓᵢ > ℓⱼ, node i sends (ℓᵢ−ℓⱼ)/(4·max(dᵢ,dⱼ)) (continuous)
// or its floor (discrete), where dᵢ is the number of links incident to i in
// this round's E. The same node can be chosen by many peers, so transfers
// are genuinely concurrent — the situation the paper's proof technique is
// built for.
//
// The analysis quantities are exposed so the experiments can check them
// directly: partner-degree statistics for Lemma 9, the per-round expected
// drop factors 19/20 (Lemma 11) and 39/40 (Lemma 13), and the discrete
// threshold 3200·n (Theorem 14).
package randpair

import (
	"math"
	"math/rand"

	"repro/internal/load"
	"repro/internal/parallel"
)

// Link is one balancing link of a round; unlike graph.Edge it is not
// canonicalized because (i→j) records who picked whom, and duplicates may
// occur (i picks j while j picks i — two links in the multiset E).
type Link struct {
	From, To int
}

// RoundLinks draws the round's link multiset: node i picks a uniformly
// random partner (possibly itself; self-picks are dropped, matching the
// "choose from all other nodes" reading with negligible distributional
// difference for large n — a self-link would transfer nothing anyway).
func RoundLinks(n int, rng *rand.Rand) []Link {
	return appendRoundLinks(nil, n, rng)
}

// appendRoundLinks is RoundLinks into a reusable buffer. The rng.Intn draw
// sequence is identical regardless of the buffer, so stepper rounds that
// recycle their link scratch replay the exact trajectories of the
// allocate-per-round form.
func appendRoundLinks(links []Link, n int, rng *rand.Rand) []Link {
	links = links[:0]
	for i := 0; i < n; i++ {
		j := rng.Intn(n)
		if j == i {
			continue
		}
		links = append(links, Link{From: i, To: j})
	}
	return links
}

// Degrees returns d(i) — the number of links incident to node i — for the
// given link multiset.
func Degrees(n int, links []Link) []int {
	return fillDegrees(nil, n, links)
}

// fillDegrees is Degrees into a reusable buffer.
func fillDegrees(d []int, n int, links []Link) []int {
	if cap(d) < n {
		d = make([]int, n)
	}
	d = d[:n]
	for i := range d {
		d[i] = 0
	}
	for _, l := range links {
		d[l.From]++
		d[l.To]++
	}
	return d
}

// DiscreteThreshold is the Φ threshold 3200·n of Lemma 13/Theorem 14 below
// which the discrete analysis stops guaranteeing expected progress.
func DiscreteThreshold(n int) float64 { return 3200 * float64(n) }

// ContinuousDropBound is the Lemma 11 per-round expected contraction
// factor: E[Φᵗ⁺¹] ≤ (19/20)·Φᵗ.
const ContinuousDropBound = 19.0 / 20.0

// DiscreteDropBound is the Lemma 13 per-round expected contraction factor
// above the threshold: E[Φᵗ⁺¹] ≤ (39/40)·Φᵗ.
const DiscreteDropBound = 39.0 / 40.0

// Continuous is the continuous Algorithm 2 stepper.
type Continuous struct {
	Load *load.Continuous
	RNG  *rand.Rand
	// Workers > 1 fans the transfer application over goroutines. Every
	// transfer is computed from the round-start vector, and each node
	// accumulates its incident transfers in global link order — the exact
	// floating-point operation chain of the serial loop — so results are
	// bit-identical for any value.
	Workers int

	// LastLinks / LastDegrees expose the most recent round's structure for
	// the Lemma 9 experiments.
	LastLinks   []Link
	LastDegrees []int

	inc   incidence
	start []float64
}

// incidence is the reusable CSR scratch of a round's link multiset: for
// node i, ent[off[i]:off[i+1]] holds the signed transfer amounts of i's
// incident links, in global link order. Per-node accumulation over it
// replays each node's serial mutation chain exactly (x − w ≡ x + (−w) in
// IEEE arithmetic), which is what makes the parallel path bit-identical.
type incidence struct {
	off    []int
	cursor []int
	ent    []float64
}

// build fills the structure from the round's effective links: f(k) returns
// link k's transfer magnitude (0 to skip) computed from round-start loads;
// the signed entries land on both endpoints.
func (inc *incidence) build(n int, links []Link, start []float64, deg []int, f func(i, j, d int) float64) {
	if cap(inc.off) < n+1 {
		inc.off = make([]int, n+1)
		inc.cursor = make([]int, n)
	}
	inc.off = inc.off[:n+1]
	inc.cursor = inc.cursor[:n]
	for i := range inc.cursor {
		inc.cursor[i] = 0
	}
	for _, lk := range links {
		if d := maxDeg(deg, lk); d != 0 && start[lk.From] != start[lk.To] {
			inc.cursor[lk.From]++
			inc.cursor[lk.To]++
		}
	}
	total := 0
	for i := 0; i < n; i++ {
		inc.off[i] = total
		total += inc.cursor[i]
		inc.cursor[i] = inc.off[i]
	}
	inc.off[n] = total
	if cap(inc.ent) < total {
		inc.ent = make([]float64, total)
	}
	inc.ent = inc.ent[:total]
	for _, lk := range links {
		i, j := lk.From, lk.To
		d := maxDeg(deg, lk)
		if d == 0 || start[i] == start[j] {
			continue
		}
		w := f(i, j, d)
		// Match the serial loop exactly: the heavier endpoint sends w.
		if start[i] > start[j] {
			w = -w
		}
		inc.ent[inc.cursor[i]] = w
		inc.cursor[i]++
		inc.ent[inc.cursor[j]] = -w
		inc.cursor[j]++
	}
}

// maxDeg is max(d(From), d(To)) for a link.
func maxDeg(deg []int, lk Link) int {
	d := deg[lk.From]
	if deg[lk.To] > d {
		d = deg[lk.To]
	}
	return d
}

// NewContinuous creates a stepper over a copy of the initial loads.
func NewContinuous(initial []float64, rng *rand.Rand) *Continuous {
	return &Continuous{Load: load.NewContinuous(initial), RNG: rng}
}

// Step performs one round: draw links, then apply all transfers computed
// from the round-start loads concurrently.
func (c *Continuous) Step() {
	n := c.Load.N()
	// Round scratch (links, degrees, the round-start snapshot) is recycled
	// across rounds; at n = 2²⁰ the per-round garbage would otherwise
	// dominate the actual balancing arithmetic.
	c.LastLinks = appendRoundLinks(c.LastLinks, n, c.RNG)
	links := c.LastLinks
	c.LastDegrees = fillDegrees(c.LastDegrees, n, links)
	deg := c.LastDegrees
	v := c.Load.Vector()
	if cap(c.start) < n {
		c.start = make([]float64, n)
	}
	start := c.start[:n]
	copy(start, v)
	workers := parallel.StepperWorkers(c.Workers)
	if workers == 1 {
		for _, lk := range links {
			i, j := lk.From, lk.To
			d := deg[i]
			if deg[j] > d {
				d = deg[j]
			}
			if d == 0 {
				continue
			}
			diff := start[i] - start[j]
			if diff == 0 {
				continue
			}
			w := math.Abs(diff) / (4 * float64(d))
			if diff > 0 {
				v[i] -= w
				v[j] += w
			} else {
				v[j] -= w
				v[i] += w
			}
		}
		return
	}
	c.inc.build(n, links, start, deg, func(i, j, d int) float64 {
		return math.Abs(start[i]-start[j]) / (4 * float64(d))
	})
	inc := &c.inc
	parallel.For(n, workers, func(i int) {
		acc := start[i]
		for k := inc.off[i]; k < inc.off[i+1]; k++ {
			acc += inc.ent[k]
		}
		v[i] = acc
	})
}

// Potential returns Φ of the current distribution.
func (c *Continuous) Potential() float64 { return c.Load.Potential() }

// LoadVector returns the live load vector (implements sim.ContinuousState).
func (c *Continuous) LoadVector() []float64 { return c.Load.Vector() }

// Discrete is the discrete Algorithm 2 stepper (floor transfers).
type Discrete struct {
	Load *load.Discrete
	RNG  *rand.Rand
	// Workers > 1 fans the transfer application over goroutines; token
	// arithmetic is order-free, so results are identical for any value.
	Workers int

	LastLinks   []Link
	LastDegrees []int

	inc   incidence64
	start []int64
}

// incidence64 is incidence for token transfers (zero-token links become 0
// entries, which integer accumulation ignores).
type incidence64 struct {
	off    []int
	cursor []int
	ent    []int64
}

func (inc *incidence64) build(n int, links []Link, start []int64, deg []int) {
	if cap(inc.off) < n+1 {
		inc.off = make([]int, n+1)
		inc.cursor = make([]int, n)
	}
	inc.off = inc.off[:n+1]
	inc.cursor = inc.cursor[:n]
	for i := range inc.cursor {
		inc.cursor[i] = 0
	}
	for _, lk := range links {
		if d := maxDeg(deg, lk); d != 0 && start[lk.From] != start[lk.To] {
			inc.cursor[lk.From]++
			inc.cursor[lk.To]++
		}
	}
	total := 0
	for i := 0; i < n; i++ {
		inc.off[i] = total
		total += inc.cursor[i]
		inc.cursor[i] = inc.off[i]
	}
	inc.off[n] = total
	if cap(inc.ent) < total {
		inc.ent = make([]int64, total)
	}
	inc.ent = inc.ent[:total]
	for _, lk := range links {
		i, j := lk.From, lk.To
		d := maxDeg(deg, lk)
		if d == 0 || start[i] == start[j] {
			continue
		}
		diff := start[i] - start[j]
		abs := diff
		if abs < 0 {
			abs = -abs
		}
		t := abs / int64(4*d)
		if diff > 0 {
			t = -t
		}
		inc.ent[inc.cursor[i]] = t
		inc.cursor[i]++
		inc.ent[inc.cursor[j]] = -t
		inc.cursor[j]++
	}
}

// NewDiscrete creates a stepper over a copy of the initial token counts.
func NewDiscrete(initial []int64, rng *rand.Rand) *Discrete {
	return &Discrete{Load: load.NewDiscrete(initial), RNG: rng}
}

// Step performs one round with ⌊(ℓᵢ−ℓⱼ)/(4·max(dᵢ,dⱼ))⌋-token transfers.
func (d *Discrete) Step() {
	n := d.Load.N()
	d.LastLinks = appendRoundLinks(d.LastLinks, n, d.RNG)
	links := d.LastLinks
	d.LastDegrees = fillDegrees(d.LastDegrees, n, links)
	deg := d.LastDegrees
	v := d.Load.Tokens()
	if cap(d.start) < n {
		d.start = make([]int64, n)
	}
	start := d.start[:n]
	copy(start, v)
	workers := parallel.StepperWorkers(d.Workers)
	if workers == 1 {
		for _, lk := range links {
			i, j := lk.From, lk.To
			dd := deg[i]
			if deg[j] > dd {
				dd = deg[j]
			}
			if dd == 0 {
				continue
			}
			diff := start[i] - start[j]
			if diff == 0 {
				continue
			}
			abs := diff
			if abs < 0 {
				abs = -abs
			}
			t := abs / int64(4*dd)
			if t == 0 {
				continue
			}
			if diff > 0 {
				v[i] -= t
				v[j] += t
			} else {
				v[j] -= t
				v[i] += t
			}
		}
		return
	}
	d.inc.build(n, links, start, deg)
	inc := &d.inc
	parallel.For(n, workers, func(i int) {
		acc := start[i]
		for k := inc.off[i]; k < inc.off[i+1]; k++ {
			acc += inc.ent[k]
		}
		v[i] = acc
	})
}

// Potential returns Φ of the current distribution.
func (d *Discrete) Potential() float64 { return d.Load.Potential() }

// LoadTokens returns the live token counts (implements sim.DiscreteState).
func (d *Discrete) LoadTokens() []int64 { return d.Load.Tokens() }

// PartnerDegreeProbe estimates, by Monte-Carlo over rounds, the Lemma 9
// conditional probability Pr[max(dᵢ,dⱼ) ≤ 5 | (i,j) ∈ E]: the fraction of
// links in the drawn multisets whose endpoint degrees are both ≤ 5.
func PartnerDegreeProbe(n, rounds int, rng *rand.Rand) (prob float64, maxDegSeen int) {
	var ok, total int
	for r := 0; r < rounds; r++ {
		links := RoundLinks(n, rng)
		deg := Degrees(n, links)
		for _, lk := range links {
			d := deg[lk.From]
			if deg[lk.To] > d {
				d = deg[lk.To]
			}
			if d > maxDegSeen {
				maxDegSeen = d
			}
			if d <= 5 {
				ok++
			}
			total++
		}
	}
	if total == 0 {
		return 0, 0
	}
	return float64(ok) / float64(total), maxDegSeen
}
