package ballsbins

import (
	"math"
	"math/rand"
	"testing"
)

func TestThrowConservesBalls(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	occ := Throw(1000, 50, rng)
	total := 0
	for _, c := range occ {
		total += c
	}
	if total != 1000 {
		t.Fatalf("total %d", total)
	}
}

func TestMaxLoadAtLeastAverage(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if got := MaxLoad(100, 10, rng); got < 10 {
		t.Fatalf("max load %d below average", got)
	}
}

func TestMaxLoadSingleBin(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if got := MaxLoad(42, 1, rng); got != 42 {
		t.Fatalf("single bin max %d", got)
	}
}

func TestExpectedMaxLoadApproxGrows(t *testing.T) {
	prev := 0.0
	for _, n := range []int{10, 100, 1000, 10000} {
		v := ExpectedMaxLoadApprox(n)
		if v <= prev {
			t.Fatalf("approx not increasing at n=%d", n)
		}
		prev = v
	}
	if ExpectedMaxLoadApprox(2) != 1 {
		t.Fatal("small-n convention")
	}
}

func TestMaxLoadTracksTheory(t *testing.T) {
	// For n balls in n bins the max load concentrates near
	// ln n/ln ln n·(1+o(1)); allow a generous [1, 4]× band around it.
	rng := rand.New(rand.NewSource(4))
	n := 1024
	stats := MaxLoadStats(n, 50, rng)
	var mean float64
	for _, v := range stats {
		mean += v
	}
	mean /= float64(len(stats))
	approx := ExpectedMaxLoadApprox(n)
	if mean < approx || mean > 4*approx {
		t.Fatalf("mean max load %v outside [%v, %v]", mean, approx, 4*approx)
	}
}

func TestCollisionProbabilityMatchesTailBound(t *testing.T) {
	// Lemma 9's calculation: Pr[Binomial(n−1, 1/n) ≥ 5] < (e/5)⁵ ≈ 0.045.
	rng := rand.New(rand.NewSource(5))
	n := 256
	p := CollisionProbability(n, 4, 4000, rng) // strictly more than 4 ⇒ ≥ 5
	bound := BinomialTailBound(n, 1/float64(n), 5)
	if p > bound*1.5 { // Monte-Carlo slack
		t.Fatalf("measured tail %v exceeds bound %v", p, bound)
	}
}

func TestBinomialTailBoundLemma9Constants(t *testing.T) {
	// The paper's two constants: (e/5)⁵ < 0.05 and (e/4)⁴ < 0.25.
	if b := math.Pow(math.E/5, 5); b >= 0.05 {
		t.Fatalf("(e/5)⁵ = %v", b)
	}
	if b := math.Pow(math.E/4, 4); b >= 0.25 {
		t.Fatalf("(e/4)⁴ = %v", b)
	}
	// BinomialTailBound with p = 1/n reproduces (e/k)^k.
	got := BinomialTailBound(100, 0.01, 5)
	want := math.Pow(math.E/5, 5)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("bound %v, want %v", got, want)
	}
}
