// Package spectral implements the symmetric eigensolvers the paper's bounds
// require. Every convergence theorem is expressed in terms of λ₂, the
// second-smallest eigenvalue of the graph Laplacian (the algebraic
// connectivity), or γ, the second-largest eigenvalue of the diffusion
// matrix. The Go ecosystem has no stdlib eigensolver, so this package
// implements the classic dense pipeline from scratch:
//
//   - Householder reduction of a symmetric matrix to tridiagonal form
//     (tridiag.go),
//   - the implicit-shift QL iteration on the tridiagonal matrix (ql.go),
//   - a cyclic Jacobi solver used to cross-validate the QL path (jacobi.go),
//   - Lanczos / deflated power iteration for extremal eigenvalues of large
//     sparse Laplacians (iterative.go),
//
// together with graph-facing conveniences: Lambda2, DiffusionMatrix, Gamma
// (spectral.go).
//
// The dense algorithms follow the standard EISPACK/"Numerical Recipes"
// formulations (tred2/tql2); this is an independent reimplementation with
// Go-flavoured error handling and tests against closed-form graph spectra.
package spectral

import (
	"math"

	"repro/internal/matrix"
)

// Tridiagonal holds a symmetric tridiagonal matrix: diagonal d[0..n−1] and
// subdiagonal e[0..n−2] (e[i] couples rows i and i+1).
type Tridiagonal struct {
	D []float64 // diagonal, length n
	E []float64 // subdiagonal, length n (last entry unused, kept for QL convenience)
}

// Householder reduces the symmetric matrix a to tridiagonal form using
// Householder reflections, returning the tridiagonal matrix and, if
// wantVectors is set, the accumulated orthogonal transform Q such that
// a = Q·T·Qᵀ. The input matrix is not modified.
func Householder(a *matrix.Dense, wantVectors bool) (Tridiagonal, *matrix.Dense) {
	n := a.Rows()
	if a.Cols() != n {
		panic("spectral: Householder requires a square matrix")
	}
	if n == 0 {
		if wantVectors {
			return Tridiagonal{D: nil, E: nil}, matrix.NewDense(0, 0)
		}
		return Tridiagonal{D: nil, E: nil}, nil
	}
	// Work on a copy; z accumulates the transform in place (tred2 layout).
	z := a.Clone()
	d := make([]float64, n)
	e := make([]float64, n)

	for i := n - 1; i >= 1; i-- {
		l := i - 1
		var h, scale float64
		if l > 0 {
			for k := 0; k <= l; k++ {
				scale += math.Abs(z.At(i, k))
			}
			if scale == 0 {
				e[i] = z.At(i, l)
			} else {
				for k := 0; k <= l; k++ {
					z.Set(i, k, z.At(i, k)/scale)
					h += z.At(i, k) * z.At(i, k)
				}
				f := z.At(i, l)
				g := math.Sqrt(h)
				if f > 0 {
					g = -g
				}
				e[i] = scale * g
				h -= f * g
				z.Set(i, l, f-g)
				var fSum float64
				for j := 0; j <= l; j++ {
					if wantVectors {
						z.Set(j, i, z.At(i, j)/h)
					}
					g = 0
					for k := 0; k <= j; k++ {
						g += z.At(j, k) * z.At(i, k)
					}
					for k := j + 1; k <= l; k++ {
						g += z.At(k, j) * z.At(i, k)
					}
					e[j] = g / h
					fSum += e[j] * z.At(i, j)
				}
				hh := fSum / (h + h)
				for j := 0; j <= l; j++ {
					f = z.At(i, j)
					g = e[j] - hh*f
					e[j] = g
					for k := 0; k <= j; k++ {
						z.Set(j, k, z.At(j, k)-f*e[k]-g*z.At(i, k))
					}
				}
			}
		} else {
			e[i] = z.At(i, l)
		}
		d[i] = h
	}
	if wantVectors {
		d[0] = 0
	}
	e[0] = 0

	for i := 0; i < n; i++ {
		if wantVectors {
			l := i - 1
			if d[i] != 0 {
				for j := 0; j <= l; j++ {
					var g float64
					for k := 0; k <= l; k++ {
						g += z.At(i, k) * z.At(k, j)
					}
					for k := 0; k <= l; k++ {
						z.Set(k, j, z.At(k, j)-g*z.At(k, i))
					}
				}
			}
			d[i] = z.At(i, i)
			z.Set(i, i, 1)
			for j := 0; j <= l; j++ {
				z.Set(j, i, 0)
				z.Set(i, j, 0)
			}
		} else {
			d[i] = z.At(i, i)
		}
	}
	if !wantVectors {
		z = nil
	}
	return Tridiagonal{D: d, E: e}, z
}
