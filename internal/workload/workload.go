// Package workload generates initial load distributions for the
// experiments. The diffusion literature evaluates convergence from a small
// set of canonical starting points — a single overloaded node (spike),
// uniformly random loads, adversarial arrangements for specific topologies —
// and every generator here is deterministic given its *rand.Rand, so
// experiment rows are reproducible from a seed.
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// Kind enumerates the built-in initial distributions.
type Kind int

const (
	// Spike places the entire load on node 0: the worst case for the
	// discrepancy measure and the canonical "token distribution" start.
	Spike Kind = iota
	// Uniform draws each node's load i.i.d. uniform in [0, scale).
	Uniform
	// Bimodal gives half the nodes 0 and half 2·scale/… so the average is
	// scale/2 — a balanced two-cluster start.
	Bimodal
	// Exponential draws i.i.d. Exp(1)·scale loads (heavy-ish tail).
	Exponential
	// PowerLaw draws Pareto(α=1.5) loads capped at 10⁶·scale: a realistic
	// skewed job-size distribution.
	PowerLaw
	// LinearRamp sets ℓᵢ = i·scale/n: the paper's line-graph example in
	// which no neighbouring pair of a path wants to exchange a token.
	LinearRamp
	// Flat sets every node to scale (already balanced; Φ = 0).
	Flat

	// kindCount counts the kinds above. A new Kind constant must be
	// inserted before it (and given a String case), or the registry
	// round-trip test — shared with internal/scenario's — fails: an
	// unregistered generator should fail in tests, not at sweep time.
	kindCount
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Spike:
		return "spike"
	case Uniform:
		return "uniform"
	case Bimodal:
		return "bimodal"
	case Exponential:
		return "exponential"
	case PowerLaw:
		return "powerlaw"
	case LinearRamp:
		return "ramp"
	case Flat:
		return "flat"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// AllKinds lists every generator, in the order the harness sweeps them. It
// is derived from the kindCount sentinel, so it cannot drift out of sync
// with the const block.
func AllKinds() []Kind {
	out := make([]Kind, kindCount)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// Descriptions returns each kind's name and a one-line description, in
// sweep order — the -list surface.
func Descriptions() [][2]string {
	return [][2]string{
		{"spike", "entire load on node 0 (the canonical hard start)"},
		{"uniform", "i.i.d. uniform loads in [0, scale)"},
		{"bimodal", "half the nodes loaded, half empty"},
		{"exponential", "i.i.d. Exp(1)·scale loads (heavy-ish tail)"},
		{"powerlaw", "Pareto(α=1.5) loads, capped (skewed job sizes)"},
		{"ramp", "linear ramp ℓᵢ = i·scale/n (the paper's path example)"},
		{"flat", "every node at scale (already balanced, Φ = 0)"},
	}
}

// ParseKind converts a CLI name (as produced by Kind.String) into a Kind.
func ParseKind(s string) (Kind, error) {
	for _, k := range AllKinds() {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("workload: unknown kind %q", s)
}

// Continuous generates an n-node continuous load vector of the given kind.
// scale sets the magnitude (for Spike it is the total load; for the i.i.d.
// kinds the per-node scale). rng may be nil for the deterministic kinds.
func Continuous(kind Kind, n int, scale float64, rng *rand.Rand) []float64 {
	if n < 0 {
		panic("workload: negative n")
	}
	out := make([]float64, n)
	switch kind {
	case Spike:
		if n > 0 {
			out[0] = scale
		}
	case Uniform:
		for i := range out {
			out[i] = rng.Float64() * scale
		}
	case Bimodal:
		for i := range out {
			if i%2 == 0 {
				out[i] = scale
			}
		}
	case Exponential:
		for i := range out {
			out[i] = rng.ExpFloat64() * scale
		}
	case PowerLaw:
		for i := range out {
			// Pareto with α = 1.5, x_min = 1, capped to keep Φ finite-ish.
			u := rng.Float64()
			v := scale * math.Pow(1-u, -1/1.5)
			if max := scale * 1e6; v > max {
				v = max
			}
			out[i] = v
		}
	case LinearRamp:
		for i := range out {
			out[i] = float64(i) * scale / float64(maxInt(n, 1))
		}
	case Flat:
		for i := range out {
			out[i] = scale
		}
	default:
		panic(fmt.Sprintf("workload: unknown kind %v", kind))
	}
	return out
}

// Discrete generates an n-node integer token vector of the given kind with
// approximately `total` tokens in aggregate (exact for Spike and Flat).
func Discrete(kind Kind, n int, total int64, rng *rand.Rand) []int64 {
	if n <= 0 {
		return nil
	}
	out := make([]int64, n)
	switch kind {
	case Spike:
		out[0] = total
	case Uniform:
		per := 2 * total / int64(n)
		var assigned int64
		for i := range out {
			out[i] = rng.Int63n(per + 1)
			assigned += out[i]
		}
		rebalanceTotal(out, total-assigned, rng)
	case Bimodal:
		per := 2 * total / int64(n)
		var assigned int64
		for i := range out {
			if i%2 == 0 {
				out[i] = per
				assigned += per
			}
		}
		rebalanceTotal(out, total-assigned, rng)
	case Exponential:
		mean := float64(total) / float64(n)
		var assigned int64
		for i := range out {
			out[i] = int64(rng.ExpFloat64() * mean)
			assigned += out[i]
		}
		rebalanceTotal(out, total-assigned, rng)
	case PowerLaw:
		mean := float64(total) / float64(n)
		var assigned int64
		for i := range out {
			u := rng.Float64()
			v := int64(mean * math.Pow(1-u, -1/1.5) / 3)
			if v > total {
				v = total
			}
			out[i] = v
			assigned += v
		}
		rebalanceTotal(out, total-assigned, rng)
	case LinearRamp:
		// ℓᵢ ∝ i, scaled so the sum is close to total; remainder to node 0.
		sumIdx := int64(n) * int64(n-1) / 2
		var assigned int64
		for i := range out {
			if sumIdx > 0 {
				out[i] = total * int64(i) / sumIdx
			}
			assigned += out[i]
		}
		rebalanceTotal(out, total-assigned, rng)
	case Flat:
		per := total / int64(n)
		var assigned int64
		for i := range out {
			out[i] = per
			assigned += per
		}
		rebalanceTotal(out, total-assigned, rng)
	default:
		panic(fmt.Sprintf("workload: unknown kind %v", kind))
	}
	return out
}

// rebalanceTotal distributes a (possibly negative) token delta across the
// vector so the exact total is preserved, never driving a node negative.
func rebalanceTotal(v []int64, delta int64, rng *rand.Rand) {
	n := len(v)
	if n == 0 {
		return
	}
	for delta > 0 {
		i := 0
		if rng != nil {
			i = rng.Intn(n)
		}
		v[i]++
		delta--
	}
	for delta < 0 {
		start := 0
		if rng != nil {
			start = rng.Intn(n)
		}
		moved := false
		for k := 0; k < n; k++ {
			i := (start + k) % n
			if v[i] > 0 {
				v[i]--
				delta++
				moved = true
				break
			}
		}
		if !moved {
			return // nothing left to remove; vector is all zeros
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
