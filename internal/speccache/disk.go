package speccache

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Disk spill: the scalar quantities (λ₂, γ, γ_P) are pure functions of the
// graph fingerprint, so they can be shared across processes through small
// JSON files — one per fingerprint — in a spill directory. This is what
// keeps m shard processes of one sharded sweep from each paying the same
// O(n³) eigensolves: the first process to need a quantity computes and
// writes it, the rest load it.
//
// The spill is strictly a second cache level below the in-memory maps: a
// scalar is looked up in memory first, then on disk, and only then computed
// (and written back). Disk failures of any kind — unreadable directory,
// corrupt or torn file, failed write — degrade silently to a recompute;
// the cache never turns an I/O problem into a wrong or missing result.
// Writes go through a temp file plus rename, so concurrent shard processes
// can share a directory without ever observing a half-written entry (they
// may both compute the same value once and race the rename — last writer
// wins with an identical payload, since the quantities are deterministic).
//
// Optimal flows are not spilled: they are keyed on the load vector as well
// as the graph, so cross-process reuse is rare, and their payload is O(m)
// edges rather than one float.
//
// The shared cache enables the spill automatically when the
// LB_SPECCACHE_DIR environment variable names a directory (created if
// absent); any cache can opt in with SetDiskDir.

// EnvDiskDir is the environment variable that, when set, points the shared
// cache's disk spill at a directory.
const EnvDiskDir = "LB_SPECCACHE_DIR"

func init() {
	if dir := os.Getenv(EnvDiskDir); dir != "" {
		// Best-effort: a bad directory must not break a process that never
		// asked for spilling explicitly.
		_ = shared.SetDiskDir(dir)
	}
}

// SetDiskDir enables the disk spill under dir (created if absent). Pass ""
// to disable. Safe to call concurrently with lookups; entries already
// memoized in memory are unaffected.
func (c *Cache) SetDiskDir(dir string) error {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("speccache: disk spill: %w", err)
		}
	}
	c.mu.Lock()
	c.diskDir = dir
	c.mu.Unlock()
	return nil
}

// SetDiskDir is Shared().SetDiskDir.
func SetDiskDir(dir string) error { return shared.SetDiskDir(dir) }

// spillDir snapshots the spill directory ("" = disabled).
func (c *Cache) spillDir() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.diskDir
}

// diskFileName is the per-fingerprint entry file.
func diskFileName(dir string, fp uint64) string {
	return filepath.Join(dir, fmt.Sprintf("spec-%016x.json", fp))
}

// diskKey names a quantity inside the entry file (ASCII, stable across
// versions — these strings are the on-disk format).
func (q quantity) diskKey() string {
	switch q {
	case qLambda2:
		return "lambda2"
	case qGamma:
		return "gamma"
	case qPaperGamma:
		return "gamma_paper"
	case qPaperGap:
		return "paper_gap"
	}
	return ""
}

// diskLoad tries to read quantity q of fingerprint fp from the spill.
func (c *Cache) diskLoad(q quantity, fp uint64) (float64, bool) {
	dir := c.spillDir()
	if dir == "" || q.diskKey() == "" {
		return 0, false
	}
	raw, err := os.ReadFile(diskFileName(dir, fp))
	if err != nil {
		return 0, false
	}
	entry := map[string]float64{}
	if json.Unmarshal(raw, &entry) != nil {
		return 0, false // torn or corrupt entry: recompute, don't fail
	}
	v, ok := entry[q.diskKey()]
	return v, ok
}

// diskSave merges quantity q of fingerprint fp into the spill entry,
// atomically (temp file + rename). Failures are silent: the value is
// already memoized in memory, and the next process simply recomputes.
func (c *Cache) diskSave(q quantity, fp uint64, val float64) {
	dir := c.spillDir()
	if dir == "" || q.diskKey() == "" {
		return
	}
	path := diskFileName(dir, fp)
	entry := map[string]float64{}
	if raw, err := os.ReadFile(path); err == nil {
		// Merge with whatever quantities another process already spilled;
		// a corrupt existing entry is simply overwritten.
		_ = json.Unmarshal(raw, &entry)
	}
	entry[q.diskKey()] = val
	raw, err := json.Marshal(entry)
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(dir, "spec-*.tmp")
	if err != nil {
		return
	}
	_, werr := tmp.Write(raw)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
	}
}
