package orchestrator

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"syscall"
	"time"
)

// Task is one schedulable slice of a sweep: a shard, optionally narrowed to
// a unit window by a steal, with the local journal path its cells land in.
// The supervisor starts with one task per planned shard and mints new ones
// when it carves a straggler.
type Task struct {
	// Shard names the slice (units with expansion index ≡ Index mod Count).
	Shard Shard
	// Lo/Hi narrow the task to the half-open expansion window [Lo, Hi);
	// both zero means the whole shard. Hi == 0 with Lo > 0 is the
	// unbounded tail — the shape every steal produces.
	Lo, Hi int
	// Journal is the task's JSONL journal path on the supervisor's
	// filesystem. Remote backends write to the same path on their side and
	// FetchJournal mirrors it home.
	Journal string
	// Units is how many units the task owns — its progress denominator.
	Units int
	// Label is the display name ("s1" for a planned shard, "s1.2" for the
	// second sub-shard stolen from it).
	Label string
	// Origin, when non-empty, annotates the task's journal header with
	// provenance (-origin). The supervisor sets it on stolen tasks only, so
	// plain local supervision keeps its exact legacy journal bytes.
	Origin string
}

// Handle identifies one running attempt to the Launcher that started it.
// It is opaque to the supervisor: obtained from Launch, passed back to
// Signal and Wait, never inspected.
type Handle any

// Launcher is one execution backend for shard attempts — local
// subprocesses, ssh to a remote host, a Slurm queue. The supervisor
// schedules tasks onto launchers up to their slot capacity, waits for
// attempts in their own goroutines, and periodically fetches journals home
// so the one journal-tail progress protocol drives every backend.
//
// Launch/Wait come in pairs per attempt; Signal may fire at any point
// between them (the steal path sends os.Kill — it must terminate even a
// stopped process). FetchJournal makes the task's journal bytes readable at
// Task.Journal on the supervisor's filesystem; backends that already write
// there locally make it a no-op. A fetch may race the remote writer — the
// result is a prefix with at most a torn tail, exactly what the journal
// scanners tolerate.
type Launcher interface {
	// Name identifies the backend instance in logs and provenance
	// ("local", "ssh:host1", "slurm").
	Name() string
	// Slots is how many attempts this launcher runs concurrently; <= 0
	// means unbounded.
	Slots() int
	// Launch starts one attempt of t with the given lbbench argument list
	// (grid + shard + window + journal flags; the launcher prepends its own
	// binary/transport). The attempt's stderr accumulates at
	// t.Journal+".stderr" on the supervisor's filesystem.
	Launch(ctx context.Context, t *Task, args []string) (Handle, error)
	// Signal delivers sig to a running attempt.
	Signal(h Handle, sig os.Signal) error
	// Wait blocks until the attempt exits; nil means a clean exit.
	Wait(h Handle) error
	// FetchJournal mirrors t's journal to t.Journal locally.
	FetchJournal(t *Task) error
}

// stderrPath is where a task's stderr accumulates across attempts.
func stderrPath(t *Task) string { return t.Journal + ".stderr" }

// LocalLauncher runs attempts as local subprocesses — the pre-Launcher
// orchestrator's exec path, behavior-identical: stdout discarded (the
// journal is the product), stderr appended to the task's .stderr file,
// cancellation delivered as SIGINT (the graceful path that journals the
// cancellation and fsyncs) escalating to SIGKILL after WaitDelay.
type LocalLauncher struct {
	// Command is the argv prefix spawning one attempt when the task's
	// flags are appended — typically the lbbench binary. Required.
	Command []string
	// Width caps concurrent attempts; <= 0 means one per task (the classic
	// all-shards-at-once supervise).
	Width int
}

// Name implements Launcher.
func (l *LocalLauncher) Name() string { return "local" }

// Slots implements Launcher.
func (l *LocalLauncher) Slots() int { return l.Width }

// Launch implements Launcher.
func (l *LocalLauncher) Launch(ctx context.Context, t *Task, args []string) (Handle, error) {
	if len(l.Command) == 0 {
		return nil, fmt.Errorf("orchestrator: local launcher has no command")
	}
	argv := append(l.Command[1:len(l.Command):len(l.Command)], args...)
	cmd := exec.CommandContext(ctx, l.Command[0], argv...)
	// nil stdout, file stderr: no pipes, so Wait returns the moment the
	// child is reaped instead of lingering on descriptors a grandchild
	// might hold.
	cmd.Stdout = nil
	cmd.Cancel = func() error { return cmd.Process.Signal(syscall.SIGINT) }
	cmd.WaitDelay = 30 * time.Second
	stderr, err := os.OpenFile(stderrPath(t), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("orchestrator: %w", err)
	}
	cmd.Stderr = stderr
	if err := cmd.Start(); err != nil {
		stderr.Close()
		return nil, fmt.Errorf("orchestrator: %w", err)
	}
	// The child holds its own copy of the descriptor; closing ours keeps
	// the attempt from pinning open files across a long sweep.
	stderr.Close()
	return cmd, nil
}

// Signal implements Launcher.
func (l *LocalLauncher) Signal(h Handle, sig os.Signal) error {
	cmd := h.(*exec.Cmd)
	if cmd.Process == nil {
		return fmt.Errorf("orchestrator: attempt not started")
	}
	return cmd.Process.Signal(sig)
}

// Wait implements Launcher.
func (l *LocalLauncher) Wait(h Handle) error { return h.(*exec.Cmd).Wait() }

// FetchJournal implements Launcher: local attempts already journal at
// Task.Journal.
func (l *LocalLauncher) FetchJournal(t *Task) error { return nil }
