package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/diffusion"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/randpair"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/speccache"
)

// Session is the stepwise form of Balance: the same validated
// configuration, stepper factory, theorem bounds and round bookkeeping,
// but with the round loop inverted so the caller drives it. Balance, the
// scenario engine and the lbserved daemon all run on this one state
// machine, so the serial IEEE op chain — and with it every byte-identity
// guarantee of the batch engine — is shared by construction instead of
// re-implemented per driver.
//
// The protocol is
//
//	s, err := core.Open(cfg)
//	for !done {
//	        s.SwapGraph(g)      // optional, between rounds only
//	        s.Step()            // one synchronous balancing round
//	        s.Inject(arrivals)  // optional, mid-round only
//	        phi, _ := s.Commit()
//	}
//	res := s.Close()
//
// Each round is Step → (Inject)* → Commit; Commit observes the potential,
// appends it to the trace and advances the rebalance bookkeeping. The
// ordering is load-bearing: arrivals land after the round's transfers and
// before the potential is observed, exactly as the scenario engine has
// always done, so a trace recorded from a live session replays
// byte-identically through the grid.
type Session struct {
	cfg  Config
	base *graph.G // cfg.Graph; SwapGraph may activate others
	g    *graph.G // the active graph
	sys  sim.System

	// algoRNG persists across SwapGraph rebuilds so a randomized
	// algorithm's draw stream never restarts mid-run; runSpectra keeps
	// churned one-shot subgraphs out of the process-wide speccache.
	algoRNG    *rand.Rand
	runSpectra *speccache.Cache

	lambda2   float64
	bound     float64
	boundName string
	target    float64

	rounds   int
	trace    []float64
	peak     float64
	injected float64 // load landed since the last Commit
	midRound bool    // Step taken, Commit pending

	lastEvent  int // round index of the most recent load injection
	rebalanced int // first round with Φ ≤ target since lastEvent; -1 while above
	closed     bool

	// phases accumulates per-phase wall time when cfg.Phases is set; nil
	// (the default) keeps the round loop free of clock reads entirely.
	phases *obs.Phases
}

// SessionMetrics is a point-in-time view of a live session — the numbers
// lbserved serves from /metrics. All fields mirror their Result
// counterparts; RebalanceRounds is -1 while the system is still above the
// target since the last injection.
type SessionMetrics struct {
	Rounds          int
	Phi             float64
	PhiStart        float64
	PeakPhi         float64
	Target          float64
	Converged       bool
	Lambda2         float64
	Bound           float64
	BoundName       string
	SteadyRMS       float64
	RebalanceRounds int
}

var errSessionClosed = errors.New("core: session is closed")

// Open validates cfg, fills its defaults, computes the spectral inputs and
// theorem bound (static scenarios only — the one-shot theorems never apply
// to ongoing-arrival runs), builds the stepper and observes Φ⁰. The
// returned session has completed round 0: Phi() is Φ⁰ and the trace holds
// one entry.
func Open(cfg Config) (*Session, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()

	s := &Session{
		cfg:        cfg,
		base:       cfg.Graph,
		g:          cfg.Graph,
		algoRNG:    rand.New(rand.NewSource(cfg.Seed)),
		runSpectra: speccache.New(),
		rebalanced: -1,
		phases:     cfg.Phases,
	}

	// Spectral inputs for the bounds (skipped for RandomPartners, whose
	// bounds are topology-free). λ₂ comes through the shared speccache,
	// so repeated runs on the same topology — every unit of a grid sweep
	// — pay for the eigensolve once per process.
	n := cfg.Graph.N()
	if cfg.Algorithm != RandomPartners && cfg.Graph.IsConnected() && n >= 2 {
		var t0 time.Time
		if s.phases.Enabled() {
			t0 = time.Now()
		}
		l2, err := speccache.Lambda2(cfg.Graph)
		if s.phases.Enabled() {
			s.phases.Observe(obs.PhaseSpectra, time.Since(t0))
		}
		if err != nil {
			return nil, fmt.Errorf("core: λ₂: %w", err)
		}
		s.lambda2 = l2
	}

	sys, err := buildSystemOn(cfg, cfg.Graph, cfg.Loads, s.algoRNG, speccache.Shared())
	if err != nil {
		return nil, err
	}
	s.sys = sys

	phi0 := sys.Potential()
	s.target = cfg.Epsilon * phi0
	s.peak = phi0
	s.trace = append(make([]float64, 0, 128), phi0)

	// Theorem bound and discrete floor — static runs only: a scenario
	// run's target stays ε·Φ⁰ with no theorem attached.
	if cfg.Scenario.IsStatic() {
		switch {
		case cfg.Algorithm == Diffusion && cfg.Mode == Continuous && s.lambda2 > 0:
			s.bound = diffusion.ContinuousBound(cfg.Graph, s.lambda2, cfg.Epsilon)
			s.boundName = "Theorem 4"
		case cfg.Algorithm == Diffusion && cfg.Mode == Discrete && s.lambda2 > 0:
			if thr := diffusion.DiscreteThreshold(cfg.Graph, s.lambda2); thr > s.target {
				s.target = thr
			}
			s.bound = diffusion.DiscreteBound(cfg.Graph, s.lambda2, phi0)
			s.boundName = "Theorem 6"
		case cfg.Algorithm == RandomPartners && cfg.Mode == Continuous && phi0 > 1:
			s.bound = 120 * math.Log(phi0)
			s.boundName = "Theorem 12 (c=1)"
		case cfg.Algorithm == RandomPartners && cfg.Mode == Discrete:
			thr := randpair.DiscreteThreshold(n)
			if thr > s.target {
				s.target = thr
			}
			if phi0 > thr {
				s.bound = 240 * math.Log(phi0/thr)
				s.boundName = "Theorem 14 (c=1)"
			}
		}
	}
	if phi0 <= s.target {
		s.rebalanced = 0
	}
	return s, nil
}

// Config returns the session's configuration with defaults filled in.
func (s *Session) Config() Config { return s.cfg }

// Rounds returns the number of committed rounds.
func (s *Session) Rounds() int { return s.rounds }

// Phi returns the most recently committed potential (Φ⁰ before the first
// Commit).
func (s *Session) Phi() float64 { return s.trace[len(s.trace)-1] }

// Target returns the convergence target: ε·Φ⁰, raised to the discrete
// threshold where the theorems demand one.
func (s *Session) Target() float64 { return s.target }

// Horizon returns the resolved round cap: cfg.MaxRounds when positive,
// otherwise 16× the theorem bound + 64 (10⁶ when no bound applies) for
// static runs or scenario.DefaultHorizon for scenario runs.
func (s *Session) Horizon() int {
	if s.cfg.MaxRounds > 0 {
		return s.cfg.MaxRounds
	}
	if !s.cfg.Scenario.IsStatic() {
		return scenario.DefaultHorizon
	}
	if s.bound > 0 {
		return int(16*s.bound) + 64
	}
	return 1_000_000
}

// Step advances the stepper one synchronous balancing round and opens the
// round: the caller must Commit (optionally after Inject) before stepping
// again.
func (s *Session) Step() error {
	if s.closed {
		return errSessionClosed
	}
	if s.midRound {
		return errors.New("core: Step called twice without Commit")
	}
	if s.phases.Enabled() {
		t0 := time.Now()
		s.sys.Step()
		s.phases.Observe(obs.PhaseStep, time.Since(t0))
	} else {
		s.sys.Step()
	}
	s.midRound = true
	return nil
}

// Inject lands arrivals in the stepper's live load state mid-round — after
// Step, before Commit — returning the total actually injected (discrete
// amounts round to whole tokens; non-positive amounts and out-of-range
// nodes are skipped). Restricting injection to mid-round keeps every
// trajectory expressible as a trace:<file> scenario, which is what makes
// live sessions replayable through the grid.
func (s *Session) Inject(arrivals []scenario.Arrival) (float64, error) {
	if s.closed {
		return 0, errSessionClosed
	}
	if !s.midRound {
		return 0, errors.New("core: Inject outside a round (call Step first)")
	}
	var t0 time.Time
	if s.phases.Enabled() {
		t0 = time.Now()
	}
	total, err := inject(s.sys, s.cfg.Mode, arrivals)
	if s.phases.Enabled() {
		s.phases.Observe(obs.PhaseInject, time.Since(t0))
	}
	if err != nil {
		return 0, err
	}
	s.injected += total
	return total, nil
}

// SwapGraph activates g, rebuilding the stepper on the current loads with
// the persistent algorithm RNG. A no-op when g is already active; only
// legal between rounds. The base graph's spectra go through the shared
// cache (it recurs across every unit of its topology); churned per-round
// graphs use a cache that dies with the session, so one-shot subgraphs
// never pollute — or spill to disk from — the process-wide cache.
func (s *Session) SwapGraph(g *graph.G) error {
	if s.closed {
		return errSessionClosed
	}
	if g == nil {
		return errors.New("core: SwapGraph(nil)")
	}
	if s.midRound {
		return errors.New("core: SwapGraph mid-round (Commit first)")
	}
	if g == s.g {
		return nil
	}
	spectra := s.runSpectra
	if g == s.base {
		spectra = speccache.Shared()
	}
	var t0 time.Time
	if s.phases.Enabled() {
		t0 = time.Now()
	}
	sys, err := buildSystemOn(s.cfg, g, currentLoads(s.sys, s.cfg.Mode), s.algoRNG, spectra)
	if s.phases.Enabled() {
		s.phases.Observe(obs.PhaseGraphSwap, time.Since(t0))
	}
	if err != nil {
		return err
	}
	s.g, s.sys = g, sys
	return nil
}

// Commit closes the round: observes the potential, appends it to the
// trace, updates the peak and the rebalance bookkeeping, and returns the
// new Φ.
func (s *Session) Commit() (float64, error) {
	if s.closed {
		return 0, errSessionClosed
	}
	if !s.midRound {
		return 0, errors.New("core: Commit without Step")
	}
	var t0 time.Time
	if s.phases.Enabled() {
		t0 = time.Now()
	}
	phi := s.sys.Potential()
	if s.phases.Enabled() {
		s.phases.Observe(obs.PhaseCommit, time.Since(t0))
	}
	s.rounds++
	s.trace = append(s.trace, phi)
	if phi > s.peak {
		s.peak = phi
	}
	switch {
	case s.injected > 0:
		s.lastEvent, s.rebalanced = s.rounds, -1
	case s.rebalanced < 0 && phi <= s.target:
		s.rebalanced = s.rounds
	}
	s.injected = 0
	s.midRound = false
	return phi, nil
}

// Loads returns the stepper's live load state as a float vector: the
// continuous vector itself (no copy — treat as read-only), or a fresh
// float view of the token counts. This is the view scenario arrival
// processes observe.
func (s *Session) Loads() []float64 {
	return currentLoads(s.sys, s.cfg.Mode)
}

// Snapshot returns a copy of the per-node load state, safe to retain.
func (s *Session) Snapshot() []float64 {
	live := currentLoads(s.sys, s.cfg.Mode)
	out := make([]float64, len(live))
	copy(out, live)
	return out
}

// Metrics returns a point-in-time view of the session.
func (s *Session) Metrics() SessionMetrics {
	m := SessionMetrics{
		Rounds:          s.rounds,
		Phi:             s.Phi(),
		PhiStart:        s.trace[0],
		PeakPhi:         s.peak,
		Target:          s.target,
		Converged:       s.Phi() <= s.target,
		Lambda2:         s.lambda2,
		Bound:           s.bound,
		BoundName:       s.boundName,
		SteadyRMS:       steadyRMS(s.trace, s.base.N()),
		RebalanceRounds: -1,
	}
	if s.rebalanced >= 0 {
		m.RebalanceRounds = s.rebalanced - s.lastEvent
	}
	return m
}

// Close seals the session and reports the run in Balance's Result form.
// The theorem bound is reported for static sessions; the scenario metrics
// (PeakPhi, SteadyRMS, RebalanceRounds) for scenario sessions — matching
// what Balance has always reported for each kind of run.
func (s *Session) Close() Result {
	s.closed = true
	res := Result{
		Algorithm: s.cfg.Algorithm,
		Mode:      s.cfg.Mode,
		Rounds:    s.rounds,
		Converged: s.Phi() <= s.target,
		PhiStart:  s.trace[0],
		PhiEnd:    s.Phi(),
		Trace:     s.trace,
		Lambda2:   s.lambda2,
		Delta:     s.base.MaxDegree(),
	}
	if s.cfg.Scenario.IsStatic() {
		res.Bound = s.bound
		res.BoundName = s.boundName
		return res
	}
	res.PeakPhi = s.peak
	if s.rebalanced >= 0 {
		res.RebalanceRounds = s.rebalanced - s.lastEvent
	}
	res.SteadyRMS = steadyRMS(s.trace, s.base.N())
	return res
}

// steadyRMS is the mean RMS discrepancy √(Φ/n) over the final quarter of
// the trajectory (at least one round) — the steady-state metric scenario
// runs report.
func steadyRMS(trace []float64, n int) float64 {
	q := len(trace) / 4
	if q < 1 {
		q = 1
	}
	var sum float64
	for _, p := range trace[len(trace)-q:] {
		sum += math.Sqrt(p / float64(n))
	}
	return sum / float64(q)
}
