package diffusion

import (
	"math"

	"repro/internal/graph"
	"repro/internal/load"
	"repro/internal/parallel"
)

// DiscreteFirstOrder is the discrete first-order scheme of Muthukrishnan,
// Ghosh and Schultz [15]: the continuous rule Lᵗ⁺¹ = M·Lᵗ with uniform
// α = 1/(δ+1), rounded down to integral transfers — the heavier endpoint
// of every edge sends ⌊α·(ℓᵢ−ℓⱼ)⌋ tokens.
//
// [15] show this scheme reduces the potential to O(δ²n²/ε²) in
// O(log Φ⁰/(1−(1+ε)γ²)) steps; the paper's §3 claims its own Theorem 6
// threshold (64δ³n/λ₂ — linear in n) is stronger than [15]'s
// quadratic-in-n residual. Experiment E17 measures both residuals side by
// side across n.
type DiscreteFirstOrder struct {
	G       *graph.G
	Load    *load.Discrete
	Alpha   float64
	Workers int

	next []int64
}

// NewDiscreteFirstOrder creates the scheme with α = 1/(δ+1).
func NewDiscreteFirstOrder(g *graph.G, initial []int64) *DiscreteFirstOrder {
	if len(initial) != g.N() {
		panic("diffusion: initial token length mismatch")
	}
	return &DiscreteFirstOrder{
		G:     g,
		Load:  load.NewDiscrete(initial),
		Alpha: 1 / float64(g.MaxDegree()+1),
	}
}

// Step advances one synchronous round: for each edge the heavier endpoint
// sends ⌊α·diff⌋ tokens, all flows computed from the round-start counts.
func (d *DiscreteFirstOrder) Step() {
	g, cur := d.G, d.Load.Tokens()
	n := g.N()
	if d.next == nil {
		d.next = make([]int64, n)
	}
	alpha := d.Alpha
	off, tgt := g.CSR()
	parallel.For(n, parallel.StepperWorkers(d.Workers), func(i int) {
		li := cur[i]
		acc := li
		for _, j := range tgt[off[i]:off[i+1]] {
			lj := cur[j]
			if li == lj {
				continue
			}
			diff := li - lj
			abs := diff
			if abs < 0 {
				abs = -abs
			}
			w := int64(math.Floor(alpha * float64(abs)))
			if w == 0 {
				continue
			}
			if diff > 0 {
				acc -= w
			} else {
				acc += w
			}
		}
		d.next[i] = acc
	})
	copy(cur, d.next)
}

// Potential returns Φ of the current distribution.
func (d *DiscreteFirstOrder) Potential() float64 { return d.Load.Potential() }

// MGSResidualShape returns the residual-potential shape of [15]'s
// Theorem 4 for comparison tables: δ²·n²/ε² with ε = 1 (the constant the
// paper's §3 remark contrasts against its own 64δ³n/λ₂).
func MGSResidualShape(g *graph.G) float64 {
	d := float64(g.MaxDegree())
	n := float64(g.N())
	return d * d * n * n
}

// FixedPoint reports whether a full round would move no token (used by the
// residual experiments to detect termination exactly).
func (d *DiscreteFirstOrder) FixedPoint() bool {
	g, cur := d.G, d.Load.Tokens()
	alpha := d.Alpha
	for _, e := range g.Edges() {
		diff := cur[e.U] - cur[e.V]
		if diff < 0 {
			diff = -diff
		}
		if int64(math.Floor(alpha*float64(diff))) != 0 {
			return false
		}
	}
	return true
}

// DiscreteFixedPoint is the Algorithm 1 analogue of FixedPoint.
func DiscreteFixedPoint(g *graph.G, tokens []int64) bool {
	for _, e := range g.Edges() {
		li, lj := float64(tokens[e.U]), float64(tokens[e.V])
		if int64(EdgeWeight(g, e.U, e.V, li, lj)) != 0 {
			return false
		}
	}
	return true
}
