package orchestrator

import (
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/batch"
)

func testSpec() batch.Spec {
	return batch.Spec{
		Topologies: []string{"cycle", "path"},
		Algorithms: []string{"diffusion"},
		Modes:      []string{"continuous"},
		Workloads:  []string{"spike", "uniform"},
		Seeds:      []int64{1, 2},
		N:          16,
	}
}

func TestNewPlanSplitsExhaustively(t *testing.T) {
	spec := testSpec() // 2*1*1*2*2 = 8 units
	p, err := NewPlan(spec, 3, "out")
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalUnits() != 8 {
		t.Fatalf("TotalUnits = %d, want 8", p.TotalUnits())
	}
	sum := 0
	for i, sh := range p.Shards {
		if sh.Index != i || sh.Count != 3 {
			t.Fatalf("shard %d mislabeled: %+v", i, sh)
		}
		if want := filepath.Join("out", "shard-"+strconv.Itoa(i)+".jsonl"); sh.Journal != want {
			t.Fatalf("shard %d journal = %q, want %q", i, sh.Journal, want)
		}
		sum += sh.Units
	}
	if sum != 8 {
		t.Fatalf("shard unit counts sum to %d, want 8", sum)
	}
}

// TestNewPlanEmptyShards: m beyond the unit count plans empty shards (they
// journal a lone header and merge cleanly) rather than failing.
func TestNewPlanEmptyShards(t *testing.T) {
	p, err := NewPlan(testSpec(), 10, "out")
	if err != nil {
		t.Fatal(err)
	}
	empty := 0
	for _, sh := range p.Shards {
		if sh.Units == 0 {
			empty++
		}
	}
	if empty != 2 {
		t.Fatalf("%d empty shards, want 2 (10 shards, 8 units)", empty)
	}
}

func TestNewPlanRejects(t *testing.T) {
	if _, err := NewPlan(testSpec(), 0, "out"); err == nil {
		t.Fatal("m=0 accepted")
	}
	sharded, err := testSpec().Shard(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPlan(sharded, 3, "out"); err == nil {
		t.Fatal("already-sharded spec accepted")
	}
	bad := testSpec()
	bad.Topologies = nil
	if _, err := NewPlan(bad, 3, "out"); err == nil {
		t.Fatal("unexpandable spec accepted")
	}
}

// TestShardArgsRoundTrip: the planned flags must reproduce the spec's
// effective values exactly — floats included — or the children would sweep
// a subtly different grid than the merge validates against.
func TestShardArgsRoundTrip(t *testing.T) {
	spec := testSpec()
	spec.Epsilon = 1e-5 / 3 // not representable as a short decimal
	spec.Scale = 12345.6789
	spec.MaxRounds = 77
	spec.Workers = 4
	p, err := NewPlan(spec, 2, "d")
	if err != nil {
		t.Fatal(err)
	}
	args := p.ShardArgs(1, false)
	get := func(flag string) string {
		for i, a := range args {
			if a == flag && i+1 < len(args) {
				return args[i+1]
			}
		}
		t.Fatalf("flag %s missing from %v", flag, args)
		return ""
	}
	if eps, err := strconv.ParseFloat(get("-eps"), 64); err != nil || eps != spec.Epsilon {
		t.Fatalf("-eps %q does not round-trip to %v", get("-eps"), spec.Epsilon)
	}
	if sc, err := strconv.ParseFloat(get("-scale"), 64); err != nil || sc != spec.Scale {
		t.Fatalf("-scale %q does not round-trip to %v", get("-scale"), spec.Scale)
	}
	if get("-shard") != "1/2" || get("-rounds") != "77" || get("-parallel") != "4" {
		t.Fatalf("bad shard args: %v", args)
	}
	if get("-out") != filepath.Join("d", "shard-1.jsonl") {
		t.Fatalf("bad -out: %v", args)
	}
	if strings.Contains(strings.Join(args, " "), "-resume") {
		t.Fatalf("fresh args carry -resume: %v", args)
	}
	resumed := strings.Join(p.ShardArgs(1, true), " ")
	if !strings.Contains(resumed, "-resume "+filepath.Join("d", "shard-1.jsonl")) {
		t.Fatalf("resume args missing -resume: %v", resumed)
	}
}

// TestGridArgsRoundWorkers: the children must run the round-level split
// the plan was made with — a pinned count passes through, auto re-tunes
// per child, and the serial default stays off the command line (older
// lbbench binaries would reject the unknown flag).
func TestGridArgsRoundWorkers(t *testing.T) {
	for _, c := range []struct {
		rw   int
		want string // "" = flag absent
	}{
		{0, ""},
		{1, ""},
		{6, "6"},
		{-1, "auto"},
	} {
		spec := testSpec()
		spec.RoundWorkers = c.rw
		p, err := NewPlan(spec, 2, "d")
		if err != nil {
			t.Fatal(err)
		}
		args := p.GridArgs()
		got := ""
		for i, a := range args {
			if a == "-round-workers" && i+1 < len(args) {
				got = args[i+1]
			}
		}
		if got != c.want {
			t.Fatalf("RoundWorkers=%d: -round-workers %q in %v, want %q", c.rw, got, args, c.want)
		}
	}
}
