package markov

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/spectral"
)

func TestPsiMatrixCompleteGraph(t *testing.T) {
	// K_n with α = 1/n balances a unit spike in a single step, so only the
	// t=0 term contributes: a spike at i differs by 1 across the n−1 edges
	// at i ⇒ Ψ = n−1.
	g := graph.Complete(8)
	m := spectral.DiffusionMatrix(g)
	psi := PsiMatrix(g, m, 50)
	if math.Abs(psi-7) > 1e-9 {
		t.Fatalf("Ψ(K8) = %v, want 7", psi)
	}
}

func TestPsiMatrixConvergesWithHorizon(t *testing.T) {
	// The series must saturate: doubling a sufficient horizon changes Ψ
	// only marginally.
	g := graph.Torus(4, 4)
	m := spectral.DiffusionMatrix(g)
	a := PsiMatrix(g, m, 200)
	b := PsiMatrix(g, m, 400)
	if b < a {
		t.Fatalf("Ψ must be monotone in horizon: %v then %v", a, b)
	}
	if (b-a)/b > 1e-6 {
		t.Fatalf("Ψ not saturated: %v → %v", a, b)
	}
}

func TestPsiMatrixBoundShape(t *testing.T) {
	// [16]: Ψ(M) = O(δ·log n/µ). Check the measured value sits within a
	// moderate constant of the shape on several topologies.
	for _, g := range []*graph.G{graph.Cycle(16), graph.Torus(4, 4), graph.Hypercube(4), graph.Complete(12)} {
		m := spectral.DiffusionMatrix(g)
		mu, err := spectral.EigenGap(m)
		if err != nil {
			t.Fatal(err)
		}
		horizon := int(20/mu) + 50
		psi := PsiMatrix(g, m, horizon)
		shape := PsiBoundShape(g, mu)
		if psi <= 0 {
			t.Fatalf("%s: Ψ = %v", g.Name(), psi)
		}
		if psi > 20*shape {
			t.Fatalf("%s: Ψ = %v far above bound shape %v", g.Name(), psi, shape)
		}
	}
}

func TestPsiMatrixDimensionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PsiMatrix(graph.Cycle(4), spectral.DiffusionMatrix(graph.Cycle(6)), 10)
}
