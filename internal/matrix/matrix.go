// Package matrix provides dense matrix and vector primitives used by the
// spectral solvers and the diffusion schemes.
//
// The package is deliberately small and allocation-conscious: the spectral
// code calls into it from tight loops, and the simulator uses Vector as the
// canonical representation of a continuous load distribution. Everything is
// float64 and row-major. No external dependencies.
package matrix

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrDimension is returned (or wrapped) when operand shapes are incompatible.
var ErrDimension = errors.New("matrix: dimension mismatch")

// Dense is a row-major dense matrix.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense allocates a rows×cols zero matrix.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic("matrix: negative dimension")
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewDenseFrom builds a matrix from a slice of rows. All rows must have the
// same length. The data is copied.
func NewDenseFrom(rows [][]float64) (*Dense, error) {
	r := len(rows)
	if r == 0 {
		return NewDense(0, 0), nil
	}
	c := len(rows[0])
	m := NewDense(r, c)
	for i, row := range rows {
		if len(row) != c {
			return nil, fmt.Errorf("%w: row %d has %d entries, want %d", ErrDimension, i, len(row), c)
		}
		copy(m.data[i*c:(i+1)*c], row)
	}
	return m, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at (i, j).
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at (i, j).
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

// Add adds v to the element at (i, j).
func (m *Dense) Add(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] += v
}

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Row returns a copy of row i.
func (m *Dense) Row(i int) Vector {
	out := make(Vector, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// RawRow returns row i as a shared slice (no copy). Callers must not resize.
func (m *Dense) RawRow(i int) []float64 {
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// Transpose returns mᵀ as a new matrix.
func (m *Dense) Transpose() *Dense {
	out := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.data[j*out.cols+i] = m.data[i*m.cols+j]
		}
	}
	return out
}

// Scale multiplies every entry by s, in place, and returns m.
func (m *Dense) Scale(s float64) *Dense {
	for i := range m.data {
		m.data[i] *= s
	}
	return m
}

// AddMat returns m + b as a new matrix.
func (m *Dense) AddMat(b *Dense) (*Dense, error) {
	if m.rows != b.rows || m.cols != b.cols {
		return nil, fmt.Errorf("%w: %dx%d + %dx%d", ErrDimension, m.rows, m.cols, b.rows, b.cols)
	}
	out := m.Clone()
	for i := range out.data {
		out.data[i] += b.data[i]
	}
	return out, nil
}

// SubMat returns m − b as a new matrix.
func (m *Dense) SubMat(b *Dense) (*Dense, error) {
	if m.rows != b.rows || m.cols != b.cols {
		return nil, fmt.Errorf("%w: %dx%d - %dx%d", ErrDimension, m.rows, m.cols, b.rows, b.cols)
	}
	out := m.Clone()
	for i := range out.data {
		out.data[i] -= b.data[i]
	}
	return out, nil
}

// Mul returns m·b as a new matrix.
func (m *Dense) Mul(b *Dense) (*Dense, error) {
	if m.cols != b.rows {
		return nil, fmt.Errorf("%w: %dx%d * %dx%d", ErrDimension, m.rows, m.cols, b.rows, b.cols)
	}
	out := NewDense(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		mi := m.data[i*m.cols : (i+1)*m.cols]
		oi := out.data[i*out.cols : (i+1)*out.cols]
		for k, mik := range mi {
			if mik == 0 {
				continue
			}
			bk := b.data[k*b.cols : (k+1)*b.cols]
			for j, bkj := range bk {
				oi[j] += mik * bkj
			}
		}
	}
	return out, nil
}

// MulVec computes m·x into a new vector.
func (m *Dense) MulVec(x Vector) (Vector, error) {
	if m.cols != len(x) {
		return nil, fmt.Errorf("%w: %dx%d * vec(%d)", ErrDimension, m.rows, m.cols, len(x))
	}
	out := make(Vector, m.rows)
	m.MulVecTo(out, x)
	return out, nil
}

// MulVecTo computes m·x into dst. dst must have length m.Rows() and x length
// m.Cols(); the receiver panics otherwise (hot-path helper).
func (m *Dense) MulVecTo(dst, x Vector) {
	if len(dst) != m.rows || len(x) != m.cols {
		panic("matrix: MulVecTo dimension mismatch")
	}
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
}

// IsSymmetric reports whether |m[i][j]−m[j][i]| ≤ tol for all i, j.
func (m *Dense) IsSymmetric(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// FrobeniusNorm returns sqrt(ΣΣ m[i][j]²).
func (m *Dense) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute entry.
func (m *Dense) MaxAbs() float64 {
	var s float64
	for _, v := range m.data {
		if a := math.Abs(v); a > s {
			s = a
		}
	}
	return s
}

// RowSums returns the vector of row sums. For a stochastic matrix every
// entry is 1.
func (m *Dense) RowSums() Vector {
	out := make(Vector, m.rows)
	for i := 0; i < m.rows; i++ {
		var s float64
		for _, v := range m.data[i*m.cols : (i+1)*m.cols] {
			s += v
		}
		out[i] = s
	}
	return out
}

// String renders the matrix for debugging; large matrices are abbreviated.
func (m *Dense) String() string {
	const maxShow = 8
	var b strings.Builder
	fmt.Fprintf(&b, "Dense(%dx%d)", m.rows, m.cols)
	if m.rows > maxShow || m.cols > maxShow {
		return b.String()
	}
	for i := 0; i < m.rows; i++ {
		b.WriteString("\n  [")
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%8.4f", m.At(i, j))
		}
		b.WriteByte(']')
	}
	return b.String()
}
