package hetero

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/load"
)

// Discrete is the token-level heterogeneous balancer: the continuous rule
// with transfers floored to whole tokens, the [9]/[11] model of indivisible
// unit-size tokens on heterogeneous nodes. Like the discrete Algorithm 1 it
// cannot reach the exact proportional state; it stalls once every edge's
// fractional transfer is below one token.
type Discrete struct {
	G      *graph.G
	Load   *load.Discrete
	Speeds []float64

	next []int64
}

// NewDiscrete validates speeds and wraps a copy of the initial tokens.
func NewDiscrete(g *graph.G, initial []int64, speeds []float64) (*Discrete, error) {
	if len(initial) != g.N() || len(speeds) != g.N() {
		return nil, fmt.Errorf("hetero: lengths tokens=%d speeds=%d for n=%d", len(initial), len(speeds), g.N())
	}
	for i, c := range speeds {
		if !(c > 0) || math.IsInf(c, 0) {
			return nil, fmt.Errorf("hetero: invalid speed %v at node %d", c, i)
		}
	}
	sp := append([]float64(nil), speeds...)
	return &Discrete{G: g, Load: load.NewDiscrete(initial), Speeds: sp}, nil
}

// Step advances one synchronous round with floored transfers.
func (h *Discrete) Step() {
	g, cur := h.G, h.Load.Tokens()
	n := g.N()
	if h.next == nil {
		h.next = make([]int64, n)
	}
	for i := 0; i < n; i++ {
		acc := cur[i]
		for _, j := range g.Neighbors(i) {
			acc -= h.transfer(i, j, cur[i], cur[j])
		}
		h.next[i] = acc
	}
	copy(cur, h.next)
}

// transfer returns the whole-token amount i sends to j (negative: receives)
// for round-start counts li, lj. Both endpoints compute the same value, so
// conservation is structural.
func (h *Discrete) transfer(i, j int, li, lj int64) int64 {
	ci, cj := h.Speeds[i], h.Speeds[j]
	diff := float64(li)/ci - float64(lj)/cj
	if diff == 0 {
		return 0
	}
	cmin := ci
	if cj < cmin {
		cmin = cj
	}
	di, dj := h.G.Degree(i), h.G.Degree(j)
	if dj > di {
		di = dj
	}
	w := diff * cmin / (4 * float64(di))
	if w > 0 {
		return int64(math.Floor(w))
	}
	return -int64(math.Floor(-w))
}

// Omega returns the fair per-speed share ω = Σℓ/Σc.
func (h *Discrete) Omega() float64 {
	var sumC float64
	for _, c := range h.Speeds {
		sumC += c
	}
	return float64(h.Load.Total()) / sumC
}

// Potential returns the speed-weighted potential Φ_c = Σ cᵢ(ℓᵢ/cᵢ − ω)².
func (h *Discrete) Potential() float64 {
	omega := h.Omega()
	var s float64
	for i, c := range h.Speeds {
		d := float64(h.Load.At(i))/c - omega
		s += c * d * d
	}
	return s
}

// FixedPoint reports whether a full round would move no token.
func (h *Discrete) FixedPoint() bool {
	cur := h.Load.Tokens()
	for _, e := range h.G.Edges() {
		if h.transfer(e.U, e.V, cur[e.U], cur[e.V]) != 0 {
			return false
		}
	}
	return true
}
