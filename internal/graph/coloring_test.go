package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEdgeColoringEmptyGraph(t *testing.T) {
	g := NewBuilder("empty", 3).MustFinish()
	colors, num := EdgeColoring(g)
	if len(colors) != 0 || num != 0 {
		t.Fatalf("empty graph coloring: %v/%d", colors, num)
	}
}

func TestEdgeColoringSingleEdge(t *testing.T) {
	b := NewBuilder("one", 2)
	b.AddEdge(0, 1)
	colors, num := EdgeColoring(b.MustFinish())
	if num != 1 || colors[0] != 0 {
		t.Fatalf("single edge: %v/%d", colors, num)
	}
}

func TestEdgeColoringHypercubeUsesFewColors(t *testing.T) {
	// The greedy bound is 2δ−1; on structured graphs greedy usually lands
	// near δ. Only the bound is contractual.
	g := Hypercube(4)
	_, num := EdgeColoring(g)
	if num > 2*g.MaxDegree()-1 {
		t.Fatalf("%d colors exceeds greedy bound %d", num, 2*g.MaxDegree()-1)
	}
	if num < g.MaxDegree() {
		t.Fatalf("%d colors below δ=%d (impossible for a proper coloring)", num, g.MaxDegree())
	}
}

func TestColorClassesPartitionEdges(t *testing.T) {
	g := Petersen()
	colors, num := EdgeColoring(g)
	classes := ColorClasses(g, colors, num)
	total := 0
	for _, c := range classes {
		total += len(c)
	}
	if total != g.M() {
		t.Fatalf("classes hold %d edges, graph has %d", total, g.M())
	}
}

// Property: greedy coloring is proper and within the 2δ−1 bound on random
// graphs.
func TestEdgeColoringProperProperty(t *testing.T) {
	f := func(seed uint8) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		n := 2 + r.Intn(20)
		g := ErdosRenyi(n, 0.4, r)
		colors, num := EdgeColoring(g)
		if g.M() > 0 && num > 2*g.MaxDegree()-1 {
			return false
		}
		seen := map[[2]int]bool{}
		for k, e := range g.Edges() {
			for _, v := range []int{e.U, e.V} {
				key := [2]int{v, colors[k]}
				if seen[key] {
					return false
				}
				seen[key] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
