package batch

import "repro/internal/obs"

// Always-on engine metrics on the process-wide registry. These are
// per-unit events — one atomic op against work that costs milliseconds to
// minutes — so they need no enable switch; the round-level hot loop inside
// a unit stays untouched.
var (
	unitsDone = obs.Default().Counter("batch_units_total",
		"Sweep units by final disposition.", obs.L("result", "done"))
	unitsFailed = obs.Default().Counter("batch_units_total",
		"Sweep units by final disposition.", obs.L("result", "failed"))
	unitsReplayed = obs.Default().Counter("batch_units_total",
		"Sweep units by final disposition.", obs.L("result", "replayed"))
	unitWall = obs.Default().Histogram("batch_unit_seconds",
		"Wall time per executed sweep unit.", obs.ExpBuckets(1e-4, 4, 14))
	sinkWait = obs.Default().Histogram("batch_sink_wait_seconds",
		"Time a finished worker blocked on the sequencer's ordered-delivery window.",
		obs.ExpBuckets(1e-6, 4, 14))
)
