// Heterocluster: the heterogeneous extension in action. A mixed rack of
// fast and slow machines (speeds 4 and 1) on a torus receives a skewed
// batch; the generalized Algorithm 1 of internal/hetero balances load
// *proportionally to speed*, so fast machines end with 4× the work of slow
// ones — the fair state of Elsässer, Monien and Preis [9].
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/hetero"
	"repro/internal/workload"
)

func main() {
	const (
		side  = 8
		total = 1_000_000
		seed  = 11
	)
	g := graph.Torus(side, side)
	rng := rand.New(rand.NewSource(seed))

	// Checkerboard of fast (speed 4) and slow (speed 1) machines.
	speeds := make([]float64, g.N())
	fast := 0
	for i := range speeds {
		if (i/side+i%side)%2 == 0 {
			speeds[i] = 4
			fast++
		} else {
			speeds[i] = 1
		}
	}

	init := workload.Continuous(workload.PowerLaw, g.N(), total/float64(g.N()), rng)
	h, err := hetero.NewContinuous(g, init, speeds)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("cluster : %s — %d fast (speed 4), %d slow (speed 1)\n", g, fast, g.N()-fast)
	fmt.Printf("total   : %.4g load, skewed power-law arrival\n", h.Load.Total())
	fmt.Printf("fair ω  : %.4g load per unit speed\n\n", h.Omega())

	fmt.Printf("%-8s %-14s %-18s\n", "round", "Φ_c", "max rel deviation")
	round := 0
	for ; h.MaxRelativeDeviation() > 1e-6 && round < 100000; round++ {
		if round%50 == 0 {
			fmt.Printf("%-8d %-14.6g %-18.6g\n", round, h.Potential(), h.MaxRelativeDeviation())
		}
		h.Step()
	}
	fmt.Printf("%-8d %-14.6g %-18.6g\n\n", round, h.Potential(), h.MaxRelativeDeviation())

	omega := h.Omega()
	fmt.Printf("converged in %d rounds\n", round)
	fmt.Printf("fast node 0 load: %.4f (target %.4f)\n", h.Load.At(0), 4*omega)
	fmt.Printf("slow node 1 load: %.4f (target %.4f)\n", h.Load.At(1), omega)
	fmt.Println("\nWith unit speeds this scheme is exactly the paper's Algorithm 1;")
	fmt.Println("the speed-weighted potential Φ_c plays the role Φ plays in Theorem 4.")
}
