package load

import (
	"math"
	"testing"
)

// FuzzLemma10Identity fuzzes the Lemma 10 identity
// ΣᵢΣⱼ(ℓᵢ−ℓⱼ)² = 2n·Φ(L) on arbitrary 4-node loads plus a derived longer
// vector; beyond the property test this explores adversarial float values.
func FuzzLemma10Identity(f *testing.F) {
	f.Add(1.0, 2.0, 3.0, 4.0)
	f.Add(0.0, 0.0, 0.0, 0.0)
	f.Add(1e9, -1e9, 1e-9, 0.0)
	f.Add(123.25, 123.25, 123.25, 123.0)
	f.Fuzz(func(t *testing.T, a, b, c, d float64) {
		for _, v := range []float64{a, b, c, d} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				t.Skip()
			}
		}
		x := []float64{a, b, c, d, (a + b) / 2, c - d}
		n := float64(len(x))
		fast := PairwiseSquaredSum(x)
		var direct float64
		for i := range x {
			for j := range x {
				dd := x[i] - x[j]
				direct += dd * dd
			}
		}
		var mean float64
		for _, v := range x {
			mean += v
		}
		mean /= n
		rhs := 2 * n * PotentialAround(x, mean)
		scale := 1 + math.Abs(direct)
		if math.Abs(fast-direct) > 1e-6*scale {
			t.Fatalf("closed form %v vs direct %v", fast, direct)
		}
		if math.Abs(direct-rhs) > 1e-6*scale {
			t.Fatalf("identity broken: ΣΣ=%v, 2nΦ=%v", direct, rhs)
		}
	})
}

// FuzzMoveConservesAndHelps fuzzes the microscopic Lemma 1 fact: moving
// any fraction of the difference downhill conserves total and does not
// raise Φ.
func FuzzMoveConservesAndHelps(f *testing.F) {
	f.Add(10.0, 2.0, 0.5)
	f.Add(1.0, 1.0, 1.0)
	f.Add(100.0, 0.0, 0.0)
	f.Fuzz(func(t *testing.T, hi, lo, frac float64) {
		if math.IsNaN(hi) || math.IsNaN(lo) || math.IsNaN(frac) ||
			math.Abs(hi) > 1e12 || math.Abs(lo) > 1e12 || frac < 0 || frac > 1 {
			t.Skip()
		}
		if hi < lo {
			hi, lo = lo, hi
		}
		c := NewContinuous([]float64{hi, lo, (hi + lo) / 3})
		total := c.Total()
		phi := c.Potential()
		c.Move(0, 1, (hi-lo)*frac)
		if math.Abs(c.Total()-total) > 1e-6*(1+math.Abs(total)) {
			t.Fatalf("total changed: %v → %v", total, c.Total())
		}
		if c.Potential() > phi*(1+1e-9)+1e-9 {
			t.Fatalf("Φ rose: %v → %v", phi, c.Potential())
		}
	})
}
