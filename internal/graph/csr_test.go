package graph

import (
	"math/rand"
	"testing"
)

// TestCSRLayoutContract verifies every clause of the CSR accessor's
// documented contract on a spread of topologies, including the one the
// steppers' bit-identity depends on: each CSR row replays Neighbors(i)
// element-for-element, in the same order.
func TestCSRLayoutContract(t *testing.T) {
	cases := []*G{
		Path(2),
		Cycle(9),
		Torus(5, 7),
		Hypercube(6),
		DeBruijn(6),
		Complete(12),
		Star(15),
		RandomRegular(40, 4, rand.New(rand.NewSource(3))),
		ErdosRenyi(30, 0.2, rand.New(rand.NewSource(5))), // irregular degrees
	}
	for _, g := range cases {
		off, tgt := g.CSR()
		if len(off) != g.N()+1 {
			t.Fatalf("%s: len(offsets) = %d, want N()+1 = %d", g.Name(), len(off), g.N()+1)
		}
		if off[0] != 0 || int(off[g.N()]) != 2*g.M() {
			t.Fatalf("%s: offsets span [%d, %d], want [0, %d]", g.Name(), off[0], off[g.N()], 2*g.M())
		}
		if len(tgt) != 2*g.M() {
			t.Fatalf("%s: len(targets) = %d, want 2·M() = %d", g.Name(), len(tgt), 2*g.M())
		}
		for i := 0; i < g.N(); i++ {
			row := tgt[off[i]:off[i+1]]
			nbrs := g.Neighbors(i)
			if len(row) != len(nbrs) || len(row) != g.Degree(i) {
				t.Fatalf("%s: node %d row length %d, Neighbors %d, Degree %d", g.Name(), i, len(row), len(nbrs), g.Degree(i))
			}
			for k, v := range row {
				if int(v) != nbrs[k] {
					t.Fatalf("%s: node %d position %d: CSR %d, Neighbors %d", g.Name(), i, k, v, nbrs[k])
				}
				if k > 0 && row[k-1] >= v {
					t.Fatalf("%s: node %d row not strictly ascending at position %d", g.Name(), i, k)
				}
			}
			if len(row) > 0 && &row[0] != &nbrs[0] {
				t.Fatalf("%s: node %d Neighbors does not alias the CSR targets backing", g.Name(), i)
			}
		}
	}
}

// TestCSRSingletonAndEdgeless covers the degenerate shapes: isolated nodes
// get empty rows, not missing ones.
func TestCSRSingletonAndEdgeless(t *testing.T) {
	b := NewBuilder("edgeless", 4)
	g := b.MustFinish()
	off, tgt := g.CSR()
	if len(off) != 5 || len(tgt) != 0 {
		t.Fatalf("edgeless: offsets %v, targets len %d", off, len(tgt))
	}
	for i := 0; i < 4; i++ {
		if off[i] != 0 {
			t.Fatalf("edgeless: offset[%d] = %d, want 0", i, off[i])
		}
	}
}
