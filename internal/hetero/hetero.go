// Package hetero implements diffusion load balancing on heterogeneous
// networks after Elsässer, Monien and Preis [9], which the paper's
// related-work section cites as the heterogeneous extension of its model:
// every node i has a speed cᵢ > 0, and the fair ("balanced") state gives
// node i load proportional to its speed, ℓᵢ* = cᵢ·(Σℓ)/(Σc).
//
// The scheme generalizes Algorithm 1 by comparing *normalized* loads
// ℓᵢ/cᵢ: across every edge (i, j) the heavier-per-speed endpoint sends
//
//	w_ij = (ℓᵢ/cᵢ − ℓⱼ/cⱼ) · min(cᵢ, cⱼ) / (4·max(dᵢ, dⱼ))
//
// which reduces exactly to Algorithm 1 when all speeds are 1, conserves
// total load, and strictly decreases the speed-weighted potential
// Φ_c(L) = Σᵢ cᵢ·(ℓᵢ/cᵢ − ω)², ω = Σℓ/Σc.
package hetero

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/load"
	"repro/internal/matrix"
)

// Continuous is the heterogeneous continuous diffusion stepper.
type Continuous struct {
	G      *graph.G
	Load   *load.Continuous
	Speeds []float64

	next matrix.Vector
}

// NewContinuous validates the speeds (all > 0, one per node) and wraps a
// copy of the initial loads.
func NewContinuous(g *graph.G, initial, speeds []float64) (*Continuous, error) {
	if len(initial) != g.N() || len(speeds) != g.N() {
		return nil, fmt.Errorf("hetero: lengths loads=%d speeds=%d for n=%d", len(initial), len(speeds), g.N())
	}
	for i, c := range speeds {
		if !(c > 0) || math.IsInf(c, 0) {
			return nil, fmt.Errorf("hetero: invalid speed %v at node %d", c, i)
		}
	}
	sp := append([]float64(nil), speeds...)
	return &Continuous{G: g, Load: load.NewContinuous(initial), Speeds: sp}, nil
}

// EdgeTransfer returns the signed amount the scheme moves across (i, j)
// for round-start loads li, lj: positive means i sends to j.
func (h *Continuous) EdgeTransfer(i, j int, li, lj float64) float64 {
	ci, cj := h.Speeds[i], h.Speeds[j]
	diff := li/ci - lj/cj
	if diff == 0 {
		return 0
	}
	cmin := ci
	if cj < cmin {
		cmin = cj
	}
	di, dj := h.G.Degree(i), h.G.Degree(j)
	if dj > di {
		di = dj
	}
	return diff * cmin / (4 * float64(di))
}

// Step advances one synchronous round. Like Algorithm 1, each node's next
// load is a function of the round-start vector only.
func (h *Continuous) Step() {
	g, cur := h.G, h.Load.Vector()
	n := g.N()
	if h.next == nil {
		h.next = make(matrix.Vector, n)
	}
	for i := 0; i < n; i++ {
		acc := cur[i]
		for _, j := range g.Neighbors(i) {
			acc -= h.EdgeTransfer(i, j, cur[i], cur[j])
		}
		h.next[i] = acc
	}
	copy(cur, h.next)
}

// Omega returns the fair per-speed share ω = Σℓ/Σc.
func (h *Continuous) Omega() float64 {
	var sumC float64
	for _, c := range h.Speeds {
		sumC += c
	}
	return h.Load.Total() / sumC
}

// Potential returns the speed-weighted potential Φ_c = Σ cᵢ(ℓᵢ/cᵢ − ω)².
func (h *Continuous) Potential() float64 {
	omega := h.Omega()
	var s float64
	for i, c := range h.Speeds {
		d := h.Load.At(i)/c - omega
		s += c * d * d
	}
	return s
}

// TargetLoads returns the proportional-fair target vector ℓᵢ* = cᵢ·ω.
func (h *Continuous) TargetLoads() matrix.Vector {
	omega := h.Omega()
	out := make(matrix.Vector, len(h.Speeds))
	for i, c := range h.Speeds {
		out[i] = c * omega
	}
	return out
}

// MaxRelativeDeviation returns maxᵢ |ℓᵢ/cᵢ − ω| / ω (0 when ω = 0) — the
// per-speed analogue of the discrepancy.
func (h *Continuous) MaxRelativeDeviation() float64 {
	omega := h.Omega()
	if omega == 0 {
		return 0
	}
	var m float64
	for i, c := range h.Speeds {
		if d := math.Abs(h.Load.At(i)/c-omega) / omega; d > m {
			m = d
		}
	}
	return m
}

// UniformSpeeds returns an all-ones speed vector (the homogeneous case).
func UniformSpeeds(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1
	}
	return out
}
