package core

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/batch"
)

func gridSpec() batch.Spec {
	return batch.Spec{
		Topologies: []string{"cycle", "torus", "hypercube"},
		Algorithms: []string{"diffusion", "dimexchange", "randpair"},
		Modes:      []string{"continuous", "discrete"},
		Workloads:  []string{"spike", "uniform"},
		Seeds:      []int64{1, 2},
		N:          24,
	}
}

func TestGridConvergesEverywhere(t *testing.T) {
	rep, err := GridRun(context.Background(), gridSpec())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() != 0 {
		t.Fatalf("%d units failed", rep.Failed())
	}
	for _, c := range rep.Cells {
		if !c.Converged {
			t.Fatalf("%s did not converge (Φ %v → %v in %d rounds)", c.Key(), c.PhiStart, c.PhiEnd, c.Rounds)
		}
		if c.Bound > 0 && float64(c.Rounds) > c.Bound {
			t.Fatalf("%s: %d rounds exceeds %s bound %v", c.Key(), c.Rounds, c.BoundName, c.Bound)
		}
		if c.RMSDiscrepancy < 0 {
			t.Fatalf("%s: negative discrepancy", c.Key())
		}
	}
	// Diffusion cells must carry their theorem bound.
	for _, c := range rep.Cells {
		if c.Algorithm == "diffusion" && c.WorkloadName == "spike" && c.BoundName == "" {
			t.Fatalf("%s: missing theorem bound", c.Key())
		}
	}
}

func TestGridDeterministicAcrossWorkers(t *testing.T) {
	render := func(workers int) []byte {
		spec := gridSpec()
		spec.Workers = workers
		rep, err := GridRun(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		if err := rep.RenderCSV(&b); err != nil {
			t.Fatal(err)
		}
		if err := rep.RenderJSON(&b); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	if !bytes.Equal(render(1), render(8)) {
		t.Fatal("aggregated grid output differs between workers=1 and workers=8")
	}
}

func TestGridRejectsUnknownAlgorithm(t *testing.T) {
	spec := gridSpec()
	spec.Algorithms = []string{"diffusion", "gradientdescent"}
	if _, err := GridRun(context.Background(), spec); err == nil {
		t.Fatal("unknown algorithm must fail the sweep up front")
	}
}

func TestGridUnsupportedComboIsCellError(t *testing.T) {
	// firstorder is continuous-only: its discrete cells must error without
	// sinking the rest of the sweep.
	spec := batch.Spec{
		Topologies: []string{"cycle"},
		Algorithms: []string{"diffusion", "firstorder"},
		Modes:      []string{"continuous", "discrete"},
		Workloads:  []string{"spike"},
		N:          16,
	}
	rep, err := GridRun(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	var bad, good int
	for _, c := range rep.Cells {
		switch {
		case c.Algorithm == "firstorder" && c.Mode == "discrete":
			bad++
			if !strings.Contains(c.Err, "continuous mode only") {
				t.Fatalf("expected mode error, got %q", c.Err)
			}
		default:
			good++
			if c.Err != "" || !c.Converged {
				t.Fatalf("healthy cell %s affected: %+v", c.Key(), c)
			}
		}
	}
	if bad != 1 || good != 3 {
		t.Fatalf("bad=%d good=%d, want 1/3", bad, good)
	}
}

// cancellingSink cancels the sweep after delivering `after` cells — the
// deterministic stand-in for a Ctrl-C halfway through a grid.
type cancellingSink struct {
	inner  batch.Sink
	after  int
	seen   int
	cancel context.CancelFunc
}

func (s *cancellingSink) Cell(c batch.Cell) error {
	s.seen++
	if s.seen == s.after {
		s.cancel()
	}
	return s.inner.Cell(c)
}

func (s *cancellingSink) Close() error { return s.inner.Close() }

// TestGridCancelLeavesResumableJournal interrupts a real balancing
// sweep mid-flight and checks the contract the CLI's crash-and-resume
// recipe rests on: the run returns ctx.Err(), the journal it leaves is
// valid JSONL covering every unit (clean cells plus cancellation-error
// cells), and resuming from it reproduces the uninterrupted run's CSV and
// JSON byte-for-byte.
func TestGridCancelLeavesResumableJournal(t *testing.T) {
	spec := gridSpec()

	render := func(rep *batch.Report) []byte {
		var b bytes.Buffer
		if err := rep.RenderCSV(&b); err != nil {
			t.Fatal(err)
		}
		if err := rep.RenderJSON(&b); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	fullRep, err := GridRun(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	fullOut := render(fullRep)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var journalBuf bytes.Buffer
	sink := &cancellingSink{
		inner:  batch.NewJSONLSink(&journalBuf),
		after:  len(fullRep.Cells) / 2,
		cancel: cancel,
	}
	// Serial execution makes the cut deterministic: with a pool, a slow
	// early unit can hold back the sequencer until every other unit has
	// already run, so the cancel would land after the sweep finished.
	partialSpec := spec
	partialSpec.Workers = 1
	partialRep, err := GridRun(ctx, partialSpec, GridSink(sink))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted sweep returned %v, want context.Canceled", err)
	}
	if partialRep == nil || partialRep.Failed() == 0 {
		t.Fatal("interrupted sweep reports no cancelled units")
	}

	journal, err := batch.ReadJournal(bytes.NewReader(journalBuf.Bytes()))
	if err != nil || journal.Dropped != 0 {
		t.Fatalf("interrupted journal invalid: dropped=%d err=%v", journal.Dropped, err)
	}
	if len(journal.Cells) != len(fullRep.Cells) {
		t.Fatalf("journal covers %d of %d units", len(journal.Cells), len(fullRep.Cells))
	}
	clean := 0
	for _, c := range journal.Cells {
		if c.Err == "" {
			clean++
		} else if !strings.Contains(c.Err, context.Canceled.Error()) {
			t.Fatalf("unexpected journal error %q", c.Err)
		}
	}
	if clean == 0 || clean == len(journal.Cells) {
		t.Fatalf("journal has %d clean cells of %d — not a mid-sweep cut", clean, len(journal.Cells))
	}

	for _, workers := range []int{1, 8} {
		respec := spec
		respec.Workers = workers
		resumed, err := GridRun(context.Background(), respec, GridResume(journal))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(render(resumed), fullOut) {
			t.Fatalf("workers=%d: resumed grid differs from uninterrupted run", workers)
		}
	}
}

// TestGridRejectsBadSpecUpFront exercises the Validate path through
// the public grid API: empty dimensions and duplicate seeds must fail
// before any unit runs.
func TestGridRejectsBadSpecUpFront(t *testing.T) {
	for name, mutate := range map[string]func(*batch.Spec){
		"empty topologies": func(s *batch.Spec) { s.Topologies = nil },
		"duplicate seeds":  func(s *batch.Spec) { s.Seeds = []int64{1, 1} },
		"duplicate mode":   func(s *batch.Spec) { s.Modes = []string{"continuous", "continuous"} },
	} {
		spec := gridSpec()
		mutate(&spec)
		if _, err := GridRun(context.Background(), spec); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}

// TestGridShardedMergeByteIdentical drives the whole sharded recipe
// through the real balancer: m shard processes journal their slices,
// MergeJournals reassembles them, and the resumed report matches a
// single-process sweep byte for byte without re-running a unit.
func TestGridShardedMergeByteIdentical(t *testing.T) {
	spec := batch.Spec{
		Topologies: []string{"cycle", "star"},
		Algorithms: []string{"diffusion", "dimexchange"},
		Modes:      []string{"continuous"},
		Workloads:  []string{"spike", "uniform"},
		Seeds:      []int64{1, 2},
		N:          16,
	}
	full, err := GridRun(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	var fullOut bytes.Buffer
	if err := full.RenderCSV(&fullOut); err != nil {
		t.Fatal(err)
	}

	const m = 3
	dir := t.TempDir()
	paths := make([]string, m)
	for i := 0; i < m; i++ {
		paths[i] = filepath.Join(dir, fmt.Sprintf("s%d.jsonl", i))
		sink, err := batch.CreateJSONL(paths[i])
		if err != nil {
			t.Fatal(err)
		}
		shardRep, err := GridRun(context.Background(), spec, GridShard(i, m), GridSink(sink))
		if err != nil {
			t.Fatal(err)
		}
		if err := sink.Close(); err != nil {
			t.Fatal(err)
		}
		for _, c := range shardRep.Cells {
			if c.Index%m != i {
				t.Fatalf("shard %d ran foreign unit %d", i, c.Index)
			}
		}
	}

	journal, _, err := batch.ReadMergedJournals(paths...)
	if err != nil {
		t.Fatal(err)
	}
	if len(journal.Cells) != len(full.Cells) {
		t.Fatalf("merged %d cells, want %d", len(journal.Cells), len(full.Cells))
	}
	merged, err := GridRun(context.Background(), spec, GridResume(journal))
	if err != nil {
		t.Fatal(err)
	}
	var mergedOut bytes.Buffer
	if err := merged.RenderCSV(&mergedOut); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mergedOut.Bytes(), fullOut.Bytes()) {
		t.Fatal("merged sharded sweep differs from single-process sweep")
	}
}

// TestGridStreamAggMatchesReport: the streaming-only path must fold
// the same aggregates the materialized report computes, through the real
// balancer.
func TestGridStreamAggMatchesReport(t *testing.T) {
	spec := batch.Spec{
		Topologies: []string{"cycle", "torus"},
		Algorithms: []string{"diffusion", "randpair"},
		Modes:      []string{"continuous"},
		Workloads:  []string{"spike"},
		Seeds:      []int64{1, 2},
		N:          16,
	}
	rep, err := GridRun(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	agg := batch.NewAggSink()
	if _, err := GridRun(context.Background(), spec, GridStreamOnly(), GridSink(agg)); err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(rep.Aggregates)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(agg.Report().Aggregates)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("streamed aggregates differ:\n%s\nvs\n%s", got, want)
	}
	// A bad spec is rejected before anything runs, like the other entries.
	bad := spec
	bad.Algorithms = []string{"nosuchalgo"}
	if _, err := GridRun(context.Background(), bad, GridStreamOnly(), GridSink(batch.NewAggSink())); err == nil {
		t.Fatal("streaming-only GridRun accepted an unknown algorithm")
	}
}
