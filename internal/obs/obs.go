// Package obs is the unified telemetry layer: a process-wide metrics
// registry (counters, gauges, fixed-bucket histograms with atomic hot paths
// and Prometheus text-format exposition), a span tracer emitting
// hierarchical spans to a JSONL event log and a Chrome trace-event
// (Perfetto-loadable) export, and profiling hooks (a pprof+/metrics debug
// listener, CPU/heap profile capture) shared by every layer of the system —
// cell (core.Session phase timings), sweep (batch engine unit accounting),
// and fleet (orchestrator task lifecycle).
//
// Design constraints, in order:
//
//  1. Off is free. The nil *Tracer and nil *Phases are valid receivers
//     whose methods are no-ops, and every hot-loop call site gates its
//     time.Now() pair behind the nil check, so a run with telemetry
//     disabled executes the identical instruction stream — the round hot
//     loop stays at zero allocations (gated by an AllocsPerRun test) and
//     every byte-identity guarantee of the batch engine holds unchanged.
//
//  2. On is out-of-band. Metrics live in process memory until scraped;
//     spans stream to their own event log. Neither ever writes into a
//     result journal or a rendered report, so a traced sweep's outputs are
//     byte-identical to an untraced one.
//
//  3. Always-on counters are atomic. Registry metrics (cache hits, units
//     done, steals per backend) are single atomic ops on paths that cost
//     milliseconds per increment, so they need no enable switch at all.
package obs

// Default is the process-wide registry every subsystem registers its
// metrics on — the one /metrics/prom and the -telemetry debug listener
// expose.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }
