package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile begins a CPU profile written to path and returns the stop
// func that ends profiling and closes the file. Wrap a sweep:
//
//	stop, err := obs.StartCPUProfile(*cpuprofile)
//	...
//	defer stop()
func StartCPUProfile(path string) (func(), error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("start cpu profile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeapProfile snapshots the heap to path (after a GC, so the profile
// reflects live objects rather than garbage).
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("write heap profile: %w", err)
	}
	return f.Close()
}
