// External test package so the tests can drive the engine exactly the way
// its real callers (core, the CLIs) do.
package batch_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/batch"
	"repro/internal/graph"
)

// okSpec is a small three-dimensional grid used across the tests.
func okSpec() batch.Spec {
	return batch.Spec{
		Topologies: []string{"cycle", "torus", "hypercube"},
		Algorithms: []string{"diffusion", "dimexchange", "randpair"},
		Modes:      []string{"continuous", "discrete"},
		Workloads:  []string{"spike", "uniform"},
		Seeds:      []int64{1, 2},
		N:          16,
	}
}

// fakeRun is a deterministic RunFunc standing in for core.Balance: the
// outcome is a pure function of the unit identity, the generated loads and
// the derived algorithm seed, so any scheduling nondeterminism shows up as
// a report diff.
func fakeRun(u batch.Unit, g *graph.G, loads []float64, algoSeed int64) (batch.Outcome, error) {
	var sum float64
	for _, v := range loads {
		sum += v
	}
	rounds := int(algoSeed&0xff) + len(u.Topology) + g.N()
	return batch.Outcome{
		Rounds:    rounds,
		Converged: true,
		PhiStart:  sum,
		PhiEnd:    sum / 1000,
		Bound:     float64(rounds) * 2,
		BoundName: "fake",
	}, nil
}

func TestExpandExhaustiveAndDuplicateFree(t *testing.T) {
	spec := okSpec()
	units, err := batch.Expand(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := len(spec.Topologies) * len(spec.Algorithms) * len(spec.Modes) * len(spec.Workloads) * len(spec.Seeds)
	if len(units) != want {
		t.Fatalf("expanded %d units, want %d", len(units), want)
	}
	seen := map[string]bool{}
	for i, u := range units {
		if u.Index != i {
			t.Fatalf("unit %d has Index %d", i, u.Index)
		}
		key := u.Key()
		if seen[key] {
			t.Fatalf("duplicate unit %s", key)
		}
		seen[key] = true
	}
	// Every requested combination must appear.
	for _, topo := range spec.Topologies {
		for _, alg := range spec.Algorithms {
			for _, mode := range spec.Modes {
				for _, wl := range spec.Workloads {
					for _, seed := range spec.Seeds {
						key := fmt.Sprintf("%s/%s/%s/%s/s%d", topo, alg, mode, wl, seed)
						if !seen[key] {
							t.Fatalf("combination %s missing from expansion", key)
						}
					}
				}
			}
		}
	}
}

func TestExpandRejectsDuplicatesAndUnknowns(t *testing.T) {
	cases := []func(*batch.Spec){
		func(s *batch.Spec) { s.Topologies = []string{"cycle", "cycle"} },
		func(s *batch.Spec) { s.Algorithms = []string{"diffusion", " Diffusion "} },
		func(s *batch.Spec) { s.Seeds = []int64{3, 3} },
		func(s *batch.Spec) { s.Workloads = []string{"spike", "nosuchload"} },
		func(s *batch.Spec) { s.Modes = []string{"continuous", "quantum"} },
		func(s *batch.Spec) { s.Topologies = nil },
	}
	for i, mutate := range cases {
		spec := okSpec()
		mutate(&spec)
		if _, err := batch.Expand(spec); err == nil {
			t.Fatalf("case %d: expansion accepted an invalid spec", i)
		}
	}
}

func TestRunByteIdenticalAcrossWorkerCounts(t *testing.T) {
	render := func(workers int) (csv, jsn []byte) {
		spec := okSpec()
		spec.Workers = workers
		rep, err := batch.Run(spec, fakeRun)
		if err != nil {
			t.Fatal(err)
		}
		var c, j bytes.Buffer
		if err := rep.RenderCSV(&c); err != nil {
			t.Fatal(err)
		}
		if err := rep.RenderJSON(&j); err != nil {
			t.Fatal(err)
		}
		return c.Bytes(), j.Bytes()
	}
	c1, j1 := render(1)
	for _, w := range []int{2, 8} {
		cN, jN := render(w)
		if !bytes.Equal(c1, cN) {
			t.Fatalf("CSV differs between workers=1 and workers=%d", w)
		}
		if !bytes.Equal(j1, jN) {
			t.Fatalf("JSON differs between workers=1 and workers=%d", w)
		}
	}
	if len(c1) == 0 || len(j1) == 0 {
		t.Fatal("empty report output")
	}
}

func TestFailedAndPanickingUnitsDoNotWedgeThePool(t *testing.T) {
	spec := okSpec()
	spec.Workers = 4
	var calls atomic.Int64
	rep, err := batch.Run(spec, func(u batch.Unit, g *graph.G, loads []float64, algoSeed int64) (batch.Outcome, error) {
		calls.Add(1)
		switch u.Index {
		case 3:
			return batch.Outcome{}, errors.New("synthetic failure")
		case 7:
			panic("synthetic panic")
		}
		return fakeRun(u, g, loads, algoSeed)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := int(calls.Load()); got != len(rep.Cells) {
		t.Fatalf("pool ran %d units, want all %d", got, len(rep.Cells))
	}
	if rep.Failed() != 2 {
		t.Fatalf("Failed() = %d, want 2", rep.Failed())
	}
	if !strings.Contains(rep.Cells[3].Err, "synthetic failure") {
		t.Fatalf("cell 3 error = %q", rep.Cells[3].Err)
	}
	if !strings.Contains(rep.Cells[7].Err, "synthetic panic") {
		t.Fatalf("cell 7 error = %q", rep.Cells[7].Err)
	}
	// The failed cells keep their identity, and the healthy ones their data.
	if rep.Cells[7].Key() == rep.Cells[3].Key() || rep.Cells[7].Topology == "" {
		t.Fatalf("failed cell lost its unit identity: %+v", rep.Cells[7].Unit)
	}
	for i, c := range rep.Cells {
		if i == 3 || i == 7 {
			continue
		}
		if c.Err != "" || !c.Converged {
			t.Fatalf("healthy cell %d corrupted: %+v", i, c)
		}
	}
}

func TestRunContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	rep, err := batch.RunContext(ctx, okSpec(), func(batch.Unit, *graph.G, []float64, int64) (batch.Outcome, error) {
		time.Sleep(time.Second)
		return batch.Outcome{}, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep == nil {
		t.Fatal("cancelled run must still return its partial report")
	}
	if rep.Failed() != len(rep.Cells) {
		t.Fatalf("pre-cancelled run completed %d units", len(rep.Cells)-rep.Failed())
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled run took %v — pool wedged", elapsed)
	}
}

func TestRunContextCancelMidSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	spec := okSpec()
	spec.Workers = 1 // serial in-order execution makes the cut deterministic
	rep, err := batch.RunContext(ctx, spec, func(u batch.Unit, g *graph.G, loads []float64, algoSeed int64) (batch.Outcome, error) {
		if u.Index == 4 {
			cancel()
		}
		return fakeRun(u, g, loads, algoSeed)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for i, c := range rep.Cells {
		if i <= 4 && c.Err != "" {
			t.Fatalf("unit %d ran before the cancel but has error %q", i, c.Err)
		}
		if i > 4 && c.Err == "" {
			t.Fatalf("unit %d ran after the cancel", i)
		}
	}
}

func TestSpecValidate(t *testing.T) {
	if err := okSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*batch.Spec)
		want   string
	}{
		{"empty topologies", func(s *batch.Spec) { s.Topologies = nil }, "no topology"},
		{"empty algorithms", func(s *batch.Spec) { s.Algorithms = []string{} }, "no algorithm"},
		{"empty workloads", func(s *batch.Spec) { s.Workloads = nil }, "no workload"},
		{"blank entry", func(s *batch.Spec) { s.Modes = []string{"continuous", "  "} }, "empty mode"},
		{"duplicate seeds", func(s *batch.Spec) { s.Seeds = []int64{1, 2, 1} }, "duplicate seed"},
		{"duplicate topology", func(s *batch.Spec) { s.Topologies = []string{"cycle", " CYCLE "} }, "duplicate topology"},
	}
	for _, tc := range cases {
		spec := okSpec()
		tc.mutate(&spec)
		err := spec.Validate()
		if err == nil {
			t.Fatalf("%s: Validate accepted the spec", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestForEachDeterministicRNGStreams(t *testing.T) {
	draw := func(workers int) []int64 {
		out := make([]int64, 32)
		batch.ForEach(context.Background(), len(out), workers, 99, func(i int, rng *rand.Rand) error {
			out[i] = rng.Int63()
			return nil
		})
		return out
	}
	serial := draw(1)
	pooled := draw(8)
	for i := range serial {
		if serial[i] != pooled[i] {
			t.Fatalf("stream %d differs between worker counts", i)
		}
	}
	distinct := map[int64]bool{}
	for _, v := range serial {
		distinct[v] = true
	}
	if len(distinct) != len(serial) {
		t.Fatal("per-index RNG streams are not independent")
	}
}

func TestAggregatesAcrossSeeds(t *testing.T) {
	spec := okSpec()
	rep, err := batch.Run(spec, fakeRun)
	if err != nil {
		t.Fatal(err)
	}
	wantAggs := len(spec.Topologies) * len(spec.Algorithms) * len(spec.Modes) * len(spec.Workloads)
	if len(rep.Aggregates) != wantAggs {
		t.Fatalf("%d aggregates, want %d", len(rep.Aggregates), wantAggs)
	}
	for _, a := range rep.Aggregates {
		if a.Runs != len(spec.Seeds) {
			t.Fatalf("aggregate %s/%s runs %d, want %d", a.Topology, a.Algorithm, a.Runs, len(spec.Seeds))
		}
		if a.Converged != a.Runs || a.Failed != 0 {
			t.Fatalf("aggregate counts off: %+v", a)
		}
		if a.MeanRounds <= 0 {
			t.Fatalf("aggregate mean rounds %v", a.MeanRounds)
		}
	}
}
