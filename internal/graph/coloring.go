package graph

// EdgeColoring returns a proper edge coloring of g as a slice indexed like
// g.Edges(): edges sharing an endpoint receive different colors. The greedy
// first-free-color rule uses at most 2δ−1 colors (each edge conflicts with
// ≤ 2(δ−1) others); Vizing guarantees δ or δ+1 exist, but the greedy bound
// is all the round-robin dimension exchange needs — each color class is a
// matching, and cycling through the classes touches every edge once per
// 2δ−1 rounds.
//
// Returns the color of each edge and the number of colors used.
func EdgeColoring(g *G) (colors []int, numColors int) {
	m := g.M()
	colors = make([]int, m)
	for i := range colors {
		colors[i] = -1
	}
	// incident[v] lists edge indices at node v.
	incident := make([][]int, g.N())
	for k, e := range g.Edges() {
		incident[e.U] = append(incident[e.U], k)
		incident[e.V] = append(incident[e.V], k)
	}
	maxColors := 2*g.MaxDegree() - 1
	if maxColors < 1 {
		maxColors = 1
	}
	used := make([]bool, maxColors+1)
	for k, e := range g.Edges() {
		for i := range used {
			used[i] = false
		}
		for _, other := range incident[e.U] {
			if c := colors[other]; c >= 0 {
				used[c] = true
			}
		}
		for _, other := range incident[e.V] {
			if c := colors[other]; c >= 0 {
				used[c] = true
			}
		}
		c := 0
		for used[c] {
			c++
		}
		colors[k] = c
		if c+1 > numColors {
			numColors = c + 1
		}
	}
	return colors, numColors
}

// ColorClasses groups the edge indices of a coloring by color; each class
// is a matching of g.
func ColorClasses(g *G, colors []int, numColors int) [][]Edge {
	classes := make([][]Edge, numColors)
	for k, e := range g.Edges() {
		c := colors[k]
		classes[c] = append(classes[c], e)
	}
	return classes
}

// HypercubeDimensionClasses returns the natural perfect d-coloring of the
// d-dimensional hypercube: class i holds the edges crossing bit i. This is
// the matching schedule of the classic dimension-exchange algorithm of [3].
func HypercubeDimensionClasses(d int) [][]Edge {
	n := 1 << uint(d)
	classes := make([][]Edge, d)
	for u := 0; u < n; u++ {
		for bit := 0; bit < d; bit++ {
			v := u ^ (1 << uint(bit))
			if u < v {
				classes[bit] = append(classes[bit], Edge{U: u, V: v})
			}
		}
	}
	return classes
}
