package markov

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/spectral"
	"repro/internal/workload"
)

func TestCoupleDeviationBounded(t *testing.T) {
	// The discrete trajectory must stay near the idealized one; [16] bound
	// the gap via the local divergence. On a torus with a large spike the
	// deviation should stay well below the initial discrepancy.
	g := graph.Torus(4, 4)
	init := workload.Discrete(workload.Spike, g.N(), 1_600_000, nil)
	run := Couple(g, init, 200)
	if run.MaxDeviation <= 0 {
		t.Fatal("rounding must create some deviation")
	}
	if run.MaxDeviation > 1_600_000/10 {
		t.Fatalf("deviation %v is implausibly large", run.MaxDeviation)
	}
	if run.LocalDivergence <= 0 {
		t.Fatal("divergence must accumulate")
	}
	if run.DiscretePhi < 0 || run.IdealPhi < 0 {
		t.Fatal("potentials must be nonnegative")
	}
	// The idealized chain converges to (nearly) zero potential; the
	// discrete one to a bounded residual above it.
	if run.IdealPhi > 1 {
		t.Fatalf("idealized chain should be almost balanced, Φ=%v", run.IdealPhi)
	}
}

func TestCoupleZeroRounds(t *testing.T) {
	g := graph.Cycle(6)
	init := workload.Discrete(workload.Uniform, 6, 600, rand.New(rand.NewSource(1)))
	run := Couple(g, init, 0)
	if run.LocalDivergence != 0 || run.MaxDeviation != 0 {
		t.Fatal("no rounds, no divergence")
	}
}

func TestCoupleBalancedStartStaysCoupled(t *testing.T) {
	// Perfectly balanced start: both systems are at a fixed point.
	g := graph.Hypercube(3)
	init := make([]int64, g.N())
	for i := range init {
		init[i] = 100
	}
	run := Couple(g, init, 50)
	if run.MaxDeviation != 0 || run.LocalDivergence != 0 {
		t.Fatalf("balanced start diverged: %+v", run)
	}
}

func TestRSWRoundBound(t *testing.T) {
	r := RSWRoundBound(0.5, 100, 10, 1)
	want := 2 / 0.5 * math.Log(100*100)
	if math.Abs(r-want) > 1e-9 {
		t.Fatalf("bound %v, want %v", r, want)
	}
	if !math.IsInf(RSWRoundBound(0, 100, 10, 1), 1) {
		t.Fatal("µ=0 must give +Inf")
	}
}

func TestPsiBoundShapeGrowsSlowly(t *testing.T) {
	// For the hypercube family, δ = log₂ n and µ is constant-ish; the
	// bound shape must grow like polylog(n).
	for d := 3; d <= 6; d++ {
		g := graph.Hypercube(d)
		mu, err := spectral.EigenGap(spectral.DiffusionMatrix(g))
		if err != nil {
			t.Fatal(err)
		}
		if v := PsiBoundShape(g, mu); v <= 0 || math.IsInf(v, 1) {
			t.Fatalf("Q%d: Ψ bound shape %v", d, v)
		}
	}
	if !math.IsInf(PsiBoundShape(graph.Cycle(4), 0), 1) {
		t.Fatal("µ=0 must give +Inf")
	}
}

func TestPsiMeasuredVsBoundShape(t *testing.T) {
	// The measured divergence normalized by the [16] bound shape should be
	// O(K): here we only check it is finite and positive for a real run.
	g := graph.DeBruijn(5)
	init := workload.Discrete(workload.Spike, g.N(), 320_000, nil)
	run := Couple(g, init, 100)
	mu, err := spectral.EigenGap(spectral.DiffusionMatrix(g))
	if err != nil {
		t.Fatal(err)
	}
	shape := PsiBoundShape(g, mu)
	ratio := run.LocalDivergence / shape
	if math.IsNaN(ratio) || ratio <= 0 {
		t.Fatalf("ratio %v", ratio)
	}
}

func TestIdealizedDiscrepancyAfterDecreases(t *testing.T) {
	g := graph.Torus(4, 4)
	init := workload.Continuous(workload.Spike, g.N(), 1000, nil)
	d10 := IdealizedDiscrepancyAfter(g, init, 10)
	d100 := IdealizedDiscrepancyAfter(g, init, 100)
	if d100 >= d10 {
		t.Fatalf("discrepancy not decreasing: %v then %v", d10, d100)
	}
}
