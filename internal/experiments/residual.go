package experiments

import (
	"math"
	"math/rand"

	"repro/internal/diffusion"
	"repro/internal/graph"
	"repro/internal/speccache"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

func init() {
	register("E17", E17ResidualScaling)
	register("E18", E18ContractionRate)
}

// E17ResidualScaling reproduces the paper's §3 remark against [15]: the
// discrete Algorithm 1's guaranteed residual 64δ³n/λ₂ is *linear* in n
// where [15]'s is quadratic (δ²n²). Both discrete schemes run to their
// exact fixed points on hypercubes of growing size; the table reports the
// measured residuals next to the two formulas.
func E17ResidualScaling(o Options) *trace.Table {
	t := trace.NewTable("E17 — discrete residual scaling: Algorithm 1 vs discrete first order [15] (hypercubes, spike start)",
		"n", "Φ residual (Alg 1)", "paper 64δ³n/λ₂", "Φ residual (FOS)", "[15] δ²n²", "paper/[15] formulas")
	dims := []int{4, 5, 6, 7, 8}
	if o.Quick {
		dims = []int{4, 5}
	}
	horizon := 200000
	if o.Quick {
		horizon = 20000
	}
	rows := make([]row, len(dims))
	o.sweep(len(rows), func(i int, _ *rand.Rand) {
		d := dims[i]
		g := graph.Hypercube(d)
		lambda2 := 2.0 // closed form for Q_d
		tokens := workload.Discrete(workload.Spike, g.N(), int64(g.N())*1_000_000, nil)

		a1 := diffusion.NewDiscrete(g, tokens)
		a1.Workers = o.RoundWorkers
		for k := 0; k < horizon && !diffusion.DiscreteFixedPoint(g, a1.Load.Tokens()); k++ {
			a1.Step()
		}
		fos := diffusion.NewDiscreteFirstOrder(g, tokens)
		fos.Workers = o.RoundWorkers
		for k := 0; k < horizon && !fos.FixedPoint(); k++ {
			fos.Step()
		}

		paperThr := diffusion.DiscreteThreshold(g, lambda2)
		mgsThr := diffusion.MGSResidualShape(g)
		rows[i] = row{g.N(), a1.Potential(), paperThr, fos.Potential(), mgsThr, paperThr / mgsThr}
	})
	emit(t, rows)
	t.Note("both measured residuals must sit below their formulas; the last column shows the paper's guarantee overtaking [15]'s as n grows (crossover at 32δ = n, i.e. Q8).")
	return t
}

// E18ContractionRate validates the per-round statement inside Theorem 4's
// proof: the continuous Algorithm 1 contracts Φ by at least (1 − λ₂/4δ)
// per round. The measured per-round geometric decay rate is compared with
// that guarantee and with the exact asymptotic rate γ_P² (γ_P the
// second-largest eigenvalue magnitude of the paper's diffusion matrix —
// the error norm contracts by γ_P, the potential by γ_P²).
func E18ContractionRate(o Options) *trace.Table {
	t := trace.NewTable("E18 — per-round contraction: measured vs (1 − λ₂/4δ) guarantee vs exact γ_P²",
		"graph", "measured rate", "guarantee 1−λ₂/4δ", "exact γ_P²", "measured ≤ guarantee")
	suite := fixedSuite(o.Quick)
	rows := make([]row, len(suite))
	o.sweep(len(rows), func(i int, _ *rand.Rand) {
		g := suite[i]
		lambda2 := speccache.MustLambda2(g)
		guarantee := 1 - lambda2/(4*float64(g.MaxDegree()))

		gammaP := math.NaN()
		if gp, err := speccache.PaperGamma(g); err == nil {
			gammaP = gp * gp
		}

		init := workload.Continuous(workload.Spike, g.N(), 1e9, nil)
		st := diffusion.NewContinuous(g, init)
		// Collect the whole positive trace, then fit the second half of it
		// — past the transient, before the denormal floor. Fast-mixing
		// graphs (K_n) reach machine zero in tens of rounds, so the window
		// must adapt rather than start at a fixed offset.
		var full []float64
		total := 400
		if o.Quick {
			total = 150
		}
		phi0 := st.Potential()
		for k := 0; k < total; k++ {
			st.Step()
			phi := st.Potential()
			// Stop well above the float-resolution floor: once deviations
			// fall below avg·ε the loads are bitwise equal and Φ stalls,
			// which would flatten the fitted rate to 1.
			if phi < 1e-24*phi0 {
				break
			}
			full = append(full, phi)
		}
		series := full[len(full)/2:]
		measured := stats.GeometricDecayRate(series)
		rows[i] = row{g.Name(), measured, guarantee, gammaP, measured <= guarantee+1e-9}
	})
	emit(t, rows)
	t.Note("measured must not exceed the guarantee (Theorem 4's engine); the gap to γ_P² is the analysis slack — the true asymptotic rate on every graph.")
	return t
}
