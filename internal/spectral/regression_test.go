package spectral

import (
	"math"
	"testing"

	"repro/internal/graph"
)

// Regression: the QL negligibility test must be scale-aware. K_n's uniform
// diffusion matrix has eigenvalue 0 with multiplicity n−1; with an
// absolute-zero threshold the sweep never terminates for n ≳ 64.
func TestGammaCompleteLargeDegenerate(t *testing.T) {
	for _, n := range []int{8, 16, 32, 64, 128} {
		g := graph.Complete(n)
		gamma, err := Gamma(DiffusionMatrix(g))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if math.Abs(gamma) > 1e-10 {
			t.Fatalf("n=%d: γ = %v, want ≈0", n, gamma)
		}
	}
}

// Regression companion: eigenvalues of the same degenerate family must also
// come out right through the Jacobi path (mutual cross-check).
func TestJacobiCompleteDegenerate(t *testing.T) {
	g := graph.Complete(64)
	vals, err := JacobiEigen(DiffusionMatrix(g))
	if err != nil {
		t.Fatal(err)
	}
	n := len(vals)
	if math.Abs(vals[n-1]-1) > 1e-9 {
		t.Fatalf("top eigenvalue %v, want 1", vals[n-1])
	}
	for _, v := range vals[:n-1] {
		if math.Abs(v) > 1e-9 {
			t.Fatalf("non-top eigenvalue %v, want 0", v)
		}
	}
}
