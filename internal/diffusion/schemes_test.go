package diffusion

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/spectral"
	"repro/internal/workload"
)

func TestFirstOrderMatchesDiffusionMatrix(t *testing.T) {
	g := graph.Hypercube(3)
	rng := rand.New(rand.NewSource(1))
	init := workload.Continuous(workload.Uniform, g.N(), 10, rng)
	fo := NewFirstOrder(g, init)
	ms := NewMatrixStepper(spectral.DiffusionMatrix(g), init)
	for i := 0; i < 10; i++ {
		fo.Step()
		ms.Step()
	}
	if !fo.Load.Vector().ApproxEqual(ms.Load.Vector(), 1e-9) {
		t.Fatal("sparse first-order disagrees with dense M·L")
	}
}

func TestFirstOrderConserves(t *testing.T) {
	g := graph.Torus(3, 4)
	rng := rand.New(rand.NewSource(2))
	init := workload.Continuous(workload.Exponential, g.N(), 20, rng)
	fo := NewFirstOrder(g, init)
	before := fo.Load.Total()
	for i := 0; i < 50; i++ {
		fo.Step()
	}
	if math.Abs(fo.Load.Total()-before) > 1e-8*(1+math.Abs(before)) {
		t.Fatal("first-order must conserve load")
	}
}

func TestFirstOrderConvergesAtGammaRate(t *testing.T) {
	// ‖e(t)‖₂ ≤ γᵗ‖e(0)‖₂ (Cybenko); check after 50 rounds with slack.
	g := graph.Cycle(10)
	gamma, err := spectral.Gamma(spectral.DiffusionMatrix(g))
	if err != nil {
		t.Fatal(err)
	}
	init := workload.Continuous(workload.Spike, g.N(), 100, nil)
	fo := NewFirstOrder(g, init)
	e0 := math.Sqrt(fo.Potential())
	T := 50
	for i := 0; i < T; i++ {
		fo.Step()
	}
	bound := math.Pow(gamma, float64(T)) * e0
	if got := math.Sqrt(fo.Potential()); got > bound*(1+1e-9) {
		t.Fatalf("‖e(T)‖ = %v exceeds γᵀ‖e(0)‖ = %v", got, bound)
	}
}

func TestSecondOrderBeatsFirstOrderOnCycle(t *testing.T) {
	// [15]: with optimal β the second-order scheme converges strictly
	// faster on slow-mixing topologies. Compare Φ after a fixed horizon.
	g := graph.Cycle(24)
	gamma, err := spectral.Gamma(spectral.DiffusionMatrix(g))
	if err != nil {
		t.Fatal(err)
	}
	init := workload.Continuous(workload.Spike, g.N(), 1000, nil)
	fo := NewFirstOrder(g, init)
	so := NewSecondOrder(g, init, OptimalBeta(gamma))
	T := 200
	for i := 0; i < T; i++ {
		fo.Step()
		so.Step()
	}
	if so.Potential() >= fo.Potential() {
		t.Fatalf("second order (Φ=%v) not faster than first order (Φ=%v)", so.Potential(), fo.Potential())
	}
}

func TestSecondOrderConserves(t *testing.T) {
	g := graph.Torus(4, 4)
	rng := rand.New(rand.NewSource(3))
	init := workload.Continuous(workload.Uniform, g.N(), 10, rng)
	so := NewSecondOrder(g, init, 1.5)
	before := so.Load.Total()
	for i := 0; i < 60; i++ {
		so.Step()
	}
	if math.Abs(so.Load.Total()-before) > 1e-8*(1+math.Abs(before)) {
		t.Fatal("second-order must conserve load")
	}
}

func TestOptimalBeta(t *testing.T) {
	if got := OptimalBeta(0); got != 1 {
		t.Fatalf("β*(0) = %v, want 1", got)
	}
	if got := OptimalBeta(1); got != 2 {
		t.Fatalf("β*(1) = %v, want 2", got)
	}
	mid := OptimalBeta(0.9)
	if mid <= 1 || mid >= 2 {
		t.Fatalf("β*(0.9) = %v out of (1,2)", mid)
	}
}

func TestSecondOrderBetaOneIsFirstOrder(t *testing.T) {
	g := graph.Hypercube(3)
	rng := rand.New(rand.NewSource(4))
	init := workload.Continuous(workload.Uniform, g.N(), 10, rng)
	fo := NewFirstOrder(g, init)
	so := NewSecondOrder(g, init, 1)
	for i := 0; i < 15; i++ {
		fo.Step()
		so.Step()
	}
	if !fo.Load.Vector().ApproxEqual(so.Load.Vector(), 1e-9) {
		t.Fatal("β=1 second order must reduce to first order")
	}
}

func TestMatrixStepperValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMatrixStepper(spectral.DiffusionMatrix(graph.Cycle(4)), []float64{1})
}
