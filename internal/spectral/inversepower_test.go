package spectral

import (
	"math"
	"testing"

	"repro/internal/graph"
)

func TestLambda2InversePowerMatchesDense(t *testing.T) {
	cases := []*graph.G{
		graph.Path(40),
		graph.Cycle(50),
		graph.Torus(5, 6),
		graph.Hypercube(5),
		graph.Barbell(8),
		graph.Star(30),
		graph.BinaryTree(5),
	}
	for _, g := range cases {
		dense, err := Lambda2(g)
		if err != nil {
			t.Fatal(err)
		}
		inv, err := Lambda2InversePower(g, 99)
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		if math.Abs(dense-inv) > 1e-6*(1+dense) {
			t.Fatalf("%s: dense λ₂ %v vs inverse-power %v", g.Name(), dense, inv)
		}
	}
}

func TestLambda2InversePowerLargePath(t *testing.T) {
	n := 1500
	got, err := Lambda2InversePower(graph.Path(n), 7)
	if err != nil {
		t.Fatal(err)
	}
	want := graph.PathLambda2(n)
	if math.Abs(got-want) > 1e-8 {
		t.Fatalf("path(%d): λ₂ = %v, want %v", n, got, want)
	}
}

func TestLambda2InversePowerRejectsDisconnected(t *testing.T) {
	b := graph.NewBuilder("disc", 4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	if _, err := Lambda2InversePower(b.MustFinish(), 1); err == nil {
		t.Fatal("expected error for disconnected graph")
	}
}

func TestLambda2InversePowerDeterministic(t *testing.T) {
	g := graph.Torus(8, 8)
	a, err := Lambda2InversePower(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Lambda2InversePower(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed must reproduce: %v vs %v", a, b)
	}
}
