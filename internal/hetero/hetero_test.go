package hetero

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/diffusion"
	"repro/internal/graph"
	"repro/internal/workload"
)

func TestUniformSpeedsReduceToAlgorithm1(t *testing.T) {
	g := graph.Torus(4, 4)
	rng := rand.New(rand.NewSource(1))
	init := workload.Continuous(workload.Uniform, g.N(), 100, rng)
	h, err := NewContinuous(g, init, UniformSpeeds(g.N()))
	if err != nil {
		t.Fatal(err)
	}
	a1 := diffusion.NewContinuous(g, init)
	for k := 0; k < 20; k++ {
		h.Step()
		a1.Step()
	}
	if !h.Load.Vector().ApproxEqual(a1.Load.Vector(), 1e-9) {
		t.Fatal("unit speeds must reproduce Algorithm 1 exactly")
	}
}

func TestConservation(t *testing.T) {
	g := graph.Hypercube(4)
	rng := rand.New(rand.NewSource(2))
	init := workload.Continuous(workload.Exponential, g.N(), 50, rng)
	speeds := make([]float64, g.N())
	for i := range speeds {
		speeds[i] = 0.5 + 3*rng.Float64()
	}
	h, err := NewContinuous(g, init, speeds)
	if err != nil {
		t.Fatal(err)
	}
	before := h.Load.Total()
	for k := 0; k < 200; k++ {
		h.Step()
	}
	if math.Abs(h.Load.Total()-before) > 1e-8*(1+math.Abs(before)) {
		t.Fatal("heterogeneous diffusion must conserve load")
	}
}

func TestPotentialMonotone(t *testing.T) {
	g := graph.Cycle(12)
	rng := rand.New(rand.NewSource(3))
	init := workload.Continuous(workload.Spike, g.N(), 1200, nil)
	speeds := make([]float64, g.N())
	for i := range speeds {
		speeds[i] = 1 + 4*rng.Float64()
	}
	h, err := NewContinuous(g, init, speeds)
	if err != nil {
		t.Fatal(err)
	}
	prev := h.Potential()
	for k := 0; k < 500; k++ {
		h.Step()
		cur := h.Potential()
		if cur > prev+1e-9*(1+prev) {
			t.Fatalf("Φ_c rose at round %d: %v → %v", k, prev, cur)
		}
		prev = cur
	}
}

func TestConvergesToProportionalShare(t *testing.T) {
	// Fast nodes (speed 4) must end with 4× the load of slow ones (speed 1).
	g := graph.Torus(4, 4)
	speeds := make([]float64, g.N())
	for i := range speeds {
		if i%2 == 0 {
			speeds[i] = 4
		} else {
			speeds[i] = 1
		}
	}
	init := workload.Continuous(workload.Spike, g.N(), 16000, nil)
	h, err := NewContinuous(g, init, speeds)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 5000 && h.MaxRelativeDeviation() > 1e-9; k++ {
		h.Step()
	}
	if dev := h.MaxRelativeDeviation(); dev > 1e-9 {
		t.Fatalf("relative deviation %v after 5000 rounds", dev)
	}
	target := h.TargetLoads()
	for i := 0; i < g.N(); i++ {
		if math.Abs(h.Load.At(i)-target[i]) > 1e-6*(1+target[i]) {
			t.Fatalf("node %d: load %v, target %v", i, h.Load.At(i), target[i])
		}
	}
	// Sanity on the proportionality itself.
	omega := h.Omega()
	if math.Abs(h.Load.At(0)-4*omega) > 1e-6*(1+omega) {
		t.Fatalf("fast node load %v, want %v", h.Load.At(0), 4*omega)
	}
}

func TestValidation(t *testing.T) {
	g := graph.Cycle(4)
	if _, err := NewContinuous(g, []float64{1}, UniformSpeeds(4)); err == nil {
		t.Fatal("length mismatch must error")
	}
	if _, err := NewContinuous(g, []float64{1, 1, 1, 1}, []float64{1, 0, 1, 1}); err == nil {
		t.Fatal("zero speed must error")
	}
	if _, err := NewContinuous(g, []float64{1, 1, 1, 1}, []float64{1, -2, 1, 1}); err == nil {
		t.Fatal("negative speed must error")
	}
	if _, err := NewContinuous(g, []float64{1, 1, 1, 1}, []float64{1, math.Inf(1), 1, 1}); err == nil {
		t.Fatal("infinite speed must error")
	}
}

func TestEdgeTransferAntisymmetry(t *testing.T) {
	g := graph.Path(2)
	h, err := NewContinuous(g, []float64{10, 2}, []float64{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	fwd := h.EdgeTransfer(0, 1, 10, 2)
	rev := h.EdgeTransfer(1, 0, 2, 10)
	if math.Abs(fwd+rev) > 1e-12 {
		t.Fatalf("transfers not antisymmetric: %v vs %v", fwd, rev)
	}
	// Normalized loads 5 vs 2: node 0 sends.
	if fwd <= 0 {
		t.Fatalf("heavier-per-speed node must send, got %v", fwd)
	}
}

// Property: conservation and monotone Φ_c on random graphs/speeds.
func TestHeteroInvariantsProperty(t *testing.T) {
	f := func(seed uint8) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		n := 4 + r.Intn(12)
		g := graph.ErdosRenyi(n, 0.5, r)
		init := workload.Continuous(workload.Uniform, n, 100, r)
		speeds := make([]float64, n)
		for i := range speeds {
			speeds[i] = 0.25 + 4*r.Float64()
		}
		h, err := NewContinuous(g, init, speeds)
		if err != nil {
			return false
		}
		before := h.Load.Total()
		phi := h.Potential()
		for k := 0; k < 10; k++ {
			h.Step()
			cur := h.Potential()
			if cur > phi+1e-9*(1+phi) {
				return false
			}
			phi = cur
		}
		return math.Abs(h.Load.Total()-before) < 1e-8*(1+math.Abs(before))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
