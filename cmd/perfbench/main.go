// Command perfbench measures and gates the repo's performance trajectory.
//
// Measure mode runs the pinned benchmark grid — ns/round vs n for every
// topology×algorithm×mode at each round-worker count, plus cells/sec for
// the two reference sweeps — and writes the JSON report:
//
//	perfbench -label PR6 -out BENCH_PR6.json
//
// Diff mode compares a fresh report against a committed baseline,
// normalizing by the two reports' calibration anchors so a slower or
// faster machine does not masquerade as a code change:
//
//	perfbench -diff -max-regress 0.25 BENCH_PR6.json current.json
//
// Every baseline key must be present in the current report (shrinking
// coverage fails like a slowdown), and any measurement whose normalized
// cost exceeds the baseline by more than -max-regress fails the gate.
// Reports recorded on machines with different core counts compare with a
// loud warning — the calibration anchor divides out clock speed, not shape.
//
// Measure mode also covers the large-n regime: -large-sizes (default
// 2^17, 2^20) adds one serial diffusion row and one timed λ₂ solve per
// topology at each size, with the spectral solver path (closed-form,
// lanczos, …) pinned in the report. -large-n-smoke is the quick CI
// variant: a million-node hypercube diffusion cell plus an implicit
// Lanczos λ₂ solve under -smoke-budget, failing if the dense eigensolver
// ran at all.
//
// Exit codes: 0 success; 1 regression, missing coverage, a smoke-gate
// failure, or a byte-identity violation between round-worker counts; 2
// usage or I/O errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/perfbench"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		diff       = flag.Bool("diff", false, "compare two reports (BASELINE CURRENT) instead of measuring")
		maxRegress = flag.Float64("max-regress", 0.25, "with -diff: allowed normalized slowdown before failing (0.25 = 25%)")

		out       = flag.String("out", "", "write the JSON report here (default stdout)")
		label     = flag.String("label", "", "baseline label recorded in the report (e.g. PR6)")
		topos     = flag.String("topos", "", "comma-separated topologies (default: the pinned trajectory grid)")
		algos     = flag.String("algos", "", "comma-separated algorithms (default: the pinned trajectory grid)")
		modes     = flag.String("modes", "", "comma-separated modes (default: the pinned trajectory grid)")
		sizes     = flag.String("sizes", "", "comma-separated node counts (default: the pinned trajectory grid)")
		roundWkrs = flag.String("round-workers", "", "comma-separated round-level worker counts to measure (default: the pinned trajectory grid)")
		samples   = flag.Int("samples", 0, "samples per measurement, fastest wins (default 3)")
		budget    = flag.Int("budget", 0, "node-operation budget per sample; rounds timed = budget/n in [64,4096] (default 2^22)")
		noSweeps  = flag.Bool("no-sweeps", false, "skip the two cells/sec reference sweeps (quicker local runs; the CI gate keeps them)")
		quiet     = flag.Bool("q", false, "suppress per-measurement progress on stderr")

		largeSizes = flag.String("large-sizes", "131072,1048576",
			"comma-separated large-n node counts: each topology gets a serial diffusion row plus a timed λ₂ solve at these sizes (\"none\" disables)")
		smoke       = flag.Bool("large-n-smoke", false, "run the million-node smoke gate (2^20 hypercube diffusion + Lanczos λ₂ on de Bruijn) and exit")
		smokeBudget = flag.Duration("smoke-budget", 5*time.Minute, "with -large-n-smoke: wall-clock budget before the gate fails (0 = unlimited)")
	)
	flag.Parse()

	if *smoke {
		var logw io.Writer
		if !*quiet {
			logw = os.Stderr
		}
		res, err := perfbench.LargeNSmoke(*smokeBudget, logw)
		if err != nil {
			fmt.Fprintf(os.Stderr, "perfbench: %v\n", err)
			return 1
		}
		fmt.Printf("large-n smoke ok: hypercube n=%d at %.0f ns/round; λ₂(%s, n=%d)=%.6g via %s in %dms; dense solves: %d; total %v\n",
			res.DiffusionN, res.DiffusionNs, res.Lambda2Topology, res.Lambda2N, res.Lambda2,
			res.Lambda2Path, res.Lambda2Ns/1e6, res.DenseSolvesDelta, res.Elapsed.Round(time.Millisecond))
		return 0
	}

	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "perfbench: -diff needs exactly two reports: BASELINE CURRENT")
			return 2
		}
		base, err := perfbench.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "perfbench: %v\n", err)
			return 2
		}
		cur, err := perfbench.ReadFile(flag.Arg(1))
		if err != nil {
			fmt.Fprintf(os.Stderr, "perfbench: %v\n", err)
			return 2
		}
		res, err := perfbench.Compare(base, cur, *maxRegress)
		if err != nil {
			fmt.Fprintf(os.Stderr, "perfbench: %v\n", err)
			return 2
		}
		res.Render(os.Stdout, *maxRegress)
		if !res.OK() {
			return 1
		}
		return 0
	}
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "perfbench: unexpected arguments %v (did you mean -diff?)\n", flag.Args())
		return 2
	}

	cfg := perfbench.Config{
		Topologies:   splitList(*topos),
		Algorithms:   splitList(*algos),
		Modes:        splitList(*modes),
		Samples:      *samples,
		RoundsBudget: *budget,
		SkipSweeps:   *noSweeps,
	}
	if !*quiet {
		cfg.Log = os.Stderr
	}
	var err error
	if cfg.Sizes, err = splitInts(*sizes); err != nil {
		fmt.Fprintf(os.Stderr, "perfbench: bad -sizes: %v\n", err)
		return 2
	}
	if cfg.RoundWorkersList, err = splitInts(*roundWkrs); err != nil {
		fmt.Fprintf(os.Stderr, "perfbench: bad -round-workers: %v\n", err)
		return 2
	}
	if *largeSizes != "none" {
		if cfg.LargeSizes, err = splitInts(*largeSizes); err != nil {
			fmt.Fprintf(os.Stderr, "perfbench: bad -large-sizes: %v\n", err)
			return 2
		}
	}

	rep, err := perfbench.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "perfbench: %v\n", err)
		if strings.Contains(err.Error(), "byte-identity") {
			return 1
		}
		return 2
	}
	rep.Label = *label

	if *out == "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "perfbench: %v\n", err)
			return 2
		}
		os.Stdout.Write(append(data, '\n'))
		return 0
	}
	if err := rep.WriteFile(*out); err != nil {
		fmt.Fprintf(os.Stderr, "perfbench: %v\n", err)
		return 2
	}
	fmt.Fprintf(os.Stderr, "perfbench: wrote %s (%d round measurements, %d λ₂ solves, %d sweeps)\n",
		*out, len(rep.Rounds), len(rep.Spectra), len(rep.Sweeps))
	return 0
}

func splitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

func splitInts(s string) ([]int, error) {
	var out []int
	for _, v := range splitList(s) {
		x, err := strconv.Atoi(v)
		if err != nil || x <= 0 {
			return nil, fmt.Errorf("%q is not a positive integer", v)
		}
		out = append(out, x)
	}
	return out, nil
}
