package diffusion

import (
	"math"

	"repro/internal/graph"
	"repro/internal/load"
	"repro/internal/matrix"
	"repro/internal/parallel"
)

// FirstOrder is Cybenko's continuous first-order scheme Lᵗ⁺¹ = M·Lᵗ with
// the uniform diffusion factor α = 1/(δ+1) [3]. It is applied sparsely:
//
//	ℓᵢ′ = ℓᵢ + α·Σ_{j∼i}(ℓⱼ − ℓᵢ).
type FirstOrder struct {
	G       *graph.G
	Load    *load.Continuous
	Alpha   float64
	Workers int

	next matrix.Vector
}

// NewFirstOrder creates the scheme with α = 1/(δ+1).
func NewFirstOrder(g *graph.G, initial []float64) *FirstOrder {
	if len(initial) != g.N() {
		panic("diffusion: initial load length mismatch")
	}
	return &FirstOrder{
		G:     g,
		Load:  load.NewContinuous(initial),
		Alpha: 1 / float64(g.MaxDegree()+1),
	}
}

// Step advances one round.
func (f *FirstOrder) Step() {
	g, cur := f.G, f.Load.Vector()
	n := g.N()
	if f.next == nil {
		f.next = make(matrix.Vector, n)
	}
	alpha := f.Alpha
	off, tgt := g.CSR()
	parallel.For(n, parallel.StepperWorkers(f.Workers), func(i int) {
		li := cur[i]
		acc := li
		for _, j := range tgt[off[i]:off[i+1]] {
			acc += alpha * (cur[j] - li)
		}
		f.next[i] = acc
	})
	copy(cur, f.next)
}

// Potential returns Φ of the current distribution.
func (f *FirstOrder) Potential() float64 { return f.Load.Potential() }

// LoadVector returns the live load vector (implements sim.ContinuousState).
func (f *FirstOrder) LoadVector() []float64 { return f.Load.Vector() }

// SecondOrder is the second-order scheme of [15]:
//
//	L¹ = M·L⁰,   Lᵗ = β·M·Lᵗ⁻¹ + (1−β)·Lᵗ⁻², t ≥ 2,
//
// which over-relaxes the first-order scheme and converges like the Chebyshev
// acceleration of M. OptimalBeta computes the β that [15] show is optimal,
// β = 2/(1 + sqrt(1 − γ²)).
type SecondOrder struct {
	G       *graph.G
	Load    *load.Continuous // current Lᵗ
	Beta    float64
	Alpha   float64
	Workers int

	prev  matrix.Vector // Lᵗ⁻¹
	round int
	next  matrix.Vector
}

// NewSecondOrder creates the scheme with the given β and α = 1/(δ+1).
func NewSecondOrder(g *graph.G, initial []float64, beta float64) *SecondOrder {
	if len(initial) != g.N() {
		panic("diffusion: initial load length mismatch")
	}
	return &SecondOrder{
		G:     g,
		Load:  load.NewContinuous(initial),
		Beta:  beta,
		Alpha: 1 / float64(g.MaxDegree()+1),
	}
}

// OptimalBeta returns β* = 2/(1 + sqrt(1 − γ²)) for a diffusion matrix with
// second-largest eigenvalue magnitude γ.
func OptimalBeta(gamma float64) float64 {
	if gamma >= 1 {
		return 2
	}
	return 2 / (1 + math.Sqrt(1-gamma*gamma))
}

// Step advances one round. The very first round is a plain first-order
// step (there is no Lᵗ⁻² yet).
func (s *SecondOrder) Step() {
	g, cur := s.G, s.Load.Vector()
	n := g.N()
	if s.next == nil {
		s.next = make(matrix.Vector, n)
	}
	alpha, beta := s.Alpha, s.Beta
	workers := parallel.StepperWorkers(s.Workers)
	off, tgt := g.CSR()
	if s.round == 0 {
		s.prev = cur.Clone()
		parallel.For(n, workers, func(i int) {
			li := cur[i]
			acc := li
			for _, j := range tgt[off[i]:off[i+1]] {
				acc += alpha * (cur[j] - li)
			}
			s.next[i] = acc
		})
	} else {
		parallel.For(n, workers, func(i int) {
			li := cur[i]
			ml := li
			for _, j := range tgt[off[i]:off[i+1]] {
				ml += alpha * (cur[j] - li)
			}
			s.next[i] = beta*ml + (1-beta)*s.prev[i]
		})
	}
	copy(s.prev, cur)
	copy(cur, s.next)
	s.round++
}

// Potential returns Φ of the current distribution.
//
// Note: the second-order scheme is not monotone in Φ (individual loads can
// overshoot), which is exactly the behaviour the E12 comparison experiment
// shows; only the envelope decays at the accelerated rate.
func (s *SecondOrder) Potential() float64 { return s.Load.Potential() }

// LoadVector returns the live load vector (implements sim.ContinuousState).
// Injecting into it perturbs Lᵗ only; the scheme's Lᵗ⁻¹ memory is left to
// absorb the shock over the next rounds.
func (s *SecondOrder) LoadVector() []float64 { return s.Load.Vector() }

// MatrixStepper advances L ← M·L for an arbitrary diffusion matrix; it is
// the dense-reference implementation used in tests to validate the sparse
// steppers, and the substrate for the idealized-chain comparisons.
type MatrixStepper struct {
	M    *matrix.Dense
	Load *load.Continuous

	next matrix.Vector
}

// NewMatrixStepper wraps a diffusion matrix and initial loads.
func NewMatrixStepper(m *matrix.Dense, initial []float64) *MatrixStepper {
	if m.Rows() != len(initial) {
		panic("diffusion: matrix/load dimension mismatch")
	}
	return &MatrixStepper{M: m, Load: load.NewContinuous(initial)}
}

// Step advances one round.
func (ms *MatrixStepper) Step() {
	cur := ms.Load.Vector()
	if ms.next == nil {
		ms.next = make(matrix.Vector, len(cur))
	}
	ms.M.MulVecTo(ms.next, cur)
	copy(cur, ms.next)
}

// Potential returns Φ of the current distribution.
func (ms *MatrixStepper) Potential() float64 { return ms.Load.Potential() }
