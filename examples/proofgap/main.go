// Proofgap: a walk through the paper's analytical device on a concrete
// instance. We take one round of Algorithm 1 on a small torus, sequentialize
// it exactly as the proof does (activate edges in increasing weight order,
// flows frozen from the round start), print the per-edge potential drops
// against their Lemma 1 lower bounds, and verify:
//
//  1. every activation satisfies ΔΦ ≥ w·|ℓᵢ−ℓⱼ|          (Lemma 1),
//  2. the drops sum exactly to the concurrent round's drop (the
//     decomposition that lets the proof "neglect" concurrency),
//  3. the round drop meets the Lemma 2 bound (1/4δ)·Σ(ℓᵢ−ℓⱼ)².
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/diffusion"
	"repro/internal/graph"
	"repro/internal/matrix"
	"repro/internal/sequential"
	"repro/internal/workload"
)

func main() {
	g := graph.Torus(3, 3)
	rng := rand.New(rand.NewSource(3))
	l := matrix.Vector(workload.Continuous(workload.Uniform, g.N(), 100, rng))

	fmt.Printf("instance: %s, uniform random loads\n", g)
	fmt.Printf("start loads: ")
	for _, v := range l {
		fmt.Printf("%6.1f ", v)
	}
	fmt.Println()

	rt := sequential.Sequentialize(g, l, sequential.IncreasingWeight, rng)

	fmt.Println("\nsequentialized activations (increasing weight, flows frozen at round start):")
	fmt.Printf("%-10s %-10s %-12s %-14s %-14s %s\n", "edge", "w_ij", "|ℓᵢ-ℓⱼ|", "drop ΔΦ", "bound w·|diff|", "Lemma 1")
	for _, a := range rt.Activations {
		if a.Weight == 0 {
			continue
		}
		status := "ok"
		if !a.Lemma1Holds() {
			status = "VIOLATED"
		}
		fmt.Printf("(%2d,%2d)    %-10.4f %-12.4f %-14.6f %-14.6f %s\n",
			a.Edge.U, a.Edge.V, a.Weight, a.StartDiff, a.Drop, a.Lemma1RHS, status)
	}

	// The concurrent round from the same start.
	st := diffusion.NewContinuous(g, l)
	phi0 := st.Potential()
	st.Step()
	concurrentDrop := phi0 - st.Potential()

	fmt.Printf("\nΦ start                         : %.6f\n", rt.PhiStart)
	fmt.Printf("Σ per-activation drops          : %.6f\n", rt.TotalDrop())
	fmt.Printf("concurrent round drop           : %.6f  (identical — same flows)\n", concurrentDrop)
	fmt.Printf("Lemma 2 bound (1/4δ)·Σ(ℓᵢ-ℓⱼ)² : %.6f\n", rt.Lemma2RHS)
	fmt.Printf("Lemma 1 violations              : %d\n", rt.Lemma1Violations())

	// Contrast: a genuinely sequential greedy round (recompute flows after
	// every activation) — what a sequential algorithm could do with the
	// same edge budget.
	greedyEnd := sequential.GreedyRound(g, l, sequential.IncreasingWeight, rng)
	fmt.Printf("greedy sequential round drop    : %.6f (recomputes flows per edge)\n", rt.PhiStart-greedyEnd)
	fmt.Println("\nThe paper's point: the concurrent drop is within a constant factor of")
	fmt.Println("what any sequential attribution certifies — so the sequential analysis")
	fmt.Println("of [12] transfers to the concurrent algorithm at the cost of that factor.")
}
