// Package signals centralizes the graceful-shutdown contract the CLIs
// (lbbench, lborch, lbserved) share: the first SIGINT/SIGTERM cancels the
// returned context so in-flight work can drain — journals flush, shards
// are reaped, the daemon finishes its drain rounds — and immediately
// restores the default disposition, so a second signal terminates the
// process instead of being swallowed while it drains.
package signals

import (
	"context"
	"os"
	"os/signal"
	"syscall"
)

// Graceful returns a context cancelled by the first SIGINT/SIGTERM (or by
// the returned CancelFunc). The signal handler un-installs itself the
// moment the context is done, so the second signal kills. Callers should
// `defer stop()` like any NotifyContext.
func Graceful(parent context.Context) (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-ctx.Done()
		stop()
	}()
	return ctx, stop
}
