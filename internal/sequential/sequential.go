// Package sequential implements the paper's central analytical device as an
// executable system: the sequentialization of one concurrent diffusion
// round.
//
// Algorithm 1 fixes all edge flows from the round-start load vector and
// applies them simultaneously. The proof instead activates the edges one by
// one in increasing order of their weights w_ij = |ℓᵢ−ℓⱼ|/(4·max(dᵢ,dⱼ)),
// applying each (fixed, precomputed) flow to the evolving intermediate
// vector, and lower-bounds the potential drop of every single activation
// (Lemma 1: ΔΦᵗ_ℓ ≥ w_ij·|ℓᵢ−ℓⱼ|). Because the flows are fixed, the state
// after all activations is exactly the concurrent round's result, so the
// per-activation drops are an exact additive decomposition of the round's
// total drop — that is the sense in which "the concurrency can be
// neglected".
//
// This package executes that decomposition (Sequentialize), checks Lemma 1
// per activation, evaluates the Lemma 2 round bound, and measures the gap
// against a genuinely sequential greedy balancer that recomputes flows
// after every activation (GreedyRound) — quantifying what concurrency
// actually costs, the paper's headline "factor of two at most".
package sequential

import (
	"math/rand"
	"sort"

	"repro/internal/diffusion"
	"repro/internal/graph"
	"repro/internal/load"
	"repro/internal/matrix"
)

// Order selects the edge-activation order of the sequentialization.
type Order int

const (
	// IncreasingWeight is the paper's order (smallest w_ij first); Lemma 1
	// is proved for this order.
	IncreasingWeight Order = iota
	// DecreasingWeight activates heaviest edges first (ablation A2).
	DecreasingWeight
	// RandomOrder activates edges in a uniformly random order (ablation A2).
	RandomOrder
)

// String implements fmt.Stringer.
func (o Order) String() string {
	switch o {
	case IncreasingWeight:
		return "increasing"
	case DecreasingWeight:
		return "decreasing"
	case RandomOrder:
		return "random"
	default:
		return "unknown"
	}
}

// Activation records one edge activation of the sequentialized round.
type Activation struct {
	Edge      graph.Edge
	Weight    float64 // w_ij fixed from the round-start vector
	StartDiff float64 // |ℓᵢ − ℓⱼ| at round start
	Drop      float64 // exact potential drop of this activation
	Lemma1RHS float64 // w_ij·|ℓᵢ−ℓⱼ|, the Lemma 1 lower bound
}

// Lemma1Holds reports whether this activation satisfied Lemma 1 up to
// floating-point slack.
func (a Activation) Lemma1Holds() bool {
	const slack = 1e-9
	return a.Drop >= a.Lemma1RHS-slack*(1+a.Lemma1RHS)
}

// RoundTrace is the full decomposition of one sequentialized round.
type RoundTrace struct {
	Order       Order
	Activations []Activation
	PhiStart    float64
	PhiEnd      float64
	Lemma2RHS   float64 // (1/4δ)·Σ_{(i,j)∈E}(ℓᵢ−ℓⱼ)²
}

// TotalDrop returns Φ(start) − Φ(end) for the round.
func (rt RoundTrace) TotalDrop() float64 { return rt.PhiStart - rt.PhiEnd }

// Lemma1Violations counts activations whose exact drop fell below the
// Lemma 1 bound. For IncreasingWeight order on any graph this is 0; the
// ablation orders can and do violate it.
func (rt RoundTrace) Lemma1Violations() int {
	v := 0
	for _, a := range rt.Activations {
		if !a.Lemma1Holds() {
			v++
		}
	}
	return v
}

// Lemma2Holds reports whether the round's total drop meets the Lemma 2
// lower bound.
func (rt RoundTrace) Lemma2Holds() bool {
	const slack = 1e-9
	return rt.TotalDrop() >= rt.Lemma2RHS-slack*(1+rt.Lemma2RHS)
}

// Sequentialize performs the sequentialized version of one continuous
// Algorithm 1 round on graph g from load vector l (not modified), using the
// given activation order. rng is only consulted for RandomOrder.
func Sequentialize(g *graph.G, l matrix.Vector, order Order, rng *rand.Rand) RoundTrace {
	n := g.N()
	if len(l) != n {
		panic("sequential: load length mismatch")
	}
	cur := l.Clone()
	avg := cur.Mean()
	phi := load.PotentialAround(cur, avg)

	// Fix flows and weights from the round-start vector.
	edges := g.Edges()
	acts := make([]Activation, 0, len(edges))
	for _, e := range edges {
		w := diffusion.EdgeWeight(g, e.U, e.V, l[e.U], l[e.V])
		diff := l[e.U] - l[e.V]
		if diff < 0 {
			diff = -diff
		}
		acts = append(acts, Activation{Edge: e, Weight: w, StartDiff: diff, Lemma1RHS: w * diff})
	}
	switch order {
	case IncreasingWeight:
		sort.SliceStable(acts, func(i, j int) bool { return acts[i].Weight < acts[j].Weight })
	case DecreasingWeight:
		sort.SliceStable(acts, func(i, j int) bool { return acts[i].Weight > acts[j].Weight })
	case RandomOrder:
		rng.Shuffle(len(acts), func(i, j int) { acts[i], acts[j] = acts[j], acts[i] })
	}

	rt := RoundTrace{Order: order, PhiStart: phi}
	for k := range acts {
		a := &acts[k]
		if a.Weight == 0 {
			continue
		}
		// Direction: from the round-start heavier endpoint.
		from, to := a.Edge.U, a.Edge.V
		if l[from] < l[to] {
			from, to = to, from
		}
		// Exact drop of moving w between the intermediate loads — the
		// paper's own expansion 2w·(ℓ_from − ℓ_to − w). Differencing the
		// squared deviations instead cancels catastrophically once the
		// weights are many orders below the loads (spike workloads).
		a.Drop = 2 * a.Weight * (cur[from] - cur[to] - a.Weight)
		cur[from] -= a.Weight
		cur[to] += a.Weight
		phi -= a.Drop
	}
	rt.Activations = acts
	rt.PhiEnd = load.PotentialAround(cur, avg)

	delta := float64(g.MaxDegree())
	var sumSq float64
	for _, e := range edges {
		d := l[e.U] - l[e.V]
		sumSq += d * d
	}
	if delta > 0 {
		rt.Lemma2RHS = sumSq / (4 * delta)
	}
	return rt
}

// GreedyRound performs a genuinely sequential round: edges are visited in
// the given order, and each visit recomputes the transfer from the *current*
// loads (move |ℓᵢ−ℓⱼ|/(4·max(dᵢ,dⱼ)) from the currently heavier endpoint).
// This is the natural sequential analogue the proof compares against; its
// round drop can exceed the concurrent round's because later edges see the
// improvements of earlier ones. Returns the end potential.
func GreedyRound(g *graph.G, l matrix.Vector, order Order, rng *rand.Rand) float64 {
	cur := l.Clone()
	avg := cur.Mean()
	edges := append([]graph.Edge(nil), g.Edges()...)
	switch order {
	case IncreasingWeight:
		sort.SliceStable(edges, func(i, j int) bool {
			return diffusion.EdgeWeight(g, edges[i].U, edges[i].V, l[edges[i].U], l[edges[i].V]) <
				diffusion.EdgeWeight(g, edges[j].U, edges[j].V, l[edges[j].U], l[edges[j].V])
		})
	case DecreasingWeight:
		sort.SliceStable(edges, func(i, j int) bool {
			return diffusion.EdgeWeight(g, edges[i].U, edges[i].V, l[edges[i].U], l[edges[i].V]) >
				diffusion.EdgeWeight(g, edges[j].U, edges[j].V, l[edges[j].U], l[edges[j].V])
		})
	case RandomOrder:
		rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	}
	for _, e := range edges {
		w := diffusion.EdgeWeight(g, e.U, e.V, cur[e.U], cur[e.V])
		if w == 0 {
			continue
		}
		from, to := e.U, e.V
		if cur[from] < cur[to] {
			from, to = to, from
		}
		cur[from] -= w
		cur[to] += w
	}
	return load.PotentialAround(cur, avg)
}

// GapReport compares the concurrent round against its decompositions.
type GapReport struct {
	PhiStart        float64
	ConcurrentDrop  float64 // drop of the real Algorithm 1 round
	SequentialDrop  float64 // drop of the fixed-flow sequentialization (identical by construction; recorded as a cross-check)
	GreedyDrop      float64 // drop of the recomputing greedy sequential round
	Lemma1SumRHS    float64 // Σ w_ij·|ℓᵢ−ℓⱼ| — the analysis' lower bound on the round drop
	Lemma2RHS       float64
	Lemma1Violated  int
	ConcurrentRatio float64 // ConcurrentDrop / Lemma1SumRHS (≥ 1 when Lemma 1 holds edgewise)
}

// MeasureGap runs one concurrent round, its sequentialization, and the
// greedy sequential round from the same start vector and reports the drops.
func MeasureGap(g *graph.G, l matrix.Vector, rng *rand.Rand) GapReport {
	avg := l.Mean()
	phi0 := load.PotentialAround(l, avg)

	// Concurrent round.
	step := diffusion.NewContinuous(g, l)
	step.Step()
	phiConc := load.PotentialAround(step.Load.Vector(), avg)

	rt := Sequentialize(g, l, IncreasingWeight, rng)
	phiGreedy := GreedyRound(g, l, IncreasingWeight, rng)

	var sumRHS float64
	for _, a := range rt.Activations {
		sumRHS += a.Lemma1RHS
	}
	rep := GapReport{
		PhiStart:       phi0,
		ConcurrentDrop: phi0 - phiConc,
		SequentialDrop: rt.TotalDrop(),
		GreedyDrop:     phi0 - phiGreedy,
		Lemma1SumRHS:   sumRHS,
		Lemma2RHS:      rt.Lemma2RHS,
		Lemma1Violated: rt.Lemma1Violations(),
	}
	if sumRHS > 0 {
		rep.ConcurrentRatio = rep.ConcurrentDrop / sumRHS
	}
	return rep
}
