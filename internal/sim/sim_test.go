package sim

import (
	"math"
	"testing"

	"repro/internal/diffusion"
	"repro/internal/graph"
	"repro/internal/workload"
)

// halver is a trivial System whose potential halves every round.
type halver struct{ phi float64 }

func (h *halver) Step()              { h.phi /= 2 }
func (h *halver) Potential() float64 { return h.phi }

func TestRunRecordsTrajectory(t *testing.T) {
	res := Run(&halver{phi: 16}, 3, Never())
	want := []float64{16, 8, 4, 2}
	if res.Rounds != 3 || len(res.Phi) != 4 {
		t.Fatalf("result %+v", res)
	}
	for i, v := range want {
		if res.Phi[i] != v {
			t.Fatalf("Phi[%d] = %v, want %v", i, res.Phi[i], v)
		}
	}
	if res.Converged {
		t.Fatal("Never() must not converge")
	}
}

func TestRunStopsAtTarget(t *testing.T) {
	res := Run(&halver{phi: 16}, 100, UntilPotential(4))
	if !res.Converged || res.Rounds != 2 {
		t.Fatalf("result %+v", res)
	}
}

func TestRunStopImmediately(t *testing.T) {
	res := Run(&halver{phi: 1}, 100, UntilPotential(2))
	if !res.Converged || res.Rounds != 0 {
		t.Fatalf("should converge before stepping: %+v", res)
	}
}

func TestRunZeroRounds(t *testing.T) {
	res := Run(&halver{phi: 5}, 0, Never())
	if res.Rounds != 0 || res.PhiStart() != 5 || res.PhiEnd() != 5 {
		t.Fatalf("zero-round run %+v", res)
	}
}

func TestRunNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Run(&halver{phi: 1}, -1, Never())
}

func TestUntilFraction(t *testing.T) {
	res := Run(&halver{phi: 100}, 100, UntilFraction(100, 0.1))
	if !res.Converged || res.PhiEnd() > 10 {
		t.Fatalf("%+v", res)
	}
}

func TestDropFactors(t *testing.T) {
	res := Run(&halver{phi: 8}, 3, Never())
	for _, f := range res.DropFactors() {
		if f != 0.5 {
			t.Fatalf("drop factor %v", f)
		}
	}
}

func TestRoundsToFraction(t *testing.T) {
	if got := RoundsToFraction(&halver{phi: 64}, 1.0/64, 100); got != 6 {
		t.Fatalf("rounds %d, want 6", got)
	}
	// Unreachable target returns the sentinel maxRounds+1.
	if got := RoundsToFraction(&halver{phi: 64}, 0, 10); got != 11 {
		t.Fatalf("sentinel %d, want 11", got)
	}
	// Already balanced start.
	if got := RoundsToFraction(&halver{phi: 0}, 0.5, 10); got != 0 {
		t.Fatalf("balanced start %d", got)
	}
}

func TestMeanDropFactor(t *testing.T) {
	got := MeanDropFactor(&halver{phi: 100}, 10)
	if math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("mean factor %v", got)
	}
	if !math.IsNaN(MeanDropFactor(&halver{phi: 0}, 5)) {
		t.Fatal("balanced start must be NaN")
	}
}

func TestRunWithRealSystem(t *testing.T) {
	// Integration: drive the real continuous diffusion through the sim
	// layer and confirm the theorem-shaped behaviour end to end.
	g := graph.Torus(4, 4)
	init := workload.Continuous(workload.Spike, g.N(), 1e6, nil)
	st := diffusion.NewContinuous(g, init)
	phi0 := st.Potential()
	res := Run(st, 5000, UntilFraction(phi0, 1e-4))
	if !res.Converged {
		t.Fatalf("did not converge: %v", res)
	}
	// Trajectory must be monotone non-increasing.
	for i := 1; i < len(res.Phi); i++ {
		if res.Phi[i] > res.Phi[i-1]+1e-9*(1+res.Phi[i-1]) {
			t.Fatalf("Φ rose at %d", i)
		}
	}
}

func TestRunNilStop(t *testing.T) {
	res := Run(&halver{phi: 4}, 2, nil)
	if res.Rounds != 2 || res.Converged {
		t.Fatalf("nil stop: %+v", res)
	}
}
