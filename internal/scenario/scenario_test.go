package scenario

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/workload"
)

// TestRegistryRoundTrip: every scenario kind must have a registered name
// that parses back, and the count sentinel must cover every declared
// constant — adding a generator without registering it fails here, not at
// sweep time.
func TestRegistryRoundTrip(t *testing.T) {
	err := VerifyRegistry(int(kindCount),
		func(i int) string { return Kind(i).String() },
		func(s string) (int, error) {
			k, err := ParseKind(s)
			return int(k), err
		})
	if err != nil {
		t.Fatalf("scenario registry: %v", err)
	}
}

// TestWorkloadRegistryRoundTrip applies the same quick-check to the
// workload registry — the two registries share one exhaustiveness
// invariant and now share one test for it.
func TestWorkloadRegistryRoundTrip(t *testing.T) {
	err := VerifyRegistry(len(workload.AllKinds()),
		func(i int) string { return workload.Kind(i).String() },
		func(s string) (int, error) {
			k, err := workload.ParseKind(s)
			return int(k), err
		})
	if err != nil {
		t.Fatalf("workload registry: %v", err)
	}
}

// TestParseCanonicalRoundTrip: Parse∘String is the identity, defaults
// included, for every registered kind and for explicit parameters.
func TestParseCanonicalRoundTrip(t *testing.T) {
	var cases []string
	for _, name := range Names() {
		if name == "trace" {
			// The bare kind name is not parseable — trace always carries
			// a path, case preserved.
			name = "trace:testdata/Events.jsonl"
		}
		cases = append(cases, name)
	}
	cases = append(cases,
		"poisson-arrivals:0.05", "bursty:32:0.5", "adversarial-respike:4:1",
		"hotspot-drift:0.1:2", "edge-churn:0.25", "periodic-failures:16:3",
		"  Adversarial-Respike  ", "bursty:32")
	for _, in := range cases {
		sp, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		canon := sp.String()
		sp2, err := Parse(canon)
		if err != nil {
			t.Fatalf("Parse(%q) (canonical of %q): %v", canon, in, err)
		}
		if !reflect.DeepEqual(sp, sp2) {
			t.Fatalf("canonical %q re-parses to %+v, want %+v", canon, sp2, sp)
		}
	}
}

func TestParseRejects(t *testing.T) {
	for _, in := range []string{
		"", "wat", "static:1", "poisson-arrivals:0", "poisson-arrivals:x",
		"bursty:1.5", "edge-churn:2", "bursty:8:0.5:9", "periodic-failures:0",
		"trace", "trace:", "trace:a,b.jsonl", "trace:has space.jsonl",
	} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) accepted", in)
		}
	}
}

// TestDescriptionsCoverEveryKind: the -list surface must describe every
// registered kind (matched on the base name before any parameter syntax).
func TestDescriptionsCoverEveryKind(t *testing.T) {
	desc := map[string]bool{}
	for _, d := range Descriptions() {
		base := strings.SplitN(d[0], "[", 2)[0]
		base = strings.SplitN(base, ":", 2)[0] // trace:<file.jsonl> → trace
		desc[base] = true
	}
	for _, name := range Names() {
		if !desc[name] {
			t.Errorf("no description for scenario %q", name)
		}
	}
}

// TestInstanceDeterminism: the same seed must produce the same arrival and
// graph schedule; a different seed must not (for the randomized kinds).
func TestInstanceDeterminism(t *testing.T) {
	base := graph.Torus(4, 4)
	loads := make([]float64, base.N())
	loads[3] = 100
	for _, name := range []string{
		"poisson-arrivals", "bursty:2:0.5", "adversarial-respike:2:0.5",
		"hotspot-drift", "edge-churn:0.3", "periodic-failures:2:3",
	} {
		sp, err := Parse(name)
		if err != nil {
			t.Fatal(err)
		}
		run := func(seed int64) (fp []uint64, arr [][]Arrival) {
			inst, err := sp.New(base, 1000, rand.New(rand.NewSource(seed)))
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			for k := 0; k < 16; k++ {
				fp = append(fp, inst.Graph(k).Fingerprint())
				arr = append(arr, inst.Arrivals(k, loads))
			}
			return fp, arr
		}
		fp1, arr1 := run(7)
		fp2, arr2 := run(7)
		if !reflect.DeepEqual(fp1, fp2) || !reflect.DeepEqual(arr1, arr2) {
			t.Fatalf("%s: same seed, different schedule", name)
		}
	}
}

// TestAdversarialRespikeAims: the respike must land on the currently
// most-loaded node, with the lowest index winning ties.
func TestAdversarialRespikeAims(t *testing.T) {
	base := graph.Cycle(8)
	sp, err := Parse("adversarial-respike:1:0.5")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := sp.New(base, 1000, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	inst.Graph(0)
	loads := []float64{1, 9, 2, 9, 0, 0, 0, 0}
	arr := inst.Arrivals(0, loads)
	if len(arr) != 1 || arr[0].Node != 1 || arr[0].Amount != 500 {
		t.Fatalf("respike = %+v, want node 1 amount 500", arr)
	}
}

// TestChurnScenariosAreArrivalFree: topology-churn scenarios inject
// nothing (their runs may stop early on the balance target), while the
// arrival scenarios do not claim that.
func TestChurnScenariosAreArrivalFree(t *testing.T) {
	base := graph.Cycle(8)
	for name, wantFree := range map[string]bool{
		"static": true, "edge-churn": true, "periodic-failures": true,
		"poisson-arrivals": false, "bursty": false,
		"adversarial-respike": false, "hotspot-drift": false,
	} {
		sp, err := Parse(name)
		if err != nil {
			t.Fatal(err)
		}
		inst, err := sp.New(base, 100, rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatal(err)
		}
		if inst.ArrivalFree() != wantFree {
			t.Errorf("%s: ArrivalFree = %v, want %v", name, inst.ArrivalFree(), wantFree)
		}
	}
}

// TestPeriodicFailuresHoldsPerPeriod: the failed edge set must persist for
// the whole period, then redraw.
func TestPeriodicFailuresHoldsPerPeriod(t *testing.T) {
	base := graph.Torus(4, 4)
	sp, err := Parse("periodic-failures:4:3")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := sp.New(base, 100, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	g0 := inst.Graph(0)
	for k := 1; k < 4; k++ {
		if inst.Graph(k) != g0 {
			t.Fatalf("round %d swapped graphs inside a period", k)
		}
	}
	if g4 := inst.Graph(4); g4 == g0 {
		t.Fatal("round 4 did not redraw the failure set")
	} else if g4.M() != base.M()-3 {
		t.Fatalf("redrawn graph has %d edges, want %d", g4.M(), base.M()-3)
	}
	if g0.M() != base.M()-3 {
		t.Fatalf("failed graph has %d edges, want %d", g0.M(), base.M()-3)
	}
}

// TestStaticIsNoOp: the zero Spec is static, returns the base graph and no
// arrivals.
func TestStaticIsNoOp(t *testing.T) {
	var sp Spec
	if !sp.IsStatic() || sp.String() != "static" {
		t.Fatalf("zero Spec = %q, IsStatic %v", sp.String(), sp.IsStatic())
	}
	base := graph.Cycle(4)
	inst, err := sp.New(base, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Graph(5) != base || inst.Arrivals(5, []float64{1, 2, 3, 4}) != nil {
		t.Fatal("static scenario is not a no-op")
	}
}
