// Package parallel provides the goroutine-parallel execution primitives the
// simulator uses: a bounded worker pool, a blocked parallel-for over index
// ranges, and per-goroutine deterministic RNG streams (so that parallel
// randomized algorithms remain reproducible from a single seed regardless
// of scheduling).
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// StepperWorkers normalizes a stepper's round-level Workers field: any
// value below 1 — in particular the zero value of a stepper constructed
// without an explicit worker count — selects the serial path. Round-level
// parallelism is an explicit opt-in, unlike the pool-level convention where
// 0 means GOMAXPROCS: a stepper embedded in a unit-parallel sweep must not
// silently oversubscribe the machine just because nobody set the field.
func StepperWorkers(w int) int {
	if w < 1 {
		return 1
	}
	return w
}

// For runs body(i) for every i in [0, n) across at most workers goroutines,
// blocking until all iterations complete. workers ≤ 0 selects GOMAXPROCS.
// Iterations are distributed in contiguous blocks to keep cache locality on
// the load vectors.
func For(n, workers int, body func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	var wg sync.WaitGroup
	block := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * block
		hi := lo + block
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				body(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// ForDynamic runs body(i) for every i in [0, n) across at most workers
// goroutines, handing out indices one at a time from a shared counter.
// Unlike For's contiguous blocks, this keeps all workers busy when
// iteration costs are wildly uneven (e.g. batch run units whose simulated
// rounds differ by orders of magnitude). workers ≤ 0 selects GOMAXPROCS.
func ForDynamic(n, workers int, body func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				body(i)
			}
		}()
	}
	wg.Wait()
}

// ForBlocks runs body(lo, hi) over contiguous blocks of [0, n) in parallel.
// Useful when the body wants to keep per-block accumulators.
func ForBlocks(n, workers int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		body(0, n)
		return
	}
	var wg sync.WaitGroup
	block := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * block
		hi := lo + block
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Pool is a reusable fixed-size worker pool for heterogeneous tasks.
type Pool struct {
	tasks chan func()
	wg    sync.WaitGroup
	once  sync.Once
}

// NewPool starts a pool with the given number of workers (GOMAXPROCS if
// ≤ 0). Close must be called to release the workers.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{tasks: make(chan func(), workers*2)}
	for i := 0; i < workers; i++ {
		go func() {
			for t := range p.tasks {
				t()
				p.wg.Done()
			}
		}()
	}
	return p
}

// Submit schedules a task. It may block if the queue is full.
func (p *Pool) Submit(task func()) {
	p.wg.Add(1)
	p.tasks <- task
}

// Wait blocks until every submitted task has completed.
func (p *Pool) Wait() { p.wg.Wait() }

// Close waits for outstanding tasks and stops the workers. The pool must
// not be used afterwards.
func (p *Pool) Close() {
	p.wg.Wait()
	p.once.Do(func() { close(p.tasks) })
}
