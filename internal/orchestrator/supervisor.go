package orchestrator

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/batch"
	"repro/internal/obs"
)

// Per-backend fleet counters on the process-wide registry — always on;
// every event here already costs a process spawn or a log line.
func backendCounter(name, help, backend string) *obs.Counter {
	return obs.Default().Counter(name, help, obs.L("backend", backend))
}

func countLaunch(backend string) {
	backendCounter("orchestrator_launches_total", "Task attempts launched, by backend.", backend).Inc()
}
func countRestart(backend string) {
	backendCounter("orchestrator_restarts_total", "Task attempts restarted after a death, by backend.", backend).Inc()
}
func countStall(backend string) {
	backendCounter("orchestrator_stalls_total", "Stall warnings fired, by backend.", backend).Inc()
}
func countSteal(backend string) {
	backendCounter("orchestrator_steals_total", "Steal victims carved, by backend.", backend).Inc()
}

// Supervisor executes a Plan across one or more Launchers — local
// subprocesses by default (all sharing the inherited environment; point
// LB_SPECCACHE_DIR at a directory first and the children share
// eigensolves), ssh hosts or a Slurm queue when configured — supervised
// until every task's journal is complete. A task that dies — crash, OOM
// kill, SIGKILL, lost host — is restarted with -resume against its own
// journal, up to Policy.MaxRetries times, with every restart reported
// loudly; the journals make restarts cheap (only the dead task's missing
// units re-run). While tasks run, the supervisor tails their journals
// (fetching them home first on remote backends) and renders task-aware
// progress to Log.
//
// With Policy.StealAfter set the supervisor is elastic: a task whose
// journal stops moving for that long, or that dies past its retry cap, has
// its unstarted unit range carved into sub-shards and reassigned to idle
// launchers. Stolen journals carry the same strictly-increasing global unit
// indices the victim would have written, so the final merge — and the
// rendered report — stays byte-identical to an uninterrupted single-process
// sweep.
type Supervisor struct {
	Plan *Plan
	// Command is the argv prefix spawning one task attempt when the task's
	// flags are appended — typically the lbbench binary. Used to build the
	// default local launcher; ignored when Launchers is set.
	Command []string
	// Launchers are the execution backends, tried in order when scheduling.
	// Empty means one unbounded LocalLauncher over Command — the classic
	// local supervise, behavior-identical to the pre-Launcher orchestrator.
	Launchers []Launcher
	// Policy is the restart/stall/steal policy; the zero value selects the
	// documented defaults (3 retries, 1s poll, 60s stall warning, stealing
	// off).
	Policy Policy
	// Log receives progress lines and supervision events (default
	// os.Stderr). Child stderr goes to per-task files under Plan.Dir, so
	// Log stays readable.
	Log io.Writer
	// Tracer, when non-nil, records the fleet's task lifecycle as spans:
	// one complete span per attempt (launch → exit) on a per-task row,
	// instant events for stalls, steals and restarts, and the final merge
	// as its own span. Out-of-band like all telemetry — journals and the
	// rendered report are unaffected. Nil is the no-op default.
	Tracer *obs.Tracer

	// finalJournals is the journal set Run actually produced — the planned
	// shards plus any stolen sub-shards — for RunAndReport's merge.
	finalJournals []string
}

// schedState is a task's scheduling state inside the supervise loop.
type schedState int

const (
	schedPending schedState = iota // waiting for a launcher slot
	schedRunning
	schedStealing // killed on purpose; waiting for the exit to carve it
	schedDone
	schedFailed
)

// task is the supervisor's live view of one schedulable Task.
type task struct {
	*Task
	tr        int // tracker index
	state     schedState
	attempt   int // restarts consumed
	gen       int // steal generation: 0 planned, 1 stolen, 2 re-stolen (cap)
	launcher  Launcher
	handle    Handle
	tailer    *batch.JournalTailer
	lastFetch time.Time
	err       error

	tid          int64 // trace row (tracker index + 1; 0 is the merge/root row)
	attemptStart int64 // µs on the tracer clock when the running attempt launched
}

// exitEvent is one attempt's Wait result, posted to the supervise loop.
type exitEvent struct {
	t   *task
	err error
}

// run is one Run invocation's mutable state. Everything is owned by the
// single supervise-loop goroutine; attempt Waits run in their own
// goroutines but only communicate through the exits channel.
type run struct {
	s         *Supervisor
	ctx       context.Context
	pol       Policy
	log       io.Writer
	launchers []Launcher
	tr        *tracker
	tasks     []*task
	used      map[Launcher]int // running attempts per launcher
	stealSeq  map[int]int      // stolen-journal sequence per shard index
	exits     chan exitEvent
	lastLine  string
}

// Run spawns, supervises and waits for every task. It returns nil when the
// sweep's journals are complete and ready to merge (including via steals),
// the context error when cancelled (children are interrupted gracefully so
// their journals stay resumable — re-running the same spawn resumes them),
// and otherwise an error naming every task that exhausted its retries.
func (s *Supervisor) Run(ctx context.Context) error {
	launchers := s.Launchers
	if len(launchers) == 0 {
		if len(s.Command) == 0 {
			return fmt.Errorf("orchestrator: no command to spawn shards with")
		}
		launchers = []Launcher{&LocalLauncher{Command: s.Command}}
	}
	log := s.Log
	if log == nil {
		log = os.Stderr
	}
	if s.Plan.Dir != "" {
		if err := os.MkdirAll(s.Plan.Dir, 0o755); err != nil {
			return fmt.Errorf("orchestrator: %w", err)
		}
	}
	r := &run{
		s:         s,
		ctx:       ctx,
		pol:       s.Policy.withDefaults(),
		log:       log,
		launchers: launchers,
		tr:        newTracker(s.Plan.TotalUnits(), time.Now()),
		used:      make(map[Launcher]int),
		stealSeq:  make(map[int]int),
		exits:     make(chan exitEvent),
	}
	for _, pt := range s.Plan.Tasks() {
		r.addTask(pt, 0)
	}

	fmt.Fprintf(log, "orchestrator: %d shards x %d units, journals under %s\n",
		len(s.Plan.Shards), s.Plan.TotalUnits(), s.Plan.Dir)
	if len(launchers) > 1 || launchers[0].Name() != "local" {
		names := make([]string, len(launchers))
		for i, l := range launchers {
			names[i] = l.Name()
		}
		r.logf("launchers: %s", strings.Join(names, ", "))
	}

	r.schedule()
	ticker := time.NewTicker(r.pol.Interval)
	defer ticker.Stop()
	ctxDone := ctx.Done()
	for r.active() > 0 {
		select {
		case <-ctxDone:
			ctxDone = nil // handled once; attempts already got their SIGINT
			r.failPending()
		case ev := <-r.exits:
			r.handleExit(ev.t, ev.err)
			if ctx.Err() == nil {
				r.schedule()
			} else {
				r.failPending()
			}
		case <-ticker.C:
			if ctx.Err() == nil {
				// Scheduling re-runs every tick too: tasks re-pended by a
				// synchronous launch failure, and sub-shards carved mid-pass,
				// have no exit event of their own to ride on.
				r.schedule()
				r.poll()
			}
		}
	}

	// Final scan + line so the last render reflects the finished journals
	// even when the ticker never fired between the last cell and exit.
	now := time.Now()
	for _, t := range r.tasks {
		if p, err := t.tailer.Scan(); err == nil {
			r.tr.observe(t.tr, p, now)
		}
	}
	fmt.Fprintf(log, "orchestrator: %s\n", r.tr.render(now))
	fmt.Fprintf(log, "orchestrator: %s\n", r.tr.summary())
	_ = s.Tracer.Flush()

	s.finalJournals = nil
	for _, t := range r.tasks {
		// A steal victim killed before it created its journal contributes
		// nothing; every other task's journal is part of the merge.
		if journalExists(t.Journal) {
			s.finalJournals = append(s.finalJournals, t.Journal)
		}
	}

	if ctx.Err() != nil {
		r.logf("interrupted — journals are resumable; re-run the same spawn to resume")
		return ctx.Err()
	}
	var errs []error
	for _, t := range r.tasks {
		if t.err != nil {
			errs = append(errs, t.err)
		}
	}
	return errors.Join(errs...)
}

func (r *run) logf(format string, args ...any) {
	fmt.Fprintf(r.log, "orchestrator: "+format+"\n", args...)
}

// addTask registers t with the tracker and the task list.
func (r *run) addTask(t *Task, gen int) *task {
	tt := &task{
		Task:   t,
		tr:     r.tr.add(t.Label, t.Units, time.Now()),
		gen:    gen,
		tailer: batch.NewJournalTailer(t.Journal),
	}
	tt.tid = int64(tt.tr) + 1
	r.s.Tracer.ThreadName(tt.tid, t.Label)
	r.tasks = append(r.tasks, tt)
	return tt
}

// active counts tasks that still need supervision.
func (r *run) active() int {
	n := 0
	for _, t := range r.tasks {
		switch t.state {
		case schedPending, schedRunning, schedStealing:
			n++
		}
	}
	return n
}

// freeLauncher finds the first launcher with a free slot, in configuration
// order — local first in a mixed fleet, so cheap capacity fills before
// remote round trips.
func (r *run) freeLauncher() Launcher {
	for _, l := range r.launchers {
		if l.Slots() <= 0 || r.used[l] < l.Slots() {
			return l
		}
	}
	return nil
}

// idleSlots is the scheduling headroom a carve may fan into. An unbounded
// launcher reports maxCarve — the carve width cap keeps it honest.
func (r *run) idleSlots() int {
	n := 0
	for _, l := range r.launchers {
		if l.Slots() <= 0 {
			return maxCarve
		}
		if free := l.Slots() - r.used[l]; free > 0 {
			n += free
		}
	}
	return n
}

// schedule launches pending tasks onto free launcher slots. A Launch
// failure is a death like any other — it consumes a retry (or the carve /
// permanent-failure path) through the same handler as a crash.
func (r *run) schedule() {
	for _, t := range r.tasks {
		if t.state != schedPending {
			continue
		}
		l := r.freeLauncher()
		if l == nil {
			return
		}
		resume := journalExists(t.Journal)
		countLaunch(l.Name())
		t.attemptStart = r.s.Tracer.Now()
		h, err := l.Launch(r.ctx, t.Task, r.s.Plan.TaskArgs(t.Task, resume))
		if err != nil {
			t.launcher = l
			r.used[l]++ // handleExit undoes this; keeps its accounting uniform
			r.handleExit(t, fmt.Errorf("launch on %s: %w", l.Name(), err))
			continue
		}
		r.s.Tracer.Instant("launch", "orchestrator", t.tid,
			map[string]any{"task": t.Label, "backend": l.Name(), "attempt": t.attempt, "resume": resume})
		t.state, t.launcher, t.handle = schedRunning, l, h
		t.lastFetch = time.Now()
		r.used[l]++
		go func(t *task, l Launcher, h Handle) {
			r.exits <- exitEvent{t: t, err: l.Wait(h)}
		}(t, l, h)
	}
}

// failPending marks never-launched tasks interrupted once the context is
// gone; running attempts finish through their exit events.
func (r *run) failPending() {
	for _, t := range r.tasks {
		if t.state == schedPending {
			t.state = schedFailed
			t.err = r.ctx.Err()
			r.tr.setPhase(t.tr, phaseFailed)
		}
	}
}

// poll is one progress tick: fetch remote journals home (throttled), fold
// the tails, fire stall warnings, trigger steals, render.
func (r *run) poll() {
	now := time.Now()
	for _, t := range r.tasks {
		if t.state != schedRunning && t.state != schedStealing {
			continue
		}
		if now.Sub(t.lastFetch) >= r.pol.FetchInterval {
			t.lastFetch = now
			if err := t.launcher.FetchJournal(t.Task); err != nil {
				r.logf("task %s: %v", t.Label, err)
			}
		}
		if p, err := t.tailer.Scan(); err == nil {
			r.tr.observe(t.tr, p, now)
		}
	}
	for _, t := range r.tasks {
		if t.state != schedRunning {
			continue
		}
		if r.pol.StealAfter > 0 && t.gen < maxGen && r.tr.idleFor(t.tr, now) >= r.pol.StealAfter {
			r.logf("task %s stalled for %s — killing it to steal its remaining units", t.Label, r.pol.StealAfter)
			r.s.Tracer.Instant("steal-kill", "orchestrator", t.tid, map[string]any{"task": t.Label})
			if err := t.launcher.Signal(t.handle, syscall.SIGKILL); err != nil {
				r.logf("task %s: kill: %v", t.Label, err)
				r.tr.touch(t.tr, now) // rearm instead of hammering every tick
				continue
			}
			t.state = schedStealing
			continue
		}
		if r.tr.checkStall(t.tr, now, r.pol.StallAfter) {
			countStall(t.launcher.Name())
			r.s.Tracer.Instant("stall", "orchestrator", t.tid, map[string]any{"task": t.Label})
			r.logf("task %s looks stalled: journal %s unchanged for %s", t.Label, t.Journal, r.pol.StallAfter)
		}
	}
	if line := r.tr.render(now); line != r.lastLine {
		r.lastLine = line
		fmt.Fprintf(r.log, "orchestrator: %s\n", line)
	}
}

// handleExit settles one attempt: fetch the journal one last time, judge
// the task by what it actually journaled, and decide done / restart /
// carve / permanent failure.
func (r *run) handleExit(t *task, waitErr error) {
	r.used[t.launcher]--
	t.handle = nil
	if err := t.launcher.FetchJournal(t.Task); err != nil {
		r.logf("task %s: %v", t.Label, err)
	}
	p, _ := batch.ScanJournalProgressFile(t.Journal)
	now := time.Now()
	r.tr.observe(t.tr, p, now)
	if r.s.Tracer.Enabled() {
		status := "ok"
		if waitErr != nil {
			status = waitErr.Error()
		}
		r.s.Tracer.Complete("attempt", "orchestrator", t.tid, t.attemptStart, map[string]any{
			"task": t.Label, "backend": t.launcher.Name(), "attempt": t.attempt,
			"cells": p.Cells, "status": status,
		})
	}

	if t.state == schedStealing && r.ctx.Err() == nil {
		// The kill was ours; the exit finalizes the steal. The victim's
		// journal keeps its prefix of cells — the merge uses it — and the
		// thieves own everything past its last complete cell.
		k := r.carve(t, p)
		r.tr.markStolen(t.tr)
		r.tr.recordCarve(t.tr, k)
		countSteal(t.launcher.Name())
		r.s.Tracer.Instant("steal", "orchestrator", t.tid, map[string]any{"task": t.Label, "sub_shards": k})
		t.state = schedDone
		if k > 0 {
			r.logf("task %s killed at %d/%d units — remaining units reassigned to %d stolen sub-shard(s)",
				t.Label, p.Cells, t.Units, k)
		} else {
			// Its journal finished between the stall verdict and the kill.
			r.logf("task %s killed at %d/%d units — nothing left to steal", t.Label, p.Cells, t.Units)
		}
		return
	}

	done := p.Done()
	if waitErr == nil && done {
		t.state = schedDone
		r.tr.setPhase(t.tr, phaseDone)
		return
	}
	if waitErr != nil && done {
		// A non-zero exit with a COMPLETE journal is not a crash: the child
		// ran every unit and some failed (lbbench exits 1 for a figure with
		// holes). Restarting would re-run the same deterministic failures;
		// instead hand the journal to the merge, which reports the failed
		// units exactly as a single-process sweep would.
		t.state = schedDone
		r.tr.setPhase(t.tr, phaseDone)
		r.logf("task %s exited non-zero (%v) but its journal is complete (%d unit(s) failed) — not restarting; the merge will report them",
			t.Label, waitErr, p.Failed)
		return
	}
	if waitErr == nil {
		// A clean exit that left the journal short — a Slurm job that was
		// preempted, a child killed in a way its launcher cannot see. The
		// journal is the ground truth; treat it as a death.
		waitErr = fmt.Errorf("exited with an incomplete journal (%d/%d units)", p.Cells, t.Units)
	}
	if r.ctx.Err() != nil {
		t.state = schedFailed
		t.err = r.ctx.Err()
		r.tr.setPhase(t.tr, phaseFailed)
		r.logf("task %s interrupted", t.Label)
		return
	}
	if t.attempt >= r.pol.MaxRetries {
		if r.pol.StealAfter > 0 && t.gen < maxGen {
			// Past the retry cap the task's launcher (or host) is presumed
			// bad; reassigning the remaining range elsewhere is the elastic
			// alternative to failing the sweep.
			if k := r.carve(t, p); k > 0 {
				r.tr.markStolen(t.tr)
				r.tr.recordCarve(t.tr, k)
				countSteal(t.launcher.Name())
				r.s.Tracer.Instant("steal", "orchestrator", t.tid, map[string]any{"task": t.Label, "sub_shards": k})
				t.state = schedDone
				r.logf("task %s died past its retry cap (%v) at %d/%d units — remaining units reassigned to %d stolen sub-shard(s)",
					t.Label, waitErr, p.Cells, t.Units, k)
				return
			}
		}
		t.state = schedFailed
		t.err = fmt.Errorf("orchestrator: task %s failed after %d restart(s): %w", t.Label, t.attempt, waitErr)
		r.tr.setPhase(t.tr, phaseFailed)
		r.logf("task %s FAILED permanently after %d restart(s): %v — journal %s holds %d/%d units; see %s",
			t.Label, t.attempt, waitErr, t.Journal, p.Cells, t.Units, stderrPath(t.Task))
		return
	}
	t.attempt++
	t.state = schedPending
	r.tr.addRestart(t.tr)
	countRestart(t.launcher.Name())
	r.s.Tracer.Instant("restart", "orchestrator", t.tid, map[string]any{"task": t.Label, "attempt": t.attempt})
	r.logf("task %s died (%v) with %d/%d units journaled — restarting with -resume (attempt %d/%d)",
		t.Label, waitErr, p.Cells, t.Units, t.attempt, r.pol.MaxRetries)
}

const (
	// maxGen caps steal generations: a planned shard (gen 0) can be carved,
	// and a stolen sub-shard (gen 1) once more, but gen-2 tasks fail like a
	// classic shard — unbounded re-carving would let one poisoned unit
	// shatter the sweep into confetti.
	maxGen = 2
	// maxCarve caps how many sub-shards one steal mints: enough to fan a
	// straggler's tail across a few idle slots, few enough that the journal
	// set stays readable.
	maxCarve = 4
)

// carve splits task v's unstarted unit range into up to maxCarve contiguous
// sub-windows sized to the idle launcher capacity and enqueues them as
// fresh tasks (fresh retry budget, provenance recorded in their journal
// headers). Journals are contiguous prefixes of a task's owned units, so
// everything past the last journaled cell is exactly the work nobody has
// done: the carved windows and the victim's journal tile v's range with no
// gap and no overlap, which is what keeps the final merge byte-identical.
// Returns how many sub-tasks were minted — zero when v had nothing left.
func (r *run) carve(v *task, p batch.JournalProgress) int {
	split := v.Lo
	if p.Cells > 0 {
		split = p.LastIndex + 1
	}
	m, idx := v.Shard.Count, v.Shard.Index
	if m <= 0 {
		m, idx = 1, 0
	}
	// First owned unit at or after split, stepping the shard's residue
	// class; then how many of them remain below the window's end.
	first := split + ((idx-split)%m+m)%m
	hi := v.Hi
	if total := r.s.Plan.TotalUnits(); hi == 0 || hi > total {
		hi = total
	}
	if first >= hi {
		return 0
	}
	remaining := (hi-first-1)/m + 1
	k := 1 + r.idleSlots()
	if k > remaining {
		k = remaining
	}
	if k > maxCarve {
		k = maxCarve
	}
	start := 0 // offset in owned units
	for c := 0; c < k; c++ {
		cnt := remaining / k
		if c < remaining%k {
			cnt++
		}
		lo := first + start*m
		winHi := first + (start+cnt)*m
		if c == k-1 {
			winHi = v.Hi // inherit the victim's bound — usually 0, unbounded
		}
		r.stealSeq[idx]++
		seq := r.stealSeq[idx]
		r.addTask(&Task{
			Shard:   v.Shard,
			Lo:      lo,
			Hi:      winHi,
			Journal: filepath.Join(r.s.Plan.Dir, fmt.Sprintf("shard-%d-steal-%d.jsonl", idx, seq)),
			Units:   cnt,
			Label:   fmt.Sprintf("%s.%d", v.Label, seq),
			Origin:  "steal:" + v.Label,
		}, v.gen+1)
		start += cnt
	}
	return k
}

// RunAndReport is the whole pipeline behind `lbbench -spawn` and `lborch`:
// supervise the plan's tasks, then — when every journal is in — merge and
// render the final report (the plan's Format) to stdout. The journal set is
// whatever Run produced: the planned shards plus any stolen sub-shards. The
// return value is a process exit code, the same contract both CLIs
// document: 0 success; 1 failed tasks or failed units (the figure has
// holes); 2 merge/render failure; 3 interrupted, with every journal left
// resumable by re-running the same command.
func (s *Supervisor) RunAndReport(ctx context.Context, streamAgg bool, stdout io.Writer) int {
	log := s.Log
	if log == nil {
		log = os.Stderr
	}
	if err := s.Run(ctx); err != nil {
		if ctx.Err() != nil {
			return 3
		}
		fmt.Fprintf(log, "orchestrator: %v\n", err)
		return 1
	}
	format := s.Plan.Format
	if format == "" {
		format = "table"
	}
	paths := s.finalJournals
	if len(paths) == 0 {
		paths = s.Plan.JournalPaths()
	}
	// A fresh context: the signal context may fire during the (local,
	// cheap) gap re-run without invalidating the already-supervised work.
	mergeStart := s.Tracer.Now()
	failed, err := s.Plan.MergeReportFrom(context.Background(), paths, format, streamAgg, stdout, log)
	if s.Tracer.Enabled() {
		s.Tracer.Complete("merge", "orchestrator", 0, mergeStart, map[string]any{"journals": len(paths)})
		_ = s.Tracer.Flush()
	}
	if err != nil {
		fmt.Fprintf(log, "orchestrator: %v\n", err)
		return 2
	}
	if failed > 0 {
		fmt.Fprintf(log, "orchestrator: %d unit(s) failed — the figure has holes\n", failed)
		return 1
	}
	return 0
}

func journalExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}
