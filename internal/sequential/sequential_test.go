package sequential

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/diffusion"
	"repro/internal/graph"
	"repro/internal/matrix"
	"repro/internal/workload"
)

func TestSequentializeEndsAtConcurrentState(t *testing.T) {
	// The sequentialization applies the same fixed flows one at a time, so
	// its end state — and hence total drop — must equal the concurrent
	// round's exactly. This is the structural heart of the proof.
	rng := rand.New(rand.NewSource(1))
	for _, g := range []*graph.G{graph.Cycle(10), graph.Torus(3, 4), graph.Star(8), graph.Petersen()} {
		l := matrix.Vector(workload.Continuous(workload.Uniform, g.N(), 100, rng))
		rt := Sequentialize(g, l, IncreasingWeight, rng)

		st := diffusion.NewContinuous(g, l)
		phi0 := st.Potential()
		st.Step()
		concDrop := phi0 - st.Potential()
		if math.Abs(rt.TotalDrop()-concDrop) > 1e-7*(1+concDrop) {
			t.Fatalf("%s: sequential drop %v != concurrent drop %v", g.Name(), rt.TotalDrop(), concDrop)
		}
	}
}

func TestLemma1HoldsIncreasingOrder(t *testing.T) {
	// Lemma 1: every activation in increasing-weight order drops the
	// potential by at least w_ij·|ℓᵢ−ℓⱼ|.
	rng := rand.New(rand.NewSource(2))
	for _, g := range []*graph.G{
		graph.Cycle(12), graph.Torus(4, 4), graph.Hypercube(4),
		graph.Star(10), graph.Path(9), graph.Complete(8),
	} {
		for trial := 0; trial < 20; trial++ {
			l := matrix.Vector(workload.Continuous(workload.Uniform, g.N(), 1000, rng))
			rt := Sequentialize(g, l, IncreasingWeight, rng)
			if v := rt.Lemma1Violations(); v != 0 {
				t.Fatalf("%s trial %d: %d Lemma 1 violations", g.Name(), trial, v)
			}
		}
	}
}

func TestLemma2HoldsIncreasingOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, g := range []*graph.G{graph.Cycle(12), graph.Torus(4, 4), graph.Hypercube(3)} {
		for trial := 0; trial < 10; trial++ {
			l := matrix.Vector(workload.Continuous(workload.Exponential, g.N(), 100, rng))
			rt := Sequentialize(g, l, IncreasingWeight, rng)
			if !rt.Lemma2Holds() {
				t.Fatalf("%s: round drop %v below Lemma 2 bound %v", g.Name(), rt.TotalDrop(), rt.Lemma2RHS)
			}
		}
	}
}

func TestSequentializeSpikeOnStar(t *testing.T) {
	// Hand-checkable instance: star with spike at the centre.
	g := graph.Star(5)
	l := matrix.Vector{16, 0, 0, 0, 0}
	rt := Sequentialize(g, l, IncreasingWeight, nil)
	// Every edge has w = 16/(4·4) = 1, so 4 activations of 1 unit each.
	if len(rt.Activations) != 4 {
		t.Fatalf("activations: %d", len(rt.Activations))
	}
	for _, a := range rt.Activations {
		if math.Abs(a.Weight-1) > 1e-12 {
			t.Fatalf("weight %v, want 1", a.Weight)
		}
		if !a.Lemma1Holds() {
			t.Fatal("Lemma 1 must hold here")
		}
	}
	// End state: centre 12, leaves 1 each.
	if math.Abs(rt.PhiEnd-rt.PhiStart+rt.TotalDrop()) > 1e-9 {
		t.Fatal("drop accounting inconsistent")
	}
}

func TestAlternativeOrdersSameTotalDrop(t *testing.T) {
	// Activation order cannot change the end state (flows are fixed), only
	// the per-activation attribution.
	rng := rand.New(rand.NewSource(4))
	g := graph.Torus(4, 4)
	l := matrix.Vector(workload.Continuous(workload.Uniform, g.N(), 100, rng))
	inc := Sequentialize(g, l, IncreasingWeight, rng)
	dec := Sequentialize(g, l, DecreasingWeight, rng)
	rnd := Sequentialize(g, l, RandomOrder, rng)
	if math.Abs(inc.TotalDrop()-dec.TotalDrop()) > 1e-8*(1+inc.TotalDrop()) {
		t.Fatal("decreasing order changed the total drop")
	}
	if math.Abs(inc.TotalDrop()-rnd.TotalDrop()) > 1e-8*(1+inc.TotalDrop()) {
		t.Fatal("random order changed the total drop")
	}
}

func TestGreedyRoundNonNegativeDrop(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.Hypercube(4)
	l := matrix.Vector(workload.Continuous(workload.Uniform, g.N(), 100, rng))
	phi0 := matrixPotential(l)
	end := GreedyRound(g, l, IncreasingWeight, rng)
	if end > phi0+1e-9 {
		t.Fatalf("greedy round increased Φ: %v → %v", phi0, end)
	}
}

func TestMeasureGapBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := graph.Torus(4, 4)
	l := matrix.Vector(workload.Continuous(workload.Spike, g.N(), 1000, nil))
	rep := MeasureGap(g, l, rng)
	if rep.Lemma1Violated != 0 {
		t.Fatalf("violations: %d", rep.Lemma1Violated)
	}
	// Sequential (fixed-flow) and concurrent drops coincide.
	if math.Abs(rep.ConcurrentDrop-rep.SequentialDrop) > 1e-7*(1+rep.ConcurrentDrop) {
		t.Fatalf("drops differ: %v vs %v", rep.ConcurrentDrop, rep.SequentialDrop)
	}
	// The analysis' bound: concurrent drop ≥ Σ w|diff| (ratio ≥ 1).
	if rep.ConcurrentRatio < 1-1e-9 {
		t.Fatalf("concurrent/bound ratio %v < 1", rep.ConcurrentRatio)
	}
	if rep.ConcurrentDrop < rep.Lemma2RHS-1e-9 {
		t.Fatal("Lemma 2 violated in gap report")
	}
}

func TestOrderString(t *testing.T) {
	if IncreasingWeight.String() != "increasing" || DecreasingWeight.String() != "decreasing" ||
		RandomOrder.String() != "random" || Order(9).String() != "unknown" {
		t.Fatal("order names wrong")
	}
}

func TestSequentializeLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Sequentialize(graph.Cycle(4), matrix.Vector{1}, IncreasingWeight, nil)
}

// Property: Lemma 1 holds in increasing-weight order on random graphs with
// random loads — the paper's core claim as a property test.
func TestLemma1Property(t *testing.T) {
	f := func(seed uint8) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		n := 4 + r.Intn(16)
		g := graph.ErdosRenyi(n, 0.5, r)
		l := matrix.Vector(workload.Continuous(workload.Uniform, n, 500, r))
		rt := Sequentialize(g, l, IncreasingWeight, r)
		return rt.Lemma1Violations() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: the per-activation drops sum to the round's total drop (exact
// additive decomposition).
func TestDecompositionSumsProperty(t *testing.T) {
	f := func(seed uint8) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		n := 4 + r.Intn(12)
		g := graph.ErdosRenyi(n, 0.6, r)
		l := matrix.Vector(workload.Continuous(workload.Uniform, n, 100, r))
		rt := Sequentialize(g, l, IncreasingWeight, r)
		var sum float64
		for _, a := range rt.Activations {
			sum += a.Drop
		}
		return math.Abs(sum-rt.TotalDrop()) < 1e-7*(1+math.Abs(rt.TotalDrop()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func matrixPotential(l matrix.Vector) float64 {
	avg := l.Mean()
	var s float64
	for _, v := range l {
		d := v - avg
		s += d * d
	}
	return s
}
