package perfbench

import (
	"strings"
	"testing"
)

func baseReport() *Report {
	return &Report{
		Version:       1,
		CalibrationNs: 1000,
		Rounds: []RoundResult{
			{Topology: "torus", Algorithm: "diffusion", Mode: "continuous", N: 1024, RoundWorkers: 1, NsPerRound: 5000},
			{Topology: "torus", Algorithm: "randpair", Mode: "discrete", N: 4096, RoundWorkers: 8, NsPerRound: 20000},
		},
		Sweeps: []SweepResult{
			{Name: "many-small", UnitWorkers: 4, RoundWorkers: 1, CellsPerSec: 50},
		},
	}
}

func TestCompareIdentical(t *testing.T) {
	res, err := Compare(baseReport(), baseReport(), 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("identical reports flagged: %+v", res)
	}
	if res.Scale != 1 {
		t.Fatalf("scale = %v, want 1", res.Scale)
	}
	if len(res.Deltas) != 3 {
		t.Fatalf("got %d deltas, want 3", len(res.Deltas))
	}
}

func TestCompareFlagsRegression(t *testing.T) {
	cur := baseReport()
	cur.Rounds[0].NsPerRound *= 2 // 100% slower
	res, err := Compare(baseReport(), cur, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() || len(res.Regressions) != 1 {
		t.Fatalf("2× slowdown not flagged: %+v", res)
	}
	if res.Regressions[0].Key != cur.Rounds[0].Key() {
		t.Fatalf("flagged %s, want %s", res.Regressions[0].Key, cur.Rounds[0].Key())
	}
}

func TestCompareFlagsThroughputDrop(t *testing.T) {
	cur := baseReport()
	cur.Sweeps[0].CellsPerSec /= 2 // half the throughput
	res, err := Compare(baseReport(), cur, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() || len(res.Regressions) != 1 || res.Regressions[0].Kind != "cells_per_sec" {
		t.Fatalf("throughput drop not flagged: %+v", res)
	}
}

// TestCompareNormalizesMachineSpeed: a uniformly 2× slower machine (the
// calibration anchor doubled along with every measurement) is not a
// regression — only movement relative to the anchor is.
func TestCompareNormalizesMachineSpeed(t *testing.T) {
	cur := baseReport()
	cur.CalibrationNs *= 2
	for i := range cur.Rounds {
		cur.Rounds[i].NsPerRound *= 2
	}
	for i := range cur.Sweeps {
		cur.Sweeps[i].CellsPerSec /= 2
	}
	res, err := Compare(baseReport(), cur, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("uniform 2× slowdown (slower machine) flagged as regression: %+v", res)
	}
	// And a real regression still shows through the machine scaling.
	cur.Rounds[1].NsPerRound *= 2
	if res, err = Compare(baseReport(), cur, 0.25); err != nil || len(res.Regressions) != 1 {
		t.Fatalf("regression hidden by machine scaling: %+v (err %v)", res, err)
	}
}

func TestCompareMissingCoverageFails(t *testing.T) {
	cur := baseReport()
	cur.Rounds = cur.Rounds[:1]
	cur.Sweeps = nil
	res, err := Compare(baseReport(), cur, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() || len(res.Missing) != 2 {
		t.Fatalf("shrunk coverage not flagged: %+v", res)
	}
}

func TestCompareExtraCoverageIsFree(t *testing.T) {
	cur := baseReport()
	cur.Rounds = append(cur.Rounds, RoundResult{
		Topology: "hypercube", Algorithm: "diffusion", Mode: "continuous",
		N: 1024, RoundWorkers: 1, NsPerRound: 123456,
	})
	res, err := Compare(baseReport(), cur, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() || len(res.Deltas) != 3 {
		t.Fatalf("added coverage penalized: %+v", res)
	}
}

func TestCompareRejectsBadAnchors(t *testing.T) {
	cur := baseReport()
	cur.CalibrationNs = 0
	if _, err := Compare(baseReport(), cur, 0.25); err == nil {
		t.Fatal("zero calibration anchor accepted")
	}
	if _, err := Compare(baseReport(), baseReport(), 0); err == nil {
		t.Fatal("zero tolerance accepted")
	}
}

// TestRunSmoke drives the real harness on a tiny grid: checks the report
// shape, the built-in checksum identity across worker counts, and that the
// result round-trips through Compare cleanly against itself.
func TestRunSmoke(t *testing.T) {
	rep, err := Run(Config{
		Topologies:       []string{"torus"},
		Algorithms:       []string{"diffusion", "dimexchange"},
		Modes:            []string{"continuous", "discrete"},
		Sizes:            []int{64},
		RoundWorkersList: []int{1, 3},
		RoundsBudget:     1, // clamps to 64 rounds per sample
		Samples:          1,
		SkipSweeps:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CalibrationNs <= 0 {
		t.Fatalf("calibration anchor %v", rep.CalibrationNs)
	}
	if len(rep.Rounds) != 8 { // 2 algos × 2 modes × 2 worker counts
		t.Fatalf("got %d round measurements, want 8", len(rep.Rounds))
	}
	for _, r := range rep.Rounds {
		if r.NsPerRound <= 0 || r.RoundsTimed != 64 {
			t.Fatalf("bad measurement %+v", r)
		}
		if r.Checksum == "" || r.Checksum == "unavailable" || !strings.ContainsAny(r.Checksum, "0123456789abcdef") {
			t.Fatalf("bad checksum in %+v", r)
		}
	}
	res, err := Compare(rep, rep, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("report does not match itself: %+v", res)
	}
}

// TestCompareWarnsOnCoreCountMismatch: reports from machines of different
// shape still compare, but loudly — the calibration anchor divides out
// clock speed, not parallel hardware.
func TestCompareWarnsOnCoreCountMismatch(t *testing.T) {
	base := baseReport()
	base.NumCPU, base.GOMAXPROCS = 8, 8
	cur := baseReport()
	cur.NumCPU, cur.GOMAXPROCS = 1, 1
	res, err := Compare(base, cur, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("shape mismatch failed the gate: %+v", res)
	}
	if len(res.Warnings) != 2 {
		t.Fatalf("got %d warnings, want NumCPU + GOMAXPROCS: %v", len(res.Warnings), res.Warnings)
	}
	var buf strings.Builder
	res.Render(&buf, 0.25)
	if !strings.Contains(buf.String(), "WARNING") || !strings.Contains(buf.String(), "8 CPUs") {
		t.Fatalf("warnings not rendered: %q", buf.String())
	}

	// Matching shapes — or legacy reports that never recorded them — stay
	// silent.
	if res, err = Compare(baseReport(), baseReport(), 0.25); err != nil || len(res.Warnings) != 0 {
		t.Fatalf("spurious warnings: %v (err %v)", res.Warnings, err)
	}
}

// TestCompareGatesSpectra: a missing λ₂ row fails like any shrunk coverage,
// a slow-but-present row beyond the noise floor is a regression, and a
// solver-path change warns even when the timing happens to pass.
func TestCompareGatesSpectra(t *testing.T) {
	withSpectra := func() *Report {
		r := baseReport()
		r.Spectra = []SpectralResult{
			{Topology: "hypercube", N: 1 << 20, Lambda2: 2, ElapsedNs: 2500, Path: "closed-form"},
			{Topology: "debruijn", N: 1 << 20, Lambda2: 0.17, ElapsedNs: 9e9, Path: "lanczos"},
		}
		return r
	}

	cur := withSpectra()
	cur.Spectra = cur.Spectra[:1]
	res, err := Compare(withSpectra(), cur, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() || len(res.Missing) != 1 || res.Missing[0] != "lambda2:debruijn/n1048576" {
		t.Fatalf("missing λ₂ row not flagged: %+v", res)
	}

	cur = withSpectra()
	cur.Spectra[1].ElapsedNs *= 3
	if res, err = Compare(withSpectra(), cur, 0.25); err != nil || res.OK() || len(res.Regressions) != 1 || res.Regressions[0].Kind != "lambda2_ns" {
		t.Fatalf("3× slower Lanczos solve not flagged: %+v (err %v)", res, err)
	}

	// Sub-floor rows (the closed-form microsecond solves) never enter the
	// ratio gate: a 100× "slowdown" at that scale is timer noise.
	cur = withSpectra()
	cur.Spectra[0].ElapsedNs *= 100
	if res, err = Compare(withSpectra(), cur, 0.25); err != nil || !res.OK() {
		t.Fatalf("noise-floor λ₂ timing gated: %+v (err %v)", res, err)
	}

	// Falling off the fast path flips Path and warns.
	cur = withSpectra()
	cur.Spectra[0].Path = "dense"
	res, err = Compare(withSpectra(), cur, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Warnings) != 1 || !strings.Contains(res.Warnings[0], "dense") {
		t.Fatalf("path change not warned: %v", res.Warnings)
	}
}

// TestRunLargeSizes drives the large-n surface at toy scale: each topology
// × large size contributes one serial diffusion row plus one λ₂ solve with
// a recorded path — closed-form for the torus, and never dense-free-floating
// "unknown".
func TestRunLargeSizes(t *testing.T) {
	rep, err := Run(Config{
		Topologies:       []string{"torus"},
		Algorithms:       []string{"diffusion"},
		Modes:            []string{"continuous"},
		Sizes:            []int{64},
		LargeSizes:       []int{256},
		RoundWorkersList: []int{1},
		RoundsBudget:     1,
		Samples:          1,
		SkipSweeps:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rounds) != 2 {
		t.Fatalf("got %d round rows, want regular + large: %+v", len(rep.Rounds), rep.Rounds)
	}
	large := rep.Rounds[1]
	if large.N != 256 || large.RoundWorkers != 1 || large.RoundsTimed != 8 || large.NsPerRound <= 0 {
		t.Fatalf("bad large row %+v", large)
	}
	if len(rep.Spectra) != 1 {
		t.Fatalf("got %d spectra, want 1: %+v", len(rep.Spectra), rep.Spectra)
	}
	spec := rep.Spectra[0]
	if spec.Key() != "lambda2:torus/n256" || spec.Lambda2 <= 0 || spec.ElapsedNs <= 0 {
		t.Fatalf("bad spectral row %+v", spec)
	}
	if spec.Path != "closed-form" {
		t.Fatalf("torus λ₂ took the %q path, want closed-form", spec.Path)
	}
	if res, err := Compare(rep, rep, 0.25); err != nil || !res.OK() {
		t.Fatalf("large-n report does not match itself: %+v (err %v)", res, err)
	}
}
