package cliflags

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/orchestrator"
)

// Launch holds the shared orchestration flag values: which execution
// backend runs the shards and how the supervisor restarts, warns and
// steals. Registered once here, the -launcher/-hosts/-steal-after surface
// is identical on lbbench -spawn and lborch.
type Launch struct {
	Launcher   string
	Hosts      string
	RemoteCmd  string
	RemoteDir  string
	Retries    int
	Progress   time.Duration
	Stall      time.Duration
	StealAfter time.Duration
}

// RegisterLaunch registers the orchestration flags on fs.
func RegisterLaunch(fs *flag.FlagSet) *Launch {
	l := &Launch{}
	fs.StringVar(&l.Launcher, "launcher", "local", "orchestrator: execution backend for shard attempts (local, ssh, slurm)")
	fs.StringVar(&l.Hosts, "hosts", "", "orchestrator: comma-separated ssh destinations for -launcher ssh (host, user@host, or ssh_config aliases; one shard slot each)")
	fs.StringVar(&l.RemoteCmd, "remote-cmd", "", "orchestrator: lbbench invocation on the remote side for -launcher ssh/slurm (default: lbbench on the remote PATH)")
	fs.StringVar(&l.RemoteDir, "remote-dir", "", "orchestrator: with -launcher ssh, journal under this directory on the remote host instead of the plan's local layout (required when the host shares a filesystem with the supervisor, e.g. ssh to localhost)")
	fs.IntVar(&l.Retries, "retries", 3, "orchestrator: max restarts per dead shard before giving up (or stealing, with -steal-after)")
	fs.DurationVar(&l.Progress, "progress", time.Second, "orchestrator: journal poll period for the progress display")
	fs.DurationVar(&l.Stall, "stall-after", time.Minute, "orchestrator: warn when a running shard's journal is unchanged this long")
	fs.DurationVar(&l.StealAfter, "steal-after", 0, "orchestrator: kill a shard whose journal is unchanged this long and reassign its remaining units to idle launchers (0 disables work stealing)")
	return l
}

// Policy is the supervisor policy the parsed flags describe.
func (l *Launch) Policy() orchestrator.Policy {
	return orchestrator.Policy{
		MaxRetries: l.Retries,
		Interval:   l.Progress,
		StallAfter: l.Stall,
		StealAfter: l.StealAfter,
	}
}

// Launchers builds the launcher fleet the flags describe. Nil for the
// default local backend (the supervisor builds its own unbounded
// LocalLauncher over its Command, keeping that path behavior-identical to
// the pre-Launcher orchestrator).
func (l *Launch) Launchers() ([]orchestrator.Launcher, error) {
	switch l.Launcher {
	case "", "local":
		if l.Hosts != "" {
			return nil, fmt.Errorf("-hosts needs -launcher ssh")
		}
		if l.RemoteDir != "" {
			return nil, fmt.Errorf("-remote-dir needs -launcher ssh")
		}
		return nil, nil
	case "ssh":
		hosts := SplitList(l.Hosts)
		if len(hosts) == 0 {
			return nil, fmt.Errorf("-launcher ssh needs -hosts host1,host2,...")
		}
		out := make([]orchestrator.Launcher, len(hosts))
		for i, h := range hosts {
			out[i] = &orchestrator.SSHLauncher{Host: h, Remote: l.RemoteCmd, RemoteDir: l.RemoteDir}
		}
		return out, nil
	case "slurm":
		if l.Hosts != "" {
			return nil, fmt.Errorf("-hosts needs -launcher ssh (slurm schedules its own nodes)")
		}
		if l.RemoteDir != "" {
			return nil, fmt.Errorf("-remote-dir needs -launcher ssh (slurm assumes a shared filesystem)")
		}
		return []orchestrator.Launcher{&orchestrator.SlurmLauncher{Remote: l.RemoteCmd}}, nil
	}
	return nil, fmt.Errorf("unknown -launcher %q (want local, ssh or slurm)", l.Launcher)
}
