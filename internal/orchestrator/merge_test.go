package orchestrator

import (
	"bytes"
	"context"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/batch"
	"repro/internal/core"
)

// writePlanJournals runs every shard of the plan through the real engine,
// journaling exactly as the spawned subprocesses would.
func writePlanJournals(t *testing.T, p *Plan) {
	t.Helper()
	for _, sh := range p.Shards {
		sink, err := batch.CreateJSONL(sh.Journal)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := core.GridRun(context.Background(), p.Spec, core.GridShard(sh.Index, sh.Count), core.GridSink(sink)); err != nil {
			t.Fatal(err)
		}
		if err := sink.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestMergeReportByteIdentical is the acceptance property end to end in
// process: the orchestrator's automatic merge renders the same bytes a
// single-process sweep prints, for the classic report and the streaming
// aggregates alike.
func TestMergeReportByteIdentical(t *testing.T) {
	spec := testSpec()
	p, err := NewPlan(spec, 3, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	writePlanJournals(t, p)

	full, err := core.GridRun(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := full.RenderCSV(&want); err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	failed, err := p.MergeReport(context.Background(), "csv", false, &got, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if failed != 0 {
		t.Fatalf("%d failed units", failed)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("merged report differs from single-process sweep:\n--- merged\n%s\n--- full\n%s", got.String(), want.String())
	}

	// Streaming-only aggregates: same property against the live fold.
	agg := batch.NewAggSink()
	if _, err := core.GridRun(context.Background(), spec, core.GridStreamOnly(), core.GridSink(agg)); err != nil {
		t.Fatal(err)
	}
	want.Reset()
	if err := agg.Report().RenderCSV(&want); err != nil {
		t.Fatal(err)
	}
	got.Reset()
	if _, err := p.MergeReport(context.Background(), "csv", true, &got, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("merged stream-agg render differs from the live streaming run")
	}
}

// TestSupervisorDoesNotRestartCompleteShard: a child that exits non-zero
// with a COMPLETE journal ran every unit (some just failed) — restarting
// would re-run the same deterministic failures, so the supervisor must hand
// the journal straight to the merge instead. (lbbench exits 1 when the
// figure has holes; that is not a crash.)
func TestSupervisorDoesNotRestartCompleteShard(t *testing.T) {
	p, err := NewPlan(testSpec(), 2, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	writePlanJournals(t, p) // complete journals already on disk
	var log bytes.Buffer
	s := &Supervisor{
		Plan:    p,
		Command: stubCommand(t, "exit 1"), // "figure has holes" exit
		Policy:  Policy{MaxRetries: -1, Interval: 10 * time.Millisecond},
		Log:     &log,
	}
	if err := s.Run(context.Background()); err != nil {
		t.Fatalf("Run treated a complete shard as a crash: %v\nlog:\n%s", err, log.String())
	}
	if strings.Contains(log.String(), "restarting with -resume") {
		t.Fatalf("complete shard was restarted:\n%s", log.String())
	}
	if !strings.Contains(log.String(), "not restarting") {
		t.Fatalf("complete-journal exit not reported:\n%s", log.String())
	}
}

// TestMergeReportRerunsGaps: a journal cut short (the shard died and was
// never resumed) does not hole the classic report — the resume engine
// re-runs the missing units in-process during the merge.
func TestMergeReportRerunsGaps(t *testing.T) {
	spec := testSpec()
	p, err := NewPlan(spec, 2, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	writePlanJournals(t, p)

	// Truncate shard 1's journal to its header + first cell.
	j, err := batch.ReadJournalFile(p.Shards[1].Journal)
	if err != nil {
		t.Fatal(err)
	}
	sink, err := batch.ReplaceJSONL(p.Shards[1].Journal)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Spec(j.Specs[0]); err != nil {
		t.Fatal(err)
	}
	if err := sink.Cell(j.Cells[0]); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	full, err := core.GridRun(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	var want, got bytes.Buffer
	if err := full.RenderCSV(&want); err != nil {
		t.Fatal(err)
	}
	if _, err := p.MergeReport(context.Background(), "csv", false, &got, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("gap re-run merge differs from single-process sweep")
	}

	// The streaming path re-runs nothing, so the same gap is a loud error.
	if _, err := p.MergeReport(context.Background(), "csv", true, io.Discard, io.Discard); err == nil {
		t.Fatal("stream-agg merge of an incomplete journal set succeeded")
	}
}
