package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/scenario"
)

func testConfig(t *testing.T) core.Config {
	t.Helper()
	g := graph.Torus(4, 4)
	return core.Config{
		Graph:     g,
		Algorithm: core.Diffusion,
		Mode:      core.Continuous,
		Loads:     make([]float64, g.N()),
		Epsilon:   1e-3,
		Seed:      7,
	}
}

func testTrace(t *testing.T) []scenario.Event {
	t.Helper()
	return []scenario.Event{
		{Round: 0, Node: 3, Amount: 5000},
		{Round: 0, Node: 11, Amount: 125.5},
		{Round: 4, Node: 0, Amount: 9000},
		{Round: 9, Node: 15, Amount: 640},
	}
}

// TestReplayMatchesSessionDrive: the served replay path must reproduce the
// scenario engine's injection point exactly — the Φ trajectory and final
// load vector of a replayed trace are bit-identical to driving a
// core.Session by hand with the same events, and to core.Balance running
// the same file as a trace:<file> scenario. It also closes the
// record→replay loop: what the server records while replaying is
// byte-identical to the trace it was fed.
func TestReplayMatchesSessionDrive(t *testing.T) {
	const rounds = 24
	events := testTrace(t)
	cfg := testConfig(t)

	var recorded bytes.Buffer
	rec := scenario.NewTraceWriter(&recorded)
	srv, err := New(Options{Config: cfg, Replay: events, Record: rec})
	if err != nil {
		t.Fatal(err)
	}
	var gotPhi []float64
	for i := 0; i < rounds; i++ {
		phi, err := srv.StepRound()
		if err != nil {
			t.Fatal(err)
		}
		gotPhi = append(gotPhi, phi)
	}

	// Reference: the same events through the raw Session API.
	ref, err := core.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var wantPhi []float64
	for k := 0; k < rounds; k++ {
		var arr []scenario.Arrival
		for _, e := range events {
			if e.Round == k {
				arr = append(arr, scenario.Arrival{Node: e.Node, Amount: e.Amount})
			}
		}
		if err := ref.Step(); err != nil {
			t.Fatal(err)
		}
		if _, err := ref.Inject(arr); err != nil {
			t.Fatal(err)
		}
		phi, err := ref.Commit()
		if err != nil {
			t.Fatal(err)
		}
		wantPhi = append(wantPhi, phi)
	}
	for i := range wantPhi {
		if gotPhi[i] != wantPhi[i] {
			t.Fatalf("round %d: served Φ %v != session Φ %v", i+1, gotPhi[i], wantPhi[i])
		}
	}
	m := srv.Metrics()
	wantLoads := ref.Loads()
	if len(m.Nodes) != len(wantLoads) {
		t.Fatalf("metrics nodes len %d, want %d", len(m.Nodes), len(wantLoads))
	}
	for i := range wantLoads {
		if m.Nodes[i] != wantLoads[i] {
			t.Fatalf("node %d: served load %v != session load %v", i, m.Nodes[i], wantLoads[i])
		}
	}

	// The same file as a grid scenario: Balance(trace:<file>) must agree on
	// the lifetime peak and final potential.
	path := t.TempDir() + "/trace.jsonl"
	tw, err := scenario.CreateTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if err := tw.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	sp, err := scenario.Parse("trace:" + path)
	if err != nil {
		t.Fatal(err)
	}
	bcfg := cfg
	bcfg.Scenario = sp
	bcfg.MaxRounds = rounds
	res, err := core.Balance(bcfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakPhi != m.PeakPhi {
		t.Fatalf("Balance(trace) peak Φ %v != served peak Φ %v", res.PeakPhi, m.PeakPhi)
	}
	if res.PhiEnd != m.Phi {
		t.Fatalf("Balance(trace) final Φ %v != served Φ %v", res.PhiEnd, m.Phi)
	}

	// Record→replay round trip: the recording of the replay is the trace.
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	committed, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(recorded.Bytes(), committed) {
		t.Fatalf("re-recorded trace differs from source:\n got %q\nwant %q", recorded.String(), committed)
	}
}

// TestHandlerIngest: the HTTP surface — single and batched arrivals are
// queued and injected next round, malformed requests are rejected, metrics
// and health are served.
func TestHandlerIngest(t *testing.T) {
	srv, err := New(Options{Config: testConfig(t)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/arrive", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	if resp := post(`{"node":3,"amt":100}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("single arrival: status %d", resp.StatusCode)
	}
	if resp := post(`[{"node":0,"amt":1},{"node":15,"amt":2.5}]`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch arrival: status %d", resp.StatusCode)
	}
	for _, bad := range []string{
		`{"node":99,"amt":1}`,                      // node out of range
		`{"node":0,"amt":0}`,                       // non-positive amount
		`{"node":0,"amt":-3}`,                      // negative amount
		`{"node":-1,"amt":1}`,                      // negative node
		`not json`,                                 // garbage
		`[{"node":0,"amt":1},{"node":99,"amt":1}]`, // batch with one bad item
	} {
		if resp := post(bad); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%q: status %d, want 400", bad, resp.StatusCode)
		}
	}
	if resp, err := http.Get(ts.URL + "/arrive"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET /arrive: status %d, want 405", resp.StatusCode)
		}
	}

	if _, err := srv.StepRound(); err != nil {
		t.Fatal(err)
	}
	var m Metrics
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if m.ArrivalsTotal != 3 {
		t.Fatalf("arrivals_total = %d, want 3", m.ArrivalsTotal)
	}
	if m.LoadInjected != 103.5 {
		t.Fatalf("load_injected = %v, want 103.5", m.LoadInjected)
	}
	if m.Round != 1 || m.Pending != 0 {
		t.Fatalf("round %d pending %d, want 1 and 0", m.Round, m.Pending)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		OK    bool `json:"ok"`
		Round int  `json:"round"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !health.OK || health.Round != 1 {
		t.Fatalf("healthz = %+v", health)
	}
}

// TestRunDrains: Run serves HTTP, accepts an arrival, and returns nil — a
// clean graceful drain — once its context is cancelled.
func TestRunDrains(t *testing.T) {
	srv, err := New(Options{
		Config:         testConfig(t),
		Addr:           "127.0.0.1:0",
		DrainTimeout:   10 * time.Second,
		DrainMaxRounds: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Run(ctx) }()

	deadline := time.Now().Add(5 * time.Second)
	for srv.URL() == "" {
		if time.Now().After(deadline) {
			t.Fatal("server never started listening")
		}
		time.Sleep(time.Millisecond)
	}
	resp, err := http.Post(srv.URL()+"/arrive", "application/json", strings.NewReader(`{"node":5,"amt":2000}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("arrival during run: status %d", resp.StatusCode)
	}
	// Let the free-running loop inject and balance a little.
	for {
		if m := srv.Metrics(); m.ArrivalsTotal >= 1 && m.Round >= 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("round loop never injected the arrival")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run returned %v, want nil (clean drain)", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("Run did not return after cancel")
	}
	m := srv.Metrics()
	if !m.Draining {
		t.Error("metrics does not report drained state")
	}
	if m.Phi > m.Target && m.Phi > m.PeakPhi*srv.opts.Config.Epsilon {
		t.Errorf("drain left Φ %v above target %v and ε·peak %v", m.Phi, m.Target, m.PeakPhi*srv.opts.Config.Epsilon)
	}
}

// TestReplayValidation: a replay trace targeting nodes outside the graph is
// rejected at construction.
func TestReplayValidation(t *testing.T) {
	cfg := testConfig(t)
	_, err := New(Options{Config: cfg, Replay: []scenario.Event{{Round: 0, Node: 16, Amount: 1}}})
	if err == nil {
		t.Fatal("accepted a replay event beyond the graph")
	}
}
