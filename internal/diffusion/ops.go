package diffusion

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/load"
	"repro/internal/matrix"
	"repro/internal/spectral"
)

// OPS is the Optimal Polynomial Scheme of Diekmann, Frommer and Monien [7],
// the strongest comparator the paper's related-work section cites: using
// the m distinct nonzero Laplacian eigenvalues λ₂ < … < λ_m of the
// topology, round k applies
//
//	Lᵏ = (I − L/λ_{k+1})·Lᵏ⁻¹,
//
// so after exactly m rounds the accumulated polynomial ∏ᵢ(1 − λ/λᵢ)
// annihilates every non-stationary eigencomponent and the load is perfectly
// balanced — finite termination, at the price of global spectral knowledge
// and intermediate states that may overshoot (individual loads can go
// negative mid-run; OPS computes a balancing *flow*, not a process a
// token-based system could execute directly).
type OPS struct {
	G    *graph.G
	Load *load.Continuous

	eigs []float64 // distinct nonzero Laplacian eigenvalues, ascending
	k    int
	next matrix.Vector
}

// NewOPS computes the spectrum of g (dense solve — OPS is only meaningful
// when the full spectrum is available) and prepares the scheme.
func NewOPS(g *graph.G, initial []float64) (*OPS, error) {
	if len(initial) != g.N() {
		return nil, fmt.Errorf("diffusion: OPS initial load length %d for n=%d", len(initial), g.N())
	}
	if !g.IsConnected() {
		return nil, fmt.Errorf("diffusion: OPS requires a connected graph")
	}
	vals, err := spectral.LaplacianSpectrum(g)
	if err != nil {
		return nil, fmt.Errorf("diffusion: OPS spectrum: %w", err)
	}
	distinct := distinctNonzero(vals)
	if len(distinct) == 0 {
		return nil, fmt.Errorf("diffusion: OPS found no nonzero eigenvalues (n=%d)", g.N())
	}
	return &OPS{G: g, Load: load.NewContinuous(initial), eigs: stabilizedOrder(distinct)}, nil
}

// stabilizedOrder picks the order in which the factors (I − L/λᵢ) are
// applied. The end result is order-independent in exact arithmetic, but the
// intermediate partial products are not: applying the factors in ascending
// eigenvalue order lets components near λ_max grow by |1 − λ_max/λ₂| per
// step (≈1600 on path(64)), which destroys the final cancellation in
// floating point. The greedy Leja-style rule below chooses, at each step,
// the factor minimizing the worst partial-product magnitude over the whole
// spectrum, which keeps intermediate growth near the minimum attainable.
func stabilizedOrder(eigs []float64) []float64 {
	m := len(eigs)
	if m <= 2 {
		return eigs
	}
	// prod[j] tracks the current partial product evaluated at spectrum
	// point eigs[j].
	prod := make([]float64, m)
	for j := range prod {
		prod[j] = 1
	}
	used := make([]bool, m)
	order := make([]float64, 0, m)
	for step := 0; step < m; step++ {
		best, bestMax := -1, math.Inf(1)
		for c := 0; c < m; c++ {
			if used[c] {
				continue
			}
			worst := 0.0
			for j := 0; j < m; j++ {
				if used[j] && j != c {
					continue // component already annihilated
				}
				v := math.Abs(prod[j] * (1 - eigs[j]/eigs[c]))
				if v > worst {
					worst = v
				}
			}
			if worst < bestMax {
				bestMax, best = worst, c
			}
		}
		used[best] = true
		order = append(order, eigs[best])
		for j := 0; j < m; j++ {
			prod[j] *= 1 - eigs[j]/eigs[best]
		}
	}
	return order
}

// Rounds returns the number of rounds OPS needs for exact balance: the
// count m of distinct nonzero Laplacian eigenvalues.
func (o *OPS) Rounds() int { return len(o.eigs) }

// Done reports whether all m rounds have been applied.
func (o *OPS) Done() bool { return o.k >= len(o.eigs) }

// Step applies round k's factor (I − L/λ_{k+1}). Further steps after Done
// are no-ops (the balanced vector is a fixed point of every factor).
func (o *OPS) Step() {
	if o.Done() {
		return
	}
	lam := o.eigs[o.k]
	o.k++
	cur := o.Load.Vector()
	n := o.G.N()
	if o.next == nil {
		o.next = make(matrix.Vector, n)
	}
	// next = cur − (1/λ)·L·cur, applied sparsely over the CSR rows.
	off, tgt := o.G.CSR()
	for i := 0; i < n; i++ {
		row := tgt[off[i]:off[i+1]]
		s := float64(len(row)) * cur[i]
		for _, j := range row {
			s -= cur[j]
		}
		o.next[i] = cur[i] - s/lam
	}
	copy(cur, o.next)
}

// Potential returns Φ of the current distribution.
func (o *OPS) Potential() float64 { return o.Load.Potential() }

// distinctNonzero clusters an ascending eigenvalue list, dropping the zero
// eigenvalue(s) and merging values within a relative tolerance — numeric
// eigensolves split analytically-equal eigenvalues by rounding, and OPS
// must count them once (its finite-termination property depends on it).
func distinctNonzero(vals []float64) []float64 {
	const relTol = 1e-8
	var out []float64
	scale := vals[len(vals)-1]
	if scale <= 0 {
		return nil
	}
	for _, v := range vals {
		if v <= relTol*scale {
			continue // zero eigenvalue (Laplacian kernel)
		}
		if len(out) > 0 && math.Abs(v-out[len(out)-1]) <= relTol*scale {
			continue
		}
		out = append(out, v)
	}
	return out
}
