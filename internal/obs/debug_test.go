package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestServeDebug(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("smoke_total", "Smoke.").Add(3)
	addr, stop, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	code, body := get("/metrics/prom")
	if code != 200 {
		t.Fatalf("/metrics/prom status %d", code)
	}
	for _, want := range []string{"# TYPE smoke_total counter", "smoke_total 3", "# TYPE go_goroutines gauge"} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q:\n%s", want, body)
		}
	}

	code, body = get("/debug/pprof/goroutine?debug=1")
	if code != 200 {
		t.Fatalf("/debug/pprof/goroutine status %d", code)
	}
	if !strings.Contains(body, "goroutine") {
		t.Errorf("pprof goroutine output unexpected: %.80s", body)
	}
}

func TestStartCPUProfileAndHeap(t *testing.T) {
	dir := t.TempDir()
	stop, err := StartCPUProfile(dir + "/cpu.pprof")
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something in it.
	x := 0.0
	for i := 0; i < 1_000_00; i++ {
		x += float64(i) * 1.0000001
	}
	_ = x
	stop()
	if err := WriteHeapProfile(dir + "/heap.pprof"); err != nil {
		t.Fatal(err)
	}
}
