package graph

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder("t", 3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || g.HasEdge(0, 2) {
		t.Fatal("HasEdge wrong")
	}
	if g.Degree(1) != 2 || g.Degree(0) != 1 {
		t.Fatal("degrees wrong")
	}
}

func TestBuilderRejectsSelfLoop(t *testing.T) {
	b := NewBuilder("t", 2)
	b.AddEdge(0, 0)
	if _, err := b.Finish(); err == nil {
		t.Fatal("expected self-loop error")
	}
}

func TestBuilderRejectsOutOfRange(t *testing.T) {
	b := NewBuilder("t", 2)
	b.AddEdge(0, 5)
	if _, err := b.Finish(); err == nil {
		t.Fatal("expected range error")
	}
}

func TestBuilderDeduplicates(t *testing.T) {
	b := NewBuilder("t", 2)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	g := b.MustFinish()
	if g.M() != 1 {
		t.Fatalf("m=%d, want 1", g.M())
	}
}

func TestEdgeCanonicalAndOther(t *testing.T) {
	e := Edge{U: 5, V: 2}.Canonical()
	if e.U != 2 || e.V != 5 {
		t.Fatalf("canonical: %v", e)
	}
	if e.Other(2) != 5 || e.Other(5) != 2 {
		t.Fatal("Other wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Other should panic for non-endpoint")
		}
	}()
	e.Other(7)
}

func TestPath(t *testing.T) {
	g := Path(5)
	if g.N() != 5 || g.M() != 4 {
		t.Fatalf("path: n=%d m=%d", g.N(), g.M())
	}
	if g.MaxDegree() != 2 || g.MinDegree() != 1 {
		t.Fatal("path degrees wrong")
	}
	if !g.IsConnected() {
		t.Fatal("path must be connected")
	}
	if Diameter(g) != 4 {
		t.Fatalf("path diameter %d", Diameter(g))
	}
}

func TestCycle(t *testing.T) {
	g := Cycle(6)
	if g.M() != 6 {
		t.Fatalf("cycle m=%d", g.M())
	}
	if d, ok := g.IsRegular(); !ok || d != 2 {
		t.Fatal("cycle must be 2-regular")
	}
	if Diameter(g) != 3 {
		t.Fatalf("cycle(6) diameter %d", Diameter(g))
	}
}

func TestCycleTooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Cycle(2)
}

func TestComplete(t *testing.T) {
	g := Complete(5)
	if g.M() != 10 {
		t.Fatalf("K5 m=%d", g.M())
	}
	if d, ok := g.IsRegular(); !ok || d != 4 {
		t.Fatal("K5 must be 4-regular")
	}
	if Diameter(g) != 1 {
		t.Fatal("K5 diameter must be 1")
	}
}

func TestStar(t *testing.T) {
	g := Star(6)
	if g.M() != 5 || g.MaxDegree() != 5 || g.MinDegree() != 1 {
		t.Fatalf("star wrong: %v", g)
	}
}

func TestCompleteBipartite(t *testing.T) {
	g := CompleteBipartite(2, 3)
	if g.N() != 5 || g.M() != 6 {
		t.Fatalf("K(2,3): n=%d m=%d", g.N(), g.M())
	}
	if g.HasEdge(0, 1) {
		t.Fatal("edge within part")
	}
	if !g.HasEdge(0, 2) {
		t.Fatal("missing cross edge")
	}
}

func TestGridAndTorus(t *testing.T) {
	gr := Grid(3, 4)
	if gr.N() != 12 || gr.M() != 3*3+2*4 {
		t.Fatalf("grid: n=%d m=%d", gr.N(), gr.M())
	}
	to := Torus(3, 4)
	if to.N() != 12 || to.M() != 24 {
		t.Fatalf("torus: n=%d m=%d", to.N(), to.M())
	}
	if d, ok := to.IsRegular(); !ok || d != 4 {
		t.Fatal("torus must be 4-regular")
	}
}

func TestHypercube(t *testing.T) {
	g := Hypercube(4)
	if g.N() != 16 || g.M() != 32 {
		t.Fatalf("Q4: n=%d m=%d", g.N(), g.M())
	}
	if d, ok := g.IsRegular(); !ok || d != 4 {
		t.Fatal("Q4 must be 4-regular")
	}
	if Diameter(g) != 4 {
		t.Fatalf("Q4 diameter %d", Diameter(g))
	}
	if g0 := Hypercube(0); g0.N() != 1 || g0.M() != 0 {
		t.Fatal("Q0 must be the single node")
	}
}

func TestDeBruijn(t *testing.T) {
	g := DeBruijn(4)
	if g.N() != 16 {
		t.Fatalf("n=%d", g.N())
	}
	if !g.IsConnected() {
		t.Fatal("de Bruijn must be connected")
	}
	if g.MaxDegree() > 4 {
		t.Fatalf("de Bruijn max degree %d > 4", g.MaxDegree())
	}
}

func TestBinaryTree(t *testing.T) {
	g := BinaryTree(4)
	if g.N() != 15 || g.M() != 14 {
		t.Fatalf("tree: n=%d m=%d", g.N(), g.M())
	}
	if !g.IsConnected() {
		t.Fatal("tree must be connected")
	}
	if g.MaxDegree() != 3 {
		t.Fatalf("tree max degree %d", g.MaxDegree())
	}
}

func TestPetersen(t *testing.T) {
	g := Petersen()
	if g.N() != 10 || g.M() != 15 {
		t.Fatalf("petersen: n=%d m=%d", g.N(), g.M())
	}
	if d, ok := g.IsRegular(); !ok || d != 3 {
		t.Fatal("petersen must be 3-regular")
	}
	if Diameter(g) != 2 {
		t.Fatalf("petersen diameter %d", Diameter(g))
	}
}

func TestBarbellAndLollipop(t *testing.T) {
	b := Barbell(4)
	if b.N() != 8 || b.M() != 2*6+1 {
		t.Fatalf("barbell: n=%d m=%d", b.N(), b.M())
	}
	if !b.IsConnected() {
		t.Fatal("barbell must be connected")
	}
	l := Lollipop(4, 3)
	if l.N() != 7 || l.M() != 6+3 {
		t.Fatalf("lollipop: n=%d m=%d", l.N(), l.M())
	}
	if !l.IsConnected() {
		t.Fatal("lollipop must be connected")
	}
}

func TestRandomRegular(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := RandomRegular(20, 4, rng)
	if d, ok := g.IsRegular(); !ok || d != 4 {
		t.Fatalf("not 4-regular")
	}
	if !g.IsConnected() {
		t.Fatal("must be connected by construction")
	}
}

func TestRandomRegularInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for odd n·d")
		}
	}()
	RandomRegular(5, 3, rand.New(rand.NewSource(1)))
}

func TestErdosRenyiExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g0 := ErdosRenyi(10, 0, rng)
	if g0.M() != 0 {
		t.Fatal("G(n,0) must have no edges")
	}
	g1 := ErdosRenyi(10, 1, rng)
	if g1.M() != 45 {
		t.Fatalf("G(10,1) m=%d", g1.M())
	}
}

func TestLaplacianStructure(t *testing.T) {
	g := Cycle(5)
	l := g.Laplacian()
	if !l.IsSymmetric(0) {
		t.Fatal("Laplacian must be symmetric")
	}
	for i, s := range l.RowSums() {
		if s != 0 {
			t.Fatalf("Laplacian row %d sums to %v", i, s)
		}
	}
	if l.At(0, 0) != 2 || l.At(0, 1) != -1 {
		t.Fatal("Laplacian entries wrong")
	}
}

func TestAdjacencyMatchesHasEdge(t *testing.T) {
	g := Petersen()
	a := g.Adjacency()
	for i := 0; i < g.N(); i++ {
		for j := 0; j < g.N(); j++ {
			want := 0.0
			if g.HasEdge(i, j) {
				want = 1
			}
			if a.At(i, j) != want {
				t.Fatalf("A[%d][%d] = %v, want %v", i, j, a.At(i, j), want)
			}
		}
	}
}

func TestSubgraph(t *testing.T) {
	g := Complete(5)
	sub := g.Subgraph("no-zero", func(e Edge) bool { return e.U != 0 })
	if sub.N() != 5 {
		t.Fatal("subgraph must keep node set")
	}
	if sub.M() != 6 {
		t.Fatalf("subgraph m=%d, want 6", sub.M())
	}
	if sub.Degree(0) != 0 {
		t.Fatal("node 0 should be isolated")
	}
}

func TestIsConnectedEdgeCases(t *testing.T) {
	if !NewBuilder("empty", 0).MustFinish().IsConnected() {
		t.Fatal("empty graph connected by convention")
	}
	if !NewBuilder("one", 1).MustFinish().IsConnected() {
		t.Fatal("single node connected")
	}
	if NewBuilder("two", 2).MustFinish().IsConnected() {
		t.Fatal("two isolated nodes are disconnected")
	}
}

func TestDiameterDisconnected(t *testing.T) {
	if Diameter(NewBuilder("two", 2).MustFinish()) != -1 {
		t.Fatal("disconnected diameter must be -1")
	}
}

func TestStandardSuite(t *testing.T) {
	suite := StandardSuite(16)
	if len(suite) == 0 {
		t.Fatal("suite empty")
	}
	for _, g := range suite {
		if !g.IsConnected() {
			t.Fatalf("%s not connected", g.Name())
		}
		if g.N() < 16 {
			t.Fatalf("%s smaller than requested: n=%d", g.Name(), g.N())
		}
	}
}

// Property: handshake lemma Σdeg = 2m for random graphs.
func TestHandshakeProperty(t *testing.T) {
	f := func(seed uint8, pRaw uint8) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		n := 2 + r.Intn(20)
		p := float64(pRaw) / 255
		g := ErdosRenyi(n, p, r)
		sum := 0
		for i := 0; i < n; i++ {
			sum += g.Degree(i)
		}
		return sum == 2*g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: neighbour lists are consistent with the edge list.
func TestNeighborConsistencyProperty(t *testing.T) {
	f := func(seed uint8) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		n := 2 + r.Intn(15)
		g := ErdosRenyi(n, 0.4, r)
		count := 0
		for i := 0; i < n; i++ {
			for _, j := range g.Neighbors(i) {
				if !g.HasEdge(i, j) {
					return false
				}
				count++
			}
		}
		return count == 2*g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFingerprint(t *testing.T) {
	// Stable across calls and across identically-built instances.
	a, b := Cycle(32), Cycle(32)
	if a.Fingerprint() != a.Fingerprint() {
		t.Fatal("fingerprint not stable across calls")
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical constructions disagree")
	}
	// Sensitive to structure: same name, different edges must differ.
	b1 := NewBuilder("fp", 4)
	b1.AddEdge(0, 1)
	b1.AddEdge(2, 3)
	b2 := NewBuilder("fp", 4)
	b2.AddEdge(0, 2)
	b2.AddEdge(1, 3)
	if b1.MustFinish().Fingerprint() == b2.MustFinish().Fingerprint() {
		t.Fatal("different edge sets share a fingerprint")
	}
	// Sensitive to name: same structure, different name must differ (names
	// encode construction parameters the edge list may not reach, and the
	// speccache key must separate them).
	if Cycle(32).Fingerprint() == Cycle(32).Subgraph("renamed", func(Edge) bool { return true }).Fingerprint() {
		t.Fatal("renamed graph shares a fingerprint")
	}
	// Concurrent first calls are safe (G is lazily fingerprinted).
	g := Torus(8, 8)
	var wg sync.WaitGroup
	got := make([]uint64, 16)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = g.Fingerprint()
		}(i)
	}
	wg.Wait()
	for _, v := range got {
		if v != got[0] {
			t.Fatal("concurrent fingerprint calls disagree")
		}
	}
}
