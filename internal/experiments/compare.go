package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/diffusion"
	"repro/internal/dimexchange"
	"repro/internal/markov"
	"repro/internal/sim"
	"repro/internal/speccache"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

func init() {
	register("E11", E11VsDimensionExchange)
	register("E12", E12VsFirstSecondOrder)
	register("E13", E13LocalDivergence)
}

// E11VsDimensionExchange reproduces the §3 comparison: Algorithm 1 balances
// over all edges concurrently while the [12] baseline activates a random
// matching, so diffusion should converge a constant factor faster on the
// same instances. Reports rounds to 1e-4·Φ⁰ for both, and the speedup.
func E11VsDimensionExchange(o Options) *trace.Table {
	t := trace.NewTable("E11 — Algorithm 1 vs dimension exchange [12] (rounds to 1e-4·Φ⁰, spike start)",
		"graph", "diffusion", "dimexchange (mean±sd)", "speedup")
	const eps = 1e-4
	reps := 10
	maxRounds := 500000
	if o.Quick {
		reps = 3
		maxRounds = 50000
	}
	suite := fixedSuite(o.Quick)
	rows := make([]row, len(suite))
	o.sweep(len(rows), func(i int, rng *rand.Rand) {
		g := suite[i]
		init := workload.Continuous(workload.Spike, g.N(), 1e8, nil)
		diffSt := diffusion.NewContinuous(g, init)
		diffRounds := sim.RoundsToFraction(diffSt, eps, maxRounds)

		var dimRounds []float64
		for k := 0; k < reps; k++ {
			st := dimexchange.NewContinuous(g, init, rand.New(rand.NewSource(rng.Int63())))
			dimRounds = append(dimRounds, float64(sim.RoundsToFraction(st, eps, maxRounds)))
		}
		s := stats.Summarize(dimRounds)
		speedup := s.Mean / float64(diffRounds)
		rows[i] = row{g.Name(), diffRounds, formatMeanSD(s), speedup}
	})
	emit(t, rows)
	t.Note("speedup > 1 on every connected topology reproduces the paper's 'constant times faster' claim; the factor grows with δ because a matching touches ≤ n/2 edges while diffusion touches all m.")
	return t
}

// E12VsFirstSecondOrder reproduces the §2 comparison against [3, 15]:
// Algorithm 1's conservative 1/(4·max d) factor versus the first-order
// scheme's 1/(δ+1) and the optimally-accelerated second-order scheme.
// Reports rounds to 1e-6·Φ⁰ on each topology.
func E12VsFirstSecondOrder(o Options) *trace.Table {
	t := trace.NewTable("E12 — Algorithm 1 vs first-order [3] vs second-order [15] (rounds to 1e-6·Φ⁰)",
		"graph", "algorithm 1", "first order", "second order (β*)", "γ")
	const eps = 1e-6
	maxRounds := 500000
	if o.Quick {
		maxRounds = 50000
	}
	suite := fixedSuite(o.Quick)
	rows := make([]row, len(suite))
	o.sweep(len(rows), func(i int, _ *rand.Rand) {
		g := suite[i]
		init := workload.Continuous(workload.Spike, g.N(), 1e8, nil)

		a1 := sim.RoundsToFraction(diffusion.NewContinuous(g, init), eps, maxRounds)
		fo := sim.RoundsToFraction(diffusion.NewFirstOrder(g, init), eps, maxRounds)

		gamma := math.NaN()
		so := maxRounds + 1
		if gm, err := speccache.Gamma(g); err == nil {
			gamma = gm
			so = sim.RoundsToFraction(diffusion.NewSecondOrder(g, init, diffusion.OptimalBeta(gm)), eps, maxRounds)
		}
		rows[i] = row{g.Name(), a1, fo, so, gamma}
	})
	emit(t, rows)
	t.Note("rounds = maxRounds+1 would mean not converged. Algorithm 1's lazy 1/(4·max d) factor costs roughly 4× against the first-order α=1/(δ+1), but it is what guarantees the per-activation drop of Lemma 1 on every topology; the second-order scheme accelerates further the closer γ is to 1.")
	return t
}

// E13LocalDivergence reproduces the [16] framing the paper builds on: run
// the discrete system against its idealized Markov chain and report the
// realized local divergence Ψ next to the O(δ·log n/µ) bound shape, and the
// final trajectory deviation.
func E13LocalDivergence(o Options) *trace.Table {
	t := trace.NewTable("E13 — local divergence of discrete vs idealized chain [16]",
		"graph", "rounds", "Ψ measured", "δ·ln(n)/µ shape", "Ψ/shape", "max ‖dev‖∞")
	horizon := 300
	if o.Quick {
		horizon = 60
	}
	suite := fixedSuite(o.Quick)
	rows := make([]row, len(suite))
	o.sweep(len(rows), func(i int, _ *rand.Rand) {
		g := suite[i]
		mu, err := speccache.PaperEigenGap(g)
		if err != nil || mu <= 0 {
			return
		}
		init := workload.Discrete(workload.Spike, g.N(), int64(g.N())*100000, nil)
		run := markov.Couple(g, init, horizon)
		shape := markov.PsiBoundShape(g, mu)
		rows[i] = row{g.Name(), run.Rounds, run.LocalDivergence, shape, run.LocalDivergence / shape, run.MaxDeviation}
	})
	emit(t, rows)
	t.Note("[16] predict Ψ = O(δ·log n/µ) per unit of moved load; the Ψ/shape column must stay bounded across topologies of the same family.")
	return t
}

// formatMeanSD renders mean±sd compactly for table cells.
func formatMeanSD(s stats.Summary) string {
	return fmt.Sprintf("%.4g±%.3g", s.Mean, s.Stddev())
}
