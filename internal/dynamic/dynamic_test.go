package dynamic

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/workload"
)

func TestStaticSequence(t *testing.T) {
	g := graph.Cycle(8)
	s := Static{G: g}
	if s.N() != 8 || s.Next(0) != g || s.Next(99) != g {
		t.Fatal("static sequence wrong")
	}
}

func TestRandomSubgraphsKeepAll(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base := graph.Torus(4, 4)
	seq := &RandomSubgraphs{Base: base, KeepProb: 1, RNG: rng}
	g := seq.Next(0)
	if g.M() != base.M() {
		t.Fatalf("KeepProb=1 lost edges: %d vs %d", g.M(), base.M())
	}
}

func TestRandomSubgraphsKeepNone(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	base := graph.Cycle(6)
	seq := &RandomSubgraphs{Base: base, KeepProb: 0, RNG: rng}
	if g := seq.Next(0); g.M() != 0 {
		t.Fatal("KeepProb=0 kept edges")
	}
}

func TestRandomSubgraphsConnectedFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	base := graph.Cycle(8)
	seq := &RandomSubgraphs{Base: base, KeepProb: 0.05, RequireConnected: true, RNG: rng}
	g := seq.Next(0)
	if !g.IsConnected() {
		t.Fatal("RequireConnected violated (fallback should return base)")
	}
}

func TestAlternating(t *testing.T) {
	a, err := NewAlternating(graph.Cycle(8), graph.Complete(8))
	if err != nil {
		t.Fatal(err)
	}
	if a.Next(0).Name() != "cycle(8)" || a.Next(1).Name() != "complete(8)" || a.Next(2).Name() != "cycle(8)" {
		t.Fatal("alternation wrong")
	}
}

func TestAlternatingRejectsMismatch(t *testing.T) {
	if _, err := NewAlternating(graph.Cycle(8), graph.Cycle(9)); err == nil {
		t.Fatal("expected node-count mismatch error")
	}
	if _, err := NewAlternating(); err == nil {
		t.Fatal("expected empty-list error")
	}
}

func TestEdgeFailures(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	base := graph.Complete(8)
	seq := &EdgeFailures{Base: base, FailCount: 5, RNG: rng}
	g := seq.Next(0)
	if g.M() != base.M()-5 {
		t.Fatalf("m=%d, want %d", g.M(), base.M()-5)
	}
	if g.N() != base.N() {
		t.Fatal("node set must be preserved")
	}
}

func TestRunContinuousOnStaticMatchesTheorem7Shape(t *testing.T) {
	// On a static sequence Theorem 7 reduces to Theorem 4: the run must
	// reach ε·Φ⁰ within ln(1/ε)/A_K rounds for A_K = λ₂/(4δ)… we check the
	// conservative 4× version used in the paper's Theorem 4 proof.
	g := graph.Torus(4, 4)
	init := workload.Continuous(workload.Spike, g.N(), 1e6, nil)
	const eps = 1e-3
	res := RunContinuous(Static{G: g}, init, eps*potentialOf(init), 10000, true)
	if res.PhiEnd > eps*res.PhiStart {
		t.Fatalf("did not converge: %v → %v", res.PhiStart, res.PhiEnd)
	}
	if res.AK <= 0 {
		t.Fatalf("A_K = %v", res.AK)
	}
	bound := 4 * math.Log(1/eps) / res.AK
	if float64(res.Rounds()) > bound {
		t.Fatalf("rounds %d exceed Theorem 7 bound %v", res.Rounds(), bound)
	}
}

func TestRunContinuousDynamicConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	base := graph.Hypercube(4)
	seq := &RandomSubgraphs{Base: base, KeepProb: 0.7, RNG: rng}
	init := workload.Continuous(workload.Spike, base.N(), 1e5, nil)
	res := RunContinuous(seq, init, 1e-3*potentialOf(init), 5000, true)
	if res.PhiEnd > 1e-3*res.PhiStart {
		t.Fatalf("dynamic run failed to converge: %v → %v", res.PhiStart, res.PhiEnd)
	}
	// Potential must be non-increasing round over round (continuous case).
	prev := res.PhiStart
	for _, s := range res.Stats {
		if s.Phi > prev+1e-9*(1+prev) {
			t.Fatalf("Φ rose in round %d", s.Round)
		}
		prev = s.Phi
	}
}

func TestRunDiscreteReachesTheorem8Threshold(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	base := graph.Torus(4, 4)
	seq := &RandomSubgraphs{Base: base, KeepProb: 0.8, RNG: rng}
	init := workload.Discrete(workload.Spike, base.N(), 10_000_000, nil)
	// First pass to collect per-round spectra for the threshold.
	res := RunDiscrete(seq, init, 0, 600, true)
	thr := Theorem8Threshold(base.N(), res.Stats)
	if thr <= 0 {
		t.Fatalf("threshold %v", thr)
	}
	if res.PhiEnd > thr {
		t.Fatalf("Φ end %v above Theorem 8 threshold %v", res.PhiEnd, thr)
	}
}

func TestRunStopsAtTarget(t *testing.T) {
	g := graph.Complete(8)
	init := workload.Continuous(workload.Spike, 8, 100, nil)
	res := RunContinuous(Static{G: g}, init, potentialOf(init)*0.5, 1000, false)
	if res.Rounds() >= 1000 {
		t.Fatal("should stop early at target")
	}
	if res.AK != 0 {
		t.Fatal("AK must be 0 when spectra are skipped")
	}
}

func TestTheorem8ThresholdSkipsDisconnected(t *testing.T) {
	stats := []RoundStat{
		{Lambda2: 0, Delta: 4},   // disconnected round: ignored
		{Lambda2: 2, Delta: 2},   // contributes 8/2 = 4
		{Lambda2: 0.5, Delta: 1}, // contributes 1/0.5 = 2
	}
	got := Theorem8Threshold(10, stats)
	want := 64.0 * 10 * 4
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("threshold %v, want %v", got, want)
	}
}

func potentialOf(v []float64) float64 {
	var mean float64
	for _, x := range v {
		mean += x
	}
	mean /= float64(len(v))
	var s float64
	for _, x := range v {
		d := x - mean
		s += d * d
	}
	return s
}
