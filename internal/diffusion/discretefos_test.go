package diffusion

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/spectral"
	"repro/internal/workload"
)

func TestDiscreteFirstOrderConserves(t *testing.T) {
	g := graph.Torus(4, 4)
	init := workload.Discrete(workload.Spike, g.N(), 1_000_000, nil)
	st := NewDiscreteFirstOrder(g, init)
	before := st.Load.Total()
	for k := 0; k < 200; k++ {
		st.Step()
	}
	if st.Load.Total() != before {
		t.Fatal("tokens not conserved")
	}
}

func TestDiscreteFirstOrderReachesFixedPoint(t *testing.T) {
	g := graph.Cycle(16)
	init := workload.Discrete(workload.Spike, g.N(), 160_000, nil)
	st := NewDiscreteFirstOrder(g, init)
	for k := 0; k < 50000 && !st.FixedPoint(); k++ {
		st.Step()
	}
	if !st.FixedPoint() {
		t.Fatal("no fixed point within 50000 rounds")
	}
	// At the fixed point every edge difference is below 1/α = δ+1.
	bound := int64(g.MaxDegree() + 1)
	for _, e := range g.Edges() {
		diff := st.Load.At(e.U) - st.Load.At(e.V)
		if diff < 0 {
			diff = -diff
		}
		if diff >= bound*2 {
			t.Fatalf("edge %v difference %d at fixed point (α⁻¹ = %d)", e, diff, bound)
		}
	}
}

func TestDiscreteFirstOrderResidualWithinMGSShape(t *testing.T) {
	// The [15] guarantee: residual potential O(δ²n²) (ε = 1 shape). Run to
	// fixed point and check the measured residual sits below the shape.
	for _, g := range []*graph.G{graph.Cycle(16), graph.Torus(4, 4), graph.Hypercube(4)} {
		init := workload.Discrete(workload.Spike, g.N(), 10_000_000, nil)
		st := NewDiscreteFirstOrder(g, init)
		for k := 0; k < 100000 && !st.FixedPoint(); k++ {
			st.Step()
		}
		if phi := st.Potential(); phi > MGSResidualShape(g) {
			t.Fatalf("%s: residual %v above [15] shape %v", g.Name(), phi, MGSResidualShape(g))
		}
	}
}

func TestDiscreteFixedPointDetector(t *testing.T) {
	g := graph.Path(4)
	if !DiscreteFixedPoint(g, []int64{0, 1, 2, 3}) {
		t.Fatal("ramp must be a fixed point of Algorithm 1")
	}
	if DiscreteFixedPoint(g, []int64{100, 0, 0, 0}) {
		t.Fatal("spike is not a fixed point")
	}
}

func TestPaperResidualBeatsMGSShapeOnSuite(t *testing.T) {
	// The §3 remark: Theorem 6's threshold 64δ³n/λ₂ is linear in n while
	// [15]'s is quadratic. On hypercubes (λ₂ = 2) the formulas cross at
	// exactly 32·d = 2^d, i.e. d = 8; past that the paper's threshold is
	// strictly smaller.
	for _, d := range []int{9, 10, 12} {
		g := graph.Hypercube(d)
		lambda2 := 2.0 // closed form
		paper := DiscreteThreshold(g, lambda2)
		mgs := MGSResidualShape(g)
		if paper >= mgs {
			t.Fatalf("Q%d: paper threshold %v not below [15] shape %v", d, paper, mgs)
		}
	}
	_ = spectral.MustLambda2 // spectral used in other tests of this package
}
