// Package core is the top-level facade of the library: a single, documented
// entry point that wires together the topology (internal/graph), the
// balancing algorithms (internal/diffusion, internal/dimexchange,
// internal/randpair), the spectral analysis (internal/spectral) and the
// round driver (internal/sim).
//
// A typical use:
//
//	g := graph.Torus(8, 8)
//	res, err := core.Balance(core.Config{
//		Graph:     g,
//		Algorithm: core.Diffusion,
//		Mode:      core.Continuous,
//		Loads:     core.SpikeLoads(g.N(), 1e6),
//		Epsilon:   1e-4,
//	})
//
// which runs the paper's Algorithm 1 until the potential has dropped to
// ε·Φ⁰ and reports the rounds used next to the Theorem 4 bound.
package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/diffusion"
	"repro/internal/dimexchange"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/randpair"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/speccache"
)

// Algorithm selects the balancing scheme.
type Algorithm int

const (
	// Diffusion is the paper's Algorithm 1: concurrent balancing with every
	// neighbour, transfer (ℓᵢ−ℓⱼ)/(4·max(dᵢ,dⱼ)).
	Diffusion Algorithm = iota
	// DimensionExchange is the random-matching baseline of [12].
	DimensionExchange
	// RandomPartners is the paper's Algorithm 2: partners drawn uniformly
	// from all nodes each round (ignores Config.Graph's edges; the node
	// count still comes from the graph).
	RandomPartners
	// FirstOrder is Cybenko's scheme Lᵗ⁺¹ = M·Lᵗ, α = 1/(δ+1)
	// (continuous only).
	FirstOrder
	// SecondOrder is the β-accelerated scheme of [15] (continuous only).
	SecondOrder
	// RoundRobinExchange is deterministic dimension exchange ([3]): a fixed
	// matching schedule from a greedy edge coloring, cycled round-robin.
	RoundRobinExchange
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case Diffusion:
		return "diffusion"
	case DimensionExchange:
		return "dimexchange"
	case RandomPartners:
		return "randpair"
	case FirstOrder:
		return "firstorder"
	case SecondOrder:
		return "secondorder"
	case RoundRobinExchange:
		return "roundrobin"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// AlgorithmDescriptions returns each algorithm name and a one-line
// description, in declaration order — the -list surface.
func AlgorithmDescriptions() [][2]string {
	return [][2]string{
		{"diffusion", "the paper's Algorithm 1: balance with every neighbour, (ℓᵢ−ℓⱼ)/(4·max(dᵢ,dⱼ))"},
		{"dimexchange", "random-matching dimension exchange (the [12] baseline)"},
		{"randpair", "the paper's Algorithm 2: uniformly random partners, topology-free"},
		{"firstorder", "Cybenko's first-order scheme Lᵗ⁺¹ = M·Lᵗ (continuous only)"},
		{"secondorder", "β-accelerated second-order scheme of [15] (continuous only)"},
		{"roundrobin", "deterministic dimension exchange on an edge-coloring schedule"},
	}
}

// ModeDescriptions returns each load-model name and a one-line
// description — the -list surface.
func ModeDescriptions() [][2]string {
	return [][2]string{
		{"continuous", "arbitrarily divisible load (the ideal model of §2.1)"},
		{"discrete", "indivisible tokens with floor transfers (§2.2/§4.2)"},
	}
}

// ParseAlgorithm converts a CLI name into an Algorithm.
func ParseAlgorithm(s string) (Algorithm, error) {
	for _, a := range []Algorithm{Diffusion, DimensionExchange, RandomPartners, FirstOrder, SecondOrder, RoundRobinExchange} {
		if a.String() == s {
			return a, nil
		}
	}
	return 0, fmt.Errorf("core: unknown algorithm %q", s)
}

// Mode selects continuous (divisible) or discrete (token) load.
type Mode int

const (
	// Continuous allows arbitrarily divisible load.
	Continuous Mode = iota
	// Discrete moves indivisible tokens (floor transfers).
	Discrete
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == Discrete {
		return "discrete"
	}
	return "continuous"
}

// Config describes one balancing run.
type Config struct {
	// Graph is the topology. Required; must be connected for the spectral
	// bounds to be meaningful.
	Graph *graph.G
	// Algorithm selects the scheme (default Diffusion).
	Algorithm Algorithm
	// Mode selects continuous or discrete load (default Continuous).
	Mode Mode
	// Loads is the initial continuous distribution; for Discrete mode the
	// entries are truncated to integers. Length must equal Graph.N().
	Loads []float64
	// Epsilon is the convergence target: stop when Φ ≤ ε·Φ⁰ (continuous)
	// or when Φ reaches max(ε·Φ⁰, discrete threshold) in discrete mode.
	// Default 1e-3.
	Epsilon float64
	// MaxRounds caps the run (default: 16× the relevant theorem bound, or
	// 10⁶ when no bound applies).
	MaxRounds int
	// Seed drives the randomized algorithms (default 1).
	Seed int64
	// Workers is the round-level worker count: every stepper fans its
	// node/pair loops over this many goroutines (default 1 = serial;
	// results are byte-identical for any value). It is a per-run knob,
	// distinct from the batch engine's unit-level pool width — see
	// batch.Spec.RoundWorkers for how grid sweeps split GOMAXPROCS
	// between the two levels.
	Workers int
	// Scenario drives time-varying arrivals and topology churn between
	// rounds (the §5 dynamic model as a declarative run dimension). The
	// zero value is the static scenario: a one-shot start on a fixed
	// graph, byte-identical to pre-scenario runs. Non-static scenarios run
	// a fixed horizon (MaxRounds, or scenario.DefaultHorizon) unless the
	// scenario is arrival-free and the target is reached early, and report
	// PeakPhi/SteadyRMS/RebalanceRounds alongside the usual metrics.
	Scenario scenario.Spec
	// ScenarioSeed drives the scenario's own RNG stream, kept separate
	// from Seed so enabling a scenario never perturbs the algorithm's
	// draws (default: Seed).
	ScenarioSeed int64
	// Phases, when non-nil, accumulates per-phase wall time (spectra,
	// step, inject, commit, graph-swap) for this run — the session-level
	// hook of the telemetry layer (internal/obs). The nil default
	// collects nothing and costs nothing: every clock read in the round
	// loop is gated behind the nil check, so untelemetered runs keep the
	// zero-allocation hot loop. Timings are observational only; they
	// never influence the run, so results are byte-identical either way.
	Phases *obs.Phases
}

// Result reports a completed run.
type Result struct {
	// Algorithm and Mode echo the configuration.
	Algorithm Algorithm
	Mode      Mode
	// Rounds actually executed, and whether the target was reached.
	Rounds    int
	Converged bool
	// PhiStart and PhiEnd bracket the run; Trace is the full Φ trajectory
	// (entry t is Φ after round t).
	PhiStart, PhiEnd float64
	Trace            []float64
	// Lambda2 and Delta are the spectral inputs of the paper's bounds
	// (Lambda2 is 0 when not computed, e.g. for RandomPartners).
	Lambda2 float64
	Delta   int
	// Bound is the paper's round bound for this configuration: Theorem 4
	// (Diffusion/Continuous), Theorem 6 (Diffusion/Discrete), Theorem 12
	// or 14 shape for RandomPartners; 0 when no bound applies (the
	// one-shot theorems never apply to runs with ongoing arrivals, so
	// scenario runs always report 0).
	Bound float64
	// BoundName names the theorem behind Bound ("" when none).
	BoundName string
	// Scenario metrics, populated by non-static scenario runs only:
	// PeakPhi is the largest Φ observed (peak backlog), SteadyRMS the mean
	// RMS discrepancy over the final quarter of rounds (steady state under
	// ongoing arrivals), RebalanceRounds the rounds the system needed
	// after the last load injection to get back under the target (0 when
	// it never did — see Converged).
	PeakPhi         float64
	SteadyRMS       float64
	RebalanceRounds int
}

// Validate rejects configurations Balance cannot run: a missing graph, a
// load vector of the wrong length or with non-finite/negative entries, an
// Epsilon outside (0,1) (≤ 0 means "use the default" and is accepted), and
// algorithm/mode combinations that do not exist. Balance, NewSystem, Open
// and lbserved all gate on this one method, so a bad config is rejected
// identically everywhere.
func (cfg Config) Validate() error {
	if cfg.Graph == nil {
		return errors.New("core: Config.Graph is required")
	}
	n := cfg.Graph.N()
	if len(cfg.Loads) != n {
		return fmt.Errorf("core: %d loads for %d nodes", len(cfg.Loads), n)
	}
	if cfg.Epsilon >= 1 {
		return fmt.Errorf("core: Epsilon %v must be in (0,1)", cfg.Epsilon)
	}
	for i, v := range cfg.Loads {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("core: invalid load %v at node %d", v, i)
		}
	}
	if (cfg.Algorithm == FirstOrder || cfg.Algorithm == SecondOrder) && cfg.Mode == Discrete {
		return fmt.Errorf("core: %v supports continuous mode only", cfg.Algorithm)
	}
	return nil
}

// withDefaults returns cfg with the documented zero-value defaults filled
// in: Epsilon 1e-3, Seed 1, Workers 1, ScenarioSeed = Seed. MaxRounds is
// left alone — its default depends on the theorem bound, which Session
// resolves (see Session.Horizon).
func (cfg Config) withDefaults() Config {
	if cfg.Epsilon <= 0 {
		cfg.Epsilon = 1e-3
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.ScenarioSeed == 0 {
		cfg.ScenarioSeed = cfg.Seed
	}
	return cfg
}

// Balance validates cfg, runs it to completion, and reports the outcome
// next to the matching theorem bound. It is a thin driver over the
// stepwise Session API: Open, Step/Commit to the horizon (with the
// scenario loop injecting arrivals and swapping graphs between rounds for
// non-static scenarios), Close.
func Balance(cfg Config) (Result, error) {
	s, err := Open(cfg)
	if err != nil {
		return Result{}, err
	}
	if !cfg.Scenario.IsStatic() {
		return runScenario(s)
	}
	horizon := s.Horizon()
	for s.Phi() > s.Target() && s.Rounds() < horizon {
		if err := s.Step(); err != nil {
			return Result{}, err
		}
		if _, err := s.Commit(); err != nil {
			return Result{}, err
		}
	}
	return s.Close(), nil
}

// buildSystem constructs the requested stepper on the config's graph and
// initial loads.
func buildSystem(cfg Config) (sim.System, error) {
	return buildSystemOn(cfg, cfg.Graph, cfg.Loads, rand.New(rand.NewSource(cfg.Seed)), speccache.Shared())
}

// buildSystemOn constructs the requested stepper on an explicit graph and
// load vector with an explicit RNG — the factory the scenario round loop
// uses to rebuild a stepper when the active graph changes mid-run. The
// persistent rng keeps a randomized algorithm's draw stream continuous
// across rebuilds, so a run's randomness does not restart with each churn.
// spectra supplies the second-order scheme's γ: the shared process-wide
// cache for graphs that recur across units, a run-local cache for the
// transient per-round subgraphs a churn scenario draws (which would
// otherwise each cost an eigensolve entry in — and disk spill from — the
// shared cache, never to be looked up again).
func buildSystemOn(cfg Config, g *graph.G, loads []float64, rng *rand.Rand, spectra *speccache.Cache) (sim.System, error) {
	switch cfg.Algorithm {
	case Diffusion:
		if cfg.Mode == Discrete {
			st := diffusion.NewDiscrete(g, toTokens(loads))
			st.Workers = cfg.Workers
			return st, nil
		}
		st := diffusion.NewContinuous(g, loads)
		st.Workers = cfg.Workers
		return st, nil
	case DimensionExchange:
		if cfg.Mode == Discrete {
			st := dimexchange.NewDiscrete(g, toTokens(loads), rng)
			st.Workers = cfg.Workers
			return st, nil
		}
		st := dimexchange.NewContinuous(g, loads, rng)
		st.Workers = cfg.Workers
		return st, nil
	case RandomPartners:
		if cfg.Mode == Discrete {
			st := randpair.NewDiscrete(toTokens(loads), rng)
			st.Workers = cfg.Workers
			return st, nil
		}
		st := randpair.NewContinuous(loads, rng)
		st.Workers = cfg.Workers
		return st, nil
	case FirstOrder:
		st := diffusion.NewFirstOrder(g, loads)
		st.Workers = cfg.Workers
		return st, nil
	case SecondOrder:
		gamma, err := spectra.Gamma(g)
		if err != nil {
			return nil, fmt.Errorf("core: γ for second-order β: %w", err)
		}
		st := diffusion.NewSecondOrder(g, loads, diffusion.OptimalBeta(gamma))
		st.Workers = cfg.Workers
		return st, nil
	case RoundRobinExchange:
		if cfg.Mode == Discrete {
			st := dimexchange.NewRoundRobinDiscrete(g, toTokens(loads))
			st.Workers = cfg.Workers
			return st, nil
		}
		st := dimexchange.NewRoundRobin(g, loads)
		st.Workers = cfg.Workers
		return st, nil
	default:
		return nil, fmt.Errorf("core: unknown algorithm %v", cfg.Algorithm)
	}
}

// NewSystem validates cfg's structural fields and constructs the configured
// stepper without running it — the entry point for harnesses (notably
// internal/perfbench) that drive rounds themselves. The stepper starts from
// a copy of cfg.Loads; Epsilon, MaxRounds and Scenario are ignored, and no
// spectral bound is computed (SecondOrder still pays for its β through the
// shared γ cache).
func NewSystem(cfg Config) (sim.System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return buildSystem(cfg.withDefaults())
}

// SpikeLoads places the whole load on node 0 — the canonical hard start.
func SpikeLoads(n int, total float64) []float64 {
	v := make([]float64, n)
	if n > 0 {
		v[0] = total
	}
	return v
}

// toTokens truncates a continuous load vector to integer tokens.
func toTokens(loads []float64) []int64 {
	out := make([]int64, len(loads))
	for i, v := range loads {
		out[i] = int64(v)
	}
	return out
}
