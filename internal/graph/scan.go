package graph

import (
	"fmt"
	"strings"
)

// sscanfStrict is fmt.Sscanf that additionally requires the whole input to
// be consumed: "path(8)x" must not match "path(%d)". fmt.Sscanf alone stops
// at the last verb and ignores trailing input, which would make topology
// name matching in KnownLambda2 too permissive.
func sscanfStrict(s, format string, args ...interface{}) (int, error) {
	n, err := fmt.Sscanf(s, format, args...)
	if err != nil {
		return n, err
	}
	// Re-render with the scanned values and compare; the formats used in
	// this package are all plain "%d" verbs, so the round trip is exact.
	vals := make([]interface{}, len(args))
	for i, a := range args {
		p, ok := a.(*int)
		if !ok {
			return n, fmt.Errorf("graph: sscanfStrict supports *int args only")
		}
		vals[i] = *p
	}
	if rendered := fmt.Sprintf(format, vals...); !strings.EqualFold(rendered, s) {
		return 0, fmt.Errorf("graph: %q does not fully match %q", s, format)
	}
	return n, nil
}
