// Clustersim: an HPC-flavoured scenario. A 2-D torus of compute nodes
// receives a skewed batch of jobs (power-law sizes landing on a handful of
// ingest nodes — the situation the diffusion literature motivates), and we
// compare three ways of spreading the work:
//
//   - Algorithm 1 (the paper's concurrent diffusion),
//   - dimension exchange via random matchings [12] (the baseline the paper
//     claims to beat by a constant factor),
//   - Algorithm 2 (random partners — "work stealing from a random peer").
//
// Jobs are indivisible (discrete mode), so the run also shows the residual
// imbalance each method is left with — Theorem 6's 64δ³n/λ₂ for diffusion.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/spectral"
	"repro/internal/workload"
)

func main() {
	const (
		side      = 12 // 12×12 torus = 144 nodes
		totalJobs = 10_000_000
		seed      = 2026
	)
	g := graph.Torus(side, side)
	rng := rand.New(rand.NewSource(seed))

	// Skewed arrival: power-law job mass, then pile 60% of it on 4 ingest
	// nodes to model a hot ingress rack.
	loads := workload.Discrete(workload.PowerLaw, g.N(), totalJobs*4/10, rng)
	hot := int64(totalJobs) * 6 / 10
	for i := 0; i < 4; i++ {
		loads[i*side] += hot / 4
	}
	asFloat := make([]float64, len(loads))
	for i, v := range loads {
		asFloat[i] = float64(v)
	}

	lambda2 := spectral.MustLambda2(g)
	fmt.Printf("cluster: %s   λ₂ = %.4g, δ = %d\n", g, lambda2, g.MaxDegree())
	fmt.Printf("jobs   : %d total, 60%% on 4 ingest nodes\n\n", totalJobs)

	for _, alg := range []core.Algorithm{core.Diffusion, core.DimensionExchange, core.RandomPartners} {
		res, err := core.Balance(core.Config{
			Graph:     g,
			Algorithm: alg,
			Mode:      core.Discrete,
			Loads:     asFloat,
			Epsilon:   1e-6,
			Seed:      seed,
			MaxRounds: 2_000_000,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s rounds=%-7d Φ: %.4g → %.4g", alg.String(), res.Rounds, res.PhiStart, res.PhiEnd)
		if res.Bound > 0 {
			fmt.Printf("   [%s bound %.0f]", res.BoundName, res.Bound)
		}
		fmt.Println()
	}

	fmt.Println("\nExpected shape (paper §3): among the neighbourhood balancers,")
	fmt.Println("diffusion beats dimension exchange by a constant factor (it touches")
	fmt.Println("all edges per round, a matching touches at most n/2). Random partners")
	fmt.Println("wins outright because its communication graph is global — the price")
	fmt.Println("is non-local traffic, and its discrete variant stops at the 3200n")
	fmt.Println("residual of Theorem 14.")
}
