package cliflags

import (
	"flag"
	"fmt"

	"repro/internal/obs"
)

// Obs holds the shared telemetry flag values — one definition presented by
// lbbench, lborch and lbserved, so the observability surface (and its help
// text) cannot drift between the CLIs.
type Obs struct {
	// Telemetry is the debug listener address ("" = off).
	Telemetry string
	// TraceOut is the Chrome trace-event output path ("" = no tracing).
	TraceOut string
}

// RegisterObs registers the telemetry flags on fs.
func RegisterObs(fs *flag.FlagSet) *Obs {
	o := &Obs{}
	fs.StringVar(&o.Telemetry, "telemetry", "", "serve /metrics/prom and /debug/pprof/* on this address (e.g. 127.0.0.1:6060; empty = off)")
	fs.StringVar(&o.TraceOut, "trace-out", "", "write a Chrome trace-event file (open in Perfetto) of the run to this path; the raw span event log streams to <path>.events.jsonl during the run")
	return o
}

// Start spins up whatever the parsed flags enabled: the -telemetry debug
// listener and the -trace-out span tracer. The returned tracer is nil when
// tracing is off — the no-op default every instrumented call site accepts.
// stop shuts the listener down, closes the event log and exports the Chrome
// trace file; call it once the run is over (it is always non-nil). logf
// receives one-line status messages and may be nil.
func (o *Obs) Start(logf func(format string, args ...any)) (*obs.Tracer, func() error, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	var stopListener func()
	if o.Telemetry != "" {
		addr, stop, err := obs.ServeDebug(o.Telemetry, obs.Default())
		if err != nil {
			return nil, nil, fmt.Errorf("-telemetry: %w", err)
		}
		stopListener = stop
		logf("telemetry: /metrics/prom and /debug/pprof/ on http://%s", addr)
	}
	var tr *obs.Tracer
	eventsPath := ""
	if o.TraceOut != "" {
		eventsPath = o.TraceOut + ".events.jsonl"
		t, err := obs.CreateTracer(eventsPath)
		if err != nil {
			if stopListener != nil {
				stopListener()
			}
			return nil, nil, fmt.Errorf("-trace-out: %w", err)
		}
		tr = t
	}
	stop := func() error {
		var firstErr error
		if tr != nil {
			if err := tr.Close(); err != nil {
				firstErr = fmt.Errorf("-trace-out: %w", err)
			}
			if err := obs.ExportChromeFile(eventsPath, o.TraceOut); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("-trace-out: %w", err)
			}
			if firstErr == nil {
				logf("trace: %s (load it at https://ui.perfetto.dev)", o.TraceOut)
			}
		}
		if stopListener != nil {
			stopListener()
		}
		return firstErr
	}
	return tr, stop, nil
}

// Profile holds the profile-capture flag values.
type Profile struct {
	CPU, Mem string
}

// RegisterProfile registers -cpuprofile and -memprofile on fs.
func RegisterProfile(fs *flag.FlagSet) *Profile {
	p := &Profile{}
	fs.StringVar(&p.CPU, "cpuprofile", "", "write a CPU profile of the run to this file")
	fs.StringVar(&p.Mem, "memprofile", "", "write a heap profile to this file at exit")
	return p
}

// Start begins CPU profiling when enabled; the returned stop (always
// non-nil) ends it and writes the heap profile when enabled.
func (p *Profile) Start() (func() error, error) {
	var stopCPU func()
	if p.CPU != "" {
		s, err := obs.StartCPUProfile(p.CPU)
		if err != nil {
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		stopCPU = s
	}
	return func() error {
		if stopCPU != nil {
			stopCPU()
		}
		if p.Mem != "" {
			if err := obs.WriteHeapProfile(p.Mem); err != nil {
				return fmt.Errorf("-memprofile: %w", err)
			}
		}
		return nil
	}, nil
}
