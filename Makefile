# Local targets mirror .github/workflows/ci.yml: `make ci` runs the same
# build, vet, gofmt, staticcheck, race-test, benchmark-smoke, round-workers
# and resume/shard/orchestrator smoke steps the workflow does, so a green
# `make ci` means a green PR (plus `make bench-gate` for the perf
# trajectory, which CI's bench-trajectory job enforces). (staticcheck is skipped with a warning when
# the binary is not installed; CI installs it pinned. The CI-only
# matrix-plan/matrix-shard/matrix-shard-merge jobs prove the -emit-matrix
# github plan is executable as a real Actions matrix; their local
# equivalent is `lbbench ... -spawn m -emit-matrix shell | sh`.)

GO ?= go

.PHONY: build test vet fmt fmt-check staticcheck bench perfbench bench-gate large-n-smoke round-smoke grid-smoke resume-smoke shard-merge-smoke orchestrator-smoke steal-smoke ssh-smoke scenario-smoke serve-smoke obs-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed — skipping (CI runs it via honnef.co/go/tools@2023.1.7)" >&2; \
	fi

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./... | tee /tmp/lbbench-bench-smoke.txt

# Measure the full pinned trajectory grid (the same one CI gates on) into
# /tmp. This is the slow, honest measurement — run it on a quiet machine.
perfbench:
	$(GO) run ./cmd/perfbench -label local -out /tmp/bench-current.json

# Measure and gate against the committed baseline, exactly like CI's
# bench-trajectory job: >25% calibration-normalized regression (or shrunk
# coverage) fails.
bench-gate: perfbench
	$(GO) run ./cmd/perfbench -diff -max-regress 0.25 BENCH_PR7.json /tmp/bench-current.json

# Million-node gate: a 2^20-node hypercube diffusion cell (the CSR hot loop
# at scale) plus an implicit Lanczos λ₂ solve on the 2^20-node de Bruijn
# graph, under a wall-clock budget, failing if the dense eigensolver ran at
# all. Mirrors CI's large-n-smoke job.
large-n-smoke:
	$(GO) run ./cmd/perfbench -large-n-smoke

# Round-level parallelism smoke: the stepper/scenario packages under -race
# with 8 round workers, plus rw1-vs-rw8-vs-auto byte-identity of a real
# grid sweep (mirroring grid-smoke's unit-level w1-vs-w8 check).
round-smoke:
	LB_TEST_ROUND_WORKERS=8 $(GO) test -race -count=1 \
		./internal/core/ ./internal/diffusion/ ./internal/dimexchange/ \
		./internal/randpair/ ./internal/scenario/ ./internal/batch/
	$(GO) run ./cmd/lbbench -grid -n 64 -seeds 1,2 -parallel 2 -round-workers 1 -format csv > /tmp/lbbench-rw1.csv
	$(GO) run ./cmd/lbbench -grid -n 64 -seeds 1,2 -parallel 2 -round-workers 8 -format csv > /tmp/lbbench-rw8.csv
	$(GO) run ./cmd/lbbench -grid -n 64 -seeds 1,2 -parallel 2 -round-workers auto -format csv > /tmp/lbbench-rwauto.csv
	cmp /tmp/lbbench-rw1.csv /tmp/lbbench-rw8.csv
	cmp /tmp/lbbench-rw1.csv /tmp/lbbench-rwauto.csv

grid-smoke:
	$(GO) run ./cmd/lbbench -grid -n 32 -seeds 1,2 -parallel 1 -format csv > /tmp/lbbench-w1.csv
	$(GO) run ./cmd/lbbench -grid -n 32 -seeds 1,2 -parallel 8 -format csv > /tmp/lbbench-w8.csv
	cmp /tmp/lbbench-w1.csv /tmp/lbbench-w8.csv

RESUME_ARGS = -grid -topos cycle,torus,hypercube,star,complete,path \
	-algos diffusion,dimexchange,randpair -modes continuous,discrete \
	-loads spike,uniform -n 192 -seeds 1,2,3 -eps 1e-5 -parallel 4 -format csv

resume-smoke:
	$(GO) build -o /tmp/lbbench ./cmd/lbbench
	rm -f /tmp/lbbench-cells.jsonl
	/tmp/lbbench $(RESUME_ARGS) > /tmp/lbbench-full.csv
	/tmp/lbbench $(RESUME_ARGS) -out /tmp/lbbench-cells.jsonl > /dev/null & \
	pid=$$!; \
	for i in $$(seq 1 600); do \
		{ [ -f /tmp/lbbench-cells.jsonl ] && [ "$$(wc -l < /tmp/lbbench-cells.jsonl)" -ge 80 ]; } && break; \
		kill -0 $$pid 2>/dev/null || break; \
		sleep 0.1; \
	done; \
	kill -INT $$pid 2>/dev/null; wait $$pid || true
	/tmp/lbbench $(RESUME_ARGS) -resume /tmp/lbbench-cells.jsonl -out /tmp/lbbench-cells.jsonl > /tmp/lbbench-resumed.csv
	cmp /tmp/lbbench-full.csv /tmp/lbbench-resumed.csv

SHARD_ARGS = -grid -topos cycle,torus,hypercube,star,complete,path \
	-algos diffusion,dimexchange,randpair -modes continuous,discrete \
	-loads spike,uniform -n 160 -seeds 1,2,3 -eps 1e-5 -parallel 4 -format csv

# One orchestrator command replaces the PR 3 hand-launched shard
# choreography: -spawn 3 plans, spawns, supervises and merges; the report
# and the stream-agg render from its journals must match the single-process
# sweep byte for byte.
shard-merge-smoke:
	$(GO) build -o /tmp/lbbench ./cmd/lbbench
	rm -rf /tmp/lbbench-sweep
	/tmp/lbbench $(SHARD_ARGS) > /tmp/lbbench-shard-full.csv
	/tmp/lbbench $(SHARD_ARGS) -stream-agg > /tmp/lbbench-shard-fullagg.csv
	/tmp/lbbench $(SHARD_ARGS) -spawn 3 -out /tmp/lbbench-sweep > /tmp/lbbench-merged.csv
	cmp /tmp/lbbench-shard-full.csv /tmp/lbbench-merged.csv
	/tmp/lbbench $(SHARD_ARGS) -merge /tmp/lbbench-sweep/shard-0.jsonl,/tmp/lbbench-sweep/shard-1.jsonl,/tmp/lbbench-sweep/shard-2.jsonl -stream-agg > /tmp/lbbench-mergedagg.csv
	cmp /tmp/lbbench-shard-fullagg.csv /tmp/lbbench-mergedagg.csv

# Supervision under fire, mirroring CI's orchestrator-smoke: SIGKILL one
# shard subprocess mid-run; the supervisor must restart it with -resume and
# the auto-merged report must still match the single-process sweep.
orchestrator-smoke:
	$(GO) build -o /tmp/lbbench ./cmd/lbbench
	rm -rf /tmp/lbbench-osweep
	/tmp/lbbench $(SHARD_ARGS) > /tmp/lbbench-ofull.csv
	/tmp/lbbench $(SHARD_ARGS) -spawn 3 -out /tmp/lbbench-osweep > /tmp/lbbench-ospawned.csv 2> /tmp/lbbench-orch.log & \
	opid=$$!; \
	for i in $$(seq 1 600); do \
		{ [ -f /tmp/lbbench-osweep/shard-2.jsonl ] && [ "$$(wc -l < /tmp/lbbench-osweep/shard-2.jsonl)" -ge 10 ]; } && break; \
		kill -0 $$opid 2>/dev/null || break; \
		sleep 0.1; \
	done; \
	cpid=$$(pgrep -f -- '-shard [2]/3' | head -1); \
	if [ -n "$$cpid" ]; then echo "SIGKILLing shard 2/3 (pid $$cpid)"; kill -9 $$cpid; fi; \
	wait $$opid
	cmp /tmp/lbbench-ofull.csv /tmp/lbbench-ospawned.csv
	grep -q "restarting with -resume" /tmp/lbbench-orch.log || \
		echo "note: shard 2 finished before the kill — no restart needed"

# Work stealing under fire, mirroring CI's steal-smoke: SIGSTOP one shard
# subprocess mid-run — a wedged process the launcher cannot see die. The
# supervisor must declare it stalled, SIGKILL it, carve its unstarted
# units into stolen sub-shards on idle slots, and still merge
# byte-identical to the single-process sweep. The grid forces fixed round
# counts (eps below reach) so units are uniform and healthy shards stay
# far inside the steal threshold.
STEAL_ARGS = -grid -topos torus,hypercube -algos diffusion,randpair \
	-modes continuous -loads spike,uniform \
	-n 4096 -seeds 1,2,3,4,5,6 -eps 1e-12 -rounds 4096 \
	-parallel 1 -format csv

steal-smoke:
	$(GO) build -o /tmp/lbbench ./cmd/lbbench
	rm -rf /tmp/lbbench-stealsweep
	LB_SPECCACHE_DIR=/tmp/lbbench-speccache /tmp/lbbench $(STEAL_ARGS) > /tmp/lbbench-steal-full.csv
	LB_SPECCACHE_DIR=/tmp/lbbench-speccache /tmp/lbbench $(STEAL_ARGS) -spawn 3 -out /tmp/lbbench-stealsweep \
		-steal-after 5s -progress 250ms > /tmp/lbbench-steal-merged.csv 2> /tmp/lbbench-steal.log & \
	opid=$$!; \
	for i in $$(seq 1 600); do \
		{ [ -f /tmp/lbbench-stealsweep/shard-1.jsonl ] && [ "$$(wc -l < /tmp/lbbench-stealsweep/shard-1.jsonl)" -ge 3 ]; } && break; \
		kill -0 $$opid 2>/dev/null || break; \
		sleep 0.05; \
	done; \
	cpid=$$(pgrep -f -- '-shard [1]/3' | head -1); \
	if [ -n "$$cpid" ]; then echo "SIGSTOPping shard 1/3 (pid $$cpid)"; kill -STOP $$cpid; fi; \
	wait $$opid; \
	cmp /tmp/lbbench-steal-full.csv /tmp/lbbench-steal-merged.csv; \
	if [ -n "$$cpid" ]; then \
		grep -q "stolen sub-shard" /tmp/lbbench-steal.log && \
		head -1 /tmp/lbbench-stealsweep/shard-1-steal-1.jsonl | grep -q '"origin":"steal:s1"'; \
	else echo "note: shard 1 finished before the stop — stealing degrades to a plain run"; fi

# The ssh launcher against real ssh, mirroring CI's ssh-smoke. Requires
# passwordless `ssh localhost` (CI provisions a key for the runner);
# -remote-dir keeps the remote journal off the fetch path, which matters
# when "remote" shares the local filesystem.
ssh-smoke:
	$(GO) build -o /tmp/lbbench ./cmd/lbbench
	$(GO) build -o /tmp/lborch ./cmd/lborch
	@if ! ssh -o BatchMode=yes -o ConnectTimeout=5 localhost true 2>/dev/null; then \
		echo "ssh-smoke needs passwordless 'ssh localhost' — skipping" >&2; exit 0; \
	fi; \
	set -e; \
	rm -rf /tmp/lbbench-sshsweep /tmp/lbbench-sshremote; \
	/tmp/lbbench -grid $(SSH_ARGS) -parallel 1 > /tmp/lbbench-ssh-full.csv; \
	/tmp/lborch -m 2 $(SSH_ARGS) -out /tmp/lbbench-sshsweep \
		-launcher ssh -hosts localhost,localhost \
		-remote-cmd /tmp/lbbench -remote-dir /tmp/lbbench-sshremote \
		-progress 250ms > /tmp/lbbench-ssh-merged.csv 2> /tmp/lbbench-ssh.log; \
	cmp /tmp/lbbench-ssh-full.csv /tmp/lbbench-ssh-merged.csv

SSH_ARGS = -topos torus,hypercube -algos diffusion,randpair \
	-modes continuous -loads spike,uniform \
	-n 1024 -seeds 1,2,3 -eps 1e-12 -rounds 512 -format csv

# The scenario dimension rides the whole pipeline with zero special cases:
# a grid with static + adversarial + stochastic-arrival scenarios must be
# byte-identical across worker counts, and an orchestrator-spawned 3-shard
# run (one shard SIGKILLed mid-sweep and auto-resumed) must merge
# byte-identical to the single-process sweep.
SCENARIO_ARGS = -grid -topos torus,hypercube -algos diffusion,randpair \
	-modes continuous,discrete -loads spike,uniform \
	-scenarios static,adversarial-respike,poisson-arrivals \
	-n 64 -seeds 1,2 -eps 1e-4 -rounds 96 -format csv

scenario-smoke:
	$(GO) build -o /tmp/lbbench ./cmd/lbbench
	rm -rf /tmp/lbbench-ssweep
	/tmp/lbbench $(SCENARIO_ARGS) -parallel 1 > /tmp/lbbench-scen-w1.csv
	/tmp/lbbench $(SCENARIO_ARGS) -parallel 8 > /tmp/lbbench-scen-w8.csv
	cmp /tmp/lbbench-scen-w1.csv /tmp/lbbench-scen-w8.csv
	/tmp/lbbench $(SCENARIO_ARGS) -parallel 4 -spawn 3 -out /tmp/lbbench-ssweep > /tmp/lbbench-scen-merged.csv 2> /tmp/lbbench-scen-orch.log & \
	opid=$$!; \
	for i in $$(seq 1 600); do \
		{ [ -f /tmp/lbbench-ssweep/shard-1.jsonl ] && [ "$$(wc -l < /tmp/lbbench-ssweep/shard-1.jsonl)" -ge 5 ]; } && break; \
		kill -0 $$opid 2>/dev/null || break; \
		sleep 0.1; \
	done; \
	cpid=$$(pgrep -f -- '-shard [1]/3' | head -1); \
	if [ -n "$$cpid" ]; then echo "SIGKILLing shard 1/3 (pid $$cpid)"; kill -9 $$cpid; fi; \
	wait $$opid
	cmp /tmp/lbbench-scen-w1.csv /tmp/lbbench-scen-merged.csv
	/tmp/lbbench $(SCENARIO_ARGS) -parallel 4 -stream-agg > /tmp/lbbench-scen-fullagg.csv
	/tmp/lbbench $(SCENARIO_ARGS) -parallel 4 -merge /tmp/lbbench-ssweep/shard-0.jsonl,/tmp/lbbench-ssweep/shard-1.jsonl,/tmp/lbbench-ssweep/shard-2.jsonl -stream-agg > /tmp/lbbench-scen-mergedagg.csv
	cmp /tmp/lbbench-scen-fullagg.csv /tmp/lbbench-scen-mergedagg.csv

# Service mode end to end, mirroring CI's serve-smoke: lbserved replays the
# committed mini-trace at 100×, records what it injects, drains to exit 0 on
# SIGTERM; the recording must byte-match the source trace and re-run as a
# trace:<file> grid scenario byte-identically across worker counts.
serve-smoke:
	$(GO) build -o /tmp/lbserved ./cmd/lbserved
	$(GO) build -o /tmp/lbbench ./cmd/lbbench
	rm -f /tmp/lbserved-recorded.jsonl
	/tmp/lbserved -addr 127.0.0.1:18080 -replay testdata/mini-trace.jsonl \
		-speedup 100x -record /tmp/lbserved-recorded.jsonl 2> /tmp/lbserved.log & \
	pid=$$!; \
	for i in $$(seq 1 100); do \
		curl -fs http://127.0.0.1:18080/healthz >/dev/null 2>&1 && break; \
		sleep 0.1; \
	done; \
	for i in $$(seq 1 600); do \
		pending=$$(curl -fs http://127.0.0.1:18080/metrics | sed 's/.*"replay_pending"://;s/,.*//'); \
		[ "$$pending" = "0" ] && break; \
		sleep 0.1; \
	done; \
	kill -TERM $$pid; wait $$pid
	cmp testdata/mini-trace.jsonl /tmp/lbserved-recorded.jsonl
	/tmp/lbbench -grid -topos torus -algos diffusion,randpair \
		-modes continuous,discrete -loads spike \
		-scenarios static,trace:/tmp/lbserved-recorded.jsonl \
		-n 64 -seeds 1,2 -rounds 96 -format csv -parallel 1 > /tmp/lbserved-w1.csv
	/tmp/lbbench -grid -topos torus -algos diffusion,randpair \
		-modes continuous,discrete -loads spike \
		-scenarios static,trace:/tmp/lbserved-recorded.jsonl \
		-n 64 -seeds 1,2 -rounds 96 -format csv -parallel 8 > /tmp/lbserved-w8.csv
	cmp /tmp/lbserved-w1.csv /tmp/lbserved-w8.csv

# Telemetry end to end, mirroring CI's obs-smoke: lbserved's Prometheus
# exposition and pprof endpoints answer; a traced lbbench sweep produces a
# loadable Chrome trace file while its report stays byte-identical to the
# untraced run.
obs-smoke:
	$(GO) build -o /tmp/lbserved ./cmd/lbserved
	$(GO) build -o /tmp/lbbench ./cmd/lbbench
	/tmp/lbserved -addr 127.0.0.1:18081 -telemetry 127.0.0.1:16060 \
		-replay testdata/mini-trace.jsonl -speedup 100x \
		2> /tmp/obs-lbserved.log & \
	pid=$$!; \
	for i in $$(seq 1 100); do \
		curl -fs http://127.0.0.1:18081/healthz >/dev/null 2>&1 && break; \
		sleep 0.1; \
	done; \
	for i in $$(seq 1 600); do \
		pending=$$(curl -fs http://127.0.0.1:18081/metrics | sed 's/.*"replay_pending"://;s/,.*//'); \
		[ "$$pending" = "0" ] && break; \
		sleep 0.1; \
	done; \
	curl -fs http://127.0.0.1:18081/metrics/prom > /tmp/obs-prom.txt; \
	curl -fs http://127.0.0.1:16060/metrics/prom > /tmp/obs-prom-debug.txt; \
	curl -fs http://127.0.0.1:16060/debug/pprof/goroutine?debug=1 > /dev/null; \
	kill -TERM $$pid; wait $$pid
	grep -q '^# TYPE lbserved_rounds_total counter' /tmp/obs-prom.txt
	grep -q '^lbserved_arrivals_total 24' /tmp/obs-prom.txt
	grep -q '^# TYPE lbserved_backlog_depth histogram' /tmp/obs-prom.txt
	grep -q '^lbserved_rounds_total ' /tmp/obs-prom-debug.txt
	/tmp/lbbench -grid -topos torus,cycle -algos diffusion,randpair \
		-n 256 -seeds 1,2 -format csv -parallel 1 > /tmp/obs-plain.csv
	/tmp/lbbench -grid -topos torus,cycle -algos diffusion,randpair \
		-n 256 -seeds 1,2 -format csv -parallel 1 \
		-trace-out /tmp/obs-trace.json > /tmp/obs-traced.csv 2> /tmp/obs-trace.log
	cmp /tmp/obs-plain.csv /tmp/obs-traced.csv
	jq -e '.traceEvents | length > 0' /tmp/obs-trace.json > /dev/null
	jq -e '[.traceEvents[] | select(.cat == "unit")] | length == 16' /tmp/obs-trace.json > /dev/null
	jq -e '[.traceEvents[] | select(.cat == "sweep")] | length == 1' /tmp/obs-trace.json > /dev/null
	jq -e '.traceEvents | map(select(.ph == "X")) | all(.ts >= 0 and .dur >= 1)' /tmp/obs-trace.json > /dev/null
	jq -e '([.traceEvents[] | select(.cat == "unit") | .dur] | add) >= 0.9 * ([.traceEvents[] | select(.cat == "sweep") | .dur] | add)' /tmp/obs-trace.json > /dev/null

# bench-gate is not part of `make ci`: the trajectory measurement needs a
# quiet machine to be meaningful (CI's bench-trajectory job runs it on the
# dedicated runner). Run `make bench-gate` before committing perf-sensitive
# changes.
ci: build vet fmt-check staticcheck test bench round-smoke grid-smoke resume-smoke shard-merge-smoke orchestrator-smoke steal-smoke ssh-smoke scenario-smoke serve-smoke obs-smoke
