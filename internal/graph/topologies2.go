package graph

import (
	"fmt"
	"math"
	"math/rand"
)

// Torus3D returns the a×b×c 3-D torus (each dimension ≥ 3), the standard
// interconnect of large HPC machines. It is 6-regular.
func Torus3D(a, b, c int) *G {
	if a < 3 || b < 3 || c < 3 {
		panic("graph: 3-D torus needs all dimensions >= 3")
	}
	bld := NewBuilder(fmt.Sprintf("torus3d(%dx%dx%d)", a, b, c), a*b*c)
	id := func(x, y, z int) int { return (x*b+y)*c + z }
	for x := 0; x < a; x++ {
		for y := 0; y < b; y++ {
			for z := 0; z < c; z++ {
				bld.AddEdge(id(x, y, z), id((x+1)%a, y, z))
				bld.AddEdge(id(x, y, z), id(x, (y+1)%b, z))
				bld.AddEdge(id(x, y, z), id(x, y, (z+1)%c))
			}
		}
	}
	return bld.MustFinish()
}

// Torus3DLambda2 returns λ₂ of the a×b×c 3-D torus: the spectrum is the
// sumset of three cycle spectra, so the smallest nonzero value comes from
// the longest dimension.
func Torus3DLambda2(a, b, c int) float64 {
	m := a
	if b > m {
		m = b
	}
	if c > m {
		m = c
	}
	return CycleLambda2(m)
}

// CubeConnectedCycles returns the cube-connected-cycles network CCC(d):
// each hypercube node is replaced by a cycle of d nodes, node (w, i)
// connecting to (w, i±1) on its cycle and to (w ⊕ 2ⁱ, i) across dimension
// i. 3-regular for d ≥ 3, on d·2^d nodes — the classic bounded-degree
// surrogate for the hypercube.
func CubeConnectedCycles(d int) *G {
	if d < 3 || d > 20 {
		panic("graph: CCC dimension out of range (needs 3..20)")
	}
	n := d * (1 << uint(d))
	b := NewBuilder(fmt.Sprintf("ccc(%d)", d), n)
	id := func(w, i int) int { return w*d + i }
	for w := 0; w < 1<<uint(d); w++ {
		for i := 0; i < d; i++ {
			b.AddEdge(id(w, i), id(w, (i+1)%d)) // cycle edge
			if peer := w ^ (1 << uint(i)); w < peer {
				b.AddEdge(id(w, i), id(peer, i)) // hypercube edge
			}
		}
	}
	return b.MustFinish()
}

// Butterfly returns the d-dimensional wrapped butterfly on d·2^d nodes:
// node (w, i) connects to (w, i+1 mod d) and (w ⊕ 2^((i+1) mod d)·…, i+1).
// Following the standard definition, level i node w has straight and cross
// edges to level (i+1) mod d. 4-regular.
func Butterfly(d int) *G {
	if d < 3 || d > 20 {
		panic("graph: butterfly dimension out of range (needs 3..20)")
	}
	n := d * (1 << uint(d))
	b := NewBuilder(fmt.Sprintf("butterfly(%d)", d), n)
	id := func(w, i int) int { return w*d + i }
	for w := 0; w < 1<<uint(d); w++ {
		for i := 0; i < d; i++ {
			next := (i + 1) % d
			b.AddEdge(id(w, i), id(w, next))                 // straight
			b.AddEdge(id(w, i), id(w^(1<<uint(next)), next)) // cross
		}
	}
	return b.MustFinish()
}

// SmallWorld returns a Watts–Strogatz-style small world: a cycle with k
// extra chords per node candidate, each nearest-neighbour chord rewired to
// a uniformly random endpoint with probability p. Simplicity is enforced
// (rewires that would duplicate an edge or self-loop are skipped).
func SmallWorld(n, k int, p float64, rng *rand.Rand) *G {
	if n < 5 || k < 1 || k >= n/2 {
		panic("graph: small world needs n ≥ 5, 1 ≤ k < n/2")
	}
	type edge struct{ u, v int }
	var edges []edge
	for i := 0; i < n; i++ {
		for j := 1; j <= k; j++ {
			edges = append(edges, edge{i, (i + j) % n})
		}
	}
	have := make(map[Edge]bool, len(edges))
	for _, e := range edges {
		have[Edge{U: e.u, V: e.v}.Canonical()] = true
	}
	for idx := range edges {
		if rng.Float64() >= p {
			continue
		}
		e := edges[idx]
		for attempt := 0; attempt < 20; attempt++ {
			t := rng.Intn(n)
			if t == e.u {
				continue
			}
			ne := Edge{U: e.u, V: t}.Canonical()
			if have[ne] {
				continue
			}
			delete(have, Edge{U: e.u, V: e.v}.Canonical())
			have[ne] = true
			break
		}
	}
	b := NewBuilder(fmt.Sprintf("smallworld(%d,%d,%.2f)", n, k, p), n)
	for e := range have {
		b.AddEdge(e.U, e.V)
	}
	return b.MustFinish()
}

// RandomGeometric returns a random geometric graph: n nodes placed
// uniformly in the unit square, edges between pairs within distance r.
// The standard model for wireless/sensor topologies.
func RandomGeometric(n int, r float64, rng *rand.Rand) *G {
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i], ys[i] = rng.Float64(), rng.Float64()
	}
	b := NewBuilder(fmt.Sprintf("rgg(%d,%.3f)", n, r), n)
	r2 := r * r
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx, dy := xs[i]-xs[j], ys[i]-ys[j]
			if dx*dx+dy*dy <= r2 {
				b.AddEdge(i, j)
			}
		}
	}
	return b.MustFinish()
}

// ConnectivityRadius returns the standard threshold radius
// sqrt(ln n/(π·n)) at which a random geometric graph becomes connected
// w.h.p.; callers typically use a small constant multiple of it.
func ConnectivityRadius(n int) float64 {
	if n < 2 {
		return 1
	}
	return math.Sqrt(math.Log(float64(n)) / (math.Pi * float64(n)))
}
