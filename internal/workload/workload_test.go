package workload

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestContinuousSpike(t *testing.T) {
	v := Continuous(Spike, 5, 100, nil)
	if v[0] != 100 {
		t.Fatalf("spike head %v", v[0])
	}
	for i := 1; i < 5; i++ {
		if v[i] != 0 {
			t.Fatalf("spike tail %d = %v", i, v[i])
		}
	}
}

func TestContinuousFlatBalanced(t *testing.T) {
	v := Continuous(Flat, 4, 7, nil)
	for _, x := range v {
		if x != 7 {
			t.Fatalf("flat: %v", v)
		}
	}
}

func TestContinuousRamp(t *testing.T) {
	v := Continuous(LinearRamp, 4, 8, nil)
	for i := 1; i < len(v); i++ {
		if v[i] <= v[i-1] {
			t.Fatalf("ramp not increasing: %v", v)
		}
	}
}

func TestContinuousRandomKindsNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, k := range []Kind{Uniform, Exponential, PowerLaw, Bimodal} {
		v := Continuous(k, 50, 10, rng)
		if len(v) != 50 {
			t.Fatalf("%v: length %d", k, len(v))
		}
		for i, x := range v {
			if x < 0 {
				t.Fatalf("%v: negative load at %d: %v", k, i, x)
			}
		}
	}
}

func TestContinuousDeterministicGivenSeed(t *testing.T) {
	a := Continuous(Uniform, 20, 5, rand.New(rand.NewSource(9)))
	b := Continuous(Uniform, 20, 5, rand.New(rand.NewSource(9)))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce")
		}
	}
}

func TestDiscreteSpikeExactTotal(t *testing.T) {
	v := Discrete(Spike, 8, 1000, nil)
	if v[0] != 1000 {
		t.Fatalf("spike head %d", v[0])
	}
	if total(v) != 1000 {
		t.Fatal("total wrong")
	}
}

// Every discrete kind must hit the requested total exactly and stay
// nonnegative — the token-conservation contract of the whole repo.
func TestDiscreteExactTotalsProperty(t *testing.T) {
	f := func(seed uint8, kindRaw uint8) bool {
		kinds := AllKinds()
		kind := kinds[int(kindRaw)%len(kinds)]
		r := rand.New(rand.NewSource(int64(seed)))
		n := 1 + r.Intn(60)
		want := int64(r.Intn(100000))
		v := Discrete(kind, n, want, r)
		if len(v) != n {
			return false
		}
		for _, x := range v {
			if x < 0 {
				return false
			}
		}
		return total(v) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestDiscreteZeroNodes(t *testing.T) {
	if v := Discrete(Spike, 0, 100, nil); v != nil {
		t.Fatal("0 nodes must yield nil")
	}
}

func TestKindStrings(t *testing.T) {
	for _, k := range AllKinds() {
		if k.String() == "" {
			t.Fatalf("kind %d has empty name", int(k))
		}
	}
	if Kind(99).String() != "Kind(99)" {
		t.Fatal("unknown kind formatting")
	}
}

func TestUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Continuous(Kind(99), 3, 1, nil)
}

func TestRebalanceTotalNeverNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	v := []int64{3, 0, 1}
	rebalanceTotal(v, -10, rng) // asks to remove more than exists
	for _, x := range v {
		if x < 0 {
			t.Fatalf("negative after rebalance: %v", v)
		}
	}
	if total(v) != 0 {
		t.Fatalf("should drain to zero, got %v", v)
	}
}

func total(v []int64) int64 {
	var s int64
	for _, x := range v {
		s += x
	}
	return s
}

// TestDescriptionsCoverEveryKind: the -list surface must describe every
// registered kind, under exactly its parseable name — a new Kind constant
// without a Descriptions row (or with a typo'd name) fails here, not by
// silently vanishing from lbbench -list.
func TestDescriptionsCoverEveryKind(t *testing.T) {
	desc := map[string]bool{}
	for _, d := range Descriptions() {
		if _, err := ParseKind(d[0]); err != nil {
			t.Errorf("description names %q, which does not parse: %v", d[0], err)
		}
		desc[d[0]] = true
	}
	for _, k := range AllKinds() {
		if !desc[k.String()] {
			t.Errorf("no description for workload %q", k)
		}
	}
	if len(Descriptions()) != len(AllKinds()) {
		t.Errorf("%d descriptions for %d kinds", len(Descriptions()), len(AllKinds()))
	}
}
