package batch_test

import (
	"bytes"
	"context"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/batch"
	"repro/internal/graph"
)

// renderAll renders the deterministic emitters of a report into one buffer.
func renderAll(t *testing.T, rep *batch.Report) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := rep.RenderCSV(&b); err != nil {
		t.Fatal(err)
	}
	if err := rep.RenderJSON(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// interruptedJournal produces a valid-but-partial journal: a serial sweep
// cancelled after cutAt units, streamed through a JSONL sink exactly the way
// lbbench -out does it.
func interruptedJournal(t *testing.T, spec batch.Spec, cutAt int) []byte {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	spec.Workers = 1
	var buf bytes.Buffer
	_, err := batch.RunSink(ctx, spec, func(u batch.Unit, g *graph.G, loads []float64, algoSeed int64) (batch.Outcome, error) {
		if u.Index == cutAt {
			cancel()
		}
		return fakeRun(u, g, loads, algoSeed)
	}, batch.NewJSONLSink(&buf))
	if err != context.Canceled {
		t.Fatalf("interrupted run returned %v, want context.Canceled", err)
	}
	return buf.Bytes()
}

// TestResumeByteIdenticalToFreshRun is the core resume guarantee: interrupt
// a sweep halfway, resume from its journal, and both the merged report and
// the rewritten journal must be byte-identical to an uninterrupted run —
// for any worker count.
func TestResumeByteIdenticalToFreshRun(t *testing.T) {
	spec := okSpec()
	fullRep, err := batch.Run(spec, fakeRun)
	if err != nil {
		t.Fatal(err)
	}
	fullOut := renderAll(t, fullRep)
	var fullJournal bytes.Buffer
	if _, err := batch.RunSink(context.Background(), spec, fakeRun, batch.NewJSONLSink(&fullJournal)); err != nil {
		t.Fatal(err)
	}

	cut := len(fullRep.Cells) / 2
	partial := interruptedJournal(t, spec, cut)
	journal, err := batch.ReadJournal(bytes.NewReader(partial))
	if err != nil || journal.Dropped != 0 {
		t.Fatalf("partial journal unreadable: dropped=%d err=%v", journal.Dropped, err)
	}
	if len(journal.Specs) != 1 {
		t.Fatal("interrupted journal lost its spec header")
	}
	clean := 0
	for _, c := range journal.Cells {
		if c.Err == "" {
			clean++
		}
	}
	if clean == 0 || clean >= len(fullRep.Cells) {
		t.Fatalf("interrupt produced %d clean cells of %d — not a partial journal", clean, len(fullRep.Cells))
	}

	for _, workers := range []int{1, 8} {
		respec := spec
		respec.Workers = workers
		var rewritten bytes.Buffer
		resumed, err := batch.Resume(context.Background(), respec, fakeRun, journal, batch.NewJSONLSink(&rewritten))
		if err != nil {
			t.Fatal(err)
		}
		if got := renderAll(t, resumed); !bytes.Equal(got, fullOut) {
			t.Fatalf("workers=%d: resumed report differs from uninterrupted run", workers)
		}
		if !bytes.Equal(rewritten.Bytes(), fullJournal.Bytes()) {
			t.Fatalf("workers=%d: rewritten journal differs from uninterrupted journal", workers)
		}
	}
}

// TestResumeOnlyRunsMissingUnits replays a complete journal and checks the
// run function is never invoked; then drops cells and checks exactly those
// re-run.
func TestResumeOnlyRunsMissingUnits(t *testing.T) {
	spec := okSpec()
	var full bytes.Buffer
	if _, err := batch.RunSink(context.Background(), spec, fakeRun, batch.NewJSONLSink(&full)); err != nil {
		t.Fatal(err)
	}
	journal, err := batch.ReadJournal(bytes.NewReader(full.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	var calls atomic.Int64
	counting := func(u batch.Unit, g *graph.G, loads []float64, algoSeed int64) (batch.Outcome, error) {
		calls.Add(1)
		return fakeRun(u, g, loads, algoSeed)
	}
	if _, err := batch.Resume(context.Background(), spec, counting, journal, nil); err != nil {
		t.Fatal(err)
	}
	if n := calls.Load(); n != 0 {
		t.Fatalf("complete journal still re-ran %d units", n)
	}

	// Drop three cells and fail one: exactly those four must re-run.
	pruned := &batch.Journal{
		Specs: journal.Specs,
		Cells: append([]batch.Cell(nil), journal.Cells[3:]...),
	}
	pruned.Cells[0].Err = "synthetic failure from a previous run"
	want := int64(3 + 1)
	calls.Store(0)
	rep, err := batch.Resume(context.Background(), spec, counting, pruned, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n := calls.Load(); n != want {
		t.Fatalf("re-ran %d units, want %d", n, want)
	}
	if rep.Failed() != 0 {
		t.Fatalf("resumed report still has %d failures", rep.Failed())
	}
}

// TestReadJournalToleratesTruncatedTail cuts the journal mid-line (the
// torn-write crash shape) and checks the intact prefix is recovered, the
// torn line is dropped, and a resume over it reproduces the full report.
func TestReadJournalToleratesTruncatedTail(t *testing.T) {
	spec := okSpec()
	var full bytes.Buffer
	fullRep, err := batch.RunSink(context.Background(), spec, fakeRun, batch.NewJSONLSink(&full))
	if err != nil {
		t.Fatal(err)
	}
	raw := full.Bytes()
	lines := bytes.Count(raw, []byte("\n")) // header + one line per cell

	// Cut inside the final line: drop its trailing newline plus a few bytes.
	truncated := raw[:len(raw)-8]
	j, err := batch.ReadJournal(bytes.NewReader(truncated))
	if err != nil {
		t.Fatal(err)
	}
	if j.Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", j.Dropped)
	}
	if len(j.Cells) != lines-2 {
		t.Fatalf("recovered %d cells, want %d (all complete lines minus the header)", len(j.Cells), lines-2)
	}
	if len(j.Specs) != 1 {
		t.Fatal("header lost")
	}

	resumed, err := batch.Resume(context.Background(), spec, fakeRun, j, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(renderAll(t, resumed), renderAll(t, fullRep)) {
		t.Fatal("resume over a truncated journal does not reproduce the full report")
	}
}

// TestReadJournalStopsAtCorruption flips bytes in the middle of the journal
// and checks parsing keeps the prefix and reports everything after the
// corruption as dropped (no resynchronization guessing).
func TestReadJournalStopsAtCorruption(t *testing.T) {
	spec := okSpec()
	var full bytes.Buffer
	if _, err := batch.RunSink(context.Background(), spec, fakeRun, batch.NewJSONLSink(&full)); err != nil {
		t.Fatal(err)
	}
	text := full.String()
	lineStarts := []int{0}
	for i, ch := range text {
		if ch == '\n' && i+1 < len(text) {
			lineStarts = append(lineStarts, i+1)
		}
	}
	corruptAt := lineStarts[len(lineStarts)/2]
	mangled := []byte(text)
	copy(mangled[corruptAt:], []byte(`{"broken`))

	j, err := batch.ReadJournal(bytes.NewReader(mangled))
	if err != nil {
		t.Fatal(err)
	}
	// Line 0 is the header; lines 1..k-1 are intact cells, k.. are dropped.
	k := len(lineStarts) / 2
	if len(j.Cells) != k-1 {
		t.Fatalf("kept %d cells, want the %d before the corruption", len(j.Cells), k-1)
	}
	if j.Dropped != len(lineStarts)-k {
		t.Fatalf("dropped = %d, want %d", j.Dropped, len(lineStarts)-k)
	}
}

// TestResumeIgnoresStaleKeys feeds a journal from a different grid and
// checks its unknown keys are skipped while the matching ones replay.
func TestResumeIgnoresStaleKeys(t *testing.T) {
	big := okSpec()
	var full bytes.Buffer
	if _, err := batch.RunSink(context.Background(), big, fakeRun, batch.NewJSONLSink(&full)); err != nil {
		t.Fatal(err)
	}
	journal, err := batch.ReadJournal(bytes.NewReader(full.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	small := big
	small.Topologies = []string{"cycle"} // subset: most journal keys are stale
	var calls atomic.Int64
	rep, err := batch.Resume(context.Background(), small, func(u batch.Unit, g *graph.G, loads []float64, algoSeed int64) (batch.Outcome, error) {
		calls.Add(1)
		return fakeRun(u, g, loads, algoSeed)
	}, journal, nil)
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 0 {
		t.Fatalf("subset grid re-ran %d units despite full journal coverage", calls.Load())
	}
	for _, c := range rep.Cells {
		if !strings.HasPrefix(c.Key(), "cycle/") {
			t.Fatalf("stale journal key leaked into the report: %s", c.Key())
		}
	}
}

// TestResumeRefusesParameterMismatch: a journal recorded under a different
// n (or scale, ε, round cap) replays cleanly by Key, so it must be refused
// outright — merging it would silently corrupt the figure.
func TestResumeRefusesParameterMismatch(t *testing.T) {
	spec := okSpec()
	var full bytes.Buffer
	if _, err := batch.RunSink(context.Background(), spec, fakeRun, batch.NewJSONLSink(&full)); err != nil {
		t.Fatal(err)
	}
	journal, err := batch.ReadJournal(bytes.NewReader(full.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	for name, mutate := range map[string]func(*batch.Spec){
		"different n":     func(s *batch.Spec) { s.N = 32 },
		"different scale": func(s *batch.Spec) { s.Scale = 1e3 },
		"different eps":   func(s *batch.Spec) { s.Epsilon = 1e-6 },
		"different cap":   func(s *batch.Spec) { s.MaxRounds = 10 },
	} {
		mismatched := spec
		mutate(&mismatched)
		if _, err := batch.Resume(context.Background(), mismatched, fakeRun, journal, nil); err == nil {
			t.Fatalf("%s: resume accepted an incompatible journal", name)
		} else if !strings.Contains(err.Error(), "not comparable") {
			t.Fatalf("%s: unexpected error %v", name, err)
		}
	}

	// Headerless journals (hand-written, or truncated before the header)
	// replay on trust.
	headerless := &batch.Journal{Cells: journal.Cells}
	if _, err := batch.Resume(context.Background(), spec, fakeRun, headerless, nil); err != nil {
		t.Fatalf("headerless journal refused: %v", err)
	}
}

// TestConcatenatedShardJournals covers the sharding recipe the docs
// advertise: journals from per-shard sweeps concatenated with cat. Every
// shard's header must be recognized mid-file (not misread as a phantom
// cell), all cells must replay, and one shard recorded under different
// parameters must fail CheckSpec.
func TestConcatenatedShardJournals(t *testing.T) {
	whole := okSpec()
	shardA, shardB := whole, whole
	shardA.Topologies = []string{"cycle"}
	shardB.Topologies = []string{"torus", "hypercube"}

	var buf bytes.Buffer
	if _, err := batch.RunSink(context.Background(), shardA, fakeRun, batch.NewJSONLSink(&buf)); err != nil {
		t.Fatal(err)
	}
	if _, err := batch.RunSink(context.Background(), shardB, fakeRun, batch.NewJSONLSink(&buf)); err != nil {
		t.Fatal(err)
	}

	journal, err := batch.ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil || journal.Dropped != 0 {
		t.Fatalf("concatenated journal unreadable: dropped=%d err=%v", journal.Dropped, err)
	}
	if len(journal.Specs) != 2 {
		t.Fatalf("recovered %d shard headers, want 2", len(journal.Specs))
	}
	for _, c := range journal.Cells {
		if c.Topology == "" {
			t.Fatalf("phantom cell parsed from a header line: %+v", c)
		}
	}

	// The merged resume over the whole grid re-runs nothing and matches a
	// fresh full run.
	var calls atomic.Int64
	merged, err := batch.Resume(context.Background(), whole, func(u batch.Unit, g *graph.G, loads []float64, algoSeed int64) (batch.Outcome, error) {
		calls.Add(1)
		return fakeRun(u, g, loads, algoSeed)
	}, journal, nil)
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 0 {
		t.Fatalf("merged shards still re-ran %d units", calls.Load())
	}
	full, err := batch.Run(whole, fakeRun)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(renderAll(t, merged), renderAll(t, full)) {
		t.Fatal("merged shard resume differs from a fresh full run")
	}

	// One shard recorded under a different n poisons the whole merge.
	badShard := shardB
	badShard.N = 8
	if _, err := batch.RunSink(context.Background(), badShard, fakeRun, batch.NewJSONLSink(&buf)); err != nil {
		t.Fatal(err)
	}
	journal, err = batch.ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := batch.Resume(context.Background(), whole, fakeRun, journal, nil); err == nil || !strings.Contains(err.Error(), "not comparable") {
		t.Fatalf("mismatched shard accepted: %v", err)
	}
}
