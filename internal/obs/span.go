package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Event is one trace event in Chrome trace-event shape: the same record
// streams as a JSONL line during the run and is wrapped into
// {"traceEvents":[...]} by the Chrome exporter, so there is exactly one
// schema to validate. Timestamps and durations are microseconds, per the
// trace-event spec.
type Event struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`            // "X" complete, "i" instant, "M" metadata
	Ts   int64          `json:"ts"`            // µs since tracer start
	Dur  int64          `json:"dur,omitempty"` // µs, complete events only
	Pid  int64          `json:"pid"`
	Tid  int64          `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope ("t" thread)
	Args map[string]any `json:"args,omitempty"`
}

// Tracer streams trace events to a writer as JSON Lines. The nil *Tracer is
// a valid no-op: every method checks the receiver, so call sites thread a
// possibly-nil tracer through without branching. A non-nil Tracer is safe
// for concurrent use; write errors are sticky and reported by Err/Close
// rather than failing the traced run.
type Tracer struct {
	mu    sync.Mutex
	w     *bufio.Writer
	c     io.Closer
	start time.Time
	err   error

	tidMu   sync.Mutex
	tidFree []int64
	tidNext int64
}

// NewTracer wraps w. If w is also an io.Closer, Close closes it.
func NewTracer(w io.Writer) *Tracer {
	t := &Tracer{w: bufio.NewWriter(w), start: time.Now(), tidNext: 1}
	if c, ok := w.(io.Closer); ok {
		t.c = c
	}
	return t
}

// CreateTracer creates path (O_EXCL would be hostile here — traces are
// scratch output, so truncate) and returns a tracer streaming to it.
func CreateTracer(path string) (*Tracer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return NewTracer(f), nil
}

// Enabled reports whether events will actually be recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// Now returns the event clock: microseconds since the tracer started
// (0 on the nil tracer).
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	return time.Since(t.start).Microseconds()
}

// emit serialises and writes one event.
func (t *Tracer) emit(ev *Event) {
	if t == nil {
		return
	}
	b, err := json.Marshal(ev)
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	if err != nil {
		t.err = err
		return
	}
	if _, err := t.w.Write(b); err != nil {
		t.err = err
		return
	}
	if err := t.w.WriteByte('\n'); err != nil {
		t.err = err
	}
}

// Complete records a finished span: start is the value of Now() when the
// span began, tid is the Perfetto row (lease one with AcquireTID for
// concurrent spans). args may be nil.
func (t *Tracer) Complete(name, cat string, tid, start int64, args map[string]any) {
	if t == nil {
		return
	}
	end := t.Now()
	dur := end - start
	if dur < 1 {
		dur = 1 // Perfetto drops zero-length complete events
	}
	t.emit(&Event{Name: name, Cat: cat, Ph: "X", Ts: start, Dur: dur, Pid: 1, Tid: tid, Args: args})
}

// CompleteAt records a span with an explicit start and duration, both in
// µs on the tracer clock — used to tile synthetic child spans (session
// phases) inside a real parent span.
func (t *Tracer) CompleteAt(name, cat string, tid, start, dur int64, args map[string]any) {
	if t == nil {
		return
	}
	if dur < 1 {
		dur = 1
	}
	t.emit(&Event{Name: name, Cat: cat, Ph: "X", Ts: start, Dur: dur, Pid: 1, Tid: tid, Args: args})
}

// Instant records a point-in-time event (steal, stall, restart).
func (t *Tracer) Instant(name, cat string, tid int64, args map[string]any) {
	if t == nil {
		return
	}
	t.emit(&Event{Name: name, Cat: cat, Ph: "i", Ts: t.Now(), Pid: 1, Tid: tid, S: "t", Args: args})
}

// ThreadName labels a tid's row in the trace viewer.
func (t *Tracer) ThreadName(tid int64, name string) {
	if t == nil {
		return
	}
	t.emit(&Event{Name: "thread_name", Ph: "M", Pid: 1, Tid: tid, Args: map[string]any{"name": name}})
}

// AcquireTID leases a thread-row id so concurrent spans render on distinct
// Perfetto rows; pair with ReleaseTID when the span completes. tid 0 is
// reserved for the root/sweep row and never leased.
func (t *Tracer) AcquireTID() int64 {
	if t == nil {
		return 0
	}
	t.tidMu.Lock()
	defer t.tidMu.Unlock()
	if n := len(t.tidFree); n > 0 {
		id := t.tidFree[n-1]
		t.tidFree = t.tidFree[:n-1]
		return id
	}
	id := t.tidNext
	t.tidNext++
	return id
}

// ReleaseTID returns a leased tid to the pool.
func (t *Tracer) ReleaseTID(id int64) {
	if t == nil || id == 0 {
		return
	}
	t.tidMu.Lock()
	t.tidFree = append(t.tidFree, id)
	t.tidMu.Unlock()
}

// Err returns the first write or marshal error, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Flush drains the buffer without closing.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err == nil {
		t.err = t.w.Flush()
	}
	return t.err
}

// Close flushes and closes the underlying writer (when it is a Closer).
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	err := t.Flush()
	if t.c != nil {
		if cerr := t.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// ReadEvents parses a JSONL event log back into events.
func ReadEvents(r io.Reader) ([]Event, error) {
	var out []Event
	dec := json.NewDecoder(r)
	for {
		var ev Event
		if err := dec.Decode(&ev); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, err
		}
		out = append(out, ev)
	}
}

// ExportChrome wraps a JSONL event log into the Chrome trace file format
// {"traceEvents":[...]} that Perfetto and chrome://tracing load directly.
// Events pass through verbatim — same schema, different framing.
func ExportChrome(r io.Reader, w io.Writer) error {
	events, err := ReadEvents(r)
	if err != nil {
		return err
	}
	if _, err := io.WriteString(w, "{\"traceEvents\":[\n"); err != nil {
		return err
	}
	for i := range events {
		b, err := json.Marshal(&events[i])
		if err != nil {
			return err
		}
		if i > 0 {
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	_, err = io.WriteString(w, "\n]}\n")
	return err
}

// ExportChromeFile converts the JSONL event log at eventsPath into a Chrome
// trace file at tracePath.
func ExportChromeFile(eventsPath, tracePath string) error {
	in, err := os.Open(eventsPath)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.Create(tracePath)
	if err != nil {
		return err
	}
	if err := ExportChrome(in, out); err != nil {
		out.Close()
		return fmt.Errorf("export trace: %w", err)
	}
	return out.Close()
}
