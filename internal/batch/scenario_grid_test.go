package batch_test

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/batch"
	"repro/internal/graph"
)

// scenarioSpec is a full six-dimensional grid: every classic dimension plus
// ≥ 2 non-static scenarios.
func scenarioSpec() batch.Spec {
	return batch.Spec{
		Topologies: []string{"cycle", "torus"},
		Algorithms: []string{"diffusion", "randpair"},
		Modes:      []string{"continuous", "discrete"},
		Workloads:  []string{"spike", "uniform"},
		Scenarios:  []string{"static", "adversarial-respike", "poisson-arrivals:0.05"},
		Seeds:      []int64{1, 2},
		N:          16,
	}
}

// TestExpandScenarioDimension: the scenario dimension multiplies the
// expansion, canonicalizes its entries, and keys static units in the
// legacy five-segment form while non-static units carry their scenario.
func TestExpandScenarioDimension(t *testing.T) {
	spec := scenarioSpec()
	units, err := batch.Expand(spec)
	if err != nil {
		t.Fatal(err)
	}
	if want := spec.UnitCount(); len(units) != want || want != 2*2*2*2*3*2 {
		t.Fatalf("expanded %d units, want %d", len(units), want)
	}
	keys := map[string]bool{}
	for _, u := range units {
		if keys[u.Key()] {
			t.Fatalf("duplicate key %s", u.Key())
		}
		keys[u.Key()] = true
		segs := strings.Split(u.Key(), "/")
		switch u.ScenarioName() {
		case "static":
			if u.Scenario != "" || len(segs) != 5 {
				t.Fatalf("static unit key %q not in legacy form", u.Key())
			}
		case "adversarial-respike:8:0.5", "poisson-arrivals:0.05":
			if len(segs) != 6 || segs[5] != u.Scenario {
				t.Fatalf("scenario unit key %q does not carry its canonical scenario", u.Key())
			}
		default:
			t.Fatalf("unexpected scenario %q", u.ScenarioName())
		}
	}
}

// TestExpandRejectsScenarioDuplicatesAfterCanonicalization: an entry
// spelled with explicit default parameters is the same process as the bare
// name and must not expand twice.
func TestExpandRejectsScenarioDuplicatesAfterCanonicalization(t *testing.T) {
	spec := scenarioSpec()
	spec.Scenarios = []string{"bursty", "bursty:16:0.25"}
	if _, err := batch.Expand(spec); err == nil || !strings.Contains(err.Error(), "duplicate scenario") {
		t.Fatalf("duplicate canonical scenarios accepted (err = %v)", err)
	}
	spec.Scenarios = []string{"no-such-scenario"}
	if _, err := batch.Expand(spec); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

// TestShardDisjointExhaustive6D: on the six-dimensional grid, every unit
// belongs to exactly one shard for any split width.
func TestShardDisjointExhaustive6D(t *testing.T) {
	spec := scenarioSpec()
	all, err := batch.Expand(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []int{1, 3, 7, len(all), len(all) + 5} {
		owner := make(map[int]int, len(all))
		total := 0
		for i := 0; i < m; i++ {
			sharded, err := spec.Shard(i, m)
			if err != nil {
				t.Fatal(err)
			}
			count := 0
			for _, u := range all {
				if batch.ShardOwns(u.Index, i, m) {
					if prev, dup := owner[u.Index]; dup {
						t.Fatalf("m=%d: unit %d owned by shards %d and %d", m, u.Index, prev, i)
					}
					owner[u.Index] = i
					count++
				}
			}
			if count != sharded.OwnedUnitCount() {
				t.Fatalf("m=%d shard %d: owns %d units, OwnedUnitCount says %d", m, i, count, sharded.OwnedUnitCount())
			}
			total += count
		}
		if total != len(all) {
			t.Fatalf("m=%d: shards cover %d of %d units", m, total, len(all))
		}
	}
}

// TestMergeJournals6DByteIdentity: per-shard journals of the
// six-dimensional grid merge back into a report byte-identical to the
// single-process sweep — CSV, JSON and the streaming aggregates.
func TestMergeJournals6DByteIdentity(t *testing.T) {
	spec := scenarioSpec()
	full, err := batch.Run(spec, fakeRun)
	if err != nil {
		t.Fatal(err)
	}
	var fullCSV, fullJSON bytes.Buffer
	if err := full.RenderCSV(&fullCSV); err != nil {
		t.Fatal(err)
	}
	if err := full.RenderJSON(&fullJSON); err != nil {
		t.Fatal(err)
	}

	paths := writeShardJournals(t, spec, 3)
	merged, stats, err := batch.ReadMergedJournals(paths...)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cells != spec.UnitCount() || stats.Dropped != 0 {
		t.Fatalf("merged %d cells (%d dropped), want %d", stats.Cells, stats.Dropped, spec.UnitCount())
	}
	var calls atomic.Int64
	countingRun := func(u batch.Unit, g *graph.G, loads []float64, algoSeed int64) (batch.Outcome, error) {
		calls.Add(1)
		return fakeRun(u, g, loads, algoSeed)
	}
	rep, err := batch.Resume(context.Background(), spec, countingRun, merged, nil)
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 0 {
		t.Fatalf("complete merged journal re-ran %d units", calls.Load())
	}
	var mergedCSV, mergedJSON bytes.Buffer
	if err := rep.RenderCSV(&mergedCSV); err != nil {
		t.Fatal(err)
	}
	if err := rep.RenderJSON(&mergedJSON); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fullCSV.Bytes(), mergedCSV.Bytes()) {
		t.Fatalf("merged CSV differs from single-process CSV:\n%s\nvs\n%s", mergedCSV.String(), fullCSV.String())
	}
	if !bytes.Equal(fullJSON.Bytes(), mergedJSON.Bytes()) {
		t.Fatal("merged JSON differs from single-process JSON")
	}

	// Streaming aggregates folded from the merged journals must match the
	// aggregates folded from the live sweep.
	liveAgg := batch.NewAggSink()
	if err := batch.RunStream(context.Background(), spec, fakeRun, liveAgg); err != nil {
		t.Fatal(err)
	}
	mergedAgg := batch.NewAggSink()
	if _, err := batch.MergeJournals(mergedAgg, paths...); err != nil {
		t.Fatal(err)
	}
	var liveBuf, mergedBuf bytes.Buffer
	if err := liveAgg.Report().RenderCSV(&liveBuf); err != nil {
		t.Fatal(err)
	}
	if err := mergedAgg.Report().RenderCSV(&mergedBuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(liveBuf.Bytes(), mergedBuf.Bytes()) {
		t.Fatalf("streamed aggregates differ:\n%s\nvs\n%s", mergedBuf.String(), liveBuf.String())
	}
}

// TestMergeRefusesScenarioMismatch: journals recorded under different
// scenario dimensions index different grids and must not merge.
func TestMergeRefusesScenarioMismatch(t *testing.T) {
	a := scenarioSpec()
	b := scenarioSpec()
	b.Scenarios = []string{"static", "bursty", "poisson-arrivals:0.05"}
	if err := batch.SameGrid(a, b); err == nil || !strings.Contains(err.Error(), "scenario") {
		t.Fatalf("scenario-dimension mismatch accepted (err = %v)", err)
	}
	// Spelling differences of the same process are not a mismatch.
	c := scenarioSpec()
	c.Scenarios = []string{"static", "adversarial-respike:8:0.5", "poisson-arrivals:0.05"}
	if err := batch.SameGrid(a, c); err != nil {
		t.Fatalf("canonical-equal scenario dimensions rejected: %v", err)
	}
	// A legacy header (no scenarios key → nil) matches a defaulted static
	// grid.
	d := okSpec()
	e := okSpec()
	e.Scenarios = []string{"static"}
	if err := batch.SameGrid(d, e); err != nil {
		t.Fatalf("nil vs default-static scenario dimension rejected: %v", err)
	}
}

// TestOldJournalCompat: a journal in the pre-scenario format — no
// "scenarios" key in the header, no "scenario" key in any cell — must
// resume cleanly under a spec that names the scenario dimension
// explicitly, replaying every cell (nothing re-runs) into a report
// byte-identical to a fresh sweep's. This is the static-defaults
// compatibility contract: old journals keep working, and new static
// journals are byte-compatible with old readers because static cells
// never emit a scenario key.
func TestOldJournalCompat(t *testing.T) {
	spec := okSpec() // scenario-free: defaults to ["static"]
	full, err := batch.Run(spec, fakeRun)
	if err != nil {
		t.Fatal(err)
	}

	// A journal the engine writes for a scenario-free sweep must contain
	// no scenario bytes anywhere — header included — or golden-journal
	// comparisons across engine versions would break.
	enginePath := filepath.Join(t.TempDir(), "engine.jsonl")
	sink, err := batch.CreateJSONL(enginePath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := batch.RunSink(context.Background(), spec, fakeRun, sink); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	engineBytes, err := os.ReadFile(enginePath)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(engineBytes), "scenario") {
		t.Fatal("engine-written static journal contains scenario bytes")
	}
	var fullCSV bytes.Buffer
	if err := full.RenderCSV(&fullCSV); err != nil {
		t.Fatal(err)
	}

	// Handcraft the legacy journal: the header marshals a spec whose
	// Scenarios field is nil (as an old binary would have written — no
	// "scenarios" key), each cell marshals without a "scenario" key.
	legacyHeader := spec.WithDefaults()
	legacyHeader.Scenarios = nil
	var legacy bytes.Buffer
	hdr, err := json.Marshal(struct {
		Spec batch.Spec `json:"spec"`
	}{Spec: legacyHeader})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(hdr), "scenario") {
		t.Fatalf("defaulted static header gained a scenario key: %s", hdr)
	}
	legacy.Write(hdr)
	legacy.WriteByte('\n')
	for _, c := range full.Cells {
		line, err := json.Marshal(c)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(string(line), "scenario") {
			t.Fatalf("static cell gained a scenario key: %s", line)
		}
		legacy.Write(line)
		legacy.WriteByte('\n')
	}
	path := filepath.Join(t.TempDir(), "legacy.jsonl")
	if err := os.WriteFile(path, legacy.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	journal, err := batch.ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(journal.Cells) != len(full.Cells) || journal.Dropped != 0 {
		t.Fatalf("legacy journal read back %d cells (%d dropped), want %d",
			len(journal.Cells), journal.Dropped, len(full.Cells))
	}
	explicit := spec
	explicit.Scenarios = []string{"static"}
	var calls atomic.Int64
	countingRun := func(u batch.Unit, g *graph.G, loads []float64, algoSeed int64) (batch.Outcome, error) {
		calls.Add(1)
		return fakeRun(u, g, loads, algoSeed)
	}
	rep, err := batch.Resume(context.Background(), explicit, countingRun, journal, nil)
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 0 {
		t.Fatalf("legacy journal resume re-ran %d units", calls.Load())
	}
	var resumedCSV bytes.Buffer
	if err := rep.RenderCSV(&resumedCSV); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fullCSV.Bytes(), resumedCSV.Bytes()) {
		t.Fatalf("legacy-journal resume differs from fresh sweep:\n%s\nvs\n%s",
			resumedCSV.String(), fullCSV.String())
	}
}

// TestScenarioSeedsAreScenarioSpecific: distinct scenarios on the same
// cell draw distinct scenario streams, while the static unit's workload
// and algorithm streams are untouched by the dimension existing at all.
func TestScenarioSeedsAreScenarioSpecific(t *testing.T) {
	spec := scenarioSpec()
	units, err := batch.Expand(spec)
	if err != nil {
		t.Fatal(err)
	}
	byScenario := map[string]batch.Unit{}
	for _, u := range units {
		if u.Topology == "cycle" && u.Algorithm == "diffusion" && u.Mode == "continuous" &&
			u.WorkloadName == "spike" && u.Seed == 1 {
			byScenario[u.ScenarioName()] = u
		}
	}
	if len(byScenario) != 3 {
		t.Fatalf("found %d scenario variants of the probe cell, want 3", len(byScenario))
	}
	seen := map[int64]string{}
	for name, u := range byScenario {
		s := u.ScenarioSeed()
		if prev, dup := seen[s]; dup {
			t.Fatalf("scenarios %s and %s share scenario seed %d", prev, name, s)
		}
		seen[s] = name
	}
	// The static unit's key — hence its whole seed sequence — must be the
	// legacy one, unchanged by the dimension's existence.
	scenarioFree := okSpec()
	scenarioFree.Topologies = spec.Topologies
	scenarioFree.Algorithms = spec.Algorithms
	legacyUnits, err := batch.Expand(scenarioFree)
	if err != nil {
		t.Fatal(err)
	}
	for _, lu := range legacyUnits {
		if lu.Key() == byScenario["static"].Key() {
			return // same key ⇒ same seedBase ⇒ same streams
		}
	}
	t.Fatalf("static unit key %q not found in scenario-free expansion", byScenario["static"].Key())
}
