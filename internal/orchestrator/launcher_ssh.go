package orchestrator

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"time"
)

// SSHLauncher runs attempts on a remote host over ssh. The remote lbbench
// journals at the same path the plan laid out locally (the layout is the
// contract: both sides use the plan's Dir verbatim), and FetchJournal
// mirrors those bytes home with a cat over the same transport — the
// supervisor's journal tail then drives progress, stalls and steals exactly
// as it does for a local shard.
//
// The remote side needs only lbbench on PATH (or Remote pointing at it) and
// a POSIX sh; no agent or daemon. Attempts record their remote pid in
// <journal>.pid so Signal can reach the process even though the local
// handle is just the ssh client.
type SSHLauncher struct {
	// Host is the ssh destination (host, user@host, or an ssh_config
	// alias). Required.
	Host string
	// SSH is the client argv prefix; empty means
	// {"ssh", "-o", "BatchMode=yes"}. Tests substitute a stub here.
	SSH []string
	// Remote is the remote lbbench invocation; empty means "lbbench".
	Remote string
	// RemoteDir relocates the remote side's journals: attempts journal
	// under this directory (same basename) on the host instead of the
	// plan's local path. Empty keeps the plan layout — the usual remote
	// setup. Set it whenever the host shares a filesystem with the
	// supervisor (ssh-to-localhost smokes, NFS homes): fetching a journal
	// over the very path the remote attempt is appending to would replace
	// the writer's inode and freeze its visible progress.
	RemoteDir string
	// Width caps concurrent attempts on this host; <= 0 means 1 — remote
	// slots are the scarce resource stealing exists to fill, so they
	// default conservative.
	Width int
}

// remoteJournal is where t's journal lives on the remote side.
func (l *SSHLauncher) remoteJournal(t *Task) string {
	if l.RemoteDir == "" {
		return t.Journal
	}
	return filepath.Join(l.RemoteDir, filepath.Base(t.Journal))
}

func (l *SSHLauncher) ssh() []string {
	if len(l.SSH) > 0 {
		return l.SSH
	}
	return []string{"ssh", "-o", "BatchMode=yes"}
}

func (l *SSHLauncher) remote() string {
	if l.Remote != "" {
		return l.Remote
	}
	return "lbbench"
}

// Name implements Launcher.
func (l *SSHLauncher) Name() string { return "ssh:" + l.Host }

// Slots implements Launcher.
func (l *SSHLauncher) Slots() int {
	if l.Width <= 0 {
		return 1
	}
	return l.Width
}

// sshHandle ties the local ssh client to the task whose remote pid file
// Signal must consult.
type sshHandle struct {
	cmd *exec.Cmd
	t   *Task
}

// run executes one ssh command synchronously, discarding output.
func (l *SSHLauncher) run(command string) error {
	argv := append(append([]string(nil), l.ssh()...), l.Host, command)
	cmd := exec.Command(argv[0], argv[1:]...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		return fmt.Errorf("orchestrator: ssh %s: %v: %s", l.Host, err, out)
	}
	return nil
}

// Launch implements Launcher: the remote command records its pid, then
// exec-replaces the shell with lbbench so that pid stays accurate for the
// attempt's whole life. The local ssh client's stderr carries the remote
// stderr home into the task's .stderr file.
func (l *SSHLauncher) Launch(ctx context.Context, t *Task, args []string) (Handle, error) {
	if l.Host == "" {
		return nil, fmt.Errorf("orchestrator: ssh launcher has no host")
	}
	rj := l.remoteJournal(t)
	if rj != t.Journal {
		// The journal path rides the args as standalone -out/-resume
		// operands; relocate every exact occurrence.
		args = append([]string(nil), args...)
		for i, a := range args {
			if a == t.Journal {
				args[i] = rj
			}
		}
	}
	remote := fmt.Sprintf("mkdir -p %s && { echo $$ > %s; exec %s %s; }",
		shellQuote(filepath.Dir(rj)), shellQuote(rj+".pid"),
		l.remote(), shellJoin(args))
	argv := append(append([]string(nil), l.ssh()...), l.Host, remote)
	cmd := exec.CommandContext(ctx, argv[0], argv[1:]...)
	cmd.Stdout = nil
	// Context cancellation interrupts the local client; ssh forwards the
	// hangup and the remote lbbench takes its graceful SIGHUP/EOF path. The
	// WaitDelay backstop still reaps a wedged client.
	cmd.Cancel = func() error { return cmd.Process.Signal(syscall.SIGINT) }
	cmd.WaitDelay = 30 * time.Second
	stderr, err := os.OpenFile(stderrPath(t), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("orchestrator: %w", err)
	}
	cmd.Stderr = stderr
	if err := cmd.Start(); err != nil {
		stderr.Close()
		return nil, fmt.Errorf("orchestrator: %w", err)
	}
	stderr.Close()
	return &sshHandle{cmd: cmd, t: t}, nil
}

// Signal implements Launcher: the signal is delivered on the remote side,
// to the pid the attempt recorded — the local ssh client would only relay
// some signals, and none to a remote process that is stopped. A kill also
// reaps the local client so Wait returns promptly instead of waiting out
// the dead connection.
func (l *SSHLauncher) Signal(h Handle, sig os.Signal) error {
	sh := h.(*sshHandle)
	num, ok := sig.(syscall.Signal)
	if !ok {
		return fmt.Errorf("orchestrator: ssh launcher cannot deliver %v", sig)
	}
	err := l.run(fmt.Sprintf("kill -%d \"$(cat %s)\"", int(num), shellQuote(l.remoteJournal(sh.t)+".pid")))
	if num == syscall.SIGKILL && sh.cmd.Process != nil {
		sh.cmd.Process.Kill()
	}
	return err
}

// Wait implements Launcher.
func (l *SSHLauncher) Wait(h Handle) error { return h.(*sshHandle).cmd.Wait() }

// FetchJournal implements Launcher: cat the remote journal and rename the
// bytes into place. The remote file may be mid-append — the fetched copy is
// then a prefix with a torn tail, which every journal scanner tolerates and
// the next fetch extends. A missing remote file (attempt not started yet)
// leaves any local copy alone.
func (l *SSHLauncher) FetchJournal(t *Task) error {
	rj := l.remoteJournal(t)
	argv := append(append([]string(nil), l.ssh()...), l.Host,
		fmt.Sprintf("test -f %s && cat %s || true", shellQuote(rj), shellQuote(rj)))
	cmd := exec.Command(argv[0], argv[1:]...)
	out, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("orchestrator: fetch %s from %s: %w", t.Journal, l.Host, err)
	}
	if len(out) == 0 {
		return nil
	}
	tmp := t.Journal + ".fetch"
	if err := os.WriteFile(tmp, out, 0o644); err != nil {
		return fmt.Errorf("orchestrator: %w", err)
	}
	if err := os.Rename(tmp, t.Journal); err != nil {
		return fmt.Errorf("orchestrator: %w", err)
	}
	return nil
}
