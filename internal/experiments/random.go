package experiments

import (
	"math"
	"math/rand"

	"repro/internal/ballsbins"
	"repro/internal/load"
	"repro/internal/matrix"
	"repro/internal/randpair"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

func init() {
	register("E7", E7PartnerDegree)
	register("E8", E8PotentialIdentity)
	register("E9", E9RandomPartners)
	register("E10", E10RandomPartnersDiscrete)
	register("E14", E14BallsBins)
}

// E7PartnerDegree validates Lemma 9: conditioned on a link existing, both
// endpoints have at most 5 balancing partners with probability > 0.5.
// Monte-Carlo over round draws, swept over n.
func E7PartnerDegree(o Options) *trace.Table {
	t := trace.NewTable("E7 — Lemma 9: Pr[max(dᵢ,dⱼ) ≤ 5 | (i,j) ∈ E]",
		"n", "rounds sampled", "Pr[≤5 | link]", "paper bound", "max degree seen")
	sizes := []int{16, 64, 256, 1024, 4096}
	rounds := 400
	if o.Quick {
		sizes = []int{64, 256}
		rounds = 50
	}
	rows := make([]row, len(sizes))
	o.sweep(len(rows), func(i int, rng *rand.Rand) {
		n := sizes[i]
		p, maxDeg := randpair.PartnerDegreeProbe(n, rounds, rng)
		rows[i] = row{n, rounds, p, 0.5, maxDeg}
	})
	emit(t, rows)
	t.Note("Lemma 9 holds when every probability exceeds 0.5 (measured values are typically ≈0.97).")
	return t
}

// E8PotentialIdentity validates Lemma 10 numerically: the O(n) closed form
// of ΣᵢΣⱼ(ℓᵢ−ℓⱼ)² equals 2n·Φ(L) against the O(n²) direct double sum, over
// random load vectors of growing size.
func E8PotentialIdentity(o Options) *trace.Table {
	t := trace.NewTable("E8 — Lemma 10: ΣᵢΣⱼ(ℓᵢ−ℓⱼ)² = 2n·Φ(L)",
		"n", "workload", "max |lhs−rhs|/rhs")
	sizes := []int{8, 64, 512}
	if o.Quick {
		sizes = []int{8, 64}
	}
	kinds := []workload.Kind{workload.Spike, workload.Uniform, workload.PowerLaw}
	rows := make([]row, len(sizes)*len(kinds))
	o.sweep(len(rows), func(ci int, rng *rand.Rand) {
		n, k := sizes[ci/len(kinds)], kinds[ci%len(kinds)]
		var worst float64
		for rep := 0; rep < 20; rep++ {
			x := matrix.Vector(workload.Continuous(k, n, 1e4, rng))
			lhs := load.PairwiseSquaredSum(x)
			var direct float64
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					d := x[i] - x[j]
					direct += d * d
				}
			}
			rhs := 2 * float64(n) * load.PotentialAround(x, x.Mean())
			if rhs == 0 {
				continue
			}
			relA := math.Abs(lhs-rhs) / rhs
			relB := math.Abs(direct-rhs) / rhs
			if relA > worst {
				worst = relA
			}
			if relB > worst {
				worst = relB
			}
		}
		rows[ci] = row{n, k.String(), worst}
	})
	emit(t, rows)
	t.Note("all relative errors must sit at floating-point noise (≲1e-9).")
	return t
}

// E9RandomPartners validates Lemma 11 and Theorem 12: the continuous
// Algorithm 2 contracts Φ by ≤ 19/20 per round in expectation, and reaches
// Φ ≤ e⁻ᶜ within 120c·lnΦ⁰ rounds.
func E9RandomPartners(o Options) *trace.Table {
	t := trace.NewTable("E9 — Lemma 11 / Theorem 12: continuous random partners",
		"n", "mean Φᵗ⁺¹/Φᵗ", "bound 19/20", "rounds to e⁻¹", "Thm 12 bound (c=1)", "rounds/bound")
	sizes := []int{32, 128, 512}
	trials := 200
	if o.Quick {
		sizes = []int{64}
		trials = 40
	}
	rows := make([]row, len(sizes))
	o.sweep(len(rows), func(i int, rng *rand.Rand) {
		n := sizes[i]
		// Per-round contraction from a spike start, averaged over trials.
		init := workload.Continuous(workload.Spike, n, float64(n)*1000, nil)
		var factors []float64
		for k := 0; k < trials; k++ {
			st := randpair.NewContinuous(init, rng)
			phi0 := st.Potential()
			st.Step()
			factors = append(factors, st.Potential()/phi0)
		}
		meanFactor := stats.Summarize(factors).Mean

		// Full convergence run to Φ ≤ e⁻¹ (c = 1).
		st := randpair.NewContinuous(init, rng)
		phi0 := st.Potential()
		bound := 120 * math.Log(phi0)
		res := sim.Run(st, int(bound)+1, sim.UntilPotential(math.Exp(-1)))
		rows[i] = row{n, meanFactor, randpair.ContinuousDropBound, res.Rounds, bound, float64(res.Rounds) / bound}
	})
	emit(t, rows)
	t.Note("Lemma 11 holds when mean factor ≤ 0.95; Theorem 12 when rounds/bound ≤ 1 (measured is typically ≪).")
	return t
}

// E10RandomPartnersDiscrete validates Lemma 13 and Theorem 14: the discrete
// Algorithm 2 contracts by ≤ 39/40 per round while Φ ≥ 3200n and reaches
// the threshold within 240c·ln(Φ⁰/3200n) rounds.
func E10RandomPartnersDiscrete(o Options) *trace.Table {
	t := trace.NewTable("E10 — Lemma 13 / Theorem 14: discrete random partners",
		"n", "mean Φᵗ⁺¹/Φᵗ", "bound 39/40", "rounds to 3200n", "Thm 14 bound (c=1)", "rounds/bound")
	sizes := []int{32, 128, 512}
	trials := 200
	if o.Quick {
		sizes = []int{64}
		trials = 40
	}
	rows := make([]row, len(sizes))
	o.sweep(len(rows), func(i int, rng *rand.Rand) {
		n := sizes[i]
		init := workload.Discrete(workload.Spike, n, int64(n)*100000, nil)
		var factors []float64
		for k := 0; k < trials; k++ {
			st := randpair.NewDiscrete(init, rng)
			phi0 := st.Potential()
			st.Step()
			factors = append(factors, st.Potential()/phi0)
		}
		meanFactor := stats.Summarize(factors).Mean

		st := randpair.NewDiscrete(init, rng)
		phi0 := st.Potential()
		thr := randpair.DiscreteThreshold(n)
		bound := 240 * math.Log(phi0/thr)
		res := sim.Run(st, int(bound)+1, sim.UntilPotential(thr))
		rows[i] = row{n, meanFactor, randpair.DiscreteDropBound, res.Rounds, bound, float64(res.Rounds) / bound}
	})
	emit(t, rows)
	t.Note("Lemma 13 holds when mean factor ≤ 0.975 above the 3200n threshold; Theorem 14 when rounds/bound ≤ 1.")
	return t
}

// E14BallsBins validates the §6 balls-into-bins discussion: the maximum
// partner count grows like ln n/ln ln n, so no analysis through the maximum
// degree can give Lemma 11's constant drop.
func E14BallsBins(o Options) *trace.Table {
	t := trace.NewTable("E14 — balls into bins: maximum partner count vs Θ(ln n/ln ln n)",
		"n", "mean max load", "ln n/ln ln n", "ratio")
	sizes := []int{64, 256, 1024, 4096, 16384}
	trials := 100
	if o.Quick {
		sizes = []int{256, 1024}
		trials = 20
	}
	rows := make([]row, len(sizes))
	o.sweep(len(rows), func(i int, rng *rand.Rand) {
		n := sizes[i]
		sample := ballsbins.MaxLoadStats(n, trials, rng)
		mean := stats.Summarize(sample).Mean
		approx := ballsbins.ExpectedMaxLoadApprox(n)
		rows[i] = row{n, mean, approx, mean / approx}
	})
	emit(t, rows)
	t.Note("the ratio must stay bounded (Θ(1)) as n grows — the Θ(ln n/ln ln n) shape of [1].")
	return t
}
