// Command lbbench regenerates the paper-reproduction experiment tables and
// runs declarative sweep grids through the parallel batch engine.
//
// Experiment mode (one table per experiment of DESIGN.md §5):
//
//	lbbench -exp all            # run every experiment (E1–E19, A1–A8)
//	lbbench -exp E3,E4          # run selected experiments
//	lbbench -exp E9 -seed 7     # change the seed
//	lbbench -list               # list experiment ids
//	lbbench -quick              # shrunk sweeps (CI-sized)
//	lbbench -csv                # CSV instead of aligned tables
//	lbbench -parallel 8         # fan each experiment's sweep over 8 workers
//
// Grid mode (one invocation reproduces a whole paper figure's sweep):
//
//	lbbench -grid -topos cycle,torus,hypercube \
//	        -algos diffusion,dimexchange,randpair \
//	        -modes continuous,discrete -loads spike,uniform \
//	        -n 64 -seeds 1,2,3 -parallel 8 -format csv
//
// The grid expands to topologies × algorithms × modes × workloads × seeds
// run units, executes them across -parallel workers with per-unit
// deterministic RNG streams, and emits one aggregated report (table, csv or
// json). Output is identical for any -parallel value.
//
// Streaming and resuming (grids too large for memory, or runs that may be
// interrupted):
//
//	lbbench -grid ... -out cells.jsonl              # journal cells as they finish
//	lbbench -grid ... -resume cells.jsonl -out cells.jsonl
//
// -out streams each finished cell as one JSON line, in deterministic
// expansion order, flushed per cell — an interrupted run (Ctrl-C, SIGTERM,
// even SIGKILL) leaves a valid journal: every line already written is
// intact, and at most a small sequencing window of completed-but-unwritten
// cells (plus one torn final line under a hard kill) is lost and simply
// re-runs. -resume replays the journal's clean cells by unit key, re-runs
// only the missing or failed ones, and emits a report byte-identical to an
// uninterrupted run. -cache-stats reports the shared spectral cache's hit
// counts.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/speccache"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		seed     = flag.Int64("seed", 1, "seed for randomized components (experiment mode)")
		quick    = flag.Bool("quick", false, "shrink sweeps for a fast run")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables (experiment mode)")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		parallel = flag.Int("parallel", 0, "worker-pool width for sweeps (0 = GOMAXPROCS)")

		grid   = flag.Bool("grid", false, "run a declarative sweep grid instead of the experiment tables")
		topos  = flag.String("topos", "cycle,torus,hypercube", "grid: comma-separated topology names")
		algos  = flag.String("algos", "diffusion,dimexchange,randpair", "grid: comma-separated algorithm names")
		modes  = flag.String("modes", "continuous", "grid: comma-separated load modes (continuous,discrete)")
		loads  = flag.String("loads", "spike,uniform", "grid: comma-separated workload kinds")
		n      = flag.Int("n", 64, "grid: approximate node count per topology")
		seeds  = flag.String("seeds", "1", "grid: comma-separated repetition seeds")
		scale  = flag.Float64("scale", 1e6, "grid: load magnitude")
		eps    = flag.Float64("eps", 1e-3, "grid: convergence target Φ ≤ ε·Φ⁰")
		rounds = flag.Int("rounds", 0, "grid: round cap per unit (0 = theorem-derived default)")
		format = flag.String("format", "table", "grid: output format (table, csv, json)")

		out        = flag.String("out", "", "grid: stream finished cells to this JSONL journal (resumable with -resume)")
		resume     = flag.String("resume", "", "grid: replay completed cells from this JSONL journal, re-run only the rest")
		cacheStats = flag.Bool("cache-stats", false, "print shared spectral-cache statistics to stderr on exit")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	var code int
	if *grid {
		code = runGrid(gridFlags{
			topos: *topos, algos: *algos, modes: *modes, loads: *loads,
			seeds: *seeds, n: *n, scale: *scale, eps: *eps, rounds: *rounds,
			workers: *parallel, format: *format, out: *out, resume: *resume,
		})
	} else {
		code = runExperiments(*exp, *seed, *quick, *csv, *parallel)
	}
	if *cacheStats {
		fmt.Fprintf(os.Stderr, "lbbench: speccache: %s\n", speccache.Shared().Stats())
	}
	os.Exit(code)
}

// runExperiments is the classic per-experiment table mode.
func runExperiments(exp string, seed int64, quick, csv bool, workers int) int {
	var ids []string
	if exp == "all" {
		ids = experiments.IDs()
	} else {
		for _, id := range strings.Split(exp, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			if _, ok := experiments.Lookup(id); !ok {
				fmt.Fprintf(os.Stderr, "lbbench: unknown experiment %q (use -list)\n", id)
				return 2
			}
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "lbbench: no experiments selected")
		return 2
	}

	opts := experiments.Options{Seed: seed, Quick: quick, Workers: workers}
	for _, id := range ids {
		runner, _ := experiments.Lookup(id)
		start := time.Now()
		table := runner(opts)
		elapsed := time.Since(start)
		var err error
		if csv {
			err = table.RenderCSV(os.Stdout)
		} else {
			err = table.Render(os.Stdout)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "lbbench: rendering %s: %v\n", id, err)
			return 1
		}
		if !csv {
			fmt.Printf("[%s completed in %v]\n\n", id, elapsed.Round(time.Millisecond))
		}
	}
	return 0
}

// gridFlags bundles the grid-mode flag values.
type gridFlags struct {
	topos, algos, modes, loads, seeds string
	n                                 int
	scale, eps                        float64
	rounds, workers                   int
	format, out, resume               string
}

// runGrid expands and executes one declarative sweep through the batch
// engine — streaming cells to the -out journal, replaying the -resume
// journal — and emits the aggregated report.
func runGrid(f gridFlags) int {
	seedList, err := parseSeeds(f.seeds)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lbbench: %v\n", err)
		return 2
	}
	spec := batch.Spec{
		Topologies: splitList(f.topos),
		Algorithms: splitList(f.algos),
		Modes:      splitList(f.modes),
		Workloads:  splitList(f.loads),
		Seeds:      seedList,
		N:          f.n,
		Scale:      f.scale,
		Epsilon:    f.eps,
		MaxRounds:  f.rounds,
		Workers:    f.workers,
	}
	// A typo'd -format must not cost a full sweep: reject it before running,
	// not when rendering.
	switch f.format {
	case "table", "csv", "json":
	default:
		fmt.Fprintf(os.Stderr, "lbbench: unknown -format %q (want table, csv or json)\n", f.format)
		return 2
	}
	// When journal files are at stake, fail on anything the engine would
	// reject — bad dimensions, unknown algorithms, unbuildable topologies —
	// before touching them: -out truncates, and a partial journal must
	// survive a typo'd resume invocation. (Without journal flags the engine
	// reports the same errors itself, so the topologies are not built
	// twice for nothing.)
	if f.out != "" || f.resume != "" {
		if err := core.ValidateGridSpec(spec); err != nil {
			fmt.Fprintf(os.Stderr, "lbbench: %v\n", err)
			return 2
		}
	}

	// The -resume journal is read fully before -out is opened, so resuming
	// in place (-resume X -out X) reads the partial journal and then
	// rewrites it complete.
	var journal *batch.Journal
	if f.resume != "" {
		j, err := batch.ReadJournalFile(f.resume)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lbbench: %v\n", err)
			return 2
		}
		if j.Dropped > 0 {
			fmt.Fprintf(os.Stderr, "lbbench: journal %s: dropped %d corrupt/truncated line(s); those units will re-run\n", f.resume, j.Dropped)
		}
		// Refuse a parameter mismatch now, while the partial journal is
		// still the only copy — -out may truncate it next.
		if err := j.CheckSpec(spec); err != nil {
			fmt.Fprintf(os.Stderr, "lbbench: %v\n", err)
			return 2
		}
		journal = j
	}
	var sink batch.Sink
	if f.out != "" {
		js, err := batch.CreateJSONL(f.out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lbbench: %v\n", err)
			return 2
		}
		defer js.Close()
		sink = js
	}

	// SIGINT/SIGTERM cancel the sweep instead of killing the process:
	// in-flight units finish, every remaining cell is journaled with its
	// cancellation error, and the journal closes cleanly for -resume. The
	// first signal consumes the graceful path — once it fires, default
	// disposition is restored so a second Ctrl-C terminates immediately
	// instead of being swallowed while the sweep drains.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()

	report, runErr := core.BalanceGridResume(ctx, spec, journal, sink)
	if report == nil {
		fmt.Fprintf(os.Stderr, "lbbench: %v\n", runErr)
		return 2
	}

	switch f.format {
	case "table":
		err = report.Table().Render(os.Stdout)
		if err == nil {
			err = report.AggregateTable().Render(os.Stdout)
		}
	case "csv":
		err = report.RenderCSV(os.Stdout)
	case "json":
		err = report.RenderJSON(os.Stdout)
	default:
		fmt.Fprintf(os.Stderr, "lbbench: unknown -format %q (want table, csv or json)\n", f.format)
		return 2
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "lbbench: rendering grid report: %v\n", err)
		return 1
	}
	// Wall time goes to stderr so stdout stays deterministic across worker
	// counts (and across runs).
	fmt.Fprintf(os.Stderr, "lbbench: %d units (%d failed) in %v\n",
		len(report.Cells), report.Failed(), report.Elapsed.Round(time.Millisecond))
	if runErr != nil {
		if errors.Is(runErr, context.Canceled) && f.out != "" {
			fmt.Fprintf(os.Stderr, "lbbench: interrupted — resume with: lbbench -grid ... -resume %s -out %s\n", f.out, f.out)
		} else {
			fmt.Fprintf(os.Stderr, "lbbench: %v\n", runErr)
		}
		return 3
	}
	// Any failed unit means the emitted figure has holes: scripts checking
	// the exit status must not mistake a partial sweep for a complete one.
	if report.Failed() > 0 {
		return 1
	}
	return 0
}

// splitList splits a comma-separated flag value, dropping empty entries.
func splitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

// parseSeeds parses the -seeds list.
func parseSeeds(s string) ([]int64, error) {
	var out []int64
	for _, v := range splitList(s) {
		x, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q: %v", v, err)
		}
		out = append(out, x)
	}
	return out, nil
}
