package scenario

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dynamic"
	"repro/internal/graph"
)

// Arrival is one unit of injected load: Amount lands on Node.
type Arrival struct {
	Node   int
	Amount float64
}

// Instance is one seed-fixed realization of a scenario, bound to a single
// run: a deterministic schedule of active graphs and load arrivals. The
// round loop must call Graph(k) and then Arrivals(k, …) exactly once per
// round, for k = 0, 1, 2, … in order — the instance draws from its RNG at
// call time, so out-of-order or repeated calls would change the
// realization. Instances are not safe for concurrent use; a grid run
// creates one per unit from the unit's own seed stream.
type Instance struct {
	graphAt  func(k int) *graph.G
	arrivals func(k int, loads []float64) []Arrival
	// arrivalFree marks scenarios that never inject load (pure topology
	// churn): their runs may stop early once the potential reaches its
	// target, exactly like a static run.
	arrivalFree bool
}

// Graph returns the topology active in round k — the base graph whenever
// the scenario leaves topology alone (pointer-compare against the base to
// detect churn cheaply).
func (in *Instance) Graph(k int) *graph.G { return in.graphAt(k) }

// Arrivals returns the load arriving at the end of round k. loads is the
// post-round load vector, read-only — adversarial scenarios use it to aim.
func (in *Instance) Arrivals(k int, loads []float64) []Arrival {
	return in.arrivals(k, loads)
}

// ArrivalFree reports whether the scenario never injects load, so a run
// that reaches its balance target has nothing left to wait for.
func (in *Instance) ArrivalFree() bool { return in.arrivalFree }

// meanJobsPerRound is PoissonArrivals' mean job count per round; the rate
// parameter scales the per-job size so the expected injected load per round
// is rate·ref regardless of this constant.
const meanJobsPerRound = 4.0

// New binds the scenario to one run: base is the run's topology, ref the
// reference load magnitude injection sizes are fractions of (callers pass
// the total initial load; anything ≤ 0 falls back to the node count), and
// rng the scenario's private stream — separate from the algorithm's, so
// enabling a scenario never perturbs the algorithm's draws.
func (s Spec) New(base *graph.G, ref float64, rng *rand.Rand) (*Instance, error) {
	if base == nil || base.N() == 0 {
		return nil, fmt.Errorf("scenario: %s needs a non-empty base graph", s)
	}
	if ref <= 0 || math.IsNaN(ref) || math.IsInf(ref, 0) {
		ref = float64(base.N())
	}
	n := base.N()
	static := func(int) *graph.G { return base }
	none := func(int, []float64) []Arrival { return nil }

	switch s.Kind {
	case Static:
		return &Instance{graphAt: static, arrivals: none, arrivalFree: true}, nil

	case PoissonArrivals:
		job := s.param(0) * ref / meanJobsPerRound
		return &Instance{graphAt: static, arrivals: func(int, []float64) []Arrival {
			jobs := poisson(rng, meanJobsPerRound)
			out := make([]Arrival, 0, jobs)
			for i := 0; i < jobs; i++ {
				out = append(out, Arrival{Node: rng.Intn(n), Amount: job})
			}
			return out
		}}, nil

	case Bursty:
		period, amount := int(s.param(0)), s.param(1)*ref
		return &Instance{graphAt: static, arrivals: func(k int, _ []float64) []Arrival {
			if (k+1)%period != 0 {
				return nil
			}
			return []Arrival{{Node: rng.Intn(n), Amount: amount}}
		}}, nil

	case AdversarialRespike:
		every, amount := int(s.param(0)), s.param(1)*ref
		return &Instance{graphAt: static, arrivals: func(k int, loads []float64) []Arrival {
			if (k+1)%every != 0 {
				return nil
			}
			return []Arrival{{Node: argmax(loads), Amount: amount}}
		}}, nil

	case HotspotDrift:
		amount, period := s.param(0)*ref, int(s.param(1))
		hot := rng.Intn(n)
		return &Instance{graphAt: static, arrivals: func(k int, _ []float64) []Arrival {
			if k > 0 && k%period == 0 {
				if nb := base.Neighbors(hot); len(nb) > 0 {
					hot = nb[rng.Intn(len(nb))]
				}
			}
			return []Arrival{{Node: hot, Amount: amount}}
		}}, nil

	case EdgeChurn:
		seq := &dynamic.RandomSubgraphs{Base: base, KeepProb: 1 - s.param(0), RNG: rng}
		return &Instance{graphAt: seq.Next, arrivals: none, arrivalFree: true}, nil

	case PeriodicFailures:
		period := int(s.param(0))
		seq := &dynamic.EdgeFailures{Base: base, FailCount: int(s.param(1)), RNG: rng}
		var cur *graph.G
		return &Instance{graphAt: func(k int) *graph.G {
			if cur == nil || k%period == 0 {
				cur = seq.Next(k)
			}
			return cur
		}, arrivals: none, arrivalFree: true}, nil

	case Trace:
		events, err := ReadTraceFile(s.Path)
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		for _, e := range events {
			if e.Node >= n {
				return nil, fmt.Errorf("scenario: trace %s: round %d targets node %d but the graph has %d nodes", s.Path, e.Round, e.Node, n)
			}
		}
		// The cursor rides the in-order round-loop contract documented on
		// Instance: events land exactly at their recorded round, no RNG
		// draws, so replay is deterministic with any rng (including nil).
		cursor := 0
		return &Instance{graphAt: static, arrivals: func(k int, _ []float64) []Arrival {
			var out []Arrival
			for cursor < len(events) && events[cursor].Round <= k {
				if events[cursor].Round == k {
					out = append(out, Arrival{Node: events[cursor].Node, Amount: events[cursor].Amount})
				}
				cursor++
			}
			return out
		}}, nil

	default:
		return nil, fmt.Errorf("scenario: unknown kind %v", s.Kind)
	}
}

// poisson draws a Poisson(λ) variate by Knuth's product method — λ here is
// the small per-round job mean, where the method is exact and cheap.
func poisson(rng *rand.Rand, lambda float64) int {
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for p > l {
		k++
		p *= rng.Float64()
	}
	return k - 1
}

// argmax returns the index of the largest load, lowest index on ties — a
// deterministic aim for the adversary.
func argmax(loads []float64) int {
	best := 0
	for i, v := range loads {
		if v > loads[best] {
			best = i
		}
	}
	return best
}
