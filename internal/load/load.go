// Package load defines the load-vector abstractions shared by every
// balancing algorithm in this repository, together with the quantities the
// paper's analysis tracks: the quadratic potential Φ(L) = Σ(ℓᵢ − ℓ̄)², the
// discrepancy K = max ℓᵢ − min ℓᵢ, and the error vector e = L − ℓ̄·1.
//
// Two concrete representations exist: Continuous (float64 loads, arbitrary
// splitting — the "ideal" model of §2.1) and Discrete (int64 token counts —
// the model of §2.2 and §4.2). Both satisfy conservation: no algorithm in
// this repository creates or destroys load, and the test suite enforces
// this as a property.
package load

import (
	"fmt"
	"math"

	"repro/internal/matrix"
)

// Continuous is a continuous (infinitely divisible) load distribution.
type Continuous struct {
	v matrix.Vector
}

// NewContinuous wraps the given loads (copied).
func NewContinuous(loads []float64) *Continuous {
	return &Continuous{v: matrix.Vector(loads).Clone()}
}

// Zero returns an n-node all-zero continuous distribution.
func Zero(n int) *Continuous { return &Continuous{v: matrix.NewVector(n)} }

// N returns the number of nodes.
func (c *Continuous) N() int { return len(c.v) }

// At returns node i's load.
func (c *Continuous) At(i int) float64 { return c.v[i] }

// Set assigns node i's load.
func (c *Continuous) Set(i int, x float64) { c.v[i] = x }

// Move transfers amount from node i to node j. Negative amounts move load
// the other way; the caller is responsible for sign conventions.
func (c *Continuous) Move(i, j int, amount float64) {
	c.v[i] -= amount
	c.v[j] += amount
}

// Vector returns the underlying vector (shared, not copied). Callers that
// need isolation should Clone first.
func (c *Continuous) Vector() matrix.Vector { return c.v }

// Clone returns a deep copy.
func (c *Continuous) Clone() *Continuous { return &Continuous{v: c.v.Clone()} }

// Total returns Σℓᵢ.
func (c *Continuous) Total() float64 { return c.v.Sum() }

// Average returns ℓ̄ = Σℓᵢ/n.
func (c *Continuous) Average() float64 { return c.v.Mean() }

// Potential returns Φ(L) = Σᵢ(ℓᵢ − ℓ̄)².
func (c *Continuous) Potential() float64 {
	return PotentialAround(c.v, c.Average())
}

// Discrepancy returns K = maxᵢℓᵢ − minᵢℓᵢ.
func (c *Continuous) Discrepancy() float64 {
	if len(c.v) == 0 {
		return 0
	}
	return c.v.Max() - c.v.Min()
}

// ErrorVector returns e = L − ℓ̄·1 as a fresh vector.
func (c *Continuous) ErrorVector() matrix.Vector {
	avg := c.Average()
	e := c.v.Clone()
	for i := range e {
		e[i] -= avg
	}
	return e
}

// ErrorNorm2 returns ‖e‖₂ = sqrt(Φ).
func (c *Continuous) ErrorNorm2() float64 { return math.Sqrt(c.Potential()) }

// String implements fmt.Stringer.
func (c *Continuous) String() string {
	return fmt.Sprintf("Continuous{n=%d total=%.3f Φ=%.3f K=%.3f}", c.N(), c.Total(), c.Potential(), c.Discrepancy())
}

// Discrete is an indivisible-token load distribution.
type Discrete struct {
	v []int64
}

// NewDiscrete wraps the given token counts (copied).
func NewDiscrete(tokens []int64) *Discrete {
	out := make([]int64, len(tokens))
	copy(out, tokens)
	return &Discrete{v: out}
}

// ZeroDiscrete returns an n-node all-zero discrete distribution.
func ZeroDiscrete(n int) *Discrete { return &Discrete{v: make([]int64, n)} }

// N returns the number of nodes.
func (d *Discrete) N() int { return len(d.v) }

// At returns node i's token count.
func (d *Discrete) At(i int) int64 { return d.v[i] }

// Set assigns node i's token count.
func (d *Discrete) Set(i int, x int64) { d.v[i] = x }

// Move transfers tokens from node i to node j.
func (d *Discrete) Move(i, j int, tokens int64) {
	d.v[i] -= tokens
	d.v[j] += tokens
}

// Tokens returns the underlying counts (shared, not copied).
func (d *Discrete) Tokens() []int64 { return d.v }

// Clone returns a deep copy.
func (d *Discrete) Clone() *Discrete {
	out := make([]int64, len(d.v))
	copy(out, d.v)
	return &Discrete{v: out}
}

// Total returns Σℓᵢ.
func (d *Discrete) Total() int64 {
	var s int64
	for _, x := range d.v {
		s += x
	}
	return s
}

// Average returns ℓ̄ as a float64 (the discrete average need not be integer).
func (d *Discrete) Average() float64 {
	if len(d.v) == 0 {
		return 0
	}
	return float64(d.Total()) / float64(len(d.v))
}

// Potential returns Φ(L) = Σᵢ(ℓᵢ − ℓ̄)².
func (d *Discrete) Potential() float64 {
	return PotentialAround(d.Float64s(), d.Average())
}

// Discrepancy returns K = maxᵢℓᵢ − minᵢℓᵢ.
func (d *Discrete) Discrepancy() int64 {
	if len(d.v) == 0 {
		return 0
	}
	min, max := d.v[0], d.v[0]
	for _, x := range d.v[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return max - min
}

// Float64s returns the counts as a fresh float64 vector.
func (d *Discrete) Float64s() matrix.Vector {
	out := make(matrix.Vector, len(d.v))
	for i, x := range d.v {
		out[i] = float64(x)
	}
	return out
}

// ToContinuous converts to the continuous representation.
func (d *Discrete) ToContinuous() *Continuous {
	return &Continuous{v: d.Float64s()}
}

// String implements fmt.Stringer.
func (d *Discrete) String() string {
	return fmt.Sprintf("Discrete{n=%d total=%d Φ=%.3f K=%d}", d.N(), d.Total(), d.Potential(), d.Discrepancy())
}

// PotentialAround returns Σᵢ(xᵢ − c)² computed with compensated summation;
// the potential is differenced across rounds, so we avoid losing the small
// per-round drops to cancellation.
func PotentialAround(x matrix.Vector, c float64) float64 {
	var sum, comp float64
	for _, v := range x {
		d := v - c
		term := d * d
		y := term - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum
}

// PairwiseSquaredSum returns ΣᵢΣⱼ(ℓᵢ − ℓⱼ)² over all ordered pairs, the
// left side of the Lemma 10 identity ΣᵢΣⱼ(ℓᵢ−ℓⱼ)² = 2n·Φ(L). It is O(n)
// via the expansion Σᵢⱼ(ℓᵢ−ℓⱼ)² = 2n·Σℓᵢ² − 2(Σℓᵢ)²; the O(n²) direct
// evaluation lives in the tests as the oracle.
func PairwiseSquaredSum(x matrix.Vector) float64 {
	n := float64(len(x))
	var s, sq float64
	for _, v := range x {
		s += v
		sq += v * v
	}
	return 2*n*sq - 2*s*s
}
