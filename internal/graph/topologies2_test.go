package graph

import (
	"math"
	"math/rand"
	"testing"
)

func TestTorus3D(t *testing.T) {
	g := Torus3D(3, 4, 5)
	if g.N() != 60 {
		t.Fatalf("n=%d", g.N())
	}
	if d, ok := g.IsRegular(); !ok || d != 6 {
		t.Fatalf("3-D torus must be 6-regular, got %d/%v", d, ok)
	}
	if g.M() != 3*60/2*2 { // 3 edges added per node, each counted once: m = 3n
		t.Fatalf("m=%d, want %d", g.M(), 3*60)
	}
	if !g.IsConnected() {
		t.Fatal("must be connected")
	}
}

func TestTorus3DLambda2MatchesDense(t *testing.T) {
	// Verify the closed form against the generic eigensolver via the
	// Laplacian spectrum of a small instance.
	g := Torus3D(3, 3, 4)
	want := Torus3DLambda2(3, 3, 4)
	// Dense solve through the public Laplacian (keep this package free of
	// a spectral import by checking the Rayleigh quotient of the known
	// eigenvector instead: the slowest mode lives on the longest cycle).
	// x[(i,j,k)] = cos(2π·k/4) is an eigenvector with eigenvalue
	// 2(1 − cos(2π/4)).
	n := g.N()
	x := make([]float64, n)
	id := func(a, b, c int) int { return (a*3+b)*4 + c }
	for a := 0; a < 3; a++ {
		for b := 0; b < 3; b++ {
			for c := 0; c < 4; c++ {
				x[id(a, b, c)] = math.Cos(2 * math.Pi * float64(c) / 4)
			}
		}
	}
	// Check L·x = want·x.
	for i := 0; i < n; i++ {
		lx := float64(g.Degree(i)) * x[i]
		for _, j := range g.Neighbors(i) {
			lx -= x[j]
		}
		if math.Abs(lx-want*x[i]) > 1e-9 {
			t.Fatalf("L·x != λ₂·x at node %d: %v vs %v", i, lx, want*x[i])
		}
	}
}

func TestTorus3DPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Torus3D(2, 3, 3)
}

func TestCubeConnectedCycles(t *testing.T) {
	g := CubeConnectedCycles(3)
	if g.N() != 24 {
		t.Fatalf("n=%d, want 24", g.N())
	}
	if d, ok := g.IsRegular(); !ok || d != 3 {
		t.Fatalf("CCC must be 3-regular, got %d/%v", d, ok)
	}
	if !g.IsConnected() {
		t.Fatal("CCC must be connected")
	}
	// m = 3n/2 for a 3-regular graph.
	if g.M() != 36 {
		t.Fatalf("m=%d, want 36", g.M())
	}
}

func TestButterfly(t *testing.T) {
	g := Butterfly(3)
	if g.N() != 24 {
		t.Fatalf("n=%d, want 24", g.N())
	}
	if !g.IsConnected() {
		t.Fatal("butterfly must be connected")
	}
	if g.MaxDegree() != 4 {
		t.Fatalf("max degree %d, want 4", g.MaxDegree())
	}
}

func TestSmallWorldNoRewire(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := SmallWorld(20, 2, 0, rng)
	// p=0: the ring lattice with 2 chords per node: 2-regular per chord
	// class → 4-regular, m = 2n.
	if d, ok := g.IsRegular(); !ok || d != 4 {
		t.Fatalf("lattice must be 4-regular, got %d/%v", d, ok)
	}
	if g.M() != 40 {
		t.Fatalf("m=%d", g.M())
	}
}

func TestSmallWorldRewireKeepsSimple(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := SmallWorld(50, 3, 0.3, rng)
	if g.N() != 50 {
		t.Fatal("node count")
	}
	// Builder would have rejected self loops/duplicates; check edge count
	// stayed within the lattice budget.
	if g.M() > 150 {
		t.Fatalf("m=%d exceeds lattice budget", g.M())
	}
	if !g.IsConnected() {
		t.Fatal("rewired small world should stay connected at p=0.3, k=3")
	}
}

func TestSmallWorldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SmallWorld(4, 1, 0.1, rand.New(rand.NewSource(1)))
}

func TestRandomGeometricExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if g := RandomGeometric(30, 0, rng); g.M() != 0 {
		t.Fatal("r=0 must have no edges")
	}
	if g := RandomGeometric(30, 2, rng); g.M() != 30*29/2 {
		t.Fatal("r≥√2 must be complete")
	}
}

func TestRandomGeometricConnectsAboveThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 300
	r := 2 * ConnectivityRadius(n)
	connected := 0
	for trial := 0; trial < 5; trial++ {
		if RandomGeometric(n, r, rng).IsConnected() {
			connected++
		}
	}
	if connected < 4 {
		t.Fatalf("only %d/5 RGGs connected at 2× threshold radius", connected)
	}
}

func TestConnectivityRadiusShrinks(t *testing.T) {
	if ConnectivityRadius(100) <= ConnectivityRadius(10000) {
		t.Fatal("radius must shrink with n")
	}
	if ConnectivityRadius(1) != 1 {
		t.Fatal("degenerate convention")
	}
}
