// Package scenario turns the paper's dynamic-network model (§5) and the
// repeated-arrivals literature into a first-class, declarative experiment
// dimension: a Scenario is a named, parameterized, seed-reproducible
// (arrival process × perturbation schedule × topology churn) triple that a
// round loop can consult between balancing rounds — inject load here, swap
// the active graph there — while every draw stays deterministic given the
// scenario's RNG stream.
//
// Scenarios are described by strings in the style of internal/topoparse,
// with optional ':'-separated parameters (comma-free, so a list of
// scenarios survives a comma-separated CLI flag):
//
//	static                        one-shot initial load, fixed graph
//	poisson-arrivals[:rate]       Poisson job arrivals on random nodes
//	bursty[:period[:frac]]        periodic bursts on a random node
//	adversarial-respike[:every[:frac]]  re-spike the most-loaded node
//	hotspot-drift[:rate[:period]] drifting hotspot fed every round
//	edge-churn[:p]                every edge fails independently per round
//	periodic-failures[:period[:count]]  edge sets fail for whole periods
//
// Parse canonicalizes (defaults applied, floats 'g'-formatted), so
// Parse(s).String() is a stable grid-dimension value: the batch engine
// dedups on it, journals record it, and a unit's RNG stream is derived
// from it. The topology-churn scenarios ride the internal/dynamic sequence
// generators (RandomSubgraphs, EdgeFailures) rather than reimplementing
// them.
package scenario

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates the built-in scenario generators.
type Kind int

const (
	// Static is the classic one-shot run: no arrivals, no churn. The zero
	// value, so an unset scenario means "exactly the pre-scenario engine".
	Static Kind = iota
	// PoissonArrivals injects Poisson-distributed job arrivals onto
	// uniformly random nodes every round (the repeated balls-into-bins
	// regime: the system balances while load keeps landing).
	PoissonArrivals
	// Bursty injects one large burst onto a uniformly random node every
	// fixed number of rounds — calm stretches punctuated by shocks.
	Bursty
	// AdversarialRespike re-spikes the currently most-loaded node on a
	// fixed cadence: the adversary always pushes where it hurts most.
	AdversarialRespike
	// HotspotDrift feeds a hotspot node every round while the hotspot
	// performs a neighbor random walk on the base topology.
	HotspotDrift
	// EdgeChurn fails every edge independently per round (the §5 dynamic
	// model with i.i.d. per-round subgraphs of the base topology).
	EdgeChurn
	// PeriodicFailures fails a fresh random edge set every period and keeps
	// it down for the whole period — flaky links with repair cycles.
	PeriodicFailures
	// Trace replays a recorded arrival trace (JSONL events, see
	// ReadTraceFile) round-for-round on the fixed base graph. Written as
	// trace:<file>; the path is carried in Spec.Path, not Params, and is
	// the only scenario input whose case is preserved. Draws nothing from
	// the RNG, so replay is deterministic by construction — a trace
	// captured from a live lbserved session re-runs byte-identically as a
	// grid dimension.
	Trace

	// kindCount counts the kinds above. A new Kind constant must be
	// inserted before it (and given a name/description/parser arm), or the
	// registry round-trip test fails — which is the point: an unregistered
	// generator should fail in tests, not at sweep time.
	kindCount
)

// String returns the kind's base name (without parameters).
func (k Kind) String() string {
	switch k {
	case Static:
		return "static"
	case PoissonArrivals:
		return "poisson-arrivals"
	case Bursty:
		return "bursty"
	case AdversarialRespike:
		return "adversarial-respike"
	case HotspotDrift:
		return "hotspot-drift"
	case EdgeChurn:
		return "edge-churn"
	case PeriodicFailures:
		return "periodic-failures"
	case Trace:
		return "trace"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// AllKinds lists every registered scenario kind in declaration order. It is
// derived from the kindCount sentinel, so it cannot drift out of sync with
// the const block.
func AllKinds() []Kind {
	out := make([]Kind, kindCount)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// ParseKind converts a base name (as produced by Kind.String) into a Kind.
func ParseKind(s string) (Kind, error) {
	for _, k := range AllKinds() {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("scenario: unknown scenario %q (accepted: %s)", s, strings.Join(Names(), " "))
}

// Names lists the accepted base names in display order.
func Names() []string {
	out := make([]string, 0, kindCount)
	for _, k := range AllKinds() {
		out = append(out, k.String())
	}
	return out
}

// Descriptions returns each base name (with its parameter syntax) and a
// one-line description, in display order — the -list surface.
func Descriptions() [][2]string {
	return [][2]string{
		{"static", "one-shot initial load on a fixed graph (the classic run)"},
		{"poisson-arrivals[:rate]", "Poisson job arrivals on random nodes, ~rate·load per round (default rate 0.01)"},
		{"bursty[:period[:frac]]", "a frac·load burst on a random node every period rounds (defaults 16, 0.25)"},
		{"adversarial-respike[:every[:frac]]", "re-spike the currently most-loaded node with frac·load every `every` rounds (defaults 8, 0.5)"},
		{"hotspot-drift[:rate[:period]]", "feed a drifting hotspot rate·load per round; it walks to a random neighbor every period rounds (defaults 0.02, 4)"},
		{"edge-churn[:p]", "every edge fails independently with probability p each round (default 0.1)"},
		{"periodic-failures[:period[:count]]", "count random edges fail for each period-round stretch (defaults 8, 2)"},
		{"trace:<file.jsonl>", "replay a recorded arrival trace (JSONL {\"k\",\"node\",\"amt\"} events) round-for-round"},
	}
}

// DefaultHorizon is the round cap for scenario runs when the caller sets
// none: an ongoing arrival process has no convergence round to stop at, so
// the run observes a fixed window instead.
const DefaultHorizon = 512

// Spec is one parsed scenario: a kind plus its canonical parameter values.
// The zero value is the static scenario.
type Spec struct {
	Kind   Kind
	Params []float64
	// Path is the trace file for Kind == Trace ("" otherwise). Unlike
	// every other scenario input it is case-preserved — it names a real
	// file.
	Path string
}

// paramDef describes one parameter's name, default and validity range.
type paramDef struct {
	name     string
	def      float64
	min, max float64 // inclusive bounds; max 0 means unbounded above
	integer  bool
}

// params declares each kind's parameter schema, in positional order.
func (k Kind) params() []paramDef {
	switch k {
	case PoissonArrivals:
		return []paramDef{{name: "rate", def: 0.01, min: 1e-9}}
	case Bursty:
		return []paramDef{
			{name: "period", def: 16, min: 1, integer: true},
			{name: "frac", def: 0.25, min: 1e-9},
		}
	case AdversarialRespike:
		return []paramDef{
			{name: "every", def: 8, min: 1, integer: true},
			{name: "frac", def: 0.5, min: 1e-9},
		}
	case HotspotDrift:
		return []paramDef{
			{name: "rate", def: 0.02, min: 1e-9},
			{name: "period", def: 4, min: 1, integer: true},
		}
	case EdgeChurn:
		return []paramDef{{name: "p", def: 0.1, min: 1e-9, max: 0.999999}}
	case PeriodicFailures:
		return []paramDef{
			{name: "period", def: 8, min: 1, integer: true},
			{name: "count", def: 2, min: 1, integer: true},
		}
	default:
		return nil
	}
}

// Parse turns a scenario description ("adversarial-respike",
// "poisson-arrivals:0.05", "bursty:32:0.5") into a Spec with defaults
// applied and parameters validated. The canonical form is Spec.String();
// Parse∘String is the identity on canonical forms.
func Parse(s string) (Spec, error) {
	raw := strings.TrimSpace(s)
	// trace:<file> carries a filesystem path, matched before the
	// lowercasing below so the path's case survives.
	if path, ok := strings.CutPrefix(raw, "trace:"); ok {
		if err := checkTracePath(path); err != nil {
			return Spec{}, err
		}
		return Spec{Kind: Trace, Path: path}, nil
	}
	parts := strings.Split(strings.ToLower(raw), ":")
	kind, err := ParseKind(parts[0])
	if err != nil {
		return Spec{}, err
	}
	if kind == Trace {
		return Spec{}, fmt.Errorf("scenario: trace needs a file path (trace:<file.jsonl>)")
	}
	defs := kind.params()
	if len(parts)-1 > len(defs) {
		return Spec{}, fmt.Errorf("scenario: %s takes at most %d parameter(s), got %q", kind, len(defs), s)
	}
	params := make([]float64, len(defs))
	for i, d := range defs {
		params[i] = d.def
		if i+1 < len(parts) {
			v, err := strconv.ParseFloat(strings.TrimSpace(parts[i+1]), 64)
			if err != nil {
				return Spec{}, fmt.Errorf("scenario: %s: bad %s %q", kind, d.name, parts[i+1])
			}
			params[i] = v
		}
		if err := defs[i].check(kind, params[i]); err != nil {
			return Spec{}, err
		}
	}
	return Spec{Kind: kind, Params: params}, nil
}

// checkTracePath rejects trace paths that could not survive the pipeline:
// empty (no file named), commas (the CLI splits scenario lists on them),
// and whitespace/control characters (journals and emitted shell plans
// carry the canonical string unquoted).
func checkTracePath(path string) error {
	if path == "" {
		return fmt.Errorf("scenario: trace needs a file path (trace:<file.jsonl>)")
	}
	if i := strings.IndexFunc(path, func(r rune) bool { return r == ',' || r <= ' ' }); i >= 0 {
		return fmt.Errorf("scenario: trace path %q may not contain commas, whitespace or control characters", path)
	}
	return nil
}

// check validates one parameter value against its schema.
func (d paramDef) check(k Kind, v float64) error {
	if v < d.min {
		return fmt.Errorf("scenario: %s: %s %g must be ≥ %g", k, d.name, v, d.min)
	}
	if d.max > 0 && v > d.max {
		return fmt.Errorf("scenario: %s: %s %g must be ≤ %g", k, d.name, v, d.max)
	}
	if d.integer && v != float64(int(v)) {
		return fmt.Errorf("scenario: %s: %s %g must be an integer", k, d.name, v)
	}
	return nil
}

// String returns the canonical form: the base name with every parameter
// (defaults included) ':'-joined, so equal scenarios have equal strings and
// a journal column names the exact process that ran.
func (s Spec) String() string {
	if s.Kind == Trace {
		return "trace:" + s.Path
	}
	if len(s.Params) == 0 {
		return s.Kind.String()
	}
	parts := make([]string, 0, len(s.Params)+1)
	parts = append(parts, s.Kind.String())
	for _, p := range s.Params {
		parts = append(parts, strconv.FormatFloat(p, 'g', -1, 64))
	}
	return strings.Join(parts, ":")
}

// IsStatic reports whether s is the no-op scenario (the classic one-shot
// run with no arrivals and no churn).
func (s Spec) IsStatic() bool { return s.Kind == Static }

// param returns the i-th parameter, falling back to the schema default —
// so a hand-constructed Spec{Kind: Bursty} (no Params) still runs with the
// documented defaults.
func (s Spec) param(i int) float64 {
	if i < len(s.Params) {
		return s.Params[i]
	}
	return s.Kind.params()[i].def
}

// VerifyRegistry checks a kind registry the way the scenario and workload
// tests share: every kind index in [0, n) must stringify to a real name
// (not the "Kind(i)" fallback, which means a constant was added without a
// String case), the name must parse back to the same index, and index n
// itself must hit the fallback (which means the registry's count sentinel
// covers every declared constant). Returns the first violation.
func VerifyRegistry(n int, name func(i int) string, parse func(s string) (int, error)) error {
	for i := 0; i < n; i++ {
		s := name(i)
		if strings.Contains(s, "(") {
			return fmt.Errorf("kind %d has no registered name (String() = %q)", i, s)
		}
		j, err := parse(s)
		if err != nil {
			return fmt.Errorf("kind %d (%q) does not parse back: %v", i, s, err)
		}
		if j != i {
			return fmt.Errorf("kind %d (%q) parses to %d", i, s, j)
		}
	}
	if s := name(n); !strings.Contains(s, "(") {
		return fmt.Errorf("kind %d (%q) is named but not counted by the registry sentinel", n, s)
	}
	return nil
}
