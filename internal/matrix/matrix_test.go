package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewDenseZero(t *testing.T) {
	m := NewDense(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("shape = %dx%d, want 3x4", m.Rows(), m.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("fresh matrix not zero at (%d,%d)", i, j)
			}
		}
	}
}

func TestNewDenseFrom(t *testing.T) {
	m, err := NewDenseFrom([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatalf("unexpected entries: %v", m)
	}
}

func TestNewDenseFromRagged(t *testing.T) {
	if _, err := NewDenseFrom([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("expected error on ragged rows")
	}
}

func TestNewDenseFromEmpty(t *testing.T) {
	m, err := NewDenseFrom(nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 0 || m.Cols() != 0 {
		t.Fatalf("empty matrix shape %dx%d", m.Rows(), m.Cols())
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Fatalf("I[%d][%d] = %v", i, j, id.At(i, j))
			}
		}
	}
}

func TestSetAddAt(t *testing.T) {
	m := NewDense(2, 2)
	m.Set(0, 1, 5)
	m.Add(0, 1, 2.5)
	if got := m.At(0, 1); got != 7.5 {
		t.Fatalf("At(0,1) = %v, want 7.5", got)
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDense(2, 2).At(2, 0)
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomDense(rng, 5, 5)
	got, err := a.Mul(Identity(5))
	if err != nil {
		t.Fatal(err)
	}
	if !densesEqual(got, a, 0) {
		t.Fatal("A·I != A")
	}
}

func TestMulKnown(t *testing.T) {
	a, _ := NewDenseFrom([][]float64{{1, 2}, {3, 4}})
	b, _ := NewDenseFrom([][]float64{{5, 6}, {7, 8}})
	got, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := NewDenseFrom([][]float64{{19, 22}, {43, 50}})
	if !densesEqual(got, want, 0) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestMulDimensionMismatch(t *testing.T) {
	if _, err := NewDense(2, 3).Mul(NewDense(2, 3)); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestMulVec(t *testing.T) {
	a, _ := NewDenseFrom([][]float64{{1, 2, 3}, {4, 5, 6}})
	got, err := a.MulVec(Vector{1, 0, -1})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != -2 || got[1] != -2 {
		t.Fatalf("MulVec = %v", got)
	}
}

func TestMulVecMismatch(t *testing.T) {
	if _, err := NewDense(2, 3).MulVec(Vector{1, 2}); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestTranspose(t *testing.T) {
	a, _ := NewDenseFrom([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.Transpose()
	if at.Rows() != 3 || at.Cols() != 2 {
		t.Fatalf("shape %dx%d", at.Rows(), at.Cols())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if a.At(i, j) != at.At(j, i) {
				t.Fatal("transpose mismatch")
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomDense(rng, 4, 7)
	if !densesEqual(a.Transpose().Transpose(), a, 0) {
		t.Fatal("(Aᵀ)ᵀ != A")
	}
}

func TestAddSubMat(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomDense(rng, 3, 3)
	b := randomDense(rng, 3, 3)
	sum, err := a.AddMat(b)
	if err != nil {
		t.Fatal(err)
	}
	diff, err := sum.SubMat(b)
	if err != nil {
		t.Fatal(err)
	}
	if !densesEqual(diff, a, 1e-12) {
		t.Fatal("(A+B)−B != A")
	}
}

func TestScale(t *testing.T) {
	a, _ := NewDenseFrom([][]float64{{1, -2}, {3, 4}})
	a.Scale(2)
	if a.At(0, 1) != -4 || a.At(1, 1) != 8 {
		t.Fatalf("scale wrong: %v", a)
	}
}

func TestIsSymmetric(t *testing.T) {
	s, _ := NewDenseFrom([][]float64{{1, 2}, {2, 1}})
	if !s.IsSymmetric(0) {
		t.Fatal("symmetric matrix reported asymmetric")
	}
	a, _ := NewDenseFrom([][]float64{{1, 2}, {3, 1}})
	if a.IsSymmetric(0.5) {
		t.Fatal("asymmetric matrix reported symmetric")
	}
	if NewDense(2, 3).IsSymmetric(1) {
		t.Fatal("non-square cannot be symmetric")
	}
}

func TestRowSums(t *testing.T) {
	a, _ := NewDenseFrom([][]float64{{0.25, 0.75}, {0.5, 0.5}})
	rs := a.RowSums()
	if math.Abs(rs[0]-1) > 1e-15 || math.Abs(rs[1]-1) > 1e-15 {
		t.Fatalf("row sums %v", rs)
	}
}

func TestFrobeniusAndMaxAbs(t *testing.T) {
	a, _ := NewDenseFrom([][]float64{{3, 0}, {0, -4}})
	if got := a.FrobeniusNorm(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Frobenius = %v, want 5", got)
	}
	if got := a.MaxAbs(); got != 4 {
		t.Fatalf("MaxAbs = %v, want 4", got)
	}
}

func TestRowCopySemantics(t *testing.T) {
	a, _ := NewDenseFrom([][]float64{{1, 2}, {3, 4}})
	r := a.Row(0)
	r[0] = 99
	if a.At(0, 0) != 1 {
		t.Fatal("Row must copy")
	}
	raw := a.RawRow(0)
	raw[0] = 99
	if a.At(0, 0) != 99 {
		t.Fatal("RawRow must share")
	}
}

func TestCloneIndependence(t *testing.T) {
	a, _ := NewDenseFrom([][]float64{{1, 2}, {3, 4}})
	b := a.Clone()
	b.Set(0, 0, -1)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone must deep-copy")
	}
}

// Property: matrix multiplication is associative (up to float tolerance).
func TestMulAssociativityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(seed uint8) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		n := 2 + r.Intn(5)
		a, b, c := randomDense(r, n, n), randomDense(r, n, n), randomDense(r, n, n)
		ab, _ := a.Mul(b)
		abc1, _ := ab.Mul(c)
		bc, _ := b.Mul(c)
		abc2, _ := a.Mul(bc)
		return densesEqual(abc1, abc2, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// Property: (A·x)·y == x·(Aᵀ·y).
func TestAdjointProperty(t *testing.T) {
	f := func(seed uint8) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		n := 2 + r.Intn(6)
		a := randomDense(r, n, n)
		x, y := randomVector(r, n), randomVector(r, n)
		ax, _ := a.MulVec(x)
		aty, _ := a.Transpose().MulVec(y)
		return math.Abs(ax.Dot(y)-x.Dot(aty)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMulVecToMatchesMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomDense(rng, 6, 4)
	x := randomVector(rng, 4)
	want, _ := a.MulVec(x)
	got := make(Vector, 6)
	a.MulVecTo(got, x)
	if !got.ApproxEqual(want, 0) {
		t.Fatalf("MulVecTo %v != MulVec %v", got, want)
	}
}

func TestStringSmallAndLarge(t *testing.T) {
	small, _ := NewDenseFrom([][]float64{{1, 2}, {3, 4}})
	if s := small.String(); len(s) == 0 {
		t.Fatal("empty String for small matrix")
	}
	big := NewDense(20, 20)
	if s := big.String(); len(s) > 40 {
		t.Fatalf("large matrix should be abbreviated, got %q", s)
	}
}

func randomDense(rng *rand.Rand, r, c int) *Dense {
	m := NewDense(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	return m
}

func randomVector(rng *rand.Rand, n int) Vector {
	v := make(Vector, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func densesEqual(a, b *Dense, tol float64) bool {
	if a.Rows() != b.Rows() || a.Cols() != b.Cols() {
		return false
	}
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < a.Cols(); j++ {
			if math.Abs(a.At(i, j)-b.At(i, j)) > tol {
				return false
			}
		}
	}
	return true
}
